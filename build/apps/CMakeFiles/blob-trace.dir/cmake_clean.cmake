file(REMOVE_RECURSE
  "CMakeFiles/blob-trace.dir/blob_trace_main.cpp.o"
  "CMakeFiles/blob-trace.dir/blob_trace_main.cpp.o.d"
  "blob-trace"
  "blob-trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blob-trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
