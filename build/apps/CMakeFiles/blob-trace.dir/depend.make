# Empty dependencies file for blob-trace.
# This may be replaced when dependencies are built.
