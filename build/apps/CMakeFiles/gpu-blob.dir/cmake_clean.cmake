file(REMOVE_RECURSE
  "CMakeFiles/gpu-blob.dir/gpu_blob_main.cpp.o"
  "CMakeFiles/gpu-blob.dir/gpu_blob_main.cpp.o.d"
  "gpu-blob"
  "gpu-blob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu-blob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
