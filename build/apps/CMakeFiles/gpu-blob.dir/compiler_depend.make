# Empty compiler generated dependencies file for gpu-blob.
# This may be replaced when dependencies are built.
