# Empty compiler generated dependencies file for blob-threshold.
# This may be replaced when dependencies are built.
