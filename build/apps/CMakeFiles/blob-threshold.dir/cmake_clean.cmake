file(REMOVE_RECURSE
  "CMakeFiles/blob-threshold.dir/blob_threshold_main.cpp.o"
  "CMakeFiles/blob-threshold.dir/blob_threshold_main.cpp.o.d"
  "blob-threshold"
  "blob-threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blob-threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
