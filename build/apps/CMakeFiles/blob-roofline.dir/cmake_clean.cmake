file(REMOVE_RECURSE
  "CMakeFiles/blob-roofline.dir/blob_roofline_main.cpp.o"
  "CMakeFiles/blob-roofline.dir/blob_roofline_main.cpp.o.d"
  "blob-roofline"
  "blob-roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blob-roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
