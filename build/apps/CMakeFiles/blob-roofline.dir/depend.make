# Empty dependencies file for blob-roofline.
# This may be replaced when dependencies are built.
