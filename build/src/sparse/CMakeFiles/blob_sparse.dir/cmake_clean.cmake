file(REMOVE_RECURSE
  "CMakeFiles/blob_sparse.dir/csr.cpp.o"
  "CMakeFiles/blob_sparse.dir/csr.cpp.o.d"
  "CMakeFiles/blob_sparse.dir/model.cpp.o"
  "CMakeFiles/blob_sparse.dir/model.cpp.o.d"
  "CMakeFiles/blob_sparse.dir/spmv.cpp.o"
  "CMakeFiles/blob_sparse.dir/spmv.cpp.o.d"
  "libblob_sparse.a"
  "libblob_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blob_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
