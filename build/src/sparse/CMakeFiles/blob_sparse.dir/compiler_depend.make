# Empty compiler generated dependencies file for blob_sparse.
# This may be replaced when dependencies are built.
