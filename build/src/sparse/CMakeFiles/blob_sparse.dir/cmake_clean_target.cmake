file(REMOVE_RECURSE
  "libblob_sparse.a"
)
