file(REMOVE_RECURSE
  "libblob_parallel.a"
)
