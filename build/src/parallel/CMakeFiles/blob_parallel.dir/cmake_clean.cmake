file(REMOVE_RECURSE
  "CMakeFiles/blob_parallel.dir/policy.cpp.o"
  "CMakeFiles/blob_parallel.dir/policy.cpp.o.d"
  "CMakeFiles/blob_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/blob_parallel.dir/thread_pool.cpp.o.d"
  "libblob_parallel.a"
  "libblob_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blob_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
