# Empty dependencies file for blob_parallel.
# This may be replaced when dependencies are built.
