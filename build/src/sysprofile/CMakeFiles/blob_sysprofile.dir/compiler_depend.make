# Empty compiler generated dependencies file for blob_sysprofile.
# This may be replaced when dependencies are built.
