file(REMOVE_RECURSE
  "libblob_sysprofile.a"
)
