file(REMOVE_RECURSE
  "CMakeFiles/blob_sysprofile.dir/systems.cpp.o"
  "CMakeFiles/blob_sysprofile.dir/systems.cpp.o.d"
  "libblob_sysprofile.a"
  "libblob_sysprofile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blob_sysprofile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
