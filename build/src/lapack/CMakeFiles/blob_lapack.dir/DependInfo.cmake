
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lapack/geqrf.cpp" "src/lapack/CMakeFiles/blob_lapack.dir/geqrf.cpp.o" "gcc" "src/lapack/CMakeFiles/blob_lapack.dir/geqrf.cpp.o.d"
  "/root/repo/src/lapack/getrf.cpp" "src/lapack/CMakeFiles/blob_lapack.dir/getrf.cpp.o" "gcc" "src/lapack/CMakeFiles/blob_lapack.dir/getrf.cpp.o.d"
  "/root/repo/src/lapack/potrf.cpp" "src/lapack/CMakeFiles/blob_lapack.dir/potrf.cpp.o" "gcc" "src/lapack/CMakeFiles/blob_lapack.dir/potrf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/blas/CMakeFiles/blob_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/blob_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/blob_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
