file(REMOVE_RECURSE
  "CMakeFiles/blob_lapack.dir/geqrf.cpp.o"
  "CMakeFiles/blob_lapack.dir/geqrf.cpp.o.d"
  "CMakeFiles/blob_lapack.dir/getrf.cpp.o"
  "CMakeFiles/blob_lapack.dir/getrf.cpp.o.d"
  "CMakeFiles/blob_lapack.dir/potrf.cpp.o"
  "CMakeFiles/blob_lapack.dir/potrf.cpp.o.d"
  "libblob_lapack.a"
  "libblob_lapack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blob_lapack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
