file(REMOVE_RECURSE
  "libblob_lapack.a"
)
