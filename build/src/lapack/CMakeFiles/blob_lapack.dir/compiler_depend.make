# Empty compiler generated dependencies file for blob_lapack.
# This may be replaced when dependencies are built.
