# Empty compiler generated dependencies file for blob_util.
# This may be replaced when dependencies are built.
