file(REMOVE_RECURSE
  "CMakeFiles/blob_util.dir/cli.cpp.o"
  "CMakeFiles/blob_util.dir/cli.cpp.o.d"
  "CMakeFiles/blob_util.dir/csv.cpp.o"
  "CMakeFiles/blob_util.dir/csv.cpp.o.d"
  "CMakeFiles/blob_util.dir/json.cpp.o"
  "CMakeFiles/blob_util.dir/json.cpp.o.d"
  "CMakeFiles/blob_util.dir/log.cpp.o"
  "CMakeFiles/blob_util.dir/log.cpp.o.d"
  "CMakeFiles/blob_util.dir/stats.cpp.o"
  "CMakeFiles/blob_util.dir/stats.cpp.o.d"
  "CMakeFiles/blob_util.dir/strfmt.cpp.o"
  "CMakeFiles/blob_util.dir/strfmt.cpp.o.d"
  "CMakeFiles/blob_util.dir/table.cpp.o"
  "CMakeFiles/blob_util.dir/table.cpp.o.d"
  "libblob_util.a"
  "libblob_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blob_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
