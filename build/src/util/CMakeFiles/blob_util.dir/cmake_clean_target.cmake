file(REMOVE_RECURSE
  "libblob_util.a"
)
