
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simgpu/device.cpp" "src/simgpu/CMakeFiles/blob_simgpu.dir/device.cpp.o" "gcc" "src/simgpu/CMakeFiles/blob_simgpu.dir/device.cpp.o.d"
  "/root/repo/src/simgpu/memory.cpp" "src/simgpu/CMakeFiles/blob_simgpu.dir/memory.cpp.o" "gcc" "src/simgpu/CMakeFiles/blob_simgpu.dir/memory.cpp.o.d"
  "/root/repo/src/simgpu/stream.cpp" "src/simgpu/CMakeFiles/blob_simgpu.dir/stream.cpp.o" "gcc" "src/simgpu/CMakeFiles/blob_simgpu.dir/stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/perfmodel/CMakeFiles/blob_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/blob_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/blob_util.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/blob_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
