file(REMOVE_RECURSE
  "libblob_simgpu.a"
)
