file(REMOVE_RECURSE
  "CMakeFiles/blob_simgpu.dir/device.cpp.o"
  "CMakeFiles/blob_simgpu.dir/device.cpp.o.d"
  "CMakeFiles/blob_simgpu.dir/memory.cpp.o"
  "CMakeFiles/blob_simgpu.dir/memory.cpp.o.d"
  "CMakeFiles/blob_simgpu.dir/stream.cpp.o"
  "CMakeFiles/blob_simgpu.dir/stream.cpp.o.d"
  "libblob_simgpu.a"
  "libblob_simgpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blob_simgpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
