# Empty dependencies file for blob_simgpu.
# This may be replaced when dependencies are built.
