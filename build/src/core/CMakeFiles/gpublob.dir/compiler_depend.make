# Empty compiler generated dependencies file for gpublob.
# This may be replaced when dependencies are built.
