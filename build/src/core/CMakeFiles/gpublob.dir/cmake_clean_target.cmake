file(REMOVE_RECURSE
  "libgpublob.a"
)
