
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/advisor.cpp" "src/core/CMakeFiles/gpublob.dir/advisor.cpp.o" "gcc" "src/core/CMakeFiles/gpublob.dir/advisor.cpp.o.d"
  "/root/repo/src/core/backend.cpp" "src/core/CMakeFiles/gpublob.dir/backend.cpp.o" "gcc" "src/core/CMakeFiles/gpublob.dir/backend.cpp.o.d"
  "/root/repo/src/core/energy.cpp" "src/core/CMakeFiles/gpublob.dir/energy.cpp.o" "gcc" "src/core/CMakeFiles/gpublob.dir/energy.cpp.o.d"
  "/root/repo/src/core/flops.cpp" "src/core/CMakeFiles/gpublob.dir/flops.cpp.o" "gcc" "src/core/CMakeFiles/gpublob.dir/flops.cpp.o.d"
  "/root/repo/src/core/host_backend.cpp" "src/core/CMakeFiles/gpublob.dir/host_backend.cpp.o" "gcc" "src/core/CMakeFiles/gpublob.dir/host_backend.cpp.o.d"
  "/root/repo/src/core/hybrid_backend.cpp" "src/core/CMakeFiles/gpublob.dir/hybrid_backend.cpp.o" "gcc" "src/core/CMakeFiles/gpublob.dir/hybrid_backend.cpp.o.d"
  "/root/repo/src/core/manifest.cpp" "src/core/CMakeFiles/gpublob.dir/manifest.cpp.o" "gcc" "src/core/CMakeFiles/gpublob.dir/manifest.cpp.o.d"
  "/root/repo/src/core/problem.cpp" "src/core/CMakeFiles/gpublob.dir/problem.cpp.o" "gcc" "src/core/CMakeFiles/gpublob.dir/problem.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/gpublob.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/gpublob.dir/report.cpp.o.d"
  "/root/repo/src/core/sim_backend.cpp" "src/core/CMakeFiles/gpublob.dir/sim_backend.cpp.o" "gcc" "src/core/CMakeFiles/gpublob.dir/sim_backend.cpp.o.d"
  "/root/repo/src/core/sweep.cpp" "src/core/CMakeFiles/gpublob.dir/sweep.cpp.o" "gcc" "src/core/CMakeFiles/gpublob.dir/sweep.cpp.o.d"
  "/root/repo/src/core/threshold.cpp" "src/core/CMakeFiles/gpublob.dir/threshold.cpp.o" "gcc" "src/core/CMakeFiles/gpublob.dir/threshold.cpp.o.d"
  "/root/repo/src/core/validate.cpp" "src/core/CMakeFiles/gpublob.dir/validate.cpp.o" "gcc" "src/core/CMakeFiles/gpublob.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/blas/CMakeFiles/blob_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/simgpu/CMakeFiles/blob_simgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/blob_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/sysprofile/CMakeFiles/blob_sysprofile.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/blob_util.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/blob_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
