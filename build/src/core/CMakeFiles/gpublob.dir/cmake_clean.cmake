file(REMOVE_RECURSE
  "CMakeFiles/gpublob.dir/advisor.cpp.o"
  "CMakeFiles/gpublob.dir/advisor.cpp.o.d"
  "CMakeFiles/gpublob.dir/backend.cpp.o"
  "CMakeFiles/gpublob.dir/backend.cpp.o.d"
  "CMakeFiles/gpublob.dir/energy.cpp.o"
  "CMakeFiles/gpublob.dir/energy.cpp.o.d"
  "CMakeFiles/gpublob.dir/flops.cpp.o"
  "CMakeFiles/gpublob.dir/flops.cpp.o.d"
  "CMakeFiles/gpublob.dir/host_backend.cpp.o"
  "CMakeFiles/gpublob.dir/host_backend.cpp.o.d"
  "CMakeFiles/gpublob.dir/hybrid_backend.cpp.o"
  "CMakeFiles/gpublob.dir/hybrid_backend.cpp.o.d"
  "CMakeFiles/gpublob.dir/manifest.cpp.o"
  "CMakeFiles/gpublob.dir/manifest.cpp.o.d"
  "CMakeFiles/gpublob.dir/problem.cpp.o"
  "CMakeFiles/gpublob.dir/problem.cpp.o.d"
  "CMakeFiles/gpublob.dir/report.cpp.o"
  "CMakeFiles/gpublob.dir/report.cpp.o.d"
  "CMakeFiles/gpublob.dir/sim_backend.cpp.o"
  "CMakeFiles/gpublob.dir/sim_backend.cpp.o.d"
  "CMakeFiles/gpublob.dir/sweep.cpp.o"
  "CMakeFiles/gpublob.dir/sweep.cpp.o.d"
  "CMakeFiles/gpublob.dir/threshold.cpp.o"
  "CMakeFiles/gpublob.dir/threshold.cpp.o.d"
  "CMakeFiles/gpublob.dir/validate.cpp.o"
  "CMakeFiles/gpublob.dir/validate.cpp.o.d"
  "libgpublob.a"
  "libgpublob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpublob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
