file(REMOVE_RECURSE
  "CMakeFiles/blob_perfmodel.dir/cpu_model.cpp.o"
  "CMakeFiles/blob_perfmodel.dir/cpu_model.cpp.o.d"
  "CMakeFiles/blob_perfmodel.dir/curve.cpp.o"
  "CMakeFiles/blob_perfmodel.dir/curve.cpp.o.d"
  "CMakeFiles/blob_perfmodel.dir/gpu_model.cpp.o"
  "CMakeFiles/blob_perfmodel.dir/gpu_model.cpp.o.d"
  "CMakeFiles/blob_perfmodel.dir/link_model.cpp.o"
  "CMakeFiles/blob_perfmodel.dir/link_model.cpp.o.d"
  "CMakeFiles/blob_perfmodel.dir/noise.cpp.o"
  "CMakeFiles/blob_perfmodel.dir/noise.cpp.o.d"
  "CMakeFiles/blob_perfmodel.dir/quirk.cpp.o"
  "CMakeFiles/blob_perfmodel.dir/quirk.cpp.o.d"
  "libblob_perfmodel.a"
  "libblob_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blob_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
