# Empty dependencies file for blob_perfmodel.
# This may be replaced when dependencies are built.
