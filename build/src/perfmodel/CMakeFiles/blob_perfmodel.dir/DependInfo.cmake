
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perfmodel/cpu_model.cpp" "src/perfmodel/CMakeFiles/blob_perfmodel.dir/cpu_model.cpp.o" "gcc" "src/perfmodel/CMakeFiles/blob_perfmodel.dir/cpu_model.cpp.o.d"
  "/root/repo/src/perfmodel/curve.cpp" "src/perfmodel/CMakeFiles/blob_perfmodel.dir/curve.cpp.o" "gcc" "src/perfmodel/CMakeFiles/blob_perfmodel.dir/curve.cpp.o.d"
  "/root/repo/src/perfmodel/gpu_model.cpp" "src/perfmodel/CMakeFiles/blob_perfmodel.dir/gpu_model.cpp.o" "gcc" "src/perfmodel/CMakeFiles/blob_perfmodel.dir/gpu_model.cpp.o.d"
  "/root/repo/src/perfmodel/link_model.cpp" "src/perfmodel/CMakeFiles/blob_perfmodel.dir/link_model.cpp.o" "gcc" "src/perfmodel/CMakeFiles/blob_perfmodel.dir/link_model.cpp.o.d"
  "/root/repo/src/perfmodel/noise.cpp" "src/perfmodel/CMakeFiles/blob_perfmodel.dir/noise.cpp.o" "gcc" "src/perfmodel/CMakeFiles/blob_perfmodel.dir/noise.cpp.o.d"
  "/root/repo/src/perfmodel/quirk.cpp" "src/perfmodel/CMakeFiles/blob_perfmodel.dir/quirk.cpp.o" "gcc" "src/perfmodel/CMakeFiles/blob_perfmodel.dir/quirk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parallel/CMakeFiles/blob_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/blob_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
