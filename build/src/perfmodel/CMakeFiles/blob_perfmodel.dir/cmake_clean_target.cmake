file(REMOVE_RECURSE
  "libblob_perfmodel.a"
)
