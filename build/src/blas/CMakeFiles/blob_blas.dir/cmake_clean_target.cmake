file(REMOVE_RECURSE
  "libblob_blas.a"
)
