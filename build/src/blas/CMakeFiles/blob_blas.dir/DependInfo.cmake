
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blas/autotune.cpp" "src/blas/CMakeFiles/blob_blas.dir/autotune.cpp.o" "gcc" "src/blas/CMakeFiles/blob_blas.dir/autotune.cpp.o.d"
  "/root/repo/src/blas/batched.cpp" "src/blas/CMakeFiles/blob_blas.dir/batched.cpp.o" "gcc" "src/blas/CMakeFiles/blob_blas.dir/batched.cpp.o.d"
  "/root/repo/src/blas/cblas.cpp" "src/blas/CMakeFiles/blob_blas.dir/cblas.cpp.o" "gcc" "src/blas/CMakeFiles/blob_blas.dir/cblas.cpp.o.d"
  "/root/repo/src/blas/gemm.cpp" "src/blas/CMakeFiles/blob_blas.dir/gemm.cpp.o" "gcc" "src/blas/CMakeFiles/blob_blas.dir/gemm.cpp.o.d"
  "/root/repo/src/blas/gemv.cpp" "src/blas/CMakeFiles/blob_blas.dir/gemv.cpp.o" "gcc" "src/blas/CMakeFiles/blob_blas.dir/gemv.cpp.o.d"
  "/root/repo/src/blas/half_gemm.cpp" "src/blas/CMakeFiles/blob_blas.dir/half_gemm.cpp.o" "gcc" "src/blas/CMakeFiles/blob_blas.dir/half_gemm.cpp.o.d"
  "/root/repo/src/blas/level1.cpp" "src/blas/CMakeFiles/blob_blas.dir/level1.cpp.o" "gcc" "src/blas/CMakeFiles/blob_blas.dir/level1.cpp.o.d"
  "/root/repo/src/blas/level2.cpp" "src/blas/CMakeFiles/blob_blas.dir/level2.cpp.o" "gcc" "src/blas/CMakeFiles/blob_blas.dir/level2.cpp.o.d"
  "/root/repo/src/blas/level3.cpp" "src/blas/CMakeFiles/blob_blas.dir/level3.cpp.o" "gcc" "src/blas/CMakeFiles/blob_blas.dir/level3.cpp.o.d"
  "/root/repo/src/blas/library.cpp" "src/blas/CMakeFiles/blob_blas.dir/library.cpp.o" "gcc" "src/blas/CMakeFiles/blob_blas.dir/library.cpp.o.d"
  "/root/repo/src/blas/types.cpp" "src/blas/CMakeFiles/blob_blas.dir/types.cpp.o" "gcc" "src/blas/CMakeFiles/blob_blas.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parallel/CMakeFiles/blob_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/blob_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
