file(REMOVE_RECURSE
  "CMakeFiles/blob_blas.dir/autotune.cpp.o"
  "CMakeFiles/blob_blas.dir/autotune.cpp.o.d"
  "CMakeFiles/blob_blas.dir/batched.cpp.o"
  "CMakeFiles/blob_blas.dir/batched.cpp.o.d"
  "CMakeFiles/blob_blas.dir/cblas.cpp.o"
  "CMakeFiles/blob_blas.dir/cblas.cpp.o.d"
  "CMakeFiles/blob_blas.dir/gemm.cpp.o"
  "CMakeFiles/blob_blas.dir/gemm.cpp.o.d"
  "CMakeFiles/blob_blas.dir/gemv.cpp.o"
  "CMakeFiles/blob_blas.dir/gemv.cpp.o.d"
  "CMakeFiles/blob_blas.dir/half_gemm.cpp.o"
  "CMakeFiles/blob_blas.dir/half_gemm.cpp.o.d"
  "CMakeFiles/blob_blas.dir/level1.cpp.o"
  "CMakeFiles/blob_blas.dir/level1.cpp.o.d"
  "CMakeFiles/blob_blas.dir/level2.cpp.o"
  "CMakeFiles/blob_blas.dir/level2.cpp.o.d"
  "CMakeFiles/blob_blas.dir/level3.cpp.o"
  "CMakeFiles/blob_blas.dir/level3.cpp.o.d"
  "CMakeFiles/blob_blas.dir/library.cpp.o"
  "CMakeFiles/blob_blas.dir/library.cpp.o.d"
  "CMakeFiles/blob_blas.dir/types.cpp.o"
  "CMakeFiles/blob_blas.dir/types.cpp.o.d"
  "libblob_blas.a"
  "libblob_blas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blob_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
