# Empty compiler generated dependencies file for blob_blas.
# This may be replaced when dependencies are built.
