# Empty compiler generated dependencies file for nn_forward.
# This may be replaced when dependencies are built.
