file(REMOVE_RECURSE
  "CMakeFiles/nn_forward.dir/nn_forward.cpp.o"
  "CMakeFiles/nn_forward.dir/nn_forward.cpp.o.d"
  "nn_forward"
  "nn_forward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_forward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
