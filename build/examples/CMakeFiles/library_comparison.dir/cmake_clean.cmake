file(REMOVE_RECURSE
  "CMakeFiles/library_comparison.dir/library_comparison.cpp.o"
  "CMakeFiles/library_comparison.dir/library_comparison.cpp.o.d"
  "library_comparison"
  "library_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/library_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
