# Empty dependencies file for library_comparison.
# This may be replaced when dependencies are built.
