# Empty dependencies file for ext_energy_threshold.
# This may be replaced when dependencies are built.
