file(REMOVE_RECURSE
  "CMakeFiles/ext_energy_threshold.dir/ext_energy_threshold.cpp.o"
  "CMakeFiles/ext_energy_threshold.dir/ext_energy_threshold.cpp.o.d"
  "ext_energy_threshold"
  "ext_energy_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_energy_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
