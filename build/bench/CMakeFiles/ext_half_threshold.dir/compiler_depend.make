# Empty compiler generated dependencies file for ext_half_threshold.
# This may be replaced when dependencies are built.
