file(REMOVE_RECURSE
  "CMakeFiles/ext_half_threshold.dir/ext_half_threshold.cpp.o"
  "CMakeFiles/ext_half_threshold.dir/ext_half_threshold.cpp.o.d"
  "ext_half_threshold"
  "ext_half_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_half_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
