# Empty compiler generated dependencies file for table6_nonsquare_gemv.
# This may be replaced when dependencies are built.
