file(REMOVE_RECURSE
  "CMakeFiles/table6_nonsquare_gemv.dir/table6_nonsquare_gemv.cpp.o"
  "CMakeFiles/table6_nonsquare_gemv.dir/table6_nonsquare_gemv.cpp.o.d"
  "table6_nonsquare_gemv"
  "table6_nonsquare_gemv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_nonsquare_gemv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
