# Empty dependencies file for table4_square_gemv.
# This may be replaced when dependencies are built.
