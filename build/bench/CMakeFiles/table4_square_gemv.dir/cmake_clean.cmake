file(REMOVE_RECURSE
  "CMakeFiles/table4_square_gemv.dir/table4_square_gemv.cpp.o"
  "CMakeFiles/table4_square_gemv.dir/table4_square_gemv.cpp.o.d"
  "table4_square_gemv"
  "table4_square_gemv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_square_gemv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
