file(REMOVE_RECURSE
  "CMakeFiles/fig5_sgemv_128iter.dir/fig5_sgemv_128iter.cpp.o"
  "CMakeFiles/fig5_sgemv_128iter.dir/fig5_sgemv_128iter.cpp.o.d"
  "fig5_sgemv_128iter"
  "fig5_sgemv_128iter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_sgemv_128iter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
