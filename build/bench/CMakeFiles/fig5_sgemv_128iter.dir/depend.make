# Empty dependencies file for fig5_sgemv_128iter.
# This may be replaced when dependencies are built.
