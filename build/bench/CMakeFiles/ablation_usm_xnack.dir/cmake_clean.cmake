file(REMOVE_RECURSE
  "CMakeFiles/ablation_usm_xnack.dir/ablation_usm_xnack.cpp.o"
  "CMakeFiles/ablation_usm_xnack.dir/ablation_usm_xnack.cpp.o.d"
  "ablation_usm_xnack"
  "ablation_usm_xnack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_usm_xnack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
