# Empty dependencies file for ablation_usm_xnack.
# This may be replaced when dependencies are built.
