# Empty compiler generated dependencies file for fig7_dawn_scaling.
# This may be replaced when dependencies are built.
