# Empty compiler generated dependencies file for ablation_pinned_memory.
# This may be replaced when dependencies are built.
