file(REMOVE_RECURSE
  "CMakeFiles/ablation_pinned_memory.dir/ablation_pinned_memory.cpp.o"
  "CMakeFiles/ablation_pinned_memory.dir/ablation_pinned_memory.cpp.o.d"
  "ablation_pinned_memory"
  "ablation_pinned_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pinned_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
