# Empty dependencies file for ext_sparse_threshold.
# This may be replaced when dependencies are built.
