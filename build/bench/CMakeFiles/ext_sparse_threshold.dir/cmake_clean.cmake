file(REMOVE_RECURSE
  "CMakeFiles/ext_sparse_threshold.dir/ext_sparse_threshold.cpp.o"
  "CMakeFiles/ext_sparse_threshold.dir/ext_sparse_threshold.cpp.o.d"
  "ext_sparse_threshold"
  "ext_sparse_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_sparse_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
