# Empty compiler generated dependencies file for fig2_dawn_sgemm.
# This may be replaced when dependencies are built.
