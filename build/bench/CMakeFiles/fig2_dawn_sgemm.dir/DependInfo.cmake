
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig2_dawn_sgemm.cpp" "bench/CMakeFiles/fig2_dawn_sgemm.dir/fig2_dawn_sgemm.cpp.o" "gcc" "bench/CMakeFiles/fig2_dawn_sgemm.dir/fig2_dawn_sgemm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gpublob.dir/DependInfo.cmake"
  "/root/repo/build/src/simgpu/CMakeFiles/blob_simgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/blob_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/sysprofile/CMakeFiles/blob_sysprofile.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/blob_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/blob_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/blob_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/blob_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
