file(REMOVE_RECURSE
  "CMakeFiles/fig2_dawn_sgemm.dir/fig2_dawn_sgemm.cpp.o"
  "CMakeFiles/fig2_dawn_sgemm.dir/fig2_dawn_sgemm.cpp.o.d"
  "fig2_dawn_sgemm"
  "fig2_dawn_sgemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_dawn_sgemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
