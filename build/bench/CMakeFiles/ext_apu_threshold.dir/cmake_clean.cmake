file(REMOVE_RECURSE
  "CMakeFiles/ext_apu_threshold.dir/ext_apu_threshold.cpp.o"
  "CMakeFiles/ext_apu_threshold.dir/ext_apu_threshold.cpp.o.d"
  "ext_apu_threshold"
  "ext_apu_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_apu_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
