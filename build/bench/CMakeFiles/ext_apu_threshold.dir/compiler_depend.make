# Empty compiler generated dependencies file for ext_apu_threshold.
# This may be replaced when dependencies are built.
