# Empty dependencies file for ext_batched_threshold.
# This may be replaced when dependencies are built.
