file(REMOVE_RECURSE
  "CMakeFiles/ext_batched_threshold.dir/ext_batched_threshold.cpp.o"
  "CMakeFiles/ext_batched_threshold.dir/ext_batched_threshold.cpp.o.d"
  "ext_batched_threshold"
  "ext_batched_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_batched_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
