file(REMOVE_RECURSE
  "CMakeFiles/table3_square_gemm.dir/table3_square_gemm.cpp.o"
  "CMakeFiles/table3_square_gemm.dir/table3_square_gemm.cpp.o.d"
  "table3_square_gemm"
  "table3_square_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_square_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
