# Empty dependencies file for table3_square_gemm.
# This may be replaced when dependencies are built.
