file(REMOVE_RECURSE
  "CMakeFiles/ablation_launch_latency.dir/ablation_launch_latency.cpp.o"
  "CMakeFiles/ablation_launch_latency.dir/ablation_launch_latency.cpp.o.d"
  "ablation_launch_latency"
  "ablation_launch_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_launch_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
