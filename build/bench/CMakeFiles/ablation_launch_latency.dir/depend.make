# Empty dependencies file for ablation_launch_latency.
# This may be replaced when dependencies are built.
