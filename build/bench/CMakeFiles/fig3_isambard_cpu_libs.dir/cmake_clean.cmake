file(REMOVE_RECURSE
  "CMakeFiles/fig3_isambard_cpu_libs.dir/fig3_isambard_cpu_libs.cpp.o"
  "CMakeFiles/fig3_isambard_cpu_libs.dir/fig3_isambard_cpu_libs.cpp.o.d"
  "fig3_isambard_cpu_libs"
  "fig3_isambard_cpu_libs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_isambard_cpu_libs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
