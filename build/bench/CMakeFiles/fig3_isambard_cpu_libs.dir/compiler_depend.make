# Empty compiler generated dependencies file for fig3_isambard_cpu_libs.
# This may be replaced when dependencies are built.
