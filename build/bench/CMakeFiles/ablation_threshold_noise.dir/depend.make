# Empty dependencies file for ablation_threshold_noise.
# This may be replaced when dependencies are built.
