file(REMOVE_RECURSE
  "CMakeFiles/ablation_threshold_noise.dir/ablation_threshold_noise.cpp.o"
  "CMakeFiles/ablation_threshold_noise.dir/ablation_threshold_noise.cpp.o.d"
  "ablation_threshold_noise"
  "ablation_threshold_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_threshold_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
