file(REMOVE_RECURSE
  "CMakeFiles/fig4_dgemv_1iter.dir/fig4_dgemv_1iter.cpp.o"
  "CMakeFiles/fig4_dgemv_1iter.dir/fig4_dgemv_1iter.cpp.o.d"
  "fig4_dgemv_1iter"
  "fig4_dgemv_1iter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_dgemv_1iter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
