# Empty compiler generated dependencies file for fig4_dgemv_1iter.
# This may be replaced when dependencies are built.
