file(REMOVE_RECURSE
  "CMakeFiles/table1_alphabeta.dir/table1_alphabeta.cpp.o"
  "CMakeFiles/table1_alphabeta.dir/table1_alphabeta.cpp.o.d"
  "table1_alphabeta"
  "table1_alphabeta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_alphabeta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
