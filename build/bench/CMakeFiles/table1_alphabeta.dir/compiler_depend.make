# Empty compiler generated dependencies file for table1_alphabeta.
# This may be replaced when dependencies are built.
