file(REMOVE_RECURSE
  "CMakeFiles/fig6_lumi_gemv_libs.dir/fig6_lumi_gemv_libs.cpp.o"
  "CMakeFiles/fig6_lumi_gemv_libs.dir/fig6_lumi_gemv_libs.cpp.o.d"
  "fig6_lumi_gemv_libs"
  "fig6_lumi_gemv_libs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_lumi_gemv_libs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
