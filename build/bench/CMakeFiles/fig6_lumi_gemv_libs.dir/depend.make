# Empty dependencies file for fig6_lumi_gemv_libs.
# This may be replaced when dependencies are built.
