file(REMOVE_RECURSE
  "CMakeFiles/table5_nonsquare_gemm.dir/table5_nonsquare_gemm.cpp.o"
  "CMakeFiles/table5_nonsquare_gemm.dir/table5_nonsquare_gemm.cpp.o.d"
  "table5_nonsquare_gemm"
  "table5_nonsquare_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_nonsquare_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
