# Empty dependencies file for table5_nonsquare_gemm.
# This may be replaced when dependencies are built.
