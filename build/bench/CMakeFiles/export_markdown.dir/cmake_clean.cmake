file(REMOVE_RECURSE
  "CMakeFiles/export_markdown.dir/export_markdown.cpp.o"
  "CMakeFiles/export_markdown.dir/export_markdown.cpp.o.d"
  "export_markdown"
  "export_markdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_markdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
