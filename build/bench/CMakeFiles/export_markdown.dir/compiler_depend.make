# Empty compiler generated dependencies file for export_markdown.
# This may be replaced when dependencies are built.
