file(REMOVE_RECURSE
  "CMakeFiles/test_blas_level3.dir/test_blas_level3.cpp.o"
  "CMakeFiles/test_blas_level3.dir/test_blas_level3.cpp.o.d"
  "test_blas_level3"
  "test_blas_level3.pdb"
  "test_blas_level3[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blas_level3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
