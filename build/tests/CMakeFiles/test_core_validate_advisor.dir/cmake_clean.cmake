file(REMOVE_RECURSE
  "CMakeFiles/test_core_validate_advisor.dir/test_core_validate_advisor.cpp.o"
  "CMakeFiles/test_core_validate_advisor.dir/test_core_validate_advisor.cpp.o.d"
  "test_core_validate_advisor"
  "test_core_validate_advisor.pdb"
  "test_core_validate_advisor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_validate_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
