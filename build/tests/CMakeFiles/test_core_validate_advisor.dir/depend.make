# Empty dependencies file for test_core_validate_advisor.
# This may be replaced when dependencies are built.
