# Empty compiler generated dependencies file for test_core_problem.
# This may be replaced when dependencies are built.
