file(REMOVE_RECURSE
  "CMakeFiles/test_core_problem.dir/test_core_problem.cpp.o"
  "CMakeFiles/test_core_problem.dir/test_core_problem.cpp.o.d"
  "test_core_problem"
  "test_core_problem.pdb"
  "test_core_problem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_problem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
