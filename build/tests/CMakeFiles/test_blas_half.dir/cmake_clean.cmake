file(REMOVE_RECURSE
  "CMakeFiles/test_blas_half.dir/test_blas_half.cpp.o"
  "CMakeFiles/test_blas_half.dir/test_blas_half.cpp.o.d"
  "test_blas_half"
  "test_blas_half.pdb"
  "test_blas_half[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blas_half.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
