# Empty dependencies file for test_blas_half.
# This may be replaced when dependencies are built.
