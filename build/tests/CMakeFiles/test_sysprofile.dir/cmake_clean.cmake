file(REMOVE_RECURSE
  "CMakeFiles/test_sysprofile.dir/test_sysprofile.cpp.o"
  "CMakeFiles/test_sysprofile.dir/test_sysprofile.cpp.o.d"
  "test_sysprofile"
  "test_sysprofile.pdb"
  "test_sysprofile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sysprofile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
