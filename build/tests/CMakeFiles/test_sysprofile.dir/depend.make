# Empty dependencies file for test_sysprofile.
# This may be replaced when dependencies are built.
