file(REMOVE_RECURSE
  "CMakeFiles/test_core_backends.dir/test_core_backends.cpp.o"
  "CMakeFiles/test_core_backends.dir/test_core_backends.cpp.o.d"
  "test_core_backends"
  "test_core_backends.pdb"
  "test_core_backends[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
