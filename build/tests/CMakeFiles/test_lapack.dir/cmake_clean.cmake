file(REMOVE_RECURSE
  "CMakeFiles/test_lapack.dir/test_lapack.cpp.o"
  "CMakeFiles/test_lapack.dir/test_lapack.cpp.o.d"
  "test_lapack"
  "test_lapack.pdb"
  "test_lapack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lapack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
