# Empty dependencies file for test_blas_cblas.
# This may be replaced when dependencies are built.
