file(REMOVE_RECURSE
  "CMakeFiles/test_blas_cblas.dir/test_blas_cblas.cpp.o"
  "CMakeFiles/test_blas_cblas.dir/test_blas_cblas.cpp.o.d"
  "test_blas_cblas"
  "test_blas_cblas.pdb"
  "test_blas_cblas[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blas_cblas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
