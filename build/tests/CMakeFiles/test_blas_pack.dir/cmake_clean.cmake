file(REMOVE_RECURSE
  "CMakeFiles/test_blas_pack.dir/test_blas_pack.cpp.o"
  "CMakeFiles/test_blas_pack.dir/test_blas_pack.cpp.o.d"
  "test_blas_pack"
  "test_blas_pack.pdb"
  "test_blas_pack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blas_pack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
