# Empty compiler generated dependencies file for test_blas_pack.
# This may be replaced when dependencies are built.
