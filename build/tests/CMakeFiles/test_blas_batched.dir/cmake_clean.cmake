file(REMOVE_RECURSE
  "CMakeFiles/test_blas_batched.dir/test_blas_batched.cpp.o"
  "CMakeFiles/test_blas_batched.dir/test_blas_batched.cpp.o.d"
  "test_blas_batched"
  "test_blas_batched.pdb"
  "test_blas_batched[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blas_batched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
