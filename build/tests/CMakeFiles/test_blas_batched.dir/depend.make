# Empty dependencies file for test_blas_batched.
# This may be replaced when dependencies are built.
