// JSON writer and run-manifest tests.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "core/manifest.hpp"
#include "sysprofile/profile.hpp"
#include "util/json.hpp"

namespace {

using namespace blob;
using util::JsonWriter;

TEST(Json, EscapesSpecialCharacters) {
  EXPECT_EQ(util::json_escape("plain"), "plain");
  EXPECT_EQ(util::json_escape("quote\"back\\slash"),
            "quote\\\"back\\\\slash");
  EXPECT_EQ(util::json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(util::json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Json, WritesNestedStructures) {
  std::ostringstream out;
  JsonWriter json(out, /*pretty=*/false);
  json.begin_object();
  json.kv("name", "blob");
  json.kv("count", 42);
  json.kv("ratio", 0.5);
  json.kv("flag", true);
  json.key("list").begin_array();
  json.value(1).value(2).value(3);
  json.end_array();
  json.key("nested").begin_object();
  json.key("inner").null();
  json.end_object();
  json.end_object();
  EXPECT_TRUE(json.complete());
  EXPECT_EQ(out.str(),
            "{\"name\":\"blob\",\"count\":42,\"ratio\":0.5,"
            "\"flag\":true,\"list\":[1,2,3],\"nested\":"
            "{\"inner\":null}}");
}

TEST(Json, PrettyOutputIndents) {
  std::ostringstream out;
  JsonWriter json(out, /*pretty=*/true);
  json.begin_object();
  json.kv("a", 1);
  json.end_object();
  EXPECT_EQ(out.str(), "{\n  \"a\": 1\n}");
}

TEST(Json, EmptyContainers) {
  std::ostringstream out;
  JsonWriter json(out, false);
  json.begin_object();
  json.key("empty_array").begin_array().end_array();
  json.key("empty_object").begin_object().end_object();
  json.end_object();
  EXPECT_EQ(out.str(), "{\"empty_array\":[],\"empty_object\":{}}");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  std::ostringstream out;
  JsonWriter json(out, false);
  json.begin_array();
  json.value(std::numeric_limits<double>::infinity());
  json.value(std::nan(""));
  json.end_array();
  EXPECT_EQ(out.str(), "[null,null]");
}

TEST(Json, MisuseThrows) {
  {
    std::ostringstream out;
    JsonWriter json(out);
    json.begin_object();
    EXPECT_THROW(json.value(1), std::logic_error);  // value without key
  }
  {
    std::ostringstream out;
    JsonWriter json(out);
    json.begin_array();
    EXPECT_THROW(json.key("k"), std::logic_error);  // key inside array
    EXPECT_THROW(json.end_object(), std::logic_error);
  }
  {
    std::ostringstream out;
    JsonWriter json(out);
    json.value(1);
    EXPECT_THROW(json.value(2), std::logic_error);  // two top-level values
  }
}

TEST(JsonParse, ScalarsAndContainers) {
  const util::JsonValue doc = util::json_parse(
      R"({"s": "hi", "i": 42, "d": 0.5, "t": true, "f": false,
          "nul": null, "arr": [1, 2, 3], "obj": {"k": -7}})");
  EXPECT_EQ(doc.at("s").as_string(), "hi");
  EXPECT_EQ(doc.at("i").as_int(), 42);
  EXPECT_DOUBLE_EQ(doc.at("d").as_double(), 0.5);
  EXPECT_TRUE(doc.at("t").as_bool());
  EXPECT_FALSE(doc.at("f").as_bool());
  EXPECT_TRUE(doc.at("nul").is_null());
  ASSERT_EQ(doc.at("arr").as_array().size(), 3u);
  EXPECT_EQ(doc.at("arr").as_array()[2].as_int(), 3);
  EXPECT_EQ(doc.at("obj").at("k").as_int(), -7);
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW((void)doc.at("missing"), util::JsonError);
}

TEST(JsonParse, StringEscapes) {
  const util::JsonValue doc =
      util::json_parse(R"(["a\"b\\c", "line\nbreak", "Aé"])");
  const auto& arr = doc.as_array();
  EXPECT_EQ(arr[0].as_string(), "a\"b\\c");
  EXPECT_EQ(arr[1].as_string(), "line\nbreak");
  EXPECT_EQ(arr[2].as_string(), "A\xc3\xa9");
}

TEST(JsonParse, RoundTripsWriterOutput) {
  std::ostringstream out;
  JsonWriter json(out, /*pretty=*/true);
  json.begin_object();
  json.kv("name", "store \"v1\"");
  json.kv("count", std::int64_t{1} << 40);
  json.kv("ewma", 3.0625e-5);
  json.key("entries").begin_array();
  json.begin_object().kv("bucket", 12).kv("cpu", 1.5).end_object();
  json.end_array();
  json.end_object();
  const util::JsonValue doc = util::json_parse(out.str());
  EXPECT_EQ(doc.at("name").as_string(), "store \"v1\"");
  EXPECT_EQ(doc.at("count").as_int(), std::int64_t{1} << 40);
  EXPECT_DOUBLE_EQ(doc.at("ewma").as_double(), 3.0625e-5);
  EXPECT_EQ(doc.at("entries").as_array()[0].at("bucket").as_int(), 12);
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW(util::json_parse(""), util::JsonError);
  EXPECT_THROW(util::json_parse("{"), util::JsonError);
  EXPECT_THROW(util::json_parse("[1,]"), util::JsonError);
  EXPECT_THROW(util::json_parse("{\"a\" 1}"), util::JsonError);
  EXPECT_THROW(util::json_parse("{\"a\": 1} extra"), util::JsonError);
  EXPECT_THROW(util::json_parse("tru"), util::JsonError);
  EXPECT_THROW(util::json_parse("1.2.3"), util::JsonError);
  EXPECT_THROW(util::json_parse("\"unterminated"), util::JsonError);
}

TEST(JsonParse, TypeMismatchThrows) {
  const util::JsonValue doc = util::json_parse(R"({"a": 1.5})");
  EXPECT_THROW((void)doc.at("a").as_string(), util::JsonError);
  EXPECT_THROW((void)doc.at("a").as_int(), util::JsonError);  // non-integral
  EXPECT_THROW((void)doc.as_array(), util::JsonError);
}

TEST(Manifest, DumpsFullSystemParameterisation) {
  std::ostringstream out;
  core::SweepConfig cfg;
  cfg.iterations = 8;
  cfg.batch = 4;
  core::write_run_manifest(out, profile::lumi(), cfg,
                           {"gemm_square", "gemv_square"});
  const std::string json = out.str();
  // Spot-check the load-bearing facts.
  EXPECT_NE(json.find("\"name\": \"lumi\""), std::string::npos);
  EXPECT_NE(json.find("\"gemv_parallel\": false"), std::string::npos);
  EXPECT_NE(json.find("\"iterations\": 8"), std::string::npos);
  EXPECT_NE(json.find("\"batch\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"gemm_square\""), std::string::npos);
  EXPECT_NE(json.find("\"usm_kernel_overhead_s\""), std::string::npos);
  EXPECT_NE(json.find("\"step-up-at\""), std::string::npos);
  // Balanced braces (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

}  // namespace
