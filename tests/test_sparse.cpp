// CSR construction, SpMV kernels, and the SpMV timing model.

#include <gtest/gtest.h>

#include "blas/ref_blas.hpp"
#include "blas_test_util.hpp"
#include "sparse/csr.hpp"
#include "sparse/model.hpp"
#include "sparse/spmv.hpp"
#include "sysprofile/profile.hpp"

namespace {

using namespace blob;
using namespace blob::sparse;
using blob::test::random_vector;

TEST(Csr, FromTripletsSortsAndSums) {
  std::vector<Triplet<double>> triplets = {
      {1, 2, 3.0}, {0, 0, 1.0}, {1, 2, 4.0}, {0, 3, 2.0}};
  const auto m = CsrMatrix<double>::from_triplets(2, 4, triplets);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.nnz(), 3);  // duplicates merged
  EXPECT_DOUBLE_EQ(m.at(1, 2), 7.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 3), 2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
}

TEST(Csr, RejectsOutOfRangeTriplets) {
  std::vector<Triplet<double>> bad = {{2, 0, 1.0}};
  EXPECT_THROW(CsrMatrix<double>::from_triplets(2, 2, bad), SparseError);
  EXPECT_THROW(CsrMatrix<double>::random(4, 4, 0.0, 1), SparseError);
  EXPECT_THROW(CsrMatrix<double>::random(4, 4, 1.5, 1), SparseError);
}

TEST(Csr, DenseRoundTrip) {
  const int rows = 13, cols = 9;
  auto dense = random_vector<double>(static_cast<std::size_t>(rows) * cols, 1);
  // Punch ~60% zeros.
  for (std::size_t i = 0; i < dense.size(); i += 2) dense[i] = 0.0;
  for (std::size_t i = 0; i < dense.size(); i += 5) dense[i] = 0.0;
  const auto m = CsrMatrix<double>::from_dense(rows, cols, dense.data(), rows);
  EXPECT_EQ(m.to_dense(), dense);
}

TEST(Csr, RandomRespectsDensityAndSeed) {
  const auto a = CsrMatrix<double>::random(200, 200, 0.05, 42);
  const auto b = CsrMatrix<double>::random(200, 200, 0.05, 42);
  const auto c = CsrMatrix<double>::random(200, 200, 0.05, 43);
  EXPECT_EQ(a.nnz(), b.nnz());
  EXPECT_EQ(a.values(), b.values());
  EXPECT_NE(a.values(), c.values());
  EXPECT_NEAR(a.density(), 0.05, 0.01);
}

TEST(Csr, EnsureDiagonalForcesFullDiagonal) {
  const auto m = CsrMatrix<double>::random(64, 64, 0.01, 7, true);
  for (int i = 0; i < 64; ++i) EXPECT_NE(m.at(i, i), 0.0);
}

TEST(Csr, RowPtrInvariants) {
  const auto m = CsrMatrix<double>::random(50, 80, 0.1, 3);
  const auto& ptr = m.row_ptr();
  ASSERT_EQ(ptr.size(), 51u);
  EXPECT_EQ(ptr.front(), 0);
  EXPECT_EQ(ptr.back(), m.nnz());
  for (std::size_t i = 1; i < ptr.size(); ++i) EXPECT_GE(ptr[i], ptr[i - 1]);
  // Columns sorted within each row.
  for (int r = 0; r < 50; ++r) {
    for (std::int64_t i = ptr[static_cast<std::size_t>(r)] + 1;
         i < ptr[static_cast<std::size_t>(r) + 1]; ++i) {
      EXPECT_LT(m.col_idx()[static_cast<std::size_t>(i - 1)],
                m.col_idx()[static_cast<std::size_t>(i)]);
    }
  }
}

// ------------------------------------------------------------------ spmv

class SpmvCase : public ::testing::TestWithParam<double> {};

TEST_P(SpmvCase, MatchesDenseGemv) {
  const int rows = 120, cols = 90;
  const auto m = CsrMatrix<double>::random(rows, cols, GetParam(), 11);
  const auto dense = m.to_dense();
  auto x = random_vector<double>(cols, 12);
  auto y_sparse = random_vector<double>(rows, 13);
  auto y_dense = y_sparse;
  spmv_serial(m, 1.5, x.data(), 0.5, y_sparse.data());
  blas::ref::gemv(blas::Transpose::No, rows, cols, 1.5, dense.data(), rows,
                  x.data(), 1, 0.5, y_dense.data(), 1);
  test::expect_near_rel(y_sparse, y_dense, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Densities, SpmvCase,
                         ::testing::Values(0.01, 0.1, 0.5, 1.0));

TEST(Spmv, ThreadedMatchesSerial) {
  const int n = 600;
  parallel::ThreadPool pool(4);
  const auto m = CsrMatrix<double>::random(n, n, 0.05, 21);
  auto x = random_vector<double>(n, 22);
  std::vector<double> y1(n, 0.0);
  std::vector<double> y2(n, 0.0);
  spmv_serial(m, 1.0, x.data(), 0.0, y1.data());
  spmv(m, 1.0, x.data(), 0.0, y2.data(), &pool, 4);
  test::expect_near_rel(y2, y1, 1e-12);
}

TEST(Spmv, BetaZeroOverwrites) {
  const auto m = CsrMatrix<double>::from_triplets(2, 2, {{0, 0, 2.0}});
  std::vector<double> x = {3.0, 1.0};
  std::vector<double> y = {std::nan(""), std::nan("")};
  spmv_serial(m, 1.0, x.data(), 0.0, y.data());
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);  // empty row -> exactly zero
}

TEST(Spmv, EmptyMatrix) {
  const auto m = CsrMatrix<double>::from_triplets(3, 3, {});
  std::vector<double> x = {1.0, 1.0, 1.0};
  std::vector<double> y = {5.0, 5.0, 5.0};
  spmv_serial(m, 1.0, x.data(), 2.0, y.data());
  for (double v : y) EXPECT_DOUBLE_EQ(v, 10.0);
}

// ----------------------------------------------------------------- model

TEST(SpmvModel, BytesScaleWithNnz) {
  const double sparse_bytes = spmv_bytes(model::Precision::F64, 1000, 1000,
                                         5000);
  const double denser = spmv_bytes(model::Precision::F64, 1000, 1000, 50000);
  EXPECT_GT(denser, 5 * sparse_bytes);
}

TEST(SpmvModel, GatherLocalityDecaysPastCache) {
  EXPECT_DOUBLE_EQ(gather_locality(model::Precision::F64, 1000, 64.0), 1.0);
  const double huge = gather_locality(model::Precision::F64, 1 << 28, 64.0);
  EXPECT_LT(huge, 1.0);
  EXPECT_GE(huge, 0.25);
}

TEST(SpmvModel, CpuTimeMonotoneAndThreadedFaster) {
  const auto cpu = profile::lumi().cpu;
  const double small = spmv_cpu_time(cpu, model::Precision::F64, 1000, 1000,
                                     10000);
  const double large = spmv_cpu_time(cpu, model::Precision::F64, 10000,
                                     10000, 1000000);
  EXPECT_GT(large, small);
  EXPECT_LT(spmv_cpu_time(cpu, model::Precision::F64, 100000, 100000,
                          10000000, true),
            spmv_cpu_time(cpu, model::Precision::F64, 100000, 100000,
                          10000000, false));
}

TEST(SpmvModel, TransferOnceAmortises) {
  const auto prof = profile::dawn();
  const double one = spmv_gpu_transfer_once_time(
      prof.gpu, prof.link, model::Precision::F64, 10000, 10000, 500000, 1);
  const double hundred = spmv_gpu_transfer_once_time(
      prof.gpu, prof.link, model::Precision::F64, 10000, 10000, 500000, 100);
  EXPECT_LT(hundred, 100 * one);
}

TEST(SpmvModel, SocLinkMakesGpuSpmvViable) {
  // The sparse analogue of the paper's SoC conclusion: with modest
  // re-use (4 calls) a big SpMV offloads on the GH200 profile but not
  // over DAWN's PCIe link.
  const std::int64_t n = 200000, nnz = 10000000, iters = 4;
  const auto isam = profile::isambard_ai();
  const auto dawn_p = profile::dawn();
  const double isam_gpu = spmv_gpu_transfer_once_time(
      isam.gpu, isam.link, model::Precision::F64, n, n, nnz, iters);
  const double isam_cpu =
      iters * spmv_cpu_time(isam.cpu, model::Precision::F64, n, n, nnz);
  EXPECT_LT(isam_gpu, isam_cpu);
  const double dawn_gpu = spmv_gpu_transfer_once_time(
      dawn_p.gpu, dawn_p.link, model::Precision::F64, n, n, nnz, iters);
  const double dawn_cpu =
      iters * spmv_cpu_time(dawn_p.cpu, model::Precision::F64, n, n, nnz);
  EXPECT_GT(dawn_gpu, dawn_cpu);
}

}  // namespace
