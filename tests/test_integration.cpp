// Integration tests: full sweeps on the calibrated system profiles must
// reproduce the paper's headline findings (shape level). These are the
// executable versions of the artifact appendix's "Expected Results".

#include <gtest/gtest.h>

#include "core/report.hpp"
#include "core/sim_backend.hpp"
#include "core/sweep.hpp"
#include "core/validate.hpp"
#include "simgpu/device.hpp"
#include "sysprofile/profile.hpp"

namespace {

using namespace blob;
using namespace blob::core;

SweepResult sweep(const profile::SystemProfile& prof, const char* type_id,
                  std::int64_t iterations, model::Precision precision,
                  std::int64_t stride = 1) {
  SimBackend backend(prof);
  SweepConfig cfg;
  cfg.s_min = 1;
  cfg.s_max = 4096;
  cfg.stride = stride;
  cfg.iterations = iterations;
  cfg.precision = precision;
  return run_sweep(backend, problem_type_by_id(type_id), cfg);
}

std::int64_t once_threshold(const SweepResult& r) {
  return r.thresholds[0].has_value() ? r.thresholds[0]->s : -1;
}

// --------------------------------------------------- square GEMM (T. III)

TEST(Integration, SquareGemmThresholdOrderingAcrossSystems) {
  // Isambard-AI << LUMI < DAWN at one iteration.
  const auto dawn =
      sweep(profile::dawn(), "gemm_square", 1, model::Precision::F32);
  const auto lumi =
      sweep(profile::lumi(), "gemm_square", 1, model::Precision::F32);
  const auto isambard =
      sweep(profile::isambard_ai(), "gemm_square", 1, model::Precision::F32);
  ASSERT_GT(once_threshold(dawn), 0);
  ASSERT_GT(once_threshold(lumi), 0);
  ASSERT_GT(once_threshold(isambard), 0);
  EXPECT_LT(once_threshold(isambard), once_threshold(lumi));
  EXPECT_LT(once_threshold(lumi), once_threshold(dawn));
  EXPECT_LT(once_threshold(isambard), 150);  // "almost amortised" SoC
  EXPECT_GT(once_threshold(dawn), 400);      // moderate threshold
}

TEST(Integration, TransferOnceThresholdShrinksWithIterations) {
  for (const char* system : {"dawn", "lumi"}) {
    const auto prof = profile::by_name(system);
    const auto i1 = sweep(prof, "gemm_square", 1, model::Precision::F64);
    const auto i128 = sweep(prof, "gemm_square", 128, model::Precision::F64);
    ASSERT_GT(once_threshold(i1), 0) << system;
    ASSERT_GT(once_threshold(i128), 0) << system;
    EXPECT_LT(once_threshold(i128), once_threshold(i1)) << system;
  }
}

TEST(Integration, TransferAlwaysThresholdGrowsWithIterations) {
  for (const char* system : {"dawn", "lumi"}) {
    const auto prof = profile::by_name(system);
    const auto i1 = sweep(prof, "gemm_square", 1, model::Precision::F32);
    const auto i128 = sweep(prof, "gemm_square", 128, model::Precision::F32);
    ASSERT_TRUE(i1.thresholds[1].has_value()) << system;
    ASSERT_TRUE(i128.thresholds[1].has_value()) << system;
    EXPECT_GT(i128.thresholds[1]->s, i1.thresholds[1]->s) << system;
  }
}

TEST(Integration, LumiTransferOnceCollapsesAtHighIterations) {
  // Table III: {2,2,2} from 32 iterations on LUMI.
  const auto r = sweep(profile::lumi(), "gemm_square", 32,
                       model::Precision::F64);
  ASSERT_TRUE(r.thresholds[0].has_value());
  EXPECT_LE(r.thresholds[0]->s, 8);
}

TEST(Integration, UsmLagsTransferOnceOnLumi) {
  const auto r = sweep(profile::lumi(), "gemm_square", 32,
                       model::Precision::F32);
  ASSERT_TRUE(r.thresholds[0].has_value());
  ASSERT_TRUE(r.thresholds[2].has_value());
  EXPECT_GT(r.thresholds[2]->s, r.thresholds[0]->s);
}

TEST(Integration, UsmTracksTransferOnceOnDawn) {
  const auto r = sweep(profile::dawn(), "gemm_square", 32,
                       model::Precision::F32);
  ASSERT_TRUE(r.thresholds[0].has_value());
  ASSERT_TRUE(r.thresholds[2].has_value());
  const double ratio = static_cast<double>(r.thresholds[2]->s) /
                       static_cast<double>(r.thresholds[0]->s);
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.3);
}

// --------------------------------------------------- square GEMV (T. IV)

TEST(Integration, SquareGemvNeverOffloadsWithTransferAlways) {
  // "The one consistency across all systems" (paper §V).
  for (const char* system : {"dawn", "lumi", "isambard-ai"}) {
    for (std::int64_t iters : {1LL, 8LL, 128LL}) {
      const auto r = sweep(profile::by_name(system), "gemv_square", iters,
                           model::Precision::F32, 4);
      EXPECT_FALSE(r.thresholds[1].has_value())
          << system << " iters=" << iters;
    }
  }
}

TEST(Integration, SquareGemvNeverOffloadsAtOneIteration) {
  for (const char* system : {"dawn", "lumi", "isambard-ai"}) {
    const auto r = sweep(profile::by_name(system), "gemv_square", 1,
                         model::Precision::F64, 4);
    for (const auto& t : r.thresholds) {
      EXPECT_FALSE(t.has_value()) << system;
    }
  }
}

TEST(Integration, LumiGemvThresholdDecreasesWithIterations) {
  const auto i8 = sweep(profile::lumi(), "gemv_square", 8,
                        model::Precision::F32);
  const auto i128 = sweep(profile::lumi(), "gemv_square", 128,
                          model::Precision::F32);
  ASSERT_GT(once_threshold(i8), 0);
  ASSERT_GT(once_threshold(i128), 0);
  EXPECT_LT(once_threshold(i128), once_threshold(i8));
}

TEST(Integration, IsambardGemvThresholdPinnedByCpuDrop) {
  // ~{256, 256} regardless of iteration count (§IV-B).
  for (std::int64_t iters : {8LL, 32LL, 128LL}) {
    const auto r = sweep(profile::isambard_ai(), "gemv_square", iters,
                         model::Precision::F32);
    ASSERT_GT(once_threshold(r), 0) << iters;
    EXPECT_NEAR(static_cast<double>(once_threshold(r)), 256.0, 64.0)
        << iters;
  }
}

TEST(Integration, OpenBlasEliminatesLumiGemvThresholds) {
  // Fig. 6: with a threaded GEMV no transfer type ever yields a
  // threshold on LUMI.
  for (std::int64_t iters : {8LL, 128LL}) {
    const auto r = sweep(profile::lumi_openblas(), "gemv_square", iters,
                         model::Precision::F64, 4);
    for (const auto& t : r.thresholds) {
      EXPECT_FALSE(t.has_value()) << iters;
    }
  }
}

// ---------------------------------------------- non-square (T. V / VI)

TEST(Integration, TallKGemmOffloadsEverywhereAtOneIteration) {
  // M=N, K=16M produces a threshold on all systems at 1 iteration.
  for (const char* system : {"dawn", "lumi", "isambard-ai"}) {
    const auto r = sweep(profile::by_name(system), "gemm_tall_k", 1,
                         model::Precision::F32, 2);
    EXPECT_TRUE(r.thresholds[0].has_value()) << system;
  }
}

TEST(Integration, DawnNeverOffloadsSkinnyFixed32Gemms) {
  for (const char* type :
       {"gemm_fixed_mn_32", "gemm_fixed_kn_32", "gemm_fixed_mk_32"}) {
    for (std::int64_t iters : {1LL, 32LL, 128LL}) {
      const auto r = sweep(profile::dawn(), type, iters,
                           model::Precision::F32, 4);
      EXPECT_FALSE(r.thresholds[0].has_value()) << type << " i=" << iters;
    }
  }
}

TEST(Integration, DawnNeverOffloadsNonSquareGemv) {
  for (const char* type : {"gemv_tall", "gemv_fixed_n_32", "gemv_wide",
                           "gemv_fixed_m_32"}) {
    for (std::int64_t iters : {1LL, 64LL}) {
      const auto r = sweep(profile::dawn(), type, iters,
                           model::Precision::F64, 4);
      EXPECT_FALSE(r.thresholds[0].has_value()) << type << " i=" << iters;
    }
  }
}

TEST(Integration, LumiWideGemvNeverOffloads) {
  const auto r = sweep(profile::lumi(), "gemv_wide", 128,
                       model::Precision::F32, 4);
  for (const auto& t : r.thresholds) EXPECT_FALSE(t.has_value());
}

TEST(Integration, LumiTallGemvOffloadsWithReuse) {
  const auto r = sweep(profile::lumi(), "gemv_tall", 8,
                       model::Precision::F32, 2);
  EXPECT_TRUE(r.thresholds[0].has_value());
}

// -------------------------------------------------------- validation e2e

TEST(Integration, SweepAndValidationAgreeOnAllProblemTypes) {
  blas::CpuBlasLibrary cpu(blas::generic_personality(), 2);
  const auto prof = profile::isambard_ai();
  sim::SimGpu gpu(sim::SimGpu::Config{prof.gpu, prof.link, true, 512.0});
  for (const auto& type : all_problem_types()) {
    Problem problem;
    problem.op = type.op();
    problem.precision = model::Precision::F64;
    problem.dims = type.dims(5);
    const auto v = validate_problem(problem, cpu, gpu);
    EXPECT_TRUE(v.passed) << type.id() << ": " << v.detail;
  }
}

TEST(Integration, ThresholdPostconditionHoldsEverywhere) {
  // For every (system, problem type): if a threshold is reported, then
  // from that sample onward the GPU wins at every size except isolated
  // single-sample dips — verified against the raw sweep data, not the
  // detector. Covers all 14 types on all three paper systems.
  for (const char* system : {"dawn", "lumi", "isambard-ai"}) {
    SimBackend backend(profile::by_name(system));
    for (const auto& type : all_problem_types()) {
      SweepConfig cfg;
      cfg.s_max = 1024;
      cfg.stride = 3;
      cfg.iterations = 8;
      const auto r = run_sweep(backend, type, cfg);
      for (std::size_t mode = 0; mode < 3; ++mode) {
        if (!r.thresholds[mode].has_value()) continue;
        const std::int64_t t = r.thresholds[mode]->s;
        for (std::size_t i = 0; i < r.samples.size(); ++i) {
          if (r.samples[i].s < t) continue;
          const bool win =
              r.samples[i].gpu_seconds[mode] < r.samples[i].cpu_seconds;
          if (win) continue;
          const bool prev_win =
              i > 0 &&
              r.samples[i - 1].gpu_seconds[mode] <
                  r.samples[i - 1].cpu_seconds;
          const bool next_win =
              i + 1 < r.samples.size() &&
              r.samples[i + 1].gpu_seconds[mode] <
                  r.samples[i + 1].cpu_seconds;
          ASSERT_TRUE(prev_win && next_win)
              << system << " " << type.id() << " mode=" << mode
              << " s=" << r.samples[i].s << " threshold=" << t;
        }
      }
    }
  }
}

TEST(Integration, SweepsAreBitReproducible) {
  // Interleaved vs repeated runs: the simulation is deterministic, so
  // two sweeps of the same configuration agree exactly (the property
  // that lets the paper's split CPU-only/GPU-only LUMI runs be merged).
  const auto& type = problem_type_by_id("gemm_square");
  SweepConfig cfg;
  cfg.s_max = 256;
  cfg.iterations = 8;
  SimBackend a(profile::lumi());
  SimBackend b(profile::lumi());
  const auto r1 = run_sweep(a, type, cfg);
  const auto r2 = run_sweep(b, type, cfg);
  ASSERT_EQ(r1.samples.size(), r2.samples.size());
  for (std::size_t i = 0; i < r1.samples.size(); ++i) {
    ASSERT_DOUBLE_EQ(r1.samples[i].cpu_seconds, r2.samples[i].cpu_seconds);
    for (int mode = 0; mode < 3; ++mode) {
      ASSERT_DOUBLE_EQ(r1.samples[i].gpu_seconds[mode],
                       r2.samples[i].gpu_seconds[mode]);
    }
  }
}

TEST(Integration, ValidationPassesOnEveryProfile) {
  blas::CpuBlasLibrary cpu(blas::generic_personality(), 2);
  for (const auto& name : profile::profile_names()) {
    const auto prof = profile::by_name(name);
    sim::SimGpu gpu(sim::SimGpu::Config{prof.gpu, prof.link, true, 256.0});
    Problem p;
    p.op = KernelOp::Gemm;
    p.precision = model::Precision::F32;
    p.dims = {19, 23, 11};
    const auto v = validate_problem(p, cpu, gpu);
    EXPECT_TRUE(v.passed) << name << ": " << v.detail;
  }
}

TEST(Integration, EndToEndEntryPipeline) {
  SimBackend backend(profile::isambard_ai());
  SweepConfig cfg;
  cfg.s_max = 512;
  cfg.iterations = 8;
  const auto& type = problem_type_by_id("gemm_square");
  cfg.precision = model::Precision::F32;
  const auto f32 = run_sweep(backend, type, cfg);
  cfg.precision = model::Precision::F64;
  const auto f64 = run_sweep(backend, type, cfg);
  const auto entry = make_entry(f32, f64);
  const std::string table = render_threshold_table("isambard-ai", type,
                                                   {entry});
  EXPECT_NE(table.find("isambard-ai GEMM"), std::string::npos);
  EXPECT_EQ(table.find("-- : --"), std::string::npos);  // all modes offload
}

}  // namespace
