// End-to-end dispatcher acceptance: after a warm-up the routed cost sits
// within 10% of the per-call oracle and strictly beats the always-CPU /
// always-GPU static ports; a restart from the persisted calibration
// serves immediately without re-exploring (asserted on the counters).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "dispatch/dispatcher.hpp"
#include "util/rng.hpp"

namespace {

using namespace blob;

struct ShapeClass {
  core::KernelOp op;
  model::Precision precision;
  std::int64_t m, n, k;
  double weight;
  blas::Transpose ta = blas::Transpose::No;
  blas::Transpose tb = blas::Transpose::No;
};

struct ClassBuffers {
  std::vector<float> a32, b32, c32;
  std::vector<double> a64, b64, c64;
};

struct Baselines {
  double oracle = 0.0;
  double always_cpu = 0.0;
  double always_gpu = 0.0;
};

core::OpDesc to_desc(const ShapeClass& cls, core::TransferMode mode) {
  return cls.op == core::KernelOp::Gemv
             ? core::OpDesc::gemv(cls.precision, cls.ta, cls.m, cls.n, 0, 1,
                                  1, /*alpha_one=*/true, /*beta_zero=*/true,
                                  mode)
             : core::OpDesc::gemm(cls.precision, cls.ta, cls.tb, cls.m,
                                  cls.n, cls.k, 0, 0, 0, /*alpha_one=*/true,
                                  /*beta_zero=*/true, mode);
}

/// Smallest square f32 GEMM dimension the advisor offloads on `disp`'s
/// profile — keeps the workload's GPU-favoured class as cheap as possible
/// for test runtime while guaranteeing the mix spans both routes.
std::int64_t smallest_offloaded_gemm(const dispatch::Dispatcher& disp) {
  for (std::int64_t s : {256, 320, 384, 448, 512, 640, 768}) {
    const core::OpDesc desc = core::OpDesc::gemm(
        model::Precision::F32, blas::Transpose::No, blas::Transpose::No, s,
        s, s, 0, 0, 0, /*alpha_one=*/true, /*beta_zero=*/true,
        disp.config().mode);
    if (disp.oracle_route(desc) == dispatch::Route::Gpu) return s;
  }
  return 0;
}

ClassBuffers make_buffers(const ShapeClass& cls, util::Xoshiro256& rng) {
  ClassBuffers buf;
  const std::size_t an = static_cast<std::size_t>(
      cls.op == core::KernelOp::Gemv ? cls.m * cls.n : cls.m * cls.k);
  const std::size_t bn = static_cast<std::size_t>(
      cls.op == core::KernelOp::Gemv ? cls.n : cls.k * cls.n);
  const std::size_t cn = static_cast<std::size_t>(
      cls.op == core::KernelOp::Gemv ? cls.m : cls.m * cls.n);
  if (cls.precision == model::Precision::F32) {
    buf.a32.resize(an);
    buf.b32.resize(bn);
    buf.c32.resize(cn);
    for (auto& v : buf.a32) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (auto& v : buf.b32) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  } else {
    buf.a64.resize(an);
    buf.b64.resize(bn);
    buf.c64.resize(cn);
    for (auto& v : buf.a64) v = rng.uniform(-1.0, 1.0);
    for (auto& v : buf.b64) v = rng.uniform(-1.0, 1.0);
  }
  return buf;
}

/// Replay `calls` weighted draws through the dispatcher; returns the
/// modelled baselines accumulated over the same call sequence.
Baselines replay(dispatch::Dispatcher& disp,
                 const std::vector<ShapeClass>& classes, int calls,
                 std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<ClassBuffers> buffers;
  buffers.reserve(classes.size());
  for (const auto& cls : classes) buffers.push_back(make_buffers(cls, rng));

  Baselines base;
  for (int i = 0; i < calls; ++i) {
    double pick = rng.next_double();
    std::size_t ci = 0;
    for (; ci + 1 < classes.size(); ++ci) {
      if (pick < classes[ci].weight) break;
      pick -= classes[ci].weight;
    }
    const ShapeClass& cls = classes[ci];
    ClassBuffers& buf = buffers[ci];

    const core::OpDesc desc = to_desc(cls, disp.config().mode);
    const auto costs = disp.modelled_costs(desc);
    base.oracle += std::min(costs.cpu_s, costs.gpu_s);
    base.always_cpu += costs.cpu_s;
    base.always_gpu += costs.gpu_s;

    if (cls.op == core::KernelOp::Gemm) {
      if (cls.precision == model::Precision::F32) {
        disp.run_gemm<float>(desc, 1.0F, buf.a32.data(), buf.b32.data(),
                             0.0F, buf.c32.data());
      } else {
        disp.run_gemm<double>(desc, 1.0, buf.a64.data(), buf.b64.data(), 0.0,
                              buf.c64.data());
      }
    } else if (cls.precision == model::Precision::F32) {
      disp.run_gemv<float>(desc, 1.0F, buf.a32.data(), buf.b32.data(), 0.0F,
                           buf.c32.data());
    } else {
      disp.run_gemv<double>(desc, 1.0, buf.a64.data(), buf.b64.data(), 0.0,
                            buf.c64.data());
    }
  }
  return base;
}

double routed_seconds(const dispatch::Dispatcher& disp) {
  const auto stats = disp.stats();
  return stats.cpu_seconds + stats.gpu_seconds;
}

TEST(DispatchConvergence, TracksOracleAndBeatsStaticRouting) {
  dispatch::DispatcherConfig cfg;
  cfg.profile = profile::dawn();
  cfg.cpu_threads = 2;
  dispatch::Dispatcher disp(cfg);

  const std::int64_t big = smallest_offloaded_gemm(disp);
  ASSERT_GT(big, 0) << "no offloaded f32 GEMM size on dawn?";
  const std::vector<ShapeClass> classes = {
      {core::KernelOp::Gemm, model::Precision::F32, 48, 48, 48, 0.35},
      {core::KernelOp::Gemm, model::Precision::F32, 160, 160, 160, 0.15},
      // Transposed traffic rides the same buckets (keyed by ta/tb), CPU
      // and GPU routes alike — no Forced fallback.
      {core::KernelOp::Gemm, model::Precision::F32, 160, 160, 160, 0.10,
       blas::Transpose::Yes, blas::Transpose::No},
      {core::KernelOp::Gemm, model::Precision::F32, big, big, big, 0.25},
      {core::KernelOp::Gemv, model::Precision::F64, 768, 768, 1, 0.15},
  };

  // Warm-up phase: cold starts + exploration, learning the table.
  const Baselines warm = replay(disp, classes, 120, 0xc0ffee);
  const double warm_routed = routed_seconds(disp);
  const auto warm_stats = disp.stats();
  EXPECT_GT(warm_stats.cold_starts, 0u);

  // Steady state: within 10% of the per-call oracle.
  const Baselines steady = replay(disp, classes, 240, 0xc0ffee + 1);
  const double steady_routed = routed_seconds(disp) - warm_routed;
  ASSERT_GT(steady.oracle, 0.0);
  EXPECT_LE(steady_routed, steady.oracle * 1.10)
      << "steady-state regret above 10%";

  // Whole replay (exploration tax included): strictly better than either
  // static port.
  const Baselines total{warm.oracle + steady.oracle,
                        warm.always_cpu + steady.always_cpu,
                        warm.always_gpu + steady.always_gpu};
  const double routed = routed_seconds(disp);
  EXPECT_LT(routed, total.always_cpu);
  EXPECT_LT(routed, total.always_gpu);

  // The mix genuinely spans both sides, or the comparison is vacuous.
  const auto stats = disp.stats();
  EXPECT_GT(stats.cpu_routed, 0u);
  EXPECT_GT(stats.gpu_routed, 0u);
}

TEST(DispatchConvergence, WarmRestartSkipsReExploration) {
  const std::string path = testing::TempDir() + "/dispatch_warm.json";
  dispatch::DispatcherConfig cfg;
  cfg.profile = profile::dawn();
  cfg.cpu_threads = 2;

  std::vector<ShapeClass> classes;
  {
    dispatch::Dispatcher cold(cfg);
    const std::int64_t big = smallest_offloaded_gemm(cold);
    ASSERT_GT(big, 0);
    classes = {
        {core::KernelOp::Gemm, model::Precision::F32, 48, 48, 48, 0.45},
        {core::KernelOp::Gemm, model::Precision::F32, big, big, big, 0.30},
        {core::KernelOp::Gemv, model::Precision::F64, 768, 768, 1, 0.25},
    };
    replay(cold, classes, 200, 0xabcde);
    EXPECT_GT(cold.stats().cold_starts, 0u);
    EXPECT_GT(cold.stats().explores, 0u);
    ASSERT_TRUE(cold.save_calibration(path));
  }

  dispatch::DispatcherConfig warm_cfg = cfg;
  warm_cfg.calibration_path = path;
  dispatch::Dispatcher warm(warm_cfg);
  ASSERT_EQ(warm.startup_load_status(), dispatch::LoadStatus::Ok);
  EXPECT_EQ(warm.stats().calibration_loads, 1u);

  const Baselines base = replay(warm, classes, 160, 0xabcde + 7);
  const auto stats = warm.stats();
  // Every bucket arrived converged: no cold starts, no exploration.
  EXPECT_EQ(stats.cold_starts, 0u);
  EXPECT_EQ(stats.explores, 0u);
  // And the routing is immediately near-oracle — no warm-up phase.
  EXPECT_LE(routed_seconds(warm), base.oracle * 1.10);
  std::remove(path.c_str());
}

}  // namespace
