// Unit tests for the thread pool and thread-count policies.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "parallel/policy.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace blob::parallel;

TEST(ThreadPool, SizeIsAtLeastOne) {
  ThreadPool p0(0);
  EXPECT_EQ(p0.size(), 1u);
  ThreadPool p4(4);
  EXPECT_EQ(p4.size(), 4u);
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), 1,
                    [&](std::size_t b, std::size_t e, std::size_t) {
                      for (std::size_t i = b; i < e; ++i) hits[i]++;
                    });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ComputesParallelSum) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 100000;
  std::atomic<long long> total{0};
  pool.parallel_for(0, kN, 64,
                    [&](std::size_t b, std::size_t e, std::size_t) {
                      long long local = 0;
                      for (std::size_t i = b; i < e; ++i) {
                        local += static_cast<long long>(i);
                      }
                      total += local;
                    });
  EXPECT_EQ(total.load(),
            static_cast<long long>(kN) * (kN - 1) / 2);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, 1,
                    [&](std::size_t, std::size_t, std::size_t) {
                      called = true;
                    });
  pool.parallel_for(7, 3, 1,
                    [&](std::size_t, std::size_t, std::size_t) {
                      called = true;
                    });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, GrainLimitsChunkCount) {
  ThreadPool pool(8);
  std::atomic<int> chunks{0};
  pool.parallel_for(0, 10, 10,
                    [&](std::size_t b, std::size_t e, std::size_t) {
                      EXPECT_EQ(b, 0u);
                      EXPECT_EQ(e, 10u);
                      chunks++;
                    });
  EXPECT_EQ(chunks.load(), 1);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.parallel_for(0, 100, 1,
                    [&](std::size_t b, std::size_t e, std::size_t worker) {
                      EXPECT_EQ(worker, 0u);
                      count += static_cast<int>(e - b);
                    });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100, 1,
                        [&](std::size_t b, std::size_t, std::size_t) {
                          if (b == 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must remain usable afterwards.
  std::atomic<int> ok{0};
  pool.parallel_for(0, 10, 1,
                    [&](std::size_t b, std::size_t e, std::size_t) {
                      ok += static_cast<int>(e - b);
                    });
  EXPECT_EQ(ok.load(), 10);
}

TEST(ThreadPool, ReusableAcrossManyInvocations) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.parallel_for(0, 64, 4,
                      [&](std::size_t b, std::size_t e, std::size_t) {
                        sum += static_cast<int>(e - b);
                      });
    ASSERT_EQ(sum.load(), 64);
  }
}

TEST(ThreadPool, DefaultPoolSingleton) {
  ThreadPool& a = default_pool();
  ThreadPool& b = default_pool();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 1u);
}

// --------------------------------------------------------------- barrier

TEST(Barrier, SynchronisesPhases) {
  constexpr std::size_t kParties = 4;
  Barrier barrier(kParties);
  std::atomic<int> phase1_done{0};
  std::atomic<bool> saw_incomplete_phase1{false};

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kParties; ++t) {
    threads.emplace_back([&] {
      phase1_done.fetch_add(1);
      barrier.arrive_and_wait();
      // After the barrier every party must observe all phase-1 work.
      if (phase1_done.load() != static_cast<int>(kParties)) {
        saw_incomplete_phase1.store(true);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(saw_incomplete_phase1.load());
}

TEST(Barrier, ReusableAcrossGenerations) {
  constexpr std::size_t kParties = 3;
  constexpr int kRounds = 20;
  Barrier barrier(kParties);
  std::atomic<int> counter{0};
  std::atomic<bool> mismatch{false};

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kParties; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        counter.fetch_add(1);
        barrier.arrive_and_wait();
        // Every party sees the full round's increments before any party
        // starts the next round.
        if (counter.load() < (round + 1) * static_cast<int>(kParties)) {
          mismatch.store(true);
        }
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(mismatch.load());
  EXPECT_EQ(counter.load(), kRounds * static_cast<int>(kParties));
}

TEST(Barrier, SinglePartyNeverBlocks) {
  Barrier barrier(1);
  for (int i = 0; i < 5; ++i) barrier.arrive_and_wait();
  SUCCEED();
}

// --------------------------------------------------------- run_on_workers

TEST(RunOnWorkers, EachSlotRunsExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(4);
  pool.run_on_workers(4, [&](std::size_t w) {
    ASSERT_LT(w, 4u);
    hits[w]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(RunOnWorkers, SlotsRunOnDistinctThreads) {
  // The whole point of run_on_workers over parallel_for: each body owns a
  // distinct OS thread, so barriers inside the body cannot deadlock.
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> ids;
  Barrier barrier(4);
  pool.run_on_workers(4, [&](std::size_t) {
    {
      std::lock_guard<std::mutex> lock(mu);
      ids.insert(std::this_thread::get_id());
    }
    barrier.arrive_and_wait();  // deadlocks unless all 4 ids are distinct
  });
  EXPECT_EQ(ids.size(), 4u);
}

TEST(RunOnWorkers, PartiesClampedToPoolSize) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  std::atomic<std::size_t> max_worker{0};
  pool.run_on_workers(16, [&](std::size_t w) {
    calls++;
    std::size_t prev = max_worker.load();
    while (w > prev && !max_worker.compare_exchange_weak(prev, w)) {
    }
  });
  EXPECT_EQ(calls.load(), 2);
  EXPECT_LE(max_worker.load(), 1u);
}

TEST(RunOnWorkers, SinglePartyRunsInlineOnCaller) {
  ThreadPool pool(4);
  const auto caller = std::this_thread::get_id();
  std::thread::id body_thread;
  pool.run_on_workers(1, [&](std::size_t w) {
    EXPECT_EQ(w, 0u);
    body_thread = std::this_thread::get_id();
  });
  EXPECT_EQ(body_thread, caller);
}

TEST(RunOnWorkers, ReusableAcrossRegionsAndWithParallelFor) {
  ThreadPool pool(3);
  for (int round = 0; round < 25; ++round) {
    std::atomic<int> sum{0};
    pool.run_on_workers(3, [&](std::size_t) { sum++; });
    ASSERT_EQ(sum.load(), 3);
    // Interleave with the queue-based API: both must keep working.
    std::atomic<int> covered{0};
    pool.parallel_for(0, 10, 1,
                      [&](std::size_t b, std::size_t e, std::size_t) {
                        covered += static_cast<int>(e - b);
                      });
    ASSERT_EQ(covered.load(), 10);
  }
}

TEST(RunOnWorkers, PropagatesExceptionFromCallerSlot) {
  // Only worker 0 (the caller's slot) may throw; bodies that synchronise
  // with other workers must not. Verify the exception surfaces and the
  // pool stays usable.
  ThreadPool pool(2);
  EXPECT_THROW(pool.run_on_workers(
                   1, [&](std::size_t) { throw std::runtime_error("boom"); }),
               std::runtime_error);
  std::atomic<int> ok{0};
  pool.run_on_workers(2, [&](std::size_t) { ok++; });
  EXPECT_EQ(ok.load(), 2);
}

// ---------------------------------------------------------------- policy

TEST(Policy, AllThreadsUsesEverything) {
  const ThreadPolicy p = all_threads_policy();
  EXPECT_EQ(p.threads_for(1.0, 48), 48u);
  EXPECT_EQ(p.threads_for(1e12, 48), 48u);
  EXPECT_EQ(p.threads_for(1e12, 0), 1u);  // floor of one thread
}

TEST(Policy, SingleThreadAlwaysOne) {
  const ThreadPolicy p = single_thread_policy();
  EXPECT_EQ(p.threads_for(1e15, 128), 1u);
}

TEST(Policy, ScaledGrowsWithWork) {
  const ThreadPolicy p = scaled_policy(1.0e6);
  EXPECT_EQ(p.threads_for(1.0, 48), 1u);
  EXPECT_EQ(p.threads_for(1.0e6, 48), 1u);
  EXPECT_EQ(p.threads_for(2.0e6, 48), 2u);
  EXPECT_EQ(p.threads_for(47.5e6, 48), 48u);
  EXPECT_EQ(p.threads_for(1.0e12, 48), 48u);  // saturates
}

TEST(Policy, ScaledHandlesDegenerateInput) {
  const ThreadPolicy p = scaled_policy(1.0e6);
  EXPECT_EQ(p.threads_for(0.0, 48), 1u);
  EXPECT_EQ(p.threads_for(-5.0, 48), 1u);
  ThreadPolicy zero = scaled_policy(0.0);
  EXPECT_EQ(zero.threads_for(1e9, 48), 1u);
}

class PolicyMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(PolicyMonotonicity, ScaledIsMonotoneInWork) {
  const ThreadPolicy p = scaled_policy(GetParam());
  std::size_t prev = 0;
  for (double flops = 1.0; flops < 1e12; flops *= 4.0) {
    const std::size_t t = p.threads_for(flops, 72);
    EXPECT_GE(t, prev);
    EXPECT_GE(t, 1u);
    EXPECT_LE(t, 72u);
    prev = t;
  }
}

INSTANTIATE_TEST_SUITE_P(Grains, PolicyMonotonicity,
                         ::testing::Values(1e4, 1e5, 1e6, 1e7));

TEST(Policy, ToStringNames) {
  EXPECT_STREQ(to_string(ThreadPolicyKind::AllThreads), "all-threads");
  EXPECT_STREQ(to_string(ThreadPolicyKind::SingleThread), "single-thread");
  EXPECT_STREQ(to_string(ThreadPolicyKind::ScaleWithProblem),
               "scale-with-problem");
}

}  // namespace
