// Batched GEMM (pointer-array and strided) plus the library-personality
// dispatch layer.

#include <gtest/gtest.h>

#include "blas/batched.hpp"
#include "blas/library.hpp"
#include "blas/ref_blas.hpp"
#include "blas_test_util.hpp"

namespace {

using namespace blob;
using blas::Transpose;
using blob::test::random_vector;

TEST(Batched, PointerArrayMatchesLoopOfGemms) {
  const int m = 17, n = 13, k = 9, batch = 12;
  std::vector<std::vector<double>> a(batch), b(batch), c_opt(batch),
      c_ref(batch);
  std::vector<const double*> ap(batch), bp(batch);
  std::vector<double*> cp(batch);
  for (int i = 0; i < batch; ++i) {
    a[i] = random_vector<double>(static_cast<std::size_t>(m) * k, 100 + i);
    b[i] = random_vector<double>(static_cast<std::size_t>(k) * n, 200 + i);
    c_opt[i] = random_vector<double>(static_cast<std::size_t>(m) * n, 300 + i);
    c_ref[i] = c_opt[i];
    ap[i] = a[i].data();
    bp[i] = b[i].data();
    cp[i] = c_opt[i].data();
  }
  parallel::ThreadPool pool(4);
  blas::gemm_batched(Transpose::No, Transpose::No, m, n, k, 1.5, ap.data(),
                     m, bp.data(), k, 0.5, cp.data(), m, batch, &pool, 4);
  for (int i = 0; i < batch; ++i) {
    blas::ref::gemm(Transpose::No, Transpose::No, m, n, k, 1.5, a[i].data(),
                    m, b[i].data(), k, 0.5, c_ref[i].data(), m);
    test::expect_near_rel(c_opt[i], c_ref[i], 1e-12);
  }
}

TEST(Batched, StridedMatchesPointerArray) {
  const int m = 8, n = 8, k = 8, batch = 20;
  const std::ptrdiff_t sa = m * k, sb = k * n, sc = m * n;
  auto a = random_vector<double>(static_cast<std::size_t>(sa) * batch, 1);
  auto b = random_vector<double>(static_cast<std::size_t>(sb) * batch, 2);
  auto c_strided =
      random_vector<double>(static_cast<std::size_t>(sc) * batch, 3);
  auto c_pointer = c_strided;

  blas::gemm_strided_batched(Transpose::No, Transpose::No, m, n, k, 1.0,
                             a.data(), m, sa, b.data(), k, sb, 0.0,
                             c_strided.data(), m, sc, batch);

  std::vector<const double*> ap(batch), bp(batch);
  std::vector<double*> cp(batch);
  for (int i = 0; i < batch; ++i) {
    ap[i] = a.data() + i * sa;
    bp[i] = b.data() + i * sb;
    cp[i] = c_pointer.data() + i * sc;
  }
  blas::gemm_batched(Transpose::No, Transpose::No, m, n, k, 1.0, ap.data(),
                     m, bp.data(), k, 0.0, cp.data(), m, batch);
  test::expect_near_rel(c_strided, c_pointer, 0.0);
}

TEST(Batched, LargeMatricesUseIntraGemmParallelism) {
  // FLOPs above the across-batch cutoff: still must be correct.
  const int m = 256, n = 256, k = 256, batch = 2;
  parallel::ThreadPool pool(4);
  const std::ptrdiff_t stride = static_cast<std::ptrdiff_t>(m) * k;
  auto a = random_vector<double>(static_cast<std::size_t>(stride) * batch, 4);
  auto b = random_vector<double>(static_cast<std::size_t>(stride) * batch, 5);
  std::vector<double> c(static_cast<std::size_t>(m) * n * batch, 0.0);
  blas::gemm_strided_batched(Transpose::No, Transpose::No, m, n, k, 1.0,
                             a.data(), m, stride, b.data(), k, stride, 0.0,
                             c.data(), m, static_cast<std::ptrdiff_t>(m) * n,
                             batch, &pool, 4);
  for (int i = 0; i < batch; ++i) {
    std::vector<double> expected(static_cast<std::size_t>(m) * n, 0.0);
    blas::ref::gemm(Transpose::No, Transpose::No, m, n, k, 1.0,
                    a.data() + i * stride, m, b.data() + i * stride, k, 0.0,
                    expected.data(), m);
    for (int e = 0; e < m * n; ++e) {
      ASSERT_NEAR(c[static_cast<std::size_t>(i) * m * n + e], expected[e],
                  1e-9 * (1.0 + std::fabs(expected[e])));
    }
  }
}

TEST(Batched, ZeroBatchIsNoop) {
  std::vector<const double*> ap;
  std::vector<double*> cp;
  blas::gemm_batched<double>(Transpose::No, Transpose::No, 4, 4, 4, 1.0,
                             ap.data(), 4, ap.data(), 4, 0.0, cp.data(), 4,
                             0);
  SUCCEED();
}

// ----------------------------------------------------------- personality

TEST(Library, PersonalitiesExposeDocumentedBehaviour) {
  EXPECT_TRUE(blas::nvpl_like_personality().gemv_parallel);
  EXPECT_FALSE(blas::aocl_like_personality().gemv_parallel);
  EXPECT_TRUE(blas::openblas_like_personality().gemv_parallel);
  EXPECT_EQ(blas::armpl_like_personality().gemm_threads.kind,
            parallel::ThreadPolicyKind::ScaleWithProblem);
  EXPECT_EQ(blas::nvpl_like_personality().gemm_threads.kind,
            parallel::ThreadPolicyKind::AllThreads);
  EXPECT_EQ(blas::single_thread_personality().gemm_threads.kind,
            parallel::ThreadPolicyKind::SingleThread);
}

TEST(Library, AoclLikeNeverThreadsGemv) {
  blas::CpuBlasLibrary lib(blas::aocl_like_personality(), 8);
  EXPECT_EQ(lib.gemv_thread_count(4096, 4096), 1u);
  EXPECT_EQ(lib.gemm_thread_count(4096, 4096, 4096), 8u);
}

TEST(Library, ArmplLikeScalesGemmThreads) {
  blas::CpuBlasLibrary lib(blas::armpl_like_personality(), 8);
  EXPECT_EQ(lib.gemm_thread_count(8, 8, 8), 1u);
  EXPECT_EQ(lib.gemm_thread_count(2048, 2048, 2048), 8u);
}

TEST(Library, DispatchedGemmIsCorrect) {
  blas::CpuBlasLibrary lib(blas::nvpl_like_personality(), 4);
  const int m = 60, n = 50, k = 40;
  auto a = random_vector<float>(static_cast<std::size_t>(m) * k, 6);
  auto b = random_vector<float>(static_cast<std::size_t>(k) * n, 7);
  std::vector<float> c_lib(static_cast<std::size_t>(m) * n, 0.0f);
  std::vector<float> c_ref(c_lib);
  lib.do_gemm(Transpose::No, Transpose::No, m, n, k, 1.0f, a.data(), m,
              b.data(), k, 0.0f, c_lib.data(), m);
  blas::ref::gemm(Transpose::No, Transpose::No, m, n, k, 1.0f, a.data(), m,
                  b.data(), k, 0.0f, c_ref.data(), m);
  test::expect_near_rel(c_lib, c_ref, 1e-4);
}

TEST(Library, DispatchedGemvIsCorrect) {
  blas::CpuBlasLibrary lib(blas::openblas_like_personality(), 4);
  const int m = 700, n = 300;
  auto a = random_vector<double>(static_cast<std::size_t>(m) * n, 8);
  auto x = random_vector<double>(n, 9);
  std::vector<double> y_lib(m, 0.0);
  std::vector<double> y_ref(m, 0.0);
  lib.do_gemv(Transpose::No, m, n, 1.0, a.data(), m, x.data(), 1, 0.0,
              y_lib.data(), 1);
  blas::ref::gemv(Transpose::No, m, n, 1.0, a.data(), m, x.data(), 1, 0.0,
                  y_ref.data(), 1);
  test::expect_near_rel(y_lib, y_ref, 1e-12);
}

}  // namespace
