// Level 3 beyond GEMM: SYMM, SYRK, TRMM, TRSM — checked against the
// reference kernels and against algebraic reconstructions.

#include <gtest/gtest.h>

#include <tuple>

#include "blas/gemm.hpp"
#include "blas/level3.hpp"
#include "blas/ref_blas.hpp"
#include "blas_test_util.hpp"

namespace {

using namespace blob;
using blas::Diag;
using blas::Side;
using blas::Transpose;
using blas::UpLo;
using blob::test::random_vector;

// ------------------------------------------------------------------ symm

class SymmCase
    : public ::testing::TestWithParam<std::tuple<Side, UpLo, int, int>> {};

TEST_P(SymmCase, MatchesReference) {
  auto [side, uplo, m, n] = GetParam();
  const int d = side == Side::Left ? m : n;
  auto a = random_vector<double>(static_cast<std::size_t>(d) * d, 1);
  auto b = random_vector<double>(static_cast<std::size_t>(m) * n, 2);
  auto c_opt = random_vector<double>(static_cast<std::size_t>(m) * n, 3);
  auto c_ref = c_opt;
  blas::symm(side, uplo, m, n, 1.5, a.data(), d, b.data(), m, 0.5,
             c_opt.data(), m);
  blas::ref::symm(side, uplo, m, n, 1.5, a.data(), d, b.data(), m, 0.5,
                  c_ref.data(), m);
  test::expect_near_rel(c_opt, c_ref, 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SymmCase,
    ::testing::Combine(::testing::Values(Side::Left, Side::Right),
                       ::testing::Values(UpLo::Upper, UpLo::Lower),
                       ::testing::Values(1, 17, 64),
                       ::testing::Values(1, 13, 80)));

// ------------------------------------------------------------------ syrk

class SyrkCase
    : public ::testing::TestWithParam<std::tuple<UpLo, Transpose, int, int>> {
};

TEST_P(SyrkCase, MatchesReference) {
  auto [uplo, trans, n, k] = GetParam();
  const int a_rows = trans == Transpose::No ? n : k;
  const int a_cols = trans == Transpose::No ? k : n;
  auto a = random_vector<double>(
      static_cast<std::size_t>(std::max(1, a_rows)) * std::max(1, a_cols), 4);
  auto c_opt = random_vector<double>(static_cast<std::size_t>(n) * n, 5);
  auto c_ref = c_opt;
  blas::syrk(uplo, trans, n, k, 1.0, a.data(), std::max(1, a_rows), 2.0,
             c_opt.data(), n);
  blas::ref::syrk(uplo, trans, n, k, 1.0, a.data(), std::max(1, a_rows), 2.0,
                  c_ref.data(), n);
  test::expect_near_rel(c_opt, c_ref, 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SyrkCase,
    ::testing::Combine(::testing::Values(UpLo::Upper, UpLo::Lower),
                       ::testing::Values(Transpose::No, Transpose::Yes),
                       ::testing::Values(1, 30, 100),
                       ::testing::Values(1, 8, 60)));

TEST(Syrk, OnlyRequestedTriangleIsWritten) {
  const int n = 40, k = 12;
  auto a = random_vector<double>(static_cast<std::size_t>(n) * k, 6);
  std::vector<double> c(static_cast<std::size_t>(n) * n, -99.0);
  blas::syrk(UpLo::Upper, Transpose::No, n, k, 1.0, a.data(), n, 0.0,
             c.data(), n);
  // Strictly-lower part must remain untouched.
  for (int j = 0; j < n; ++j) {
    for (int i = j + 1; i < n; ++i) {
      ASSERT_DOUBLE_EQ(c[i + static_cast<std::size_t>(j) * n], -99.0);
    }
  }
}

TEST(Syrk, ResultIsSymmetricAcrossTriangles) {
  const int n = 64, k = 20;
  auto a = random_vector<double>(static_cast<std::size_t>(n) * k, 7);
  std::vector<double> upper(static_cast<std::size_t>(n) * n, 0.0);
  std::vector<double> lower(upper);
  blas::syrk(UpLo::Upper, Transpose::No, n, k, 1.0, a.data(), n, 0.0,
             upper.data(), n);
  blas::syrk(UpLo::Lower, Transpose::No, n, k, 1.0, a.data(), n, 0.0,
             lower.data(), n);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i <= j; ++i) {
      ASSERT_NEAR(upper[i + static_cast<std::size_t>(j) * n],
                  lower[j + static_cast<std::size_t>(i) * n], 1e-11);
    }
  }
}

// ----------------------------------------------------------------- syr2k

class Syr2kCase
    : public ::testing::TestWithParam<std::tuple<UpLo, Transpose, int, int>> {
};

TEST_P(Syr2kCase, MatchesReference) {
  auto [uplo, trans, n, k] = GetParam();
  const int a_rows = trans == Transpose::No ? n : k;
  auto a = random_vector<double>(
      static_cast<std::size_t>(std::max(1, a_rows)) *
          std::max(1, trans == Transpose::No ? k : n),
      30);
  auto b = random_vector<double>(a.size(), 31);
  auto c_opt = random_vector<double>(static_cast<std::size_t>(n) * n, 32);
  auto c_ref = c_opt;
  blas::syr2k(uplo, trans, n, k, 1.5, a.data(), std::max(1, a_rows),
              b.data(), std::max(1, a_rows), 0.5, c_opt.data(), n);
  blas::ref::syr2k(uplo, trans, n, k, 1.5, a.data(), std::max(1, a_rows),
                   b.data(), std::max(1, a_rows), 0.5, c_ref.data(), n);
  test::expect_near_rel(c_opt, c_ref, 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Syr2kCase,
    ::testing::Combine(::testing::Values(UpLo::Upper, UpLo::Lower),
                       ::testing::Values(Transpose::No, Transpose::Yes),
                       ::testing::Values(1, 30, 100),
                       ::testing::Values(1, 8, 60)));

TEST(Syr2k, EqualOperandsDoubleSyrk) {
  // syr2k(A, A) == 2 * syrk(A).
  const int n = 80, k = 20;
  auto a = random_vector<double>(static_cast<std::size_t>(n) * k, 33);
  std::vector<double> c1(static_cast<std::size_t>(n) * n, 0.0);
  std::vector<double> c2(c1);
  blas::syr2k(UpLo::Lower, Transpose::No, n, k, 1.0, a.data(), n, a.data(),
              n, 0.0, c1.data(), n);
  blas::syrk(UpLo::Lower, Transpose::No, n, k, 2.0, a.data(), n, 0.0,
             c2.data(), n);
  test::expect_near_rel(c1, c2, 1e-11);
}

// ------------------------------------------------------------- trmm/trsm

class TrsmCase : public ::testing::TestWithParam<
                     std::tuple<Side, UpLo, Transpose, Diag, int, int>> {};

TEST_P(TrsmCase, SolveThenMultiplyRestoresB) {
  auto [side, uplo, trans, diag, m, n] = GetParam();
  const int d = side == Side::Left ? m : n;
  auto a = random_vector<double>(static_cast<std::size_t>(d) * d, 8);
  for (int i = 0; i < d; ++i) a[i + static_cast<std::size_t>(i) * d] += 4.0;
  auto b0 = random_vector<double>(static_cast<std::size_t>(m) * n, 9);
  auto b = b0;
  blas::trsm(side, uplo, trans, diag, m, n, 1.0, a.data(), d, b.data(), m);
  blas::trmm(side, uplo, trans, diag, m, n, 1.0, a.data(), d, b.data(), m);
  test::expect_near_rel(b, b0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TrsmCase,
    ::testing::Combine(::testing::Values(Side::Left, Side::Right),
                       ::testing::Values(UpLo::Upper, UpLo::Lower),
                       ::testing::Values(Transpose::No, Transpose::Yes),
                       ::testing::Values(Diag::NonUnit, Diag::Unit),
                       ::testing::Values(5, 33), ::testing::Values(4, 21)));

TEST(Trsm, BlockedPathMatchesReference) {
  // m > the 128 block size exercises the blocked Left/NoTrans algorithm.
  const int m = 300, n = 40;
  auto a = random_vector<double>(static_cast<std::size_t>(m) * m, 10);
  for (int i = 0; i < m; ++i) a[i + static_cast<std::size_t>(i) * m] += 8.0;
  auto b_opt = random_vector<double>(static_cast<std::size_t>(m) * n, 11);
  auto b_ref = b_opt;
  for (UpLo uplo : {UpLo::Lower, UpLo::Upper}) {
    auto x_opt = b_opt;
    auto x_ref = b_ref;
    blas::trsm(Side::Left, uplo, Transpose::No, Diag::NonUnit, m, n, 2.0,
               a.data(), m, x_opt.data(), m);
    blas::ref::trsm(Side::Left, uplo, Transpose::No, Diag::NonUnit, m, n,
                    2.0, a.data(), m, x_ref.data(), m);
    test::expect_near_rel(x_opt, x_ref, 1e-9);
  }
}

TEST(Trsm, BlockedPathWithThreads) {
  const int m = 260, n = 64;
  parallel::ThreadPool pool(4);
  auto a = random_vector<double>(static_cast<std::size_t>(m) * m, 12);
  for (int i = 0; i < m; ++i) a[i + static_cast<std::size_t>(i) * m] += 8.0;
  auto b_opt = random_vector<double>(static_cast<std::size_t>(m) * n, 13);
  auto b_ref = b_opt;
  blas::trsm(Side::Left, UpLo::Lower, Transpose::No, Diag::NonUnit, m, n,
             1.0, a.data(), m, b_opt.data(), m, &pool, 4);
  blas::ref::trsm(Side::Left, UpLo::Lower, Transpose::No, Diag::NonUnit, m,
                  n, 1.0, a.data(), m, b_ref.data(), m);
  test::expect_near_rel(b_opt, b_ref, 1e-9);
}

TEST(Trmm, MatchesDenseGemm) {
  const int m = 30, n = 25;
  auto a = random_vector<double>(static_cast<std::size_t>(m) * m, 14);
  // Densify the upper triangle (non-unit diagonal).
  std::vector<double> dense(static_cast<std::size_t>(m) * m, 0.0);
  for (int j = 0; j < m; ++j) {
    for (int i = 0; i <= j; ++i) {
      dense[i + static_cast<std::size_t>(j) * m] =
          a[i + static_cast<std::size_t>(j) * m];
    }
  }
  auto b = random_vector<double>(static_cast<std::size_t>(m) * n, 15);
  auto b_trmm = b;
  blas::trmm(Side::Left, UpLo::Upper, Transpose::No, Diag::NonUnit, m, n,
             1.0, a.data(), m, b_trmm.data(), m);
  std::vector<double> b_gemm(static_cast<std::size_t>(m) * n, 0.0);
  blas::gemm(Transpose::No, Transpose::No, m, n, m, 1.0, dense.data(), m,
             b.data(), m, 0.0, b_gemm.data(), m);
  test::expect_near_rel(b_trmm, b_gemm, 1e-11);
}

}  // namespace
