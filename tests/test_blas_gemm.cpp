// GEMM: the packed/blocked/threaded engine against the reference kernel
// across shapes, transposes, alpha/beta values, blockings, and threads.

#include <gtest/gtest.h>

#include <tuple>

#include "blas/autotune.hpp"
#include "blas/gemm.hpp"
#include "blas/ref_blas.hpp"
#include "blas_test_util.hpp"

namespace {

using namespace blob;
using blas::Transpose;
using blob::test::gemm_tol;
using blob::test::random_vector;

template <typename T>
void run_gemm_case(Transpose ta, Transpose tb, int m, int n, int k, T alpha,
                   T beta, parallel::ThreadPool* pool = nullptr,
                   std::size_t threads = 1,
                   const blas::GemmBlocking& blocking = {}) {
  const int a_rows = ta == Transpose::No ? m : k;
  const int a_cols = ta == Transpose::No ? k : m;
  const int b_rows = tb == Transpose::No ? k : n;
  const int b_cols = tb == Transpose::No ? n : k;
  const int lda = std::max(1, a_rows);
  const int ldb = std::max(1, b_rows);
  const int ldc = std::max(1, m);

  auto a = random_vector<T>(static_cast<std::size_t>(lda) * std::max(1, a_cols), 1);
  auto b = random_vector<T>(static_cast<std::size_t>(ldb) * std::max(1, b_cols), 2);
  auto c_opt = random_vector<T>(static_cast<std::size_t>(ldc) * std::max(1, n), 3);
  auto c_ref = c_opt;

  blas::gemm(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta,
             c_opt.data(), ldc, pool, threads, blocking);
  blas::ref::gemm(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta,
                  c_ref.data(), ldc);
  test::expect_near_rel(c_opt, c_ref, gemm_tol<T>(k));
}

// ------------------------------------------------------- shape sweep

using ShapeParam = std::tuple<int, int, int>;

class GemmShapes : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(GemmShapes, MatchesReferenceF32) {
  auto [m, n, k] = GetParam();
  run_gemm_case<float>(Transpose::No, Transpose::No, m, n, k, 1.0f, 0.0f);
}

TEST_P(GemmShapes, MatchesReferenceF64) {
  auto [m, n, k] = GetParam();
  run_gemm_case<double>(Transpose::No, Transpose::No, m, n, k, 1.0, 0.0);
}

TEST_P(GemmShapes, MatchesReferenceWithAlphaBeta) {
  auto [m, n, k] = GetParam();
  run_gemm_case<double>(Transpose::No, Transpose::No, m, n, k, 1.5, -0.5);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(
        ShapeParam{1, 1, 1}, ShapeParam{2, 3, 4}, ShapeParam{7, 7, 7},
        ShapeParam{8, 8, 8}, ShapeParam{9, 5, 13}, ShapeParam{16, 16, 16},
        ShapeParam{17, 19, 23}, ShapeParam{32, 32, 32},
        ShapeParam{33, 31, 29}, ShapeParam{64, 64, 64},
        ShapeParam{65, 1, 65}, ShapeParam{1, 65, 65}, ShapeParam{65, 65, 1},
        ShapeParam{128, 4, 128}, ShapeParam{4, 128, 128},
        ShapeParam{100, 100, 100}, ShapeParam{129, 65, 130},
        ShapeParam{32, 32, 2560}, ShapeParam{256, 31, 7}));

// ---------------------------------------------------- transposes

class GemmTranspose
    : public ::testing::TestWithParam<std::tuple<Transpose, Transpose>> {};

TEST_P(GemmTranspose, AllCombosMatchReference) {
  auto [ta, tb] = GetParam();
  run_gemm_case<double>(ta, tb, 37, 29, 41, 1.0, 0.0);
  run_gemm_case<float>(ta, tb, 64, 64, 64, 2.0f, 1.0f);
  run_gemm_case<double>(ta, tb, 5, 90, 17, -1.0, 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    Combos, GemmTranspose,
    ::testing::Combine(::testing::Values(Transpose::No, Transpose::Yes),
                       ::testing::Values(Transpose::No, Transpose::Yes)));

// ----------------------------------------------------- special values

TEST(Gemm, AlphaZeroOnlyScalesC) {
  auto c = random_vector<double>(12 * 9, 4);
  auto expected = c;
  for (auto& v : expected) v *= 3.0;
  std::vector<double> a(12 * 7, 1e300);  // must never be read into result
  std::vector<double> b(7 * 9, 1e300);
  blas::gemm(Transpose::No, Transpose::No, 12, 9, 7, 0.0, a.data(), 12,
             b.data(), 7, 3.0, c.data(), 12);
  test::expect_near_rel(c, expected, 1e-14);
}

TEST(Gemm, BetaZeroOverwritesNanC) {
  // beta == 0 must be a write, not a multiply: NaN in C must not survive.
  std::vector<double> a = {1.0, 2.0};
  std::vector<double> b = {3.0};
  std::vector<double> c = {std::nan(""), std::nan("")};
  blas::gemm(Transpose::No, Transpose::No, 2, 1, 1, 1.0, a.data(), 2,
             b.data(), 1, 0.0, c.data(), 2);
  EXPECT_DOUBLE_EQ(c[0], 3.0);
  EXPECT_DOUBLE_EQ(c[1], 6.0);
}

TEST(Gemm, ZeroDimensionsAreNoops) {
  std::vector<double> c = {42.0};
  std::vector<double> empty(1);
  blas::gemm(Transpose::No, Transpose::No, 0, 1, 1, 1.0, empty.data(), 1,
             empty.data(), 1, 0.0, c.data(), 1);
  EXPECT_DOUBLE_EQ(c[0], 42.0);  // m == 0: untouched
  blas::gemm(Transpose::No, Transpose::No, 1, 1, 0, 1.0, empty.data(), 1,
             empty.data(), 1, 2.0, c.data(), 1);
  EXPECT_DOUBLE_EQ(c[0], 84.0);  // k == 0: C scaled by beta only
}

TEST(Gemm, RejectsBadLeadingDimensions) {
  std::vector<double> buf(64);
  EXPECT_THROW(blas::gemm(Transpose::No, Transpose::No, 8, 2, 2, 1.0,
                          buf.data(), 4 /* < m */, buf.data(), 2, 0.0,
                          buf.data(), 8),
               blas::BlasError);
  EXPECT_THROW(blas::gemm(Transpose::No, Transpose::No, -1, 2, 2, 1.0,
                          buf.data(), 1, buf.data(), 2, 0.0, buf.data(), 1),
               blas::BlasError);
}

TEST(Gemm, RespectsLeadingDimensionPadding) {
  // lda > m: padding rows must be neither read into C nor written.
  const int m = 3, n = 2, k = 2, lda = 5, ldc = 4;
  auto a = random_vector<double>(static_cast<std::size_t>(lda) * k, 5);
  auto b = random_vector<double>(static_cast<std::size_t>(k) * n, 6);
  std::vector<double> c(static_cast<std::size_t>(ldc) * n, -7.0);
  auto c_ref = c;
  blas::gemm(Transpose::No, Transpose::No, m, n, k, 1.0, a.data(), lda,
             b.data(), k, 0.0, c.data(), ldc);
  blas::ref::gemm(Transpose::No, Transpose::No, m, n, k, 1.0, a.data(), lda,
                  b.data(), k, 0.0, c_ref.data(), ldc);
  EXPECT_EQ(c[3], -7.0);  // padding row untouched
  test::expect_near_rel(c, c_ref, 1e-13);
}

// ------------------------------------------------------ threading

class GemmThreaded : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GemmThreaded, ThreadedMatchesSerial) {
  parallel::ThreadPool pool(GetParam());
  run_gemm_case<float>(Transpose::No, Transpose::No, 150, 170, 60, 1.0f,
                       0.0f, &pool, GetParam());
  run_gemm_case<double>(Transpose::No, Transpose::Yes, 90, 200, 33, -2.0,
                        1.0, &pool, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Threads, GemmThreaded, ::testing::Values(1, 2, 4, 7));

TEST(Gemm, TinyBlockingStillCorrect) {
  blas::GemmBlocking blocking;
  blocking.mc = 8;
  blocking.kc = 4;
  blocking.nc = 8;
  run_gemm_case<double>(Transpose::No, Transpose::No, 50, 60, 70, 1.0, 0.5,
                        nullptr, 1, blocking);
  run_gemm_case<float>(Transpose::Yes, Transpose::Yes, 33, 34, 35, 1.0f,
                       0.0f, nullptr, 1, blocking);
}

// --------------------------------------------------------- algebra

TEST(Gemm, DistributesOverMatrixAddition) {
  const int d = 48;
  auto a = random_vector<double>(d * d, 7);
  auto b1 = random_vector<double>(d * d, 8);
  auto b2 = random_vector<double>(d * d, 9);
  std::vector<double> b_sum(d * d);
  for (int i = 0; i < d * d; ++i) b_sum[i] = b1[i] + b2[i];

  std::vector<double> c1(d * d, 0.0);
  blas::gemm(Transpose::No, Transpose::No, d, d, d, 1.0, a.data(), d,
             b1.data(), d, 0.0, c1.data(), d);
  blas::gemm(Transpose::No, Transpose::No, d, d, d, 1.0, a.data(), d,
             b2.data(), d, 1.0, c1.data(), d);

  std::vector<double> c2(d * d, 0.0);
  blas::gemm(Transpose::No, Transpose::No, d, d, d, 1.0, a.data(), d,
             b_sum.data(), d, 0.0, c2.data(), d);
  test::expect_near_rel(c1, c2, 1e-12);
}

TEST(Gemm, IdentityIsNeutral) {
  const int d = 37;
  auto a = random_vector<double>(d * d, 10);
  std::vector<double> eye(d * d, 0.0);
  for (int i = 0; i < d; ++i) eye[i + i * d] = 1.0;
  std::vector<double> c(d * d, 0.0);
  blas::gemm(Transpose::No, Transpose::No, d, d, d, 1.0, a.data(), d,
             eye.data(), d, 0.0, c.data(), d);
  test::expect_near_rel(c, a, 1e-13);
}

TEST(GemmAutotune, ReturnsValidFastBlocking) {
  const auto result = blas::autotune_blocking<float>(96, 1);
  EXPECT_EQ(result.trials.size(), 18u);  // 3 x 3 x 2 grid
  EXPECT_GT(result.best_gflops, 0.0);
  EXPECT_GE(result.blocking.mc, 64);
  EXPECT_GE(result.blocking.kc, 128);
  // The winner's measured rate matches some trial entry.
  bool found = false;
  for (const auto& [cand, gf] : result.trials) {
    if (gf == result.best_gflops) found = true;
    EXPECT_GT(gf, 0.0);
  }
  EXPECT_TRUE(found);
  // GEMM stays correct under the tuned blocking.
  run_gemm_case<float>(Transpose::No, Transpose::No, 70, 65, 60, 1.0f, 0.5f,
                       nullptr, 1, result.blocking);
}

TEST(Gemm, TransposeConsistency) {
  // (A * B)^T == B^T * A^T: compute both and compare element-wise.
  const int m = 21, n = 17, k = 13;
  auto a = random_vector<double>(m * k, 11);
  auto b = random_vector<double>(k * n, 12);
  std::vector<double> ab(static_cast<std::size_t>(m) * n, 0.0);
  blas::gemm(Transpose::No, Transpose::No, m, n, k, 1.0, a.data(), m,
             b.data(), k, 0.0, ab.data(), m);
  std::vector<double> btat(static_cast<std::size_t>(n) * m, 0.0);
  blas::gemm(Transpose::Yes, Transpose::Yes, n, m, k, 1.0, b.data(), k,
             a.data(), m, 0.0, btat.data(), n);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      ASSERT_NEAR(ab[i + static_cast<std::size_t>(j) * m],
                  btat[j + static_cast<std::size_t>(i) * n], 1e-12);
    }
  }
}

}  // namespace
