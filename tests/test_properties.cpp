// Property-based tests: randomized inputs checked against brute-force
// reference implementations and algebraic identities.

#include <gtest/gtest.h>

#include <cmath>
#include <optional>

#include "blas/gemm.hpp"
#include "blas/gemv.hpp"
#include "blas_test_util.hpp"
#include "core/flops.hpp"
#include "core/op_desc.hpp"
#include "core/sim_backend.hpp"
#include "core/threshold.hpp"
#include "sysprofile/profile.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

namespace {

using namespace blob;
using blob::test::random_vector;

// ------------------------------------------------ threshold vs reference

/// Brute-force specification: smallest index t such that for all i >= t
/// the GPU wins OR i is an isolated dip (losing sample with winning
/// neighbours on both sides); the final sample must be a win.
std::optional<std::size_t> reference_threshold(
    const std::vector<bool>& wins) {
  const std::size_t n = wins.size();
  if (n == 0 || !wins[n - 1]) return std::nullopt;
  auto tolerated = [&](std::size_t i) {
    if (wins[i]) return true;
    return i > 0 && i + 1 < n && wins[i - 1] && wins[i + 1];
  };
  std::optional<std::size_t> best;
  for (std::size_t t = n; t-- > 0;) {
    bool all_ok = true;
    for (std::size_t i = t; i < n; ++i) {
      if (!tolerated(i)) {
        all_ok = false;
        break;
      }
    }
    if (all_ok && wins[t]) best = t;  // threshold must itself be a win
    if (!all_ok) break;
  }
  return best;
}

TEST(PropertyThreshold, MatchesBruteForceOnRandomPatterns) {
  util::Xoshiro256 rng(0xF00D);
  for (int trial = 0; trial < 500; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 40));
    std::vector<bool> wins(static_cast<std::size_t>(n));
    std::vector<core::ThresholdSample> samples;
    for (int i = 0; i < n; ++i) {
      wins[static_cast<std::size_t>(i)] = rng.next_double() < 0.6;
      samples.push_back(core::ThresholdSample{
          i + 1, core::Dims{i + 1, i + 1, i + 1}, 2.0,
          wins[static_cast<std::size_t>(i)] ? 1.0 : 3.0});
    }
    const auto expected = reference_threshold(wins);
    const auto actual = core::detect_threshold(samples);
    ASSERT_EQ(actual.has_value(), expected.has_value()) << "trial " << trial;
    if (expected.has_value()) {
      ASSERT_EQ(actual->s, samples[*expected].s) << "trial " << trial;
    }
  }
}

TEST(PropertyThreshold, ThresholdNeverLosesAtItsOwnIndex) {
  util::Xoshiro256 rng(0xFEED);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(2, 60));
    std::vector<core::ThresholdSample> samples;
    for (int i = 0; i < n; ++i) {
      samples.push_back(core::ThresholdSample{
          i + 1, core::Dims{i + 1, i + 1, i + 1}, rng.uniform(0.5, 2.0),
          rng.uniform(0.5, 2.0)});
    }
    const auto t = core::detect_threshold(samples);
    if (t.has_value()) {
      const auto& at = samples[static_cast<std::size_t>(t->s - 1)];
      EXPECT_LT(at.gpu_seconds, at.cpu_seconds);
      // And the final sample is a GPU win.
      EXPECT_LT(samples.back().gpu_seconds, samples.back().cpu_seconds);
    }
  }
}

// ----------------------------------------------- kernel identities

TEST(PropertyKernels, GemmWithSingleColumnEqualsGemv) {
  util::Xoshiro256 rng(0xABCD);
  for (int trial = 0; trial < 20; ++trial) {
    const int m = static_cast<int>(rng.uniform_int(1, 200));
    const int k = static_cast<int>(rng.uniform_int(1, 200));
    auto a = random_vector<double>(static_cast<std::size_t>(m) * k,
                                   1000 + trial);
    auto x = random_vector<double>(static_cast<std::size_t>(k),
                                   2000 + trial);
    std::vector<double> y_gemm(static_cast<std::size_t>(m), 0.0);
    std::vector<double> y_gemv(y_gemm);
    // C (m x 1) = A (m x k) * B (k x 1)  ==  y = A x.
    blas::gemm(blas::Transpose::No, blas::Transpose::No, m, 1, k, 1.0,
               a.data(), m, x.data(), k, 0.0, y_gemm.data(), m);
    blas::gemv(blas::Transpose::No, m, k, 1.0, a.data(), m, x.data(), 1,
               0.0, y_gemv.data(), 1);
    test::expect_near_rel(y_gemm, y_gemv, 1e-11);
  }
}

TEST(PropertyKernels, GemmWithSingleRowEqualsTransGemv) {
  util::Xoshiro256 rng(0xBCDE);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 150));
    const int k = static_cast<int>(rng.uniform_int(1, 150));
    auto b = random_vector<double>(static_cast<std::size_t>(k) * n,
                                   3000 + trial);
    auto x = random_vector<double>(static_cast<std::size_t>(k),
                                   4000 + trial);
    // C (1 x n) = x^T (1 x k) * B (k x n)  ==  y = B^T x.
    std::vector<double> c(static_cast<std::size_t>(n), 0.0);
    blas::gemm(blas::Transpose::No, blas::Transpose::No, 1, n, k, 1.0,
               x.data(), 1, b.data(), k, 0.0, c.data(), 1);
    std::vector<double> y(static_cast<std::size_t>(n), 0.0);
    blas::gemv(blas::Transpose::Yes, k, n, 1.0, b.data(), k, x.data(), 1,
               0.0, y.data(), 1);
    test::expect_near_rel(c, y, 1e-11);
  }
}

TEST(PropertyKernels, GemmScalesLinearlyInAlpha) {
  const int d = 40;
  auto a = random_vector<double>(d * d, 1);
  auto b = random_vector<double>(d * d, 2);
  std::vector<double> c1(d * d, 0.0);
  std::vector<double> c3(d * d, 0.0);
  blas::gemm(blas::Transpose::No, blas::Transpose::No, d, d, d, 1.0,
             a.data(), d, b.data(), d, 0.0, c1.data(), d);
  blas::gemm(blas::Transpose::No, blas::Transpose::No, d, d, d, 3.0,
             a.data(), d, b.data(), d, 0.0, c3.data(), d);
  for (int i = 0; i < d * d; ++i) {
    ASSERT_NEAR(c3[i], 3.0 * c1[i], 1e-11 * (1.0 + std::fabs(c1[i])));
  }
}

// ------------------------------------------- OpDesc IR invariants

TEST(PropertyOpDesc, FlopsInvariantUnderTransposeAndLdPadding) {
  // The work of op(A)·op(B) depends on m/n/k only: transposing operands
  // or padding leading dimensions relabels storage, never FLOPs.
  util::Xoshiro256 rng(0x0de5c);
  for (int trial = 0; trial < 200; ++trial) {
    const auto m = rng.uniform_int(1, 500);
    const auto n = rng.uniform_int(1, 500);
    const auto k = rng.uniform_int(1, 500);
    const bool beta_zero = rng.next_double() < 0.5;
    const auto nn = core::OpDesc::gemm(
        model::Precision::F32, blas::Transpose::No, blas::Transpose::No, m,
        n, k, 0, 0, 0, true, beta_zero);
    const double base = core::problem_flops(nn);
    for (auto ta : {blas::Transpose::No, blas::Transpose::Yes}) {
      for (auto tb : {blas::Transpose::No, blas::Transpose::Yes}) {
        auto d = core::OpDesc::gemm(model::Precision::F32, ta, tb, m, n, k,
                                    0, 0, 0, true, beta_zero);
        d.lda += rng.uniform_int(0, 32);
        d.ldb += rng.uniform_int(0, 32);
        EXPECT_DOUBLE_EQ(core::problem_flops(d), base) << "trial " << trial;
      }
    }
  }
}

TEST(PropertyOpDesc, BatchedFlopsAreBatchTimesSingle) {
  util::Xoshiro256 rng(0xba7c4);
  for (int trial = 0; trial < 100; ++trial) {
    const auto m = rng.uniform_int(1, 200);
    const auto n = rng.uniform_int(1, 200);
    const auto k = rng.uniform_int(1, 200);
    const auto batch = rng.uniform_int(2, 32);
    const auto one = core::OpDesc::gemm(
        model::Precision::F64, blas::Transpose::No, blas::Transpose::No, m,
        n, k, 0, 0, 0, true, true);
    const auto many = core::OpDesc::gemm_batched(
        model::Precision::F64, blas::Transpose::No, blas::Transpose::No, m,
        n, k, 0, 0, 0, batch, m * k, k * n, m * n, true, true);
    EXPECT_DOUBLE_EQ(core::problem_flops(many),
                     static_cast<double>(batch) * core::problem_flops(one))
        << "trial " << trial;
  }
}

TEST(PropertyOpDesc, LowerRaiseRoundTripsRandomProblems) {
  util::Xoshiro256 rng(0x10e4);
  for (int trial = 0; trial < 200; ++trial) {
    core::Problem p;
    const bool gemv = rng.next_double() < 0.5;
    p.op = gemv ? core::KernelOp::Gemv : core::KernelOp::Gemm;
    p.precision = rng.next_double() < 0.5 ? model::Precision::F32
                                          : model::Precision::F64;
    p.dims = {rng.uniform_int(1, 4096), rng.uniform_int(1, 4096),
              gemv ? 1 : rng.uniform_int(1, 4096)};
    p.beta_zero = rng.next_double() < 0.5;
    p.batch = gemv ? 1 : static_cast<int>(rng.uniform_int(1, 8));
    const core::Problem back = core::raise(core::lower(p));
    EXPECT_EQ(back.op, p.op) << "trial " << trial;
    EXPECT_EQ(back.precision, p.precision);
    EXPECT_EQ(back.dims.m, p.dims.m);
    EXPECT_EQ(back.dims.n, p.dims.n);
    EXPECT_EQ(back.dims.k, p.dims.k);
    EXPECT_EQ(back.beta_zero, p.beta_zero);
    EXPECT_EQ(back.batch, p.batch);
  }
}

// ------------------------------------------------------- csv fuzzing

TEST(PropertyCsv, EscapeParseRoundTripsRandomStrings) {
  util::Xoshiro256 rng(0xC5F);
  const char alphabet[] = "ab,\"\n\r x;|\\'\t0";
  for (int trial = 0; trial < 500; ++trial) {
    const int fields = static_cast<int>(rng.uniform_int(1, 6));
    std::vector<std::string> row;
    for (int f = 0; f < fields; ++f) {
      const int len = static_cast<int>(rng.uniform_int(0, 12));
      std::string s;
      for (int i = 0; i < len; ++i) {
        s.push_back(alphabet[rng.uniform_int(0, sizeof(alphabet) - 2)]);
      }
      row.push_back(std::move(s));
    }
    std::string line;
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) line += ',';
      line += util::csv_escape(row[i]);
    }
    // '\r' only survives inside quotes; skip rows with a bare CR field
    // that the escape left unquoted (it is the CRLF-tolerance feature).
    bool bare_cr = false;
    for (const auto& f : row) {
      if (f.find('\r') != std::string::npos &&
          f.find_first_of(",\"\n") == std::string::npos) {
        bare_cr = true;
      }
    }
    if (bare_cr) continue;
    EXPECT_EQ(util::csv_parse_line(line), row) << "trial " << trial;
  }
}

// ---------------------------------------------- model sanity sweeps

class SystemSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(SystemSweep, CpuTimeIsNearMonotoneInProblemSize) {
  // Library thread-count policies can make a slightly bigger problem
  // marginally *faster* right at a thread-count step (more aggregate
  // bandwidth), so the invariant allows a 5% local dip — but never a
  // real regression.
  core::SimBackend backend(profile::by_name(GetParam()), 0.0);
  for (auto op : {core::KernelOp::Gemm, core::KernelOp::Gemv}) {
    double prev = 0.0;
    for (std::int64_t s = 64; s <= 4096; s *= 2) {
      core::Problem p;
      p.op = op;
      p.dims = op == core::KernelOp::Gemm ? core::Dims{s, s, s}
                                          : core::Dims{s, s, 1};
      const double t = backend.cpu_time(p, 4);
      EXPECT_GT(t, 0.95 * prev) << GetParam() << " s=" << s;
      prev = t;
    }
  }
}

TEST_P(SystemSweep, GpuTimeIsMonotoneInIterations) {
  core::SimBackend backend(profile::by_name(GetParam()), 0.0);
  core::Problem p;
  p.op = core::KernelOp::Gemm;
  p.dims = {512, 512, 512};
  for (auto mode : core::kTransferModes) {
    double prev = 0.0;
    for (std::int64_t i = 1; i <= 256; i *= 4) {
      const double t = *backend.gpu_time(p, i, mode);
      EXPECT_GT(t, prev) << GetParam() << " mode="
                         << core::to_string(mode) << " i=" << i;
      prev = t;
    }
  }
}

TEST_P(SystemSweep, TransferAlwaysIsNeverFasterThanOnce) {
  core::SimBackend backend(profile::by_name(GetParam()), 0.0);
  for (std::int64_t s : {64LL, 512LL, 2048LL}) {
    core::Problem p;
    p.op = core::KernelOp::Gemm;
    p.dims = {s, s, s};
    for (std::int64_t i : {1LL, 8LL, 64LL}) {
      EXPECT_GE(*backend.gpu_time(p, i, core::TransferMode::Always) + 1e-15,
                *backend.gpu_time(p, i, core::TransferMode::Once))
          << GetParam() << " s=" << s << " i=" << i;
    }
  }
}

TEST_P(SystemSweep, F64IsNeverFasterThanF32OnCpu) {
  core::SimBackend backend(profile::by_name(GetParam()), 0.0);
  for (std::int64_t s : {128LL, 1024LL}) {
    core::Problem f32;
    f32.op = core::KernelOp::Gemm;
    f32.precision = model::Precision::F32;
    f32.dims = {s, s, s};
    core::Problem f64 = f32;
    f64.precision = model::Precision::F64;
    EXPECT_GE(backend.cpu_time(f64, 4) + 1e-15, backend.cpu_time(f32, 4))
        << GetParam() << " s=" << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Systems, SystemSweep,
                         ::testing::Values("dawn", "lumi", "isambard-ai",
                                           "lumi-openblas",
                                           "isambard-ai-armpl",
                                           "isambard-ai-nvpl-1t",
                                           "lumi-xnack-off", "mi300a-apu",
                                           "dawn-implicit"));

}  // namespace
