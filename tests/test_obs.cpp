// Tests for the unified observability layer (src/obs): span nesting and
// cross-thread parent links, the registry's counters and log2 histograms
// under concurrency, the Chrome trace_event exporter (validated by
// round-tripping through util/json), and the central design contract —
// the disabled hot path takes no lock.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace obs = blob::obs;
namespace util = blob::util;

namespace {

/// Enables tracing for the test body and leaves the rings drained and
/// tracing off afterwards, so tests stay independent of suite order.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    (void)obs::drain_events();
    obs::set_enabled(true);
  }
  void TearDown() override {
    obs::set_enabled(false);
    (void)obs::drain_events();
  }
};

const obs::TraceEvent* find_event(const std::vector<obs::TraceEvent>& events,
                                  const std::string& name) {
  for (const auto& e : events) {
    if (name == e.name) return &e;
  }
  return nullptr;
}

// --- spans ---------------------------------------------------------------

TEST_F(ObsTest, SpanNestingRecordsParents) {
  {
    obs::Span outer("outer.span");
    EXPECT_EQ(obs::Span::current(), outer.id());
    {
      obs::Span inner("inner.span");
      EXPECT_EQ(obs::Span::current(), inner.id());
    }
    EXPECT_EQ(obs::Span::current(), outer.id());
  }
  EXPECT_EQ(obs::Span::current(), 0u);

  const auto events = obs::drain_events();
  const auto* outer = find_event(events, "outer.span");
  const auto* inner = find_event(events, "inner.span");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->parent, 0u);
  EXPECT_EQ(inner->parent, outer->id);
  EXPECT_GE(inner->ts_ns, outer->ts_ns);
}

TEST_F(ObsTest, ExplicitParentLinksAcrossThreads) {
  std::uint64_t root_id = 0;
  {
    obs::Span root("xthread.root");
    root_id = root.id();
    std::thread worker([root_id] {
      obs::Span child("xthread.child", obs::Category::Pool, root_id);
      EXPECT_EQ(child.id() != 0, true);
    });
    worker.join();
  }

  const auto events = obs::drain_events();
  const auto* root = find_event(events, "xthread.root");
  const auto* child = find_event(events, "xthread.child");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(root->id, root_id);
  EXPECT_EQ(child->parent, root_id);
  // The worker got its own ring, hence its own obs thread index.
  EXPECT_NE(child->tid, root->tid);
}

TEST_F(ObsTest, InstantNestsUnderCurrentSpan) {
  {
    obs::Span span("instant.host");
    obs::instant("instant.mark", obs::Category::App);
  }
  const auto events = obs::drain_events();
  const auto* host = find_event(events, "instant.host");
  const auto* mark = find_event(events, "instant.mark");
  ASSERT_NE(host, nullptr);
  ASSERT_NE(mark, nullptr);
  EXPECT_TRUE(mark->instant);
  EXPECT_FALSE(host->instant);
  EXPECT_EQ(mark->parent, host->id);
}

TEST_F(ObsTest, MovedFromSpanDoesNotDoubleEmit) {
  {
    obs::Span a("moved.span");
    obs::Span b = std::move(a);
    EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(b.active());
  }
  const auto events = obs::drain_events();
  int hits = 0;
  for (const auto& e : events) {
    if (std::string("moved.span") == e.name) ++hits;
  }
  EXPECT_EQ(hits, 1);
}

TEST_F(ObsTest, VirtualIntervalRidesOnTheEvent) {
  {
    obs::Span span("virtual.span", obs::Category::Gpu);
    span.set_virtual(1.5, 0.25);
  }
  const auto events = obs::drain_events();
  const auto* e = find_event(events, "virtual.span");
  ASSERT_NE(e, nullptr);
  EXPECT_DOUBLE_EQ(e->vt_start_s, 1.5);
  EXPECT_DOUBLE_EQ(e->vt_dur_s, 0.25);
}

// --- registry ------------------------------------------------------------

TEST(ObsRegistry, HistogramBucketBoundaries) {
  using H = obs::Histogram;
  // 0 is its own bucket; bucket b >= 1 covers [2^(b-1), 2^b - 1].
  EXPECT_EQ(H::bucket_of(0), 0u);
  EXPECT_EQ(H::bucket_of(1), 1u);
  EXPECT_EQ(H::bucket_of(2), 2u);
  EXPECT_EQ(H::bucket_of(3), 2u);
  EXPECT_EQ(H::bucket_of(4), 3u);
  EXPECT_EQ(H::bucket_of(7), 3u);
  EXPECT_EQ(H::bucket_of(8), 4u);
  EXPECT_EQ(H::bucket_of(1023), 10u);
  EXPECT_EQ(H::bucket_of(1024), 11u);
  EXPECT_EQ(H::bucket_of(std::numeric_limits<std::uint64_t>::max()),
            H::kBuckets - 1);

  for (std::size_t b = 1; b < H::kBuckets; ++b) {
    EXPECT_EQ(H::bucket_of(H::bucket_floor(b)), b) << "bucket " << b;
    EXPECT_EQ(H::bucket_of(H::bucket_ceil(b)), b) << "bucket " << b;
  }
}

TEST(ObsRegistry, HistogramRecordsCountSumBuckets) {
  obs::Histogram h;
  h.record(0);
  h.record(1);
  h.record(3);
  h.record(3);
  h.record(1000);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1007u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(10), 1u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.bucket_count(2), 0u);
}

TEST(ObsRegistry, ConcurrentCountersAreExact) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  obs::Counter& counter = obs::counter("test.obs.concurrent_counter");
  counter.reset();

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      // Mirror production call sites: resolve once, then hammer atomics.
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(ObsRegistry, ConcurrentHistogramCountIsExact) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 10000;
  obs::Histogram& h = obs::histogram("test.obs.concurrent_histogram");
  h.reset();

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.record(static_cast<std::uint64_t>(t) * 1000 + i % 7);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
}

TEST(ObsRegistry, SameNameYieldsSameMetric) {
  obs::Counter& a = obs::counter("test.obs.same_name");
  obs::Counter& b = obs::counter("test.obs.same_name");
  EXPECT_EQ(&a, &b);
  obs::Histogram& ha = obs::histogram("test.obs.same_hist");
  obs::Histogram& hb = obs::histogram("test.obs.same_hist");
  EXPECT_EQ(&ha, &hb);
}

// --- exporters -----------------------------------------------------------

TEST_F(ObsTest, ChromeTraceRoundTripsThroughJsonParser) {
  std::uint64_t root_id = 0;
  {
    obs::Span root("rt.root", obs::Category::Dispatch);
    root_id = root.id();
    {
      obs::Span gpu("rt.gpu", obs::Category::Gpu);
      gpu.set_virtual(0.5, 0.125);
    }
    std::thread worker([root_id] {
      obs::Span child("rt.worker", obs::Category::Pool, root_id);
    });
    worker.join();
  }

  std::ostringstream os;
  obs::write_chrome_trace(os, obs::drain_events());
  const util::JsonValue doc = util::json_parse(os.str());

  ASSERT_TRUE(doc.is_object());
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_FALSE(events.empty());

  bool saw_root = false, saw_virtual_mirror = false;
  bool saw_flow_start = false, saw_flow_finish = false;
  std::int64_t worker_parent = -1;
  for (const auto& e : events) {
    const std::string& ph = e.at("ph").as_string();
    if (ph == "s") saw_flow_start = true;
    if (ph == "f") saw_flow_finish = true;
    if (ph != "X") continue;
    const std::string& name = e.at("name").as_string();
    const std::int64_t pid = e.at("pid").as_int();
    if (name == "rt.root" && pid == 1) {
      saw_root = true;
      EXPECT_EQ(e.at("args").at("id").as_int(),
                static_cast<std::int64_t>(root_id));
      EXPECT_EQ(e.at("cat").as_string(), "dispatch");
      EXPECT_GE(e.at("dur").as_double(), 0.0);
    }
    if (name == "rt.gpu" && pid == 2) {
      saw_virtual_mirror = true;
      // Virtual lane coordinates are the modelled seconds in us.
      EXPECT_DOUBLE_EQ(e.at("ts").as_double(), 0.5 * 1e6);
      EXPECT_DOUBLE_EQ(e.at("dur").as_double(), 0.125 * 1e6);
    }
    if (name == "rt.worker" && pid == 1) {
      worker_parent = e.at("args").at("parent").as_int();
    }
  }
  EXPECT_TRUE(saw_root);
  EXPECT_TRUE(saw_virtual_mirror);
  EXPECT_EQ(worker_parent, static_cast<std::int64_t>(root_id));
  // Cross-thread parent/child gets a flow arrow pair.
  EXPECT_TRUE(saw_flow_start);
  EXPECT_TRUE(saw_flow_finish);
}

TEST(ObsExport, MetricsJsonRoundTrips) {
  obs::Registry registry;
  registry.counter("demo.calls").add(3);
  registry.histogram("demo.wait_ns").record(5);
  registry.histogram("demo.wait_ns").record(100);

  std::ostringstream os;
  obs::write_metrics_json(os, registry.snapshot());
  const util::JsonValue doc = util::json_parse(os.str());

  EXPECT_EQ(doc.at("counters").at("demo.calls").as_int(), 3);
  const auto& hist = doc.at("histograms").at("demo.wait_ns");
  EXPECT_EQ(hist.at("count").as_int(), 2);
  EXPECT_EQ(hist.at("sum").as_int(), 105);
  const auto& buckets = hist.at("buckets").as_array();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].as_array()[0].as_int(), 4);    // floor of [4,7]
  EXPECT_EQ(buckets[0].as_array()[1].as_int(), 1);
  EXPECT_EQ(buckets[1].as_array()[0].as_int(), 64);   // floor of [64,127]
  EXPECT_EQ(buckets[1].as_array()[1].as_int(), 1);
}

TEST(ObsExport, MetricsTextMentionsEveryMetric) {
  obs::Registry registry;
  registry.counter("demo.text_counter").add(7);
  registry.histogram("demo.text_hist").record(42);

  std::ostringstream os;
  obs::write_metrics_text(os, registry.snapshot());
  const std::string text = os.str();
  EXPECT_NE(text.find("demo.text_counter"), std::string::npos);
  EXPECT_NE(text.find("7"), std::string::npos);
  EXPECT_NE(text.find("demo.text_hist"), std::string::npos);
}

// --- overhead contracts --------------------------------------------------

TEST(ObsOverhead, DisabledPathTakesNoLock) {
  obs::set_enabled(false);
  // Warm up: make sure the global registry and this thread's ring exist,
  // so the measured section cannot hit a cold-path registration.
  obs::counter("test.obs.warmup").add(1);
  obs::set_enabled(true);
  { obs::Span warm("warmup.span"); }
  obs::set_enabled(false);

  const std::uint64_t locks_before = obs::detail::lock_acquisitions();
  for (int i = 0; i < 100000; ++i) {
    obs::Span span("disabled.span", obs::Category::Blas);
    obs::instant("disabled.instant");
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(obs::Span::current(), 0u);
  const std::uint64_t locks_after = obs::detail::lock_acquisitions();
  EXPECT_EQ(locks_after, locks_before)
      << "disabled tracing must be a branch, not a lock";

  // And nothing was recorded.
  obs::set_enabled(true);
  bool found = false;
  for (const auto& e : obs::drain_events()) {
    if (std::string(e.name).rfind("disabled.", 0) == 0) found = true;
  }
  obs::set_enabled(false);
  EXPECT_FALSE(found);
}

TEST(ObsOverhead, FullRingDropsInsteadOfBlocking) {
  const std::uint64_t dropped_before = obs::dropped_events();
  obs::detail::set_ring_capacity(16);
  obs::set_enabled(true);
  // A fresh thread gets a fresh (tiny) ring; overflow it.
  std::thread t([] {
    for (int i = 0; i < 200; ++i) {
      obs::Span span("droppy.span");
    }
  });
  t.join();
  obs::set_enabled(false);
  obs::detail::set_ring_capacity(std::size_t{1} << 16);

  EXPECT_GT(obs::dropped_events(), dropped_before);
  // The ring still holds (at most) its capacity of the earliest events.
  int droppy = 0;
  for (const auto& e : obs::drain_events()) {
    if (std::string("droppy.span") == e.name) ++droppy;
  }
  EXPECT_GT(droppy, 0);
  EXPECT_LE(droppy, 16);
}

}  // namespace
