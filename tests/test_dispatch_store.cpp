// Calibration store: JSON round-trip, version/personality/profile
// mismatch rejection, tuned-blocking persistence, and the dispatcher-level
// warm path that consumes it.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "dispatch/calibration_store.hpp"
#include "dispatch/dispatcher.hpp"

namespace {

using namespace blob;
using dispatch::BucketKey;
using dispatch::BucketState;
using dispatch::CalibrationData;
using dispatch::LoadResult;
using dispatch::LoadStatus;
using dispatch::Route;

CalibrationData sample_data() {
  CalibrationData data;
  data.personality = "generic";
  data.profile = "dawn";
  BucketState small;
  small.cpu = {1.5e-5, 12};
  small.gpu = {9.0e-5, 3};
  small.incumbent = Route::Cpu;
  small.visits = 40;
  small.switches = 0;
  data.entries[{core::KernelOp::Gemm, model::Precision::F32,
                core::TransferMode::Once, 18}] = small;
  BucketState large;
  large.cpu = {7.2e-4, 9};
  large.gpu = {4.1e-4, 22};
  large.incumbent = Route::Gpu;
  large.visits = 31;
  large.switches = 1;
  data.entries[{core::KernelOp::Gemv, model::Precision::F64,
                core::TransferMode::Always, 23}] = large;
  blas::GemmBlocking blocking;
  blocking.mc = 96;
  blocking.kc = 192;
  blocking.nc = 2048;
  data.blocking_f64 = blocking;
  return data;
}

TEST(DispatchStore, RoundTripPreservesEverything) {
  const CalibrationData data = sample_data();
  std::stringstream buffer;
  dispatch::save_calibration(buffer, data);

  const LoadResult result =
      dispatch::load_calibration(buffer, "generic", "dawn");
  ASSERT_EQ(result.status, LoadStatus::Ok) << to_string(result.status);
  EXPECT_EQ(result.data.personality, "generic");
  EXPECT_EQ(result.data.profile, "dawn");
  ASSERT_EQ(result.data.entries.size(), 2u);

  const BucketKey key{core::KernelOp::Gemv, model::Precision::F64,
                      core::TransferMode::Always, 23};
  ASSERT_TRUE(result.data.entries.contains(key));
  const BucketState& state = result.data.entries.at(key);
  EXPECT_DOUBLE_EQ(state.cpu.ewma_s, 7.2e-4);
  EXPECT_EQ(state.cpu.samples, 9u);
  EXPECT_DOUBLE_EQ(state.gpu.ewma_s, 4.1e-4);
  EXPECT_EQ(state.gpu.samples, 22u);
  EXPECT_EQ(state.incumbent, Route::Gpu);
  EXPECT_EQ(state.visits, 31u);
  EXPECT_EQ(state.switches, 1u);

  EXPECT_FALSE(result.data.blocking_f32.has_value());
  ASSERT_TRUE(result.data.blocking_f64.has_value());
  EXPECT_EQ(result.data.blocking_f64->mc, 96);
  EXPECT_EQ(result.data.blocking_f64->kc, 192);
  EXPECT_EQ(result.data.blocking_f64->nc, 2048);
}

TEST(DispatchStore, EmptyExpectationsSkipTheKeyChecks) {
  std::stringstream buffer;
  dispatch::save_calibration(buffer, sample_data());
  const LoadResult result = dispatch::load_calibration(buffer, "", "");
  EXPECT_EQ(result.status, LoadStatus::Ok);
}

TEST(DispatchStore, RejectsMismatches) {
  {
    std::stringstream buffer;
    dispatch::save_calibration(buffer, sample_data());
    EXPECT_EQ(dispatch::load_calibration(buffer, "nvpl", "dawn").status,
              LoadStatus::PersonalityMismatch);
  }
  {
    std::stringstream buffer;
    dispatch::save_calibration(buffer, sample_data());
    EXPECT_EQ(dispatch::load_calibration(buffer, "generic", "lumi").status,
              LoadStatus::ProfileMismatch);
  }
  {
    // A file written by a future schema version is rejected before any
    // personality/profile check.
    std::stringstream buffer;
    buffer << R"({"version": 99, "personality": "generic",)"
           << R"( "profile": "dawn", "entries": []})";
    EXPECT_EQ(dispatch::load_calibration(buffer, "generic", "dawn").status,
              LoadStatus::VersionMismatch);
  }
  {
    std::stringstream buffer("this is not json");
    EXPECT_EQ(dispatch::load_calibration(buffer, "generic", "dawn").status,
              LoadStatus::BadJson);
  }
  EXPECT_EQ(dispatch::load_calibration_file("/nonexistent/calib.json",
                                            "generic", "dawn")
                .status,
            LoadStatus::IoError);
}

TEST(DispatchStore, TenantNamespaceRoundTripsAndGatesLoads) {
  CalibrationData data = sample_data();
  data.nspace = "tenant-a";
  std::stringstream tagged;
  dispatch::save_calibration(tagged, data);
  {
    std::stringstream in(tagged.str());
    const LoadResult result =
        dispatch::load_calibration(in, "generic", "dawn", "tenant-a");
    ASSERT_EQ(result.status, LoadStatus::Ok);
    EXPECT_EQ(result.data.nspace, "tenant-a");
  }
  {
    // A store calibrated for one tenant must not seed another's table.
    std::stringstream in(tagged.str());
    EXPECT_EQ(
        dispatch::load_calibration(in, "generic", "dawn", "tenant-b").status,
        LoadStatus::NamespaceMismatch);
  }
  {
    // Empty expectation = tooling inspection: always accepted.
    std::stringstream in(tagged.str());
    EXPECT_EQ(dispatch::load_calibration(in, "generic", "dawn", "").status,
              LoadStatus::Ok);
  }
  {
    // A shared (un-namespaced) store does not satisfy a tenant caller.
    std::stringstream shared;
    dispatch::save_calibration(shared, sample_data());
    EXPECT_EQ(
        dispatch::load_calibration(shared, "generic", "dawn", "tenant-a")
            .status,
        LoadStatus::NamespaceMismatch);
  }
}

TEST(DispatchStore, EmptyNamespaceKeepsPreNamespaceBytes) {
  // The namespace field is additive: a store with no tenant serialises
  // without the key at all, so single-tenant files round-trip
  // byte-identically to pre-namespace ones.
  std::stringstream out;
  dispatch::save_calibration(out, sample_data());
  EXPECT_EQ(out.str().find("namespace"), std::string::npos);
  CalibrationData tagged = sample_data();
  tagged.nspace = "tenant-a";
  std::stringstream tagged_out;
  dispatch::save_calibration(tagged_out, tagged);
  EXPECT_NE(tagged_out.str().find("\"namespace\""), std::string::npos);
  EXPECT_NE(tagged_out.str().find("tenant-a"), std::string::npos);
}

TEST(DispatchStore, V4BudgetKeysAndEmuEstimatesRoundTrip) {
  // v4: non-exact budget keys and the emulated-arm estimate persist, so
  // a warm restart resumes three-arm routing without re-exploring. The
  // exact-budget entries from sample_data() must coexist untouched.
  CalibrationData data = sample_data();
  BucketKey relaxed{core::KernelOp::Gemm, model::Precision::F64,
                    core::TransferMode::Once, 28};
  relaxed.budget_kind = core::ErrorBudgetKind::Relaxed;
  BucketState emu_state;
  emu_state.cpu = {3.1e-4, 7};
  emu_state.gpu = {2.4e-4, 11};
  emu_state.emu = {1.6e-4, 13};
  emu_state.incumbent = Route::GpuEmulated;
  emu_state.visits = 33;
  emu_state.switches = 2;
  data.entries[relaxed] = emu_state;
  BucketKey ulp = relaxed;
  ulp.budget_kind = core::ErrorBudgetKind::UlpBounded;
  ulp.budget_ulps = 512;
  data.entries[ulp] = emu_state;

  std::stringstream buffer;
  dispatch::save_calibration(buffer, data);
  const LoadResult result =
      dispatch::load_calibration(buffer, "generic", "dawn");
  ASSERT_EQ(result.status, LoadStatus::Ok) << to_string(result.status);
  // A file written at the current version carries no caveat.
  EXPECT_TRUE(result.warning.empty()) << result.warning;
  ASSERT_EQ(result.data.entries.size(), 4u);

  ASSERT_TRUE(result.data.entries.contains(relaxed));
  const BucketState& got = result.data.entries.at(relaxed);
  EXPECT_DOUBLE_EQ(got.emu.ewma_s, 1.6e-4);
  EXPECT_EQ(got.emu.samples, 13u);
  EXPECT_EQ(got.incumbent, Route::GpuEmulated);

  ASSERT_TRUE(result.data.entries.contains(ulp));
  // The ulp count is part of the key: dropping it would collapse
  // distinct budgets into one bucket.
  BucketKey wrong_ulps = ulp;
  wrong_ulps.budget_ulps = 16;
  EXPECT_FALSE(result.data.entries.contains(wrong_ulps));

  // Exact entries serialise with v3-shaped bodies: no budget key, no
  // emulated estimate (it is zero-sample there by construction).
  std::stringstream exact_only;
  dispatch::save_calibration(exact_only, sample_data());
  EXPECT_EQ(exact_only.str().find("\"budget\""), std::string::npos);
  EXPECT_EQ(exact_only.str().find("\"emu\""), std::string::npos);
}

TEST(DispatchStore, V3EraStoreLoadsAsExactBudgetBuckets) {
  // A pre-budget (v3) file must keep seeding warm restarts: every entry
  // loads under the default exact budget with a cold emulated arm, and
  // the loader says so in its warning line.
  std::stringstream buffer;
  buffer << R"({
    "version": 3, "personality": "generic", "profile": "dawn",
    "entries": [{
      "op": "gemm", "precision": "f64", "mode": "once", "bucket": 24,
      "ta": "N", "tb": "N", "residency": "warm",
      "cpu": {"ewma_s": 2.0e-4, "samples": 8},
      "gpu": {"ewma_s": 1.1e-4, "samples": 14},
      "incumbent": "gpu", "visits": 22, "switches": 1
    }]
  })";
  const LoadResult result =
      dispatch::load_calibration(buffer, "generic", "dawn");
  ASSERT_EQ(result.status, LoadStatus::Ok) << to_string(result.status);
  EXPECT_NE(result.warning.find("v3"), std::string::npos) << result.warning;
  ASSERT_EQ(result.data.entries.size(), 1u);
  const auto& [key, state] = *result.data.entries.begin();
  EXPECT_EQ(key.budget_kind, core::ErrorBudgetKind::Exact);
  EXPECT_EQ(key.budget_ulps, 0u);
  EXPECT_EQ(key.residency, dispatch::ResidencyClass::Warm);
  EXPECT_EQ(state.emu.samples, 0u);
  EXPECT_DOUBLE_EQ(state.gpu.ewma_s, 1.1e-4);
}

TEST(DispatchStore, DispatcherRejectsForeignStoreAndColdStarts) {
  const std::string path =
      testing::TempDir() + "/dispatch_store_foreign.json";
  // Written against lumi...
  CalibrationData data = sample_data();
  data.profile = "lumi";
  ASSERT_TRUE(dispatch::save_calibration_file(path, data));

  // ...loaded by a dawn dispatcher: rejected, table stays advisor-seeded.
  dispatch::DispatcherConfig cfg;
  cfg.profile = profile::dawn();
  cfg.cpu_threads = 1;
  cfg.calibration_path = path;
  dispatch::Dispatcher disp(cfg);
  EXPECT_EQ(disp.startup_load_status(), LoadStatus::ProfileMismatch);
  EXPECT_EQ(disp.stats().calibration_loads, 0u);
  EXPECT_TRUE(disp.table().entries().empty());
  std::remove(path.c_str());
}

TEST(DispatchStore, AutotunedBlockingPersistsAcrossRestart) {
  // Satellite: blas::autotune_blocking results ride in the calibration
  // store, so a restart skips the re-tune as well as re-exploration.
  const std::string path = testing::TempDir() + "/dispatch_store_tuned.json";
  dispatch::DispatcherConfig cfg;
  cfg.profile = profile::dawn();
  cfg.cpu_threads = 2;
  cfg.autotune = true;
  cfg.autotune_size = 96;
  {
    dispatch::Dispatcher tuned(cfg);
    EXPECT_GE(tuned.stats().autotune_runs, 1u);
    ASSERT_TRUE(tuned.blocking_f64().has_value());
    ASSERT_TRUE(tuned.save_calibration(path));
  }
  dispatch::DispatcherConfig warm = cfg;
  warm.autotune = true;  // would re-tune, except the store supplies it
  warm.calibration_path = path;
  dispatch::Dispatcher restarted(warm);
  EXPECT_EQ(restarted.startup_load_status(), LoadStatus::Ok);
  EXPECT_EQ(restarted.stats().autotune_runs, 0u);
  EXPECT_TRUE(restarted.blocking_f64().has_value());
  std::remove(path.c_str());
}

}  // namespace
