// Timing-model unit and property tests: efficiency curves, quirks,
// CPU/GPU roofline models, link/USM model, deterministic noise.

#include <gtest/gtest.h>

#include <cmath>

#include "perfmodel/cpu_model.hpp"
#include "perfmodel/curve.hpp"
#include "perfmodel/gpu_model.hpp"
#include "perfmodel/link_model.hpp"
#include "perfmodel/noise.hpp"
#include "perfmodel/quirk.hpp"

namespace {

using namespace blob::model;

// ----------------------------------------------------------------- curve

TEST(Curve, RampIsMonotoneAndBounded) {
  const EfficiencyCurve c{0.8, 0.01, 256.0, 1.8};
  double prev = 0.0;
  for (double x = 0.0; x <= 1e5; x = x * 1.3 + 1.0) {
    const double e = c.at(x);
    EXPECT_GE(e, prev);
    EXPECT_GT(e, 0.0);
    EXPECT_LE(e, 0.8 + 1e-12);
    prev = e;
  }
}

TEST(Curve, HalfSizeIsMidpoint) {
  const EfficiencyCurve c{0.8, 0.0, 100.0, 2.0};
  EXPECT_NEAR(c.at(100.0), 0.4, 1e-6);
}

TEST(Curve, EffectiveDims) {
  EXPECT_DOUBLE_EQ(gemm_effective_dim(8, 8, 8), 8.0);
  EXPECT_NEAR(gemm_effective_dim(2, 4, 8), 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(gemv_effective_dim(16, 16), 16.0);
  EXPECT_NEAR(gemv_effective_dim(4, 64), 16.0, 1e-12);
  EXPECT_DOUBLE_EQ(gemm_effective_dim(0, 5, 5), 0.0);
  EXPECT_DOUBLE_EQ(gemv_effective_dim(5, 0), 0.0);
  EXPECT_DOUBLE_EQ(gemv_gpu_effective_dim(10, 10), 10.0);
  EXPECT_GT(gemv_gpu_effective_dim(160, 10),
            gemv_gpu_effective_dim(10, 160));
}

// ----------------------------------------------------------------- quirk

TEST(Quirk, DropRecoversLinearly) {
  const PerfQuirk q = drop_at(100.0, 0.5, 200.0);
  EXPECT_DOUBLE_EQ(q.factor(50.0), 1.0);
  EXPECT_DOUBLE_EQ(q.factor(100.0), 0.5);
  EXPECT_DOUBLE_EQ(q.factor(200.0), 0.75);
  EXPECT_DOUBLE_EQ(q.factor(300.0), 1.0);
  EXPECT_DOUBLE_EQ(q.factor(1000.0), 1.0);
}

TEST(Quirk, StepUpPenalisesBelowPosition) {
  const PerfQuirk q = step_up_at(128.0, 0.25);
  EXPECT_DOUBLE_EQ(q.factor(64.0), 0.25);
  EXPECT_DOUBLE_EQ(q.factor(128.0), 1.0);
  EXPECT_DOUBLE_EQ(q.factor(4096.0), 1.0);
}

TEST(Quirk, PlateauFreezesAchievedPerf) {
  const PerfQuirk q = plateau_from(100.0);
  EXPECT_DOUBLE_EQ(q.factor(50.0), 1.0);
  EXPECT_DOUBLE_EQ(q.factor(200.0), 0.5);
  EXPECT_DOUBLE_EQ(q.factor(400.0), 0.25);
}

TEST(Quirk, PrecisionScopeFilters) {
  PerfQuirk q = step_up_at(100.0, 0.5, QuirkScope::F64Only);
  EXPECT_FALSE(q.applies_to(Precision::F32, 10, 10));
  EXPECT_TRUE(q.applies_to(Precision::F64, 10, 10));
  q.scope = QuirkScope::F32Only;
  EXPECT_TRUE(q.applies_to(Precision::F32, 10, 10));
  EXPECT_TRUE(q.applies_to(Precision::F16, 10, 10));
  EXPECT_FALSE(q.applies_to(Precision::F64, 10, 10));
}

TEST(Quirk, ShapeFiltersRestrictApplication) {
  PerfQuirk q = step_up_at(100.0, 0.5);
  q.max_min_mn = 32.0;
  EXPECT_TRUE(q.applies_to(Precision::F32, 32, 4096));
  EXPECT_FALSE(q.applies_to(Precision::F32, 64, 4096));

  PerfQuirk aspect = step_up_at(100.0, 0.5);
  aspect.min_aspect = 4.0;
  EXPECT_TRUE(aspect.applies_to(Precision::F32, 16, 64));
  EXPECT_FALSE(aspect.applies_to(Precision::F32, 30, 64));

  PerfQuirk wide = step_up_at(100.0, 0.5);
  wide.orientation = PerfQuirk::Orientation::Wide;
  EXPECT_TRUE(wide.applies_to(Precision::F32, 16, 64));
  EXPECT_FALSE(wide.applies_to(Precision::F32, 64, 16));

  PerfQuirk tall = step_up_at(100.0, 0.5);
  tall.orientation = PerfQuirk::Orientation::Tall;
  EXPECT_TRUE(tall.applies_to(Precision::F32, 64, 16));
  EXPECT_FALSE(tall.applies_to(Precision::F32, 16, 64));
}

TEST(Quirk, ComposeProductAndFloor) {
  std::vector<PerfQuirk> quirks = {step_up_at(100.0, 0.5),
                                   step_up_at(100.0, 0.5)};
  EXPECT_DOUBLE_EQ(apply_quirks(quirks, 50.0, Precision::F32), 0.25);
  EXPECT_DOUBLE_EQ(apply_quirks({}, 50.0, Precision::F32), 1.0);
  std::vector<PerfQuirk> crushing(10, step_up_at(1e9, 1e-3));
  EXPECT_GE(apply_quirks(crushing, 1.0, Precision::F32), 1e-6);
}

// ------------------------------------------------------------- cpu model

CpuModel test_cpu() {
  CpuModel cpu;
  cpu.cores = 16;
  cpu.fp64_flops_per_cycle_per_core = 16;
  cpu.freq_ghz = 2.0;
  cpu.socket_mem_bw_gbs = 100.0;
  cpu.core_mem_bw_gbs = 15.0;
  return cpu;
}

TEST(CpuModel, PeakScalesWithThreadsAndPrecision) {
  const CpuModel cpu = test_cpu();
  EXPECT_DOUBLE_EQ(cpu.peak_gflops(Precision::F64, 1), 32.0);
  EXPECT_DOUBLE_EQ(cpu.peak_gflops(Precision::F64, 16), 512.0);
  EXPECT_DOUBLE_EQ(cpu.peak_gflops(Precision::F32, 16), 1024.0);
  EXPECT_DOUBLE_EQ(cpu.peak_gflops(Precision::F16, 1), 128.0);
  // Clamped to the core count.
  EXPECT_DOUBLE_EQ(cpu.peak_gflops(Precision::F64, 1000), 512.0);
}

TEST(CpuModel, GemmTimeIsMonotoneInSize) {
  const CpuModel cpu = test_cpu();
  double prev = 0.0;
  for (int s = 1; s <= 4096; s *= 2) {
    const double t = cpu.gemm_time(Precision::F32, s, s, s);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(CpuModel, GemmTimeRespectsRoofline) {
  const CpuModel cpu = test_cpu();
  const double m = 2048;
  const double t = cpu.gemm_time(Precision::F64, m, m, m);
  const double flops = 2 * m * m * m + m * m;
  // Never faster than theoretical peak.
  EXPECT_GE(t, flops / (cpu.peak_gflops(Precision::F64, 16) * 1e9));
}

TEST(CpuModel, BetaNonZeroIsSlower) {
  const CpuModel cpu = test_cpu();
  EXPECT_GT(cpu.gemm_time(Precision::F32, 512, 512, 4, false),
            cpu.gemm_time(Precision::F32, 512, 512, 4, true));
  EXPECT_GT(cpu.gemv_time(Precision::F32, 512, 512, false),
            cpu.gemv_time(Precision::F32, 512, 512, true));
}

TEST(CpuModel, WarmIterationsAreFaster) {
  CpuModel cpu = test_cpu();
  cpu.warm_compute_boost = 1.5;
  const double cold = cpu.gemm_time(Precision::F64, 256, 256, 256, true,
                                    false);
  const double warm = cpu.gemm_time(Precision::F64, 256, 256, 256, true,
                                    true);
  EXPECT_LT(warm, cold);
  // Total over 10 iterations is between 10x warm and 10x cold.
  const double total =
      cpu.gemm_total_time(Precision::F64, 256, 256, 256, 10);
  EXPECT_GT(total, 10 * warm);
  EXPECT_LT(total, 10 * cold);
}

TEST(CpuModel, GemvTotalIsIterationLinear) {
  const CpuModel cpu = test_cpu();
  const double one = cpu.gemv_total_time(Precision::F64, 512, 512, 1);
  const double many = cpu.gemv_total_time(Precision::F64, 512, 512, 64);
  EXPECT_NEAR(many, 64 * one, 1e-9 * many);
}

TEST(CpuModel, SerialGemvIsSlowerThanParallel) {
  CpuModel serial = test_cpu();
  serial.gemv_parallel = false;
  CpuModel parallel_cpu = test_cpu();
  parallel_cpu.gemv_parallel = true;
  EXPECT_GT(serial.gemv_time(Precision::F64, 4096, 4096),
            parallel_cpu.gemv_time(Precision::F64, 4096, 4096));
}

TEST(CpuModel, DegenerateDimsCostOnlyOverhead) {
  const CpuModel cpu = test_cpu();
  EXPECT_DOUBLE_EQ(cpu.gemm_time(Precision::F32, 0, 5, 5),
                   cpu.call_overhead_s);
  EXPECT_DOUBLE_EQ(cpu.gemv_time(Precision::F32, 5, 0), cpu.call_overhead_s);
}

// ------------------------------------------------------------- gpu model

GpuModel test_gpu() {
  GpuModel gpu;
  gpu.peak_gflops_f32 = 20000;
  gpu.peak_gflops_f64 = 10000;
  gpu.hbm_bw_gbs = 1000;
  gpu.launch_latency_s = 5e-6;
  gpu.min_kernel_s = 2e-6;
  return gpu;
}

TEST(GpuModel, LaunchLatencyFloorsSmallKernels) {
  const GpuModel gpu = test_gpu();
  const double t = gpu.gemm_kernel_time(Precision::F32, 1, 1, 1);
  EXPECT_GE(t, gpu.launch_latency_s + gpu.min_kernel_s);
}

TEST(GpuModel, KernelTimeMonotoneInSize) {
  const GpuModel gpu = test_gpu();
  double prev = 0.0;
  for (int s = 16; s <= 8192; s *= 2) {
    const double t = gpu.gemm_kernel_time(Precision::F64, s, s, s);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(GpuModel, F64SlowerThanF32ForComputeBound) {
  const GpuModel gpu = test_gpu();
  EXPECT_GT(gpu.gemm_kernel_time(Precision::F64, 2048, 2048, 2048),
            gpu.gemm_kernel_time(Precision::F32, 2048, 2048, 2048));
}

TEST(GpuModel, GemvIsBandwidthBoundAtScale) {
  const GpuModel gpu = test_gpu();
  const double m = 4096;
  const double bytes = 4.0 * (m * m + m + m);
  const double t = gpu.gemv_kernel_time(Precision::F32, m, m);
  // Cannot beat raw HBM bandwidth.
  EXPECT_GE(t, bytes / (gpu.hbm_bw_gbs * 1e9));
}

TEST(GpuModel, GflopsConsistentWithTime) {
  const GpuModel gpu = test_gpu();
  const double t = gpu.gemm_kernel_time(Precision::F32, 512, 512, 512);
  const double flops = 2.0 * 512 * 512 * 512 + 512.0 * 512;
  EXPECT_NEAR(gpu.gemm_gflops(Precision::F32, 512, 512, 512),
              flops / t / 1e9, 1e-9);
}

TEST(GpuModel, BatchedKernelAmortisesLaunch) {
  const GpuModel gpu = test_gpu();
  const int s = 16, batch = 64;
  const double individually =
      batch * gpu.gemm_kernel_time(Precision::F32, s, s, s);
  const double batched =
      gpu.gemm_batched_kernel_time(Precision::F32, s, s, s, batch);
  EXPECT_LT(batched, individually / 4);
  // batch == 1 degenerates to the plain kernel.
  EXPECT_DOUBLE_EQ(gpu.gemm_batched_kernel_time(Precision::F32, s, s, s, 1),
                   gpu.gemm_kernel_time(Precision::F32, s, s, s));
}

TEST(GpuModel, BatchedKernelIsMonotoneInBatch) {
  const GpuModel gpu = test_gpu();
  double prev = 0.0;
  for (double batch = 1; batch <= 4096; batch *= 4) {
    const double t =
        gpu.gemm_batched_kernel_time(Precision::F64, 32, 32, 32, batch);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(CpuModel, BatchedCallAmortisesForkJoin) {
  CpuModel cpu = test_cpu();
  cpu.fork_join_overhead_s = 3.0e-5;
  const int s = 16, batch = 64;
  // Individual calls with the all-threads policy pay fork/join each time.
  const double individually = batch * cpu.gemm_time(Precision::F32, s, s, s);
  const double batched =
      cpu.gemm_batched_time(Precision::F32, s, s, s, batch);
  EXPECT_LT(batched, individually);
  EXPECT_DOUBLE_EQ(cpu.gemm_batched_time(Precision::F32, s, s, s, 1),
                   cpu.gemm_time(Precision::F32, s, s, s));
}

// ------------------------------------------------------------ link model

TEST(LinkModel, TransferTimeIsLatencyPlusBandwidth) {
  LinkModel link;
  link.latency_s = 1e-5;
  link.h2d_bw_gbs = 10.0;
  EXPECT_NEAR(link.h2d_time(1e9, true), 1e-5 + 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(link.h2d_time(0.0, true), 0.0);
}

TEST(LinkModel, PinnedIsFaster) {
  LinkModel link;
  EXPECT_LT(link.h2d_time(1e8, true), link.h2d_time(1e8, false));
  EXPECT_LT(link.d2h_time(1e8, true), link.d2h_time(1e8, false));
}

TEST(LinkModel, UsmFirstTouchChargesPerPage) {
  LinkModel link;
  link.page_bytes = 4096;
  link.page_fault_latency_s = 1e-6;
  link.migration_bw_gbs = 10.0;
  const double one_page = link.usm_first_touch_time(100.0);
  const double ten_pages = link.usm_first_touch_time(10 * 4096.0);
  EXPECT_GT(ten_pages, one_page);
  EXPECT_NEAR(one_page, 1e-6 + 100.0 / 10e9, 1e-12);
}

TEST(LinkModel, XnackOffUsesRemotePath) {
  LinkModel link;
  link.xnack = false;
  link.h2d_bw_gbs = 40.0;
  link.remote_access_penalty = 40.0;
  // 1 GB at 1 GB/s effective = 1 s.
  EXPECT_NEAR(link.usm_first_touch_time(1e9), 1.0, 1e-9);
  EXPECT_NEAR(link.usm_remote_access_time(1e9), 1.0, 1e-9);
}

TEST(LinkModel, XnackOffIsMuchSlowerThanMigration) {
  LinkModel on;
  LinkModel off = on;
  off.xnack = false;
  const double bytes = 64.0 * 1048576.0;
  EXPECT_GT(off.usm_first_touch_time(bytes) /
                on.usm_first_touch_time(bytes),
            5.0);
}

// ----------------------------------------------------------------- noise

TEST(Noise, ZeroSigmaIsExactlyOne) {
  const NoiseModel noise(0.0);
  EXPECT_DOUBLE_EQ(
      noise.factor("dawn", "cpu", Precision::F32, 10, 10, 10, 1), 1.0);
}

TEST(Noise, DeterministicPerIdentity) {
  const NoiseModel a(0.05, 123);
  const NoiseModel b(0.05, 123);
  EXPECT_DOUBLE_EQ(a.factor("dawn", "cpu", Precision::F32, 10, 20, 30, 8),
                   b.factor("dawn", "cpu", Precision::F32, 10, 20, 30, 8));
}

TEST(Noise, DifferentIdentitiesDiffer) {
  const NoiseModel noise(0.05, 123);
  const double base =
      noise.factor("dawn", "cpu", Precision::F32, 10, 20, 30, 8);
  EXPECT_NE(base, noise.factor("lumi", "cpu", Precision::F32, 10, 20, 30, 8));
  EXPECT_NE(base, noise.factor("dawn", "gpu", Precision::F32, 10, 20, 30, 8));
  EXPECT_NE(base, noise.factor("dawn", "cpu", Precision::F64, 10, 20, 30, 8));
  EXPECT_NE(base, noise.factor("dawn", "cpu", Precision::F32, 11, 20, 30, 8));
}

TEST(Noise, FactorsArePositiveAndCentered) {
  const NoiseModel noise(0.1, 7);
  double log_sum = 0.0;
  const int kSamples = 2000;
  for (int i = 0; i < kSamples; ++i) {
    const double f =
        noise.factor("sys", "cpu", Precision::F32, i, i + 1, i + 2, 1);
    ASSERT_GT(f, 0.0);
    log_sum += std::log(f);
  }
  EXPECT_NEAR(log_sum / kSamples, 0.0, 0.01);
}

}  // namespace
