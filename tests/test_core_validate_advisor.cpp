// Checksum validation (CPU vs simulated GPU) and the offload advisor.

#include <gtest/gtest.h>

#include "core/advisor.hpp"
#include "core/energy.hpp"
#include "core/sim_backend.hpp"
#include "core/validate.hpp"
#include "sysprofile/profile.hpp"

namespace {

using namespace blob;
using namespace blob::core;

sim::SimGpu make_gpu(bool functional = true) {
  const auto prof = profile::dawn();
  return sim::SimGpu(sim::SimGpu::Config{prof.gpu, prof.link, functional,
                                         4096.0});
}

Problem make_problem(KernelOp op, std::int64_t s, model::Precision p,
                     bool beta_zero = true) {
  Problem problem;
  problem.op = op;
  problem.precision = p;
  problem.dims = op == KernelOp::Gemm ? Dims{s, s, s} : Dims{s, s, 1};
  problem.beta_zero = beta_zero;
  return problem;
}

class ValidateSizes : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ValidateSizes, GemmChecksumsAgreeAcrossDevices) {
  blas::CpuBlasLibrary cpu(blas::generic_personality(), 2);
  auto gpu = make_gpu();
  for (auto precision : {model::Precision::F32, model::Precision::F64}) {
    const auto result = validate_problem(
        make_problem(KernelOp::Gemm, GetParam(), precision), cpu, gpu);
    EXPECT_TRUE(result.passed) << result.detail;
    EXPECT_LE(result.relative_error, kChecksumTolerance);
  }
}

TEST_P(ValidateSizes, GemvChecksumsAgreeAcrossDevices) {
  blas::CpuBlasLibrary cpu(blas::generic_personality(), 2);
  auto gpu = make_gpu();
  const auto result = validate_problem(
      make_problem(KernelOp::Gemv, GetParam(), model::Precision::F64), cpu,
      gpu);
  EXPECT_TRUE(result.passed) << result.detail;
}

INSTANTIATE_TEST_SUITE_P(Sizes, ValidateSizes,
                         ::testing::Values(1, 2, 7, 33, 64, 129));

TEST(Validate, BetaNonZeroAlsoValidates) {
  blas::CpuBlasLibrary cpu(blas::generic_personality(), 2);
  auto gpu = make_gpu();
  const auto result = validate_problem(
      make_problem(KernelOp::Gemm, 31, model::Precision::F64, false), cpu,
      gpu);
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(Validate, DetectsWrongGpuResults) {
  // A timing-only device produces zero output: the checksum must differ.
  blas::CpuBlasLibrary cpu(blas::generic_personality(), 2);
  auto gpu = make_gpu(/*functional=*/false);
  const auto result = validate_problem(
      make_problem(KernelOp::Gemm, 24, model::Precision::F32), cpu, gpu);
  EXPECT_FALSE(result.passed);
  EXPECT_EQ(result.gpu_checksum, 0.0);
}

TEST(Validate, UnsupportedPrecisionReportsFailure) {
  blas::CpuBlasLibrary cpu(blas::generic_personality(), 1);
  auto gpu = make_gpu();
  const auto result = validate_problem(
      make_problem(KernelOp::Gemm, 8, model::Precision::F16), cpu, gpu);
  EXPECT_FALSE(result.passed);
  EXPECT_NE(result.detail.find("unsupported"), std::string::npos);
}

TEST(Validate, ChecksumHelper) {
  const double data[] = {1.0, 2.0, 3.5};
  EXPECT_DOUBLE_EQ(checksum(data, 3), 6.5);
  EXPECT_DOUBLE_EQ(checksum(data, 0), 0.0);
}

// --------------------------------------------------------------- advisor

TEST(Advisor, RecommendsGpuForLargeSquareGemm) {
  SimBackend backend(profile::isambard_ai(), 0.0);
  OffloadAdvisor advisor(backend);
  const auto advice = advisor.advise(
      make_problem(KernelOp::Gemm, 2048, model::Precision::F32), 16,
      TransferMode::Once);
  EXPECT_TRUE(advice.offload);
  EXPECT_GT(advice.speedup, 1.0);
  EXPECT_NE(advice.rationale.find("offload to GPU"), std::string::npos);
}

TEST(Advisor, RecommendsCpuForTinyGemv) {
  SimBackend backend(profile::dawn(), 0.0);
  OffloadAdvisor advisor(backend);
  const auto advice = advisor.advise(
      make_problem(KernelOp::Gemv, 64, model::Precision::F64), 1,
      TransferMode::Always);
  EXPECT_FALSE(advice.offload);
  EXPECT_LE(advice.speedup, 1.0);
  EXPECT_NE(advice.rationale.find("stay on CPU"), std::string::npos);
}

TEST(Advisor, BestModePicksFastestTransfer) {
  SimBackend backend(profile::dawn(), 0.0);
  OffloadAdvisor advisor(backend);
  const auto problem = make_problem(KernelOp::Gemm, 1024,
                                    model::Precision::F32);
  const auto best = advisor.advise_best_mode(problem, 32);
  for (TransferMode mode : kTransferModes) {
    EXPECT_LE(best.gpu_seconds,
              advisor.advise(problem, 32, mode).gpu_seconds + 1e-15);
  }
  // With 32 iterations of data re-use, Transfer-Always cannot be best.
  EXPECT_NE(best.mode, TransferMode::Always);
}

TEST(Advisor, SpeedupMatchesTimeRatio) {
  SimBackend backend(profile::lumi(), 0.0);
  OffloadAdvisor advisor(backend);
  const auto problem = make_problem(KernelOp::Gemm, 512,
                                    model::Precision::F64);
  const auto advice = advisor.advise(problem, 8, TransferMode::Once);
  EXPECT_NEAR(advice.speedup, advice.cpu_seconds / advice.gpu_seconds,
              1e-12);
  EXPECT_NEAR(advisor.predicted_speedup(problem, 8, TransferMode::Once),
              advice.speedup, 1e-12);
}

// --------------------------------------------------------------- energy

TEST(Energy, EstimatesArePositiveAndConsistent) {
  const auto prof = profile::dawn();
  const auto e = estimate_energy(
      prof, make_problem(KernelOp::Gemm, 512, model::Precision::F32), 8,
      TransferMode::Once);
  EXPECT_GT(e.cpu_joules, 0.0);
  EXPECT_GT(e.gpu_joules, 0.0);
  EXPECT_GT(e.cpu_seconds, 0.0);
  EXPECT_GT(e.gpu_seconds, 0.0);
  // Energy is bounded by power envelope x time.
  EXPECT_LE(e.cpu_joules, e.cpu_seconds * prof.cpu.tdp_w * 1.001);
  EXPECT_LE(e.gpu_joules,
            e.gpu_seconds * (prof.gpu.board_power_w + prof.cpu.idle_w) *
                1.001);
}

TEST(Energy, LargeGemmIsMoreEfficientOnGpu) {
  // At scale the GPU's perf/W advantage dominates on every system.
  for (const char* system : {"dawn", "lumi", "isambard-ai"}) {
    const auto e = estimate_energy(
        profile::by_name(system),
        make_problem(KernelOp::Gemm, 4096, model::Precision::F32), 32,
        TransferMode::Once);
    EXPECT_TRUE(e.gpu_more_efficient()) << system;
  }
}

TEST(Advisor, TimeAndEnergyVerdicts) {
  // Big re-used GEMM: both agree on offload.
  const auto big = OffloadAdvisor::advise_time_and_energy(
      profile::dawn(), make_problem(KernelOp::Gemm, 2048,
                                    model::Precision::F32),
      32, TransferMode::Once);
  EXPECT_EQ(big.verdict, "offload");
  // Tiny GEMM: both agree on staying.
  const auto tiny = OffloadAdvisor::advise_time_and_energy(
      profile::dawn(), make_problem(KernelOp::Gemm, 16,
                                    model::Precision::F32),
      1, TransferMode::Once);
  EXPECT_EQ(tiny.verdict, "stay");
  // Small-but-fast on the GH200: time says offload, energy disagrees
  // (the high-board-power band found by ext_energy_threshold).
  const auto band = OffloadAdvisor::advise_time_and_energy(
      profile::isambard_ai(), make_problem(KernelOp::Gemm, 128,
                                           model::Precision::F32),
      32, TransferMode::Once);
  EXPECT_EQ(band.verdict, "trade-off");
  EXPECT_TRUE(band.time.offload);
  EXPECT_FALSE(band.energy.gpu_more_efficient());
}

TEST(Energy, TinyGemmIsMoreEfficientOnCpu) {
  const auto e = estimate_energy(
      profile::isambard_ai(),
      make_problem(KernelOp::Gemm, 8, model::Precision::F32), 1,
      TransferMode::Once);
  EXPECT_FALSE(e.gpu_more_efficient());
}

class NoGpuBackend final : public ExecutionBackend {
 public:
  std::string name() const override { return "cpu-only"; }
  using ExecutionBackend::cpu_time;
  using ExecutionBackend::gpu_time;
  double cpu_time(const OpDesc&, std::int64_t) override { return 1.0; }
  std::optional<double> gpu_time(const OpDesc&, std::int64_t) override {
    return std::nullopt;
  }
};

TEST(Advisor, HandlesGpulessBackends) {
  NoGpuBackend backend;
  OffloadAdvisor advisor(backend);
  const auto advice = advisor.advise(
      make_problem(KernelOp::Gemm, 128, model::Precision::F32), 1,
      TransferMode::Once);
  EXPECT_FALSE(advice.offload);
  EXPECT_NE(advice.rationale.find("no GPU"), std::string::npos);
}

}  // namespace
