// Level 1 BLAS: optimized kernels vs the reference implementation plus
// algebraic properties, across precisions, sizes, and strides.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "blas/level1.hpp"
#include "blas/ref_blas.hpp"
#include "blas_test_util.hpp"

namespace {

using namespace blob;
using blob::test::random_vector;

using Types = ::testing::Types<float, double>;

template <typename T>
class Level1Typed : public ::testing::Test {};
TYPED_TEST_SUITE(Level1Typed, Types);

TYPED_TEST(Level1Typed, AxpyMatchesReference) {
  using T = TypeParam;
  for (int n : {0, 1, 3, 64, 1000}) {
    auto x = random_vector<T>(static_cast<std::size_t>(std::max(1, n)), 1);
    auto y_opt = random_vector<T>(x.size(), 2);
    auto y_ref = y_opt;
    blas::axpy(n, T(1.5), x.data(), 1, y_opt.data(), 1);
    blas::ref::axpy(n, T(1.5), x.data(), 1, y_ref.data(), 1);
    test::expect_near_rel(y_opt, y_ref, 1e-12);
  }
}

TYPED_TEST(Level1Typed, AxpyAlphaZeroIsNoop) {
  using T = TypeParam;
  auto x = random_vector<T>(50, 3);
  auto y = random_vector<T>(50, 4);
  const auto before = y;
  blas::axpy(50, T(0), x.data(), 1, y.data(), 1);
  EXPECT_EQ(y, before);
}

TYPED_TEST(Level1Typed, DotMatchesReferenceStridedAndUnit) {
  using T = TypeParam;
  const int n = 257;
  auto x = random_vector<T>(3 * n, 5);
  auto y = random_vector<T>(3 * n, 6);
  const double tol = std::is_same_v<T, float> ? 1e-4 : 1e-12;
  EXPECT_NEAR(static_cast<double>(blas::dot(n, x.data(), 1, y.data(), 1)),
              static_cast<double>(blas::ref::dot(n, x.data(), 1, y.data(), 1)),
              tol);
  EXPECT_NEAR(static_cast<double>(blas::dot(n, x.data(), 3, y.data(), 2)),
              static_cast<double>(blas::ref::dot(n, x.data(), 3, y.data(), 2)),
              tol);
}

TYPED_TEST(Level1Typed, DotIsSymmetric) {
  using T = TypeParam;
  auto x = random_vector<T>(100, 7);
  auto y = random_vector<T>(100, 8);
  EXPECT_EQ(blas::dot(100, x.data(), 1, y.data(), 1),
            blas::dot(100, y.data(), 1, x.data(), 1));
}

TYPED_TEST(Level1Typed, Nrm2MatchesHandComputed) {
  using T = TypeParam;
  std::vector<T> x = {T(3), T(4)};
  EXPECT_NEAR(static_cast<double>(blas::nrm2(2, x.data(), 1)), 5.0, 1e-6);
  // Scaled algorithm avoids overflow for large values.
  std::vector<T> big = {T(3e18), T(4e18)};
  if constexpr (std::is_same_v<T, double>) {
    EXPECT_NEAR(blas::nrm2(2, big.data(), 1), 5e18, 1e4);
  }
}

TYPED_TEST(Level1Typed, AsumSumsAbsoluteValues) {
  using T = TypeParam;
  std::vector<T> x = {T(-1), T(2), T(-3)};
  EXPECT_NEAR(static_cast<double>(blas::asum(3, x.data(), 1)), 6.0, 1e-6);
  EXPECT_EQ(blas::asum(0, x.data(), 1), T(0));
}

TYPED_TEST(Level1Typed, IamaxFindsFirstMaximum) {
  using T = TypeParam;
  std::vector<T> x = {T(1), T(-7), T(7), T(2)};
  EXPECT_EQ(blas::iamax(4, x.data(), 1), 1);  // first occurrence wins
  EXPECT_EQ(blas::iamax(0, x.data(), 1), -1);
}

TYPED_TEST(Level1Typed, CopyAndSwap) {
  using T = TypeParam;
  auto x = random_vector<T>(128, 9);
  std::vector<T> y(128, T(0));
  blas::copy(128, x.data(), 1, y.data(), 1);
  EXPECT_EQ(x, y);

  auto a = random_vector<T>(64, 10);
  auto b = random_vector<T>(64, 11);
  const auto a0 = a;
  const auto b0 = b;
  blas::swap(64, a.data(), 1, b.data(), 1);
  EXPECT_EQ(a, b0);
  EXPECT_EQ(b, a0);
}

TYPED_TEST(Level1Typed, ScalScalesInPlace) {
  using T = TypeParam;
  auto x = random_vector<T>(100, 12);
  auto expected = x;
  for (auto& v : expected) v *= T(2.5);
  blas::scal(100, T(2.5), x.data(), 1);
  test::expect_near_rel(x, expected, 1e-12);
}

TYPED_TEST(Level1Typed, RotgAnnihilatesSecondComponent) {
  using T = TypeParam;
  for (auto [a0, b0] : {std::pair<T, T>{3, 4}, {-3, 4}, {4, 3}, {0, 5},
                        {5, 0}, {-1, -1}}) {
    T a = a0, b = b0, c = 0, s = 0;
    blas::rotg(a, b, c, s);
    // (c, s) must be a proper rotation...
    EXPECT_NEAR(static_cast<double>(c * c + s * s), 1.0, 1e-6);
    // ...that maps (a0, b0) to (r, 0).
    const double r = static_cast<double>(c) * static_cast<double>(a0) +
                     static_cast<double>(s) * static_cast<double>(b0);
    const double zero = static_cast<double>(c) * static_cast<double>(b0) -
                        static_cast<double>(s) * static_cast<double>(a0);
    EXPECT_NEAR(r, static_cast<double>(a), 1e-5 * (1.0 + std::abs(r)));
    EXPECT_NEAR(zero, 0.0, 1e-5);
  }
  // Degenerate input: both zero -> identity rotation.
  T a = 0, b = 0, c = -7, s = -7;
  blas::rotg(a, b, c, s);
  EXPECT_EQ(c, T(1));
  EXPECT_EQ(s, T(0));
}

TYPED_TEST(Level1Typed, RotPreservesNorms) {
  using T = TypeParam;
  const int n = 100;
  auto x = random_vector<T>(n, 40);
  auto y = random_vector<T>(n, 41);
  const double norm_before =
      static_cast<double>(blas::dot(n, x.data(), 1, x.data(), 1)) +
      static_cast<double>(blas::dot(n, y.data(), 1, y.data(), 1));
  T a = T(3), b = T(4), c = 0, s = 0;
  blas::rotg(a, b, c, s);
  blas::rot(n, x.data(), 1, y.data(), 1, c, s);
  const double norm_after =
      static_cast<double>(blas::dot(n, x.data(), 1, x.data(), 1)) +
      static_cast<double>(blas::dot(n, y.data(), 1, y.data(), 1));
  EXPECT_NEAR(norm_after, norm_before, 1e-3 * (1.0 + norm_before));
}

TYPED_TEST(Level1Typed, RotInverseRestores) {
  using T = TypeParam;
  const int n = 64;
  auto x = random_vector<T>(n, 42);
  auto y = random_vector<T>(n, 43);
  const auto x0 = x;
  const auto y0 = y;
  const T c = T(0.6), s = T(0.8);
  blas::rot(n, x.data(), 1, y.data(), 1, c, s);
  blas::rot(n, x.data(), 1, y.data(), 1, c, T(-0.8));
  const double tol = std::is_same_v<T, float> ? 1e-5 : 1e-14;
  test::expect_near_rel(x, x0, tol);
  test::expect_near_rel(y, y0, tol);
}

// Property sweep: axpy linearity over many sizes.
class AxpyLinearity : public ::testing::TestWithParam<int> {};

TEST_P(AxpyLinearity, AxpyTwiceEqualsAxpySum) {
  const int n = GetParam();
  auto x = random_vector<double>(static_cast<std::size_t>(n), 13);
  auto y1 = random_vector<double>(static_cast<std::size_t>(n), 14);
  auto y2 = y1;
  blas::axpy(n, 1.25, x.data(), 1, y1.data(), 1);
  blas::axpy(n, 0.75, x.data(), 1, y1.data(), 1);
  blas::axpy(n, 2.0, x.data(), 1, y2.data(), 1);
  test::expect_near_rel(y1, y2, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, AxpyLinearity,
                         ::testing::Values(1, 2, 7, 32, 100, 1023));

}  // namespace
