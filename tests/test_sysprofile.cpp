// System profiles: registry integrity and the hardware/library invariants
// each profile must encode (paper Table II and §IV).

#include <gtest/gtest.h>

#include <set>

#include "sysprofile/profile.hpp"

namespace {

using namespace blob;
using namespace blob::profile;

TEST(Profiles, RegistryIsCompleteAndUnique) {
  const auto names = profile_names();
  EXPECT_GE(names.size(), 8u);
  std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
  for (const auto& name : names) {
    const auto p = by_name(name);
    EXPECT_EQ(p.name, name);
    EXPECT_FALSE(p.description.empty());
  }
  EXPECT_THROW(by_name("bogus-system"), std::invalid_argument);
}

TEST(Profiles, SocketPeaksMatchPaperFlopsPerCycle) {
  // DAWN: 1,536 FP64 FLOPs/cycle; LUMI: 896; Grace: 1,152 (§IV-A).
  EXPECT_DOUBLE_EQ(dawn().cpu.cores * dawn().cpu.fp64_flops_per_cycle_per_core,
                   1536.0);
  EXPECT_DOUBLE_EQ(lumi().cpu.cores * lumi().cpu.fp64_flops_per_cycle_per_core,
                   896.0);
  EXPECT_DOUBLE_EQ(isambard_ai().cpu.cores *
                       isambard_ai().cpu.fp64_flops_per_cycle_per_core,
                   1152.0);
}

TEST(Profiles, DawnCpuIsStrongestSocket) {
  const double dawn_peak = dawn().cpu.peak_gflops(model::Precision::F64,
                                                  dawn().cpu.cores);
  const double lumi_peak = lumi().cpu.peak_gflops(model::Precision::F64,
                                                  lumi().cpu.cores);
  EXPECT_GT(dawn_peak, lumi_peak);
}

TEST(Profiles, IsambardLinkIsFarFasterThanPcie) {
  EXPECT_GT(isambard_ai().link.h2d_bw_gbs, 5 * dawn().link.h2d_bw_gbs);
  EXPECT_LT(isambard_ai().link.latency_s, dawn().link.latency_s);
}

TEST(Profiles, LumiGemvIsSerial) {
  EXPECT_FALSE(lumi().cpu.gemv_parallel);           // AOCL finding
  EXPECT_TRUE(lumi_openblas().cpu.gemv_parallel);   // Fig. 6 fix
  EXPECT_TRUE(dawn().cpu.gemv_parallel);
  EXPECT_TRUE(isambard_ai().cpu.gemv_parallel);
}

TEST(Profiles, XnackVariantDisablesMigration) {
  EXPECT_TRUE(lumi().link.xnack);
  EXPECT_FALSE(lumi_xnack_off().link.xnack);
}

TEST(Profiles, ImplicitScalingHasMoreComputeLessStability) {
  const auto exp_scaling = dawn();
  const auto imp = dawn_implicit_scaling();
  EXPECT_DOUBLE_EQ(imp.gpu.peak_gflops_f32, 2 * exp_scaling.gpu.peak_gflops_f32);
  EXPECT_GT(imp.noise_sigma, 3 * exp_scaling.noise_sigma);
  // ...but worse achieved SGEMM at realistic sizes (Fig. 7).
  EXPECT_LT(imp.gpu.gemm_gflops(model::Precision::F32, 2048, 2048, 2048),
            exp_scaling.gpu.gemm_gflops(model::Precision::F32, 2048, 2048,
                                        2048));
}

TEST(Profiles, IsambardVariantsChangeOnlyThreadPolicy) {
  const auto nvpl = isambard_ai();
  const auto armpl = isambard_ai_armpl();
  const auto one_thread = isambard_ai_nvpl_1t();
  EXPECT_EQ(nvpl.cpu.gemm_thread_policy.kind,
            parallel::ThreadPolicyKind::AllThreads);
  EXPECT_EQ(armpl.cpu.gemm_thread_policy.kind,
            parallel::ThreadPolicyKind::ScaleWithProblem);
  EXPECT_EQ(one_thread.cpu.gemm_thread_policy.kind,
            parallel::ThreadPolicyKind::SingleThread);
  EXPECT_DOUBLE_EQ(nvpl.gpu.peak_gflops_f64, armpl.gpu.peak_gflops_f64);
}

TEST(Profiles, Fig3SmallSizeOrdering) {
  // At small sizes ArmPL-like and 1-thread NVPL beat 72-thread NVPL.
  const auto nvpl = isambard_ai().cpu;
  const auto armpl = isambard_ai_armpl().cpu;
  const auto one = isambard_ai_nvpl_1t().cpu;
  const double s = 48;
  EXPECT_LT(armpl.gemm_time(model::Precision::F32, s, s, s),
            nvpl.gemm_time(model::Precision::F32, s, s, s));
  EXPECT_LT(one.gemm_time(model::Precision::F32, s, s, s),
            nvpl.gemm_time(model::Precision::F32, s, s, s));
  // At large sizes full NVPL wins.
  const double big = 2048;
  EXPECT_LT(nvpl.gemm_time(model::Precision::F32, big, big, big),
            one.gemm_time(model::Precision::F32, big, big, big));
}

TEST(Profiles, DawnCpuDropAt629) {
  // Fig. 2's CPU drop: achieved GFLOP/s at 640 is well below 620's.
  const auto cpu = dawn().cpu;
  const double before = cpu.gemm_gflops(model::Precision::F32, 620, 620, 620);
  const double after = cpu.gemm_gflops(model::Precision::F32, 640, 640, 640);
  EXPECT_LT(after, 0.7 * before);
}

TEST(Profiles, DawnDgemvDropIsF64Only) {
  const auto cpu = dawn().cpu;
  const double f64_before =
      cpu.gemv_gflops(model::Precision::F64, 2800, 2800);
  const double f64_after = cpu.gemv_gflops(model::Precision::F64, 3600, 3600);
  EXPECT_LT(f64_after, f64_before);
  const double f32_before =
      cpu.gemv_gflops(model::Precision::F32, 2800, 2800);
  const double f32_after = cpu.gemv_gflops(model::Precision::F32, 3600, 3600);
  EXPECT_GE(f32_after, 0.99 * f32_before);
}

TEST(Profiles, GpuPeaksAreOrdered) {
  // H100-class > MI250X GCD and PVC tile for fp64 throughput.
  EXPECT_GT(isambard_ai().gpu.peak_gflops_f64, dawn().gpu.peak_gflops_f64);
  EXPECT_GT(isambard_ai().gpu.hbm_bw_gbs, lumi().gpu.hbm_bw_gbs);
}

}  // namespace
