// Serve-layer routing properties: the router is a pure function of
// (descriptor, fleet load) — identical profiles under zero load are
// deterministic, ties break toward the shallower queue then the lower
// device id, load steers traffic away, and heterogeneous profiles win
// on modelled cost. The fleet-level anchors: a 1-device fleet is
// bit-identical to a lone Dispatcher fed the same calls, and shedding
// touches ONLY past-deadline requests (BestEffort never sheds).

#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <memory>
#include <vector>

#include "dispatch/dispatcher.hpp"
#include "serve/fleet.hpp"
#include "serve/metrics.hpp"
#include "serve/request.hpp"
#include "serve/router.hpp"
#include "sysprofile/profile.hpp"

namespace {

using namespace blob;
using dispatch::Dispatcher;
using dispatch::DispatcherConfig;
using serve::DeviceFleet;
using serve::DeviceView;
using serve::FleetConfig;
using serve::Outcome;
using serve::RequestClass;
using serve::RouteChoice;
using serve::Router;
using serve::ServeResult;

DispatcherConfig quiet_config(profile::SystemProfile profile) {
  DispatcherConfig config;
  config.profile = std::move(profile);
  config.cpu_threads = 2;
  return config;
}

core::OpDesc gemm_desc(int m, int n, int k) {
  return core::OpDesc::gemm(model::Precision::F32, blas::Transpose::No,
                            blas::Transpose::No, m, n, k, 0, 0, 0,
                            /*alpha_one=*/true, /*beta_zero=*/true);
}

TEST(ServeRouter, IdenticalProfilesZeroLoadIsDeterministicDeviceZero) {
  Dispatcher d0(quiet_config(profile::dawn()));
  Dispatcher d1(quiet_config(profile::dawn()));
  std::vector<DeviceView> views{{&d0, 0.0, 0}, {&d1, 0.0, 0}};
  const Router router;
  const core::OpDesc desc = gemm_desc(256, 256, 256);
  const RouteChoice first = router.choose(desc, views);
  EXPECT_EQ(first.device, 0);  // tie -> lowest device id
  EXPECT_DOUBLE_EQ(first.est_s, first.oracle_s);
  for (int i = 0; i < 16; ++i) {
    const RouteChoice again = router.choose(desc, views);
    EXPECT_EQ(again.device, first.device);
    EXPECT_DOUBLE_EQ(again.est_s, first.est_s);
    EXPECT_DOUBLE_EQ(again.score, first.score);
  }
}

TEST(ServeRouter, TieBreaksTowardShallowerQueue) {
  Dispatcher d0(quiet_config(profile::dawn()));
  Dispatcher d1(quiet_config(profile::dawn()));
  // Equal modelled cost and equal outstanding work: depth decides.
  std::vector<DeviceView> views{{&d0, 0.0, 5}, {&d1, 0.0, 2}};
  const RouteChoice choice = Router{}.choose(gemm_desc(128, 128, 128), views);
  EXPECT_EQ(choice.device, 1);
}

TEST(ServeRouter, OutstandingWorkSteersAway) {
  Dispatcher d0(quiet_config(profile::dawn()));
  Dispatcher d1(quiet_config(profile::dawn()));
  std::vector<DeviceView> views{{&d0, 1.0, 0}, {&d1, 0.0, 0}};
  const RouteChoice choice = Router{}.choose(gemm_desc(128, 128, 128), views);
  EXPECT_EQ(choice.device, 1);
  // The oracle ignores load: it is still the fleet-wide cheapest cost.
  EXPECT_DOUBLE_EQ(choice.oracle_s, choice.est_s);
}

TEST(ServeRouter, HeterogeneousProfilesPickTheModelledCheaperDevice) {
  Dispatcher dawn(quiet_config(profile::dawn()));
  Dispatcher lumi(quiet_config(profile::lumi()));
  std::vector<DeviceView> views{{&dawn, 0.0, 0}, {&lumi, 0.0, 0}};
  const core::OpDesc desc = gemm_desc(768, 768, 768);
  const auto cost = [&](const Dispatcher& d) {
    const Dispatcher::Costs c = d.modelled_costs(desc);
    return std::min(c.cpu_s, c.gpu_s);
  };
  const double dawn_s = cost(dawn);
  const double lumi_s = cost(lumi);
  ASSERT_NE(dawn_s, lumi_s);  // the profiles genuinely disagree
  const RouteChoice choice = Router{}.choose(desc, views);
  EXPECT_EQ(choice.device, dawn_s < lumi_s ? 0 : 1);
  EXPECT_DOUBLE_EQ(choice.est_s, std::min(dawn_s, lumi_s));
  EXPECT_DOUBLE_EQ(choice.oracle_s, std::min(dawn_s, lumi_s));
}

TEST(ServeMetrics, HistogramQuantileInterpolatesWithinBuckets) {
  obs::Histogram hist;
  EXPECT_DOUBLE_EQ(serve::histogram_quantile(hist, 0.5), 0.0);  // empty
  for (std::uint64_t v = 1; v <= 100; ++v) hist.record(v);
  const double p50 = serve::histogram_quantile(hist, 0.50);
  const double p99 = serve::histogram_quantile(hist, 0.99);
  // Log2 buckets bound the estimate to the enclosing power-of-two span.
  EXPECT_GE(p50, 32.0);
  EXPECT_LE(p50, 64.0);
  EXPECT_GE(p99, 64.0);
  EXPECT_LE(p99, 128.0);
  EXPECT_LE(serve::histogram_quantile(hist, 0.0), 2.0);
  EXPECT_GE(serve::histogram_quantile(hist, 1.0), 64.0);
  EXPECT_LE(p50, p99);  // monotone in q
}

// -- fleet-level properties --------------------------------------------------

struct Arena {
  std::vector<float> af, bf, cf, xf, yf;
  std::vector<double> ad, bd, cd, xd, yd;
};

// Deterministic operand fill (same stream both runs).
void fill(Arena& arena) {
  std::uint64_t state = 0x2545f4914f6cdd1dull;
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<double>(state % 2000) / 1000.0 - 1.0;
  };
  arena.af.resize(64 * 64);
  arena.bf.resize(64 * 64);
  arena.cf.resize(64 * 64);
  arena.ad.resize(96 * 96);
  arena.bd.resize(96 * 96);
  arena.cd.resize(96 * 96);
  arena.xf.resize(320);
  arena.yf.resize(320);
  arena.xd.resize(384);
  arena.yd.resize(384);
  for (auto& v : arena.af) v = static_cast<float>(next());
  for (auto& v : arena.bf) v = static_cast<float>(next());
  for (auto& v : arena.ad) v = next();
  for (auto& v : arena.bd) v = next();
  for (auto& v : arena.xf) v = static_cast<float>(next());
  for (auto& v : arena.xd) v = next();
}

constexpr int kFleetCalls = 200;

// Drive one run of the mixed sequence. `gemm_f32 / gemm_f64 / gemv_f32 /
// gemv_f64` are callbacks so the same loop serves both the fleet and the
// lone dispatcher.
template <typename GemmF, typename GemmD, typename GemvF, typename GemvD>
void drive_sequence(Arena& arena, GemmF&& gemm_f32, GemmD&& gemm_f64,
                    GemvF&& gemv_f32, GemvD&& gemv_f64) {
  std::vector<float> gemv_a_f(320 * 320);
  std::vector<double> gemv_a_d(384 * 384);
  for (std::size_t i = 0; i < gemv_a_f.size(); ++i) {
    gemv_a_f[i] = static_cast<float>((i % 17)) * 0.25f - 2.0f;
  }
  for (std::size_t i = 0; i < gemv_a_d.size(); ++i) {
    gemv_a_d[i] = static_cast<double>(i % 23) * 0.125 - 1.5;
  }
  for (int i = 0; i < kFleetCalls; ++i) {
    switch (i % 4) {
      case 0:
        gemm_f32(64, arena.af.data(), arena.bf.data(), arena.cf.data());
        break;
      case 1:
        gemm_f64(96, arena.ad.data(), arena.bd.data(), arena.cd.data());
        break;
      case 2:
        gemv_f32(320, gemv_a_f.data(), arena.xf.data(), arena.yf.data());
        break;
      case 3:
        gemv_f64(384, gemv_a_d.data(), arena.xd.data(), arena.yd.data());
        break;
    }
  }
}

bool records_equal(const dispatch::TraceRecord& lhs,
                   const dispatch::TraceRecord& rhs) {
  return lhs.seq == rhs.seq && lhs.device == rhs.device && lhs.op == rhs.op &&
         lhs.precision == rhs.precision && lhs.mode == rhs.mode &&
         lhs.bucket == rhs.bucket && lhs.trans_a == rhs.trans_a &&
         lhs.trans_b == rhs.trans_b && lhs.m == rhs.m && lhs.n == rhs.n &&
         lhs.k == rhs.k && lhs.route == rhs.route &&
         lhs.reason == rhs.reason && lhs.cpu_est_s == rhs.cpu_est_s &&
         lhs.gpu_est_s == rhs.gpu_est_s && lhs.cost_s == rhs.cost_s &&
         lhs.observed_s == rhs.observed_s && lhs.batch == rhs.batch &&
         lhs.residency == rhs.residency &&
         lhs.h2d_moved_bytes == rhs.h2d_moved_bytes &&
         lhs.h2d_skipped_bytes == rhs.h2d_skipped_bytes;
  // span_id deliberately excluded: it ties records to ambient obs spans,
  // not to dispatch behaviour.
}

// The headline identity: a 1-device fleet fed a mixed sequence in FIFO
// order produces the exact trace (routes, costs, noisy observations) and
// the exact output bytes of a lone Dispatcher running the same calls.
TEST(ServeFleet, SingleDeviceFleetIsBitIdenticalToLoneDispatcher) {
  Arena fleet_arena;
  Arena plain_arena;
  fill(fleet_arena);
  fill(plain_arena);

  std::vector<dispatch::TraceRecord> fleet_trace;
  {
    FleetConfig config;
    config.devices = {profile::dawn()};
    config.base = quiet_config(profile::dawn());
    DeviceFleet fleet(config);
    // Sequential submit-and-wait keeps the comparison exact even though
    // the worker is asynchronous.
    drive_sequence(
        fleet_arena,
        [&](int s, const float* a, const float* b, float* c) {
          fleet
              .submit_gemm<float>(RequestClass::BestEffort,
                                  blas::Transpose::No, blas::Transpose::No, s,
                                  s, s, 1.0f, a, s, b, s, 0.0f, c, s)
              .get();
        },
        [&](int s, const double* a, const double* b, double* c) {
          fleet
              .submit_gemm<double>(RequestClass::BestEffort,
                                   blas::Transpose::No, blas::Transpose::No,
                                   s, s, s, 1.0, a, s, b, s, 0.0, c, s)
              .get();
        },
        [&](int n, const float* a, const float* x, float* y) {
          fleet
              .submit_gemv<float>(RequestClass::BestEffort,
                                  blas::Transpose::No, n, n, 1.0f, a, n, x, 1,
                                  0.0f, y, 1)
              .get();
        },
        [&](int n, const double* a, const double* x, double* y) {
          fleet
              .submit_gemv<double>(RequestClass::BestEffort,
                                   blas::Transpose::Yes, n, n, 1.0, a, n, x,
                                   1, 0.0, y, 1)
              .get();
        });
    fleet.flush();
    fleet_trace = fleet.device(0).trace().snapshot();
    EXPECT_EQ(fleet.stats().shed, 0u);  // BestEffort never sheds
  }

  Dispatcher plain(quiet_config(profile::dawn()));
  const auto mode = plain.effective_mode();
  drive_sequence(
      plain_arena,
      [&](int s, const float* a, const float* b, float* c) {
        const auto desc = core::OpDesc::gemm(
            model::Precision::F32, blas::Transpose::No, blas::Transpose::No,
            s, s, s, s, s, s, true, true, mode);
        plain.run_gemm<float, float>(desc, 1.0f, a, b, 0.0f, c);
      },
      [&](int s, const double* a, const double* b, double* c) {
        const auto desc = core::OpDesc::gemm(
            model::Precision::F64, blas::Transpose::No, blas::Transpose::No,
            s, s, s, s, s, s, true, true, mode);
        plain.run_gemm<double, double>(desc, 1.0, a, b, 0.0, c);
      },
      [&](int n, const float* a, const float* x, float* y) {
        const auto desc =
            core::OpDesc::gemv(model::Precision::F32, blas::Transpose::No, n,
                               n, n, 1, 1, true, true, mode);
        plain.run_gemv<float, float>(desc, 1.0f, a, x, 0.0f, y);
      },
      [&](int n, const double* a, const double* x, double* y) {
        const auto desc =
            core::OpDesc::gemv(model::Precision::F64, blas::Transpose::Yes, n,
                               n, n, 1, 1, true, true, mode);
        plain.run_gemv<double, double>(desc, 1.0, a, x, 0.0, y);
      });
  const std::vector<dispatch::TraceRecord> plain_trace =
      plain.trace().snapshot();

  ASSERT_EQ(fleet_trace.size(), plain_trace.size());
  for (std::size_t i = 0; i < fleet_trace.size(); ++i) {
    EXPECT_TRUE(records_equal(fleet_trace[i], plain_trace[i]))
        << "trace diverges at call " << i;
  }
  EXPECT_EQ(std::memcmp(fleet_arena.cf.data(), plain_arena.cf.data(),
                        fleet_arena.cf.size() * sizeof(float)),
            0);
  EXPECT_EQ(std::memcmp(fleet_arena.cd.data(), plain_arena.cd.data(),
                        fleet_arena.cd.size() * sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(fleet_arena.yf.data(), plain_arena.yf.data(),
                        fleet_arena.yf.size() * sizeof(float)),
            0);
  EXPECT_EQ(std::memcmp(fleet_arena.yd.data(), plain_arena.yd.data(),
                        fleet_arena.yd.size() * sizeof(double)),
            0);
}

TEST(ServeFleet, ZeroSloNeverSheds) {
  FleetConfig config;
  config.devices = {profile::dawn(), profile::lumi()};
  config.base = quiet_config(profile::dawn());
  config.slo.interactive_ms = 0.0;  // 0 disables the deadline
  config.slo.batch_ms = 0.0;
  DeviceFleet fleet(config);

  std::vector<float> a(48 * 48, 0.5f), b(48 * 48, 0.25f), c(48 * 48);
  std::vector<std::future<ServeResult>> pending;
  for (int i = 0; i < 60; ++i) {
    const RequestClass cls = i % 2 == 0 ? RequestClass::Interactive
                                        : RequestClass::Batch;
    pending.push_back(fleet.submit_gemm<float>(
        cls, blas::Transpose::No, blas::Transpose::No, 48, 48, 48, 1.0f,
        a.data(), 48, b.data(), 48, 0.0f, c.data(), 48));
  }
  fleet.flush();
  for (auto& f : pending) {
    EXPECT_EQ(f.get().outcome, Outcome::Completed);
  }
  EXPECT_EQ(fleet.stats().shed, 0u);
  EXPECT_EQ(fleet.stats().completed, 60u);
}

// Only past-deadline work is shed: with a 1 ns interactive SLO every
// interactive request is already late when the worker dequeues it, so
// all of them shed with their output buffers untouched — while the
// BestEffort traffic interleaved with them all completes.
TEST(ServeFleet, ShedsOnlyPastDeadlineAndNeverBestEffort) {
  FleetConfig config;
  config.devices = {profile::dawn()};
  config.base = quiet_config(profile::dawn());
  config.slo.interactive_ms = 1.0e-6;  // ~1 ns: late by dequeue time
  config.slo.batch_ms = 0.0;
  DeviceFleet fleet(config);

  std::vector<float> a(64 * 64, 0.5f), x(64, 0.25f);
  std::vector<float> y_interactive(64, 42.0f);  // sentinel: must survive
  std::vector<float> y_best(64, 0.0f);
  std::vector<std::future<ServeResult>> interactive;
  std::vector<std::future<ServeResult>> best_effort;
  for (int i = 0; i < 40; ++i) {
    interactive.push_back(fleet.submit_gemv<float>(
        RequestClass::Interactive, blas::Transpose::No, 64, 64, 1.0f,
        a.data(), 64, x.data(), 1, 0.0f, y_interactive.data(), 1));
    best_effort.push_back(fleet.submit_gemv<float>(
        RequestClass::BestEffort, blas::Transpose::No, 64, 64, 1.0f,
        a.data(), 64, x.data(), 1, 0.0f, y_best.data(), 1));
  }
  fleet.flush();

  for (auto& f : interactive) {
    EXPECT_EQ(f.get().outcome, Outcome::Shed);
  }
  for (auto& f : best_effort) {
    EXPECT_EQ(f.get().outcome, Outcome::Completed);
  }
  for (const float v : y_interactive) {
    EXPECT_EQ(v, 42.0f);  // shed work never touched its output
  }
  const serve::FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.shed, 40u);
  EXPECT_EQ(stats.completed, 40u);
  EXPECT_EQ(stats.submitted, 80u);
}

}  // namespace
