// Direct unit tests of the GEMM packing routines and micro-kernels —
// the innermost pieces everything else rides on.

#include <gtest/gtest.h>

#include "blas/microkernel.hpp"
#include "blas/microkernel_avx2.hpp"
#include "blas/pack.hpp"
#include "blas_test_util.hpp"

namespace {

using namespace blob;
using blas::Transpose;
using blob::test::random_vector;

TEST(Pack, PackANoTransLayoutAndPadding) {
  // A is 5x3 (m=5 exceeds one MR=4 panel -> 2 panels, second padded).
  constexpr int MR = 4;
  const int m = 5, k = 3;
  auto a = random_vector<double>(static_cast<std::size_t>(m) * k, 1);
  std::vector<double> packed(2 * MR * k, -1.0);
  blas::detail::pack_a<double, MR>(Transpose::No, a.data(), m, 0, 0, m, k,
                                   packed.data());
  // Panel 0: rows 0..3, k-major: packed[p*MR + r] == A[r, p].
  for (int p = 0; p < k; ++p) {
    for (int r = 0; r < MR; ++r) {
      EXPECT_DOUBLE_EQ(packed[static_cast<std::size_t>(p) * MR + r],
                       a[r + static_cast<std::size_t>(p) * m]);
    }
  }
  // Panel 1: row 4 live, rows 5..7 zero padded.
  const double* panel1 = packed.data() + static_cast<std::size_t>(MR) * k;
  for (int p = 0; p < k; ++p) {
    EXPECT_DOUBLE_EQ(panel1[static_cast<std::size_t>(p) * MR],
                     a[4 + static_cast<std::size_t>(p) * m]);
    for (int r = 1; r < MR; ++r) {
      EXPECT_DOUBLE_EQ(panel1[static_cast<std::size_t>(p) * MR + r], 0.0);
    }
  }
}

TEST(Pack, PackATransReadsTransposed) {
  constexpr int MR = 4;
  // op(A) is 4x2 from A stored 2x4 (ta = Trans).
  const int rows = 2, cols = 4;
  auto a = random_vector<double>(static_cast<std::size_t>(rows) * cols, 2);
  std::vector<double> packed(MR * rows, 0.0);
  blas::detail::pack_a<double, MR>(Transpose::Yes, a.data(), rows, 0, 0,
                                   /*mc=*/4, /*kc=*/2, packed.data());
  for (int p = 0; p < 2; ++p) {
    for (int r = 0; r < 4; ++r) {
      // op(A)[r, p] = A[p, r].
      EXPECT_DOUBLE_EQ(packed[static_cast<std::size_t>(p) * MR + r],
                       a[p + static_cast<std::size_t>(r) * rows]);
    }
  }
}

TEST(Pack, PackBNoTransLayoutAndPadding) {
  constexpr int NR = 4;
  const int k = 2, n = 5;  // 2 panels, second padded
  auto b = random_vector<double>(static_cast<std::size_t>(k) * n, 3);
  std::vector<double> packed(2 * NR * k, -1.0);
  blas::detail::pack_b<double, NR>(Transpose::No, b.data(), k, 0, 0, k, n,
                                   packed.data());
  for (int p = 0; p < k; ++p) {
    for (int c = 0; c < NR; ++c) {
      EXPECT_DOUBLE_EQ(packed[static_cast<std::size_t>(p) * NR + c],
                       b[p + static_cast<std::size_t>(c) * k]);
    }
  }
  const double* panel1 = packed.data() + static_cast<std::size_t>(NR) * k;
  for (int p = 0; p < k; ++p) {
    EXPECT_DOUBLE_EQ(panel1[static_cast<std::size_t>(p) * NR],
                     b[p + static_cast<std::size_t>(4) * k]);
    for (int c = 1; c < NR; ++c) {
      EXPECT_DOUBLE_EQ(panel1[static_cast<std::size_t>(p) * NR + c], 0.0);
    }
  }
}

TEST(Pack, OffsetsSelectSubBlocks) {
  constexpr int MR = 4;
  const int m = 8, k = 6;
  auto a = random_vector<double>(static_cast<std::size_t>(m) * k, 4);
  std::vector<double> packed(MR * 2, 0.0);
  // Pack the 2x2 block at (i0=3, p0=4).
  blas::detail::pack_a<double, MR>(Transpose::No, a.data(), m, 3, 4, 2, 2,
                                   packed.data());
  EXPECT_DOUBLE_EQ(packed[0], a[3 + 4 * static_cast<std::size_t>(m)]);
  EXPECT_DOUBLE_EQ(packed[1], a[4 + 4 * static_cast<std::size_t>(m)]);
  EXPECT_DOUBLE_EQ(packed[MR + 0], a[3 + 5 * static_cast<std::size_t>(m)]);
}

// ------------------------------------------------------------- microkernel

TEST(MicroKernel, ComputesPackedProduct) {
  constexpr int MR = 4, NR = 4;
  const int kc = 3;
  // Hand-built panels: a[p*MR + r] = r + 1, b[p*NR + c] = (c + 1) * 10.
  std::vector<double> a(static_cast<std::size_t>(kc) * MR);
  std::vector<double> b(static_cast<std::size_t>(kc) * NR);
  for (int p = 0; p < kc; ++p) {
    for (int r = 0; r < MR; ++r) a[static_cast<std::size_t>(p) * MR + r] = r + 1;
    for (int c = 0; c < NR; ++c) {
      b[static_cast<std::size_t>(p) * NR + c] = (c + 1) * 10.0;
    }
  }
  std::vector<double> c(MR * NR, 5.0);
  blas::detail::micro_kernel<double, MR, NR>(kc, 2.0, a.data(), b.data(),
                                             c.data(), MR, MR, NR,
                                             /*accumulate=*/true);
  // C[r][cc] = 5 + 2 * sum_p (r+1)(cc+1)*10 = 5 + 2*kc*10*(r+1)(cc+1).
  for (int cc = 0; cc < NR; ++cc) {
    for (int r = 0; r < MR; ++r) {
      EXPECT_DOUBLE_EQ(c[r + static_cast<std::size_t>(cc) * MR],
                       5.0 + 2.0 * kc * 10.0 * (r + 1) * (cc + 1));
    }
  }
}

TEST(MicroKernel, EdgeClippingWritesOnlyLiveTile) {
  constexpr int MR = 4, NR = 4;
  std::vector<double> a(MR, 1.0);
  std::vector<double> b(NR, 1.0);
  std::vector<double> c(MR * NR, -3.0);
  blas::detail::micro_kernel<double, MR, NR>(1, 1.0, a.data(), b.data(),
                                             c.data(), MR, /*mr=*/2,
                                             /*nr=*/2, false);
  for (int cc = 0; cc < NR; ++cc) {
    for (int r = 0; r < MR; ++r) {
      const double expected = (r < 2 && cc < 2) ? 1.0 : -3.0;
      EXPECT_DOUBLE_EQ(c[r + static_cast<std::size_t>(cc) * MR], expected);
    }
  }
}

#if BLOB_HAVE_AVX2_MICROKERNEL
TEST(MicroKernel, Avx2MatchesGenericF32) {
  const int kc = 37;
  auto a = random_vector<float>(static_cast<std::size_t>(kc) * 8, 5);
  auto b = random_vector<float>(static_cast<std::size_t>(kc) * 8, 6);
  auto c_generic = random_vector<float>(64, 7);
  auto c_avx = c_generic;
  blas::detail::micro_kernel<float, 8, 8>(kc, 1.5f, a.data(), b.data(),
                                          c_generic.data(), 8, 8, 8, true);
  blas::detail::micro_kernel_f32_8x8_avx2(kc, 1.5f, a.data(), b.data(),
                                          c_avx.data(), 8, true);
  for (int i = 0; i < 64; ++i) {
    ASSERT_NEAR(c_avx[i], c_generic[i], 1e-4f * (1.0f + std::abs(c_generic[i])));
  }
}

TEST(MicroKernel, Avx2MatchesGenericF64) {
  const int kc = 21;
  auto a = random_vector<double>(static_cast<std::size_t>(kc) * 8, 8);
  auto b = random_vector<double>(static_cast<std::size_t>(kc) * 4, 9);
  auto c_generic = random_vector<double>(32, 10);
  auto c_avx = c_generic;
  blas::detail::micro_kernel<double, 8, 4>(kc, -0.5, a.data(), b.data(),
                                           c_generic.data(), 8, 8, 4, true);
  blas::detail::micro_kernel_f64_8x4_avx2(kc, -0.5, a.data(), b.data(),
                                          c_avx.data(), 8, true);
  for (int i = 0; i < 32; ++i) {
    ASSERT_NEAR(c_avx[i], c_generic[i],
                1e-12 * (1.0 + std::abs(c_generic[i])));
  }
}
#endif

}  // namespace
