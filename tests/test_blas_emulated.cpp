// Ozaki-style split-representation emulated fp64 GEMM: slice-count
// policy, the declared error bound across slice counts (transposed and
// ld-padded operands included), and the edge semantics (alpha/beta,
// degenerate dims, slice-count validation) the dispatcher's emulated arm
// leans on.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "blas/emulated_gemm.hpp"
#include "blas/gemm.hpp"
#include "blas_test_util.hpp"
#include "core/op_desc.hpp"

namespace {

using namespace blob;
using blas::emulated_gemm;
using blas::emulated_products;
using blas::emulated_relative_bound;
using blas::SliceType;
using blas::slices_for_budget;
using blas::Transpose;
using blob::test::random_vector;

// ------------------------------------------------------------ policy

TEST(EmulatedPolicy, ProductsPerSliceCount) {
  EXPECT_EQ(emulated_products(1), 1);
  EXPECT_EQ(emulated_products(2), 3);
  EXPECT_EQ(emulated_products(3), 6);
}

TEST(EmulatedPolicy, BoundHalvesPerSliceBit) {
  EXPECT_DOUBLE_EQ(emulated_relative_bound(1), std::ldexp(1.0, -24));
  EXPECT_DOUBLE_EQ(emulated_relative_bound(2), std::ldexp(1.0, -48));
  EXPECT_DOUBLE_EQ(emulated_relative_bound(1, SliceType::F16),
                   std::ldexp(1.0, -11));
}

TEST(EmulatedPolicy, SlicesForBudget) {
  // Exact traffic is never emulation-eligible.
  EXPECT_EQ(slices_for_budget(core::ErrorBudget::exact()), 0);
  // Relaxed = single-precision-grade = one fp32 slice.
  EXPECT_EQ(slices_for_budget(core::ErrorBudget::relaxed()), 1);
  // Tight ulp budgets need the full significand: three slices.
  EXPECT_EQ(slices_for_budget(core::ErrorBudget::ulp_bounded(1)), 3);
  // 16 ulps forgives the bottom 4 bits: 48 remain, two slices cover it.
  EXPECT_EQ(slices_for_budget(core::ErrorBudget::ulp_bounded(16)), 2);
  // ~2^30 ulps leaves 22 mantissa bits to cover: one slice suffices.
  EXPECT_EQ(slices_for_budget(core::ErrorBudget::ulp_bounded(1u << 30)), 1);
  // Mid-range budgets land on two slices.
  EXPECT_EQ(slices_for_budget(core::ErrorBudget::ulp_bounded(1u << 20)), 2);
}

// ---------------------------------------------------------- accuracy

struct GemmCase {
  Transpose ta = Transpose::No;
  Transpose tb = Transpose::No;
  int m = 0, n = 0, k = 0;
  int lda_pad = 0, ldb_pad = 0, ldc_pad = 0;
  double alpha = 1.0, beta = 0.0;
};

// Max relative error of the emulated product vs the fp64 reference,
// measured element-wise against the column scale.
double max_rel_error(const GemmCase& gc, int slices, std::uint64_t seed) {
  const int a_rows = gc.ta == Transpose::No ? gc.m : gc.k;
  const int a_cols = gc.ta == Transpose::No ? gc.k : gc.m;
  const int b_rows = gc.tb == Transpose::No ? gc.k : gc.n;
  const int b_cols = gc.tb == Transpose::No ? gc.n : gc.k;
  const int lda = a_rows + gc.lda_pad;
  const int ldb = b_rows + gc.ldb_pad;
  const int ldc = gc.m + gc.ldc_pad;

  const auto a = random_vector<double>(
      static_cast<std::size_t>(lda) * static_cast<std::size_t>(a_cols),
      seed);
  const auto b = random_vector<double>(
      static_cast<std::size_t>(ldb) * static_cast<std::size_t>(b_cols),
      seed + 1);
  const auto c0 = random_vector<double>(
      static_cast<std::size_t>(ldc) * static_cast<std::size_t>(gc.n),
      seed + 2);

  std::vector<double> c_ref = c0;
  blas::gemm(gc.ta, gc.tb, gc.m, gc.n, gc.k, gc.alpha, a.data(), lda,
             b.data(), ldb, gc.beta, c_ref.data(), ldc);
  std::vector<double> c_emu = c0;
  emulated_gemm(gc.ta, gc.tb, gc.m, gc.n, gc.k, gc.alpha, a.data(), lda,
                b.data(), ldb, gc.beta, c_emu.data(), ldc, slices);

  // The pad rows of C must never be touched by either path.
  for (int j = 0; j < gc.n; ++j) {
    for (int i = gc.m; i < ldc; ++i) {
      const std::size_t idx = static_cast<std::size_t>(i) +
                              static_cast<std::size_t>(j) *
                                  static_cast<std::size_t>(ldc);
      EXPECT_EQ(c_emu[idx], c0[idx]) << "pad touched at " << i << "," << j;
    }
  }

  // Relative to the accumulation scale, ~|alpha| * k for uniform(-1,1)
  // inputs, so cancellation in an individual element cannot inflate the
  // measured "relative" error arbitrarily.
  const double scale =
      std::fabs(gc.alpha) * std::max(gc.k, 1) + std::fabs(gc.beta);
  double worst = 0.0;
  for (int j = 0; j < gc.n; ++j) {
    for (int i = 0; i < gc.m; ++i) {
      const std::size_t idx = static_cast<std::size_t>(i) +
                              static_cast<std::size_t>(j) *
                                  static_cast<std::size_t>(ldc);
      worst = std::max(worst, std::fabs(c_emu[idx] - c_ref[idx]) / scale);
    }
  }
  return worst;
}

// Error budget for `slices`: the omitted-tail bound plus the fp64
// summation rounding both paths pay (scaled by the reduction depth).
double budget_for(int slices, int k) {
  return emulated_relative_bound(slices) + 64.0 * 2.3e-16 * k;
}

TEST(EmulatedGemm, ErrorWithinBoundAcrossSliceCounts) {
  const GemmCase gc{Transpose::No, Transpose::No, 48, 40, 56, 0, 0, 0,
                    1.0, 0.0};
  double prev = 1.0;
  for (int slices = 1; slices <= 3; ++slices) {
    const double err = max_rel_error(gc, slices, 0x11 * slices);
    EXPECT_LE(err, budget_for(slices, gc.k)) << "slices=" << slices;
    // Each extra slice tightens the result (until fp64 rounding floors
    // it): the measured error must not grow.
    EXPECT_LE(err, prev + budget_for(3, gc.k)) << "slices=" << slices;
    prev = err;
  }
}

TEST(EmulatedGemm, TransposedAndPaddedOperandsStayWithinBound) {
  const GemmCase cases[] = {
      {Transpose::Yes, Transpose::No, 33, 29, 41, 5, 0, 3, 1.0, 0.0},
      {Transpose::No, Transpose::Yes, 30, 36, 27, 0, 7, 0, 1.0, 0.0},
      {Transpose::Yes, Transpose::Yes, 25, 31, 37, 4, 6, 2, 1.0, 0.0},
  };
  for (int slices = 1; slices <= 3; ++slices) {
    for (std::size_t i = 0; i < std::size(cases); ++i) {
      EXPECT_LE(max_rel_error(cases[i], slices, 0x200 + i),
                budget_for(slices, cases[i].k))
          << "case " << i << " slices " << slices;
    }
  }
}

TEST(EmulatedGemm, AlphaBetaHandledLikeNativeGemm) {
  const GemmCase gc{Transpose::No, Transpose::Yes, 24, 28, 32, 3, 2, 1,
                    -1.75, 0.5};
  for (int slices = 1; slices <= 3; ++slices) {
    EXPECT_LE(max_rel_error(gc, slices, 0x300 + slices),
              budget_for(slices, gc.k))
        << "slices=" << slices;
  }
}

TEST(EmulatedGemm, OneSliceIsSinglePrecisionGrade) {
  // One fp32 slice must comfortably beat an all-float computation's
  // worst case but cannot reach fp64: the error floor sits near 2^-24.
  const GemmCase gc{Transpose::No, Transpose::No, 64, 64, 64, 0, 0, 0,
                    1.0, 0.0};
  const double err1 = max_rel_error(gc, 1, 0x44);
  const double err3 = max_rel_error(gc, 3, 0x44);
  EXPECT_LE(err1, budget_for(1, gc.k));
  // Three slices capture the full significand: orders of magnitude
  // tighter than one.
  EXPECT_LT(err3, err1 / 1e4);
}

TEST(EmulatedGemm, F16SlicesHonourTheirLooserBound) {
  const GemmCase gc{Transpose::No, Transpose::No, 20, 22, 24, 0, 0, 0,
                    1.0, 0.0};
  const int a_rows = gc.m, b_rows = gc.k;
  const auto a = random_vector<double>(
      static_cast<std::size_t>(a_rows) * gc.k, 0x55);
  const auto b = random_vector<double>(
      static_cast<std::size_t>(b_rows) * gc.n, 0x56);
  std::vector<double> c_ref(static_cast<std::size_t>(gc.m) * gc.n, 0.0);
  std::vector<double> c_emu = c_ref;
  blas::gemm(gc.ta, gc.tb, gc.m, gc.n, gc.k, 1.0, a.data(), a_rows,
             b.data(), b_rows, 0.0, c_ref.data(), gc.m);
  emulated_gemm(gc.ta, gc.tb, gc.m, gc.n, gc.k, 1.0, a.data(), a_rows,
                b.data(), b_rows, 0.0, c_emu.data(), gc.m, 2,
                SliceType::F16);
  const double bound =
      emulated_relative_bound(2, SliceType::F16) + 64.0 * 2.3e-16 * gc.k;
  for (std::size_t i = 0; i < c_ref.size(); ++i) {
    EXPECT_LE(std::fabs(c_emu[i] - c_ref[i]) / gc.k, bound) << i;
  }
}

// -------------------------------------------------------------- edges

TEST(EmulatedGemm, RejectsOutOfRangeSliceCounts) {
  std::vector<double> a(4, 0.0), b(4, 0.0), c(4, 0.0);
  EXPECT_THROW(emulated_gemm(Transpose::No, Transpose::No, 2, 2, 2, 1.0,
                             a.data(), 2, b.data(), 2, 0.0, c.data(), 2, 0),
               std::invalid_argument);
  EXPECT_THROW(emulated_gemm(Transpose::No, Transpose::No, 2, 2, 2, 1.0,
                             a.data(), 2, b.data(), 2, 0.0, c.data(), 2,
                             blas::kMaxEmulatedSlices + 1),
               std::invalid_argument);
}

TEST(EmulatedGemm, KZeroScalesCByBeta) {
  std::vector<double> c{1.0, -2.0, 3.0, -4.0};
  std::vector<double> a(1), b(1);
  emulated_gemm(Transpose::No, Transpose::No, 2, 2, 0, 1.0, a.data(), 2,
                b.data(), 2, 0.5, c.data(), 2, 1);
  EXPECT_DOUBLE_EQ(c[0], 0.5);
  EXPECT_DOUBLE_EQ(c[1], -1.0);
  EXPECT_DOUBLE_EQ(c[2], 1.5);
  EXPECT_DOUBLE_EQ(c[3], -2.0);
}

TEST(EmulatedGemm, BetaZeroOverwritesNaNs) {
  // beta == 0 must overwrite C without reading it (BLAS semantics).
  std::vector<double> c(4, std::nan(""));
  std::vector<double> a{1.0, 2.0, 3.0, 4.0}, b{1.0, 0.0, 0.0, 1.0};
  emulated_gemm(Transpose::No, Transpose::No, 2, 2, 2, 1.0, a.data(), 2,
                b.data(), 2, 0.0, c.data(), 2, 2);
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  EXPECT_DOUBLE_EQ(c[1], 2.0);
  EXPECT_DOUBLE_EQ(c[2], 3.0);
  EXPECT_DOUBLE_EQ(c[3], 4.0);
}

}  // namespace
