// The emulated-GEMM routing arm: eligibility, three-way pricing, the
// exact-path bitwise-identity contract (outputs AND decision streams),
// and end-to-end learning — a relaxed-budget workload on a wide
// fp32:fp64-ratio profile routes to the emulated arm and verifies within
// its declared tolerance.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "blas/emulated_gemm.hpp"
#include "blas/gemm.hpp"
#include "core/validate.hpp"
#include "dispatch/decision_table.hpp"
#include "dispatch/dispatcher.hpp"
#include "util/rng.hpp"

namespace {

using namespace blob;
using dispatch::BucketKey;
using dispatch::bucket_key;
using dispatch::Decision;
using dispatch::DecisionTable;
using dispatch::Dispatcher;
using dispatch::DispatcherConfig;
using dispatch::Route;

core::OpDesc gemm_desc(std::int64_t n, core::ErrorBudget budget,
                       model::Precision p = model::Precision::F64) {
  core::OpDesc desc = core::OpDesc::gemm(
      p, blas::Transpose::No, blas::Transpose::No, n, n, n, 0, 0, 0,
      /*alpha_one=*/true, /*beta_zero=*/true, core::TransferMode::Once);
  desc.budget = budget;
  return desc;
}

// --------------------------------------------------------- eligibility

TEST(EmulationEligibility, OnlyNonExactF64GemmQualifies) {
  EXPECT_TRUE(Dispatcher::emulation_eligible(
      gemm_desc(256, core::ErrorBudget::relaxed())));
  EXPECT_TRUE(Dispatcher::emulation_eligible(
      gemm_desc(256, core::ErrorBudget::ulp_bounded(64))));
  // Exact traffic never sees the arm.
  EXPECT_FALSE(Dispatcher::emulation_eligible(
      gemm_desc(256, core::ErrorBudget::exact())));
  // Only fp64 has anything to slice.
  EXPECT_FALSE(Dispatcher::emulation_eligible(
      gemm_desc(256, core::ErrorBudget::relaxed(), model::Precision::F32)));
  // GEMV stays native.
  core::OpDesc gemv = core::OpDesc::gemv(
      model::Precision::F64, blas::Transpose::No, 256, 256, 0, 1, 1, true,
      true, core::TransferMode::Once);
  gemv.budget = core::ErrorBudget::relaxed();
  EXPECT_FALSE(Dispatcher::emulation_eligible(gemv));
  // Batched traffic stays native.
  core::OpDesc batched = gemm_desc(256, core::ErrorBudget::relaxed());
  batched.batch = 4;
  EXPECT_FALSE(Dispatcher::emulation_eligible(batched));
}

// ------------------------------------------------------------- pricing

TEST(EmulatedCosts, ExactBudgetPricesTheArmAtInfinity) {
  DispatcherConfig cfg;
  cfg.profile = profile::by_name("dawn");
  Dispatcher disp(cfg);
  const auto exact = disp.modelled_costs(
      gemm_desc(512, core::ErrorBudget::exact()));
  EXPECT_TRUE(std::isinf(exact.emu_s));
  const auto relaxed = disp.modelled_costs(
      gemm_desc(512, core::ErrorBudget::relaxed()));
  EXPECT_TRUE(std::isfinite(relaxed.emu_s));
  // Native arms are budget-blind: same price either way.
  EXPECT_DOUBLE_EQ(exact.cpu_s, relaxed.cpu_s);
  EXPECT_DOUBLE_EQ(exact.gpu_s, relaxed.gpu_s);
}

TEST(EmulatedCosts, WideRatioProfileOpensAWindowNarrowOneDoesNot) {
  // dawn's fp32:fp64 peak ratio (~2) beats the 1-slice product count, so
  // large compute-bound squares price emulated below native; on the
  // ~1:1-ratio mi300a the arm never wins by more than a hair.
  DispatcherConfig dawn_cfg;
  dawn_cfg.profile = profile::by_name("dawn");
  Dispatcher dawn(dawn_cfg);
  const auto c = dawn.modelled_costs(
      gemm_desc(1024, core::ErrorBudget::relaxed()));
  EXPECT_LT(c.emu_s, c.gpu_s);
  EXPECT_LT(c.emu_s, c.cpu_s);
  EXPECT_EQ(dawn.oracle_route(gemm_desc(1024, core::ErrorBudget::relaxed())),
            Route::GpuEmulated);
  // The same call with an exact budget must ignore the arm entirely.
  EXPECT_NE(dawn.oracle_route(gemm_desc(1024, core::ErrorBudget::exact())),
            Route::GpuEmulated);

  // Tighter budgets need more slices; at three slices (6 products) the
  // ~2x ratio can no longer pay for the extra kernels.
  const auto tight = dawn.modelled_costs(
      gemm_desc(1024, core::ErrorBudget::ulp_bounded(1)));
  EXPECT_GT(tight.emu_s, c.emu_s);
  EXPECT_GT(tight.emu_s, tight.gpu_s);
}

// ----------------------------------------------- exact-path identity

TEST(BucketKeys, ExactBudgetKeyMatchesLegacyDefault) {
  // A descriptor that never touches .budget and one stamped exact() must
  // produce the same bucket key: the budget dimension is invisible to
  // every pre-existing caller.
  core::OpDesc legacy = core::OpDesc::gemm(
      model::Precision::F64, blas::Transpose::No, blas::Transpose::No, 384,
      384, 384, 0, 0, 0, true, true, core::TransferMode::Once);
  EXPECT_EQ(bucket_key(legacy),
            bucket_key(gemm_desc(384, core::ErrorBudget::exact())));
  // Non-exact budgets learn in their own buckets.
  EXPECT_NE(bucket_key(legacy),
            bucket_key(gemm_desc(384, core::ErrorBudget::relaxed())));
  EXPECT_NE(bucket_key(gemm_desc(384, core::ErrorBudget::ulp_bounded(8))),
            bucket_key(gemm_desc(384, core::ErrorBudget::ulp_bounded(16))));
}

TEST(ThreeArmTable, TwoArmDecisionStreamUnchangedWhenArmIsOffered) {
  // Offering the emulated arm on a bucket seeded WITHOUT an emulated
  // estimate must leave the two-arm decision stream untouched — same
  // routes, same reasons, same RNG consumption. This is the bitwise
  // contract that keeps exact traffic identical to a build without the
  // arm.
  dispatch::DecisionTableConfig cfg;
  DecisionTable legacy(cfg), offered(cfg);
  BucketKey key;
  key.bucket = 30;
  legacy.seed(key, 1.0e-3, 1.2e-3);
  offered.seed(key, 1.0e-3, 1.2e-3);

  util::Xoshiro256 noise(7);
  for (int i = 0; i < 200; ++i) {
    const Decision a = legacy.choose(key);
    const Decision b = offered.choose(key, /*gpu_available=*/true,
                                      /*gpu_cost_override=*/std::nullopt,
                                      /*emu_available=*/true);
    ASSERT_EQ(a.route, b.route) << "call " << i;
    ASSERT_EQ(a.reason, b.reason) << "call " << i;
    ASSERT_DOUBLE_EQ(a.cpu_est_s, b.cpu_est_s) << "call " << i;
    ASSERT_DOUBLE_EQ(a.gpu_est_s, b.gpu_est_s) << "call " << i;
    ASSERT_EQ(b.emu_est_s, 0.0) << "call " << i;
    const double measured =
        (a.route == Route::Cpu ? 1.0e-3 : 1.2e-3) * noise.uniform(0.9, 1.1);
    legacy.observe(key, a.route, measured);
    offered.observe(key, b.route, measured);
  }
}

TEST(ExactReplay, OutputsAndDecisionStreamIdenticalWithBudgetSeam) {
  // The same all-exact workload through two dispatchers — one with the
  // budget left at its default, one stamping ErrorBudget::exact()
  // explicitly — must produce bitwise-identical outputs AND identical
  // decision traces: the precision seam is invisible until someone
  // relaxes a budget.
  const std::int64_t kN = 192;
  const int kCalls = 40;
  const auto len = static_cast<std::size_t>(kN * kN);
  util::Xoshiro256 rng(0x9d5);
  std::vector<double> a(len), b(len);
  for (auto& v : a) v = rng.uniform(-1.0, 1.0);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);

  DispatcherConfig cfg;
  cfg.profile = profile::by_name("dawn");
  cfg.cpu_threads = 2;
  cfg.trace_capacity = 2 * kCalls;
  Dispatcher defaulted(cfg), stamped(cfg);

  core::OpDesc plain = core::OpDesc::gemm(
      model::Precision::F64, blas::Transpose::No, blas::Transpose::No, kN,
      kN, kN, 0, 0, 0, true, true, core::TransferMode::Once);
  const core::OpDesc exact = gemm_desc(kN, core::ErrorBudget::exact());

  std::vector<double> c_default(len, 0.0), c_exact(len, 0.0);
  for (int i = 0; i < kCalls; ++i) {
    defaulted.run_gemm<double>(plain, 1.0, a.data(), b.data(), 0.0,
                               c_default.data());
    stamped.run_gemm<double>(exact, 1.0, a.data(), b.data(), 0.0,
                             c_exact.data());
  }
  EXPECT_EQ(std::memcmp(c_default.data(), c_exact.data(),
                        len * sizeof(double)),
            0);

  const auto ta = defaulted.trace().snapshot();
  const auto tb = stamped.trace().snapshot();
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].route, tb[i].route) << i;
    EXPECT_EQ(ta[i].reason, tb[i].reason) << i;
    EXPECT_EQ(ta[i].bucket, tb[i].bucket) << i;
    EXPECT_DOUBLE_EQ(ta[i].cost_s, tb[i].cost_s) << i;
    EXPECT_DOUBLE_EQ(ta[i].observed_s, tb[i].observed_s) << i;
    EXPECT_EQ(ta[i].emu_est_s, 0.0) << i;
    EXPECT_EQ(tb[i].emu_est_s, 0.0) << i;
    EXPECT_TRUE(tb[i].budget.is_exact()) << i;
    EXPECT_EQ(tb[i].slices, 0) << i;
  }
  EXPECT_EQ(defaulted.stats().emulated_routed, 0u);
  EXPECT_EQ(stamped.stats().emulated_routed, 0u);
}

// ------------------------------------------------- end-to-end learning

TEST(RelaxedReplay, RoutesEmulatedAndVerifiesWithinTolerance) {
  // On dawn the relaxed-budget oracle picks the emulated arm at n=1024;
  // a short replay must actually route there and every output must pass
  // the tolerance-aware verifier for the declared budget.
  const std::int64_t kN = 1024;
  const int kCalls = 12;
  const auto len = static_cast<std::size_t>(kN * kN);
  util::Xoshiro256 rng(0x77a);
  std::vector<double> a(len), b(len);
  for (auto& v : a) v = rng.uniform(-1.0, 1.0);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);

  std::vector<double> c_ref(len, 0.0);
  blas::gemm(blas::Transpose::No, blas::Transpose::No, kN, kN, kN, 1.0,
             a.data(), kN, b.data(), kN, 0.0, c_ref.data(), kN);

  DispatcherConfig cfg;
  cfg.profile = profile::by_name("dawn");
  cfg.cpu_threads = 2;
  Dispatcher disp(cfg);
  const core::OpDesc desc = gemm_desc(kN, core::ErrorBudget::relaxed());
  const core::CompareSpec spec = core::spec_for_budget(desc.budget);

  std::vector<double> c(len, 0.0);
  for (int i = 0; i < kCalls; ++i) {
    disp.run_gemm<double>(desc, 1.0, a.data(), b.data(), 0.0, c.data());
    const auto cmp = core::compare_buffers(c_ref.data(), c.data(), len,
                                           spec);
    ASSERT_TRUE(cmp.passed) << "call " << i << ": " << cmp.detail;
  }
  EXPECT_GT(disp.stats().emulated_routed, 0u);

  // The trace must carry the emulated decisions with their budget and
  // slice count.
  bool saw_emulated = false;
  for (const auto& rec : disp.trace().snapshot()) {
    if (rec.route != Route::GpuEmulated) continue;
    saw_emulated = true;
    EXPECT_EQ(rec.budget.kind, core::ErrorBudgetKind::Relaxed);
    EXPECT_EQ(rec.slices, 1);
    EXPECT_GT(rec.emu_est_s, 0.0);
  }
  EXPECT_TRUE(saw_emulated);
}

TEST(RelaxedReplay, UlpBoundedBudgetUsesMoreSlicesAndTightensError) {
  // A tight ulp budget runs with three slices: the emulated result is
  // orders of magnitude closer to native fp64 than the relaxed one.
  const std::int64_t kN = 96;
  const auto len = static_cast<std::size_t>(kN * kN);
  util::Xoshiro256 rng(0x90b);
  std::vector<double> a(len), b(len);
  for (auto& v : a) v = rng.uniform(-1.0, 1.0);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  std::vector<double> c_ref(len, 0.0);
  blas::gemm(blas::Transpose::No, blas::Transpose::No, kN, kN, kN, 1.0,
             a.data(), kN, b.data(), kN, 0.0, c_ref.data(), kN);

  std::vector<double> c1(len, 0.0), c3(len, 0.0);
  blas::emulated_gemm(blas::Transpose::No, blas::Transpose::No, kN, kN, kN,
                      1.0, a.data(), kN, b.data(), kN, 0.0, c1.data(), kN,
                      blas::slices_for_budget(core::ErrorBudget::relaxed()));
  blas::emulated_gemm(
      blas::Transpose::No, blas::Transpose::No, kN, kN, kN, 1.0, a.data(),
      kN, b.data(), kN, 0.0, c3.data(), kN,
      blas::slices_for_budget(core::ErrorBudget::ulp_bounded(1)));

  const auto r1 = core::compare_buffers(
      c_ref.data(), c1.data(), len,
      core::CompareSpec::rel_frobenius(core::kRelaxedFrobeniusTolerance));
  const auto r3 = core::compare_buffers(
      c_ref.data(), c3.data(), len,
      core::CompareSpec::rel_frobenius(core::kRelaxedFrobeniusTolerance));
  EXPECT_TRUE(r1.passed) << r1.detail;
  EXPECT_TRUE(r3.passed) << r3.detail;
  EXPECT_LT(r3.rel_frobenius, r1.rel_frobenius / 1e3);
}

}  // namespace
