// Unit tests for the util module: formatting, RNG, statistics, CSV,
// tables, CLI parsing, timers.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <sstream>
#include <utility>

#include "util/aligned.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strfmt.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace blob::util;

// ---------------------------------------------------------------- strfmt

TEST(Strfmt, FormatsBasicTypes) {
  EXPECT_EQ(strfmt("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(strfmt("%.2f", 3.14159), "3.14");
  EXPECT_EQ(strfmt("%s!", "hello"), "hello!");
}

TEST(Strfmt, EmptyAndLongStrings) {
  EXPECT_EQ(strfmt("%s", ""), "");
  const std::string long_input(10000, 'x');
  EXPECT_EQ(strfmt("%s", long_input.c_str()), long_input);
}

TEST(Strfmt, PrettyBytes) {
  EXPECT_EQ(pretty_bytes(512), "512 B");
  EXPECT_EQ(pretty_bytes(2048), "2.00 KiB");
  EXPECT_EQ(pretty_bytes(3.5 * 1048576.0), "3.50 MiB");
  EXPECT_EQ(pretty_bytes(1024.0 * 1024 * 1024), "1.00 GiB");
}

TEST(Strfmt, PrettySeconds) {
  EXPECT_EQ(pretty_seconds(2.5), "2.500 s");
  EXPECT_EQ(pretty_seconds(1.5e-3), "1.500 ms");
  EXPECT_EQ(pretty_seconds(12e-6), "12.000 us");
  EXPECT_EQ(pretty_seconds(5e-9), "5.0 ns");
}

TEST(Strfmt, PrettyDoubleTrimsZeros) {
  EXPECT_EQ(pretty_double(1.5), "1.5");
  EXPECT_EQ(pretty_double(2.0), "2");
}

// --------------------------------------------------------------- aligned

TEST(Aligned, AllocRespectsAlignment) {
  for (std::size_t alignment : {std::size_t{64}, std::size_t{128},
                                std::size_t{4096}}) {
    void* p = aligned_alloc_bytes(1000, alignment);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % alignment, 0u);
    std::memset(p, 0xAB, 1000);  // whole request must be writable
    aligned_free(p);
  }
}

TEST(Aligned, ZeroBytesYieldsNull) {
  EXPECT_EQ(aligned_alloc_bytes(0), nullptr);
  aligned_free(nullptr);  // must be a no-op
}

TEST(AlignedBuffer, EnsureGrowsOnlyWhenNeeded) {
  AlignedBuffer buf;
  EXPECT_EQ(buf.capacity(), 0u);
  EXPECT_TRUE(buf.ensure(100));
  EXPECT_GE(buf.capacity(), 100u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kCacheLineBytes,
            0u);

  void* before = buf.data();
  EXPECT_FALSE(buf.ensure(50));   // smaller: keep the allocation
  EXPECT_FALSE(buf.ensure(100));  // equal: keep the allocation
  EXPECT_EQ(buf.data(), before);

  EXPECT_TRUE(buf.ensure(10 * buf.capacity()));
  EXPECT_GE(buf.capacity(), 1000u);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer a;
  a.ensure(256);
  void* p = a.data();
  AlignedBuffer b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(a.data(), nullptr);  // NOLINT(bugprone-use-after-move)

  AlignedBuffer c;
  c = std::move(b);
  EXPECT_EQ(c.data(), p);
}

// ------------------------------------------------------------------- rng

TEST(Rng, SplitMixIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Xoshiro256 rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(0, 7);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 7);
    saw_lo |= v == 0;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalHasRoughlyUnitMoments) {
  Xoshiro256 rng(13);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(Rng, LognormalFactorMedianNearOne) {
  Xoshiro256 rng(17);
  std::vector<double> xs;
  for (int i = 0; i < 10001; ++i) xs.push_back(rng.lognormal_factor(0.2));
  EXPECT_NEAR(median(xs), 1.0, 0.03);
  for (double x : xs) EXPECT_GT(x, 0.0);
}

TEST(Rng, HashCombineOrderSensitive) {
  EXPECT_NE(hash_combine(hash_combine(0, 1), 2),
            hash_combine(hash_combine(0, 2), 1));
}

TEST(Rng, Fnv1aDistinguishesStrings) {
  EXPECT_NE(fnv1a("dawn"), fnv1a("lumi"));
  EXPECT_EQ(fnv1a("dawn"), fnv1a("dawn"));
  EXPECT_NE(fnv1a(""), fnv1a("a"));
}

// ----------------------------------------------------------------- stats

TEST(Stats, RunningStatsBasics) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, RunningStatsEmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Stats, SummaryMedianEvenOdd) {
  const std::vector<double> odd = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  const std::vector<double> even = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 20.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 12.5), 15.0);
}

TEST(Stats, PercentileEmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(Stats, GeomeanBasics) {
  const std::vector<double> xs = {1.0, 4.0, 16.0};
  EXPECT_NEAR(geomean(xs), 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
  EXPECT_THROW(geomean(std::vector<double>{1.0, -2.0}),
               std::invalid_argument);
}

TEST(Stats, SummaryCi95ShrinksWithSamples) {
  std::vector<double> small_sample;
  std::vector<double> large_sample;
  Xoshiro256 rng(1);
  for (int i = 0; i < 10; ++i) small_sample.push_back(rng.normal());
  for (int i = 0; i < 1000; ++i) large_sample.push_back(rng.normal());
  EXPECT_GT(summarize(small_sample).ci95_halfwidth,
            summarize(large_sample).ci95_halfwidth);
}

// ------------------------------------------------------------------- csv

TEST(Csv, EscapeOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WriterProducesHeaderAndRows) {
  std::ostringstream out;
  CsvWriter writer(out, {"a", "b"});
  writer.row({"1", "2"});
  writer.row({"x,y", "3"});
  EXPECT_EQ(out.str(), "a,b\n1,2\n\"x,y\",3\n");
  EXPECT_EQ(writer.rows_written(), 2u);
}

TEST(Csv, WriterRejectsBadWidths) {
  std::ostringstream out;
  CsvWriter writer(out, {"a", "b"});
  EXPECT_THROW(writer.row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(CsvWriter(out, {}), std::invalid_argument);
}

TEST(Csv, ParseLineRoundTrip) {
  const std::vector<std::string> fields = {"plain", "with,comma",
                                           "with \"quotes\"", ""};
  std::string line;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) line += ',';
    line += csv_escape(fields[i]);
  }
  EXPECT_EQ(csv_parse_line(line), fields);
}

TEST(Csv, ParseToleratesCrlf) {
  const auto fields = csv_parse_line("a,b\r");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[1], "b");
}

// ----------------------------------------------------------------- table

TEST(Table, RendersAlignedColumns) {
  TextTable t({"name", "value"}, {Align::Left, Align::Right});
  t.row({"x", "1"});
  t.row({"longer", "22"});
  const std::string out = t.str();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| x      |     1 |"), std::string::npos);
  EXPECT_NE(out.find("| longer |    22 |"), std::string::npos);
}

TEST(Table, PadsShortRowsRejectsWide) {
  TextTable t({"a", "b", "c"});
  t.row({"1"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_THROW(t.row({"1", "2", "3", "4"}), std::invalid_argument);
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(Table, RuleInsertsSeparator) {
  TextTable t({"a"});
  t.row({"1"});
  t.rule();
  t.row({"2"});
  const std::string out = t.str();
  // header rule + top + bottom + inserted = 4 horizontal lines
  std::size_t count = 0;
  for (std::size_t pos = 0; (pos = out.find("+---", pos)) != std::string::npos;
       ++pos) {
    ++count;
  }
  EXPECT_EQ(count, 4u);
}

// ------------------------------------------------------------------- cli

TEST(Cli, ParsesTypedOptions) {
  ArgParser p("prog");
  p.add_int("-i", "iters", 1);
  p.add_double("--noise", "sigma", 0.5);
  p.add_string("--system", "sys", "dawn");
  p.add_flag("--validate", "check");
  const char* argv[] = {"prog", "-i",       "32",        "--noise",
                        "0.25", "--system", "lumi",      "--validate",
                        "pos1"};
  const auto positional = p.parse(9, argv);
  EXPECT_EQ(p.get_int("-i"), 32);
  EXPECT_DOUBLE_EQ(p.get_double("--noise"), 0.25);
  EXPECT_EQ(p.get_string("--system"), "lumi");
  EXPECT_TRUE(p.get_flag("--validate"));
  ASSERT_EQ(positional.size(), 1u);
  EXPECT_EQ(positional[0], "pos1");
  EXPECT_TRUE(p.was_set("-i"));
  EXPECT_FALSE(p.was_set("--missing-not-declared"));
}

TEST(Cli, DefaultsSurviveWhenUnset) {
  ArgParser p("prog");
  p.add_int("-i", "iters", 7);
  p.add_string("--s", "str", "dft");
  const char* argv[] = {"prog"};
  p.parse(1, argv);
  EXPECT_EQ(p.get_int("-i"), 7);
  EXPECT_EQ(p.get_string("--s"), "dft");
  EXPECT_FALSE(p.was_set("-i"));
}

TEST(Cli, RejectsMalformedInput) {
  ArgParser p("prog");
  p.add_int("-i", "iters", 1);
  {
    const char* argv[] = {"prog", "-i", "abc"};
    EXPECT_THROW(p.parse(3, argv), ArgParser::ArgError);
  }
  {
    const char* argv[] = {"prog", "-i"};
    EXPECT_THROW(p.parse(2, argv), ArgParser::ArgError);
  }
  {
    const char* argv[] = {"prog", "--unknown-option"};
    EXPECT_THROW(p.parse(2, argv), ArgParser::ArgError);
  }
}

TEST(Cli, HelpAndUsage) {
  ArgParser p("prog");
  p.add_int("-i", "iteration count", 1);
  const char* argv[] = {"prog", "--help"};
  p.parse(2, argv);
  EXPECT_TRUE(p.help_requested());
  const std::string usage = p.usage();
  EXPECT_NE(usage.find("-i <int>"), std::string::npos);
  EXPECT_NE(usage.find("iteration count"), std::string::npos);
}

TEST(Cli, NegativeNumbersArePositional) {
  ArgParser p("prog");
  p.add_int("-i", "iters", 1);
  const char* argv[] = {"prog", "-3.5"};
  const auto positional = p.parse(2, argv);
  ASSERT_EQ(positional.size(), 1u);
  EXPECT_EQ(positional[0], "-3.5");
}

// ----------------------------------------------------------------- timer

TEST(Timer, SimClockAdvances) {
  SimClock clock;
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  clock.advance(1.5);
  clock.advance(-1.0);  // negative is ignored
  EXPECT_DOUBLE_EQ(clock.now(), 1.5);
  clock.advance_to(1.0);  // backwards is ignored
  EXPECT_DOUBLE_EQ(clock.now(), 1.5);
  clock.advance_to(4.0);
  EXPECT_DOUBLE_EQ(clock.now(), 4.0);
  clock.reset();
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
}

TEST(Timer, WallTimerIsMonotone) {
  WallTimer t;
  const double a = t.elapsed_seconds();
  const double b = t.elapsed_seconds();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

// ------------------------------------------------------------------- log

TEST(Log, LevelFiltering) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  log_debug("should be dropped (not crash)");
  log_error("visible at error level");
  set_log_level(old);
}

}  // namespace
