// Execution backends: SimBackend arithmetic (cross-checked against a real
// SimGpu run) and HostBackend wall-clock sanity.

#include <gtest/gtest.h>

#include <cstring>

#include "core/flops.hpp"
#include "core/host_backend.hpp"
#include "core/hybrid_backend.hpp"
#include "core/sweep.hpp"
#include "core/sim_backend.hpp"
#include "simgpu/device.hpp"
#include "sysprofile/profile.hpp"

namespace {

using namespace blob;
using namespace blob::core;

Problem square_gemm(std::int64_t s,
                    model::Precision p = model::Precision::F32) {
  Problem problem;
  problem.op = KernelOp::Gemm;
  problem.precision = p;
  problem.dims = {s, s, s};
  return problem;
}

Problem square_gemv(std::int64_t s,
                    model::Precision p = model::Precision::F32) {
  Problem problem;
  problem.op = KernelOp::Gemv;
  problem.precision = p;
  problem.dims = {s, s, 1};
  return problem;
}

TEST(SimBackend, CpuTimeScalesWithIterations) {
  SimBackend backend(profile::dawn(), 0.0);
  const auto p = square_gemv(512);
  const double one = backend.cpu_time(p, 1);
  const double ten = backend.cpu_time(p, 10);
  EXPECT_NEAR(ten, 10 * one, 1e-9 * ten);  // GEMV has no warm path
}

TEST(SimBackend, GemmWarmupMakesIterationsSublinear) {
  SimBackend backend(profile::dawn(), 0.0);
  const auto p = square_gemm(512);
  const double one = backend.cpu_time(p, 1);
  const double many = backend.cpu_time(p, 100);
  EXPECT_LT(many, 100 * one);
  EXPECT_GT(many, 50 * one);
}

TEST(SimBackend, TransferOnceAmortisesTransfers) {
  SimBackend backend(profile::dawn(), 0.0);
  const auto p = square_gemm(1024);
  const double once_1 = *backend.gpu_time(p, 1, TransferMode::Once);
  const double once_16 = *backend.gpu_time(p, 16, TransferMode::Once);
  const double always_16 = *backend.gpu_time(p, 16, TransferMode::Always);
  EXPECT_LT(once_16, 16 * once_1);      // transfers paid only once
  EXPECT_GT(always_16, once_16);        // always re-pays the link
  EXPECT_NEAR(always_16, 16 * *backend.gpu_time(p, 1, TransferMode::Always),
              1e-9 * always_16);
}

TEST(SimBackend, UsmXnackOffIsCatastrophic) {
  SimBackend on(profile::lumi(), 0.0);
  SimBackend off(profile::lumi_xnack_off(), 0.0);
  const auto p = square_gemm(2048);
  const double t_on = *on.gpu_time(p, 8, TransferMode::Usm);
  const double t_off = *off.gpu_time(p, 8, TransferMode::Usm);
  EXPECT_GT(t_off / t_on, 3.0);
}

TEST(SimBackend, NoiseIsReproduciblePerSeed) {
  SimBackend a(profile::dawn(), 0.1, 42);
  SimBackend b(profile::dawn(), 0.1, 42);
  SimBackend c(profile::dawn(), 0.1, 43);
  const auto p = square_gemm(256);
  EXPECT_DOUBLE_EQ(a.cpu_time(p, 4), b.cpu_time(p, 4));
  EXPECT_NE(a.cpu_time(p, 4), c.cpu_time(p, 4));
}

TEST(SimBackend, AgreesWithSimGpuDeviceTiming) {
  // The analytic Transfer-Once path must match what an actual SimGpu
  // stream accumulates for the same problem.
  const auto prof = profile::dawn();
  SimBackend backend(prof, 0.0);
  const int m = 64;
  const auto p = square_gemm(m, model::Precision::F32);
  const std::int64_t iters = 4;
  const double analytic = *backend.gpu_time(p, iters, TransferMode::Once);

  sim::SimGpu gpu(sim::SimGpu::Config{prof.gpu, prof.link, false, 0.0});
  const std::size_t mat_bytes = static_cast<std::size_t>(m) * m * 4;
  auto ha = gpu.alloc_host(mat_bytes);
  auto hb = gpu.alloc_host(mat_bytes);
  auto hc = gpu.alloc_host(mat_bytes);
  auto da = gpu.alloc_device(mat_bytes);
  auto db = gpu.alloc_device(mat_bytes);
  auto dc = gpu.alloc_device(mat_bytes);
  gpu.memcpy_h2d(da, ha, mat_bytes);
  gpu.memcpy_h2d(db, hb, mat_bytes);
  gpu.memcpy_h2d(dc, hc, mat_bytes);
  for (std::int64_t i = 0; i < iters; ++i) {
    gpu.gemm<float>(m, m, m, 1.0f, da, m, db, m, 0.0f, dc, m);
  }
  gpu.synchronize();
  gpu.memcpy_d2h(hc, dc, mat_bytes);
  EXPECT_NEAR(gpu.now(), analytic, 0.05 * analytic);
}

TEST(SimBackend, UsmPathAgreesWithSimGpuManagedRun) {
  const auto prof = profile::isambard_ai();
  SimBackend backend(prof, 0.0);
  const int m = 96;
  const auto p = square_gemm(m);
  const std::int64_t iters = 3;
  const double analytic = *backend.gpu_time(p, iters, TransferMode::Usm);

  sim::SimGpu gpu(sim::SimGpu::Config{prof.gpu, prof.link, false, 0.0});
  const std::size_t mat_bytes = static_cast<std::size_t>(m) * m * 4;
  auto a = gpu.alloc_managed(mat_bytes);
  auto b = gpu.alloc_managed(mat_bytes);
  auto c = gpu.alloc_managed(mat_bytes);
  for (std::int64_t i = 0; i < iters; ++i) {
    gpu.gemm<float>(m, m, m, 1.0f, a, m, b, m, 0.0f, c, m);
  }
  gpu.synchronize();
  gpu.host_access_managed(c);
  EXPECT_NEAR(gpu.now(), analytic, 0.05 * analytic);
}

TEST(SimBackend, NameMatchesProfile) {
  EXPECT_EQ(SimBackend(profile::lumi()).name(), "lumi");
}

// ---------------------------------------------------------- host backend

TEST(HostBackend, MeasuresRealGemmTime) {
  HostBackend backend(blas::single_thread_personality(), 1, 1);
  const auto p = square_gemm(64, model::Precision::F64);
  const double t = backend.cpu_time(p, 1);
  EXPECT_GT(t, 0.0);
  // 4x the iterations should take measurably longer (allow big slack for
  // noisy CI machines).
  const double t4 = backend.cpu_time(p, 8);
  EXPECT_GT(t4, t);
}

TEST(HostBackend, GemvAndGpuBehaviour) {
  HostBackend backend(blas::generic_personality(), 2, 1);
  const auto p = square_gemv(128);
  EXPECT_GT(backend.cpu_time(p, 2), 0.0);
  EXPECT_FALSE(backend.gpu_time(p, 1, TransferMode::Once).has_value());
  EXPECT_EQ(backend.name(), "host/generic");
}

TEST(HostBackend, RejectsHalfPrecision) {
  HostBackend backend(blas::generic_personality(), 1, 1);
  auto p = square_gemm(8);
  p.precision = model::Precision::F16;
  EXPECT_THROW(backend.cpu_time(p, 1), std::invalid_argument);
}

// --------------------------------------------------------- hybrid backend

TEST(HybridBackend, CombinesRealCpuWithSimulatedGpu) {
  HybridBackend backend(blas::single_thread_personality(),
                        profile::isambard_ai(), 1, 1);
  const auto p = square_gemm(64);
  // CPU side is a real measurement (positive wall time).
  EXPECT_GT(backend.cpu_time(p, 1), 0.0);
  // GPU side equals the noise-free SimBackend prediction exactly.
  SimBackend sim(profile::isambard_ai(), 0.0);
  for (auto mode : kTransferModes) {
    EXPECT_DOUBLE_EQ(*backend.gpu_time(p, 4, mode),
                     *sim.gpu_time(p, 4, mode));
  }
  EXPECT_EQ(backend.name(), "host/single-thread+sim:isambard-ai");
}

TEST(HybridBackend, RunsThroughTheSweepPipeline) {
  HybridBackend backend(blas::single_thread_personality(), profile::dawn(),
                        1, 1);
  SweepConfig cfg;
  cfg.s_max = 48;
  cfg.stride = 16;
  const auto r = run_sweep(backend, problem_type_by_id("gemm_square"), cfg);
  EXPECT_EQ(r.samples.size(), 3u);
  for (const auto& sample : r.samples) {
    EXPECT_TRUE(sample.has_gpu);
    EXPECT_GT(sample.cpu_seconds, 0.0);
  }
}

TEST(SimBackendBatched, BatchOneMatchesPlainPath) {
  SimBackend backend(profile::dawn(), 0.0);
  auto p = square_gemm(64);
  auto p_batched = p;
  p_batched.batch = 1;
  EXPECT_DOUBLE_EQ(backend.cpu_time(p, 4), backend.cpu_time(p_batched, 4));
  EXPECT_DOUBLE_EQ(*backend.gpu_time(p, 4, TransferMode::Once),
                   *backend.gpu_time(p_batched, 4, TransferMode::Once));
}

TEST(SimBackendBatched, BatchingHelpsSmallGemms) {
  SimBackend backend(profile::isambard_ai(), 0.0);
  auto p = square_gemm(16);
  auto batched = p;
  batched.batch = 128;
  // Per-matrix GPU time must drop with batching (one launch, better fill).
  const double single = *backend.gpu_time(p, 8, TransferMode::Once);
  const double per_matrix =
      *backend.gpu_time(batched, 8, TransferMode::Once) / 128.0;
  EXPECT_LT(per_matrix, single);
}

TEST(SimBackendBatched, FlopsAndBytesScaleWithBatch) {
  auto p = square_gemm(32);
  auto batched = p;
  batched.batch = 10;
  EXPECT_DOUBLE_EQ(problem_flops(batched), 10 * problem_flops(p));
  EXPECT_DOUBLE_EQ(h2d_bytes(batched), 10 * h2d_bytes(p));
  EXPECT_DOUBLE_EQ(d2h_bytes(batched), 10 * d2h_bytes(p));
  // Arithmetic intensity is batch-invariant.
  EXPECT_NEAR(arithmetic_intensity(batched), arithmetic_intensity(p), 1e-12);
}

TEST(SimBackendBatched, GemvIgnoresBatch) {
  SimBackend backend(profile::lumi(), 0.0);
  auto p = square_gemv(256);
  auto batched = p;
  batched.batch = 64;
  EXPECT_DOUBLE_EQ(backend.cpu_time(p, 2), backend.cpu_time(batched, 2));
  EXPECT_DOUBLE_EQ(problem_flops(p), problem_flops(batched));
}

}  // namespace
