// GPU simulator tests: memory spaces and accounting, stream timelines,
// DMA semantics, functional kernels, USM residency and migration costs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <sstream>

#include "blas/ref_blas.hpp"
#include "blas_test_util.hpp"
#include "simgpu/device.hpp"
#include "simgpu/memory.hpp"
#include "simgpu/stream.hpp"

namespace {

using namespace blob;
using namespace blob::sim;
using blob::test::random_vector;

SimGpu::Config test_config() {
  SimGpu::Config cfg;
  cfg.gpu.peak_gflops_f32 = 10000;
  cfg.gpu.peak_gflops_f64 = 5000;
  cfg.gpu.hbm_bw_gbs = 1000;
  cfg.gpu.launch_latency_s = 1e-5;
  cfg.gpu.min_kernel_s = 1e-6;
  cfg.link.latency_s = 1e-5;
  cfg.link.h2d_bw_gbs = 20.0;
  cfg.link.d2h_bw_gbs = 20.0;
  cfg.link.page_bytes = 4096;
  cfg.link.page_fault_latency_s = 1e-6;
  cfg.link.migration_bw_gbs = 10.0;
  return cfg;
}

// ---------------------------------------------------------------- memory

TEST(Memory, TrackerAccountsPerSpace) {
  MemoryTracker tracker;
  {
    Buffer device(MemKind::Device, 1000, &tracker);
    Buffer pinned(MemKind::HostPinned, 500, &tracker);
    EXPECT_EQ(tracker.current_bytes(MemKind::Device), 1000u);
    EXPECT_EQ(tracker.current_bytes(MemKind::HostPinned), 500u);
    EXPECT_EQ(tracker.live_allocations(MemKind::Device), 1u);
    {
      Buffer more(MemKind::Device, 3000, &tracker);
      EXPECT_EQ(tracker.current_bytes(MemKind::Device), 4000u);
      EXPECT_EQ(tracker.peak_bytes(MemKind::Device), 4000u);
    }
    EXPECT_EQ(tracker.current_bytes(MemKind::Device), 1000u);
    EXPECT_EQ(tracker.peak_bytes(MemKind::Device), 4000u);
  }
  EXPECT_EQ(tracker.current_bytes(MemKind::Device), 0u);
  EXPECT_EQ(tracker.live_allocations(MemKind::Device), 0u);
}

TEST(Memory, BufferIsZeroInitialised) {
  MemoryTracker tracker;
  Buffer b(MemKind::Device, 256, &tracker);
  const auto* bytes = b.as<unsigned char>();
  for (int i = 0; i < 256; ++i) ASSERT_EQ(bytes[i], 0);
}

TEST(Memory, MoveTransfersOwnership) {
  MemoryTracker tracker;
  Buffer a(MemKind::Managed, 128, &tracker);
  a.set_residency(Residency::Device);
  Buffer b = std::move(a);
  EXPECT_TRUE(b.valid());
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): intended
  EXPECT_EQ(b.residency(), Residency::Device);
  EXPECT_EQ(tracker.live_allocations(MemKind::Managed), 1u);
  Buffer c(MemKind::Managed, 64, &tracker);
  c = std::move(b);
  EXPECT_EQ(c.bytes(), 128u);
  EXPECT_EQ(tracker.current_bytes(MemKind::Managed), 128u);
}

TEST(Memory, KindNames) {
  EXPECT_STREQ(to_string(MemKind::Device), "device");
  EXPECT_STREQ(to_string(MemKind::Managed), "managed");
  EXPECT_STREQ(to_string(MemKind::HostPinned), "host-pinned");
  EXPECT_STREQ(to_string(MemKind::HostPageable), "host-pageable");
}

// ---------------------------------------------------------------- stream

TEST(Stream, TimelineAccumulates) {
  util::SimClock clock;
  Stream stream(&clock);
  EXPECT_TRUE(stream.idle());
  stream.enqueue(1.0);
  stream.enqueue(0.5);
  EXPECT_DOUBLE_EQ(stream.tail(), 1.5);
  EXPECT_FALSE(stream.idle());
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);  // host has not blocked yet
  stream.synchronize();
  EXPECT_DOUBLE_EQ(clock.now(), 1.5);
  EXPECT_TRUE(stream.idle());
  EXPECT_EQ(stream.ops_enqueued(), 2u);
}

TEST(Stream, WorkStartsNoEarlierThanSubmission) {
  util::SimClock clock;
  Stream stream(&clock);
  stream.enqueue(1.0);
  stream.synchronize();
  clock.advance(5.0);  // host does other work
  stream.enqueue(1.0);  // submitted at t=6.5... no: t=6.0
  EXPECT_DOUBLE_EQ(stream.tail(), 7.0);
}

TEST(Stream, RejectsNegativeDurations) {
  util::SimClock clock;
  Stream stream(&clock);
  EXPECT_THROW(stream.enqueue(-1.0), SimError);
}

TEST(Stream, EventsMeasureElapsed) {
  util::SimClock clock;
  Stream stream(&clock);
  Event start;
  Event stop;
  start.record(stream);
  stream.enqueue(2.5);
  stop.record(stream);
  EXPECT_DOUBLE_EQ(Event::elapsed_seconds(start, stop), 2.5);
  Event unrecorded;
  EXPECT_THROW(Event::elapsed_seconds(start, unrecorded), SimError);
}

// ---------------------------------------------------------------- device

TEST(Device, ExplicitCopiesMoveDataAndTime) {
  SimGpu gpu(test_config());
  auto host = gpu.alloc_host(1024);
  auto dev = gpu.alloc_device(1024);
  auto back = gpu.alloc_host(1024);
  std::memset(host.data(), 0xAB, 1024);

  const double t0 = gpu.now();
  gpu.memcpy_h2d(dev, host, 1024);
  EXPECT_GT(gpu.now(), t0);  // blocking copy advanced the host clock
  gpu.memcpy_d2h(back, dev, 1024);
  EXPECT_EQ(std::memcmp(back.data(), host.data(), 1024), 0);
}

TEST(Device, PinnedTransfersAreFaster) {
  SimGpu gpu_a(test_config());
  SimGpu gpu_b(test_config());
  auto pinned = gpu_a.alloc_host(1 << 20, true);
  auto pageable = gpu_b.alloc_host(1 << 20, false);
  auto da = gpu_a.alloc_device(1 << 20);
  auto db = gpu_b.alloc_device(1 << 20);
  gpu_a.memcpy_h2d(da, pinned, 1 << 20);
  gpu_b.memcpy_h2d(db, pageable, 1 << 20);
  EXPECT_LT(gpu_a.now(), gpu_b.now());
}

TEST(Device, CopyValidation) {
  SimGpu gpu(test_config());
  auto host = gpu.alloc_host(64);
  auto dev = gpu.alloc_device(64);
  auto dev2 = gpu.alloc_device(64);
  EXPECT_THROW(gpu.memcpy_h2d(host, host, 64), SimError);   // dst not device
  EXPECT_THROW(gpu.memcpy_h2d(dev, dev2, 64), SimError);    // src is device
  EXPECT_THROW(gpu.memcpy_h2d(dev, host, 128), SimError);   // too large
  EXPECT_THROW(gpu.memcpy_d2h(host, host, 64), SimError);   // src not device
}

TEST(Device, GemmExecutesFunctionally) {
  SimGpu gpu(test_config());
  const int m = 24, n = 18, k = 12;
  auto a_data = random_vector<float>(static_cast<std::size_t>(m) * k, 1);
  auto b_data = random_vector<float>(static_cast<std::size_t>(k) * n, 2);

  auto ha = gpu.alloc_host(a_data.size() * 4);
  auto hb = gpu.alloc_host(b_data.size() * 4);
  std::memcpy(ha.data(), a_data.data(), a_data.size() * 4);
  std::memcpy(hb.data(), b_data.data(), b_data.size() * 4);

  auto da = gpu.alloc_device(a_data.size() * 4);
  auto db = gpu.alloc_device(b_data.size() * 4);
  auto dc = gpu.alloc_device(static_cast<std::size_t>(m) * n * 4);
  gpu.memcpy_h2d(da, ha, a_data.size() * 4);
  gpu.memcpy_h2d(db, hb, b_data.size() * 4);
  gpu.gemm<float>(m, n, k, 1.0f, da, m, db, k, 0.0f, dc, m);
  gpu.synchronize();

  std::vector<float> expected(static_cast<std::size_t>(m) * n, 0.0f);
  blas::ref::gemm(blas::Transpose::No, blas::Transpose::No, m, n, k, 1.0f,
                  a_data.data(), m, b_data.data(), k, 0.0f, expected.data(),
                  m);
  auto hc = gpu.alloc_host(expected.size() * 4);
  gpu.memcpy_d2h(hc, dc, expected.size() * 4);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_NEAR(hc.as<float>()[i], expected[i], 1e-4);
  }
  EXPECT_EQ(gpu.kernels_launched(), 1u);
}

TEST(Device, KernelRejectsHostOperands) {
  SimGpu gpu(test_config());
  auto host = gpu.alloc_host(64 * 4);
  auto dev = gpu.alloc_device(64 * 4);
  EXPECT_THROW(gpu.gemm<float>(4, 4, 4, 1.0f, host, 4, dev, 4, 0.0f, dev, 4),
               SimError);
}

TEST(Device, TimingOnlyModeSkipsNumerics) {
  auto cfg = test_config();
  cfg.functional = false;
  SimGpu gpu(cfg);
  auto da = gpu.alloc_device(16 * 4);
  auto db = gpu.alloc_device(16 * 4);
  auto dc = gpu.alloc_device(16 * 4);
  const double t = gpu.gemm<float>(4, 4, 4, 1.0f, da, 4, db, 4, 0.0f, dc, 4);
  EXPECT_GT(t, 0.0);
  gpu.synchronize();
  for (int i = 0; i < 16; ++i) ASSERT_EQ(dc.as<float>()[i], 0.0f);
}

TEST(Device, FunctionalDimLimitSkipsLargeKernels) {
  auto cfg = test_config();
  cfg.functional_dim_limit = 8.0;
  SimGpu gpu(cfg);
  auto da = gpu.alloc_device(32 * 32 * 4);
  auto db = gpu.alloc_device(32 * 32 * 4);
  auto dc = gpu.alloc_device(32 * 32 * 4);
  // Fill inputs so a real execution would produce non-zero C.
  for (int i = 0; i < 32 * 32; ++i) da.as<float>()[i] = 1.0f;
  for (int i = 0; i < 32 * 32; ++i) db.as<float>()[i] = 1.0f;
  gpu.gemm<float>(32, 32, 32, 1.0f, da, 32, db, 32, 0.0f, dc, 32);
  EXPECT_EQ(dc.as<float>()[0], 0.0f);  // skipped: above the limit
  gpu.gemm<float>(8, 8, 8, 1.0f, da, 8, db, 8, 0.0f, dc, 8);
  EXPECT_EQ(dc.as<float>()[0], 8.0f);  // executed: at the limit
}

TEST(Device, TransferCountersAccumulate) {
  SimGpu gpu(test_config());
  auto host = gpu.alloc_host(4096);
  auto dev = gpu.alloc_device(4096);
  EXPECT_EQ(gpu.h2d_bytes_total(), 0u);
  gpu.memcpy_h2d(dev, host, 1000);
  gpu.memcpy_h2d(dev, host, 24);
  gpu.memcpy_d2h(host, dev, 512);
  gpu.memcpy_h2d_async(gpu.default_stream(), dev, host, 100);
  gpu.memcpy_d2h_async(gpu.default_stream(), host, dev, 200);
  gpu.synchronize();
  EXPECT_EQ(gpu.h2d_bytes_total(), 1124u);
  EXPECT_EQ(gpu.d2h_bytes_total(), 712u);
}

// -------------------------------------------------- async + multi-stream

TEST(Async, CopiesDoNotBlockTheHost) {
  SimGpu gpu(test_config());
  auto host = gpu.alloc_host(1 << 20);
  auto dev = gpu.alloc_device(1 << 20);
  const double t0 = gpu.now();
  const double done =
      gpu.memcpy_h2d_async(gpu.default_stream(), dev, host, 1 << 20);
  EXPECT_DOUBLE_EQ(gpu.now(), t0);  // host clock untouched
  EXPECT_GT(done, t0);
  gpu.synchronize();
  EXPECT_DOUBLE_EQ(gpu.now(), done);
}

TEST(Async, TwoStreamsOverlap) {
  // A copy on the transfer stream and a kernel on the default stream
  // must overlap: total = max, not sum.
  SimGpu gpu(test_config());
  Stream& copy_stream = gpu.create_stream("copies");
  auto host = gpu.alloc_host(1 << 22);
  auto staging = gpu.alloc_device(1 << 22);
  auto da = gpu.alloc_device(64 * 64 * 4);
  auto db = gpu.alloc_device(64 * 64 * 4);
  auto dc = gpu.alloc_device(64 * 64 * 4);

  const double copy_done =
      gpu.memcpy_h2d_async(copy_stream, staging, host, 1 << 22);
  const double kernel_done =
      gpu.gemm<float>(64, 64, 64, 1.0f, da, 64, db, 64, 0.0f, dc, 64);
  copy_stream.synchronize();
  gpu.synchronize();
  EXPECT_DOUBLE_EQ(gpu.now(), std::max(copy_done, kernel_done));
}

TEST(Async, StreamWaitOrdersAcrossStreams) {
  SimGpu gpu(test_config());
  Stream& producer = gpu.create_stream("producer");
  producer.enqueue(1.0, "produce");
  Event ready;
  ready.record(producer);

  Stream& consumer = gpu.create_stream("consumer");
  consumer.wait(ready);
  consumer.enqueue(0.5, "consume");
  EXPECT_DOUBLE_EQ(consumer.tail(), 1.5);  // starts only after the event

  Event unrecorded;
  EXPECT_THROW(consumer.wait(unrecorded), SimError);
}

TEST(Async, ValidationMirrorsSyncCopies) {
  SimGpu gpu(test_config());
  auto host = gpu.alloc_host(64);
  auto dev = gpu.alloc_device(64);
  EXPECT_THROW(gpu.memcpy_h2d_async(gpu.default_stream(), host, host, 64),
               SimError);
  EXPECT_THROW(gpu.memcpy_d2h_async(gpu.default_stream(), host, host, 64),
               SimError);
  EXPECT_THROW(gpu.memcpy_h2d_async(gpu.default_stream(), dev, host, 128),
               SimError);
}

TEST(Trace, RecordsOpsWithLabels) {
  auto cfg = test_config();
  cfg.trace = true;
  SimGpu gpu(cfg);
  auto host = gpu.alloc_host(4096);
  auto dev = gpu.alloc_device(4096);
  auto da = gpu.alloc_device(16 * 16 * 4);
  gpu.memcpy_h2d(dev, host, 4096);
  gpu.gemm<float>(16, 16, 16, 1.0f, da, 16, da, 16, 0.0f, da, 16);
  const auto& ops = gpu.trace().ops();
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0].label, "h2d");
  EXPECT_EQ(ops[1].label, "gemm");
  EXPECT_LE(ops[0].end, ops[1].start + 1e-15);
  EXPECT_GT(ops[0].end, ops[0].start);
}

TEST(Trace, DisabledByDefault) {
  SimGpu gpu(test_config());
  auto host = gpu.alloc_host(64);
  auto dev = gpu.alloc_device(64);
  gpu.memcpy_h2d(dev, host, 64);
  EXPECT_TRUE(gpu.trace().ops().empty());
}

TEST(Trace, ChromeExportIsWellFormed) {
  std::vector<OpRecord> ops = {
      {"default", "h2d", 0.0, 1e-4},
      {"default", "gemm", 1e-4, 5e-4},
  };
  std::ostringstream out;
  write_chrome_trace(out, ops);
  const std::string json = out.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"name\": \"gemm\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\": \"default\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 400.000"), std::string::npos);
  // Exactly one comma between the two records.
  EXPECT_EQ(std::count(json.begin(), json.end(), ','),
            1 + 2 * 6);  // 6 fields per record + 1 record separator
}

TEST(Device, StridedBatchedGemmComputesAndAmortises) {
  SimGpu gpu(test_config());
  const int s = 8, batch = 16;
  const std::int64_t stride = static_cast<std::int64_t>(s) * s;
  const std::size_t bytes = static_cast<std::size_t>(stride) * batch * 4;
  auto da = gpu.alloc_device(bytes);
  auto db = gpu.alloc_device(bytes);
  auto dc = gpu.alloc_device(bytes);
  for (std::size_t i = 0; i < static_cast<std::size_t>(stride) * batch; ++i) {
    da.as<float>()[i] = 1.0f;
    db.as<float>()[i] = 2.0f;
  }
  const double batched_t = gpu.gemm_strided_batched<float>(
      s, s, s, 1.0f, da, s, stride, db, s, stride, 0.0f, dc, s, stride,
      batch);
  gpu.synchronize();
  // Every problem in the batch computed: C = 1*2 summed over k=8 -> 16.
  for (int i = 0; i < batch; ++i) {
    ASSERT_FLOAT_EQ(dc.as<float>()[static_cast<std::size_t>(i) * stride],
                    16.0f);
  }
  // One launch for the whole batch beats `batch` individual launches.
  SimGpu gpu2(test_config());
  auto ea = gpu2.alloc_device(bytes);
  auto eb = gpu2.alloc_device(bytes);
  auto ec = gpu2.alloc_device(bytes);
  double individually = 0.0;
  for (int i = 0; i < batch; ++i) {
    individually += gpu2.gemm<float>(s, s, s, 1.0f, ea, s, eb, s, 0.0f, ec,
                                     s);
  }
  EXPECT_LT(batched_t, individually / 2);
  EXPECT_EQ(gpu.kernels_launched(), 1u);
}

TEST(Device, StridedBatchedValidatesArguments) {
  SimGpu gpu(test_config());
  auto da = gpu.alloc_device(64 * 4);
  auto host = gpu.alloc_host(64 * 4);
  EXPECT_THROW(gpu.gemm_strided_batched<float>(4, 4, 4, 1.0f, da, 4, 16, da,
                                               4, 16, 0.0f, da, 4, 16, 0),
               SimError);
  EXPECT_THROW(gpu.gemm_strided_batched<float>(4, 4, 4, 1.0f, da, 4, 16, da,
                                               4, 16, 0.0f, da, 4, 16, 100),
               SimError);  // strides exceed the buffer
  EXPECT_THROW(
      gpu.gemm_strided_batched<float>(4, 4, 4, 1.0f, host, 4, 16, da, 4, 16,
                                      0.0f, da, 4, 16, 1),
      SimError);
}

// ------------------------------------------------------------------- usm

TEST(Usm, FirstTouchMigratesThenResident) {
  SimGpu gpu(test_config());
  const std::size_t bytes = 64 * 4;
  auto a = gpu.alloc_managed(bytes);
  auto x = gpu.alloc_managed(bytes);
  auto y = gpu.alloc_managed(bytes);
  EXPECT_EQ(a.residency(), Residency::Host);

  const double t1 = gpu.gemv<float>(8, 8, 1.0f, a, 8, x, 0.0f, y);
  EXPECT_EQ(a.residency(), Residency::Device);
  EXPECT_TRUE(y.device_dirty());

  const double t2 = gpu.gemv<float>(8, 8, 1.0f, a, 8, x, 0.0f, y);
  EXPECT_LT(t2, t1);  // second kernel pays no migration
}

TEST(Usm, HostAccessWritesBack) {
  SimGpu gpu(test_config());
  auto y = gpu.alloc_managed(1 << 16);
  auto a = gpu.alloc_managed(1 << 16);
  auto x = gpu.alloc_managed(1 << 16);
  gpu.gemv<float>(64, 64, 1.0f, a, 64, x, 0.0f, y);
  gpu.synchronize();
  const double before = gpu.now();
  gpu.host_access_managed(y);
  EXPECT_GT(gpu.now(), before);  // write-back migration cost
  EXPECT_EQ(y.residency(), Residency::Host);
  EXPECT_FALSE(y.device_dirty());
  // Second host access is free.
  const double after = gpu.now();
  gpu.host_access_managed(y);
  EXPECT_DOUBLE_EQ(gpu.now(), after);
}

TEST(Usm, XnackOffChargesEveryKernel) {
  auto cfg = test_config();
  cfg.link.xnack = false;
  SimGpu gpu(cfg);
  auto a = gpu.alloc_managed(1 << 16);
  auto x = gpu.alloc_managed(1 << 16);
  auto y = gpu.alloc_managed(1 << 16);
  const double t1 = gpu.gemv<float>(64, 64, 1.0f, a, 64, x, 0.0f, y);
  const double t2 = gpu.gemv<float>(64, 64, 1.0f, a, 64, x, 0.0f, y);
  EXPECT_NEAR(t1, t2, 1e-12);  // no residency: same remote cost each time
  EXPECT_EQ(a.residency(), Residency::Host);
}

TEST(Usm, ResetManagedClearsState) {
  SimGpu gpu(test_config());
  auto a = gpu.alloc_managed(4096);
  a.set_residency(Residency::Device);
  a.set_device_dirty(true);
  SimGpu::reset_managed(a);
  EXPECT_EQ(a.residency(), Residency::Host);
  EXPECT_FALSE(a.device_dirty());
}

}  // namespace
