// Offload-threshold detector (paper §III-D).

#include <gtest/gtest.h>

#include <vector>

#include "core/threshold.hpp"

namespace {

using namespace blob::core;

ThresholdSample sample(std::int64_t s, double cpu, double gpu) {
  return ThresholdSample{s, Dims{s, s, s}, cpu, gpu};
}

TEST(Threshold, EmptyInputHasNoThreshold) {
  EXPECT_FALSE(detect_threshold({}).has_value());
}

TEST(Threshold, GpuAlwaysWinsFromFirstSample) {
  std::vector<ThresholdSample> samples;
  for (int s = 1; s <= 10; ++s) samples.push_back(sample(s, 2.0, 1.0));
  const auto t = detect_threshold(samples);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->s, 1);
}

TEST(Threshold, GpuNeverWins) {
  std::vector<ThresholdSample> samples;
  for (int s = 1; s <= 10; ++s) samples.push_back(sample(s, 1.0, 2.0));
  EXPECT_FALSE(detect_threshold(samples).has_value());
}

TEST(Threshold, TieGoesToCpu) {
  // Strictly-better semantics: equal times do not count as a GPU win.
  std::vector<ThresholdSample> samples = {sample(1, 1.0, 1.0),
                                          sample(2, 1.0, 1.0)};
  EXPECT_FALSE(detect_threshold(samples).has_value());
}

TEST(Threshold, SimpleCrossover) {
  std::vector<ThresholdSample> samples;
  for (int s = 1; s <= 20; ++s) {
    samples.push_back(sample(s, static_cast<double>(s), 10.0));
  }
  const auto t = detect_threshold(samples);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->s, 11);  // first size where s > 10
  EXPECT_EQ(t->dims.m, 11);
}

TEST(Threshold, IsolatedDipIsTolerated) {
  // GPU wins from s=5 except for one momentary dip at s=12.
  std::vector<ThresholdSample> samples;
  for (int s = 1; s <= 20; ++s) {
    const double gpu = (s >= 5 && s != 12) ? 1.0 : 3.0;
    samples.push_back(sample(s, 2.0, gpu));
  }
  const auto t = detect_threshold(samples);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->s, 5);
}

TEST(Threshold, ConsecutiveDipsResetTheThreshold) {
  std::vector<ThresholdSample> samples;
  for (int s = 1; s <= 20; ++s) {
    const double gpu = (s >= 5 && s != 12 && s != 13) ? 1.0 : 3.0;
    samples.push_back(sample(s, 2.0, gpu));
  }
  const auto t = detect_threshold(samples);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->s, 14);  // the double dip is a real loss
}

TEST(Threshold, TrailingLossKillsTheThreshold) {
  // A dip at the final sample cannot be confirmed as momentary.
  std::vector<ThresholdSample> samples;
  for (int s = 1; s <= 10; ++s) {
    const double gpu = s == 10 ? 3.0 : 1.0;
    samples.push_back(sample(s, 2.0, gpu));
  }
  EXPECT_FALSE(detect_threshold(samples).has_value());
}

TEST(Threshold, MidSweepWindowWithoutPersistenceDoesNotCount) {
  // The paper's Fig. 4 caveat: a GPU-favourable window that the CPU
  // recovers from must not produce a threshold.
  std::vector<ThresholdSample> samples;
  for (int s = 1; s <= 30; ++s) {
    const double gpu = (s >= 10 && s <= 20) ? 1.0 : 3.0;
    samples.push_back(sample(s, 2.0, gpu));
  }
  EXPECT_FALSE(detect_threshold(samples).has_value());
}

TEST(Threshold, LastSampleOnlyWin) {
  std::vector<ThresholdSample> samples;
  for (int s = 1; s <= 10; ++s) {
    samples.push_back(sample(s, 2.0, s == 10 ? 1.0 : 3.0));
  }
  const auto t = detect_threshold(samples);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->s, 10);
}

TEST(Threshold, SingleSample) {
  EXPECT_TRUE(detect_threshold({{sample(3, 2.0, 1.0)}}).has_value());
  EXPECT_FALSE(detect_threshold({{sample(3, 1.0, 2.0)}}).has_value());
}

TEST(Threshold, DipAtSecondToLastToleratedIfFlanked) {
  std::vector<ThresholdSample> samples;
  for (int s = 1; s <= 10; ++s) {
    samples.push_back(sample(s, 2.0, s == 9 ? 3.0 : 1.0));
  }
  const auto t = detect_threshold(samples);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->s, 1);
}

TEST(Threshold, StringRendering) {
  OffloadThreshold t;
  t.s = 629;
  t.dims = {629, 629, 629};
  EXPECT_EQ(threshold_to_string(t, false), "{629, 629, 629}");
  EXPECT_EQ(threshold_to_string(t, true), "{629, 629}");
  EXPECT_EQ(threshold_to_string(std::nullopt, false), "--");
  EXPECT_EQ(threshold_value_string(t), "629");
  EXPECT_EQ(threshold_value_string(std::nullopt), "--");
}

TEST(Threshold, NonSquareDimsReported) {
  std::vector<ThresholdSample> samples;
  for (int s = 1; s <= 5; ++s) {
    samples.push_back(
        ThresholdSample{s, Dims{16 * s, s, 1}, 2.0, 1.0});
  }
  const auto t = detect_threshold(samples);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->dims.m, 16);
  EXPECT_EQ(t->dims.n, 1);
}

}  // namespace
