// Admission queue: multi-threaded submission with correct results,
// same-shape coalescing into gemm_batched / gemv_batched, and transfer/
// compute overlap between GPU-routed jobs and CPU work drained in the
// same cycle.

#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

#include "blas/ref_blas.hpp"
#include "blas_test_util.hpp"
#include "dispatch/admission_queue.hpp"
#include "dispatch/dispatcher.hpp"

namespace {

using namespace blob;
using blob::test::random_vector;

// One GEMM call's operands, kept alive until its future resolves and
// checkable against the reference kernels afterwards.
template <typename T>
struct GemmCall {
  int m, n, k;
  std::vector<T> a, b, c, expected;

  GemmCall(int m_, int n_, int k_, int seed) : m(m_), n(n_), k(k_) {
    a = random_vector<T>(static_cast<std::size_t>(m) * k, seed);
    b = random_vector<T>(static_cast<std::size_t>(k) * n, seed + 1);
    c = random_vector<T>(static_cast<std::size_t>(m) * n, seed + 2);
    expected = c;
    blas::ref::gemm(blas::Transpose::No, blas::Transpose::No, m, n, k, T(1),
                    a.data(), m, b.data(), k, T(0), expected.data(), m);
  }

  std::future<void> submit(dispatch::AdmissionQueue& queue) {
    return queue.submit_gemm<T>(blas::Transpose::No, blas::Transpose::No, m,
                                n, k, T(1), a.data(), m, b.data(), k, T(0),
                                c.data(), m);
  }
};

TEST(DispatchQueue, MultiThreadedStressProducesCorrectResults) {
  dispatch::DispatcherConfig cfg;
  cfg.profile = profile::dawn();
  cfg.cpu_threads = 2;
  dispatch::Dispatcher disp(cfg);
  dispatch::AdmissionQueueConfig qcfg;
  qcfg.max_drain = 64;
  qcfg.coalesce_min = 3;
  qcfg.coalesce_max_dim = 64;
  dispatch::AdmissionQueue queue(disp, qcfg);

  // A mid-size plug occupies the worker while the client threads flood
  // the queue, so later drain cycles see a full coalescing window.
  GemmCall<double> plug(256, 256, 256, 1);
  auto plug_future = plug.submit(queue);

  constexpr int kThreads = 4;
  constexpr int kSmall = 10;  // same-shape 32^3 -> coalescible
  constexpr int kMid = 3;     // 160^3 f64 -> per-call routing
  std::vector<std::vector<GemmCall<float>>> smalls(kThreads);
  std::vector<std::vector<GemmCall<double>>> mids(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    smalls[t].reserve(kSmall);
    mids[t].reserve(kMid);
    for (int i = 0; i < kSmall; ++i) {
      smalls[t].emplace_back(32, 32, 32, 100 + t * 50 + i);
    }
    for (int i = 0; i < kMid; ++i) {
      mids[t].emplace_back(160, 160, 160, 500 + t * 50 + i);
    }
  }

  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      std::vector<std::future<void>> futures;
      for (auto& call : smalls[t]) futures.push_back(call.submit(queue));
      for (auto& call : mids[t]) futures.push_back(call.submit(queue));
      for (auto& f : futures) f.get();
    });
  }
  for (auto& c : clients) c.join();
  plug_future.get();
  queue.flush();

  const std::uint64_t total = 1 + kThreads * (kSmall + kMid);
  EXPECT_EQ(queue.submitted(), total);
  EXPECT_EQ(queue.completed(), total);

  test::expect_near_rel(plug.c, plug.expected, 1e-10);
  for (int t = 0; t < kThreads; ++t) {
    for (auto& call : smalls[t]) {
      test::expect_near_rel(call.c, call.expected, 1e-4);
    }
    for (auto& call : mids[t]) {
      test::expect_near_rel(call.c, call.expected, 1e-10);
    }
  }

  const auto stats = disp.stats();
  EXPECT_EQ(stats.calls, total);
  // The 40 same-shape 32^3 GEMMs cannot all have been drained in
  // sub-coalesce_min dribbles with the plug holding the worker.
  EXPECT_GE(stats.coalesced_batches, 1u);
  EXPECT_GE(stats.batched_routed, static_cast<std::uint64_t>(qcfg.coalesce_min));
  EXPECT_EQ(stats.cpu_routed + stats.gpu_routed + stats.batched_routed,
            total);
}

TEST(DispatchQueue, GpuJobsOverlapWithCpuWorkInTheSameCycle) {
  // isambard-ai's modelled GPU wins from small sizes up, so mid GEMMs
  // route to the simulated device at cold start while the coalesced
  // small batch runs on the CPU — the queue must join the GPU jobs after
  // that CPU work (cudaMemcpyAsync-style overlap).
  dispatch::DispatcherConfig cfg;
  cfg.profile = profile::by_name("isambard-ai");
  cfg.cpu_threads = 2;
  dispatch::Dispatcher disp(cfg);

  const core::OpDesc mid = core::OpDesc::gemm(
      model::Precision::F32, blas::Transpose::No, blas::Transpose::No, 224,
      224, 224, 0, 0, 0, /*alpha_one=*/true, /*beta_zero=*/true, cfg.mode);
  ASSERT_EQ(disp.oracle_route(mid), dispatch::Route::Gpu)
      << "test premise: 224^3 f32 offloads on isambard-ai";

  dispatch::AdmissionQueueConfig qcfg;
  qcfg.max_drain = 64;
  qcfg.coalesce_min = 3;
  qcfg.coalesce_max_dim = 64;
  dispatch::AdmissionQueue queue(disp, qcfg);

  GemmCall<double> plug(224, 224, 224, 7);
  auto plug_future = plug.submit(queue);

  std::vector<GemmCall<float>> gpu_calls;
  std::vector<GemmCall<float>> small_calls;
  for (int i = 0; i < 4; ++i) gpu_calls.emplace_back(224, 224, 224, 20 + i);
  for (int i = 0; i < 8; ++i) small_calls.emplace_back(32, 32, 32, 40 + i);

  std::vector<std::future<void>> futures;
  for (auto& call : gpu_calls) futures.push_back(call.submit(queue));
  for (auto& call : small_calls) futures.push_back(call.submit(queue));
  plug_future.get();
  for (auto& f : futures) f.get();
  queue.flush();

  test::expect_near_rel(plug.c, plug.expected, 1e-10);
  for (auto& call : gpu_calls) {
    test::expect_near_rel(call.c, call.expected, 1e-3);
  }
  for (auto& call : small_calls) {
    test::expect_near_rel(call.c, call.expected, 1e-4);
  }

  const auto stats = disp.stats();
  EXPECT_GE(stats.gpu_routed, 4u);
  EXPECT_GE(stats.overlapped_gpu_calls, 1u);
  EXPECT_GE(stats.gpu_ops_enqueued, 4u * 5u);  // 4 uploads + kernel per call
  // Virtual time advanced on the simulated device while real results
  // landed in the client buffers.
  EXPECT_GT(disp.virtual_now(), 0.0);
}

// One GEMV call's operands, analogous to GemmCall.
template <typename T>
struct GemvCall {
  blas::Transpose ta;
  int m, n, incx, incy;
  std::vector<T> a, x, y, expected;

  GemvCall(blas::Transpose ta_, int m_, int n_, int seed, int incx_ = 1,
           int incy_ = 1)
      : ta(ta_), m(m_), n(n_), incx(incx_), incy(incy_) {
    const int x_len = ta == blas::Transpose::No ? n : m;
    const int y_len = ta == blas::Transpose::No ? m : n;
    a = random_vector<T>(static_cast<std::size_t>(m) * n, seed);
    x = random_vector<T>(static_cast<std::size_t>(x_len) * std::abs(incx),
                         seed + 1);
    y = random_vector<T>(static_cast<std::size_t>(y_len) * std::abs(incy),
                         seed + 2);
    expected = y;
    blas::ref::gemv(ta, m, n, T(1), a.data(), m, x.data(), incx, T(0),
                    expected.data(), incy);
  }

  std::future<void> submit(dispatch::AdmissionQueue& queue) {
    return queue.submit_gemv<T>(ta, m, n, T(1), a.data(), m, x.data(), incx,
                                T(0), y.data(), incy);
  }
};

TEST(DispatchQueue, SmallGemvFloodCoalescesIntoBatched) {
  dispatch::DispatcherConfig cfg;
  cfg.profile = profile::dawn();
  cfg.cpu_threads = 2;
  dispatch::Dispatcher disp(cfg);
  dispatch::AdmissionQueueConfig qcfg;
  qcfg.max_drain = 64;
  qcfg.coalesce_min = 3;
  qcfg.coalesce_max_dim = 64;
  dispatch::AdmissionQueue queue(disp, qcfg);

  // Two same-shape groups (one per transpose) of unit-stride small GEMVs:
  // everything is device-legal, so nothing may be Reason::Forced — the
  // flood must be absorbed by gemv_batched coalescing instead. All calls
  // are constructed BEFORE the plug is submitted so the flood's pushes
  // are back-to-back while the plug still occupies the worker.
  std::vector<GemvCall<float>> no_trans;
  std::vector<GemvCall<double>> trans;
  for (int i = 0; i < 12; ++i) {
    no_trans.emplace_back(blas::Transpose::No, 48, 48, 600 + 3 * i);
  }
  for (int i = 0; i < 8; ++i) {
    trans.emplace_back(blas::Transpose::Yes, 40, 56, 700 + 3 * i);
  }

  // The plug occupies the worker so the flood lands in one window. It
  // must be a call the worker EXECUTES on the CPU for real wall-clock
  // time: a GEMM could be routed to the simulated device, where the
  // worker merely enqueues and moves on in microseconds. A large
  // strided GEMV is deterministically Forced onto the CPU (non-unit
  // increments are device-illegal) and streams a ~32 MB matrix.
  GemvCall<double> plug(blas::Transpose::No, 2000, 2000, 11,
                        /*incx=*/2, /*incy=*/3);
  auto plug_future = plug.submit(queue);

  std::vector<std::future<void>> futures;
  for (auto& call : no_trans) futures.push_back(call.submit(queue));
  for (auto& call : trans) futures.push_back(call.submit(queue));
  plug_future.get();
  for (auto& f : futures) f.get();
  queue.flush();

  // Results are numerically identical to serial reference execution
  // whichever internal path (coalesced batch, CPU, simulated GPU) ran.
  test::expect_near_rel(plug.y, plug.expected, 1e-10);
  for (auto& call : no_trans) {
    test::expect_near_rel(call.y, call.expected, 1e-4);
  }
  for (auto& call : trans) {
    test::expect_near_rel(call.y, call.expected, 1e-10);
  }

  const auto stats = disp.stats();
  EXPECT_EQ(stats.gemv_calls + stats.gemm_calls, 21u);
  EXPECT_GE(stats.coalesced_batches, 1u);
  EXPECT_GE(stats.batched_routed,
            static_cast<std::uint64_t>(qcfg.coalesce_min));
  EXPECT_EQ(stats.forced_cpu, 1u)
      << "only the strided plug may be Reason::Forced; unit-stride "
         "GEMVs must never be";
}

TEST(DispatchQueue, StridedGemvsCoalesceByIncrementGroup) {
  // Strided vectors are illegal on the simulated device (Reason::Forced
  // when routed per-call) but perfectly coalescible — the batched CPU
  // primitive stages them. A flood of same-stride GEMVs must batch.
  dispatch::DispatcherConfig cfg;
  cfg.profile = profile::dawn();
  cfg.cpu_threads = 2;
  dispatch::Dispatcher disp(cfg);
  dispatch::AdmissionQueueConfig qcfg;
  qcfg.max_drain = 64;
  qcfg.coalesce_min = 3;
  qcfg.coalesce_max_dim = 64;
  dispatch::AdmissionQueue queue(disp, qcfg);

  // Construct everything before any submission: call setup runs a
  // reference GEMV each, and doing that between the plug's submission
  // and the flood's would let the worker drain the flood in dribbles.
  std::vector<GemvCall<double>> strided;
  for (int i = 0; i < 10; ++i) {
    strided.emplace_back(blas::Transpose::No, 32, 48, 800 + 3 * i,
                         /*incx=*/2, /*incy=*/3);
  }
  // Same plug trick as above: a large strided GEMV is deterministically
  // CPU-executed, so the worker is genuinely busy while the flood lands.
  GemvCall<double> plug(blas::Transpose::No, 2000, 2000, 13,
                        /*incx=*/2, /*incy=*/3);
  auto plug_future = plug.submit(queue);

  std::vector<std::future<void>> futures;
  for (auto& call : strided) futures.push_back(call.submit(queue));
  plug_future.get();
  for (auto& f : futures) f.get();
  queue.flush();

  test::expect_near_rel(plug.y, plug.expected, 1e-10);
  for (auto& call : strided) {
    test::expect_near_rel(call.y, call.expected, 1e-10);
  }
  const auto stats = disp.stats();
  EXPECT_GE(stats.coalesced_batches, 1u);
  EXPECT_GE(stats.batched_routed,
            static_cast<std::uint64_t>(qcfg.coalesce_min));
}

TEST(DispatchQueue, SubmitAfterStopThrows) {
  dispatch::DispatcherConfig cfg;
  cfg.profile = profile::dawn();
  cfg.cpu_threads = 1;
  dispatch::Dispatcher disp(cfg);
  dispatch::AdmissionQueue queue(disp);
  GemmCall<float> call(16, 16, 16, 3);
  call.submit(queue).get();
  queue.stop();
  EXPECT_THROW(call.submit(queue), std::runtime_error);
  EXPECT_EQ(queue.completed(), 1u);
}

}  // namespace
