// Admission queue: multi-threaded submission with correct results,
// same-shape coalescing into gemm_batched, and transfer/compute overlap
// between GPU-routed jobs and CPU work drained in the same cycle.

#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

#include "blas/ref_blas.hpp"
#include "blas_test_util.hpp"
#include "dispatch/admission_queue.hpp"
#include "dispatch/dispatcher.hpp"

namespace {

using namespace blob;
using blob::test::random_vector;

// One GEMM call's operands, kept alive until its future resolves and
// checkable against the reference kernels afterwards.
template <typename T>
struct GemmCall {
  int m, n, k;
  std::vector<T> a, b, c, expected;

  GemmCall(int m_, int n_, int k_, int seed) : m(m_), n(n_), k(k_) {
    a = random_vector<T>(static_cast<std::size_t>(m) * k, seed);
    b = random_vector<T>(static_cast<std::size_t>(k) * n, seed + 1);
    c = random_vector<T>(static_cast<std::size_t>(m) * n, seed + 2);
    expected = c;
    blas::ref::gemm(blas::Transpose::No, blas::Transpose::No, m, n, k, T(1),
                    a.data(), m, b.data(), k, T(0), expected.data(), m);
  }

  std::future<void> submit(dispatch::AdmissionQueue& queue) {
    return queue.submit_gemm<T>(blas::Transpose::No, blas::Transpose::No, m,
                                n, k, T(1), a.data(), m, b.data(), k, T(0),
                                c.data(), m);
  }
};

TEST(DispatchQueue, MultiThreadedStressProducesCorrectResults) {
  dispatch::DispatcherConfig cfg;
  cfg.profile = profile::dawn();
  cfg.cpu_threads = 2;
  dispatch::Dispatcher disp(cfg);
  dispatch::AdmissionQueueConfig qcfg;
  qcfg.max_drain = 64;
  qcfg.coalesce_min = 3;
  qcfg.coalesce_max_dim = 64;
  dispatch::AdmissionQueue queue(disp, qcfg);

  // A mid-size plug occupies the worker while the client threads flood
  // the queue, so later drain cycles see a full coalescing window.
  GemmCall<double> plug(256, 256, 256, 1);
  auto plug_future = plug.submit(queue);

  constexpr int kThreads = 4;
  constexpr int kSmall = 10;  // same-shape 32^3 -> coalescible
  constexpr int kMid = 3;     // 160^3 f64 -> per-call routing
  std::vector<std::vector<GemmCall<float>>> smalls(kThreads);
  std::vector<std::vector<GemmCall<double>>> mids(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    smalls[t].reserve(kSmall);
    mids[t].reserve(kMid);
    for (int i = 0; i < kSmall; ++i) {
      smalls[t].emplace_back(32, 32, 32, 100 + t * 50 + i);
    }
    for (int i = 0; i < kMid; ++i) {
      mids[t].emplace_back(160, 160, 160, 500 + t * 50 + i);
    }
  }

  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      std::vector<std::future<void>> futures;
      for (auto& call : smalls[t]) futures.push_back(call.submit(queue));
      for (auto& call : mids[t]) futures.push_back(call.submit(queue));
      for (auto& f : futures) f.get();
    });
  }
  for (auto& c : clients) c.join();
  plug_future.get();
  queue.flush();

  const std::uint64_t total = 1 + kThreads * (kSmall + kMid);
  EXPECT_EQ(queue.submitted(), total);
  EXPECT_EQ(queue.completed(), total);

  test::expect_near_rel(plug.c, plug.expected, 1e-10);
  for (int t = 0; t < kThreads; ++t) {
    for (auto& call : smalls[t]) {
      test::expect_near_rel(call.c, call.expected, 1e-4);
    }
    for (auto& call : mids[t]) {
      test::expect_near_rel(call.c, call.expected, 1e-10);
    }
  }

  const auto stats = disp.stats();
  EXPECT_EQ(stats.calls, total);
  // The 40 same-shape 32^3 GEMMs cannot all have been drained in
  // sub-coalesce_min dribbles with the plug holding the worker.
  EXPECT_GE(stats.coalesced_batches, 1u);
  EXPECT_GE(stats.batched_routed, static_cast<std::uint64_t>(qcfg.coalesce_min));
  EXPECT_EQ(stats.cpu_routed + stats.gpu_routed + stats.batched_routed,
            total);
}

TEST(DispatchQueue, GpuJobsOverlapWithCpuWorkInTheSameCycle) {
  // isambard-ai's modelled GPU wins from small sizes up, so mid GEMMs
  // route to the simulated device at cold start while the coalesced
  // small batch runs on the CPU — the queue must join the GPU jobs after
  // that CPU work (cudaMemcpyAsync-style overlap).
  dispatch::DispatcherConfig cfg;
  cfg.profile = profile::by_name("isambard-ai");
  cfg.cpu_threads = 2;
  dispatch::Dispatcher disp(cfg);

  const core::OpDesc mid = core::OpDesc::gemm(
      model::Precision::F32, blas::Transpose::No, blas::Transpose::No, 224,
      224, 224, 0, 0, 0, /*alpha_one=*/true, /*beta_zero=*/true, cfg.mode);
  ASSERT_EQ(disp.oracle_route(mid), dispatch::Route::Gpu)
      << "test premise: 224^3 f32 offloads on isambard-ai";

  dispatch::AdmissionQueueConfig qcfg;
  qcfg.max_drain = 64;
  qcfg.coalesce_min = 3;
  qcfg.coalesce_max_dim = 64;
  dispatch::AdmissionQueue queue(disp, qcfg);

  GemmCall<double> plug(224, 224, 224, 7);
  auto plug_future = plug.submit(queue);

  std::vector<GemmCall<float>> gpu_calls;
  std::vector<GemmCall<float>> small_calls;
  for (int i = 0; i < 4; ++i) gpu_calls.emplace_back(224, 224, 224, 20 + i);
  for (int i = 0; i < 8; ++i) small_calls.emplace_back(32, 32, 32, 40 + i);

  std::vector<std::future<void>> futures;
  for (auto& call : gpu_calls) futures.push_back(call.submit(queue));
  for (auto& call : small_calls) futures.push_back(call.submit(queue));
  plug_future.get();
  for (auto& f : futures) f.get();
  queue.flush();

  test::expect_near_rel(plug.c, plug.expected, 1e-10);
  for (auto& call : gpu_calls) {
    test::expect_near_rel(call.c, call.expected, 1e-3);
  }
  for (auto& call : small_calls) {
    test::expect_near_rel(call.c, call.expected, 1e-4);
  }

  const auto stats = disp.stats();
  EXPECT_GE(stats.gpu_routed, 4u);
  EXPECT_GE(stats.overlapped_gpu_calls, 1u);
  EXPECT_GE(stats.gpu_ops_enqueued, 4u * 5u);  // 4 uploads + kernel per call
  // Virtual time advanced on the simulated device while real results
  // landed in the client buffers.
  EXPECT_GT(disp.virtual_now(), 0.0);
}

TEST(DispatchQueue, SubmitAfterStopThrows) {
  dispatch::DispatcherConfig cfg;
  cfg.profile = profile::dawn();
  cfg.cpu_threads = 1;
  dispatch::Dispatcher disp(cfg);
  dispatch::AdmissionQueue queue(disp);
  GemmCall<float> call(16, 16, 16, 3);
  call.submit(queue).get();
  queue.stop();
  EXPECT_THROW(call.submit(queue), std::runtime_error);
  EXPECT_EQ(queue.completed(), 1u);
}

}  // namespace
