// LU and Cholesky factorizations built on the BLAS, plus the dispatcher
// routing property: a factorization whose trailing updates flow through
// the offload dispatcher must reproduce the hook-free result bitwise and
// move strictly fewer modelled H2D bytes than a Transfer-Always run.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "blas/gemm.hpp"
#include "blas/library.hpp"
#include "blas/ref_blas.hpp"
#include "blas_test_util.hpp"
#include "dispatch/dispatcher.hpp"
#include "lapack/geqrf.hpp"
#include "lapack/getrf.hpp"
#include "lapack/potrf.hpp"
#include "sysprofile/profile.hpp"

namespace {

using namespace blob;
using blob::test::random_vector;

/// Reconstruct P * A from LU factors and pivots: apply L * U then undo
/// the row interchanges in reverse.
template <typename T>
std::vector<T> reconstruct_from_lu(int n, const std::vector<T>& lu,
                                   const std::vector<int>& ipiv) {
  // Dense L (unit diagonal) and U from the packed factor.
  std::vector<T> l(static_cast<std::size_t>(n) * n, T(0));
  std::vector<T> u(static_cast<std::size_t>(n) * n, T(0));
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      const T v = lu[i + static_cast<std::size_t>(j) * n];
      if (i > j) {
        l[i + static_cast<std::size_t>(j) * n] = v;
      } else {
        u[i + static_cast<std::size_t>(j) * n] = v;
      }
    }
    l[j + static_cast<std::size_t>(j) * n] = T(1);
  }
  std::vector<T> product(static_cast<std::size_t>(n) * n, T(0));
  blas::gemm(blas::Transpose::No, blas::Transpose::No, n, n, n, T(1),
             l.data(), n, u.data(), n, T(0), product.data(), n);
  // product == P*A; undo the interchanges (reverse order) to get A.
  for (int i = n - 1; i >= 0; --i) {
    const int p = ipiv[static_cast<std::size_t>(i)];
    if (p != i) {
      for (int c = 0; c < n; ++c) {
        std::swap(product[i + static_cast<std::size_t>(c) * n],
                  product[p + static_cast<std::size_t>(c) * n]);
      }
    }
  }
  return product;
}

class GetrfSizes : public ::testing::TestWithParam<int> {};

TEST_P(GetrfSizes, LuTimesUReconstructsA) {
  const int n = GetParam();
  auto a = random_vector<double>(static_cast<std::size_t>(n) * n, 1);
  const auto original = a;
  std::vector<int> ipiv;
  lapack::getrf(n, a.data(), n, ipiv);
  const auto rebuilt = reconstruct_from_lu(n, a, ipiv);
  test::expect_near_rel(rebuilt, original, 1e-10 * n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GetrfSizes,
                         ::testing::Values(1, 2, 5, 17, 64, 65, 150, 257));

TEST(Getrf, SolvesLinearSystems) {
  const int n = 120, nrhs = 3;
  auto a = random_vector<double>(static_cast<std::size_t>(n) * n, 2);
  for (int i = 0; i < n; ++i) a[i + static_cast<std::size_t>(i) * n] += 2.0;
  const auto x_true = random_vector<double>(static_cast<std::size_t>(n) * nrhs, 3);
  std::vector<double> b(static_cast<std::size_t>(n) * nrhs, 0.0);
  blas::gemm(blas::Transpose::No, blas::Transpose::No, n, nrhs, n, 1.0,
             a.data(), n, x_true.data(), n, 0.0, b.data(), n);
  lapack::gesv(n, nrhs, a.data(), n, b.data(), n);
  test::expect_near_rel(b, x_true, 1e-8);
}

TEST(Getrf, PivotingHandlesZeroDiagonal) {
  // [[0, 1], [1, 0]] requires a pivot; unpivoted LU would divide by 0.
  std::vector<double> a = {0.0, 1.0, 1.0, 0.0};
  std::vector<int> ipiv;
  lapack::getrf(2, a.data(), 2, ipiv);
  EXPECT_EQ(ipiv[0], 1);  // rows swapped
  std::vector<double> b = {3.0, 5.0};  // solve [[0,1],[1,0]] x = b
  lapack::getrs(2, 1, a.data(), 2, ipiv, b.data(), 2);
  EXPECT_NEAR(b[0], 5.0, 1e-14);
  EXPECT_NEAR(b[1], 3.0, 1e-14);
}

TEST(Getrf, ThrowsOnExactlySingular) {
  std::vector<double> a = {1.0, 2.0, 2.0, 4.0};  // rank 1
  std::vector<int> ipiv;
  EXPECT_THROW(lapack::getrf(2, a.data(), 2, ipiv),
               lapack::FactorizationError);
}

TEST(Getrf, SmallBlockMatchesLargeBlock) {
  const int n = 100;
  auto a1 = random_vector<double>(static_cast<std::size_t>(n) * n, 4);
  auto a2 = a1;
  std::vector<int> p1, p2;
  lapack::getrf(n, a1.data(), n, p1, nullptr, 1, /*block=*/8);
  lapack::getrf(n, a2.data(), n, p2, nullptr, 1, /*block=*/256);
  EXPECT_EQ(p1, p2);
  test::expect_near_rel(a1, a2, 1e-11);
}

TEST(Getrf, ThreadedMatchesSerial) {
  const int n = 200;
  parallel::ThreadPool pool(4);
  auto a1 = random_vector<float>(static_cast<std::size_t>(n) * n, 5);
  auto a2 = a1;
  std::vector<int> p1, p2;
  lapack::getrf(n, a1.data(), n, p1, nullptr, 1);
  lapack::getrf(n, a2.data(), n, p2, &pool, 4);
  EXPECT_EQ(p1, p2);
  test::expect_near_rel(a1, a2, 1e-4);
}

TEST(Getrf, RejectsBadArguments) {
  std::vector<double> a(4);
  std::vector<int> ipiv;
  EXPECT_THROW(lapack::getrf(-1, a.data(), 1, ipiv), blas::BlasError);
  EXPECT_THROW(lapack::getrf(4, a.data(), 2, ipiv), blas::BlasError);
  EXPECT_THROW(lapack::getrs(2, 1, a.data(), 2, {}, a.data(), 2),
               blas::BlasError);
}

// -------------------------------------------------------------- potrf

template <typename T>
std::vector<T> make_spd(int n, std::uint64_t seed) {
  // A = G * G^T + n * I is symmetric positive definite.
  auto g = random_vector<T>(static_cast<std::size_t>(n) * n, seed);
  std::vector<T> a(static_cast<std::size_t>(n) * n, T(0));
  blas::gemm(blas::Transpose::No, blas::Transpose::Yes, n, n, n, T(1),
             g.data(), n, g.data(), n, T(0), a.data(), n);
  for (int i = 0; i < n; ++i) {
    a[i + static_cast<std::size_t>(i) * n] += static_cast<T>(n);
  }
  return a;
}

class PotrfCase
    : public ::testing::TestWithParam<std::tuple<blas::UpLo, int>> {};

TEST_P(PotrfCase, FactorTimesTransposeReconstructsA) {
  auto [uplo, n] = GetParam();
  auto a = make_spd<double>(n, 6);
  const auto original = a;
  lapack::potrf(uplo, n, a.data(), n);

  // Zero the unfactored triangle, then form L*L^T or U^T*U.
  std::vector<double> f(static_cast<std::size_t>(n) * n, 0.0);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      const bool keep = uplo == blas::UpLo::Lower ? i >= j : i <= j;
      if (keep) {
        f[i + static_cast<std::size_t>(j) * n] =
            a[i + static_cast<std::size_t>(j) * n];
      }
    }
  }
  std::vector<double> rebuilt(static_cast<std::size_t>(n) * n, 0.0);
  if (uplo == blas::UpLo::Lower) {
    blas::gemm(blas::Transpose::No, blas::Transpose::Yes, n, n, n, 1.0,
               f.data(), n, f.data(), n, 0.0, rebuilt.data(), n);
  } else {
    blas::gemm(blas::Transpose::Yes, blas::Transpose::No, n, n, n, 1.0,
               f.data(), n, f.data(), n, 0.0, rebuilt.data(), n);
  }
  test::expect_near_rel(rebuilt, original, 1e-9 * n);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PotrfCase,
    ::testing::Combine(::testing::Values(blas::UpLo::Lower,
                                         blas::UpLo::Upper),
                       ::testing::Values(1, 3, 32, 100, 129)));

TEST(Potrf, SolvesSpdSystem) {
  const int n = 90, nrhs = 2;
  auto a = make_spd<double>(n, 7);
  const auto x_true = random_vector<double>(static_cast<std::size_t>(n) * nrhs, 8);
  std::vector<double> b(static_cast<std::size_t>(n) * nrhs, 0.0);
  blas::gemm(blas::Transpose::No, blas::Transpose::No, n, nrhs, n, 1.0,
             a.data(), n, x_true.data(), n, 0.0, b.data(), n);
  lapack::potrf(blas::UpLo::Lower, n, a.data(), n);
  lapack::potrs(blas::UpLo::Lower, n, nrhs, a.data(), n, b.data(), n);
  test::expect_near_rel(b, x_true, 1e-9);
}

TEST(Potrf, ThrowsOnIndefiniteMatrix) {
  std::vector<double> a = {1.0, 2.0, 2.0, 1.0};  // eigenvalues 3, -1
  EXPECT_THROW(lapack::potrf(blas::UpLo::Lower, 2, a.data(), 2),
               lapack::FactorizationError);
}

TEST(Potrf, AgreesWithGetrfSolution) {
  const int n = 64;
  auto a = make_spd<double>(n, 9);
  auto a_lu = a;
  auto x_chol = random_vector<double>(static_cast<std::size_t>(n), 10);
  std::vector<double> b(static_cast<std::size_t>(n), 0.0);
  blas::ref::gemv(blas::Transpose::No, n, n, 1.0, a.data(), n, x_chol.data(),
                  1, 0.0, b.data(), 1);
  auto b_lu = b;

  lapack::potrf(blas::UpLo::Lower, n, a.data(), n);
  lapack::potrs(blas::UpLo::Lower, n, 1, a.data(), n, b.data(), n);
  lapack::gesv(n, 1, a_lu.data(), n, b_lu.data(), n);
  test::expect_near_rel(b, b_lu, 1e-9);
}

// -------------------------------------------------------------- geqrf

/// Materialise Q (m x n thin) by applying the reflectors to the identity
/// via Q = H_0 H_1 ... H_{n-1} I_{m x n}; we get Q column-by-column from
/// Q^T's transpose trick: apply Q^T to e_i and transpose. Simpler: check
/// A = Q R via ||Q^T A - R|| and orthogonality ||Q^T Q - I|| using
/// ormqr_qt on copies of the original A.
class GeqrfSizes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(GeqrfSizes, QtAEqualsR) {
  auto [m, n] = GetParam();
  auto a0 = random_vector<double>(static_cast<std::size_t>(m) * n, 20);
  auto qr = a0;
  std::vector<double> tau;
  lapack::geqrf(m, n, qr.data(), m, tau);

  // Q^T * A must equal the R stored in qr's upper triangle.
  auto qta = a0;
  lapack::ormqr_qt(m, n, n, qr.data(), m, tau, qta.data(), m);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      const double expected =
          i <= j && i < n ? qr[i + static_cast<std::size_t>(j) * m] : 0.0;
      ASSERT_NEAR(qta[i + static_cast<std::size_t>(j) * m], expected,
                  1e-10 * (1.0 + std::fabs(expected)))
          << "(" << i << "," << j << ")";
    }
  }
}

TEST_P(GeqrfSizes, QIsOrthogonal) {
  auto [m, n] = GetParam();
  auto a0 = random_vector<double>(static_cast<std::size_t>(m) * n, 21);
  auto qr = a0;
  std::vector<double> tau;
  lapack::geqrf(m, n, qr.data(), m, tau);

  // Apply Q^T to the m x m identity: rows 0..m of Q^T; then (Q^T)(Q^T)^T
  // = I iff Q orthogonal. Cheaper: Q^T applied to identity gives Qt;
  // check Qt's rows are orthonormal via Qt * Qt^T == I.
  std::vector<double> qt(static_cast<std::size_t>(m) * m, 0.0);
  for (int i = 0; i < m; ++i) qt[i + static_cast<std::size_t>(i) * m] = 1.0;
  lapack::ormqr_qt(m, n, m, qr.data(), m, tau, qt.data(), m);
  std::vector<double> prod(static_cast<std::size_t>(m) * m, 0.0);
  blas::gemm(blas::Transpose::No, blas::Transpose::Yes, m, m, m, 1.0,
             qt.data(), m, qt.data(), m, 0.0, prod.data(), m);
  for (int j = 0; j < m; ++j) {
    for (int i = 0; i < m; ++i) {
      ASSERT_NEAR(prod[i + static_cast<std::size_t>(j) * m],
                  i == j ? 1.0 : 0.0, 1e-10);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GeqrfSizes,
                         ::testing::Values(std::pair{1, 1}, std::pair{5, 3},
                                           std::pair{16, 16},
                                           std::pair{40, 25},
                                           std::pair{100, 60}));

TEST(Gels, RecoversExactSolutionOfConsistentSystem) {
  const int m = 50, n = 20;
  auto a = random_vector<double>(static_cast<std::size_t>(m) * n, 22);
  auto x_true = random_vector<double>(static_cast<std::size_t>(n), 23);
  std::vector<double> b(static_cast<std::size_t>(m), 0.0);
  blas::ref::gemv(blas::Transpose::No, m, n, 1.0, a.data(), m, x_true.data(),
                  1, 0.0, b.data(), 1);
  lapack::gels(m, n, 1, a.data(), m, b.data(), m);
  for (int i = 0; i < n; ++i) {
    ASSERT_NEAR(b[static_cast<std::size_t>(i)],
                x_true[static_cast<std::size_t>(i)], 1e-9);
  }
}

TEST(Gels, LeastSquaresResidualIsOrthogonalToColumns) {
  // For noisy b, the residual r = b - A x* must satisfy A^T r = 0.
  const int m = 60, n = 10;
  auto a0 = random_vector<double>(static_cast<std::size_t>(m) * n, 24);
  auto b0 = random_vector<double>(static_cast<std::size_t>(m), 25);
  auto a = a0;
  auto b = b0;
  lapack::gels(m, n, 1, a.data(), m, b.data(), m);
  // r = b0 - A0 * x.
  std::vector<double> r = b0;
  blas::ref::gemv(blas::Transpose::No, m, n, -1.0, a0.data(), m, b.data(), 1,
                  1.0, r.data(), 1);
  std::vector<double> atr(static_cast<std::size_t>(n), 0.0);
  blas::ref::gemv(blas::Transpose::Yes, m, n, 1.0, a0.data(), m, r.data(), 1,
                  0.0, atr.data(), 1);
  for (double v : atr) ASSERT_NEAR(v, 0.0, 1e-9);
}

TEST(Geqrf, RejectsWideMatrices) {
  std::vector<double> a(6);
  std::vector<double> tau;
  EXPECT_THROW(lapack::geqrf(2, 3, a.data(), 2, tau), blas::BlasError);
}

// -------------------------------- dispatcher routing (bitwise identity)

/// Dispatcher whose CPU route runs the exact serial kernel the hook-free
/// blas:: path runs (single-thread personality, one worker), so routing
/// decisions can reprice calls but never perturb bits.
dispatch::DispatcherConfig factor_config(const std::string& profile_name) {
  dispatch::DispatcherConfig cfg;
  cfg.profile = profile::by_name(profile_name);
  cfg.personality = blas::single_thread_personality();
  cfg.cpu_threads = 1;
  cfg.autotune = false;
  cfg.mode = core::TransferMode::Once;
  cfg.residency = dispatch::ResidencyPolicy::Track;
  return cfg;
}

/// Scatter a tightly stored rows x cols matrix into an ld-padded buffer
/// whose padding rows hold deterministic junk — routed and hook-free runs
/// must agree on every byte including the untouched padding.
template <typename T>
std::vector<T> pad_columns(const std::vector<T>& tight, int rows, int cols,
                           int ld, std::uint64_t seed) {
  auto padded = random_vector<T>(static_cast<std::size_t>(ld) * cols, seed);
  for (int j = 0; j < cols; ++j) {
    std::copy(tight.begin() + static_cast<std::size_t>(j) * rows,
              tight.begin() + static_cast<std::size_t>(j + 1) * rows,
              padded.begin() + static_cast<std::size_t>(j) * ld);
  }
  return padded;
}

template <typename T>
void expect_bitwise_equal(const std::vector<T>& got, const std::vector<T>& ref,
                          const char* what) {
  ASSERT_EQ(got.size(), ref.size());
  EXPECT_EQ(std::memcmp(got.data(), ref.data(), sizeof(T) * got.size()), 0)
      << what << " differs from the hook-free reference";
}

class LapackDispatchProfiles
    : public ::testing::TestWithParam<std::string> {};

TEST_P(LapackDispatchProfiles, GetrfRoutedMatchesHookFreeBitwise) {
  const int n = 128, lda = n + 7, block = 32;
  const auto tight =
      random_vector<double>(static_cast<std::size_t>(n) * n, 31);
  auto ref = pad_columns(tight, n, n, lda, 131);
  auto got = ref;
  std::vector<int> p_ref, p_got;
  lapack::getrf(n, ref.data(), lda, p_ref, nullptr, 1, block);

  dispatch::Dispatcher disp(factor_config(GetParam()));
  disp.install();
  lapack::getrf(n, got.data(), lda, p_got, nullptr, 1, block);
  disp.uninstall();

  EXPECT_EQ(p_ref, p_got);
  expect_bitwise_equal(got, ref, "getrf factor");
}

TEST_P(LapackDispatchProfiles, PotrfRoutedMatchesHookFreeBitwise) {
  const int n = 144, lda = n + 7, block = 32;
  const auto spd = make_spd<double>(n, 32);
  auto ref = pad_columns(spd, n, n, lda, 132);
  auto got = ref;
  lapack::potrf(blas::UpLo::Lower, n, ref.data(), lda, nullptr, 1, block);

  dispatch::Dispatcher disp(factor_config(GetParam()));
  disp.install();
  lapack::potrf(blas::UpLo::Lower, n, got.data(), lda, nullptr, 1, block);
  disp.uninstall();

  expect_bitwise_equal(got, ref, "potrf factor");
}

TEST_P(LapackDispatchProfiles, GeqrfRoutedMatchesHookFreeBitwise) {
  const int m = 160, n = 96, lda = m + 7;
  const auto tight =
      random_vector<double>(static_cast<std::size_t>(m) * n, 33);
  auto ref = pad_columns(tight, m, n, lda, 133);
  auto got = ref;
  std::vector<double> tau_ref, tau_got;
  lapack::geqrf(m, n, ref.data(), lda, tau_ref, nullptr, 1);

  dispatch::Dispatcher disp(factor_config(GetParam()));
  disp.install();
  lapack::geqrf(m, n, got.data(), lda, tau_got, nullptr, 1);
  disp.uninstall();

  ASSERT_EQ(tau_got.size(), tau_ref.size());
  EXPECT_EQ(std::memcmp(tau_got.data(), tau_ref.data(),
                        sizeof(double) * tau_ref.size()),
            0);
  expect_bitwise_equal(got, ref, "geqrf factor");
}

INSTANTIATE_TEST_SUITE_P(Profiles, LapackDispatchProfiles,
                         ::testing::Values("dawn", "lumi", "isambard-ai"));

TEST(LapackDispatch, GetrfSkipsResidentPanelDmaAboveThreshold) {
  // Above the offload threshold the trailing updates route to the GPU,
  // and because panel results stay resident-dirty on device, the
  // dispatched run must charge strictly fewer H2D bytes than a
  // Transfer-Always run of the same GPU-routed calls would.
  const int n = 512, block = 64;
  auto a = random_vector<double>(static_cast<std::size_t>(n) * n, 34);
  std::vector<int> ipiv;

  dispatch::Dispatcher disp(factor_config("isambard-ai"));
  disp.install();
  lapack::getrf(n, a.data(), n, ipiv, nullptr, 1, block);
  disp.uninstall();

  const dispatch::DispatchStats stats = disp.stats();
  double transfer_always_bytes = 0.0;
  std::uint64_t gpu_records = 0;
  for (const auto& r : disp.trace().snapshot()) {
    if (r.route != dispatch::Route::Gpu) continue;
    ++gpu_records;
    // A (m x k), B (k x n) and C (m x n, beta == 1 so it uploads too).
    const auto m_ = static_cast<double>(r.m);
    const auto n_ = static_cast<double>(r.n);
    const auto k_ = static_cast<double>(r.k);
    transfer_always_bytes += sizeof(double) * (m_ * k_ + k_ * n_ + m_ * n_);
  }
  ASSERT_GT(gpu_records, 0U) << "no trailing update offloaded";
  EXPECT_GT(stats.h2d_bytes_skipped, 0.0);
  EXPECT_LT(stats.h2d_bytes_moved, transfer_always_bytes);
  EXPECT_GT(stats.residency_hits, 0U);
}

}  // namespace
