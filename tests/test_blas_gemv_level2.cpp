// GEMV and the remaining Level 2 kernels (GER, SYMV, TRMV, TRSV).

#include <gtest/gtest.h>

#include <tuple>

#include "blas/gemv.hpp"
#include "blas/level2.hpp"
#include "blas/ref_blas.hpp"
#include "blas_test_util.hpp"

namespace {

using namespace blob;
using blas::Diag;
using blas::Transpose;
using blas::UpLo;
using blob::test::random_vector;

template <typename T>
void run_gemv_case(Transpose ta, int m, int n, T alpha, T beta,
                   parallel::ThreadPool* pool = nullptr,
                   std::size_t threads = 1) {
  const int lda = std::max(1, m);
  const int xlen = ta == Transpose::No ? n : m;
  const int ylen = ta == Transpose::No ? m : n;
  auto a = random_vector<T>(static_cast<std::size_t>(lda) * std::max(1, n), 1);
  auto x = random_vector<T>(static_cast<std::size_t>(std::max(1, xlen)), 2);
  auto y_opt = random_vector<T>(static_cast<std::size_t>(std::max(1, ylen)), 3);
  auto y_ref = y_opt;
  blas::gemv(ta, m, n, alpha, a.data(), lda, x.data(), 1, beta, y_opt.data(),
             1, pool, threads);
  blas::ref::gemv(ta, m, n, alpha, a.data(), lda, x.data(), 1, beta,
                  y_ref.data(), 1);
  const double tol = std::is_same_v<T, float> ? 1e-4 : 1e-12;
  test::expect_near_rel(y_opt, y_ref, tol);
}

using GemvParam = std::tuple<int, int>;
class GemvShapes : public ::testing::TestWithParam<GemvParam> {};

TEST_P(GemvShapes, NoTransMatchesReference) {
  auto [m, n] = GetParam();
  run_gemv_case<float>(Transpose::No, m, n, 1.0f, 0.0f);
  run_gemv_case<double>(Transpose::No, m, n, 1.0, 0.0);
}

TEST_P(GemvShapes, TransMatchesReference) {
  auto [m, n] = GetParam();
  run_gemv_case<double>(Transpose::Yes, m, n, 2.0, -1.0);
}

TEST_P(GemvShapes, AlphaBetaCombinations) {
  auto [m, n] = GetParam();
  run_gemv_case<double>(Transpose::No, m, n, 4.0, 0.0);
  run_gemv_case<double>(Transpose::No, m, n, 1.0, 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemvShapes,
    ::testing::Values(GemvParam{1, 1}, GemvParam{1, 64}, GemvParam{64, 1},
                      GemvParam{3, 5}, GemvParam{17, 33}, GemvParam{32, 32},
                      GemvParam{100, 7}, GemvParam{7, 100},
                      GemvParam{513, 300}, GemvParam{2048, 32},
                      GemvParam{32, 2048}));

TEST(Gemv, StridedFallsBackToReference) {
  const int m = 20, n = 15;
  auto a = random_vector<double>(m * n, 4);
  auto x = random_vector<double>(2 * n, 5);
  auto y_opt = random_vector<double>(3 * m, 6);
  auto y_ref = y_opt;
  blas::gemv(Transpose::No, m, n, 1.0, a.data(), m, x.data(), 2, 0.5,
             y_opt.data(), 3);
  blas::ref::gemv(Transpose::No, m, n, 1.0, a.data(), m, x.data(), 2, 0.5,
                  y_ref.data(), 3);
  test::expect_near_rel(y_opt, y_ref, 1e-12);
}

TEST(Gemv, BetaZeroOverwritesNanY) {
  std::vector<double> a = {2.0};
  std::vector<double> x = {3.0};
  std::vector<double> y = {std::nan("")};
  blas::gemv(Transpose::No, 1, 1, 1.0, a.data(), 1, x.data(), 1, 0.0,
             y.data(), 1);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
}

class GemvThreaded : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GemvThreaded, ThreadedMatchesReference) {
  parallel::ThreadPool pool(GetParam());
  run_gemv_case<double>(Transpose::No, 2000, 300, 1.0, 0.0, &pool,
                        GetParam());
  run_gemv_case<float>(Transpose::Yes, 300, 2000, 1.0f, 2.0f, &pool,
                       GetParam());
}

INSTANTIATE_TEST_SUITE_P(Threads, GemvThreaded, ::testing::Values(2, 4, 8));

TEST(Gemv, RejectsInvalidArguments) {
  std::vector<double> buf(16);
  EXPECT_THROW(blas::gemv(Transpose::No, 8, 2, 1.0, buf.data(), 4, buf.data(),
                          1, 0.0, buf.data(), 1),
               blas::BlasError);
  EXPECT_THROW(blas::gemv(Transpose::No, 2, 2, 1.0, buf.data(), 2, buf.data(),
                          0, 0.0, buf.data(), 1),
               blas::BlasError);
}

// ------------------------------------------------------------------- ger

TEST(Ger, MatchesManualOuterProduct) {
  const int m = 5, n = 4;
  auto x = random_vector<double>(m, 7);
  auto y = random_vector<double>(n, 8);
  std::vector<double> a(static_cast<std::size_t>(m) * n, 1.0);
  blas::ger(m, n, 2.0, x.data(), 1, y.data(), 1, a.data(), m);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      ASSERT_NEAR(a[i + static_cast<std::size_t>(j) * m],
                  1.0 + 2.0 * x[i] * y[j], 1e-13);
    }
  }
}

TEST(Ger, ThreadedMatchesReference) {
  const int m = 300, n = 200;
  parallel::ThreadPool pool(4);
  auto x = random_vector<double>(m, 9);
  auto y = random_vector<double>(n, 10);
  auto a_opt = random_vector<double>(static_cast<std::size_t>(m) * n, 11);
  auto a_ref = a_opt;
  blas::ger(m, n, 1.5, x.data(), 1, y.data(), 1, a_opt.data(), m, &pool, 4);
  blas::ref::ger(m, n, 1.5, x.data(), 1, y.data(), 1, a_ref.data(), m);
  test::expect_near_rel(a_opt, a_ref, 1e-13);
}

// ------------------------------------------------------------------ symv

class SymvCase : public ::testing::TestWithParam<std::tuple<UpLo, int>> {};

TEST_P(SymvCase, MatchesDenseGemv) {
  auto [uplo, n] = GetParam();
  auto a = random_vector<double>(static_cast<std::size_t>(n) * n, 12);
  // Build the dense symmetric equivalent from the stored triangle.
  std::vector<double> dense(static_cast<std::size_t>(n) * n);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      dense[i + static_cast<std::size_t>(j) * n] =
          blas::ref::sym_at(uplo, a.data(), n, i, j);
    }
  }
  auto x = random_vector<double>(n, 13);
  auto y_symv = random_vector<double>(n, 14);
  auto y_dense = y_symv;
  blas::symv(uplo, n, 1.5, a.data(), n, x.data(), 1, 0.5, y_symv.data(), 1);
  blas::ref::gemv(Transpose::No, n, n, 1.5, dense.data(), n, x.data(), 1,
                  0.5, y_dense.data(), 1);
  test::expect_near_rel(y_symv, y_dense, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SymvCase,
    ::testing::Combine(::testing::Values(UpLo::Upper, UpLo::Lower),
                       ::testing::Values(1, 5, 64, 300)));

TEST(Symv, ThreadedMatchesSerial) {
  const int n = 400;
  parallel::ThreadPool pool(4);
  auto a = random_vector<double>(static_cast<std::size_t>(n) * n, 15);
  auto x = random_vector<double>(n, 16);
  auto y1 = random_vector<double>(n, 17);
  auto y2 = y1;
  blas::symv(UpLo::Lower, n, 1.0, a.data(), n, x.data(), 1, 0.0, y1.data(),
             1, &pool, 4);
  blas::ref::symv(UpLo::Lower, n, 1.0, a.data(), n, x.data(), 1, 0.0,
                  y2.data(), 1);
  test::expect_near_rel(y1, y2, 1e-12);
}

// ------------------------------------------------------------- trmv/trsv

class TriangularCase
    : public ::testing::TestWithParam<std::tuple<UpLo, Transpose, Diag>> {};

TEST_P(TriangularCase, TrsvInvertsTrmv) {
  auto [uplo, trans, diag] = GetParam();
  const int n = 50;
  auto a = random_vector<double>(static_cast<std::size_t>(n) * n, 18);
  // Make the matrix well-conditioned: dominant diagonal.
  for (int i = 0; i < n; ++i) a[i + static_cast<std::size_t>(i) * n] += 4.0;
  auto x0 = random_vector<double>(n, 19);
  auto x = x0;
  blas::trmv(uplo, trans, diag, n, a.data(), n, x.data(), 1);
  blas::trsv(uplo, trans, diag, n, a.data(), n, x.data(), 1);
  test::expect_near_rel(x, x0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TriangularCase,
    ::testing::Combine(::testing::Values(UpLo::Upper, UpLo::Lower),
                       ::testing::Values(Transpose::No, Transpose::Yes),
                       ::testing::Values(Diag::NonUnit, Diag::Unit)));

TEST(Trsv, SolvesKnownSystem) {
  // Lower triangular [[2,0],[1,4]] x = [2, 9] -> x = [1, 2].
  std::vector<double> a = {2.0, 1.0, 0.0, 4.0};  // column major 2x2
  std::vector<double> x = {2.0, 9.0};
  blas::trsv(UpLo::Lower, Transpose::No, Diag::NonUnit, 2, a.data(), 2,
             x.data(), 1);
  EXPECT_NEAR(x[0], 1.0, 1e-14);
  EXPECT_NEAR(x[1], 2.0, 1e-14);
}

}  // namespace
