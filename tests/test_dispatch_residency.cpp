// The residency subsystem: the pointer-interval map against a per-byte
// reference model (randomized overlap splitting, write invalidation,
// aliased intervals), the region span helpers, the v2 -> v3 calibration
// migration, and the dispatcher-level property the tentpole is
// accountable to — a repeated-A GEMV loop under ResidencyPolicy::Track
// produces bitwise-identical results to a Transfer-Always run while
// moving strictly fewer modelled H2D bytes, offloading within the
// amortisation horizon, and never re-charging DMA for resident-clean
// operands.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "blas/cblas.hpp"
#include "dispatch/calibration_store.hpp"
#include "dispatch/dispatcher.hpp"
#include "dispatch/residency.hpp"
#include "sysprofile/profile.hpp"
#include "util/rng.hpp"

namespace {

using namespace blob;
using dispatch::Region;
using dispatch::ResidencyTracker;

// Synthetic arena addresses: the tracker never dereferences, so tests
// can use a fake base pointer and byte offsets.
const char* const kBase = reinterpret_cast<const char*>(0x100000);

Region region_at(std::size_t offset, std::size_t bytes) {
  return Region{kBase + offset, bytes};
}

// ----------------------------------------------- per-byte reference

/// Reference semantics over a small arena: one state per byte. The
/// tracker must agree with this model on every clean lookup, and its
/// interval count must equal the model's maximal equal-state runs
/// (coalescing adjacent same-state intervals, splitting on erase).
class ByteModel {
 public:
  enum State : std::uint8_t { None, Clean, Dirty };

  explicit ByteModel(std::size_t arena) : bytes_(arena, None) {}

  void set(std::size_t offset, std::size_t n, State s) {
    for (std::size_t i = offset; i < offset + n; ++i) bytes_[i] = s;
  }

  [[nodiscard]] bool all_clean(std::size_t offset, std::size_t n) const {
    for (std::size_t i = offset; i < offset + n; ++i) {
      if (bytes_[i] != Clean) return false;
    }
    return true;
  }

  [[nodiscard]] std::size_t runs() const {
    std::size_t count = 0;
    State prev = None;
    for (const State s : bytes_) {
      if (s != None && s != prev) ++count;
      prev = s;
    }
    return count;
  }

 private:
  std::vector<State> bytes_;
};

TEST(ResidencyTracker, RandomOpsAgreeWithByteModel) {
  constexpr std::size_t kArena = 512;
  util::Xoshiro256 rng(0x5eed);
  ResidencyTracker tracker;
  ByteModel model(kArena);

  for (int step = 0; step < 2000; ++step) {
    const auto offset =
        static_cast<std::size_t>(rng.uniform_int(0, kArena - 1));
    const auto len = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<int>(kArena - offset)));
    const Region r = region_at(offset, len);
    switch (rng.uniform_int(0, 3)) {
      case 0:
        tracker.note_upload(r);
        model.set(offset, len, ByteModel::Clean);
        break;
      case 1:
        tracker.note_device_write(r);
        model.set(offset, len, ByteModel::Dirty);
        break;
      case 2:
        tracker.note_device_result(r);
        model.set(offset, len, ByteModel::Clean);
        break;
      default:
        tracker.note_host_write(r);
        model.set(offset, len, ByteModel::None);
        break;
    }

    ASSERT_EQ(tracker.interval_count(), model.runs()) << "step " << step;
    for (int probe = 0; probe < 8; ++probe) {
      const auto po =
          static_cast<std::size_t>(rng.uniform_int(0, kArena - 1));
      const auto pl = static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<int>(kArena - po)));
      ASSERT_EQ(tracker.resident_clean(region_at(po, pl)),
                model.all_clean(po, pl))
          << "step " << step << " probe [" << po << ", " << po + pl << ")";
    }
  }
}

TEST(ResidencyTracker, HostWriteSplitsCleanInterval) {
  ResidencyTracker tracker;
  tracker.note_upload(region_at(0, 100));
  EXPECT_EQ(tracker.interval_count(), 1U);

  // A write in the middle kills only the overlapped bytes; both
  // remainders stay clean.
  EXPECT_EQ(tracker.note_host_write(region_at(40, 20)), 1U);
  EXPECT_EQ(tracker.interval_count(), 2U);
  EXPECT_TRUE(tracker.resident_clean(region_at(0, 40)));
  EXPECT_TRUE(tracker.resident_clean(region_at(60, 40)));
  EXPECT_FALSE(tracker.resident_clean(region_at(30, 40)));
  EXPECT_FALSE(tracker.resident_clean(region_at(0, 100)));
}

TEST(ResidencyTracker, AdjacentUploadsCoalesce) {
  ResidencyTracker tracker;
  tracker.note_upload(region_at(0, 50));
  tracker.note_upload(region_at(50, 50));
  EXPECT_EQ(tracker.interval_count(), 1U);
  EXPECT_TRUE(tracker.resident_clean(region_at(0, 100)));
  // A gap breaks coverage: [0,100) + [120,140) is not clean over
  // [90, 130).
  tracker.note_upload(region_at(120, 20));
  EXPECT_FALSE(tracker.resident_clean(region_at(90, 40)));
}

TEST(ResidencyTracker, DirtyBytesNeverSatisfyCleanLookups) {
  ResidencyTracker tracker;
  tracker.note_upload(region_at(0, 100));
  tracker.note_device_write(region_at(20, 10));
  EXPECT_FALSE(tracker.resident_clean(region_at(0, 100)));
  EXPECT_TRUE(tracker.resident_clean(region_at(0, 20)));
  EXPECT_TRUE(tracker.resident_clean(region_at(30, 70)));
  tracker.note_device_result(region_at(20, 10));
  EXPECT_TRUE(tracker.resident_clean(region_at(0, 100)));
  EXPECT_EQ(tracker.interval_count(), 1U);
}

TEST(ResidencyTracker, AliasedIntervalsShareState) {
  // Two operand views aliasing the same bytes (e.g. a submatrix): an
  // upload through either view warms the shared bytes; a host write
  // through one invalidates the other's overlap.
  ResidencyTracker tracker;
  const Region whole = region_at(0, 200);
  const Region lower = region_at(0, 120);
  const Region upper = region_at(80, 120);
  tracker.note_upload(lower);
  tracker.note_upload(upper);
  EXPECT_TRUE(tracker.resident_clean(whole));
  EXPECT_EQ(tracker.interval_count(), 1U);

  EXPECT_EQ(tracker.note_host_write(region_at(100, 10)), 1U);
  EXPECT_FALSE(tracker.resident_clean(lower));
  EXPECT_FALSE(tracker.resident_clean(upper));
  EXPECT_TRUE(tracker.resident_clean(region_at(0, 100)));
  EXPECT_TRUE(tracker.resident_clean(region_at(110, 90)));
}

// ----------------------------------------------- region span helpers

TEST(ResidencyRegions, MatrixRegionChunksPerColumnWhenPadded) {
  // 8-byte elements, ld 10, 6 x 4 stored: one 48-byte chunk per column,
  // stride elem * ld, so the 4 rows of ld padding per column stay out of
  // the tracked footprint.
  const Region r = dispatch::matrix_region(kBase, 8, 10, 6, 4);
  EXPECT_EQ(r.ptr, kBase);
  EXPECT_EQ(r.bytes, 8U * 6U);
  EXPECT_EQ(r.stride, 8U * 10U);
  EXPECT_EQ(r.count, 4U);
  EXPECT_EQ(r.total_bytes(), 8U * 6U * 4U);
  // Tight storage (ld == rows, including ld-below-rows clamping) stays
  // one contiguous chunk.
  const Region tight = dispatch::matrix_region(kBase, 4, 2, 6, 4);
  EXPECT_EQ(tight.bytes, 4U * 6U * 4U);
  EXPECT_EQ(tight.count, 1U);
  EXPECT_FALSE(dispatch::matrix_region(nullptr, 8, 10, 6, 4).valid());
  EXPECT_FALSE(dispatch::matrix_region(kBase, 8, 10, 0, 4).valid());
}

TEST(ResidencyRegions, PaddedMatrixUploadLeavesPaddingUntracked) {
  // Warming a padded panel must not claim the inter-column padding: a
  // byte-interleaved neighbour (e.g. the panel to the right in a larger
  // factorization) would otherwise be marked clean without an upload.
  ResidencyTracker tracker;
  const Region panel = dispatch::matrix_region(kBase, 8, 10, 6, 4);
  tracker.note_upload(panel);
  EXPECT_EQ(tracker.interval_count(), 4U);
  EXPECT_TRUE(tracker.resident_clean(panel));
  for (std::size_t col = 0; col < 4; ++col) {
    EXPECT_TRUE(tracker.resident_clean(region_at(col * 80, 48)));
    EXPECT_FALSE(tracker.resident_clean(region_at(col * 80 + 48, 32)))
        << "padding after column " << col << " wrongly tracked";
  }

  // A host write through the same chunked shape kills every column but
  // leaves unrelated bytes alone.
  ResidencyTracker other;
  other.note_upload(region_at(0, 400));
  EXPECT_EQ(other.note_host_write(panel), 4U);
  EXPECT_FALSE(other.resident_clean(panel));
  EXPECT_TRUE(other.resident_clean(region_at(48, 32)));
  EXPECT_TRUE(other.resident_clean(region_at(320, 80)));
}

TEST(ResidencyRegions, VectorSpanFollowsStride) {
  const Region unit = dispatch::vector_region(kBase, 8, 100, 1);
  EXPECT_EQ(unit.bytes, 800U);
  const Region strided = dispatch::vector_region(kBase, 4, 10, 3);
  EXPECT_EQ(strided.bytes, 4U * ((10 - 1) * 3 + 1));
  EXPECT_FALSE(dispatch::vector_region(kBase, 8, 0, 1).valid());
}

// ----------------------------------------------- calibration v2 -> v3

TEST(ResidencyCalibration, V2StoreReadsGracefullyOntoColdSide) {
  const std::string v2 = R"({
    "version": 2,
    "personality": "p",
    "profile": "s",
    "entries": [
      {"op": "gemv", "precision": "f64", "mode": "once", "bucket": 7,
       "ta": "N", "tb": "N",
       "cpu": {"ewma_s": 1e-4, "samples": 3},
       "gpu": {"ewma_s": 2e-4, "samples": 2},
       "incumbent": "cpu", "visits": 5, "switches": 0}
    ]
  })";
  std::istringstream in(v2);
  const dispatch::LoadResult result = dispatch::load_calibration(in, "p", "s");
  ASSERT_EQ(result.status, dispatch::LoadStatus::Ok);
  EXPECT_FALSE(result.warning.empty());
  ASSERT_EQ(result.data.entries.size(), 1U);
  const auto& [key, state] = *result.data.entries.begin();
  EXPECT_EQ(key.residency, dispatch::ResidencyClass::Cold);
  EXPECT_EQ(key.bucket, 7);
  EXPECT_EQ(state.cpu.samples, 3U);
}

TEST(ResidencyCalibration, V3RoundTripPreservesResidencyClass) {
  dispatch::CalibrationData data;
  data.personality = "p";
  data.profile = "s";
  dispatch::BucketKey key;
  key.op = core::KernelOp::Gemv;
  key.precision = model::Precision::F64;
  key.bucket = 9;
  key.residency = dispatch::ResidencyClass::Warm;
  dispatch::BucketState state;
  state.gpu.ewma_s = 5e-5;
  state.gpu.samples = 4;
  state.incumbent = dispatch::Route::Gpu;
  data.entries.emplace(key, state);

  std::ostringstream out;
  dispatch::save_calibration(out, data);
  std::istringstream in(out.str());
  const dispatch::LoadResult result = dispatch::load_calibration(in, "p", "s");
  ASSERT_EQ(result.status, dispatch::LoadStatus::Ok);
  EXPECT_TRUE(result.warning.empty());
  ASSERT_EQ(result.data.entries.size(), 1U);
  EXPECT_EQ(result.data.entries.begin()->first.residency,
            dispatch::ResidencyClass::Warm);
}

TEST(ResidencyCalibration, PreV2StillRejected) {
  std::istringstream in(
      R"({"version": 1, "personality": "p", "profile": "s", "entries": []})");
  EXPECT_EQ(dispatch::load_calibration(in, "p", "s").status,
            dispatch::LoadStatus::VersionMismatch);
}

// ------------------------------------- dispatcher repeated-A property

dispatch::DispatcherConfig solver_config(dispatch::ResidencyPolicy policy,
                                         core::TransferMode mode) {
  dispatch::DispatcherConfig cfg;
  // GH200-class profile: steep GEMV offload curve once resident, so the
  // loop exercises the threshold collapse the tentpole is about.
  cfg.profile = profile::by_name("isambard-ai");
  // Single-thread personality: the CPU route runs the exact serial
  // kernel SimGpu's functional path runs, so CPU- and GPU-routed
  // iterations agree bitwise and route flips cannot perturb results.
  cfg.personality = blas::single_thread_personality();
  cfg.cpu_threads = 1;
  cfg.autotune = false;
  cfg.mode = mode;
  cfg.residency = policy;
  return cfg;
}

/// Run `iters` power-iteration steps (repeated A, x fed from y) through
/// an installed dispatcher; returns every iterate for bitwise
/// comparison.
std::vector<std::vector<double>> run_solver_loop(
    dispatch::Dispatcher& dispatcher, int dim, int iters) {
  const auto nn = static_cast<std::size_t>(dim);
  std::vector<double> a(nn * nn), x(nn), y(nn, 0.0);
  util::Xoshiro256 rng(0x50f7);
  for (auto& v : a) v = rng.uniform(-1.0, 1.0);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);

  std::vector<std::vector<double>> iterates;
  dispatcher.install();
  for (int it = 0; it < iters; ++it) {
    cblas_dgemv(CblasColMajor, CblasNoTrans, dim, dim, 1.0, a.data(), dim,
                x.data(), 1, 0.0, y.data(), 1);
    iterates.push_back(y);
    double norm = 0.0;
    for (const double v : y) norm = std::max(norm, std::abs(v));
    if (norm == 0.0) norm = 1.0;
    for (std::size_t i = 0; i < nn; ++i) x[i] = y[i] / norm;
  }
  dispatcher.uninstall();
  return iterates;
}

TEST(ResidencyDispatch, RepeatedAGemvMovesFewerBytesBitIdentically) {
  constexpr int kDim = 1024;
  constexpr int kIters = 16;

  // Baseline: residency off, Transfer-Always — every GPU call pays the
  // full upload.
  dispatch::Dispatcher baseline(solver_config(
      dispatch::ResidencyPolicy::Off, core::TransferMode::Always));
  const auto ref = run_solver_loop(baseline, kDim, kIters);
  const dispatch::DispatchStats base_stats = baseline.stats();

  dispatch::Dispatcher tracked(solver_config(
      dispatch::ResidencyPolicy::Track, core::TransferMode::Once));
  const auto got = run_solver_loop(tracked, kDim, kIters);
  const dispatch::DispatchStats track_stats = tracked.stats();

  // Bitwise-identical iterates: residency affects pricing, never
  // numerics.
  ASSERT_EQ(got.size(), ref.size());
  for (int it = 0; it < kIters; ++it) {
    ASSERT_EQ(std::memcmp(got[static_cast<std::size_t>(it)].data(),
                          ref[static_cast<std::size_t>(it)].data(),
                          sizeof(double) * kDim),
              0)
        << "iterate " << it;
  }

  // The baseline routed at least one GPU call (the shape is
  // GPU-favoured on this profile) and re-paid the A panel for each;
  // tracking pays it once, so it must move strictly fewer bytes.
  ASSERT_GT(base_stats.gpu_routed, 0U);
  ASSERT_GT(track_stats.gpu_routed, 0U);
  EXPECT_GT(base_stats.h2d_bytes_moved, 0.0);
  EXPECT_LT(track_stats.h2d_bytes_moved, base_stats.h2d_bytes_moved);
  EXPECT_GT(track_stats.h2d_bytes_skipped, 0.0);
  EXPECT_GT(track_stats.residency_hits, 0U);

  // With the policy off, the residency counters must stay silent (the
  // byte counters still accumulate so baselines compare like for like).
  EXPECT_EQ(base_stats.residency_hits, 0U);
  EXPECT_EQ(base_stats.residency_misses, 0U);
  EXPECT_EQ(base_stats.h2d_bytes_skipped, 0.0);
}

TEST(ResidencyDispatch, ThresholdCollapsesWithinAmortisationHorizon) {
  constexpr int kDim = 1536;
  constexpr int kIters = 12;
  dispatch::Dispatcher tracked(solver_config(
      dispatch::ResidencyPolicy::Track, core::TransferMode::Once));
  (void)run_solver_loop(tracked, kDim, kIters);

  const auto records = tracked.trace().snapshot();
  ASSERT_EQ(records.size(), static_cast<std::size_t>(kIters));

  // Amortised cold pricing must offload within the horizon (<= 8 warm
  // iterations per the acceptance bar; the first call itself qualifies).
  int first_gpu = 0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].route == dispatch::Route::Gpu) {
      first_gpu = static_cast<int>(i) + 1;
      break;
    }
  }
  ASSERT_GT(first_gpu, 0) << "never offloaded";
  EXPECT_LE(first_gpu, 8);

  // Zero redundant H2D: once a GPU-routed call is classified warm, its
  // operands are resident-clean and no DMA may be charged for them.
  bool saw_warm_gpu = false;
  for (const auto& r : records) {
    if (r.route != dispatch::Route::Gpu) continue;
    if (r.residency == dispatch::ResidencyClass::Warm) {
      saw_warm_gpu = true;
      EXPECT_EQ(r.h2d_moved_bytes, 0.0) << "seq " << r.seq;
      EXPECT_GT(r.h2d_skipped_bytes, 0.0) << "seq " << r.seq;
    }
  }
  EXPECT_TRUE(saw_warm_gpu);

  // The tracker holds the warmed panel.
  EXPECT_GT(tracked.residency().interval_count(), 0U);
}

TEST(ResidencyDispatch, CpuRoutedOutputInvalidatesWarmPanel) {
  // Warm a big panel through the GPU route, then land a CPU-routed
  // output inside it: the dispatcher must kill the overlapped interval
  // and the next call on the panel must pay DMA again.
  constexpr int kDim = 1536;
  dispatch::Dispatcher disp(solver_config(dispatch::ResidencyPolicy::Track,
                                          core::TransferMode::Once));
  const auto nn = static_cast<std::size_t>(kDim);
  std::vector<double> a(nn * nn), x(nn), y(nn, 0.0);
  util::Xoshiro256 rng(0x1237);
  for (auto& v : a) v = rng.uniform(-1.0, 1.0);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);

  disp.install();
  for (int it = 0; it < 3; ++it) {
    cblas_dgemv(CblasColMajor, CblasNoTrans, kDim, kDim, 1.0, a.data(),
                kDim, x.data(), 1, 0.0, y.data(), 1);
  }
  ASSERT_GT(disp.residency().interval_count(), 0U);
  ASSERT_EQ(disp.stats().residency_invalidations, 0U);

  // A strided output vector cannot take the GPU route (Reason::Forced,
  // CPU) and its span lands in the first rows of A.
  std::vector<double> sa(64 * 64, 0.25), sx(64, 1.0);
  cblas_dgemv(CblasColMajor, CblasNoTrans, 64, 64, 1.0, sa.data(), 64,
              sx.data(), 1, 0.0, a.data(), 2);

  const std::uint64_t invalidations_after =
      disp.stats().residency_invalidations;
  EXPECT_GT(invalidations_after, 0U);
  EXPECT_FALSE(disp.residency().resident_clean(dispatch::matrix_region(
      a.data(), sizeof(double), kDim, kDim, kDim)));

  // The next repeated-A call is no longer fully warm: A's bytes move
  // over the link again.
  cblas_dgemv(CblasColMajor, CblasNoTrans, kDim, kDim, 1.0, a.data(), kDim,
              x.data(), 1, 0.0, y.data(), 1);
  disp.uninstall();

  const auto records = disp.trace().snapshot();
  ASSERT_FALSE(records.empty());
  const dispatch::TraceRecord& last = records.back();
  if (last.route == dispatch::Route::Gpu) {
    EXPECT_GT(last.h2d_moved_bytes, 0.0);
    EXPECT_NE(last.residency, dispatch::ResidencyClass::Warm);
  }
}

}  // namespace
