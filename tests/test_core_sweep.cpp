// Sweep runner, CSV round trips (including the split CPU-only/GPU-only
// merge the paper's LUMI workflow needs), and report rendering.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/report.hpp"
#include "core/sweep.hpp"

namespace {

using namespace blob;
using namespace blob::core;

/// Backend with an analytically known crossover: cpu = a*s, gpu = b + c*s.
class FakeBackend final : public ExecutionBackend {
 public:
  FakeBackend(double cpu_slope, double gpu_fixed, double gpu_slope,
              bool has_gpu = true)
      : cpu_slope_(cpu_slope),
        gpu_fixed_(gpu_fixed),
        gpu_slope_(gpu_slope),
        has_gpu_(has_gpu) {}

  std::string name() const override { return "fake"; }

  using ExecutionBackend::cpu_time;
  using ExecutionBackend::gpu_time;

  double cpu_time(const OpDesc& desc, std::int64_t iterations) override {
    return cpu_slope_ * static_cast<double>(desc.m) *
           static_cast<double>(iterations);
  }

  std::optional<double> gpu_time(const OpDesc& desc,
                                 std::int64_t iterations) override {
    if (!has_gpu_) return std::nullopt;
    const double scale = desc.mode == TransferMode::Always ? 2.0 : 1.0;
    return gpu_fixed_ * scale + gpu_slope_ * static_cast<double>(desc.m) *
                                    static_cast<double>(iterations);
  }

 private:
  double cpu_slope_, gpu_fixed_, gpu_slope_;
  bool has_gpu_;
};

TEST(Sweep, FindsAnalyticCrossover) {
  // cpu = 2s, gpu_once = 100 + s -> crossover strictly after s = 100.
  FakeBackend backend(2.0, 100.0, 1.0);
  SweepConfig cfg;
  cfg.s_min = 1;
  cfg.s_max = 300;
  cfg.iterations = 1;
  const auto result =
      run_sweep(backend, problem_type_by_id("gemm_square"), cfg);
  ASSERT_TRUE(result.thresholds[0].has_value());
  EXPECT_EQ(result.thresholds[0]->s, 101);
  // Transfer-Always has double the fixed cost -> crossover at 201.
  ASSERT_TRUE(result.thresholds[1].has_value());
  EXPECT_EQ(result.thresholds[1]->s, 201);
}

TEST(Sweep, StrideSkipsSizes) {
  FakeBackend backend(2.0, 100.0, 1.0);
  SweepConfig cfg;
  cfg.s_min = 1;
  cfg.s_max = 300;
  cfg.stride = 50;
  const auto result =
      run_sweep(backend, problem_type_by_id("gemm_square"), cfg);
  EXPECT_EQ(result.samples.size(), 6u);  // 1, 51, 101, 151, 201, 251
  ASSERT_TRUE(result.thresholds[0].has_value());
  EXPECT_EQ(result.thresholds[0]->s, 101);
}

TEST(Sweep, CpuOnlyBackendYieldsNoThresholds) {
  FakeBackend backend(2.0, 100.0, 1.0, /*has_gpu=*/false);
  SweepConfig cfg;
  cfg.s_max = 50;
  const auto result =
      run_sweep(backend, problem_type_by_id("gemv_square"), cfg);
  for (const auto& t : result.thresholds) EXPECT_FALSE(t.has_value());
  for (const auto& s : result.samples) {
    EXPECT_FALSE(s.has_gpu);
    EXPECT_TRUE(std::isnan(s.gpu_seconds[0]));
    EXPECT_GT(s.cpu_gflops, 0.0);
  }
}

TEST(Sweep, RejectsBadBounds) {
  FakeBackend backend(1.0, 1.0, 1.0);
  SweepConfig cfg;
  cfg.s_min = 10;
  cfg.s_max = 5;
  EXPECT_THROW(run_sweep(backend, problem_type_by_id("gemm_square"), cfg),
               std::invalid_argument);
  cfg = SweepConfig{};
  cfg.s_min = 0;
  EXPECT_THROW(run_sweep(backend, problem_type_by_id("gemm_square"), cfg),
               std::invalid_argument);
  cfg = SweepConfig{};
  cfg.stride = 0;
  EXPECT_THROW(run_sweep(backend, problem_type_by_id("gemm_square"), cfg),
               std::invalid_argument);
}

TEST(Sweep, GflopsUsesPaperFlopModel) {
  FakeBackend backend(1.0, 0.0, 0.5);
  SweepConfig cfg;
  cfg.s_min = 10;
  cfg.s_max = 10;
  cfg.iterations = 4;
  const auto result =
      run_sweep(backend, problem_type_by_id("gemm_square"), cfg);
  const auto& s = result.samples.at(0);
  const double flops = 2.0 * 1000 + 100;  // 2MNK + MN at m=n=k=10
  EXPECT_NEAR(s.cpu_gflops, 4 * flops / s.cpu_seconds / 1e9, 1e-9);
}

// --------------------------------------------------------------- csv

TEST(SweepCsv, RoundTripPreservesEverything) {
  FakeBackend backend(2.0, 100.0, 1.0);
  SweepConfig cfg;
  cfg.s_min = 1;
  cfg.s_max = 150;
  cfg.stride = 10;
  cfg.iterations = 8;
  cfg.precision = model::Precision::F64;
  const auto original =
      run_sweep(backend, problem_type_by_id("gemm_tall_k"), cfg);

  std::stringstream buffer;
  write_csv(buffer, original);
  const auto restored = read_csv(buffer);

  EXPECT_EQ(restored.type, original.type);
  EXPECT_EQ(restored.config.iterations, 8);
  EXPECT_EQ(restored.config.precision, model::Precision::F64);
  ASSERT_EQ(restored.samples.size(), original.samples.size());
  for (std::size_t i = 0; i < original.samples.size(); ++i) {
    EXPECT_EQ(restored.samples[i].s, original.samples[i].s);
    EXPECT_EQ(restored.samples[i].dims.k, original.samples[i].dims.k);
    EXPECT_NEAR(restored.samples[i].cpu_seconds,
                original.samples[i].cpu_seconds, 1e-15);
    for (int mode = 0; mode < 3; ++mode) {
      EXPECT_NEAR(restored.samples[i].gpu_seconds[mode],
                  original.samples[i].gpu_seconds[mode], 1e-15);
    }
  }
  ASSERT_TRUE(restored.thresholds[0].has_value());
  EXPECT_EQ(restored.thresholds[0]->s, original.thresholds[0]->s);
}

TEST(SweepCsv, MergesSplitCpuAndGpuFiles) {
  // The LUMI workflow: one CPU-only file and one GPU-only file for the
  // same problem, concatenated (minus the second header) before
  // threshold extraction.
  FakeBackend cpu_only(2.0, 100.0, 1.0, /*has_gpu=*/false);
  FakeBackend full(2.0, 100.0, 1.0, /*has_gpu=*/true);
  SweepConfig cfg;
  cfg.s_max = 200;
  cfg.stride = 20;

  const auto& type = problem_type_by_id("gemm_square");
  const auto cpu_result = run_sweep(cpu_only, type, cfg);
  auto gpu_result = run_sweep(full, type, cfg);
  // Zero out the CPU rows of the "GPU build" — we only take its GPU rows.
  std::stringstream merged;
  write_csv(merged, cpu_result);
  std::stringstream gpu_csv;
  write_csv(gpu_csv, gpu_result);
  std::string line;
  bool first = true;
  while (std::getline(gpu_csv, line)) {
    if (first) {
      first = false;
      continue;  // drop the second header
    }
    if (line.find(",cpu,") == std::string::npos) merged << line << '\n';
  }

  const auto combined = read_csv(merged);
  ASSERT_TRUE(combined.thresholds[0].has_value());
  EXPECT_EQ(combined.thresholds[0]->s, 101);
  EXPECT_EQ(combined.samples.size(), cpu_result.samples.size());
}

TEST(SweepCsv, RejectsGarbage) {
  std::stringstream empty;
  EXPECT_THROW(read_csv(empty), std::invalid_argument);
  std::stringstream bad_header("a,b,c\n1,2,3\n");
  EXPECT_THROW(read_csv(bad_header), std::invalid_argument);
}

// ------------------------------------------------------------ reporting

TEST(Report, ThresholdTableRendersPaperStyle) {
  FakeBackend backend(2.0, 100.0, 1.0);
  SweepConfig cfg;
  cfg.s_max = 300;
  const auto& type = problem_type_by_id("gemm_square");
  cfg.precision = model::Precision::F32;
  const auto f32 = run_sweep(backend, type, cfg);
  cfg.precision = model::Precision::F64;
  const auto f64 = run_sweep(backend, type, cfg);

  const auto entry = make_entry(f32, f64);
  EXPECT_EQ(entry.iterations, 1);
  const std::string table =
      render_threshold_table("testsys", type, {entry});
  EXPECT_NE(table.find("testsys GEMM"), std::string::npos);
  EXPECT_NE(table.find("101 : 101"), std::string::npos);
  EXPECT_NE(table.find("Once"), std::string::npos);
  EXPECT_NE(table.find("USM"), std::string::npos);
}

TEST(Report, MakeEntryRejectsMismatchedSweeps) {
  FakeBackend backend(2.0, 100.0, 1.0);
  SweepConfig cfg;
  cfg.s_max = 20;
  const auto a = run_sweep(backend, problem_type_by_id("gemm_square"), cfg);
  cfg.iterations = 8;
  const auto b = run_sweep(backend, problem_type_by_id("gemm_square"), cfg);
  EXPECT_THROW(make_entry(a, b), std::invalid_argument);
}

TEST(Report, FirstThresholdIteration) {
  ThresholdEntry never;
  never.iterations = 1;
  ThresholdEntry at8;
  at8.iterations = 8;
  at8.f32[0] = OffloadThreshold{100, {100, 100, 100}};
  ThresholdEntry at32;
  at32.iterations = 32;
  at32.f32[0] = OffloadThreshold{50, {50, 50, 50}};
  at32.f64[0] = OffloadThreshold{60, {60, 60, 60}};
  EXPECT_EQ(first_threshold_iteration({never, at8, at32}), "8 : 32");
  EXPECT_EQ(first_threshold_iteration({never}), "-- : --");
}

TEST(Report, SeriesRendering) {
  const std::string out = render_series(
      "title", {"a", "b"}, {1, 2}, {{1.5, 2.5}, {3.0, 4.0}});
  EXPECT_NE(out.find("title"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_NE(out.find("4.00"), std::string::npos);
  EXPECT_THROW(render_series("t", {"a"}, {1}, {{1.0}, {2.0}}),
               std::invalid_argument);
  EXPECT_THROW(render_series("t", {"a"}, {1, 2}, {{1.0}}),
               std::invalid_argument);
}

}  // namespace
