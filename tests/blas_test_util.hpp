#pragma once
// Shared helpers for the BLAS test binaries.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace blob::test {

template <typename T>
std::vector<T> random_vector(std::size_t len, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<T> v(len);
  for (auto& x : v) x = static_cast<T>(rng.uniform(-1.0, 1.0));
  return v;
}

/// Tolerance scaled to the reduction depth: |err| <= tol * (1 + |ref|).
template <typename T>
void expect_near_rel(const std::vector<T>& actual,
                     const std::vector<T>& expected, double tol) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double a = static_cast<double>(actual[i]);
    const double e = static_cast<double>(expected[i]);
    ASSERT_LE(std::fabs(a - e), tol * (1.0 + std::fabs(e)))
        << "index " << i << ": " << a << " vs " << e;
  }
}

template <typename T>
constexpr double gemm_tol(int k) {
  const double eps = std::is_same_v<T, float> ? 1.2e-7 : 2.3e-16;
  return 8.0 * eps * std::max(1, k);
}

}  // namespace blob::test
