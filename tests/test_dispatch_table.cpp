// Decision table: bucketing, cold start, epsilon decay, hysteresis
// stability under deterministic perfmodel noise, and live convergence.

#include <gtest/gtest.h>

#include "dispatch/decision_table.hpp"
#include "perfmodel/noise.hpp"

namespace {

using namespace blob;
using dispatch::BucketKey;
using dispatch::Decision;
using dispatch::DecisionTable;
using dispatch::DecisionTableConfig;
using dispatch::Reason;
using dispatch::Route;

core::OpDesc square_gemm(std::int64_t s,
                         model::Precision p = model::Precision::F32,
                         blas::Transpose ta = blas::Transpose::No,
                         blas::Transpose tb = blas::Transpose::No) {
  return core::OpDesc::gemm(p, ta, tb, s, s, s, 0, 0, 0,
                            /*alpha_one=*/true, /*beta_zero=*/true);
}

TEST(DispatchTable, BucketsAreLogScaleInFlops) {
  // Square GEMM: flops = 2*s^3 (+ beta term), so doubling the dimension
  // moves the shape three log2 buckets up.
  const int b64 = dispatch::size_bucket(square_gemm(64));
  const int b128 = dispatch::size_bucket(square_gemm(128));
  EXPECT_EQ(b128 - b64, 3);
  // Nearby sizes share a bucket; precision does not enter the bucket id
  // (it is a separate key field).
  EXPECT_EQ(dispatch::size_bucket(square_gemm(100)),
            dispatch::size_bucket(square_gemm(101)));
  EXPECT_EQ(dispatch::size_bucket(square_gemm(64)),
            dispatch::size_bucket(square_gemm(64, model::Precision::F64)));
  const BucketKey kf32 = dispatch::bucket_key(square_gemm(64));
  const BucketKey kf64 =
      dispatch::bucket_key(square_gemm(64, model::Precision::F64));
  EXPECT_NE(kf32, kf64);
}

TEST(DispatchTable, TransposeFlagsEnterTheKey) {
  // A transposed call has the same flops (same size bucket) but learns
  // in its own bucket: packing/stride costs differ per layout.
  const BucketKey nn = dispatch::bucket_key(square_gemm(128));
  const BucketKey tn = dispatch::bucket_key(square_gemm(
      128, model::Precision::F32, blas::Transpose::Yes));
  const BucketKey nt = dispatch::bucket_key(square_gemm(
      128, model::Precision::F32, blas::Transpose::No,
      blas::Transpose::Yes));
  EXPECT_EQ(nn.bucket, tn.bucket);
  EXPECT_NE(nn, tn);
  EXPECT_NE(nn, nt);
  EXPECT_NE(tn, nt);
}

TEST(DispatchTable, ColdStartFollowsSeededIncumbent) {
  DecisionTable table;
  const BucketKey key = dispatch::bucket_key(square_gemm(128));
  EXPECT_FALSE(table.contains(key));
  table.seed(key, /*cpu=*/2.0e-3, /*gpu=*/1.0e-3);
  ASSERT_TRUE(table.contains(key));

  const Decision d = table.choose(key);
  EXPECT_EQ(d.route, Route::Gpu);
  EXPECT_EQ(d.reason, Reason::ColdStart);
  EXPECT_DOUBLE_EQ(d.cpu_est_s, 2.0e-3);
  EXPECT_DOUBLE_EQ(d.gpu_est_s, 1.0e-3);

  // Re-seeding an existing bucket is a no-op.
  table.seed(key, 9.0, 9.0);
  EXPECT_DOUBLE_EQ(table.find(key)->cpu.ewma_s, 2.0e-3);
}

TEST(DispatchTable, ForcedCpuLeavesIncumbentAlone) {
  DecisionTable table;
  const BucketKey key = dispatch::bucket_key(square_gemm(128));
  table.seed(key, 2.0e-3, 1.0e-3);
  const Decision d = table.choose(key, /*gpu_available=*/false);
  EXPECT_EQ(d.route, Route::Cpu);
  EXPECT_EQ(d.reason, Reason::Forced);
  EXPECT_EQ(table.find(key)->incumbent, Route::Gpu);
}

TEST(DispatchTable, ChooseOnUnseededBucketThrows) {
  DecisionTable table;
  EXPECT_THROW(table.choose(dispatch::bucket_key(square_gemm(32))),
               std::logic_error);
  EXPECT_THROW(
      table.observe(dispatch::bucket_key(square_gemm(32)), Route::Cpu, 1.0),
      std::logic_error);
}

TEST(DispatchTable, NoFlappingNearCrossoverUnderNoise) {
  // The paper's detector must tolerate "momentary drops ... due to
  // abnormal system behaviour or noise" (SIII-D). Put the two backends
  // 5% apart — inside the 15% hysteresis margin — and feed noisy
  // measurements: the route must not flap.
  DecisionTableConfig cfg;
  cfg.converged_visits = 1u << 30;  // keep exploring for this test
  DecisionTable table(cfg);
  const core::OpDesc shape = square_gemm(256);
  const BucketKey key = dispatch::bucket_key(shape);
  const double cpu_true = 1.00e-3;
  const double gpu_true = 0.95e-3;
  table.seed(key, cpu_true, gpu_true);

  const model::NoiseModel noise(0.10, 0xf1a9);
  std::uint64_t flips = 0;
  Route prev = table.find(key)->incumbent;
  for (int i = 0; i < 600; ++i) {
    const Decision d = table.choose(key);
    const double base = d.route == Route::Gpu ? gpu_true : cpu_true;
    const double measured =
        base * noise.factor("test", d.route == Route::Gpu ? "gpu" : "cpu",
                            shape.precision, shape.m, shape.n, shape.k, i);
    table.observe(key, d.route, measured);
    const Route inc = table.find(key)->incumbent;
    flips += inc != prev;
    prev = inc;
  }
  // 600 noisy near-crossover calls: the offline detector's noise
  // tolerance translates to (almost) no incumbent changes here.
  EXPECT_LE(table.find(key)->switches, 1u);
  EXPECT_LE(flips, 1u);
}

TEST(DispatchTable, GenuineRegimeChangeDethronesIncumbent) {
  DecisionTableConfig cfg;
  cfg.epsilon = 0.0;  // drive the GPU arm with direct observations
  DecisionTable table(cfg);
  const BucketKey key = dispatch::bucket_key(square_gemm(256));
  table.seed(key, /*cpu=*/1.0e-3, /*gpu=*/2.0e-3);
  EXPECT_EQ(table.find(key)->incumbent, Route::Cpu);
  EXPECT_EQ(table.choose(key).reason, Reason::ColdStart);

  // The GPU gets decisively faster (e.g. the transfer pattern changed).
  // The EWMA needs a few probe results to work off the stale seed; once
  // the estimate clears margin + min-samples the route switches.
  for (int i = 0; i < 6; ++i) table.observe(key, Route::Gpu, 0.1e-3);
  const Decision d = table.choose(key);
  EXPECT_EQ(d.route, Route::Gpu);
  EXPECT_EQ(d.reason, Reason::Exploit);
  EXPECT_EQ(table.find(key)->incumbent, Route::Gpu);
  EXPECT_EQ(table.find(key)->switches, 1u);
}

TEST(DispatchTable, OneLuckyProbeCannotStealTheRoute) {
  DecisionTableConfig cfg;
  cfg.epsilon = 0.0;
  cfg.min_samples_to_switch = 8;
  DecisionTable table(cfg);
  const BucketKey key = dispatch::bucket_key(square_gemm(256));
  table.seed(key, 1.0e-3, 2.0e-3);
  table.choose(key);  // burn the cold-start visit
  // A few GPU observations far below the incumbent pull the estimate
  // under the margin, but the sample floor is not met -> the incumbent
  // holds instead of flipping on scant evidence.
  for (int i = 0; i < 4; ++i) table.observe(key, Route::Gpu, 0.01e-3);
  ASSERT_LT(table.find(key)->gpu.ewma_s, 1.0e-3 * 0.85);
  const Decision d = table.choose(key);
  EXPECT_EQ(d.route, Route::Cpu);
  EXPECT_EQ(d.reason, Reason::HysteresisHold);
}

TEST(DispatchTable, BucketsConvergeAndStopExploring) {
  DecisionTableConfig cfg;
  cfg.converged_visits = 16;
  DecisionTable table(cfg);
  const BucketKey key = dispatch::bucket_key(square_gemm(256));
  table.seed(key, 1.0e-3, 3.0e-3);

  for (int i = 0; i < 200; ++i) {
    const Decision d = table.choose(key);
    table.observe(key, d.route, d.route == Route::Cpu ? 1.0e-3 : 3.0e-3);
  }
  ASSERT_TRUE(table.find(key)->converged);
  // After convergence every decision is a pure exploit.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(table.choose(key).reason, Reason::Exploit);
  }
}

TEST(DispatchTable, RestoreMarksHeavilyVisitedBucketsConverged) {
  DecisionTable table;
  const BucketKey key = dispatch::bucket_key(square_gemm(256));
  dispatch::BucketState state;
  state.cpu = {1.0e-3, 40};
  state.gpu = {3.0e-3, 8};
  state.incumbent = Route::Cpu;
  state.visits = 48;
  table.restore(key, state);
  EXPECT_TRUE(table.find(key)->converged);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(table.choose(key).reason, Reason::Exploit);
  }

  dispatch::BucketState young = state;
  young.visits = 3;
  const BucketKey key2 = dispatch::bucket_key(square_gemm(512));
  table.restore(key2, young);
  EXPECT_FALSE(table.find(key2)->converged);
}

}  // namespace
