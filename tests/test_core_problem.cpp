// Problem-type registry and the FLOPs/bytes model (paper §III-A/C).

#include <gtest/gtest.h>

#include "core/flops.hpp"
#include "core/problem.hpp"

namespace {

using namespace blob;
using namespace blob::core;

TEST(ProblemTypes, RegistryHasPaperCounts) {
  // 9 GEMM + 5 GEMV = the artifact's 28 CSVs over two precisions.
  EXPECT_EQ(gemm_problem_types().size(), 9u);
  EXPECT_EQ(gemv_problem_types().size(), 5u);
  EXPECT_EQ(all_problem_types().size(), 14u);
}

TEST(ProblemTypes, IdsAreUnique) {
  std::set<std::string> ids;
  for (const auto& t : all_problem_types()) ids.insert(t.id());
  EXPECT_EQ(ids.size(), all_problem_types().size());
}

TEST(ProblemTypes, GemmDimRelationships) {
  auto dims = [](const char* id, std::int64_t s) {
    return problem_type_by_id(id).dims(s);
  };
  // Square.
  EXPECT_EQ(dims("gemm_square", 7).m, 7);
  EXPECT_EQ(dims("gemm_square", 7).n, 7);
  EXPECT_EQ(dims("gemm_square", 7).k, 7);
  // M=N, K=16M.
  auto tall_k = dims("gemm_tall_k", 10);
  EXPECT_EQ(tall_k.m, 10);
  EXPECT_EQ(tall_k.n, 10);
  EXPECT_EQ(tall_k.k, 160);
  // M=N=32, K>=1.
  auto fixed_mn = dims("gemm_fixed_mn_32", 77);
  EXPECT_EQ(fixed_mn.m, 32);
  EXPECT_EQ(fixed_mn.n, 32);
  EXPECT_EQ(fixed_mn.k, 77);
  // K=N, M=16K.
  auto wide_m = dims("gemm_wide_m", 5);
  EXPECT_EQ(wide_m.m, 80);
  EXPECT_EQ(wide_m.n, 5);
  EXPECT_EQ(wide_m.k, 5);
  // K=N=32, M>=1.
  auto fixed_kn = dims("gemm_fixed_kn_32", 9);
  EXPECT_EQ(fixed_kn.m, 9);
  EXPECT_EQ(fixed_kn.n, 32);
  EXPECT_EQ(fixed_kn.k, 32);
  // M=K, N=16K.
  auto tall_n = dims("gemm_tall_n", 4);
  EXPECT_EQ(tall_n.m, 4);
  EXPECT_EQ(tall_n.n, 64);
  EXPECT_EQ(tall_n.k, 4);
  // M=K=32, N>=1.
  auto fixed_mk = dims("gemm_fixed_mk_32", 50);
  EXPECT_EQ(fixed_mk.m, 32);
  EXPECT_EQ(fixed_mk.n, 50);
  EXPECT_EQ(fixed_mk.k, 32);
  // M=N, K=32.
  auto thin_k = dims("gemm_thin_k", 640);
  EXPECT_EQ(thin_k.m, 640);
  EXPECT_EQ(thin_k.n, 640);
  EXPECT_EQ(thin_k.k, 32);
  // M=N, M=16K (K = M/16, at least 1).
  auto short_k = dims("gemm_short_k", 64);
  EXPECT_EQ(short_k.m, 64);
  EXPECT_EQ(short_k.n, 64);
  EXPECT_EQ(short_k.k, 4);
  EXPECT_EQ(dims("gemm_short_k", 3).k, 1);  // floor of one
}

TEST(ProblemTypes, GemvDimRelationships) {
  auto dims = [](const char* id, std::int64_t s) {
    return problem_type_by_id(id).dims(s);
  };
  EXPECT_EQ(dims("gemv_square", 12).m, 12);
  EXPECT_EQ(dims("gemv_square", 12).n, 12);
  EXPECT_EQ(dims("gemv_tall", 12).m, 192);   // M=16N
  EXPECT_EQ(dims("gemv_tall", 12).n, 12);
  EXPECT_EQ(dims("gemv_fixed_n_32", 99).m, 99);
  EXPECT_EQ(dims("gemv_fixed_n_32", 99).n, 32);
  EXPECT_EQ(dims("gemv_wide", 12).m, 12);    // N=16M
  EXPECT_EQ(dims("gemv_wide", 12).n, 192);
  EXPECT_EQ(dims("gemv_fixed_m_32", 99).m, 32);
  EXPECT_EQ(dims("gemv_fixed_m_32", 99).n, 99);
}

TEST(ProblemTypes, LookupErrors) {
  EXPECT_THROW(problem_type_by_id("nonexistent"), std::invalid_argument);
  EXPECT_NO_THROW(problem_type_by_id("gemm_square"));
}

TEST(ProblemTypes, OpTagging) {
  for (const auto& t : gemm_problem_types()) {
    EXPECT_EQ(t.op(), KernelOp::Gemm) << t.id();
  }
  for (const auto& t : gemv_problem_types()) {
    EXPECT_EQ(t.op(), KernelOp::Gemv) << t.id();
  }
  EXPECT_STREQ(to_string(KernelOp::Gemm), "gemm");
  EXPECT_STREQ(to_string(KernelOp::Gemv), "gemv");
}

// ----------------------------------------------------------------- flops

TEST(Flops, GemmFollowsPaperModel) {
  // 2MNK + MN + qMN, q = 0 (beta=0) or 2.
  EXPECT_DOUBLE_EQ(gemm_flops(10, 20, 30, true), 2.0 * 10 * 20 * 30 + 200);
  EXPECT_DOUBLE_EQ(gemm_flops(10, 20, 30, false),
                   2.0 * 10 * 20 * 30 + 200 + 400);
}

TEST(Flops, GemvFollowsPaperModel) {
  // 2MN + M + qM.
  EXPECT_DOUBLE_EQ(gemv_flops(10, 20, true), 2.0 * 10 * 20 + 10);
  EXPECT_DOUBLE_EQ(gemv_flops(10, 20, false), 2.0 * 10 * 20 + 10 + 20);
}

TEST(Flops, ProblemFlopsDispatches) {
  Problem gemm_p;
  gemm_p.op = KernelOp::Gemm;
  gemm_p.dims = {8, 8, 8};
  gemm_p.beta_zero = true;
  EXPECT_DOUBLE_EQ(problem_flops(gemm_p), 2.0 * 512 + 64);

  Problem gemv_p;
  gemv_p.op = KernelOp::Gemv;
  gemv_p.dims = {8, 8, 1};
  EXPECT_DOUBLE_EQ(problem_flops(gemv_p), 2.0 * 64 + 8);
}

TEST(Flops, TransferBytesCountAllStructures) {
  Problem p;
  p.op = KernelOp::Gemm;
  p.precision = model::Precision::F32;
  p.dims = {10, 20, 30};
  // A (10x30) + B (30x20) + C (10x20), 4 bytes each.
  EXPECT_DOUBLE_EQ(h2d_bytes(p), 4.0 * (300 + 600 + 200));
  EXPECT_DOUBLE_EQ(d2h_bytes(p), 4.0 * 200);

  p.precision = model::Precision::F64;
  EXPECT_DOUBLE_EQ(h2d_bytes(p), 8.0 * (300 + 600 + 200));

  Problem v;
  v.op = KernelOp::Gemv;
  v.precision = model::Precision::F32;
  v.dims = {10, 20, 1};
  // A (10x20) + x (20) + y (10).
  EXPECT_DOUBLE_EQ(h2d_bytes(v), 4.0 * (200 + 20 + 10));
  EXPECT_DOUBLE_EQ(d2h_bytes(v), 4.0 * 10);
}

TEST(Flops, ArithmeticIntensityOrdersProblemsCorrectly) {
  // Square GEMM has far higher AI than the skinny fixed-32 GEMM variants
  // — the paper's explanation for which problems never offload on DAWN.
  Problem square;
  square.op = KernelOp::Gemm;
  square.dims = {1024, 1024, 1024};
  Problem skinny;
  skinny.op = KernelOp::Gemm;
  skinny.dims = {32, 32, 1024};
  Problem gemv_p;
  gemv_p.op = KernelOp::Gemv;
  gemv_p.dims = {1024, 1024, 1};
  EXPECT_GT(arithmetic_intensity(square), 10 * arithmetic_intensity(skinny));
  EXPECT_GT(arithmetic_intensity(skinny), arithmetic_intensity(gemv_p));
}

TEST(Flops, GflopsComputation) {
  Problem p;
  p.op = KernelOp::Gemm;
  p.dims = {100, 100, 100};
  const double flops = 2.0 * 1e6 + 1e4;
  EXPECT_NEAR(gflops(p, 10, 1.0), 10 * flops / 1e9, 1e-12);
  EXPECT_DOUBLE_EQ(gflops(p, 10, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(gflops(p, 0, 1.0), 0.0);
}

}  // namespace
