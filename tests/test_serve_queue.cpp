// ShardedQueue: the MPMC channel under both the single-device admission
// queue and the serve-layer DeviceFleet. The stress cases here are
// tsan-targeted: many producers x many shard consumers, shutdown while
// producers sit blocked on a full shard, and the invariant that every
// accepted item is popped exactly once (nothing lost, nothing
// duplicated, in shard-FIFO order).

#include "dispatch/sharded_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace {

using blob::dispatch::ShardedQueue;

TEST(ShardedQueue, FifoPerShard) {
  ShardedQueue<int> queue(2);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(queue.push(static_cast<std::size_t>(i % 2), int(i)));
  }
  EXPECT_EQ(queue.depth(0), 50u);
  EXPECT_EQ(queue.depth(1), 50u);
  for (int i = 0; i < 100; ++i) {
    const auto item = queue.pop(static_cast<std::size_t>(i % 2));
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);  // per-shard order == push order
  }
}

TEST(ShardedQueue, TryPushRespectsCapacity) {
  ShardedQueue<int> queue(1, /*capacity=*/4);
  for (int i = 0; i < 4; ++i) {
    int v = i;
    EXPECT_TRUE(queue.try_push(0, v));
  }
  int overflow = 99;
  EXPECT_FALSE(queue.try_push(0, overflow));
  EXPECT_EQ(overflow, 99);  // rejected item is untouched

  std::vector<int> out;
  EXPECT_EQ(queue.try_pop_batch(0, 16, out), 4u);
  ASSERT_EQ(out.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(queue.try_pop_batch(0, 16, out), 0u);
}

TEST(ShardedQueue, MoveOnlyPayload) {
  ShardedQueue<std::unique_ptr<int>> queue(1);
  ASSERT_TRUE(queue.push(0, std::make_unique<int>(7)));
  auto item = queue.pop(0);
  ASSERT_TRUE(item.has_value());
  ASSERT_TRUE(*item != nullptr);
  EXPECT_EQ(**item, 7);
}

TEST(ShardedQueue, PushAndPopAfterCloseDrain) {
  ShardedQueue<int> queue(1);
  ASSERT_TRUE(queue.push(0, 1));
  ASSERT_TRUE(queue.push(0, 2));
  queue.close();
  int rejected = 3;
  EXPECT_FALSE(queue.push(0, rejected));
  // Items accepted before close() stay poppable (drain-on-close).
  EXPECT_EQ(queue.pop(0).value_or(-1), 1);
  EXPECT_EQ(queue.pop(0).value_or(-1), 2);
  EXPECT_FALSE(queue.pop(0).has_value());
}

TEST(ShardedQueue, PopUnblocksOnClose) {
  ShardedQueue<int> queue(1);
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    EXPECT_FALSE(queue.pop(0).has_value());
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(returned.load());
  queue.close();
  consumer.join();
  EXPECT_TRUE(returned.load());
}

// Many producers x one consumer per shard. Every pushed id must be
// popped exactly once, and ids from one producer must arrive in
// per-shard FIFO order.
TEST(ShardedQueue, StressManyProducersManyConsumers) {
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kProducers = 8;
  constexpr std::uint64_t kPerProducer = 400;
  ShardedQueue<std::uint64_t> queue(kShards, /*capacity=*/32);

  std::vector<std::vector<std::uint64_t>> popped(kShards);
  std::vector<std::thread> consumers;
  for (std::size_t s = 0; s < kShards; ++s) {
    consumers.emplace_back([&, s] {
      std::vector<std::uint64_t> batch;
      for (;;) {
        batch.clear();
        if (queue.pop_batch(s, 7, batch) == 0) return;
        popped[s].insert(popped[s].end(), batch.begin(), batch.end());
      }
    });
  }

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t id = p * kPerProducer + i;
        ASSERT_TRUE(queue.push(id % kShards, std::uint64_t(id)));
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.close();
  for (auto& t : consumers) t.join();

  std::set<std::uint64_t> seen;
  std::size_t total = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    total += popped[s].size();
    // Per-producer FIFO within a shard: ids from one producer grow
    // monotonically in the order the consumer received them.
    std::vector<std::uint64_t> last(kProducers, 0);
    std::vector<bool> any(kProducers, false);
    for (const std::uint64_t id : popped[s]) {
      EXPECT_TRUE(seen.insert(id).second) << "duplicate id " << id;
      const std::size_t p = static_cast<std::size_t>(id / kPerProducer);
      if (any[p]) {
        EXPECT_LT(last[p], id) << "reordered within producer";
      }
      last[p] = id;
      any[p] = true;
    }
  }
  EXPECT_EQ(total, kProducers * kPerProducer);  // nothing lost
}

// Shutdown while producers are blocked on a full shard: they must wake,
// see the rejection, and every item accepted before close() must still
// drain exactly once.
TEST(ShardedQueue, ShutdownWhileFull) {
  constexpr std::size_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 200;
  ShardedQueue<std::uint64_t> queue(1, /*capacity=*/2);

  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> rejected{0};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        std::uint64_t id = p * kPerProducer + i;
        if (queue.push(0, id)) {
          accepted.fetch_add(1);
        } else {
          rejected.fetch_add(1);
        }
      }
    });
  }

  // Let the shard fill and the producers block, drain a little, then
  // close mid-flight.
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5; ++i) {
    const auto item = queue.pop(0);
    ASSERT_TRUE(item.has_value());
    EXPECT_TRUE(seen.insert(*item).second);
  }
  queue.close();
  for (auto& t : producers) t.join();
  // Drain whatever was accepted before the close.
  for (auto item = queue.pop(0); item.has_value(); item = queue.pop(0)) {
    EXPECT_TRUE(seen.insert(*item).second);
  }

  EXPECT_EQ(accepted.load() + rejected.load(), kProducers * kPerProducer);
  EXPECT_EQ(seen.size(), accepted.load());  // accepted == drained, no loss
  EXPECT_GT(rejected.load(), 0u);           // the close really hit mid-burst
}

}  // namespace
