// CBLAS-compatible C interface: column-major calls must match the native
// kernels, row-major calls must match a transposed formulation.

#include <gtest/gtest.h>

#include "blas/cblas.hpp"
#include "blas/ref_blas.hpp"
#include "blas_test_util.hpp"

namespace {

using namespace blob;
using blob::test::random_vector;

TEST(Cblas, Level1EntryPoints) {
  auto x = random_vector<double>(100, 1);
  auto y = random_vector<double>(100, 2);
  EXPECT_DOUBLE_EQ(cblas_ddot(100, x.data(), 1, y.data(), 1),
                   blas::ref::dot(100, x.data(), 1, y.data(), 1));
  EXPECT_DOUBLE_EQ(cblas_dnrm2(100, x.data(), 1),
                   blas::ref::nrm2(100, x.data(), 1));
  EXPECT_DOUBLE_EQ(cblas_dasum(100, x.data(), 1),
                   blas::ref::asum(100, x.data(), 1));
  EXPECT_EQ(cblas_idamax(100, x.data(), 1),
            static_cast<std::size_t>(blas::ref::iamax(100, x.data(), 1)));

  auto y2 = y;
  cblas_daxpy(100, 1.5, x.data(), 1, y.data(), 1);
  blas::ref::axpy(100, 1.5, x.data(), 1, y2.data(), 1);
  EXPECT_EQ(y, y2);

  auto xs = x;
  cblas_dscal(100, 0.5, xs.data(), 1);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(xs[i], 0.5 * x[i]);

  std::vector<double> dst(100, 0.0);
  cblas_dcopy(100, x.data(), 1, dst.data(), 1);
  EXPECT_EQ(dst, x);
  cblas_dswap(100, dst.data(), 1, y.data(), 1);
  EXPECT_EQ(dst, y2);

  // float variants share the same plumbing; spot-check one.
  std::vector<float> fx = {3.0f, -4.0f};
  EXPECT_FLOAT_EQ(cblas_snrm2(2, fx.data(), 1), 5.0f);
  EXPECT_FLOAT_EQ(cblas_sasum(2, fx.data(), 1), 7.0f);
  EXPECT_EQ(cblas_isamax(2, fx.data(), 1), 1u);
  std::vector<float> fy = {0.0f, 0.0f};
  cblas_saxpy(2, 2.0f, fx.data(), 1, fy.data(), 1);
  EXPECT_FLOAT_EQ(fy[1], -8.0f);
  EXPECT_FLOAT_EQ(cblas_sdot(2, fx.data(), 1, fy.data(), 1), 50.0f);
  cblas_sscal(2, 0.5f, fy.data(), 1);
  EXPECT_FLOAT_EQ(fy[0], 3.0f);
  std::vector<float> fz(2);
  cblas_scopy(2, fy.data(), 1, fz.data(), 1);
  cblas_sswap(2, fy.data(), 1, fz.data(), 1);
  EXPECT_FLOAT_EQ(fz[0], 3.0f);
}

TEST(Cblas, ColMajorGemmMatchesReference) {
  const int m = 17, n = 13, k = 9;
  auto a = random_vector<double>(static_cast<std::size_t>(m) * k, 3);
  auto b = random_vector<double>(static_cast<std::size_t>(k) * n, 4);
  auto c1 = random_vector<double>(static_cast<std::size_t>(m) * n, 5);
  auto c2 = c1;
  cblas_dgemm(CblasColMajor, CblasNoTrans, CblasNoTrans, m, n, k, 1.5,
              a.data(), m, b.data(), k, 0.5, c1.data(), m);
  blas::ref::gemm(blas::Transpose::No, blas::Transpose::No, m, n, k, 1.5,
                  a.data(), m, b.data(), k, 0.5, c2.data(), m);
  test::expect_near_rel(c1, c2, 1e-12);
}

TEST(Cblas, RowMajorGemmMatchesTransposedFormulation) {
  // Row-major C (m x n) with row-major A (m x k), B (k x n): compute the
  // same product column-major by viewing the row-major buffers as the
  // transposed matrices.
  const int m = 6, n = 5, k = 4;
  auto a = random_vector<double>(static_cast<std::size_t>(m) * k, 6);
  auto b = random_vector<double>(static_cast<std::size_t>(k) * n, 7);
  std::vector<double> c_rm(static_cast<std::size_t>(m) * n, 0.0);
  cblas_dgemm(CblasRowMajor, CblasNoTrans, CblasNoTrans, m, n, k, 1.0,
              a.data(), k, b.data(), n, 0.0, c_rm.data(), n);

  // Element check against a scalar triple loop in row-major indexing.
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double sum = 0.0;
      for (int p = 0; p < k; ++p) {
        sum += a[static_cast<std::size_t>(i) * k + p] *
               b[static_cast<std::size_t>(p) * n + j];
      }
      ASSERT_NEAR(c_rm[static_cast<std::size_t>(i) * n + j], sum, 1e-12);
    }
  }
}

TEST(Cblas, RowMajorGemmWithTransposes) {
  const int m = 5, n = 7, k = 6;
  // A is k x m stored row-major and used transposed.
  auto a = random_vector<float>(static_cast<std::size_t>(k) * m, 8);
  auto b = random_vector<float>(static_cast<std::size_t>(k) * n, 9);
  std::vector<float> c(static_cast<std::size_t>(m) * n, 0.0f);
  cblas_sgemm(CblasRowMajor, CblasTrans, CblasNoTrans, m, n, k, 1.0f,
              a.data(), m, b.data(), n, 0.0f, c.data(), n);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float sum = 0.0f;
      for (int p = 0; p < k; ++p) {
        sum += a[static_cast<std::size_t>(p) * m + i] *
               b[static_cast<std::size_t>(p) * n + j];
      }
      ASSERT_NEAR(c[static_cast<std::size_t>(i) * n + j], sum, 1e-4);
    }
  }
}

TEST(Cblas, GemvBothOrders) {
  const int m = 11, n = 8;
  auto a = random_vector<double>(static_cast<std::size_t>(m) * n, 10);
  auto x = random_vector<double>(n, 11);
  std::vector<double> y_cm(m, 0.0);
  cblas_dgemv(CblasColMajor, CblasNoTrans, m, n, 1.0, a.data(), m, x.data(),
              1, 0.0, y_cm.data(), 1);
  std::vector<double> y_ref(m, 0.0);
  blas::ref::gemv(blas::Transpose::No, m, n, 1.0, a.data(), m, x.data(), 1,
                  0.0, y_ref.data(), 1);
  test::expect_near_rel(y_cm, y_ref, 1e-12);

  // Row-major: same logical matrix stored row-major (= its transpose
  // stored column-major with lda = n).
  std::vector<double> a_rm(static_cast<std::size_t>(m) * n);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      a_rm[static_cast<std::size_t>(i) * n + j] =
          a[i + static_cast<std::size_t>(j) * m];
    }
  }
  std::vector<double> y_rm(m, 0.0);
  cblas_dgemv(CblasRowMajor, CblasNoTrans, m, n, 1.0, a_rm.data(), n,
              x.data(), 1, 0.0, y_rm.data(), 1);
  test::expect_near_rel(y_rm, y_ref, 1e-12);

  // float spot check.
  std::vector<float> fa = {1.0f, 2.0f};  // 1x2 col-major
  std::vector<float> fx = {3.0f, 4.0f};
  std::vector<float> fy = {0.0f};
  cblas_sgemv(CblasColMajor, CblasNoTrans, 1, 2, 1.0f, fa.data(), 1,
              fx.data(), 1, 0.0f, fy.data(), 1);
  EXPECT_FLOAT_EQ(fy[0], 11.0f);
}

TEST(Cblas, GerBothOrders) {
  const int m = 4, n = 3;
  auto x = random_vector<double>(m, 12);
  auto y = random_vector<double>(n, 13);
  std::vector<double> a_cm(static_cast<std::size_t>(m) * n, 1.0);
  cblas_dger(CblasColMajor, m, n, 2.0, x.data(), 1, y.data(), 1, a_cm.data(),
             m);
  std::vector<double> a_rm(static_cast<std::size_t>(m) * n, 1.0);
  cblas_dger(CblasRowMajor, m, n, 2.0, x.data(), 1, y.data(), 1, a_rm.data(),
             n);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      const double expected = 1.0 + 2.0 * x[i] * y[j];
      ASSERT_NEAR(a_cm[i + static_cast<std::size_t>(j) * m], expected, 1e-13);
      ASSERT_NEAR(a_rm[static_cast<std::size_t>(i) * n + j], expected, 1e-13);
    }
  }
  std::vector<float> sx = {1.0f, 2.0f};
  std::vector<float> sy = {3.0f};
  std::vector<float> sa = {0.0f, 0.0f};
  cblas_sger(CblasColMajor, 2, 1, 1.0f, sx.data(), 1, sy.data(), 1, sa.data(),
             2);
  EXPECT_FLOAT_EQ(sa[1], 6.0f);
}

TEST(Cblas, RotAndRotg) {
  double a = 3.0, b = 4.0, c = 0.0, s = 0.0;
  cblas_drotg(&a, &b, &c, &s);
  EXPECT_NEAR(c * c + s * s, 1.0, 1e-14);
  EXPECT_NEAR(a, 5.0, 1e-14);
  std::vector<double> x = {1.0, 0.0};
  std::vector<double> y = {0.0, 1.0};
  cblas_drot(2, x.data(), 1, y.data(), 1, c, s);
  EXPECT_NEAR(x[0] * x[0] + y[0] * y[0], 1.0, 1e-14);
  float fa = 0.0f, fb = 5.0f, fc = 0.0f, fs = 0.0f;
  cblas_srotg(&fa, &fb, &fc, &fs);
  EXPECT_NEAR(fc * fc + fs * fs, 1.0f, 1e-6f);
  std::vector<float> fx = {1.0f};
  std::vector<float> fy = {2.0f};
  cblas_srot(1, fx.data(), 1, fy.data(), 1, 0.6f, 0.8f);
  EXPECT_FLOAT_EQ(fx[0], 0.6f * 1.0f + 0.8f * 2.0f);
}

TEST(Cblas, SymvBothOrders) {
  const int n = 12;
  auto a = random_vector<double>(static_cast<std::size_t>(n) * n, 20);
  auto x = random_vector<double>(n, 21);
  std::vector<double> y_cm(n, 0.0);
  cblas_dsymv(CblasColMajor, CblasLower, n, 1.0, a.data(), n, x.data(), 1,
              0.0, y_cm.data(), 1);
  std::vector<double> y_ref(n, 0.0);
  blas::ref::symv(blas::UpLo::Lower, n, 1.0, a.data(), n, x.data(), 1, 0.0,
                  y_ref.data(), 1);
  test::expect_near_rel(y_cm, y_ref, 1e-12);
  // Row-major lower == column-major upper on the same buffer.
  std::vector<double> y_rm(n, 0.0);
  cblas_dsymv(CblasRowMajor, CblasUpper, n, 1.0, a.data(), n, x.data(), 1,
              0.0, y_rm.data(), 1);
  test::expect_near_rel(y_rm, y_ref, 1e-12);
  std::vector<float> fa = {2.0f};
  std::vector<float> fx = {3.0f};
  std::vector<float> fy = {0.0f};
  cblas_ssymv(CblasColMajor, CblasUpper, 1, 1.0f, fa.data(), 1, fx.data(), 1,
              0.0f, fy.data(), 1);
  EXPECT_FLOAT_EQ(fy[0], 6.0f);
}

TEST(Cblas, TrsvSolvesBothOrders) {
  // Lower triangular [[2,0],[1,4]] (column major) x = [2, 9].
  std::vector<double> a = {2.0, 1.0, 0.0, 4.0};
  std::vector<double> x = {2.0, 9.0};
  cblas_dtrsv(CblasColMajor, CblasLower, CblasNoTrans, CblasNonUnit, 2,
              a.data(), 2, x.data(), 1);
  EXPECT_NEAR(x[0], 1.0, 1e-14);
  EXPECT_NEAR(x[1], 2.0, 1e-14);
  // The same logical matrix row-major: [[2,0],[1,4]] stored by rows is
  // {2, 0, 1, 4}; solving should give the same answer.
  std::vector<double> a_rm = {2.0, 0.0, 1.0, 4.0};
  std::vector<double> x2 = {2.0, 9.0};
  cblas_dtrsv(CblasRowMajor, CblasLower, CblasNoTrans, CblasNonUnit, 2,
              a_rm.data(), 2, x2.data(), 1);
  EXPECT_NEAR(x2[0], 1.0, 1e-14);
  EXPECT_NEAR(x2[1], 2.0, 1e-14);
  std::vector<float> fa = {4.0f};
  std::vector<float> fx = {8.0f};
  cblas_strsv(CblasColMajor, CblasUpper, CblasNoTrans, CblasNonUnit, 1,
              fa.data(), 1, fx.data(), 1);
  EXPECT_FLOAT_EQ(fx[0], 2.0f);
}

TEST(Cblas, SyrkMatchesReference) {
  const int n = 10, k = 6;
  auto a = random_vector<double>(static_cast<std::size_t>(n) * k, 22);
  std::vector<double> c1(static_cast<std::size_t>(n) * n, 1.0);
  auto c2 = c1;
  cblas_dsyrk(CblasColMajor, CblasLower, CblasNoTrans, n, k, 1.5, a.data(),
              n, 0.5, c1.data(), n);
  blas::ref::syrk(blas::UpLo::Lower, blas::Transpose::No, n, k, 1.5,
                  a.data(), n, 0.5, c2.data(), n);
  test::expect_near_rel(c1, c2, 1e-12);
  std::vector<float> sa = {2.0f};
  std::vector<float> sc = {0.0f};
  cblas_ssyrk(CblasColMajor, CblasUpper, CblasNoTrans, 1, 1, 1.0f, sa.data(),
              1, 0.0f, sc.data(), 1);
  EXPECT_FLOAT_EQ(sc[0], 4.0f);
}

TEST(Cblas, TrsmSolvesBothOrders) {
  const int m = 20, n = 6;
  auto a = random_vector<double>(static_cast<std::size_t>(m) * m, 23);
  for (int i = 0; i < m; ++i) a[i + static_cast<std::size_t>(i) * m] += 4.0;
  auto b_cm = random_vector<double>(static_cast<std::size_t>(m) * n, 24);
  auto b_ref = b_cm;
  cblas_dtrsm(CblasColMajor, CblasLeft, CblasLower, CblasNoTrans,
              CblasNonUnit, m, n, 1.0, a.data(), m, b_cm.data(), m);
  blas::ref::trsm(blas::Side::Left, blas::UpLo::Lower, blas::Transpose::No,
                  blas::Diag::NonUnit, m, n, 1.0, a.data(), m, b_ref.data(),
                  m);
  test::expect_near_rel(b_cm, b_ref, 1e-10);

  // Row-major equivalence: view the same column-major buffers as
  // row-major transposes. X solves op(A) X = B column-major iff X^T
  // solves the row-major problem X^T op(A)^T = B^T with side Right.
  auto b_rm = b_ref;  // holds X column-major == X^T row-major (n x m)
  // Rebuild B^T row-major = B column-major buffer reused: we instead
  // verify the row-major path on a fresh small system.
  std::vector<double> a2 = {2.0, 0.0, 1.0, 4.0};  // row-major lower 2x2
  std::vector<double> rhs = {2.0, 9.0};           // one column, m=2, n=1
  // Row-major B (2x1) has ldb = 1.
  cblas_dtrsm(CblasRowMajor, CblasLeft, CblasLower, CblasNoTrans,
              CblasNonUnit, 2, 1, 1.0, a2.data(), 2, rhs.data(), 1);
  EXPECT_NEAR(rhs[0], 1.0, 1e-14);
  EXPECT_NEAR(rhs[1], 2.0, 1e-14);
  (void)b_rm;
  std::vector<float> fa = {4.0f};
  std::vector<float> fb = {8.0f};
  cblas_strsm(CblasColMajor, CblasLeft, CblasUpper, CblasNoTrans,
              CblasNonUnit, 1, 1, 1.0f, fa.data(), 1, fb.data(), 1);
  EXPECT_FLOAT_EQ(fb[0], 2.0f);
}

// Counts interceptions and handles only f64 GEMM, to prove both that a
// hook sees the calls and that returning false falls through to the
// default library path.
class CountingHook final : public blas::CblasDispatchHook {
 public:
  int gemm_f32 = 0, gemm_f64 = 0, gemv_f64 = 0;

  bool gemm(const core::OpDesc&, float, const float*, const float*, float,
            float*) override {
    ++gemm_f32;
    return false;  // not handled: cblas must still execute the call
  }
  bool gemm(const core::OpDesc& desc, double, const double*, const double*,
            double, double* c) override {
    ++gemm_f64;
    for (std::int64_t j = 0; j < desc.n; ++j) {
      for (std::int64_t i = 0; i < desc.m; ++i) {
        c[i + static_cast<std::size_t>(j) *
                  static_cast<std::size_t>(desc.ldc)] = 42.0;
      }
    }
    return true;  // handled: cblas must NOT touch c again
  }
  bool gemv(const core::OpDesc&, float, const float*, const float*, float,
            float*) override {
    return false;
  }
  bool gemv(const core::OpDesc&, double, const double*, const double*,
            double, double*) override {
    ++gemv_f64;
    return false;
  }
};

TEST(Cblas, DispatchHookInterceptsGemmAndGemv) {
  CountingHook hook;
  blas::cblas_set_dispatch_hook(&hook);
  ASSERT_EQ(blas::cblas_dispatch_hook(), &hook);

  const int m = 8, n = 6, k = 5;
  auto a = random_vector<double>(static_cast<std::size_t>(m) * k, 30);
  auto b = random_vector<double>(static_cast<std::size_t>(k) * n, 31);
  std::vector<double> c(static_cast<std::size_t>(m) * n, 0.0);

  // Handled by the hook: the output is the hook's, not the product.
  cblas_dgemm(CblasColMajor, CblasNoTrans, CblasNoTrans, m, n, k, 1.0,
              a.data(), m, b.data(), k, 0.0, c.data(), m);
  EXPECT_EQ(hook.gemm_f64, 1);
  for (double v : c) ASSERT_DOUBLE_EQ(v, 42.0);

  // Row-major calls reach the hook too (already normalised to col-major).
  cblas_dgemm(CblasRowMajor, CblasNoTrans, CblasNoTrans, n, m, k, 1.0,
              b.data(), k, a.data(), m, 0.0, c.data(), m);
  EXPECT_EQ(hook.gemm_f64, 2);

  // Declined by the hook: the default path still computes the result.
  auto fa = random_vector<float>(static_cast<std::size_t>(m) * k, 32);
  auto fb = random_vector<float>(static_cast<std::size_t>(k) * n, 33);
  std::vector<float> fc(static_cast<std::size_t>(m) * n, 0.0f);
  cblas_sgemm(CblasColMajor, CblasNoTrans, CblasNoTrans, m, n, k, 1.0f,
              fa.data(), m, fb.data(), k, 0.0f, fc.data(), m);
  EXPECT_EQ(hook.gemm_f32, 1);
  float want = 0.0f;
  for (int p = 0; p < k; ++p) {
    want += fa[static_cast<std::size_t>(p) * m] *
            fb[static_cast<std::size_t>(p)];
  }
  EXPECT_NEAR(fc[0], want, 1e-5f);

  // a is m x k, so the GEMV over it is m x k as well.
  auto x = random_vector<double>(k, 34);
  std::vector<double> y(m, 0.0);
  cblas_dgemv(CblasColMajor, CblasNoTrans, m, k, 1.0, a.data(), m, x.data(),
              1, 0.0, y.data(), 1);
  EXPECT_EQ(hook.gemv_f64, 1);
  std::vector<double> y_ref(m, 0.0);
  blas::ref::gemv(blas::Transpose::No, m, k, 1.0, a.data(), m, x.data(), 1,
                  0.0, y_ref.data(), 1);
  test::expect_near_rel(y, y_ref, 1e-12);

  // Detached: calls stop reaching the hook.
  blas::cblas_set_dispatch_hook(nullptr);
  EXPECT_EQ(blas::cblas_dispatch_hook(), nullptr);
  cblas_dgemv(CblasColMajor, CblasNoTrans, m, k, 1.0, a.data(), m, x.data(),
              1, 0.0, y.data(), 1);
  EXPECT_EQ(hook.gemv_f64, 1);
}

TEST(Cblas, LibrarySwapTakesEffect) {
  blas::cblas_set_library(blas::single_thread_personality(), 1);
  EXPECT_EQ(blas::cblas_library().personality().name, "single-thread");
  // Calls still work after the swap.
  std::vector<double> x = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(cblas_ddot(2, x.data(), 1, x.data(), 1), 5.0);
  blas::cblas_set_library(blas::generic_personality());
  EXPECT_EQ(blas::cblas_library().personality().name, "generic");
}

}  // namespace
