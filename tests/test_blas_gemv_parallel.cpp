// The bandwidth-saturating GEMV engine: serial-vs-parallel agreement
// (bitwise where the summation order is preserved, tight-ULP for the
// split-m tree reduction), strided/negative increments through the
// staging path, padded lda, flops-aware grain behaviour, and the batched
// GEMV primitives against per-item serial execution.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <limits>
#include <vector>

#include "blas/batched.hpp"
#include "blas/gemv.hpp"
#include "blas/ref_blas.hpp"
#include "blas_test_util.hpp"
#include "parallel/policy.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace blob;
using blas::Transpose;
using blob::test::random_vector;

template <typename T>
std::vector<T> strided_copy(const std::vector<T>& contiguous, int len,
                            int inc, std::uint64_t fill_seed) {
  // A buffer big enough for |inc|-strided access, filled with noise so a
  // kernel writing outside its stride is caught.
  std::vector<T> out =
      random_vector<T>(static_cast<std::size_t>(len) * std::abs(inc) + 3,
                       fill_seed);
  int idx = inc >= 0 ? 0 : (len - 1) * (-inc);
  for (int i = 0; i < len; ++i, idx += inc) {
    out[static_cast<std::size_t>(idx)] = contiguous[static_cast<std::size_t>(i)];
  }
  return out;
}

/// Run one problem through gemv_serial and the threaded gemv and compare.
/// `bitwise` asserts exact equality (row/column splits preserve each
/// output element's summation order); otherwise a reduction-depth-scaled
/// relative tolerance covers the split-m tree reduction.
template <typename T>
void expect_parallel_matches_serial(Transpose ta, int m, int n, T alpha,
                                    T beta, std::size_t threads,
                                    bool bitwise, int lda_pad = 0,
                                    int incx = 1, int incy = 1) {
  const int lda = std::max(1, m + lda_pad);
  const int x_len = ta == Transpose::No ? n : m;
  const int y_len = ta == Transpose::No ? m : n;

  const auto a = random_vector<T>(
      static_cast<std::size_t>(lda) * std::max(1, n), 101);
  const auto x_c = random_vector<T>(static_cast<std::size_t>(x_len), 102);
  const auto y_c = random_vector<T>(static_cast<std::size_t>(y_len), 103);
  const auto x = strided_copy(x_c, x_len, incx, 104);
  auto y_serial = strided_copy(y_c, y_len, incy, 105);
  auto y_parallel = y_serial;

  blas::gemv_serial(ta, m, n, alpha, a.data(), lda, x.data(), incx, beta,
                    y_serial.data(), incy);
  parallel::ThreadPool pool(threads);
  blas::gemv(ta, m, n, alpha, a.data(), lda, x.data(), incx, beta,
             y_parallel.data(), incy, &pool, threads);

  if (bitwise) {
    for (std::size_t i = 0; i < y_serial.size(); ++i) {
      ASSERT_EQ(y_parallel[i], y_serial[i])
          << "mismatch at flat index " << i << " with " << threads
          << " threads";
    }
  } else {
    const int depth = ta == Transpose::No ? n : m;
    test::expect_near_rel(y_parallel, y_serial, test::gemm_tol<T>(depth));
  }
}

class GemvParallelThreads : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GemvParallelThreads, NoTransBitwiseF32) {
  // Row splits at any chunk boundary: an element's result must not
  // depend on which slab it landed in.
  expect_parallel_matches_serial<float>(Transpose::No, 1500, 300, 1.0f,
                                        0.0f, GetParam(), /*bitwise=*/true);
  expect_parallel_matches_serial<float>(Transpose::No, 2048, 97, -0.5f,
                                        1.5f, GetParam(), /*bitwise=*/true);
}

TEST_P(GemvParallelThreads, NoTransBitwiseF64) {
  expect_parallel_matches_serial<double>(Transpose::No, 1201, 257, 2.0,
                                         -1.0, GetParam(),
                                         /*bitwise=*/true, /*lda_pad=*/5);
}

TEST_P(GemvParallelThreads, TransWideBitwise) {
  // Wide transposed shapes split over output columns; each column's dot
  // is computed identically in either path.
  expect_parallel_matches_serial<double>(Transpose::Yes, 300, 1800, 1.0,
                                         0.0, GetParam(), /*bitwise=*/true);
  expect_parallel_matches_serial<float>(Transpose::Yes, 180, 2500, -2.0f,
                                        0.5f, GetParam(), /*bitwise=*/true,
                                        /*lda_pad=*/3);
}

TEST_P(GemvParallelThreads, TransTallSkinnySplitM) {
  // Tall-skinny transposed: the split-m path reduces per-chunk partial
  // y vectors with a tree reduction — a different summation order, so
  // the comparison is tight-ULP rather than bitwise.
  expect_parallel_matches_serial<double>(Transpose::Yes, 20000, 8, 1.0,
                                         0.0, GetParam(),
                                         /*bitwise=*/false);
  expect_parallel_matches_serial<float>(Transpose::Yes, 16384, 4, 0.5f,
                                        2.0f, GetParam(),
                                        /*bitwise=*/false);
}

TEST_P(GemvParallelThreads, StridedIncrementsStageAndMatch) {
  // Strided and negative increments go through the PackArena staging
  // path and must agree with the (equally staged) serial engine exactly.
  expect_parallel_matches_serial<float>(Transpose::No, 1400, 220, 1.0f,
                                        0.5f, GetParam(), /*bitwise=*/true,
                                        /*lda_pad=*/0, /*incx=*/3,
                                        /*incy=*/2);
  expect_parallel_matches_serial<double>(Transpose::Yes, 250, 1700, -1.0,
                                         1.0, GetParam(), /*bitwise=*/true,
                                         /*lda_pad=*/2, /*incx=*/-2,
                                         /*incy=*/3);
  expect_parallel_matches_serial<double>(Transpose::No, 900, 150, 2.0,
                                         -0.5, GetParam(),
                                         /*bitwise=*/true, /*lda_pad=*/0,
                                         /*incx=*/-1, /*incy=*/-3);
}

INSTANTIATE_TEST_SUITE_P(Threads, GemvParallelThreads,
                         ::testing::Values(1, 2, 4, 7));

// Serial engine vs the textbook reference: the blocked SIMD kernels must
// produce the right numbers, not merely self-consistent ones.
TEST(GemvSerial, MatchesReferenceAcrossLayouts) {
  for (const Transpose ta : {Transpose::No, Transpose::Yes}) {
    for (const int incx : {1, 2, -1}) {
      for (const int incy : {1, 3}) {
        const int m = 173, n = 129, lda = 180;
        const int x_len = ta == Transpose::No ? n : m;
        const int y_len = ta == Transpose::No ? m : n;
        const auto a = random_vector<double>(
            static_cast<std::size_t>(lda) * n, 201);
        const auto x_c = random_vector<double>(x_len, 202);
        const auto y_c = random_vector<double>(y_len, 203);
        const auto x = strided_copy(x_c, x_len, incx, 204);
        auto y_opt = strided_copy(y_c, y_len, incy, 205);
        auto y_ref = y_opt;

        blas::gemv_serial(ta, m, n, 1.25, a.data(), lda, x.data(), incx,
                          0.75, y_opt.data(), incy);
        blas::ref::gemv(ta, m, n, 1.25, a.data(), lda, x.data(), incx,
                        0.75, y_ref.data(), incy);
        const int depth = ta == Transpose::No ? n : m;
        test::expect_near_rel(y_opt, y_ref, test::gemm_tol<double>(depth));
      }
    }
  }
}

TEST(GemvSerial, BetaZeroOverwritesNaN) {
  // beta == 0 must overwrite y without reading it (BLAS convention).
  const int m = 64, n = 32;
  const auto a = random_vector<float>(static_cast<std::size_t>(m) * n, 211);
  const auto x = random_vector<float>(n, 212);
  std::vector<float> y(m, std::numeric_limits<float>::quiet_NaN());
  blas::gemv_serial(Transpose::No, m, n, 1.0f, a.data(), m, x.data(), 1,
                    0.0f, y.data(), 1);
  for (const float v : y) EXPECT_FALSE(std::isnan(v));
}

// ----------------------------------------------------------- flops grain

TEST(FlopsGrain, RespectsWorkAndThreadBounds) {
  // Tiny per-item work: the minimum-flops bound dominates and one chunk
  // covers everything.
  EXPECT_EQ(parallel::flops_grain(100, 2.0, 2.0e5, 8), 100u);
  // Heavy rows: the fan-out limit ceil(items/threads) dominates, so the
  // chunk count equals the personality's thread budget, not the pool's.
  EXPECT_EQ(parallel::flops_grain(1000, 1.0e6, 2.0e5, 4), 250u);
  // Grain never exceeds the item count and never drops below 1.
  EXPECT_EQ(parallel::flops_grain(3, 1.0e9, 2.0e5, 8), 1u);
  EXPECT_EQ(parallel::flops_grain(0, 1.0, 2.0e5, 8), 1u);
}

TEST(FlopsGrain, SmallWidthKeepsGemvSerial) {
  // The old kMinRowsPerThread = 256 heuristic would have parallelised a
  // 512 x 4 GEMV (512 rows, 8 flops each: ~4 KFLOP of work). The
  // flops-aware grain folds per-row work in and keeps it on one chunk.
  const std::size_t grain = parallel::flops_grain(512, 2.0 * 4, 2.0e5, 8);
  EXPECT_EQ(grain, 512u);  // one chunk == serial execution
}

// -------------------------------------------------------------- batched

template <typename T>
void expect_batched_matches_serial(Transpose ta, int m, int n, int batch,
                                   T alpha, T beta, std::size_t threads) {
  const int lda = std::max(1, m);
  const int x_len = ta == Transpose::No ? n : m;
  const int y_len = ta == Transpose::No ? m : n;
  const std::ptrdiff_t stride_a =
      static_cast<std::ptrdiff_t>(lda) * n + 5;  // padded between items
  const std::ptrdiff_t stride_x = x_len + 2;
  const std::ptrdiff_t stride_y = y_len + 1;

  const auto a = random_vector<T>(
      static_cast<std::size_t>(stride_a) * batch, 301);
  const auto x = random_vector<T>(
      static_cast<std::size_t>(stride_x) * batch, 302);
  const auto y0 = random_vector<T>(
      static_cast<std::size_t>(stride_y) * batch, 303);

  // Per-item serial execution is the ground truth.
  auto y_ref = y0;
  for (int b = 0; b < batch; ++b) {
    blas::gemv_serial(ta, m, n, alpha, a.data() + b * stride_a, lda,
                      x.data() + b * stride_x, 1, beta,
                      y_ref.data() + b * stride_y, 1);
  }

  parallel::ThreadPool pool(threads);

  auto y_strided = y0;
  blas::gemv_strided_batched(ta, m, n, alpha, a.data(), lda, stride_a,
                             x.data(), 1, stride_x, beta, y_strided.data(),
                             1, stride_y, batch, &pool, threads);

  auto y_ptr = y0;
  std::vector<const T*> as, xs;
  std::vector<T*> ys;
  for (int b = 0; b < batch; ++b) {
    as.push_back(a.data() + b * stride_a);
    xs.push_back(x.data() + b * stride_x);
    ys.push_back(y_ptr.data() + b * stride_y);
  }
  blas::gemv_batched(ta, m, n, alpha, as.data(), lda, xs.data(), 1, beta,
                     ys.data(), 1, batch, &pool, threads);

  // Small items take the across-batch path: whole items run through the
  // serial engine on worker threads, so equality is bitwise.
  for (std::size_t i = 0; i < y_ref.size(); ++i) {
    ASSERT_EQ(y_strided[i], y_ref[i]) << "strided, flat index " << i;
    ASSERT_EQ(y_ptr[i], y_ref[i]) << "pointer-array, flat index " << i;
  }
}

TEST(GemvBatched, AcrossBatchBitwiseF32) {
  expect_batched_matches_serial<float>(Transpose::No, 64, 48, 12, 1.0f,
                                       0.0f, 4);
  expect_batched_matches_serial<float>(Transpose::Yes, 48, 64, 9, -1.0f,
                                       0.5f, 4);
}

TEST(GemvBatched, AcrossBatchBitwiseF64) {
  expect_batched_matches_serial<double>(Transpose::No, 96, 32, 7, 2.0,
                                        1.0, 7);
  expect_batched_matches_serial<double>(Transpose::Yes, 32, 96, 5, 1.0,
                                        -2.0, 2);
}

TEST(GemvBatched, SerialPoolAndSingleItemDegenerate) {
  // No pool / one thread / batch of one all reduce to the serial engine.
  expect_batched_matches_serial<double>(Transpose::No, 50, 40, 1, 1.0,
                                        0.0, 1);
  expect_batched_matches_serial<float>(Transpose::No, 40, 50, 3, 1.0,
                                       1.0, 1);
}

TEST(GemvBatched, LargeItemsThreadWithinEachCall) {
  // Items above the intra-kernel threshold run the threaded gemv one at
  // a time; NoTrans row splits stay bitwise against serial.
  const int m = 2000, n = 1800, batch = 2;
  const std::ptrdiff_t stride_a = static_cast<std::ptrdiff_t>(m) * n;
  const auto a = random_vector<double>(
      static_cast<std::size_t>(stride_a) * batch, 311);
  const auto x = random_vector<double>(static_cast<std::size_t>(n) * batch,
                                       312);
  const auto y0 = random_vector<double>(
      static_cast<std::size_t>(m) * batch, 313);

  auto y_ref = y0;
  for (int b = 0; b < batch; ++b) {
    blas::gemv_serial(Transpose::No, m, n, 1.0, a.data() + b * stride_a, m,
                      x.data() + b * n, 1, 0.0, y_ref.data() + b * m, 1);
  }
  auto y_batched = y0;
  parallel::ThreadPool pool(4);
  blas::gemv_strided_batched(Transpose::No, m, n, 1.0, a.data(), m,
                             stride_a, x.data(), 1, n, 0.0,
                             y_batched.data(), 1, m, batch, &pool, 4);
  for (std::size_t i = 0; i < y_ref.size(); ++i) {
    ASSERT_EQ(y_batched[i], y_ref[i]) << "flat index " << i;
  }
}

}  // namespace
