// The BLIS-style collaborative parallel GEMM engine: bitwise agreement
// with the serial path across thread counts / transposes / shapes,
// thread-count-invariant B pack counts, arena zero-alloc steady state,
// tall-skinny routing, and packing-buffer alignment.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "blas/gemm.hpp"
#include "blas/gemm_stats.hpp"
#include "blas/pack_arena.hpp"
#include "blas_test_util.hpp"
#include "util/aligned.hpp"

namespace {

using namespace blob;
using blas::Transpose;
using blob::test::random_vector;

/// Run the same problem through gemm_serial and the threaded gemm and
/// require exact (bitwise) equality: the two paths execute identical
/// per-tile operation sequences, so any difference is a scheduling bug,
/// not rounding.
template <typename T>
void expect_bitwise_equal(Transpose ta, Transpose tb, int m, int n, int k,
                          T alpha, T beta, std::size_t threads,
                          int ldc_pad = 0) {
  const int a_rows = ta == Transpose::No ? m : k;
  const int a_cols = ta == Transpose::No ? k : m;
  const int b_rows = tb == Transpose::No ? k : n;
  const int b_cols = tb == Transpose::No ? n : k;
  const int lda = std::max(1, a_rows);
  const int ldb = std::max(1, b_rows);
  const int ldc = std::max(1, m + ldc_pad);

  auto a = random_vector<T>(
      static_cast<std::size_t>(lda) * std::max(1, a_cols), 21);
  auto b = random_vector<T>(
      static_cast<std::size_t>(ldb) * std::max(1, b_cols), 22);
  auto c_serial = random_vector<T>(
      static_cast<std::size_t>(ldc) * std::max(1, n), 23);
  auto c_parallel = c_serial;

  blas::gemm_serial(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb,
                    beta, c_serial.data(), ldc);
  parallel::ThreadPool pool(threads);
  blas::gemm(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta,
             c_parallel.data(), ldc, &pool, threads);

  for (std::size_t i = 0; i < c_serial.size(); ++i) {
    ASSERT_EQ(c_parallel[i], c_serial[i])
        << "mismatch at flat index " << i << " with " << threads
        << " threads";
  }
}

class GemmParallelThreads : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GemmParallelThreads, BitwiseMatchesSerialF32) {
  expect_bitwise_equal<float>(Transpose::No, Transpose::No, 150, 170, 60,
                              1.0f, 0.0f, GetParam());
}

TEST_P(GemmParallelThreads, BitwiseMatchesSerialF64) {
  expect_bitwise_equal<double>(Transpose::No, Transpose::No, 200, 96, 300,
                               -1.5, 0.5, GetParam());
}

TEST_P(GemmParallelThreads, BitwiseNonSquareAndPaddedLdc) {
  // ldc > m: the scheduler must respect C's leading-dimension padding.
  expect_bitwise_equal<double>(Transpose::No, Transpose::No, 130, 70, 40,
                               2.0, 1.0, GetParam(), /*ldc_pad=*/7);
  // Wide-flat: single IC block, parallelism comes from the JR dimension.
  expect_bitwise_equal<float>(Transpose::No, Transpose::No, 24, 500, 64,
                              1.0f, -0.25f, GetParam());
}

TEST_P(GemmParallelThreads, BitwiseTallSkinny) {
  // Tall-skinny: the old N-split engine ran this serial; the 2D queue
  // must parallelise over M and still agree exactly.
  expect_bitwise_equal<double>(Transpose::No, Transpose::No, 1024, 8, 96,
                               1.0, 0.0, GetParam());
  expect_bitwise_equal<float>(Transpose::No, Transpose::No, 2048, 4, 64,
                              0.5f, 2.0f, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Threads, GemmParallelThreads,
                         ::testing::Values(1, 2, 4, 7));

class GemmParallelTranspose
    : public ::testing::TestWithParam<std::tuple<Transpose, Transpose>> {};

TEST_P(GemmParallelTranspose, BitwiseAllCombos) {
  auto [ta, tb] = GetParam();
  expect_bitwise_equal<double>(ta, tb, 160, 90, 72, 1.0, 0.0, 4);
  expect_bitwise_equal<float>(ta, tb, 96, 200, 50, -2.0f, 1.0f, 7);
  expect_bitwise_equal<double>(ta, tb, 300, 12, 64, 1.0, 0.5, 4);
}

INSTANTIATE_TEST_SUITE_P(
    Combos, GemmParallelTranspose,
    ::testing::Combine(::testing::Values(Transpose::No, Transpose::Yes),
                       ::testing::Values(Transpose::No, Transpose::Yes)));

// ------------------------------------------------------------- GemmStats

TEST(GemmStats, BPackCountsAreThreadCountInvariant) {
  // Default blocking: kc=256 so k=300 gives 2 (jc, pc) macro-panels, and
  // m=300/n=500 gives plenty of (ic, jr) tiles at every thread count.
  const int m = 300, n = 500, k = 300;
  auto a = random_vector<double>(static_cast<std::size_t>(m) * k, 31);
  auto b = random_vector<double>(static_cast<std::size_t>(k) * n, 32);
  std::vector<double> c(static_cast<std::size_t>(m) * n);

  std::uint64_t expected_b_macro = 0;
  std::uint64_t expected_b_bytes = 0;
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{7}}) {
    parallel::ThreadPool pool(threads);
    blas::gemm_stats_reset();
    blas::gemm(Transpose::No, Transpose::No, m, n, k, 1.0, a.data(), m,
               b.data(), k, 0.0, c.data(), m, &pool, threads);
    const auto stats = blas::gemm_stats();
    if (threads == 1) {
      expected_b_macro = stats.b_macro_panels_packed;
      expected_b_bytes = stats.bytes_packed_b;
      EXPECT_EQ(stats.serial_calls, 1u);
    } else {
      EXPECT_EQ(stats.parallel_calls, 1u) << threads << " threads";
    }
    // B is packed exactly once per (jc, pc) no matter how many workers
    // collaborated on each shared panel.
    EXPECT_EQ(stats.b_macro_panels_packed, expected_b_macro)
        << threads << " threads";
    EXPECT_EQ(stats.bytes_packed_b, expected_b_bytes) << threads
                                                      << " threads";
  }
  // Default blocking: one jc panel (n=500 <= nc), two pc panels (k=300).
  EXPECT_EQ(expected_b_macro, 2u);
}

TEST(GemmStats, ParallelRunRecordsSchedulerActivity) {
  parallel::ThreadPool pool(4);
  const int m = 256, n = 256, k = 64;
  auto a = random_vector<float>(static_cast<std::size_t>(m) * k, 33);
  auto b = random_vector<float>(static_cast<std::size_t>(k) * n, 34);
  std::vector<float> c(static_cast<std::size_t>(m) * n);

  blas::gemm_stats_reset();
  blas::gemm(Transpose::No, Transpose::No, m, n, k, 1.0f, a.data(), m,
             b.data(), k, 0.0f, c.data(), m, &pool, 4);
  const auto stats = blas::gemm_stats();
  EXPECT_EQ(stats.parallel_calls, 1u);
  EXPECT_GT(stats.tiles_executed, 1u);
  EXPECT_GT(stats.barrier_waits, 0u);
  EXPECT_GT(stats.a_blocks_packed, 0u);
  EXPECT_GT(stats.bytes_packed_a, 0u);
}

TEST(GemmStats, TallSkinnyTakesParallelPath) {
  // m=2048, n=8: 16 IC tiles — the 2D scheduler must engage even though
  // the old engine's `n < 16` rule would have forced serial.
  parallel::ThreadPool pool(4);
  const int m = 2048, n = 8, k = 128;
  auto a = random_vector<double>(static_cast<std::size_t>(m) * k, 35);
  auto b = random_vector<double>(static_cast<std::size_t>(k) * n, 36);
  std::vector<double> c(static_cast<std::size_t>(m) * n);

  blas::gemm_stats_reset();
  blas::gemm(Transpose::No, Transpose::No, m, n, k, 1.0, a.data(), m,
             b.data(), k, 0.0, c.data(), m, &pool, 4);
  const auto stats = blas::gemm_stats();
  EXPECT_EQ(stats.parallel_calls, 1u);
  EXPECT_EQ(stats.serial_calls, 0u);
}

TEST(GemmStats, TinyProblemStaysSerial) {
  parallel::ThreadPool pool(4);
  const int d = 8;
  auto a = random_vector<double>(d * d, 37);
  auto b = random_vector<double>(d * d, 38);
  std::vector<double> c(d * d);

  blas::gemm_stats_reset();
  blas::gemm(Transpose::No, Transpose::No, d, d, d, 1.0, a.data(), d,
             b.data(), d, 0.0, c.data(), d, &pool, 4);
  const auto stats = blas::gemm_stats();
  EXPECT_EQ(stats.serial_calls, 1u);
  EXPECT_EQ(stats.parallel_calls, 0u);
}

// ---------------------------------------------------------------- arena

TEST(PackArena, SteadyStateGemmAllocatesNothing) {
  parallel::ThreadPool pool(4);
  const int m = 300, n = 200, k = 300;
  auto a = random_vector<double>(static_cast<std::size_t>(m) * k, 41);
  auto b = random_vector<double>(static_cast<std::size_t>(k) * n, 42);
  std::vector<double> c(static_cast<std::size_t>(m) * n);

  // Warm-up sizes the per-pool arena (and this thread's serial arena).
  blas::gemm(Transpose::No, Transpose::No, m, n, k, 1.0, a.data(), m,
             b.data(), k, 0.0, c.data(), m, &pool, 4);
  blas::gemm_serial(Transpose::No, Transpose::No, m, n, k, 1.0, a.data(), m,
                    b.data(), k, 0.0, c.data(), m);

  blas::gemm_stats_reset();
  for (int round = 0; round < 3; ++round) {
    blas::gemm(Transpose::No, Transpose::No, m, n, k, 1.0, a.data(), m,
               b.data(), k, 0.0, c.data(), m, &pool, 4);
    // Smaller problems must reuse the grown buffers too.
    blas::gemm(Transpose::No, Transpose::No, m / 2, n / 2, k / 2, 1.0,
               a.data(), m, b.data(), k, 0.0, c.data(), m, &pool, 4);
    blas::gemm_serial(Transpose::No, Transpose::No, m, n, k, 1.0, a.data(),
                      m, b.data(), k, 0.0, c.data(), m);
  }
  const auto stats = blas::gemm_stats();
  EXPECT_EQ(stats.arena_allocations, 0u)
      << "steady-state GEMM must not touch the heap";
  EXPECT_GE(stats.arena_reuse_hits, 9u);
}

TEST(PackArena, PanelsAreCacheLineAligned) {
  blas::PackArena arena;
  arena.reserve(3, 1000, 5000);
  EXPECT_EQ(arena.worker_slots(), 3u);
  for (std::size_t w = 0; w < 3; ++w) {
    const auto addr =
        reinterpret_cast<std::uintptr_t>(arena.a_panel<double>(w));
    EXPECT_EQ(addr % util::kCacheLineBytes, 0u) << "A panel " << w;
  }
  const auto b_addr =
      reinterpret_cast<std::uintptr_t>(arena.b_panel<double>());
  EXPECT_EQ(b_addr % util::kCacheLineBytes, 0u);
}

TEST(PackArena, GrowsMonotonicallyAndCountsReuse) {
  blas::PackArena arena;
  blas::gemm_stats_reset();
  arena.reserve(2, 1 << 10, 1 << 12);
  const auto after_grow = blas::gemm_stats();
  EXPECT_EQ(after_grow.arena_allocations, 3u);  // 2 A buffers + 1 B buffer

  arena.reserve(2, 1 << 9, 1 << 11);  // smaller: pure reuse
  const auto after_reuse = blas::gemm_stats();
  EXPECT_EQ(after_reuse.arena_allocations, 3u);
  EXPECT_EQ(after_reuse.arena_reuse_hits, after_grow.arena_reuse_hits + 1);

  arena.reserve(4, 1 << 10, 1 << 12);  // two new worker slots
  const auto after_widen = blas::gemm_stats();
  EXPECT_EQ(after_widen.arena_allocations, 5u);
}

}  // namespace
