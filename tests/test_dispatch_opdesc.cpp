// The OpDesc IR end-to-end: one descriptor from the cblas seam to the
// simulated device. Unit checks on validate()/factory normalization and
// gpu_supported(), plus the randomized route-equivalence property the
// refactor is accountable to: CPU-routed, GPU-routed and coalesced
// batched execution produce BIT-IDENTICAL results on transposed and
// ld-padded operands (SimGpu's functional path runs the same serial
// kernel as the single-thread CPU library, so equality is exact, not
// approximate).

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/op_desc.hpp"
#include "dispatch/dispatcher.hpp"
#include "util/rng.hpp"

namespace {

using namespace blob;
using blas::Transpose;
using core::KernelOp;
using core::OpDesc;

// ------------------------------------------------- IR unit checks

TEST(OpDesc, ValidateNormalizesGemvAndFillsTightLds) {
  OpDesc d;
  d.op = KernelOp::Gemv;
  d.m = 40;
  d.n = 24;
  d.k = 7;                        // wrong by construction
  d.trans_b = Transpose::Yes;     // meaningless for GEMV
  d.batch = 1;
  d.validate();
  EXPECT_EQ(d.k, 1);              // GEMV k-convention normalized
  EXPECT_EQ(d.trans_b, Transpose::No);
  EXPECT_EQ(d.lda, 40);           // stored A is m x n
  EXPECT_EQ(d.x_len(), 24);
  EXPECT_EQ(d.y_len(), 40);
}

TEST(OpDesc, TransposeSwapsStoredShapes) {
  const OpDesc nn = OpDesc::gemm(model::Precision::F32, Transpose::No,
                                 Transpose::No, 8, 6, 4, 0, 0, 0, true, true);
  EXPECT_EQ(nn.rows_a(), 8);
  EXPECT_EQ(nn.cols_a(), 4);
  EXPECT_EQ(nn.rows_b(), 4);
  EXPECT_EQ(nn.cols_b(), 6);
  const OpDesc tt = OpDesc::gemm(model::Precision::F32, Transpose::Yes,
                                 Transpose::Yes, 8, 6, 4, 0, 0, 0, true,
                                 true);
  EXPECT_EQ(tt.rows_a(), 4);   // stored A is k x m
  EXPECT_EQ(tt.cols_a(), 8);
  EXPECT_EQ(tt.rows_b(), 6);   // stored B is n x k
  EXPECT_EQ(tt.cols_b(), 4);
  EXPECT_EQ(tt.lda, 4);
  EXPECT_EQ(tt.ldb, 6);
  EXPECT_EQ(tt.ldc, 8);
  EXPECT_TRUE(tt.transposed());
  EXPECT_FALSE(nn.transposed());
}

TEST(OpDesc, ValidateRejectsBadShapes) {
  OpDesc d;
  d.m = -1;
  EXPECT_THROW(d.validate(), std::invalid_argument);
  OpDesc b = OpDesc::gemm(model::Precision::F64, Transpose::No,
                          Transpose::No, 4, 4, 4, 0, 0, 0, true, true);
  b.batch = 0;
  EXPECT_THROW(b.validate(), std::invalid_argument);
}

TEST(OpDesc, LowerRaiseRoundTripsProblemShape) {
  core::Problem p;
  p.op = KernelOp::Gemm;
  p.precision = model::Precision::F64;
  p.dims = {33, 17, 9};
  p.beta_zero = false;
  p.batch = 5;
  const OpDesc d = core::lower(p, core::TransferMode::Always);
  EXPECT_EQ(d.batch, 5);
  EXPECT_EQ(d.stride_a, 33 * 9);
  EXPECT_EQ(d.mode, core::TransferMode::Always);
  const core::Problem back = core::raise(d);
  EXPECT_EQ(back.op, p.op);
  EXPECT_EQ(back.precision, p.precision);
  EXPECT_EQ(back.dims.m, p.dims.m);
  EXPECT_EQ(back.dims.n, p.dims.n);
  EXPECT_EQ(back.dims.k, p.dims.k);
  EXPECT_EQ(back.beta_zero, p.beta_zero);
  EXPECT_EQ(back.batch, p.batch);
}

TEST(OpDesc, GpuSupportAdmitsTransposesRejectsStridedGemvVectors) {
  // Transposed GEMMs are first-class on the device; Reason::Forced
  // survives only for GEMV vector strides the kernels cannot take.
  const OpDesc tt = OpDesc::gemm(model::Precision::F32, Transpose::Yes,
                                 Transpose::Yes, 64, 64, 64, 0, 0, 0, true,
                                 true);
  EXPECT_TRUE(dispatch::Dispatcher::gpu_supported(tt));
  const OpDesc tv = OpDesc::gemv(model::Precision::F64, Transpose::Yes, 64,
                                 64, 0, 1, 1, true, true);
  EXPECT_TRUE(dispatch::Dispatcher::gpu_supported(tv));
  const OpDesc sv = OpDesc::gemv(model::Precision::F64, Transpose::No, 64,
                                 64, 0, 2, 1, true, true);
  EXPECT_FALSE(dispatch::Dispatcher::gpu_supported(sv));
}

// -------------------------------------- route bit-identity property

dispatch::DispatcherConfig identity_config() {
  dispatch::DispatcherConfig cfg;
  cfg.profile = profile::dawn();
  // Single-thread personality with the default blocking: the CPU route
  // then runs the exact serial kernel SimGpu's functional path runs.
  cfg.personality = blas::single_thread_personality();
  cfg.cpu_threads = 1;
  cfg.autotune = false;  // a tuned blocking would change the CPU tiling
  return cfg;
}

template <typename T>
std::vector<T> random_matrix(std::int64_t ld, std::int64_t cols,
                             util::Xoshiro256& rng) {
  std::vector<T> v(static_cast<std::size_t>(ld * cols));
  for (auto& x : v) x = static_cast<T>(rng.uniform(-1.0, 1.0));
  return v;
}

template <typename T>
void expect_bitwise_eq(const std::vector<T>& got, const std::vector<T>& want,
                       int trial) {
  ASSERT_EQ(got.size(), want.size());
  ASSERT_EQ(std::memcmp(got.data(), want.data(), got.size() * sizeof(T)), 0)
      << "routes disagree bitwise, trial " << trial;
}

template <typename T>
void gemm_route_identity_trial(dispatch::Dispatcher& disp,
                               util::Xoshiro256& rng, int trial) {
  const auto m = rng.uniform_int(1, 48);
  const auto n = rng.uniform_int(1, 48);
  const auto k = rng.uniform_int(1, 48);
  const Transpose ta =
      rng.next_double() < 0.5 ? Transpose::No : Transpose::Yes;
  const Transpose tb =
      rng.next_double() < 0.5 ? Transpose::No : Transpose::Yes;
  const T alpha = rng.next_double() < 0.5 ? T(1) : T(-0.5);
  const T beta = rng.next_double() < 0.5 ? T(0) : T(0.75);

  constexpr auto p = sizeof(T) == 4 ? model::Precision::F32
                                    : model::Precision::F64;
  OpDesc desc = OpDesc::gemm(p, ta, tb, m, n, k, 0, 0, 0, alpha == T(1),
                             beta == T(0));
  // Pad the leading dimensions: the property covers strided storage, and
  // the GPU route's pack/unpack must leave the padding rows untouched.
  desc.lda += rng.uniform_int(0, 5);
  desc.ldb += rng.uniform_int(0, 5);
  desc.ldc += rng.uniform_int(0, 5);

  const auto a = random_matrix<T>(desc.lda, desc.cols_a(), rng);
  const auto b = random_matrix<T>(desc.ldb, desc.cols_b(), rng);
  const auto c0 = random_matrix<T>(desc.ldc, n, rng);

  const dispatch::Decision d = disp.plan(desc, true);

  std::vector<T> c_cpu = c0;
  disp.run_gemm_cpu<T>(d, desc, alpha, a.data(), b.data(), beta,
                       c_cpu.data());

  std::vector<T> c_gpu = c0;
  auto job = disp.enqueue_gemm_gpu<T>(d, desc, alpha, a.data(), b.data(),
                                      beta, c_gpu.data());
  disp.finish_gpu_job(job);

  expect_bitwise_eq(c_gpu, c_cpu, trial);
  // Padding rows of C (beyond m) must be exactly the initial contents.
  for (std::int64_t col = 0; col < n; ++col) {
    for (std::int64_t row = m; row < desc.ldc; ++row) {
      const auto i = static_cast<std::size_t>(col * desc.ldc + row);
      ASSERT_EQ(c_gpu[i], c0[i]) << "GPU route clobbered padding, trial "
                                 << trial;
    }
  }

  // Coalesced batched route: a small batch of this same shape, every
  // member bit-identical to the per-call CPU result.
  constexpr int kBatch = 3;
  std::vector<std::vector<T>> cs(kBatch, c0);
  std::vector<const T*> as(kBatch, a.data());
  std::vector<const T*> bs(kBatch, b.data());
  std::vector<T*> cps;
  for (auto& c : cs) cps.push_back(c.data());
  disp.run_gemm_coalesced<T>(desc, alpha, as.data(), bs.data(), beta,
                             cps.data(), kBatch);
  for (const auto& c : cs) expect_bitwise_eq(c, c_cpu, trial);
}

TEST(OpDescRouteIdentity, GemmCpuGpuAndCoalescedAgreeBitwise) {
  dispatch::Dispatcher disp(identity_config());
  util::Xoshiro256 rng(0x0bde5c);
  for (int trial = 0; trial < 40; ++trial) {
    gemm_route_identity_trial<float>(disp, rng, trial);
    gemm_route_identity_trial<double>(disp, rng, trial);
  }
}

template <typename T>
void gemv_route_identity_trial(dispatch::Dispatcher& disp,
                               util::Xoshiro256& rng, int trial) {
  const auto m = rng.uniform_int(1, 96);
  const auto n = rng.uniform_int(1, 96);
  const Transpose ta =
      rng.next_double() < 0.5 ? Transpose::No : Transpose::Yes;
  const T alpha = rng.next_double() < 0.5 ? T(1) : T(2);
  const T beta = rng.next_double() < 0.5 ? T(0) : T(-1);

  constexpr auto p = sizeof(T) == 4 ? model::Precision::F32
                                    : model::Precision::F64;
  OpDesc desc = OpDesc::gemv(p, ta, m, n, 0, 1, 1, alpha == T(1),
                             beta == T(0));
  desc.lda += rng.uniform_int(0, 7);

  const auto a = random_matrix<T>(desc.lda, n, rng);
  const auto x = random_matrix<T>(desc.x_len(), 1, rng);
  const auto y0 = random_matrix<T>(desc.y_len(), 1, rng);

  const dispatch::Decision d = disp.plan(desc, true);

  std::vector<T> y_cpu = y0;
  disp.run_gemv_cpu<T>(d, desc, alpha, a.data(), x.data(), beta,
                       y_cpu.data());

  std::vector<T> y_gpu = y0;
  auto job = disp.enqueue_gemv_gpu<T>(d, desc, alpha, a.data(), x.data(),
                                      beta, y_gpu.data());
  disp.finish_gpu_job(job);

  expect_bitwise_eq(y_gpu, y_cpu, trial);
}

TEST(OpDescRouteIdentity, GemvCpuAndGpuAgreeBitwise) {
  dispatch::Dispatcher disp(identity_config());
  util::Xoshiro256 rng(0x9e37);
  for (int trial = 0; trial < 40; ++trial) {
    gemv_route_identity_trial<float>(disp, rng, trial);
    gemv_route_identity_trial<double>(disp, rng, trial);
  }
}

// ------------------------------------------- Forced stays narrow

TEST(OpDescRouteIdentity, ForcedOnlyForStridedGemvVectors) {
  dispatch::Dispatcher disp(identity_config());
  util::Xoshiro256 rng(0xfced);

  // A burst of transposed GEMM/GEMV traffic through the full dispatch
  // path: nothing may fall back to Reason::Forced.
  for (int i = 0; i < 24; ++i) {
    const auto s = rng.uniform_int(8, 64);
    const OpDesc g =
        OpDesc::gemm(model::Precision::F32, Transpose::Yes, Transpose::No, s,
                     s, s, 0, 0, 0, true, true, disp.config().mode);
    std::vector<float> a(static_cast<std::size_t>(s * s), 0.5F);
    std::vector<float> b(a), c(a);
    disp.run_gemm<float>(g, 1.0F, a.data(), b.data(), 0.0F, c.data());

    const OpDesc v =
        OpDesc::gemv(model::Precision::F64, Transpose::Yes, s, s, 0, 1, 1,
                     true, true, disp.config().mode);
    std::vector<double> av(static_cast<std::size_t>(s * s), 0.25);
    std::vector<double> xv(static_cast<std::size_t>(s), 1.0), yv(xv);
    disp.run_gemv<double>(v, 1.0, av.data(), xv.data(), 0.0, yv.data());
  }
  for (const auto& rec : disp.trace().snapshot()) {
    EXPECT_NE(rec.reason, dispatch::Reason::Forced);
  }

  // A non-unit x stride is the one layout the device kernels cannot
  // take: it must route CPU with Reason::Forced, and the trace must
  // carry the transpose flag that got it there.
  OpDesc sv = OpDesc::gemv(model::Precision::F64, Transpose::Yes, 32, 32, 0,
                           2, 1, true, true, disp.config().mode);
  std::vector<double> a(32 * 32, 0.5);
  std::vector<double> x(2 * 32, 1.0), y(32, 0.0);
  disp.run_gemv<double>(sv, 1.0, a.data(), x.data(), 0.0, y.data());
  const auto recs = disp.trace().snapshot();
  ASSERT_FALSE(recs.empty());
  const auto& last = recs.back();
  EXPECT_EQ(last.reason, dispatch::Reason::Forced);
  EXPECT_EQ(last.route, dispatch::Route::Cpu);
  EXPECT_EQ(last.trans_a, Transpose::Yes);
}

}  // namespace
