// Half-precision storage types (f16, bf16) and HGEMM/HGEMV.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "blas/gemm.hpp"
#include "blas/half.hpp"
#include "blas/half_gemm.hpp"
#include "blas_test_util.hpp"

namespace {

using namespace blob;
using blas::bf16;
using blas::f16;
using blob::test::random_vector;

// --------------------------------------------------------------- f16

TEST(F16, ExactSmallIntegers) {
  for (int i = -2048; i <= 2048; ++i) {
    const f16 h(static_cast<float>(i));
    EXPECT_EQ(static_cast<float>(h), static_cast<float>(i)) << i;
  }
}

TEST(F16, KnownBitPatterns) {
  EXPECT_EQ(f16(1.0f).bits, 0x3c00);
  EXPECT_EQ(f16(-2.0f).bits, 0xc000);
  EXPECT_EQ(f16(0.5f).bits, 0x3800);
  EXPECT_EQ(f16(65504.0f).bits, 0x7bff);  // largest finite half
  EXPECT_EQ(f16(0.0f).bits, 0x0000);
  EXPECT_EQ(f16(-0.0f).bits, 0x8000);
}

TEST(F16, OverflowBecomesInfinity) {
  EXPECT_EQ(f16(70000.0f).bits, 0x7c00);
  EXPECT_EQ(f16(-1e30f).bits, 0xfc00);
  EXPECT_TRUE(std::isinf(static_cast<float>(f16(1e9f))));
}

TEST(F16, NanIsPreserved) {
  const f16 h(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(std::isnan(static_cast<float>(h)));
}

TEST(F16, SubnormalsRoundTrip) {
  // Smallest positive half subnormal: 2^-24.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(f16(tiny).bits, 0x0001);
  EXPECT_EQ(static_cast<float>(f16::from_bits(0x0001)), tiny);
  // Below half the smallest subnormal rounds to zero.
  EXPECT_EQ(f16(std::ldexp(1.0f, -26)).bits, 0x0000);
  // Largest subnormal.
  const float big_sub = std::ldexp(1023.0f, -24);
  EXPECT_EQ(f16(big_sub).bits, 0x03ff);
}

TEST(F16, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next half; ties go
  // to even (1.0 here).
  const float halfway = 1.0f + std::ldexp(1.0f, -11);
  EXPECT_EQ(f16(halfway).bits, 0x3c00);
  // Slightly above the halfway point rounds up.
  const float above = 1.0f + std::ldexp(1.5f, -11);
  EXPECT_EQ(f16(above).bits, 0x3c01);
}

TEST(F16, InfinityPropagatesWithSign) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(f16(inf).bits, 0x7c00);
  EXPECT_EQ(f16(-inf).bits, 0xfc00);
  EXPECT_TRUE(std::isinf(static_cast<float>(f16::from_bits(0x7c00))));
  EXPECT_GT(static_cast<float>(f16::from_bits(0x7c00)), 0.0f);
  EXPECT_LT(static_cast<float>(f16::from_bits(0xfc00)), 0.0f);
}

TEST(F16, NanIsQuietedAndKeepsSign) {
  // Any float NaN payload must land as a QUIET half NaN (top mantissa
  // bit set) with its sign preserved — a payload that truncated to zero
  // would silently turn NaN into infinity.
  const f16 q(std::numeric_limits<float>::quiet_NaN());
  EXPECT_EQ(q.bits & 0x7c00u, 0x7c00u);
  EXPECT_EQ(q.bits & 0x0200u, 0x0200u);
  const f16 neg(
      std::copysign(std::numeric_limits<float>::quiet_NaN(), -1.0f));
  EXPECT_EQ(neg.bits & 0x8000u, 0x8000u);
  EXPECT_TRUE(std::isnan(static_cast<float>(neg)));
  // A signalling-style payload (low mantissa bits only) stays NaN too.
  const float snan = std::bit_cast<float>(0x7f800001u);
  EXPECT_TRUE(std::isnan(static_cast<float>(f16(snan))));
}

TEST(F16, TiesToEvenRoundsUpAtOddTargets) {
  // 1 + 3*2^-11 sits exactly halfway between 0x3c01 and 0x3c02; round
  // to nearest-EVEN goes up here (the complement of the tie-down case).
  EXPECT_EQ(f16(1.0f + std::ldexp(3.0f, -11)).bits, 0x3c02);
}

TEST(F16, SubnormalTiesToEven) {
  // 2^-25 is halfway between 0 and the smallest subnormal 2^-24: even
  // neighbour is zero.
  EXPECT_EQ(f16(std::ldexp(1.0f, -25)).bits, 0x0000);
  // 1.5*2^-24 is halfway between 0x0001 and 0x0002: even is above.
  EXPECT_EQ(f16(std::ldexp(1.5f, -24)).bits, 0x0002);
  // 2.5*2^-24 is halfway between 0x0002 and 0x0003: even is below.
  EXPECT_EQ(f16(std::ldexp(2.5f, -24)).bits, 0x0002);
  // The subnormal path preserves sign.
  EXPECT_EQ(f16(-std::ldexp(1.5f, -24)).bits, 0x8002);
}

TEST(F16, RoundTripThroughFloatIsIdentity) {
  // Every finite half value must survive half -> float -> half.
  for (std::uint32_t bits = 0; bits < 0x10000; ++bits) {
    const auto h = f16::from_bits(static_cast<std::uint16_t>(bits));
    const float f = static_cast<float>(h);
    if (std::isnan(f)) continue;  // NaN payloads may differ
    EXPECT_EQ(f16(f).bits, h.bits) << "bits=" << bits;
  }
}

// -------------------------------------------------------------- bf16

TEST(Bf16, TruncatesMantissa) {
  EXPECT_EQ(static_cast<float>(bf16(1.0f)), 1.0f);
  EXPECT_EQ(static_cast<float>(bf16(-2.5f)), -2.5f);
  // bf16 has float32's exponent range: no overflow at 1e30.
  EXPECT_FALSE(std::isinf(static_cast<float>(bf16(1e30f))));
}

TEST(Bf16, RoundToNearestEven) {
  // 1 + 2^-8 is halfway between two bf16 values; ties to even -> 1.0.
  EXPECT_EQ(bf16(1.0f + std::ldexp(1.0f, -8)).bits, 0x3f80);
  EXPECT_EQ(bf16(1.0f + std::ldexp(1.5f, -8)).bits, 0x3f81);
}

TEST(Bf16, NanIsPreserved) {
  EXPECT_TRUE(std::isnan(
      static_cast<float>(bf16(std::numeric_limits<float>::quiet_NaN()))));
}

TEST(Bf16, InfinityPropagatesWithSign) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(bf16(inf).bits, 0x7f80);
  EXPECT_EQ(bf16(-inf).bits, 0xff80);
  EXPECT_TRUE(std::isinf(static_cast<float>(bf16::from_bits(0x7f80))));
}

TEST(Bf16, OverflowTiesToEvenBecomeInfinity) {
  // Halfway between the largest finite bf16 (0x7f7f) and infinity
  // (0x7f80): ties-to-even picks the even neighbour — infinity.
  const float halfway = std::bit_cast<float>(0x7f7f8000u);
  EXPECT_EQ(bf16(halfway).bits, 0x7f80);
  // Just below the halfway point stays finite.
  const float below = std::bit_cast<float>(0x7f7f7fffu);
  EXPECT_EQ(bf16(below).bits, 0x7f7f);
}

TEST(Bf16, NanKeepsSignAndQuietBit) {
  const bf16 neg(
      std::copysign(std::numeric_limits<float>::quiet_NaN(), -1.0f));
  EXPECT_EQ(neg.bits & 0x8000u, 0x8000u);
  EXPECT_EQ(neg.bits & 0x0040u, 0x0040u);  // quieted payload
  EXPECT_TRUE(std::isnan(static_cast<float>(neg)));
  // A payload living only in the truncated low bits must not vanish.
  const float snan = std::bit_cast<float>(0x7f800001u);
  EXPECT_TRUE(std::isnan(static_cast<float>(bf16(snan))));
}

TEST(Bf16, SubnormalsRoundTripAndTieToEven) {
  // bf16 subnormals are float subnormals with the low 16 mantissa bits
  // clear; the smallest (0x0001 = 2^-133) survives the round trip.
  const auto tiny = bf16::from_bits(0x0001);
  EXPECT_EQ(bf16(static_cast<float>(tiny)).bits, 0x0001);
  // Halfway between 0x0001 and 0x0002: even is above.
  EXPECT_EQ(bf16(std::bit_cast<float>(0x00018000u)).bits, 0x0002);
  // Halfway between 0x0002 and 0x0003: even is below.
  EXPECT_EQ(bf16(std::bit_cast<float>(0x00028000u)).bits, 0x0002);
}

TEST(Bf16, SignedZeroKeepsSign) {
  EXPECT_EQ(bf16(0.0f).bits, 0x0000);
  EXPECT_EQ(bf16(-0.0f).bits, 0x8000);
}

TEST(Bf16, RoundTripThroughFloatIsIdentity) {
  for (std::uint32_t bits = 0; bits < 0x10000; ++bits) {
    const auto h = bf16::from_bits(static_cast<std::uint16_t>(bits));
    const float f = static_cast<float>(h);
    if (std::isnan(f)) continue;
    EXPECT_EQ(bf16(f).bits, h.bits) << "bits=" << bits;
  }
}

// ------------------------------------------------------------- hgemm

template <typename Half>
void run_hgemm_case(int m, int n, int k) {
  auto fa = random_vector<float>(static_cast<std::size_t>(m) * k, 1);
  auto fb = random_vector<float>(static_cast<std::size_t>(k) * n, 2);
  std::vector<Half> a(fa.size()), b(fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) a[i] = Half(fa[i]);
  for (std::size_t i = 0; i < fb.size(); ++i) b[i] = Half(fb[i]);
  // Use the rounded values as the float reference inputs so the only
  // error source is the final rounding of C.
  for (std::size_t i = 0; i < fa.size(); ++i) a[i] = Half(fa[i]);
  std::vector<float> fa_rounded(fa.size()), fb_rounded(fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) {
    fa_rounded[i] = static_cast<float>(a[i]);
  }
  for (std::size_t i = 0; i < fb.size(); ++i) {
    fb_rounded[i] = static_cast<float>(b[i]);
  }

  std::vector<Half> c(static_cast<std::size_t>(m) * n, Half(0.0f));
  blas::hgemm(blas::Transpose::No, blas::Transpose::No, m, n, k, 1.0f,
              a.data(), m, b.data(), k, 0.0f, c.data(), m);

  std::vector<float> c_ref(static_cast<std::size_t>(m) * n, 0.0f);
  blas::gemm(blas::Transpose::No, blas::Transpose::No, m, n, k, 1.0f,
             fa_rounded.data(), m, fb_rounded.data(), k, 0.0f, c_ref.data(),
             m);

  // The accumulate happens in f32; only the output rounding differs.
  const double tol = std::is_same_v<Half, f16> ? 1e-3 : 8e-3;
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_NEAR(static_cast<float>(c[i]), c_ref[i],
                tol * (1.0 + std::fabs(c_ref[i])));
  }
}

TEST(Hgemm, F16MatchesFloatAccumulation) {
  run_hgemm_case<f16>(9, 7, 5);
  run_hgemm_case<f16>(32, 32, 32);
  run_hgemm_case<f16>(65, 33, 17);
}

TEST(Hgemm, Bf16MatchesFloatAccumulation) {
  run_hgemm_case<bf16>(9, 7, 5);
  run_hgemm_case<bf16>(48, 24, 40);
}

TEST(Hgemv, F16MatchesWideReference) {
  const int m = 40, n = 30;
  auto fa = random_vector<float>(static_cast<std::size_t>(m) * n, 3);
  auto fx = random_vector<float>(n, 4);
  std::vector<f16> a(fa.size()), x(fx.size()), y(m, f16(0.0f));
  for (std::size_t i = 0; i < fa.size(); ++i) a[i] = f16(fa[i]);
  for (std::size_t i = 0; i < fx.size(); ++i) x[i] = f16(fx[i]);
  blas::hgemv(blas::Transpose::No, m, n, 1.0f, a.data(), m, x.data(), 0.0f,
              y.data());
  for (int i = 0; i < m; ++i) {
    float sum = 0.0f;
    for (int j = 0; j < n; ++j) {
      sum += static_cast<float>(a[i + static_cast<std::size_t>(j) * m]) *
             static_cast<float>(x[j]);
    }
    ASSERT_NEAR(static_cast<float>(y[i]), sum, 2e-3 * (1.0 + std::fabs(sum)));
  }
}

}  // namespace
