// gpu-blob: the benchmark driver.
//
// Mirrors the artifact's runtime interface (`-i`, `-s`, `-d`) and adds
// simulation controls. Default mode sweeps every requested problem type
// on a simulated system profile, prints the per-type offload-threshold
// tables to stdout, and optionally writes the artifact-style CSV files.
//
// Examples:
//   gpu-blob -i 8 -s 1 -d 4096 --system isambard-ai
//   gpu-blob -i 1 --kernel gemv --precision f64 --system lumi
//   gpu-blob --backend host --library openblas-like -d 512 --stride 8
//   gpu-blob --validate --system dawn

#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "blas/library.hpp"
#include "core/host_backend.hpp"
#include "core/hybrid_backend.hpp"
#include "core/manifest.hpp"
#include "core/report.hpp"
#include "core/sim_backend.hpp"
#include "core/sweep.hpp"
#include "core/validate.hpp"
#include "simgpu/device.hpp"
#include "sysprofile/profile.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/strfmt.hpp"

namespace {

using namespace blob;

blas::CpuLibraryPersonality personality_by_name(const std::string& name) {
  if (name == "generic") return blas::generic_personality();
  if (name == "nvpl-like") return blas::nvpl_like_personality();
  if (name == "armpl-like") return blas::armpl_like_personality();
  if (name == "aocl-like") return blas::aocl_like_personality();
  if (name == "openblas-like") return blas::openblas_like_personality();
  if (name == "single-thread") return blas::single_thread_personality();
  throw std::invalid_argument("unknown library personality: " + name);
}

std::vector<const core::ProblemType*> select_types(
    const std::string& kernel, const std::string& type_id) {
  std::vector<const core::ProblemType*> out;
  if (!type_id.empty()) {
    out.push_back(&core::problem_type_by_id(type_id));
    return out;
  }
  if (kernel == "gemm" || kernel == "all") {
    for (const auto& t : core::gemm_problem_types()) out.push_back(&t);
  }
  if (kernel == "gemv" || kernel == "all") {
    for (const auto& t : core::gemv_problem_types()) out.push_back(&t);
  }
  if (out.empty()) {
    throw std::invalid_argument("unknown kernel selector: " + kernel);
  }
  return out;
}

int run(int argc, char** argv) {
  util::ArgParser args("gpu-blob");
  args.add_int("-i", "iterations per problem size (default 1)", 1);
  args.add_int("-s", "minimum swept dimension (default 1)", 1);
  args.add_int("-d", "maximum swept dimension (default 4096)", 4096);
  args.add_int("--stride", "sweep stride (default 1)", 1);
  args.add_int("--batch", "batched-GEMM batch size (default 1)", 1);
  args.add_double("--beta", "GEMM/GEMV beta (0 enables the write-only "
                  "C path, Table I)", 0.0);
  args.add_string("--system", "simulated system profile (see --list-systems)",
                  "dawn");
  args.add_string("--backend",
                  "sim | host | hybrid (host = this machine's CPU only; "
                  "hybrid = this CPU vs the profile's simulated GPU)",
                  "sim");
  args.add_string("--library", "host-backend CPU library personality",
                  "generic");
  args.add_string("--kernel", "gemm | gemv | all", "all");
  args.add_string("--type", "run a single problem type by id", "");
  args.add_string("--precision", "f32 | f64 | both", "both");
  args.add_string("--csv-dir", "write artifact-style CSVs to this directory",
                  "");
  args.add_string("--devices",
                  "csv rows to emit: both | cpu | gpu (split-build files)",
                  "both");
  args.add_double("--noise", "override timing-noise sigma (sim backend)",
                  -1.0);
  args.add_int("--threads", "host-backend thread cap (0 = hardware)", 0);
  args.add_flag("--validate", "checksum-validate CPU vs simulated GPU");
  args.add_flag("--list-systems", "list system profiles and exit");
  args.add_string("--describe", "print a system profile in detail and exit",
                  "");
  args.add_flag("--list-types", "list problem types and exit");
  args.add_flag("--verbose", "info-level logging");
  args.parse(argc, argv);

  if (args.help_requested()) {
    std::cout << args.usage();
    return 0;
  }
  if (args.get_flag("--verbose")) {
    util::set_log_level(util::LogLevel::Info);
  }
  if (args.get_flag("--list-systems")) {
    for (const auto& name : profile::profile_names()) {
      const auto p = profile::by_name(name);
      std::cout << util::strfmt("%-22s %s\n", name.c_str(),
                                p.description.c_str());
    }
    return 0;
  }
  if (!args.get_string("--describe").empty()) {
    const auto p = profile::by_name(args.get_string("--describe"));
    // Table II-style hardware block plus the library behaviour the paper
    // documents per system.
    std::cout << p.name << ": " << p.description << "\n\n";
    std::cout << util::strfmt(
        "CPU   %-18s %g cores x %g FLOPs/cycle (f64) @ %g GHz = %.0f "
        "GFLOP/s f64 peak\n",
        p.cpu.name.c_str(), p.cpu.cores, p.cpu.fp64_flops_per_cycle_per_core,
        p.cpu.freq_ghz, p.cpu.peak_gflops(model::Precision::F64, p.cpu.cores));
    std::cout << util::strfmt(
        "      memory %g GB/s socket, %g GB/s per core; LLC %g MiB\n",
        p.cpu.socket_mem_bw_gbs, p.cpu.core_mem_bw_gbs, p.cpu.llc_mib);
    std::cout << util::strfmt(
        "      library: GEMM threads %s, GEMV %s%s, fork/join %.1f us\n",
        parallel::to_string(p.cpu.gemm_thread_policy.kind),
        p.cpu.gemv_parallel ? "threaded" : "SERIAL",
        p.cpu.gemv_parallel
            ? util::strfmt(" (%s)",
                           parallel::to_string(p.cpu.gemv_thread_policy.kind))
                  .c_str()
            : "",
        p.cpu.fork_join_overhead_s * 1e6);
    std::cout << util::strfmt(
        "GPU   %-18s %.0f / %.0f / %.0f GFLOP/s peak (f32/f64/f16), HBM %g "
        "GB/s\n",
        p.gpu.name.c_str(), p.gpu.peak_gflops_f32, p.gpu.peak_gflops_f64,
        p.gpu.peak_gflops_f16, p.gpu.hbm_bw_gbs);
    std::cout << util::strfmt(
        "      launch %.1f us, min kernel %.1f us\n",
        p.gpu.launch_latency_s * 1e6, p.gpu.min_kernel_s * 1e6);
    std::cout << util::strfmt(
        "LINK  %-18s %.1f us latency, %g / %g GB/s h2d/d2h\n",
        p.link.name.c_str(), p.link.latency_s * 1e6, p.link.h2d_bw_gbs,
        p.link.d2h_bw_gbs);
    std::cout << util::strfmt(
        "      USM: %s, page %s, fault %.1f us, migration %g GB/s\n",
        p.link.xnack ? "page-fault migration (XNACK=1)"
                     : "remote access only (XNACK=0)",
        util::pretty_bytes(p.link.page_bytes).c_str(),
        p.link.page_fault_latency_s * 1e6, p.link.migration_bw_gbs);
    std::cout << util::strfmt("noise sigma %.3f\n", p.noise_sigma);
    return 0;
  }
  if (args.get_flag("--list-types")) {
    for (const auto& t : core::all_problem_types()) {
      std::cout << util::strfmt("%-18s %-6s %s\n", t.id().c_str(),
                                core::to_string(t.op()), t.label().c_str());
    }
    return 0;
  }

  const auto types =
      select_types(args.get_string("--kernel"), args.get_string("--type"));

  std::vector<model::Precision> precisions;
  const std::string prec = args.get_string("--precision");
  if (prec == "f32" || prec == "both") {
    precisions.push_back(model::Precision::F32);
  }
  if (prec == "f64" || prec == "both") {
    precisions.push_back(model::Precision::F64);
  }
  if (precisions.empty()) {
    throw std::invalid_argument("unknown precision selector: " + prec);
  }

  std::unique_ptr<core::ExecutionBackend> backend;
  profile::SystemProfile prof;
  const bool is_sim = args.get_string("--backend") == "sim";
  if (is_sim) {
    prof = profile::by_name(args.get_string("--system"));
    backend = std::make_unique<core::SimBackend>(
        prof, args.get_double("--noise"));
  } else if (args.get_string("--backend") == "host") {
    backend = std::make_unique<core::HostBackend>(
        personality_by_name(args.get_string("--library")),
        static_cast<std::size_t>(args.get_int("--threads")));
  } else if (args.get_string("--backend") == "hybrid") {
    prof = profile::by_name(args.get_string("--system"));
    backend = std::make_unique<core::HybridBackend>(
        personality_by_name(args.get_string("--library")), prof,
        static_cast<std::size_t>(args.get_int("--threads")));
  } else {
    throw std::invalid_argument("unknown backend: " +
                                args.get_string("--backend"));
  }

  core::SweepConfig cfg;
  cfg.s_min = args.get_int("-s");
  cfg.s_max = args.get_int("-d");
  cfg.stride = args.get_int("--stride");
  cfg.iterations = args.get_int("-i");
  cfg.batch = args.get_int("--batch");
  cfg.beta_zero = args.get_double("--beta") == 0.0;

  const std::string csv_dir = args.get_string("--csv-dir");
  if (!csv_dir.empty()) {
    std::filesystem::create_directories(csv_dir);
    if (is_sim) {
      std::vector<std::string> ids;
      for (const auto* type : types) ids.push_back(type->id());
      std::ofstream manifest(csv_dir + "/run_info.json");
      core::write_run_manifest(manifest, prof, cfg, ids);
    }
  }

  // Optional checksum validation before the sweep (small sizes; the
  // functional simulator executes the same kernels the timing covers).
  if (args.get_flag("--validate") && is_sim) {
    blas::CpuBlasLibrary cpu_lib(blas::generic_personality());
    sim::SimGpu gpu(sim::SimGpu::Config{prof.gpu, prof.link, true, 2048.0});
    int failures = 0;
    for (const auto* type : types) {
      for (auto precision : precisions) {
        for (std::int64_t s : {3LL, 17LL, 64LL}) {
          core::Problem problem;
          problem.op = type->op();
          problem.precision = precision;
          problem.dims = type->dims(s);
          const auto v = core::validate_problem(problem, cpu_lib, gpu);
          if (!v.passed) {
            ++failures;
            std::cout << util::strfmt("VALIDATION FAILED %s s=%lld: %s\n",
                                      type->id().c_str(),
                                      static_cast<long long>(s),
                                      v.detail.c_str());
          }
        }
      }
    }
    std::cout << (failures == 0 ? "validation: all checksums within 0.1%\n"
                                : util::strfmt("validation: %d failures\n",
                                               failures));
    if (failures != 0) return 1;
  }

  for (const auto* type : types) {
    std::map<model::Precision, core::SweepResult> results;
    for (auto precision : precisions) {
      core::SweepConfig c = cfg;
      c.precision = precision;
      util::log_info("sweeping " + type->id() + " " +
                     model::to_string(precision));
      results.emplace(precision, core::run_sweep(*backend, *type, c));
      if (!csv_dir.empty()) {
        const std::string devices = args.get_string("--devices");
        const bool include_cpu = devices != "gpu";
        const bool include_gpu = devices != "cpu";
        const std::string suffix =
            devices == "both" ? "" : ("_" + devices + "only");
        const std::string path =
            csv_dir + "/" + type->id() + "_" + model::to_string(precision) +
            util::strfmt("_i%lld", static_cast<long long>(cfg.iterations)) +
            suffix + ".csv";
        std::ofstream out(path);
        core::write_csv(out, results.at(precision), include_cpu,
                        include_gpu);
      }
    }

    // Threshold table (single iteration row in CLI mode).
    const core::SweepResult& first = results.begin()->second;
    core::ThresholdEntry entry;
    entry.iterations = cfg.iterations;
    if (results.count(model::Precision::F32) != 0) {
      entry.f32 = results.at(model::Precision::F32).thresholds;
    }
    if (results.count(model::Precision::F64) != 0) {
      entry.f64 = results.at(model::Precision::F64).thresholds;
    }
    std::cout << core::render_threshold_table(backend->name(), *type, {entry})
              << "\n";
    (void)first;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "gpu-blob: " << e.what() << "\n";
    return 2;
  }
}
