// blob-trace: visualise a simulated offload pipeline as a Chrome trace.
//
// Runs a few iterations of a GEMM under the chosen transfer style on the
// simulated device with tracing enabled and writes a trace-event JSON
// (open with chrome://tracing or https://ui.perfetto.dev). The overlap
// mode demonstrates the double-buffered Transfer-Always pipeline from
// bench/ablation_overlap on three streams.
//
// Usage:
//   blob-trace --system dawn -m 1024 -i 4 --mode overlap -o trace.json

#include <fstream>
#include <iostream>
#include <vector>

#include "simgpu/device.hpp"
#include "sysprofile/profile.hpp"
#include "util/cli.hpp"

namespace {

using namespace blob;

void run_sync(sim::SimGpu& gpu, int s, int iters) {
  const std::size_t bytes = static_cast<std::size_t>(s) * s * 4;
  auto h = gpu.alloc_host(3 * bytes);
  auto da = gpu.alloc_device(bytes);
  auto db = gpu.alloc_device(bytes);
  auto dc = gpu.alloc_device(bytes);
  for (int i = 0; i < iters; ++i) {
    gpu.memcpy_h2d(da, h, bytes);
    gpu.memcpy_h2d(db, h, bytes);
    gpu.memcpy_h2d(dc, h, bytes);
    gpu.gemm<float>(s, s, s, 1.0f, da, s, db, s, 0.0f, dc, s);
    gpu.synchronize();
    gpu.memcpy_d2h(h, dc, bytes);
  }
}

void run_overlap(sim::SimGpu& gpu, int s, int iters) {
  sim::Stream& uploads = gpu.create_stream("uploads");
  sim::Stream& downloads = gpu.create_stream("downloads");
  sim::Stream& compute = gpu.default_stream();
  const std::size_t bytes = static_cast<std::size_t>(s) * s * 4;
  auto h = gpu.alloc_host(3 * bytes);
  std::vector<sim::Buffer> sets;
  for (int i = 0; i < 6; ++i) sets.push_back(gpu.alloc_device(bytes));
  for (int i = 0; i < iters; ++i) {
    sim::Buffer& a = sets[static_cast<std::size_t>((i % 2) * 3)];
    sim::Buffer& b = sets[static_cast<std::size_t>((i % 2) * 3 + 1)];
    sim::Buffer& c = sets[static_cast<std::size_t>((i % 2) * 3 + 2)];
    gpu.memcpy_h2d_async(uploads, a, h, bytes);
    gpu.memcpy_h2d_async(uploads, b, h, bytes);
    gpu.memcpy_h2d_async(uploads, c, h, bytes);
    sim::Event uploaded;
    uploaded.record(uploads);
    compute.wait(uploaded);
    gpu.gemm<float>(s, s, s, 1.0f, a, s, b, s, 0.0f, c, s, &compute);
    sim::Event done;
    done.record(compute);
    downloads.wait(done);
    gpu.memcpy_d2h_async(downloads, h, c, bytes);
  }
  uploads.synchronize();
  downloads.synchronize();
  compute.synchronize();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace blob;
  try {
    util::ArgParser args("blob-trace");
    args.add_string("--system", "system profile", "dawn");
    args.add_int("-m", "square GEMM dimension", 1024);
    args.add_int("-i", "iterations", 4);
    args.add_string("--mode", "sync | overlap", "sync");
    args.add_string("-o", "output trace path", "trace.json");
    args.parse(argc, argv);
    if (args.help_requested()) {
      std::cout << args.usage();
      return 0;
    }

    const auto prof = profile::by_name(args.get_string("--system"));
    sim::SimGpu::Config cfg{prof.gpu, prof.link, /*functional=*/false, 0.0,
                            /*trace=*/true};
    sim::SimGpu gpu(cfg);
    const int s = static_cast<int>(args.get_int("-m"));
    const int iters = static_cast<int>(args.get_int("-i"));
    if (args.get_string("--mode") == "overlap") {
      run_overlap(gpu, s, iters);
    } else {
      run_sync(gpu, s, iters);
    }

    const std::string path = args.get_string("-o");
    std::ofstream out(path);
    sim::write_chrome_trace(out, gpu.trace().ops());
    std::cout << "wrote " << gpu.trace().ops().size() << " events ("
              << gpu.now() * 1e3 << " virtual ms) to " << path << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "blob-trace: " << e.what() << "\n";
    return 2;
  }
}
