// blob-roofline: explain WHY a problem lands on one side of the offload
// threshold.
//
// The paper's conclusion says performance graphs are "likely required to
// accurately determine whether a BLAS-based application would benefit
// from GPU acceleration" (§V). This tool prints the roofline breakdown
// behind the advisor's verdict: arithmetic intensity, the binding
// resource on each device, per-phase time (compute / HBM / link), and
// the break-even iteration count.
//
// Usage:
//   blob-roofline --op gemm -m 4096 -n 4096 -k 32 --system dawn -i 8

#include <cmath>
#include <cstdio>
#include <iostream>

#include "core/advisor.hpp"
#include "core/flops.hpp"
#include "core/sim_backend.hpp"
#include "sysprofile/profile.hpp"
#include "util/cli.hpp"
#include "util/strfmt.hpp"

namespace {

using namespace blob;

void analyse(const profile::SystemProfile& prof, const core::Problem& p,
             std::int64_t iterations) {
  core::SimBackend backend(prof, 0.0);
  const double flops = core::problem_flops(p);
  const double ai = core::arithmetic_intensity(p);
  const double in_bytes = core::h2d_bytes(p);
  const double out_bytes = core::d2h_bytes(p);

  std::printf("system: %s (%s)\n", prof.name.c_str(),
              prof.description.c_str());
  std::printf("problem: %s %lldx%lldx%lld %s, %lld iterations\n",
              core::to_string(p.op), static_cast<long long>(p.dims.m),
              static_cast<long long>(p.dims.n),
              static_cast<long long>(p.dims.k), model::to_string(p.precision),
              static_cast<long long>(iterations));
  std::printf("  FLOPs/call:            %.3g\n", flops);
  std::printf("  arithmetic intensity:  %.2f FLOP per transferred byte\n",
              ai);
  std::printf("  h2d / d2h per upload:  %s / %s\n",
              util::pretty_bytes(in_bytes).c_str(),
              util::pretty_bytes(out_bytes).c_str());

  const double cpu_total = backend.cpu_time(p, iterations);
  std::printf("\nCPU total:   %s  (%.1f GFLOP/s)\n",
              util::pretty_seconds(cpu_total).c_str(),
              core::gflops(p, iterations, cpu_total));

  const double kernel = backend.kernel_time(p);
  const double link_once =
      in_bytes / (prof.link.h2d_bw_gbs * 1e9) + 4.0 * prof.link.latency_s +
      out_bytes / (prof.link.d2h_bw_gbs * 1e9);
  for (auto mode : core::kTransferModes) {
    const double total = *backend.gpu_time(p, iterations, mode);
    std::printf("GPU %-7s %s  (%.1f GFLOP/s)\n", core::to_string(mode),
                util::pretty_seconds(total).c_str(),
                core::gflops(p, iterations, total));
  }
  std::printf("  per-kernel device time: %s; one link round-trip: %s\n",
              util::pretty_seconds(kernel).c_str(),
              util::pretty_seconds(link_once).c_str());
  const char* binding =
      kernel * static_cast<double>(iterations) > link_once ? "device compute"
                                                           : "the host link";
  std::printf("  Transfer-Once is bound by %s at this iteration count\n",
              binding);

  // Break-even iteration count for Transfer-Once: smallest i with
  // gpu(i) < cpu(i), if any within 2^20.
  std::int64_t break_even = -1;
  for (std::int64_t i = 1; i <= (1 << 20); i *= 2) {
    if (*backend.gpu_time(p, i, core::TransferMode::Once) <
        backend.cpu_time(p, i)) {
      break_even = i;
      break;
    }
  }
  if (break_even < 0) {
    std::printf("  break-even re-use: none up to 2^20 iterations\n");
  } else if (break_even == 1) {
    std::printf("  break-even re-use: GPU already wins at 1 iteration\n");
  } else {
    std::printf("  break-even re-use: between %lld and %lld iterations\n",
                static_cast<long long>(break_even / 2),
                static_cast<long long>(break_even));
  }

  core::OffloadAdvisor advisor(backend);
  const auto advice = advisor.advise_best_mode(p, iterations);
  std::printf("\nverdict: %s\n", advice.rationale.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace blob;
  try {
    util::ArgParser args("blob-roofline");
    args.add_string("--op", "gemm | gemv", "gemm");
    args.add_int("-m", "rows", 1024);
    args.add_int("-n", "columns", 1024);
    args.add_int("-k", "inner GEMM dimension", 1024);
    args.add_int("-i", "iterations (data re-use)", 1);
    args.add_string("--system", "system profile", "dawn");
    args.add_string("--precision", "f32 | f64", "f32");
    args.parse(argc, argv);
    if (args.help_requested()) {
      std::cout << args.usage();
      return 0;
    }
    core::Problem p;
    p.op = args.get_string("--op") == "gemv" ? core::KernelOp::Gemv
                                             : core::KernelOp::Gemm;
    p.precision = args.get_string("--precision") == "f64"
                      ? model::Precision::F64
                      : model::Precision::F32;
    p.dims = {args.get_int("-m"), args.get_int("-n"),
              p.op == core::KernelOp::Gemm ? args.get_int("-k") : 1};
    analyse(profile::by_name(args.get_string("--system")), p,
            args.get_int("-i"));
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "blob-roofline: " << e.what() << "\n";
    return 2;
  }
}
