// blob-threshold: offload-threshold post-processing.
//
// The C++ analogue of the artifact's calculateOffloadThreshold.py: reads
// one or more CSV files produced by gpu-blob (a combined file, or a
// CPU-only plus a GPU-only file from split builds, as the paper's LUMI
// workflow requires) and prints the detected offload thresholds per
// transfer type.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/sweep.hpp"
#include "util/strfmt.hpp"

namespace {

using namespace blob;

int run(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: blob-threshold <sweep.csv> [more.csv ...]\n"
                 "Multiple files are concatenated (CPU-only + GPU-only "
                 "pairs are merged by problem size).\n";
    return 2;
  }

  // Concatenate all files' data rows under the first file's header.
  std::stringstream merged;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i]);
    if (!in) {
      std::cerr << "blob-threshold: cannot open " << argv[i] << "\n";
      return 2;
    }
    std::string line;
    bool first_line = true;
    while (std::getline(in, line)) {
      if (first_line) {
        first_line = false;
        if (i == 1) merged << line << '\n';  // keep one header
        continue;
      }
      merged << line << '\n';
    }
  }

  const core::SweepResult result = core::read_csv(merged);
  const bool gemv = result.type->op() == core::KernelOp::Gemv;
  std::cout << util::strfmt(
      "%s (%s), %s, %lld iterations, %zu sizes\n", result.type->id().c_str(),
      result.type->label().c_str(), model::to_string(result.config.precision),
      static_cast<long long>(result.config.iterations),
      result.samples.size());
  for (std::size_t mode = 0; mode < 3; ++mode) {
    std::cout << util::strfmt(
        "  %-7s offload threshold: %s\n",
        core::to_string(core::kTransferModes[mode]),
        core::threshold_to_string(result.thresholds[mode], gemv).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "blob-threshold: " << e.what() << "\n";
    return 2;
  }
}
