// blob-serve: replay a mixed BLAS traffic trace through the online
// offload dispatcher and report routed-vs-oracle regret.
//
// The driver generates a deterministic stream of GEMM/GEMV calls drawn
// from a weighted mix of shape classes (small CPU-favoured GEMMs, shapes
// near the offload crossover, large GPU-favoured GEMMs, memory-bound
// GEMVs), installs the dispatcher behind the cblas entry points (or, with
// --queue, drives the admission queue from several client threads), and
// compares the dispatcher's cumulative modelled latency against three
// baselines computed from the same noise-free cost models:
//   * oracle      — per-call cheaper backend (the offline threshold
//                   applied with perfect knowledge, paper §III-D),
//   * always-cpu  — never offload,
//   * always-gpu  — always offload.
// A converged dispatcher should land within a few percent of the oracle
// and strictly beat both constant policies on a mixed workload.
//
// --save-calib / --load-calib round-trip the decision table so a second
// run starts warm (cold_starts == 0, explores == 0 in the stats).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include <atomic>
#include <chrono>
#include <string_view>

#include "blas/cblas.hpp"
#include "blas/gemm.hpp"
#include "core/validate.hpp"
#include "dispatch/admission_queue.hpp"
#include "dispatch/dispatcher.hpp"
#include "lapack/geqrf.hpp"
#include "lapack/getrf.hpp"
#include "lapack/potrf.hpp"
#include "obs/obs.hpp"
#include "serve/fleet.hpp"
#include "serve/metrics.hpp"
#include "sysprofile/profile.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/strfmt.hpp"

namespace {

using blob::blas::Transpose;
using blob::dispatch::Dispatcher;

struct ShapeClass {
  const char* label;
  blob::core::KernelOp op;
  blob::model::Precision precision;
  Transpose ta, tb;
  int m, n, k;
  double weight;
};

constexpr Transpose kN = Transpose::No;
constexpr Transpose kT = Transpose::Yes;

// The default mix spans both sides of every profile's offload threshold:
// tiny GEMMs no link crossing can amortise, mid sizes near the crossover,
// large squares the GPU wins outright, bandwidth-bound GEMVs — plus
// transposed and half-precision rows, which ride the same OpDesc path
// end-to-end (no Forced fallbacks for a transpose).
const ShapeClass kClasses[] = {
    {"gemm-small-f32", blob::core::KernelOp::Gemm,
     blob::model::Precision::F32, kN, kN, 48, 48, 48, 0.24},
    {"gemm-mid-f32", blob::core::KernelOp::Gemm, blob::model::Precision::F32,
     kN, kN, 256, 256, 256, 0.12},
    {"gemm-mid-f32-tn", blob::core::KernelOp::Gemm,
     blob::model::Precision::F32, kT, kN, 256, 256, 256, 0.08},
    {"gemm-large-f32", blob::core::KernelOp::Gemm,
     blob::model::Precision::F32, kN, kN, 768, 768, 768, 0.12},
    {"gemm-large-f32-nt", blob::core::KernelOp::Gemm,
     blob::model::Precision::F32, kN, kT, 640, 640, 640, 0.06},
    {"gemm-mid-f64", blob::core::KernelOp::Gemm, blob::model::Precision::F64,
     kN, kN, 320, 320, 320, 0.08},
    {"gemm-large-f64", blob::core::KernelOp::Gemm,
     blob::model::Precision::F64, kN, kN, 640, 640, 640, 0.08},
    {"gemm-mid-f16", blob::core::KernelOp::Gemm, blob::model::Precision::F16,
     kN, kN, 384, 384, 384, 0.07},
    {"gemv-mid-f32", blob::core::KernelOp::Gemv, blob::model::Precision::F32,
     kN, kN, 768, 768, 1, 0.07},
    {"gemv-mid-f32-t", blob::core::KernelOp::Gemv,
     blob::model::Precision::F32, kT, kN, 768, 768, 1, 0.04},
    {"gemv-large-f64", blob::core::KernelOp::Gemv,
     blob::model::Precision::F64, kN, kN, 1536, 1536, 1, 0.04},
};

/// Pre-generated operand buffers for one shape class (reused across
/// calls, like a server reusing request arenas).
struct ClassBuffers {
  std::vector<float> af, bf, cf;
  std::vector<double> ad, bd, cd;
  std::vector<blob::blas::f16> ah, bh, ch;
};

void fill_deterministic(std::vector<float>& v, std::uint64_t salt) {
  blob::util::Xoshiro256 rng(0xf111 + salt);
  for (auto& x : v) x = static_cast<float>(rng.next_double() - 0.5);
}

void fill_deterministic(std::vector<double>& v, std::uint64_t salt) {
  blob::util::Xoshiro256 rng(0xf111 + salt);
  for (auto& x : v) x = rng.next_double() - 0.5;
}

void fill_deterministic(std::vector<blob::blas::f16>& v,
                        std::uint64_t salt) {
  blob::util::Xoshiro256 rng(0xf111 + salt);
  for (auto& x : v) {
    x = blob::blas::f16(static_cast<float>(rng.next_double() - 0.5));
  }
}

CBLAS_TRANSPOSE to_cblas(Transpose t) {
  return t == Transpose::Yes ? CblasTrans : CblasNoTrans;
}

blob::blas::CpuLibraryPersonality personality_by_name(
    const std::string& name) {
  if (name == "generic") return blob::blas::generic_personality();
  if (name == "nvpl") return blob::blas::nvpl_like_personality();
  if (name == "armpl") return blob::blas::armpl_like_personality();
  if (name == "aocl") return blob::blas::aocl_like_personality();
  if (name == "openblas") return blob::blas::openblas_like_personality();
  if (name == "single") return blob::blas::single_thread_personality();
  throw std::invalid_argument("unknown personality: " + name);
}

blob::core::TransferMode mode_by_name(const std::string& name) {
  if (name == "once") return blob::core::TransferMode::Once;
  if (name == "always") return blob::core::TransferMode::Always;
  if (name == "usm") return blob::core::TransferMode::Usm;
  throw std::invalid_argument("unknown transfer mode: " + name);
}

blob::core::ErrorBudget budget_by_name(const std::string& name) {
  if (name == "exact") return blob::core::ErrorBudget::exact();
  if (name == "relaxed") return blob::core::ErrorBudget::relaxed();
  if (name.rfind("ulp:", 0) == 0) {
    const unsigned long ulps = std::stoul(name.substr(4));
    return blob::core::ErrorBudget::ulp_bounded(
        static_cast<std::uint32_t>(ulps));
  }
  throw std::invalid_argument("unknown error budget: " + name +
                              " (want exact, relaxed or ulp:N)");
}

blob::dispatch::ResidencyPolicy residency_by_name(const std::string& name) {
  if (name == "off") return blob::dispatch::ResidencyPolicy::Off;
  if (name == "track") return blob::dispatch::ResidencyPolicy::Track;
  if (name == "first-touch") {
    return blob::dispatch::ResidencyPolicy::FirstTouch;
  }
  throw std::invalid_argument("unknown residency policy: " + name);
}

struct Baselines {
  double oracle_s = 0.0;
  double always_cpu_s = 0.0;
  double always_gpu_s = 0.0;
};

constexpr std::size_t kNumClasses = std::size(kClasses);

/// Element counts for one class's operands (see the arena comments).
struct ClassExtents {
  std::size_t a = 0, b = 0, c = 0;
};

ClassExtents extents_of(const ShapeClass& sc) {
  ClassExtents e;
  e.a = static_cast<std::size_t>(sc.m) *
        (sc.op == blob::core::KernelOp::Gemm ? static_cast<std::size_t>(sc.k)
                                             : static_cast<std::size_t>(sc.n));
  e.b = sc.op == blob::core::KernelOp::Gemm
            ? static_cast<std::size_t>(sc.k) * static_cast<std::size_t>(sc.n)
            : static_cast<std::size_t>(sc.ta == kN ? sc.n : sc.m);
  e.c = sc.op == blob::core::KernelOp::Gemm
            ? static_cast<std::size_t>(sc.m) * static_cast<std::size_t>(sc.n)
            : static_cast<std::size_t>(sc.ta == kN ? sc.m : sc.n);
  return e;
}

/// Deterministically filled operand arenas for every shape class.
std::vector<ClassBuffers> make_arenas() {
  std::vector<ClassBuffers> buffers(kNumClasses);
  for (std::size_t ci = 0; ci < kNumClasses; ++ci) {
    const ShapeClass& sc = kClasses[ci];
    // Element counts are invariant under transposition (a k x m stored A
    // holds as many values as an m x k one); GEMV vector lengths swap.
    const ClassExtents e = extents_of(sc);
    if (sc.precision == blob::model::Precision::F16) {
      buffers[ci].ah.resize(e.a);
      buffers[ci].bh.resize(e.b);
      buffers[ci].ch.resize(e.c);
      fill_deterministic(buffers[ci].ah, ci * 3 + 0);
      fill_deterministic(buffers[ci].bh, ci * 3 + 1);
      fill_deterministic(buffers[ci].ch, ci * 3 + 2);
    } else if (sc.precision == blob::model::Precision::F32) {
      buffers[ci].af.resize(e.a);
      buffers[ci].bf.resize(e.b);
      buffers[ci].cf.resize(e.c);
      fill_deterministic(buffers[ci].af, ci * 3 + 0);
      fill_deterministic(buffers[ci].bf, ci * 3 + 1);
      fill_deterministic(buffers[ci].cf, ci * 3 + 2);
    } else {
      buffers[ci].ad.resize(e.a);
      buffers[ci].bd.resize(e.b);
      buffers[ci].cd.resize(e.c);
      fill_deterministic(buffers[ci].ad, ci * 3 + 0);
      fill_deterministic(buffers[ci].bd, ci * 3 + 1);
      fill_deterministic(buffers[ci].cd, ci * 3 + 2);
    }
  }
  return buffers;
}

/// Issue one call of class `sc` on `buf` through the cblas entry points
/// (routes through the dispatcher when its hook is installed, natively
/// otherwise — the native form computes checksum references).
void issue_class(const ShapeClass& sc, ClassBuffers& buf) {
  if (sc.op == blob::core::KernelOp::Gemm) {
    const int lda = sc.ta == kN ? sc.m : sc.k;
    const int ldb = sc.tb == kN ? sc.k : sc.n;
    if (sc.precision == blob::model::Precision::F16) {
      cblas_hgemm(CblasColMajor, to_cblas(sc.ta), to_cblas(sc.tb), sc.m,
                  sc.n, sc.k, 1.0F, buf.ah.data(), lda, buf.bh.data(), ldb,
                  0.0F, buf.ch.data(), sc.m);
    } else if (sc.precision == blob::model::Precision::F32) {
      cblas_sgemm(CblasColMajor, to_cblas(sc.ta), to_cblas(sc.tb), sc.m,
                  sc.n, sc.k, 1.0F, buf.af.data(), lda, buf.bf.data(), ldb,
                  0.0F, buf.cf.data(), sc.m);
    } else {
      cblas_dgemm(CblasColMajor, to_cblas(sc.ta), to_cblas(sc.tb), sc.m,
                  sc.n, sc.k, 1.0, buf.ad.data(), lda, buf.bd.data(), ldb,
                  0.0, buf.cd.data(), sc.m);
    }
  } else {
    if (sc.precision == blob::model::Precision::F32) {
      cblas_sgemv(CblasColMajor, to_cblas(sc.ta), sc.m, sc.n, 1.0F,
                  buf.af.data(), sc.m, buf.bf.data(), 1, 0.0F, buf.cf.data(),
                  1);
    } else {
      cblas_dgemv(CblasColMajor, to_cblas(sc.ta), sc.m, sc.n, 1.0,
                  buf.ad.data(), sc.m, buf.bd.data(), 1, 0.0, buf.cd.data(),
                  1);
    }
  }
}

/// Output (C or y) footprint in bytes.
std::size_t c_bytes(const ShapeClass& sc) {
  const std::size_t elems = extents_of(sc).c;
  if (sc.precision == blob::model::Precision::F16) {
    return elems * sizeof(blob::blas::f16);
  }
  if (sc.precision == blob::model::Precision::F32) {
    return elems * sizeof(float);
  }
  return elems * sizeof(double);
}

const void* c_ptr(const ClassBuffers& buf, const ShapeClass& sc) {
  if (sc.precision == blob::model::Precision::F16) return buf.ch.data();
  if (sc.precision == blob::model::Precision::F32) return buf.cf.data();
  return buf.cd.data();
}

/// The one output-verification helper every mode funnels through (replay,
/// fleet drain, factorize, solver). Compares under `spec` — bitwise for
/// the exact contract, tolerance-aware when the run declared an error
/// budget — and on failure reports the first differing index and the
/// worst ULP distance instead of a bare "memcmp failed".
template <typename T>
bool verify_buffers(const char* what, const T* ref, const T* got,
                    std::size_t len, const blob::core::CompareSpec& spec) {
  const blob::core::CompareResult r =
      blob::core::compare_buffers(ref, got, len, spec);
  if (!r.passed) {
    std::cerr << "verify(" << what << "): " << r.detail << "\n";
  }
  return r.passed;
}

/// Typed verification of one class's raw output pointer against the
/// reference arenas. f16 outputs always verify bitwise (no route relaxes
/// half precision); f32/f64 follow `spec`.
bool verify_class_output(const void* got, const ClassBuffers& ref,
                         const ShapeClass& sc,
                         const blob::core::CompareSpec& spec) {
  const std::size_t elems = extents_of(sc).c;
  if (sc.precision == blob::model::Precision::F16) {
    if (std::memcmp(got, ref.ch.data(), c_bytes(sc)) == 0) return true;
    std::cerr << "verify(" << sc.label << "): f16 output not bit-identical\n";
    return false;
  }
  if (sc.precision == blob::model::Precision::F32) {
    return verify_buffers(sc.label, ref.cf.data(),
                          static_cast<const float*>(got), elems, spec);
  }
  return verify_buffers(sc.label, ref.cd.data(),
                        static_cast<const double*>(got), elems, spec);
}

/// Does this class's output match the reference under `spec`?
bool class_matches(const ClassBuffers& got, const ClassBuffers& ref,
                   const ShapeClass& sc,
                   const blob::core::CompareSpec& spec) {
  return verify_class_output(c_ptr(got, sc), ref, sc, spec);
}

/// Deterministic weighted class sequence over `allowed` class indices.
std::vector<std::size_t> sample_sequence(
    std::size_t calls, std::uint64_t seed,
    const std::vector<std::size_t>& allowed) {
  blob::util::Xoshiro256 rng(seed);
  double weight_sum = 0.0;
  for (const std::size_t ci : allowed) weight_sum += kClasses[ci].weight;
  std::vector<std::size_t> sequence(calls);
  for (std::size_t i = 0; i < calls; ++i) {
    double draw = rng.next_double() * weight_sum;
    std::size_t pick = allowed.front();
    for (const std::size_t ci : allowed) {
      draw -= kClasses[ci].weight;
      if (draw <= 0.0) {
        pick = ci;
        break;
      }
    }
    sequence[i] = pick;
  }
  return sequence;
}

// -- fleet mode --------------------------------------------------------------

/// Service class per shape class: tiny filler GEMMs ride best-effort
/// (never shed), shapes near the crossover serve interactive traffic
/// (tight SLO), large GPU-bound shapes are batch/pipeline traffic
/// (loose SLO).
blob::serve::RequestClass request_class_of(const ShapeClass& sc) {
  const std::string_view label(sc.label);
  if (label.find("small") != std::string_view::npos) {
    return blob::serve::RequestClass::BestEffort;
  }
  if (label.find("large") != std::string_view::npos) {
    return blob::serve::RequestClass::Batch;
  }
  return blob::serve::RequestClass::Interactive;
}

constexpr blob::serve::RequestClass kRequestClasses[] = {
    blob::serve::RequestClass::Interactive,
    blob::serve::RequestClass::Batch,
    blob::serve::RequestClass::BestEffort,
};

/// Two trace records are bitwise-equal on every routed-decision field
/// (span ids are excluded: they depend on live tracing state).
bool records_equal(const blob::dispatch::TraceRecord& a,
                   const blob::dispatch::TraceRecord& b) {
  return a.seq == b.seq && a.device == b.device && a.op == b.op &&
         a.precision == b.precision && a.mode == b.mode &&
         a.bucket == b.bucket && a.trans_a == b.trans_a &&
         a.trans_b == b.trans_b && a.m == b.m && a.n == b.n && a.k == b.k &&
         a.route == b.route && a.reason == b.reason &&
         a.cpu_est_s == b.cpu_est_s && a.gpu_est_s == b.gpu_est_s &&
         a.emu_est_s == b.emu_est_s && a.budget == b.budget &&
         a.slices == b.slices &&
         a.cost_s == b.cost_s && a.observed_s == b.observed_s &&
         a.batch == b.batch && a.residency == b.residency &&
         a.h2d_moved_bytes == b.h2d_moved_bytes &&
         a.h2d_skipped_bytes == b.h2d_skipped_bytes;
}

int run_fleet(const blob::util::ArgParser& args,
              blob::dispatch::DispatcherConfig base) {
  using blob::serve::RequestClass;

  const auto calls = static_cast<std::size_t>(args.get_int("-n"));
  const int devices = args.get_int("--devices");
  const bool verify_single = args.get_flag("--verify-single");
  double slo_ms = args.get_double("--slo-ms");
  double slo_batch_ms = args.get_double("--slo-batch-ms");
  if (slo_batch_ms < 0.0) slo_batch_ms = slo_ms * 10.0;
  auto clients = static_cast<std::size_t>(
      std::max<std::int64_t>(args.get_int("--clients"), 1));
  const auto burst = static_cast<std::size_t>(
      std::max<std::int64_t>(args.get_int("--burst"), 1));
  const auto gap_us = std::max<std::int64_t>(args.get_int("--gap-us"), 0);

  if (verify_single) {
    if (devices != 1) {
      std::cerr << "error: --verify-single requires --devices 1\n";
      return 2;
    }
    // Bit-identity needs a deterministic admission order and zero
    // shedding; force both rather than silently comparing noise.
    clients = 1;
    slo_ms = 0.0;
    slo_batch_ms = 0.0;
  }

  // Device personalities: --device-systems cycles over the fleet (so
  // "dawn,lumi --devices 4" builds dawn,lumi,dawn,lumi); default is a
  // homogeneous fleet of --system.
  std::vector<blob::profile::SystemProfile> profiles;
  {
    std::vector<std::string> names;
    const std::string spec = args.get_string("--device-systems");
    std::size_t start = 0;
    while (start <= spec.size() && !spec.empty()) {
      const std::size_t comma = spec.find(',', start);
      const std::size_t end = comma == std::string::npos ? spec.size() : comma;
      if (end > start) names.push_back(spec.substr(start, end - start));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    if (names.empty()) names.push_back(args.get_string("--system"));
    try {
      for (int i = 0; i < devices; ++i) {
        profiles.push_back(
            blob::profile::by_name(names[static_cast<std::size_t>(i) %
                                         names.size()]));
      }
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
  }

  // The fleet serves the f32/f64 mix (half precisions stay on the
  // single-device replay path — see serve::OpKind).
  std::vector<std::size_t> mix;
  for (std::size_t ci = 0; ci < kNumClasses; ++ci) {
    if (kClasses[ci].precision != blob::model::Precision::F16) {
      mix.push_back(ci);
    }
  }

  std::vector<ClassBuffers> buffers = make_arenas();
  // Per-class checksum references through the native CPU path (no hook
  // is installed in fleet mode, so plain cblas is the ground truth; the
  // simulated GPU kernels are bitwise-identical to the CPU path, so one
  // reference validates every route on every device).
  std::vector<ClassBuffers> refs = buffers;
  for (const std::size_t ci : mix) issue_class(kClasses[ci], refs[ci]);

  const std::vector<std::size_t> sequence = sample_sequence(
      calls, static_cast<std::uint64_t>(args.get_int("--seed")), mix);

  blob::serve::FleetConfig fc;
  fc.devices = profiles;
  fc.base = base;
  fc.base.trace_capacity = calls == 0 ? 1 : calls;
  fc.slo.interactive_ms = slo_ms;
  fc.slo.batch_ms = slo_batch_ms;
  fc.queue_capacity = static_cast<std::size_t>(
      std::max<std::int64_t>(args.get_int("--queue-capacity"), 0));
  fc.tenant = args.get_string("--tenant");
  fc.calibration_prefix = args.get_string("--calib-prefix");
  blob::serve::DeviceFleet fleet(fc);

  std::cout << blob::util::strfmt(
      "fleet: %d devices, %zu calls, %zu clients x burst %zu (gap %lld us, "
      "slo %.1f/%.1f ms)\n",
      devices, calls, clients, burst, static_cast<long long>(gap_us),
      slo_ms, slo_batch_ms);
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    std::cout << blob::util::strfmt("  device %zu: %s\n", i,
                                    profiles[i].name.c_str());
  }

  const auto wall_start = std::chrono::steady_clock::now();
  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<std::uint64_t> completed_seen{0};

  // Closed-loop bursty producers. Each client owns a ring of `burst`
  // output slots per class, so every in-flight request of a class writes
  // a distinct buffer even when two land on different devices; the
  // burst barrier (wait before reuse) makes the ring bound exact. In
  // --verify-single mode the single client writes the shared arenas
  // directly (one device drains FIFO, so nothing ever overlaps) — this
  // keeps operand addresses identical to the plain-dispatcher replay,
  // which matters under an active residency policy.
  struct Pending {
    std::future<blob::serve::ServeResult> fut;
    std::size_t ci = 0;
    const void* out = nullptr;
  };
  auto producer = [&](std::size_t t) {
    std::vector<std::vector<std::vector<float>>> slots_f(kNumClasses);
    std::vector<std::vector<std::vector<double>>> slots_d(kNumClasses);
    std::vector<std::size_t> ring(kNumClasses, 0);
    if (!verify_single) {
      for (const std::size_t ci : mix) {
        const ShapeClass& sc = kClasses[ci];
        if (sc.precision == blob::model::Precision::F32) {
          slots_f[ci].assign(burst, buffers[ci].cf);
        } else {
          slots_d[ci].assign(burst, buffers[ci].cd);
        }
      }
    }
    std::vector<Pending> pending;
    pending.reserve(burst);
    auto drain = [&] {
      // Resolve every future of the burst before checking any output: in
      // --verify-single mode in-flight requests of one class share a
      // single arena, so comparing request i while request j > i of the
      // same class still executes would race the worker's writes.
      std::vector<blob::serve::ServeResult> results;
      results.reserve(pending.size());
      for (Pending& p : pending) results.push_back(p.fut.get());
      for (std::size_t i = 0; i < pending.size(); ++i) {
        if (results[i].outcome != blob::serve::Outcome::Completed) continue;
        completed_seen.fetch_add(1, std::memory_order_relaxed);
        const Pending& p = pending[i];
        const ShapeClass& sc = kClasses[p.ci];
        if (!verify_class_output(p.out, refs[p.ci], sc,
                                 blob::core::CompareSpec::bitwise())) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
      pending.clear();
    };
    for (std::size_t i = t; i < calls; i += clients) {
      const std::size_t ci = sequence[i];
      const ShapeClass& sc = kClasses[ci];
      const RequestClass cls = request_class_of(sc);
      Pending p;
      p.ci = ci;
      if (sc.op == blob::core::KernelOp::Gemm) {
        const int lda = sc.ta == kN ? sc.m : sc.k;
        const int ldb = sc.tb == kN ? sc.k : sc.n;
        if (sc.precision == blob::model::Precision::F32) {
          float* out = verify_single
                           ? buffers[ci].cf.data()
                           : slots_f[ci][ring[ci]++ % burst].data();
          p.out = out;
          p.fut = fleet.submit_gemm<float>(
              cls, sc.ta, sc.tb, sc.m, sc.n, sc.k, 1.0F,
              buffers[ci].af.data(), lda, buffers[ci].bf.data(), ldb, 0.0F,
              out, sc.m);
        } else {
          double* out = verify_single
                            ? buffers[ci].cd.data()
                            : slots_d[ci][ring[ci]++ % burst].data();
          p.out = out;
          p.fut = fleet.submit_gemm<double>(
              cls, sc.ta, sc.tb, sc.m, sc.n, sc.k, 1.0,
              buffers[ci].ad.data(), lda, buffers[ci].bd.data(), ldb, 0.0,
              out, sc.m);
        }
      } else {
        if (sc.precision == blob::model::Precision::F32) {
          float* out = verify_single
                           ? buffers[ci].cf.data()
                           : slots_f[ci][ring[ci]++ % burst].data();
          p.out = out;
          p.fut = fleet.submit_gemv<float>(
              cls, sc.ta, sc.m, sc.n, 1.0F, buffers[ci].af.data(), sc.m,
              buffers[ci].bf.data(), 1, 0.0F, out, 1);
        } else {
          double* out = verify_single
                            ? buffers[ci].cd.data()
                            : slots_d[ci][ring[ci]++ % burst].data();
          p.out = out;
          p.fut = fleet.submit_gemv<double>(
              cls, sc.ta, sc.m, sc.n, 1.0, buffers[ci].ad.data(), sc.m,
              buffers[ci].bd.data(), 1, 0.0, out, 1);
        }
      }
      pending.push_back(std::move(p));
      if (pending.size() >= burst) {
        drain();
        if (gap_us > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(gap_us));
        }
      }
    }
    drain();
  };

  {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t t = 0; t < clients; ++t) {
      threads.emplace_back(producer, t);
    }
    for (auto& th : threads) th.join();
  }
  fleet.flush();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  // -- N=1 bit-identity: replay the same sequence through a lone
  // Dispatcher (same config, same buffers) and demand the decision
  // traces match bitwise.
  bool verify_identical = true;
  std::size_t verify_diverged_at = 0;
  if (verify_single) {
    const std::vector<blob::dispatch::TraceRecord> fleet_trace =
        fleet.device(0).trace().snapshot();
    blob::dispatch::DispatcherConfig plain_cfg = base;
    plain_cfg.trace_capacity = calls == 0 ? 1 : calls;
    blob::dispatch::Dispatcher plain(plain_cfg);
    plain.install();
    for (std::size_t i = 0; i < calls; ++i) {
      issue_class(kClasses[sequence[i]], buffers[sequence[i]]);
    }
    plain.uninstall();
    const std::vector<blob::dispatch::TraceRecord> plain_trace =
        plain.trace().snapshot();
    if (fleet_trace.size() != plain_trace.size()) {
      verify_identical = false;
    } else {
      for (std::size_t i = 0; i < fleet_trace.size(); ++i) {
        if (!records_equal(fleet_trace[i], plain_trace[i])) {
          verify_identical = false;
          verify_diverged_at = i;
          break;
        }
      }
    }
    // The plain replay rewrote the shared arenas; they must still match
    // the references (both runs compute the same bits).
    for (const std::size_t ci : mix) {
      bool appeared = false;
      for (const std::size_t s : sequence) appeared |= s == ci;
      if (appeared && !class_matches(buffers[ci], refs[ci], kClasses[ci],
                                     blob::core::CompareSpec::bitwise())) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  const blob::serve::FleetStats stats = fleet.stats();
  const double speedup =
      stats.makespan_s > 0.0 ? stats.busy_s / stats.makespan_s : 0.0;
  const double regret =
      stats.oracle_s > 0.0 ? stats.busy_s / stats.oracle_s - 1.0 : 0.0;

  std::cout << blob::util::strfmt(
      "\n  submitted %llu  completed %llu  shed %llu  checksum mismatches "
      "%llu (expect 0)\n",
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.shed),
      static_cast<unsigned long long>(mismatches.load()));
  for (const RequestClass cls : kRequestClasses) {
    const blob::obs::Histogram& hist = blob::serve::latency_histogram(cls);
    if (hist.count() == 0 && blob::serve::shed_counter(cls).value() == 0) {
      continue;
    }
    std::cout << blob::util::strfmt(
        "  class %-12s n=%-6llu p50 %8.3f ms  p99 %8.3f ms  shed %llu\n",
        blob::serve::to_string(cls),
        static_cast<unsigned long long>(hist.count()),
        blob::serve::histogram_quantile(hist, 0.50) / 1.0e6,
        blob::serve::histogram_quantile(hist, 0.99) / 1.0e6,
        static_cast<unsigned long long>(
            blob::serve::shed_counter(cls).value()));
  }
  std::cout << blob::util::strfmt(
      "  modelled: busy %.4es  makespan %.4es  speedup %.2fx  oracle %.4es "
      "(regret %+.2f%%)\n",
      stats.busy_s, stats.makespan_s, speedup, stats.oracle_s,
      100.0 * regret);
  std::cout << blob::util::strfmt(
      "  wall %.3fs  throughput %.0f req/s\n", wall_s,
      wall_s > 0.0 ? static_cast<double>(stats.completed) / wall_s : 0.0);
  for (std::size_t i = 0; i < stats.devices.size(); ++i) {
    const blob::serve::DeviceStats& ds = stats.devices[i];
    std::cout << blob::util::strfmt(
        "  device %zu (%s): completed %llu  shed %llu  busy %.4es  "
        "(cpu %llu, gpu %llu routed)\n",
        i, ds.profile.c_str(),
        static_cast<unsigned long long>(ds.completed),
        static_cast<unsigned long long>(ds.shed), ds.busy_s,
        static_cast<unsigned long long>(ds.dispatch.cpu_routed),
        static_cast<unsigned long long>(ds.dispatch.gpu_routed));
  }
  if (verify_single) {
    std::cout << blob::util::strfmt(
        "  verify-single: %s\n",
        verify_identical ? "fleet trace bit-identical to lone dispatcher"
                         : "TRACE DIVERGED");
    if (!verify_identical) {
      std::cerr << blob::util::strfmt(
          "error: fleet(1) diverged from the single-device dispatcher at "
          "record %zu\n",
          verify_diverged_at);
    }
  }

  if (!fc.calibration_prefix.empty() && !fleet.save_calibration()) {
    std::cerr << "error: cannot write calibration stores\n";
    return 1;
  }
  const std::string metrics_path = args.get_string("--metrics-out");
  if (!metrics_path.empty() &&
      !blob::obs::write_metrics_file(metrics_path)) {
    std::cerr << "error: cannot write " << metrics_path << "\n";
    return 1;
  }
  const std::string trace_path = args.get_string("--trace-out");
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::cerr << "error: cannot write " << trace_path << "\n";
      return 1;
    }
    // One array per device, in device order.
    out << "[";
    for (std::size_t i = 0; i < fleet.device_count(); ++i) {
      if (i > 0) out << ",";
      fleet.device(i).trace().dump_json(out);
    }
    out << "]\n";
  }

  const std::string json_path = args.get_string("--json-out");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "error: cannot write " << json_path << "\n";
      return 1;
    }
    blob::util::JsonWriter json(out, /*pretty=*/true);
    json.begin_object();
    json.kv("devices", devices);
    json.key("systems").begin_array();
    for (const auto& p : profiles) json.value(p.name);
    json.end_array();
    json.kv("personality", base.personality.name);
    json.kv("residency", args.get_string("--residency"));
    json.kv("tenant", fc.tenant);
    json.kv("calls", calls);
    json.kv("clients", clients);
    json.kv("burst", burst);
    json.kv("gap_us", gap_us);
    json.kv("slo_ms", slo_ms);
    json.kv("slo_batch_ms", slo_batch_ms);
    json.kv("submitted", static_cast<std::int64_t>(stats.submitted));
    json.kv("completed", static_cast<std::int64_t>(stats.completed));
    json.kv("shed", static_cast<std::int64_t>(stats.shed));
    json.kv("checksum_mismatches",
            static_cast<std::int64_t>(mismatches.load()));
    json.kv("wall_s", wall_s);
    json.kv("busy_s", stats.busy_s);
    json.kv("makespan_s", stats.makespan_s);
    json.kv("speedup", speedup);
    json.kv("oracle_s", stats.oracle_s);
    json.kv("routed_est_s", stats.routed_est_s);
    json.kv("regret_vs_oracle", regret);
    if (verify_single) json.kv("verify_single_identical", verify_identical);
    json.key("classes").begin_array();
    for (const RequestClass cls : kRequestClasses) {
      const blob::obs::Histogram& hist =
          blob::serve::latency_histogram(cls);
      json.begin_object();
      json.kv("class", blob::serve::to_string(cls));
      json.kv("completed", static_cast<std::int64_t>(hist.count()));
      json.kv("shed", static_cast<std::int64_t>(
                          blob::serve::shed_counter(cls).value()));
      json.kv("p50_ms", blob::serve::histogram_quantile(hist, 0.50) / 1.0e6);
      json.kv("p99_ms", blob::serve::histogram_quantile(hist, 0.99) / 1.0e6);
      json.end_object();
    }
    json.end_array();
    json.key("per_device").begin_array();
    for (std::size_t i = 0; i < stats.devices.size(); ++i) {
      const blob::serve::DeviceStats& ds = stats.devices[i];
      json.begin_object();
      json.kv("device", static_cast<std::int64_t>(i));
      json.kv("system", ds.profile);
      json.kv("completed", static_cast<std::int64_t>(ds.completed));
      json.kv("shed", static_cast<std::int64_t>(ds.shed));
      json.kv("busy_s", ds.busy_s);
      json.key("stats").begin_object();
      blob::dispatch::write_stats_fields(json, ds.dispatch);
      json.end_object();
      json.end_object();
    }
    json.end_array();
    json.end_object();
    out << "\n";
    std::cout << "summary written to " << json_path << "\n";
  }

  const bool failed = mismatches.load() != 0 || !verify_identical;
  return failed ? 1 : 0;
}

// --factorize: run one blocked factorization twice — once hook-free (the
// exact direct blas:: path) and once with the dispatcher installed behind
// the seam — and require the dispatched factor, pivots, and tau scalars
// to be bitwise identical to the reference. The decision trace then shows
// the offload decisions the dispatcher took panel by panel, next to what
// constant always-CPU / always-GPU policies would have cost on the same
// op stream.
int run_factorize(blob::util::ArgParser& args,
                  const blob::dispatch::DispatcherConfig& config,
                  Dispatcher& dispatcher) {
  const std::string which = args.get_string("--factorize");
  if (which != "getrf" && which != "potrf" && which != "geqrf") {
    std::cerr << "error: --factorize must be getrf, potrf or geqrf\n";
    return 2;
  }
  const int dim = args.get_int("--factor-dim");
  const int block = args.get_int("--factor-block");
  if (dim <= 0 || block <= 0) {
    std::cerr << "error: --factor-dim and --factor-block must be positive\n";
    return 2;
  }
  const auto nn = static_cast<std::size_t>(dim);

  std::vector<double> a0(nn * nn);
  fill_deterministic(a0, 0xfac);
  if (which == "potrf") {
    // SPD prep: A = G G^T + dim * I, lower triangle factored.
    const std::vector<double> g = a0;
    blob::blas::gemm(Transpose::No, Transpose::Yes, dim, dim, dim, 1.0,
                     g.data(), dim, g.data(), dim, 0.0, a0.data(), dim);
    for (std::size_t i = 0; i < nn; ++i) {
      a0[i + i * nn] += static_cast<double>(dim);
    }
  }

  std::vector<int> ipiv_ref, ipiv_disp;
  std::vector<double> tau_ref, tau_disp;
  auto run = [&](std::vector<double>& a, std::vector<int>& ipiv,
                 std::vector<double>& tau) {
    if (which == "getrf") {
      blob::lapack::getrf(dim, a.data(), dim, ipiv, nullptr, 1, block);
    } else if (which == "potrf") {
      blob::lapack::potrf(blob::blas::UpLo::Lower, dim, a.data(), dim,
                          nullptr, 1, block);
    } else {
      blob::lapack::geqrf(dim, dim, a.data(), dim, tau, nullptr, 1, block);
    }
  };

  std::vector<double> a_ref = a0;
  run(a_ref, ipiv_ref, tau_ref);

  std::vector<double> a_disp = a0;
  dispatcher.install();
  run(a_disp, ipiv_disp, tau_disp);
  dispatcher.uninstall();

  // Factorizations carry the exact contract (pivot choices would change
  // under perturbation), so the spec is always bitwise here.
  std::size_t mismatches = 0;
  if (!verify_buffers("factor", a_ref.data(), a_disp.data(), nn * nn,
                      blob::core::CompareSpec::bitwise())) {
    ++mismatches;
  }
  if (ipiv_ref != ipiv_disp) ++mismatches;
  if (tau_ref.size() != tau_disp.size() ||
      (!tau_ref.empty() &&
       !verify_buffers("tau", tau_ref.data(), tau_disp.data(),
                       tau_ref.size(),
                       blob::core::CompareSpec::bitwise()))) {
    ++mismatches;
  }

  // Constant-policy baselines on exactly the op stream the factorization
  // generated: rebuild each record's descriptor and price both backends
  // with the same noise-free models the router consulted.
  const std::vector<blob::dispatch::TraceRecord> records =
      dispatcher.trace().snapshot();
  std::vector<Dispatcher::Costs> rec_costs(records.size());
  double always_cpu_s = 0.0;
  double always_gpu_s = 0.0;
  std::int64_t first_gpu = 0;  // 1-based; 0 = never offloaded
  std::int64_t gemm_ops = 0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const blob::dispatch::TraceRecord& r = records[i];
    const blob::core::OpDesc desc =
        r.op == blob::core::KernelOp::Gemm
            ? blob::core::OpDesc::gemm(r.precision, r.trans_a, r.trans_b,
                                       r.m, r.n, r.k, 0, 0, 0,
                                       /*alpha_one=*/true,
                                       /*beta_zero=*/true, config.mode)
            : blob::core::OpDesc::gemv(r.precision, r.trans_a, r.m, r.n, 0,
                                       1, 1, /*alpha_one=*/true,
                                       /*beta_zero=*/true, config.mode);
    rec_costs[i] = dispatcher.modelled_costs(desc);
    always_cpu_s += rec_costs[i].cpu_s;
    always_gpu_s += rec_costs[i].gpu_s;
    if (r.op == blob::core::KernelOp::Gemm) ++gemm_ops;
    if (first_gpu == 0 && r.route == blob::dispatch::Route::Gpu) {
      first_gpu = static_cast<std::int64_t>(i) + 1;
    }
  }

  const blob::dispatch::DispatchStats stats = dispatcher.stats();
  const double routed_s = stats.cpu_seconds + stats.gpu_seconds;
  std::cout << blob::util::strfmt(
      "\nfactorize: %s dim %d block %d on %s (residency %s)\n",
      which.c_str(), dim, block, config.profile.name.c_str(),
      args.get_string("--residency").c_str());
  std::cout << blob::util::strfmt(
      "  seam ops: %zu (%lld gemm, %lld gemv); first gpu op %lld%s\n",
      records.size(), static_cast<long long>(gemm_ops),
      static_cast<long long>(static_cast<std::int64_t>(records.size()) -
                             gemm_ops),
      static_cast<long long>(first_gpu), first_gpu == 0 ? " (never)" : "");
  std::cout << blob::util::strfmt("  checksum mismatches:  %zu\n",
                                  mismatches);
  std::cout << blob::util::strfmt(
      "  h2d bytes: %.3e moved, %.3e skipped (%llu hits, %llu misses, "
      "%llu invalidations, %llu swaps mirrored)\n",
      stats.h2d_bytes_moved, stats.h2d_bytes_skipped,
      static_cast<unsigned long long>(stats.residency_hits),
      static_cast<unsigned long long>(stats.residency_misses),
      static_cast<unsigned long long>(stats.residency_invalidations),
      static_cast<unsigned long long>(stats.residency_swaps_mirrored));
  std::cout << blob::util::strfmt(
      "  routed %.4es   always-cpu %.4es   always-gpu(cold) %.4es\n",
      routed_s, always_cpu_s, always_gpu_s);

  const std::string trace_path = args.get_string("--trace-out");
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::cerr << "error: cannot write " << trace_path << "\n";
      return 1;
    }
    dispatcher.trace().dump_json(out);
  }
  const std::string metrics_path = args.get_string("--metrics-out");
  if (!metrics_path.empty() &&
      !blob::obs::write_metrics_file(metrics_path)) {
    std::cerr << "error: cannot write " << metrics_path << "\n";
    return 1;
  }
  const std::string calib_path = args.get_string("--save-calib");
  if (!calib_path.empty() && !dispatcher.save_calibration(calib_path)) {
    std::cerr << "error: cannot write " << calib_path << "\n";
    return 1;
  }

  const std::string json_path = args.get_string("--json-out");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "error: cannot write " << json_path << "\n";
      return 1;
    }
    blob::util::JsonWriter json(out, /*pretty=*/true);
    json.begin_object();
    json.kv("system", config.profile.name);
    json.kv("personality", config.personality.name);
    json.kv("mode", args.get_string("--mode"));
    json.kv("residency", args.get_string("--residency"));
    json.key("factorize").begin_object();
    json.kv("name", which);
    json.kv("dim", dim);
    json.kv("block", block);
    json.kv("ops", static_cast<std::int64_t>(records.size()));
    json.kv("gemm_ops", gemm_ops);
    json.kv("gemv_ops",
            static_cast<std::int64_t>(records.size()) - gemm_ops);
    json.kv("first_gpu_op", first_gpu);
    json.kv("checksum_mismatches", static_cast<std::int64_t>(mismatches));
    json.kv("always_cpu_s", always_cpu_s);
    json.kv("always_gpu_s", always_gpu_s);
    json.kv("routed_s", routed_s);
    // Per-op curve: the routed cumulative cost next to what the constant
    // policies accrue over the same shrinking trailing-update shapes.
    double cum = 0.0, cum_cpu = 0.0, cum_gpu = 0.0;
    json.key("ops_trace").begin_array();
    for (std::size_t i = 0; i < records.size(); ++i) {
      const blob::dispatch::TraceRecord& r = records[i];
      cum += r.cost_s;
      cum_cpu += rec_costs[i].cpu_s;
      cum_gpu += rec_costs[i].gpu_s;
      json.begin_object();
      json.kv("op_index", static_cast<std::int64_t>(i) + 1);
      json.kv("op", blob::core::to_string(r.op));
      json.kv("m", r.m).kv("n", r.n).kv("k", r.k);
      json.kv("route", blob::dispatch::to_string(r.route));
      json.kv("residency", blob::dispatch::to_string(r.residency));
      json.kv("cost_s", r.cost_s);
      json.kv("cum_routed_s", cum);
      json.kv("cum_always_cpu_s", cum_cpu);
      json.kv("cum_always_gpu_s", cum_gpu);
      json.kv("h2d_moved_bytes", r.h2d_moved_bytes);
      json.kv("h2d_skipped_bytes", r.h2d_skipped_bytes);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    json.key("stats").begin_object();
    blob::dispatch::write_stats_fields(json, stats);
    json.end_object();
    json.end_object();
    out << "\n";
    std::cout << "summary written to " << json_path << "\n";
  }
  return mismatches == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // BLOB_TRACE=<path> turns on span tracing and flushes a chrome trace at
  // exit; BLOB_METRICS=<path> flushes the metrics dump (see docs/
  // observability.md). --metrics-out below does the same programmatically.
  blob::obs::init_from_env();

  blob::util::ArgParser args("blob-serve");
  args.add_string("--system", "system profile (dawn, lumi, isambard-ai, ...)",
                  "dawn");
  args.add_string("--personality",
                  "CPU library personality "
                  "(generic|nvpl|armpl|aocl|openblas|single)",
                  "generic");
  args.add_string("--mode", "transfer mode (once|always|usm)", "once");
  args.add_string("--residency",
                  "residency policy (off|track|first-touch); active "
                  "policies derive the transfer mode per call",
                  "off");
  args.add_int("--residency-horizon",
               "iterations a cold upload is amortised over", 12);
  args.add_flag("--solver",
                "iterative-solver mode: repeated-A f64 power iteration "
                "(-n = iterations) instead of the mixed replay");
  args.add_int("--solver-dim", "solver matrix dimension", 1536);
  args.add_string("--factorize",
                  "factorization mode: run this blocked solver "
                  "(getrf|potrf|geqrf) with its trailing-update traffic "
                  "routed through the dispatch seam",
                  "");
  args.add_int("--factor-dim", "factorization matrix dimension", 768);
  args.add_int("--factor-block", "factorization panel width", 64);
  args.add_int("-n", "number of calls to replay", 400);
  args.add_int("--warmup", "calls regarded as warm-up (default n/4)", -1);
  args.add_int("--threads", "CPU worker-pool cap (0 = hardware)", 0);
  args.add_int("--seed", "workload RNG seed", 42);
  args.add_double("--noise", "observation noise sigma (<0 = profile's)",
                  -1.0);
  args.add_flag("--queue", "drive the admission queue from client threads");
  args.add_int("--clients", "client threads in --queue/--devices mode", 4);
  args.add_int("--devices",
               "fleet mode: serve through this many simulated devices "
               "(0 = legacy single-device modes)",
               0);
  args.add_string("--device-systems",
                  "comma-separated system profiles cycled over the fleet "
                  "(default: --system, homogeneous)",
                  "");
  args.add_double("--slo-ms",
                  "interactive-class deadline in ms (0 = never shed)", 0.0);
  args.add_double("--slo-batch-ms",
                  "batch-class deadline in ms (<0 = 10 x --slo-ms)", -1.0);
  args.add_int("--burst", "requests per client burst in fleet mode", 16);
  args.add_int("--gap-us", "pause between client bursts (offered load)", 0);
  args.add_int("--queue-capacity",
               "per-device admission bound (backpressure; 0 = unbounded)",
               1024);
  args.add_string("--tenant", "calibration namespace for the fleet", "");
  args.add_string("--calib-prefix",
                  "per-device calibration stores "
                  "(<prefix>[.<tenant>].dev<i>.json)",
                  "");
  args.add_flag("--verify-single",
                "with --devices 1: replay through a lone dispatcher and "
                "require bit-identical decision traces");
  args.add_string("--error-budget",
                  "accuracy contract stamped on every replayed call "
                  "(exact|relaxed|ulp:N). Non-exact budgets make f64 GEMMs "
                  "eligible for the emulated fp32-slice GPU arm and switch "
                  "output verification to the tolerance the budget implies",
                  "exact");
  args.add_flag("--autotune", "autotune GEMM blocking at startup");
  args.add_string("--load-calib", "calibration store to load", "");
  args.add_string("--save-calib", "write calibration store on exit", "");
  args.add_string("--json-out", "write the summary JSON here", "");
  args.add_string("--trace-out", "dump the decision trace JSON here", "");
  args.add_string("--metrics-out", "write the obs metrics dump JSON here",
                  "");

  std::vector<std::string> positional;
  try {
    positional = args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n" << args.usage();
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.usage();
    return 0;
  }

  const auto calls = static_cast<std::size_t>(args.get_int("-n"));
  std::size_t warmup = args.get_int("--warmup") >= 0
                           ? static_cast<std::size_t>(args.get_int("--warmup"))
                           : calls / 4;
  if (warmup > calls) warmup = calls;

  blob::dispatch::DispatcherConfig config;
  blob::core::ErrorBudget budget;
  try {
    config.profile = blob::profile::by_name(args.get_string("--system"));
    config.personality = personality_by_name(args.get_string("--personality"));
    config.mode = mode_by_name(args.get_string("--mode"));
    config.residency = residency_by_name(args.get_string("--residency"));
    budget = budget_by_name(args.get_string("--error-budget"));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  // Budgets apply to the replay modes only: fleet traffic carries no
  // accuracy contract yet, and factorizations/solvers require exact
  // results (pivoting diverges under perturbation).
  if (!budget.is_exact() &&
      (args.get_int("--devices") > 0 || args.get_flag("--solver") ||
       !args.get_string("--factorize").empty())) {
    std::cerr << "error: --error-budget requires the replay modes\n";
    return 2;
  }
  const blob::core::CompareSpec verify_spec =
      blob::core::spec_for_budget(budget);
  config.residency_horizon = args.get_int("--residency-horizon");
  config.cpu_threads = static_cast<std::size_t>(args.get_int("--threads"));
  config.noise_sigma = args.get_double("--noise");
  config.autotune = args.get_flag("--autotune");
  config.calibration_path = args.get_string("--load-calib");
  config.trace_capacity = calls == 0 ? 1 : calls;
  if (!args.get_string("--factorize").empty()) {
    // A factorization emits its own op stream (panel GEMVs + trailing
    // GEMMs), not -n replay calls; keep the whole decision trace.
    config.trace_capacity = 8192;
  }

  if (args.get_int("--devices") > 0) {
    // Fleet serving is a different driver entirely (multi-producer
    // bursty traffic over N devices); the per-device profile overrides
    // config.profile inside.
    try {
      return run_fleet(args, config);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }

  Dispatcher dispatcher(config);
  if (!config.calibration_path.empty()) {
    std::cout << "calibration load: "
              << blob::dispatch::to_string(dispatcher.startup_load_status())
              << "\n";
  }

  if (!args.get_string("--factorize").empty()) {
    try {
      return run_factorize(args, config, dispatcher);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }

  if (args.get_flag("--solver")) {
    // Iterative-solver traffic: power iteration y = A x, x = y / |y|_inf
    // with one matrix reused across every iteration — the pattern
    // residency tracking exists for. A reference pass through the native
    // CPU path runs first; the sim GPU kernels preserve summation order,
    // so the dispatcher run must reproduce each iterate bitwise.
    const int dim = args.get_int("--solver-dim");
    const std::size_t iters = calls == 0 ? 1 : calls;
    const auto nn = static_cast<std::size_t>(dim);
    std::vector<double> a(nn * nn), x0(nn);
    fill_deterministic(a, 0xa0);
    fill_deterministic(x0, 0xb0);

    auto step = [&](std::vector<double>& x, std::vector<double>& y) {
      cblas_dgemv(CblasColMajor, CblasNoTrans, dim, dim, 1.0, a.data(), dim,
                  x.data(), 1, 0.0, y.data(), 1);
      double norm = 0.0;
      for (const double v : y) norm = std::max(norm, std::abs(v));
      if (norm == 0.0) norm = 1.0;
      for (std::size_t i = 0; i < nn; ++i) x[i] = y[i] / norm;
    };

    std::vector<std::vector<double>> ref(iters);
    {
      std::vector<double> x = x0, y(nn, 0.0);
      for (std::size_t it = 0; it < iters; ++it) {
        step(x, y);
        ref[it] = y;
      }
    }

    dispatcher.install();
    std::size_t mismatches = 0;
    {
      std::vector<double> x = x0, y(nn, 0.0);
      for (std::size_t it = 0; it < iters; ++it) {
        step(x, y);
        if (!verify_buffers("solver-iterate", ref[it].data(), y.data(), nn,
                            blob::core::CompareSpec::bitwise())) {
          ++mismatches;
        }
      }
    }
    dispatcher.uninstall();

    // Constant-policy baselines from the same noise-free models: the
    // cold GPU cost is what a Transfer-Always run pays every iteration.
    const blob::core::OpDesc desc = blob::core::OpDesc::gemv(
        blob::model::Precision::F64, Transpose::No, dim, dim, 0, 1, 1,
        /*alpha_one=*/true, /*beta_zero=*/true, config.mode);
    const Dispatcher::Costs costs = dispatcher.modelled_costs(desc);

    const std::vector<blob::dispatch::TraceRecord> records =
        dispatcher.trace().snapshot();
    std::int64_t first_gpu = 0;  // 1-based; 0 = never offloaded
    for (std::size_t i = 0; i < records.size(); ++i) {
      if (records[i].route == blob::dispatch::Route::Gpu) {
        first_gpu = static_cast<std::int64_t>(i) + 1;
        break;
      }
    }

    const blob::dispatch::DispatchStats stats = dispatcher.stats();
    std::cout << blob::util::strfmt(
        "\nsolver: dim %d, %zu iterations on %s (residency %s)\n", dim,
        iters, config.profile.name.c_str(),
        args.get_string("--residency").c_str());
    std::cout << blob::util::strfmt(
        "  first gpu iteration:  %lld%s\n",
        static_cast<long long>(first_gpu), first_gpu == 0 ? " (never)" : "");
    std::cout << blob::util::strfmt("  checksum mismatches:  %zu\n",
                                    mismatches);
    std::cout << blob::util::strfmt(
        "  h2d bytes: %.3e moved, %.3e skipped (%llu hits, %llu misses, "
        "%llu invalidations)\n",
        stats.h2d_bytes_moved, stats.h2d_bytes_skipped,
        static_cast<unsigned long long>(stats.residency_hits),
        static_cast<unsigned long long>(stats.residency_misses),
        static_cast<unsigned long long>(stats.residency_invalidations));
    std::cout << blob::util::strfmt(
        "  routed %.4es   always-cpu %.4es   always-gpu(cold) %.4es\n",
        stats.cpu_seconds + stats.gpu_seconds,
        costs.cpu_s * static_cast<double>(iters),
        costs.gpu_s * static_cast<double>(iters));

    const std::string solver_trace = args.get_string("--trace-out");
    if (!solver_trace.empty()) {
      std::ofstream out(solver_trace);
      if (!out) {
        std::cerr << "error: cannot write " << solver_trace << "\n";
        return 1;
      }
      dispatcher.trace().dump_json(out);
    }
    const std::string solver_metrics = args.get_string("--metrics-out");
    if (!solver_metrics.empty() &&
        !blob::obs::write_metrics_file(solver_metrics)) {
      std::cerr << "error: cannot write " << solver_metrics << "\n";
      return 1;
    }
    const std::string solver_calib = args.get_string("--save-calib");
    if (!solver_calib.empty() &&
        !dispatcher.save_calibration(solver_calib)) {
      std::cerr << "error: cannot write " << solver_calib << "\n";
      return 1;
    }

    const std::string solver_json = args.get_string("--json-out");
    if (!solver_json.empty()) {
      std::ofstream out(solver_json);
      if (!out) {
        std::cerr << "error: cannot write " << solver_json << "\n";
        return 1;
      }
      blob::util::JsonWriter json(out, /*pretty=*/true);
      json.begin_object();
      json.kv("system", config.profile.name);
      json.kv("personality", config.personality.name);
      json.kv("mode", args.get_string("--mode"));
      json.kv("residency", args.get_string("--residency"));
      json.key("solver").begin_object();
      json.kv("dim", dim);
      json.kv("iterations", iters);
      json.kv("first_gpu_iteration", first_gpu);
      json.kv("checksum_mismatches",
              static_cast<std::int64_t>(mismatches));
      json.kv("cpu_cost_per_iter_s", costs.cpu_s);
      json.kv("gpu_cold_cost_per_iter_s", costs.gpu_s);
      json.kv("routed_s", stats.cpu_seconds + stats.gpu_seconds);
      // Per-iteration curve: cumulative routed cost next to the constant
      // policies, plus what each call moved vs skipped over the link.
      double cum = 0.0;
      json.key("iterations_trace").begin_array();
      for (std::size_t i = 0; i < records.size(); ++i) {
        const blob::dispatch::TraceRecord& r = records[i];
        cum += r.cost_s;
        json.begin_object();
        json.kv("iter", static_cast<std::int64_t>(i) + 1);
        json.kv("route", blob::dispatch::to_string(r.route));
        json.kv("residency", blob::dispatch::to_string(r.residency));
        json.kv("cost_s", r.cost_s);
        json.kv("cum_routed_s", cum);
        json.kv("cum_always_cpu_s", costs.cpu_s * static_cast<double>(i + 1));
        json.kv("cum_always_gpu_s", costs.gpu_s * static_cast<double>(i + 1));
        json.kv("h2d_moved_bytes", r.h2d_moved_bytes);
        json.kv("h2d_skipped_bytes", r.h2d_skipped_bytes);
        json.end_object();
      }
      json.end_array();
      json.end_object();
      json.key("stats").begin_object();
      blob::dispatch::write_stats_fields(json, stats);
      json.end_object();
      json.end_object();
      out << "\n";
      std::cout << "summary written to " << solver_json << "\n";
    }
    return mismatches == 0 ? 0 : 1;
  }

  // Operand arenas per shape class, plus native-path checksum references
  // (computed before the dispatcher hook is installed, so plain cblas is
  // the ground truth every later route must reproduce bitwise).
  std::vector<ClassBuffers> buffers = make_arenas();
  std::vector<ClassBuffers> refs = buffers;
  for (std::size_t ci = 0; ci < kNumClasses; ++ci) {
    issue_class(kClasses[ci], refs[ci]);
  }

  // Per-class modelled costs drive the oracle / constant baselines.
  Baselines total, steady;
  std::vector<Dispatcher::Costs> class_costs(kNumClasses);
  for (std::size_t ci = 0; ci < kNumClasses; ++ci) {
    const ShapeClass& sc = kClasses[ci];
    blob::core::OpDesc desc =
        sc.op == blob::core::KernelOp::Gemm
            ? blob::core::OpDesc::gemm(sc.precision, sc.ta, sc.tb, sc.m,
                                       sc.n, sc.k, 0, 0, 0,
                                       /*alpha_one=*/true, /*beta_zero=*/true,
                                       config.mode)
            : blob::core::OpDesc::gemv(sc.precision, sc.ta, sc.m, sc.n, 0, 1,
                                       1, /*alpha_one=*/true,
                                       /*beta_zero=*/true, config.mode);
    desc.budget = budget;
    class_costs[ci] = dispatcher.modelled_costs(desc);
    const Dispatcher::Costs& cc = class_costs[ci];
    const char* best_arm =
        (cc.emu_s < cc.cpu_s && cc.emu_s < cc.gpu_s) ? "emu"
        : cc.gpu_s < cc.cpu_s                        ? "gpu"
                                                     : "cpu";
    if (std::isfinite(cc.emu_s)) {
      std::cout << blob::util::strfmt(
          "  class %-18s cpu %.3es  gpu %.3es  emu %.3es  oracle=%s\n",
          sc.label, cc.cpu_s, cc.gpu_s, cc.emu_s, best_arm);
    } else {
      std::cout << blob::util::strfmt(
          "  class %-18s cpu %.3es  gpu %.3es  oracle=%s\n", sc.label,
          cc.cpu_s, cc.gpu_s, best_arm);
    }
  }

  // Sample the workload sequence (deterministic in --seed).
  std::vector<std::size_t> all_classes(kNumClasses);
  for (std::size_t ci = 0; ci < kNumClasses; ++ci) all_classes[ci] = ci;
  const std::vector<std::size_t> sequence = sample_sequence(
      calls, static_cast<std::uint64_t>(args.get_int("--seed")),
      all_classes);

  // Replay. Baselines accumulate alongside; a stats snapshot at the
  // warm-up boundary splits routed cost into warm-up and steady phases.
  dispatcher.install();
  blob::dispatch::DispatchStats warm_stats;
  const bool use_queue = args.get_flag("--queue");

  // Final-state checksum validation: every class buffer a run touched
  // must end bitwise-equal to the native-path reference (beta = 0, so
  // repeated calls are idempotent). A nonzero count fails the process.
  std::uint64_t checksum_mismatches = 0;

  if (!use_queue) {
    // The budget is a thread-local cblas contract: scope it to the replay
    // so the reference passes above stayed exact.
    const blob::blas::ScopedErrorBudget scoped(budget);
    std::vector<char> issued(kNumClasses, 0);
    for (std::size_t i = 0; i < calls; ++i) {
      if (i == warmup) warm_stats = dispatcher.stats();
      issue_class(kClasses[sequence[i]], buffers[sequence[i]]);
      issued[sequence[i]] = 1;
    }
    for (std::size_t ci = 0; ci < kNumClasses; ++ci) {
      if (issued[ci] &&
          !class_matches(buffers[ci], refs[ci], kClasses[ci], verify_spec)) {
        ++checksum_mismatches;
      }
    }
  } else {
    // Queue mode: several client threads submit slices of the sequence.
    // Classes write into disjoint per-client output arenas so concurrent
    // same-class requests do not alias.
    blob::dispatch::AdmissionQueue queue(dispatcher);
    const auto clients =
        static_cast<std::size_t>(std::max<std::int64_t>(
            args.get_int("--clients"), 1));
    std::vector<std::vector<ClassBuffers>> client_buffers(clients, buffers);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t t = 0; t < clients; ++t) {
      threads.emplace_back([&, t] {
        // Each producer declares the budget on its own thread — submit_*
        // capture it per request, so it survives the hop to the worker.
        const blob::blas::ScopedErrorBudget scoped(budget);
        std::vector<std::future<void>> pending;
        for (std::size_t i = t; i < calls; i += clients) {
          const std::size_t ci = sequence[i];
          const ShapeClass& sc = kClasses[ci];
          ClassBuffers& buf = client_buffers[t][ci];
          if (sc.op == blob::core::KernelOp::Gemm) {
            const int lda = sc.ta == kN ? sc.m : sc.k;
            const int ldb = sc.tb == kN ? sc.k : sc.n;
            if (sc.precision == blob::model::Precision::F16) {
              // The queue carries f32/f64; half traffic reaches the
              // dispatcher through the cblas seam (thread-safe hook).
              cblas_hgemm(CblasColMajor, to_cblas(sc.ta), to_cblas(sc.tb),
                          sc.m, sc.n, sc.k, 1.0F, buf.ah.data(), lda,
                          buf.bh.data(), ldb, 0.0F, buf.ch.data(), sc.m);
            } else if (sc.precision == blob::model::Precision::F32) {
              pending.push_back(queue.submit_gemm<float>(
                  sc.ta, sc.tb, sc.m, sc.n, sc.k, 1.0F, buf.af.data(), lda,
                  buf.bf.data(), ldb, 0.0F, buf.cf.data(), sc.m));
            } else {
              pending.push_back(queue.submit_gemm<double>(
                  sc.ta, sc.tb, sc.m, sc.n, sc.k, 1.0, buf.ad.data(), lda,
                  buf.bd.data(), ldb, 0.0, buf.cd.data(), sc.m));
            }
          } else {
            if (sc.precision == blob::model::Precision::F32) {
              pending.push_back(queue.submit_gemv<float>(
                  sc.ta, sc.m, sc.n, 1.0F, buf.af.data(), sc.m,
                  buf.bf.data(), 1, 0.0F, buf.cf.data(), 1));
            } else {
              pending.push_back(queue.submit_gemv<double>(
                  sc.ta, sc.m, sc.n, 1.0, buf.ad.data(), sc.m,
                  buf.bd.data(), 1, 0.0, buf.cd.data(), 1));
            }
          }
        }
        for (auto& f : pending) f.get();
      });
    }
    for (auto& t : threads) t.join();
    queue.flush();
    for (std::size_t t = 0; t < clients; ++t) {
      std::vector<char> issued(kNumClasses, 0);
      for (std::size_t i = t; i < calls; i += clients) {
        issued[sequence[i]] = 1;
      }
      for (std::size_t ci = 0; ci < kNumClasses; ++ci) {
        if (issued[ci] && !class_matches(client_buffers[t][ci], refs[ci],
                                         kClasses[ci], verify_spec)) {
          ++checksum_mismatches;
        }
      }
    }
    warm_stats = blob::dispatch::DispatchStats{};  // no phase split here
    warmup = 0;
  }
  dispatcher.uninstall();

  for (std::size_t i = 0; i < calls; ++i) {
    const Dispatcher::Costs& costs = class_costs[sequence[i]];
    // Three-arm oracle: emu_s is +inf unless the budget admitted the
    // emulated arm, so exact-budget runs reduce to the two-arm oracle.
    const double best =
        std::min({costs.cpu_s, costs.gpu_s, costs.emu_s});
    total.oracle_s += best;
    total.always_cpu_s += costs.cpu_s;
    total.always_gpu_s += costs.gpu_s;
    if (i >= warmup) {
      steady.oracle_s += best;
      steady.always_cpu_s += costs.cpu_s;
      steady.always_gpu_s += costs.gpu_s;
    }
  }

  const blob::dispatch::DispatchStats stats = dispatcher.stats();
  const double routed_total = stats.cpu_seconds + stats.gpu_seconds;
  const double routed_steady =
      routed_total - (warm_stats.cpu_seconds + warm_stats.gpu_seconds);

  std::cout << blob::util::strfmt(
      "\nreplayed %zu calls on %s/%s (mode %s, budget %s%s)\n", calls,
      config.profile.name.c_str(), config.personality.name.c_str(),
      args.get_string("--mode").c_str(),
      args.get_string("--error-budget").c_str(),
      use_queue ? ", queued" : "");
  std::cout << blob::util::strfmt(
      "  routed      %.4es   (cpu %llu, gpu %llu, emulated %llu, "
      "batched %llu)\n",
      routed_total, static_cast<unsigned long long>(stats.cpu_routed),
      static_cast<unsigned long long>(stats.gpu_routed),
      static_cast<unsigned long long>(stats.emulated_routed),
      static_cast<unsigned long long>(stats.batched_routed));
  std::cout << blob::util::strfmt("  oracle      %.4es\n", total.oracle_s);
  std::cout << blob::util::strfmt("  always-cpu  %.4es\n",
                                  total.always_cpu_s);
  std::cout << blob::util::strfmt("  always-gpu  %.4es\n",
                                  total.always_gpu_s);
  if (total.oracle_s > 0.0) {
    std::cout << blob::util::strfmt(
        "  regret vs oracle: %+.2f%%  (steady-state: %+.2f%%)\n",
        100.0 * (routed_total / total.oracle_s - 1.0),
        steady.oracle_s > 0.0
            ? 100.0 * (routed_steady / steady.oracle_s - 1.0)
            : 0.0);
  }
  std::cout << blob::util::strfmt(
      "  decisions: %llu cold, %llu explore, %llu exploit, %llu hold, "
      "%llu forced, %llu switches\n",
      static_cast<unsigned long long>(stats.cold_starts),
      static_cast<unsigned long long>(stats.explores),
      static_cast<unsigned long long>(stats.exploits),
      static_cast<unsigned long long>(stats.hysteresis_holds),
      static_cast<unsigned long long>(stats.forced_cpu),
      static_cast<unsigned long long>(stats.route_switches));
  std::cout << blob::util::strfmt(
      "  residency: %llu hits, %llu misses, %llu invalidations "
      "(h2d %.3e moved, %.3e skipped)\n",
      static_cast<unsigned long long>(stats.residency_hits),
      static_cast<unsigned long long>(stats.residency_misses),
      static_cast<unsigned long long>(stats.residency_invalidations),
      stats.h2d_bytes_moved, stats.h2d_bytes_skipped);

  // Transposed shapes are first-class on the GPU path: none of them may
  // fall back with Reason::Forced (that reason survives only for strided
  // GEMV vectors, which this mix never issues).
  std::uint64_t transposed_calls = 0;
  std::uint64_t transposed_forced = 0;
  for (const blob::dispatch::TraceRecord& r : dispatcher.trace().snapshot()) {
    if (r.trans_a == Transpose::Yes || r.trans_b == Transpose::Yes) {
      ++transposed_calls;
      if (r.reason == blob::dispatch::Reason::Forced) ++transposed_forced;
    }
  }
  std::cout << blob::util::strfmt(
      "  transposed: %llu calls, %llu forced (expect 0)\n",
      static_cast<unsigned long long>(transposed_calls),
      static_cast<unsigned long long>(transposed_forced));
  std::cout << blob::util::strfmt(
      "  checksum mismatches: %llu (expect 0)\n",
      static_cast<unsigned long long>(checksum_mismatches));

  const std::string save_path = args.get_string("--save-calib");
  if (!save_path.empty()) {
    if (dispatcher.save_calibration(save_path)) {
      std::cout << "calibration saved to " << save_path << "\n";
    } else {
      std::cerr << "error: cannot write " << save_path << "\n";
      return 1;
    }
  }

  const std::string trace_path = args.get_string("--trace-out");
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::cerr << "error: cannot write " << trace_path << "\n";
      return 1;
    }
    dispatcher.trace().dump_json(out);
  }

  const std::string metrics_path = args.get_string("--metrics-out");
  if (!metrics_path.empty()) {
    if (!blob::obs::write_metrics_file(metrics_path)) {
      std::cerr << "error: cannot write " << metrics_path << "\n";
      return 1;
    }
  }

  const std::string json_path = args.get_string("--json-out");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "error: cannot write " << json_path << "\n";
      return 1;
    }
    blob::util::JsonWriter json(out, /*pretty=*/true);
    json.begin_object();
    json.kv("system", config.profile.name);
    json.kv("personality", config.personality.name);
    json.kv("mode", args.get_string("--mode"));
    json.kv("residency", args.get_string("--residency"));
    json.kv("error_budget", args.get_string("--error-budget"));
    json.kv("verify_mode", blob::core::to_string(verify_spec.mode));
    json.kv("queued", use_queue);
    json.kv("calls", calls);
    json.kv("warmup_calls", warmup);
    json.kv("routed_s", routed_total);
    json.kv("routed_steady_s", routed_steady);
    json.kv("oracle_s", total.oracle_s);
    json.kv("oracle_steady_s", steady.oracle_s);
    json.kv("always_cpu_s", total.always_cpu_s);
    json.kv("always_gpu_s", total.always_gpu_s);
    json.kv("transposed_calls", static_cast<std::int64_t>(transposed_calls));
    json.kv("transposed_forced",
            static_cast<std::int64_t>(transposed_forced));
    json.kv("checksum_mismatches",
            static_cast<std::int64_t>(checksum_mismatches));
    if (total.oracle_s > 0.0) {
      json.kv("regret_vs_oracle", routed_total / total.oracle_s - 1.0);
    }
    if (steady.oracle_s > 0.0) {
      json.kv("steady_regret_vs_oracle",
              routed_steady / steady.oracle_s - 1.0);
    }
    json.key("stats").begin_object();
    blob::dispatch::write_stats_fields(json, stats);
    json.end_object();
    json.end_object();
    out << "\n";
    std::cout << "summary written to " << json_path << "\n";
  }
  // Checksum failures fail the process: CI smokes gate on correctness,
  // not just on the counters being printed.
  return checksum_mismatches == 0 ? 0 : 1;
}
