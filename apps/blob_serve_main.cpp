// blob-serve: replay a mixed BLAS traffic trace through the online
// offload dispatcher and report routed-vs-oracle regret.
//
// The driver generates a deterministic stream of GEMM/GEMV calls drawn
// from a weighted mix of shape classes (small CPU-favoured GEMMs, shapes
// near the offload crossover, large GPU-favoured GEMMs, memory-bound
// GEMVs), installs the dispatcher behind the cblas entry points (or, with
// --queue, drives the admission queue from several client threads), and
// compares the dispatcher's cumulative modelled latency against three
// baselines computed from the same noise-free cost models:
//   * oracle      — per-call cheaper backend (the offline threshold
//                   applied with perfect knowledge, paper §III-D),
//   * always-cpu  — never offload,
//   * always-gpu  — always offload.
// A converged dispatcher should land within a few percent of the oracle
// and strictly beat both constant policies on a mixed workload.
//
// --save-calib / --load-calib round-trip the decision table so a second
// run starts warm (cold_starts == 0, explores == 0 in the stats).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "blas/cblas.hpp"
#include "dispatch/admission_queue.hpp"
#include "dispatch/dispatcher.hpp"
#include "obs/obs.hpp"
#include "sysprofile/profile.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/strfmt.hpp"

namespace {

using blob::blas::Transpose;
using blob::dispatch::Dispatcher;

struct ShapeClass {
  const char* label;
  blob::core::KernelOp op;
  blob::model::Precision precision;
  Transpose ta, tb;
  int m, n, k;
  double weight;
};

constexpr Transpose kN = Transpose::No;
constexpr Transpose kT = Transpose::Yes;

// The default mix spans both sides of every profile's offload threshold:
// tiny GEMMs no link crossing can amortise, mid sizes near the crossover,
// large squares the GPU wins outright, bandwidth-bound GEMVs — plus
// transposed and half-precision rows, which ride the same OpDesc path
// end-to-end (no Forced fallbacks for a transpose).
const ShapeClass kClasses[] = {
    {"gemm-small-f32", blob::core::KernelOp::Gemm,
     blob::model::Precision::F32, kN, kN, 48, 48, 48, 0.24},
    {"gemm-mid-f32", blob::core::KernelOp::Gemm, blob::model::Precision::F32,
     kN, kN, 256, 256, 256, 0.12},
    {"gemm-mid-f32-tn", blob::core::KernelOp::Gemm,
     blob::model::Precision::F32, kT, kN, 256, 256, 256, 0.08},
    {"gemm-large-f32", blob::core::KernelOp::Gemm,
     blob::model::Precision::F32, kN, kN, 768, 768, 768, 0.12},
    {"gemm-large-f32-nt", blob::core::KernelOp::Gemm,
     blob::model::Precision::F32, kN, kT, 640, 640, 640, 0.06},
    {"gemm-mid-f64", blob::core::KernelOp::Gemm, blob::model::Precision::F64,
     kN, kN, 320, 320, 320, 0.08},
    {"gemm-large-f64", blob::core::KernelOp::Gemm,
     blob::model::Precision::F64, kN, kN, 640, 640, 640, 0.08},
    {"gemm-mid-f16", blob::core::KernelOp::Gemm, blob::model::Precision::F16,
     kN, kN, 384, 384, 384, 0.07},
    {"gemv-mid-f32", blob::core::KernelOp::Gemv, blob::model::Precision::F32,
     kN, kN, 768, 768, 1, 0.07},
    {"gemv-mid-f32-t", blob::core::KernelOp::Gemv,
     blob::model::Precision::F32, kT, kN, 768, 768, 1, 0.04},
    {"gemv-large-f64", blob::core::KernelOp::Gemv,
     blob::model::Precision::F64, kN, kN, 1536, 1536, 1, 0.04},
};

/// Pre-generated operand buffers for one shape class (reused across
/// calls, like a server reusing request arenas).
struct ClassBuffers {
  std::vector<float> af, bf, cf;
  std::vector<double> ad, bd, cd;
  std::vector<blob::blas::f16> ah, bh, ch;
};

void fill_deterministic(std::vector<float>& v, std::uint64_t salt) {
  blob::util::Xoshiro256 rng(0xf111 + salt);
  for (auto& x : v) x = static_cast<float>(rng.next_double() - 0.5);
}

void fill_deterministic(std::vector<double>& v, std::uint64_t salt) {
  blob::util::Xoshiro256 rng(0xf111 + salt);
  for (auto& x : v) x = rng.next_double() - 0.5;
}

void fill_deterministic(std::vector<blob::blas::f16>& v,
                        std::uint64_t salt) {
  blob::util::Xoshiro256 rng(0xf111 + salt);
  for (auto& x : v) {
    x = blob::blas::f16(static_cast<float>(rng.next_double() - 0.5));
  }
}

CBLAS_TRANSPOSE to_cblas(Transpose t) {
  return t == Transpose::Yes ? CblasTrans : CblasNoTrans;
}

blob::blas::CpuLibraryPersonality personality_by_name(
    const std::string& name) {
  if (name == "generic") return blob::blas::generic_personality();
  if (name == "nvpl") return blob::blas::nvpl_like_personality();
  if (name == "armpl") return blob::blas::armpl_like_personality();
  if (name == "aocl") return blob::blas::aocl_like_personality();
  if (name == "openblas") return blob::blas::openblas_like_personality();
  if (name == "single") return blob::blas::single_thread_personality();
  throw std::invalid_argument("unknown personality: " + name);
}

blob::core::TransferMode mode_by_name(const std::string& name) {
  if (name == "once") return blob::core::TransferMode::Once;
  if (name == "always") return blob::core::TransferMode::Always;
  if (name == "usm") return blob::core::TransferMode::Usm;
  throw std::invalid_argument("unknown transfer mode: " + name);
}

blob::dispatch::ResidencyPolicy residency_by_name(const std::string& name) {
  if (name == "off") return blob::dispatch::ResidencyPolicy::Off;
  if (name == "track") return blob::dispatch::ResidencyPolicy::Track;
  if (name == "first-touch") {
    return blob::dispatch::ResidencyPolicy::FirstTouch;
  }
  throw std::invalid_argument("unknown residency policy: " + name);
}

struct Baselines {
  double oracle_s = 0.0;
  double always_cpu_s = 0.0;
  double always_gpu_s = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  // BLOB_TRACE=<path> turns on span tracing and flushes a chrome trace at
  // exit; BLOB_METRICS=<path> flushes the metrics dump (see docs/
  // observability.md). --metrics-out below does the same programmatically.
  blob::obs::init_from_env();

  blob::util::ArgParser args("blob-serve");
  args.add_string("--system", "system profile (dawn, lumi, isambard-ai, ...)",
                  "dawn");
  args.add_string("--personality",
                  "CPU library personality "
                  "(generic|nvpl|armpl|aocl|openblas|single)",
                  "generic");
  args.add_string("--mode", "transfer mode (once|always|usm)", "once");
  args.add_string("--residency",
                  "residency policy (off|track|first-touch); active "
                  "policies derive the transfer mode per call",
                  "off");
  args.add_int("--residency-horizon",
               "iterations a cold upload is amortised over", 12);
  args.add_flag("--solver",
                "iterative-solver mode: repeated-A f64 power iteration "
                "(-n = iterations) instead of the mixed replay");
  args.add_int("--solver-dim", "solver matrix dimension", 1536);
  args.add_int("-n", "number of calls to replay", 400);
  args.add_int("--warmup", "calls regarded as warm-up (default n/4)", -1);
  args.add_int("--threads", "CPU worker-pool cap (0 = hardware)", 0);
  args.add_int("--seed", "workload RNG seed", 42);
  args.add_double("--noise", "observation noise sigma (<0 = profile's)",
                  -1.0);
  args.add_flag("--queue", "drive the admission queue from client threads");
  args.add_int("--clients", "client threads in --queue mode", 4);
  args.add_flag("--autotune", "autotune GEMM blocking at startup");
  args.add_string("--load-calib", "calibration store to load", "");
  args.add_string("--save-calib", "write calibration store on exit", "");
  args.add_string("--json-out", "write the summary JSON here", "");
  args.add_string("--trace-out", "dump the decision trace JSON here", "");
  args.add_string("--metrics-out", "write the obs metrics dump JSON here",
                  "");

  std::vector<std::string> positional;
  try {
    positional = args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n" << args.usage();
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.usage();
    return 0;
  }

  const auto calls = static_cast<std::size_t>(args.get_int("-n"));
  std::size_t warmup = args.get_int("--warmup") >= 0
                           ? static_cast<std::size_t>(args.get_int("--warmup"))
                           : calls / 4;
  if (warmup > calls) warmup = calls;

  blob::dispatch::DispatcherConfig config;
  try {
    config.profile = blob::profile::by_name(args.get_string("--system"));
    config.personality = personality_by_name(args.get_string("--personality"));
    config.mode = mode_by_name(args.get_string("--mode"));
    config.residency = residency_by_name(args.get_string("--residency"));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  config.residency_horizon = args.get_int("--residency-horizon");
  config.cpu_threads = static_cast<std::size_t>(args.get_int("--threads"));
  config.noise_sigma = args.get_double("--noise");
  config.autotune = args.get_flag("--autotune");
  config.calibration_path = args.get_string("--load-calib");
  config.trace_capacity = calls == 0 ? 1 : calls;

  Dispatcher dispatcher(config);
  if (!config.calibration_path.empty()) {
    std::cout << "calibration load: "
              << blob::dispatch::to_string(dispatcher.startup_load_status())
              << "\n";
  }

  if (args.get_flag("--solver")) {
    // Iterative-solver traffic: power iteration y = A x, x = y / |y|_inf
    // with one matrix reused across every iteration — the pattern
    // residency tracking exists for. A reference pass through the native
    // CPU path runs first; the sim GPU kernels preserve summation order,
    // so the dispatcher run must reproduce each iterate bitwise.
    const int dim = args.get_int("--solver-dim");
    const std::size_t iters = calls == 0 ? 1 : calls;
    const auto nn = static_cast<std::size_t>(dim);
    std::vector<double> a(nn * nn), x0(nn);
    fill_deterministic(a, 0xa0);
    fill_deterministic(x0, 0xb0);

    auto step = [&](std::vector<double>& x, std::vector<double>& y) {
      cblas_dgemv(CblasColMajor, CblasNoTrans, dim, dim, 1.0, a.data(), dim,
                  x.data(), 1, 0.0, y.data(), 1);
      double norm = 0.0;
      for (const double v : y) norm = std::max(norm, std::abs(v));
      if (norm == 0.0) norm = 1.0;
      for (std::size_t i = 0; i < nn; ++i) x[i] = y[i] / norm;
    };

    std::vector<std::vector<double>> ref(iters);
    {
      std::vector<double> x = x0, y(nn, 0.0);
      for (std::size_t it = 0; it < iters; ++it) {
        step(x, y);
        ref[it] = y;
      }
    }

    dispatcher.install();
    std::size_t mismatches = 0;
    {
      std::vector<double> x = x0, y(nn, 0.0);
      for (std::size_t it = 0; it < iters; ++it) {
        step(x, y);
        if (std::memcmp(y.data(), ref[it].data(), nn * sizeof(double)) !=
            0) {
          ++mismatches;
        }
      }
    }
    dispatcher.uninstall();

    // Constant-policy baselines from the same noise-free models: the
    // cold GPU cost is what a Transfer-Always run pays every iteration.
    const blob::core::OpDesc desc = blob::core::OpDesc::gemv(
        blob::model::Precision::F64, Transpose::No, dim, dim, 0, 1, 1,
        /*alpha_one=*/true, /*beta_zero=*/true, config.mode);
    const Dispatcher::Costs costs = dispatcher.modelled_costs(desc);

    const std::vector<blob::dispatch::TraceRecord> records =
        dispatcher.trace().snapshot();
    std::int64_t first_gpu = 0;  // 1-based; 0 = never offloaded
    for (std::size_t i = 0; i < records.size(); ++i) {
      if (records[i].route == blob::dispatch::Route::Gpu) {
        first_gpu = static_cast<std::int64_t>(i) + 1;
        break;
      }
    }

    const blob::dispatch::DispatchStats stats = dispatcher.stats();
    std::cout << blob::util::strfmt(
        "\nsolver: dim %d, %zu iterations on %s (residency %s)\n", dim,
        iters, config.profile.name.c_str(),
        args.get_string("--residency").c_str());
    std::cout << blob::util::strfmt(
        "  first gpu iteration:  %lld%s\n",
        static_cast<long long>(first_gpu), first_gpu == 0 ? " (never)" : "");
    std::cout << blob::util::strfmt("  checksum mismatches:  %zu\n",
                                    mismatches);
    std::cout << blob::util::strfmt(
        "  h2d bytes: %.3e moved, %.3e skipped (%llu hits, %llu misses, "
        "%llu invalidations)\n",
        stats.h2d_bytes_moved, stats.h2d_bytes_skipped,
        static_cast<unsigned long long>(stats.residency_hits),
        static_cast<unsigned long long>(stats.residency_misses),
        static_cast<unsigned long long>(stats.residency_invalidations));
    std::cout << blob::util::strfmt(
        "  routed %.4es   always-cpu %.4es   always-gpu(cold) %.4es\n",
        stats.cpu_seconds + stats.gpu_seconds,
        costs.cpu_s * static_cast<double>(iters),
        costs.gpu_s * static_cast<double>(iters));

    const std::string solver_trace = args.get_string("--trace-out");
    if (!solver_trace.empty()) {
      std::ofstream out(solver_trace);
      if (!out) {
        std::cerr << "error: cannot write " << solver_trace << "\n";
        return 1;
      }
      dispatcher.trace().dump_json(out);
    }
    const std::string solver_metrics = args.get_string("--metrics-out");
    if (!solver_metrics.empty() &&
        !blob::obs::write_metrics_file(solver_metrics)) {
      std::cerr << "error: cannot write " << solver_metrics << "\n";
      return 1;
    }
    const std::string solver_calib = args.get_string("--save-calib");
    if (!solver_calib.empty() &&
        !dispatcher.save_calibration(solver_calib)) {
      std::cerr << "error: cannot write " << solver_calib << "\n";
      return 1;
    }

    const std::string solver_json = args.get_string("--json-out");
    if (!solver_json.empty()) {
      std::ofstream out(solver_json);
      if (!out) {
        std::cerr << "error: cannot write " << solver_json << "\n";
        return 1;
      }
      blob::util::JsonWriter json(out, /*pretty=*/true);
      json.begin_object();
      json.kv("system", config.profile.name);
      json.kv("personality", config.personality.name);
      json.kv("mode", args.get_string("--mode"));
      json.kv("residency", args.get_string("--residency"));
      json.key("solver").begin_object();
      json.kv("dim", dim);
      json.kv("iterations", iters);
      json.kv("first_gpu_iteration", first_gpu);
      json.kv("checksum_mismatches",
              static_cast<std::int64_t>(mismatches));
      json.kv("cpu_cost_per_iter_s", costs.cpu_s);
      json.kv("gpu_cold_cost_per_iter_s", costs.gpu_s);
      json.kv("routed_s", stats.cpu_seconds + stats.gpu_seconds);
      // Per-iteration curve: cumulative routed cost next to the constant
      // policies, plus what each call moved vs skipped over the link.
      double cum = 0.0;
      json.key("iterations_trace").begin_array();
      for (std::size_t i = 0; i < records.size(); ++i) {
        const blob::dispatch::TraceRecord& r = records[i];
        cum += r.cost_s;
        json.begin_object();
        json.kv("iter", static_cast<std::int64_t>(i) + 1);
        json.kv("route", blob::dispatch::to_string(r.route));
        json.kv("residency", blob::dispatch::to_string(r.residency));
        json.kv("cost_s", r.cost_s);
        json.kv("cum_routed_s", cum);
        json.kv("cum_always_cpu_s", costs.cpu_s * static_cast<double>(i + 1));
        json.kv("cum_always_gpu_s", costs.gpu_s * static_cast<double>(i + 1));
        json.kv("h2d_moved_bytes", r.h2d_moved_bytes);
        json.kv("h2d_skipped_bytes", r.h2d_skipped_bytes);
        json.end_object();
      }
      json.end_array();
      json.end_object();
      json.key("stats").begin_object();
      blob::dispatch::write_stats_fields(json, stats);
      json.end_object();
      json.end_object();
      out << "\n";
      std::cout << "summary written to " << solver_json << "\n";
    }
    return mismatches == 0 ? 0 : 1;
  }

  // Operand arenas per shape class.
  constexpr std::size_t kNumClasses = std::size(kClasses);
  std::vector<ClassBuffers> buffers(kNumClasses);
  for (std::size_t ci = 0; ci < kNumClasses; ++ci) {
    const ShapeClass& sc = kClasses[ci];
    // Element counts are invariant under transposition (a k x m stored A
    // holds as many values as an m x k one); GEMV vector lengths swap.
    const std::size_t am = static_cast<std::size_t>(sc.m) *
                           (sc.op == blob::core::KernelOp::Gemm
                                ? static_cast<std::size_t>(sc.k)
                                : static_cast<std::size_t>(sc.n));
    const std::size_t bm =
        sc.op == blob::core::KernelOp::Gemm
            ? static_cast<std::size_t>(sc.k) * static_cast<std::size_t>(sc.n)
            : static_cast<std::size_t>(sc.ta == kN ? sc.n : sc.m);
    const std::size_t cm =
        sc.op == blob::core::KernelOp::Gemm
            ? static_cast<std::size_t>(sc.m) * static_cast<std::size_t>(sc.n)
            : static_cast<std::size_t>(sc.ta == kN ? sc.m : sc.n);
    if (sc.precision == blob::model::Precision::F16) {
      buffers[ci].ah.resize(am);
      buffers[ci].bh.resize(bm);
      buffers[ci].ch.resize(cm);
      fill_deterministic(buffers[ci].ah, ci * 3 + 0);
      fill_deterministic(buffers[ci].bh, ci * 3 + 1);
      fill_deterministic(buffers[ci].ch, ci * 3 + 2);
    } else if (sc.precision == blob::model::Precision::F32) {
      buffers[ci].af.resize(am);
      buffers[ci].bf.resize(bm);
      buffers[ci].cf.resize(cm);
      fill_deterministic(buffers[ci].af, ci * 3 + 0);
      fill_deterministic(buffers[ci].bf, ci * 3 + 1);
      fill_deterministic(buffers[ci].cf, ci * 3 + 2);
    } else {
      buffers[ci].ad.resize(am);
      buffers[ci].bd.resize(bm);
      buffers[ci].cd.resize(cm);
      fill_deterministic(buffers[ci].ad, ci * 3 + 0);
      fill_deterministic(buffers[ci].bd, ci * 3 + 1);
      fill_deterministic(buffers[ci].cd, ci * 3 + 2);
    }
  }

  // Per-class modelled costs drive the oracle / constant baselines.
  Baselines total, steady;
  std::vector<Dispatcher::Costs> class_costs(kNumClasses);
  for (std::size_t ci = 0; ci < kNumClasses; ++ci) {
    const ShapeClass& sc = kClasses[ci];
    const blob::core::OpDesc desc =
        sc.op == blob::core::KernelOp::Gemm
            ? blob::core::OpDesc::gemm(sc.precision, sc.ta, sc.tb, sc.m,
                                       sc.n, sc.k, 0, 0, 0,
                                       /*alpha_one=*/true, /*beta_zero=*/true,
                                       config.mode)
            : blob::core::OpDesc::gemv(sc.precision, sc.ta, sc.m, sc.n, 0, 1,
                                       1, /*alpha_one=*/true,
                                       /*beta_zero=*/true, config.mode);
    class_costs[ci] = dispatcher.modelled_costs(desc);
    std::cout << blob::util::strfmt(
        "  class %-18s cpu %.3es  gpu %.3es  oracle=%s\n", sc.label,
        class_costs[ci].cpu_s, class_costs[ci].gpu_s,
        class_costs[ci].gpu_s < class_costs[ci].cpu_s ? "gpu" : "cpu");
  }

  // Sample the workload sequence (deterministic in --seed).
  blob::util::Xoshiro256 rng(
      static_cast<std::uint64_t>(args.get_int("--seed")));
  double weight_sum = 0.0;
  for (const ShapeClass& sc : kClasses) weight_sum += sc.weight;
  std::vector<std::size_t> sequence(calls);
  for (std::size_t i = 0; i < calls; ++i) {
    double draw = rng.next_double() * weight_sum;
    std::size_t pick = 0;
    for (std::size_t ci = 0; ci < kNumClasses; ++ci) {
      draw -= kClasses[ci].weight;
      if (draw <= 0.0) {
        pick = ci;
        break;
      }
    }
    sequence[i] = pick;
  }

  // Replay. Baselines accumulate alongside; a stats snapshot at the
  // warm-up boundary splits routed cost into warm-up and steady phases.
  dispatcher.install();
  blob::dispatch::DispatchStats warm_stats;
  const bool use_queue = args.get_flag("--queue");

  auto issue_direct = [&](std::size_t ci) {
    const ShapeClass& sc = kClasses[ci];
    ClassBuffers& buf = buffers[ci];
    if (sc.op == blob::core::KernelOp::Gemm) {
      const int lda = sc.ta == kN ? sc.m : sc.k;
      const int ldb = sc.tb == kN ? sc.k : sc.n;
      if (sc.precision == blob::model::Precision::F16) {
        cblas_hgemm(CblasColMajor, to_cblas(sc.ta), to_cblas(sc.tb), sc.m,
                    sc.n, sc.k, 1.0F, buf.ah.data(), lda, buf.bh.data(), ldb,
                    0.0F, buf.ch.data(), sc.m);
      } else if (sc.precision == blob::model::Precision::F32) {
        cblas_sgemm(CblasColMajor, to_cblas(sc.ta), to_cblas(sc.tb), sc.m,
                    sc.n, sc.k, 1.0F, buf.af.data(), lda, buf.bf.data(), ldb,
                    0.0F, buf.cf.data(), sc.m);
      } else {
        cblas_dgemm(CblasColMajor, to_cblas(sc.ta), to_cblas(sc.tb), sc.m,
                    sc.n, sc.k, 1.0, buf.ad.data(), lda, buf.bd.data(), ldb,
                    0.0, buf.cd.data(), sc.m);
      }
    } else {
      if (sc.precision == blob::model::Precision::F32) {
        cblas_sgemv(CblasColMajor, to_cblas(sc.ta), sc.m, sc.n, 1.0F,
                    buf.af.data(), sc.m, buf.bf.data(), 1, 0.0F,
                    buf.cf.data(), 1);
      } else {
        cblas_dgemv(CblasColMajor, to_cblas(sc.ta), sc.m, sc.n, 1.0,
                    buf.ad.data(), sc.m, buf.bd.data(), 1, 0.0,
                    buf.cd.data(), 1);
      }
    }
  };

  if (!use_queue) {
    for (std::size_t i = 0; i < calls; ++i) {
      if (i == warmup) warm_stats = dispatcher.stats();
      issue_direct(sequence[i]);
    }
  } else {
    // Queue mode: several client threads submit slices of the sequence.
    // Classes write into disjoint per-client output arenas so concurrent
    // same-class requests do not alias.
    blob::dispatch::AdmissionQueue queue(dispatcher);
    const auto clients =
        static_cast<std::size_t>(std::max<std::int64_t>(
            args.get_int("--clients"), 1));
    std::vector<std::vector<ClassBuffers>> client_buffers(clients, buffers);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t t = 0; t < clients; ++t) {
      threads.emplace_back([&, t] {
        std::vector<std::future<void>> pending;
        for (std::size_t i = t; i < calls; i += clients) {
          const std::size_t ci = sequence[i];
          const ShapeClass& sc = kClasses[ci];
          ClassBuffers& buf = client_buffers[t][ci];
          if (sc.op == blob::core::KernelOp::Gemm) {
            const int lda = sc.ta == kN ? sc.m : sc.k;
            const int ldb = sc.tb == kN ? sc.k : sc.n;
            if (sc.precision == blob::model::Precision::F16) {
              // The queue carries f32/f64; half traffic reaches the
              // dispatcher through the cblas seam (thread-safe hook).
              cblas_hgemm(CblasColMajor, to_cblas(sc.ta), to_cblas(sc.tb),
                          sc.m, sc.n, sc.k, 1.0F, buf.ah.data(), lda,
                          buf.bh.data(), ldb, 0.0F, buf.ch.data(), sc.m);
            } else if (sc.precision == blob::model::Precision::F32) {
              pending.push_back(queue.submit_gemm<float>(
                  sc.ta, sc.tb, sc.m, sc.n, sc.k, 1.0F, buf.af.data(), lda,
                  buf.bf.data(), ldb, 0.0F, buf.cf.data(), sc.m));
            } else {
              pending.push_back(queue.submit_gemm<double>(
                  sc.ta, sc.tb, sc.m, sc.n, sc.k, 1.0, buf.ad.data(), lda,
                  buf.bd.data(), ldb, 0.0, buf.cd.data(), sc.m));
            }
          } else {
            if (sc.precision == blob::model::Precision::F32) {
              pending.push_back(queue.submit_gemv<float>(
                  sc.ta, sc.m, sc.n, 1.0F, buf.af.data(), sc.m,
                  buf.bf.data(), 1, 0.0F, buf.cf.data(), 1));
            } else {
              pending.push_back(queue.submit_gemv<double>(
                  sc.ta, sc.m, sc.n, 1.0, buf.ad.data(), sc.m,
                  buf.bd.data(), 1, 0.0, buf.cd.data(), 1));
            }
          }
        }
        for (auto& f : pending) f.get();
      });
    }
    for (auto& t : threads) t.join();
    queue.flush();
    warm_stats = blob::dispatch::DispatchStats{};  // no phase split here
    warmup = 0;
  }
  dispatcher.uninstall();

  for (std::size_t i = 0; i < calls; ++i) {
    const Dispatcher::Costs& costs = class_costs[sequence[i]];
    const double best = std::min(costs.cpu_s, costs.gpu_s);
    total.oracle_s += best;
    total.always_cpu_s += costs.cpu_s;
    total.always_gpu_s += costs.gpu_s;
    if (i >= warmup) {
      steady.oracle_s += best;
      steady.always_cpu_s += costs.cpu_s;
      steady.always_gpu_s += costs.gpu_s;
    }
  }

  const blob::dispatch::DispatchStats stats = dispatcher.stats();
  const double routed_total = stats.cpu_seconds + stats.gpu_seconds;
  const double routed_steady =
      routed_total - (warm_stats.cpu_seconds + warm_stats.gpu_seconds);

  std::cout << blob::util::strfmt(
      "\nreplayed %zu calls on %s/%s (mode %s%s)\n", calls,
      config.profile.name.c_str(), config.personality.name.c_str(),
      args.get_string("--mode").c_str(), use_queue ? ", queued" : "");
  std::cout << blob::util::strfmt(
      "  routed      %.4es   (cpu %llu, gpu %llu, batched %llu)\n",
      routed_total, static_cast<unsigned long long>(stats.cpu_routed),
      static_cast<unsigned long long>(stats.gpu_routed),
      static_cast<unsigned long long>(stats.batched_routed));
  std::cout << blob::util::strfmt("  oracle      %.4es\n", total.oracle_s);
  std::cout << blob::util::strfmt("  always-cpu  %.4es\n",
                                  total.always_cpu_s);
  std::cout << blob::util::strfmt("  always-gpu  %.4es\n",
                                  total.always_gpu_s);
  if (total.oracle_s > 0.0) {
    std::cout << blob::util::strfmt(
        "  regret vs oracle: %+.2f%%  (steady-state: %+.2f%%)\n",
        100.0 * (routed_total / total.oracle_s - 1.0),
        steady.oracle_s > 0.0
            ? 100.0 * (routed_steady / steady.oracle_s - 1.0)
            : 0.0);
  }
  std::cout << blob::util::strfmt(
      "  decisions: %llu cold, %llu explore, %llu exploit, %llu hold, "
      "%llu forced, %llu switches\n",
      static_cast<unsigned long long>(stats.cold_starts),
      static_cast<unsigned long long>(stats.explores),
      static_cast<unsigned long long>(stats.exploits),
      static_cast<unsigned long long>(stats.hysteresis_holds),
      static_cast<unsigned long long>(stats.forced_cpu),
      static_cast<unsigned long long>(stats.route_switches));
  std::cout << blob::util::strfmt(
      "  residency: %llu hits, %llu misses, %llu invalidations "
      "(h2d %.3e moved, %.3e skipped)\n",
      static_cast<unsigned long long>(stats.residency_hits),
      static_cast<unsigned long long>(stats.residency_misses),
      static_cast<unsigned long long>(stats.residency_invalidations),
      stats.h2d_bytes_moved, stats.h2d_bytes_skipped);

  // Transposed shapes are first-class on the GPU path: none of them may
  // fall back with Reason::Forced (that reason survives only for strided
  // GEMV vectors, which this mix never issues).
  std::uint64_t transposed_calls = 0;
  std::uint64_t transposed_forced = 0;
  for (const blob::dispatch::TraceRecord& r : dispatcher.trace().snapshot()) {
    if (r.trans_a == Transpose::Yes || r.trans_b == Transpose::Yes) {
      ++transposed_calls;
      if (r.reason == blob::dispatch::Reason::Forced) ++transposed_forced;
    }
  }
  std::cout << blob::util::strfmt(
      "  transposed: %llu calls, %llu forced (expect 0)\n",
      static_cast<unsigned long long>(transposed_calls),
      static_cast<unsigned long long>(transposed_forced));

  const std::string save_path = args.get_string("--save-calib");
  if (!save_path.empty()) {
    if (dispatcher.save_calibration(save_path)) {
      std::cout << "calibration saved to " << save_path << "\n";
    } else {
      std::cerr << "error: cannot write " << save_path << "\n";
      return 1;
    }
  }

  const std::string trace_path = args.get_string("--trace-out");
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::cerr << "error: cannot write " << trace_path << "\n";
      return 1;
    }
    dispatcher.trace().dump_json(out);
  }

  const std::string metrics_path = args.get_string("--metrics-out");
  if (!metrics_path.empty()) {
    if (!blob::obs::write_metrics_file(metrics_path)) {
      std::cerr << "error: cannot write " << metrics_path << "\n";
      return 1;
    }
  }

  const std::string json_path = args.get_string("--json-out");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "error: cannot write " << json_path << "\n";
      return 1;
    }
    blob::util::JsonWriter json(out, /*pretty=*/true);
    json.begin_object();
    json.kv("system", config.profile.name);
    json.kv("personality", config.personality.name);
    json.kv("mode", args.get_string("--mode"));
    json.kv("residency", args.get_string("--residency"));
    json.kv("queued", use_queue);
    json.kv("calls", calls);
    json.kv("warmup_calls", warmup);
    json.kv("routed_s", routed_total);
    json.kv("routed_steady_s", routed_steady);
    json.kv("oracle_s", total.oracle_s);
    json.kv("oracle_steady_s", steady.oracle_s);
    json.kv("always_cpu_s", total.always_cpu_s);
    json.kv("always_gpu_s", total.always_gpu_s);
    json.kv("transposed_calls", static_cast<std::int64_t>(transposed_calls));
    json.kv("transposed_forced",
            static_cast<std::int64_t>(transposed_forced));
    if (total.oracle_s > 0.0) {
      json.kv("regret_vs_oracle", routed_total / total.oracle_s - 1.0);
    }
    if (steady.oracle_s > 0.0) {
      json.kv("steady_regret_vs_oracle",
              routed_steady / steady.oracle_s - 1.0);
    }
    json.key("stats").begin_object();
    blob::dispatch::write_stats_fields(json, stats);
    json.end_object();
    json.end_object();
    out << "\n";
    std::cout << "summary written to " << json_path << "\n";
  }
  return 0;
}
