#!/usr/bin/env bash
# Guard against CMake byproducts being committed. PR 0 accidentally
# tracked ~25k lines of build/ output; this test keeps it from
# recurring. Run from ctest as repo.no_build_artifacts.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

if ! git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  echo "not a git checkout; skipping build-artifact check"
  exit 0
fi

tracked="$(git ls-files -- 'build/*' 'artifacts/BENCH_*' \
  'CMakeCache.txt' '*/CMakeCache.txt' 'CMakeFiles/*' '*/CMakeFiles/*' \
  '*.o' '*.a' 2>/dev/null)"

if [ -n "$tracked" ]; then
  echo "error: build artifacts are tracked in git:" >&2
  echo "$tracked" | head -20 >&2
  echo "(run: git rm -r --cached <paths> and commit)" >&2
  exit 1
fi

echo "ok: no build artifacts tracked"
