#!/usr/bin/env bash
# Run the GEMV micro-benchmarks (scalar reference vs SIMD serial engine,
# threaded square / tall-skinny split-m shapes, batched small-GEMV) and
# emit a JSON report to artifacts/BENCH_gemv.json for comparison across
# commits. The BM_gemv vs BM_gemv_reference pairs at the same size are
# the serial-speedup watch; BM_gemv_parallel at {32768, 8, trans} is the
# split-m reduction watch.
#
# Usage: scripts/bench_gemv.sh [build-dir] [--quick] [extra gbench args...]
#   --quick  CI smoke mode: minimal measurement time per benchmark.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
if [ $# -ge 1 ] && [ "${1#--}" = "$1" ]; then
  build_dir="$1"
  shift
fi
quick=()
if [ "${1:-}" = "--quick" ]; then
  quick=(--benchmark_min_time=0.01)
  shift
fi
bench="$build_dir/bench/kernels_gbench"

if [ ! -x "$bench" ]; then
  echo "error: $bench not found — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j --target kernels_gbench" >&2
  exit 1
fi

out_dir="$repo_root/artifacts"
mkdir -p "$out_dir"

"$bench" \
  --benchmark_filter='gemv' \
  --benchmark_out="$out_dir/BENCH_gemv.json" \
  --benchmark_out_format=json \
  ${quick[@]+"${quick[@]}"} \
  "$@"

echo "wrote $out_dir/BENCH_gemv.json"
