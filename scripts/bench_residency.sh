#!/usr/bin/env bash
# Drive the iterative-solver workload (repeated-A f64 GEMV power
# iteration) through the dispatcher under each residency policy and emit
# artifacts/BENCH_residency.json: the threshold-vs-iteration curve the
# paper's Transfer-Once analysis (§III-D) predicts — with residency
# tracking, the measured offload threshold collapses below the
# Transfer-Always one within a few warm iterations, at zero checksum
# mismatches and zero redundant H2D traffic for resident-clean operands.
#
# Scenarios:
#   transfer-always — residency off, every GPU call re-pays the upload
#   transfer-once   — residency off, mode declared once (no tracking)
#   track           — residency tracker skips DMA for clean operands
#   first-touch     — USM placement, simgpu page-migration model
#
# Usage: scripts/bench_residency.sh [build-dir] [--quick] [extra args...]
#   --quick  CI smoke mode: dim 1024 and 16 iterations instead of 1536/32.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
if [ $# -ge 1 ] && [ "${1#--}" = "$1" ]; then
  build_dir="$1"
  shift
fi
dim=1536
iters=32
if [ "${1:-}" = "--quick" ]; then
  dim=1024
  iters=16
  shift
fi
serve="$build_dir/apps/blob-serve"

if [ ! -x "$serve" ]; then
  echo "error: $serve not found — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j --target blob-serve" >&2
  exit 1
fi

out_dir="$repo_root/artifacts"
mkdir -p "$out_dir"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

common=(--solver --system isambard-ai --solver-dim "$dim" -n "$iters" "$@")

echo "== transfer-always (residency off) =="
"$serve" "${common[@]}" --residency off --mode always \
  --json-out "$tmp/transfer-always.json"

echo
echo "== transfer-once declared, no tracking =="
"$serve" "${common[@]}" --residency off --mode once \
  --json-out "$tmp/transfer-once.json"

echo
echo "== residency track =="
"$serve" "${common[@]}" --residency track --json-out "$tmp/track.json"

echo
echo "== first-touch (USM placement) =="
"$serve" "${common[@]}" --residency first-touch \
  --json-out "$tmp/first-touch.json"

python3 - "$tmp" "$out_dir/BENCH_residency.json" <<'PY'
import json, sys
tmp, out = sys.argv[1], sys.argv[2]
names = ("transfer-always", "transfer-once", "track", "first-touch")
doc = {name: json.load(open(f"{tmp}/{name}.json")) for name in names}

track = doc["track"]["solver"]
always = doc["transfer-always"]["solver"]

# Threshold-vs-iteration curve: the iteration at which the tracked run's
# cumulative routed cost drops below the transfer-always run's.
crossover = 0
for t, a in zip(track["iterations_trace"],
                always["iterations_trace"]):
    if t["cum_routed_s"] < a["cum_routed_s"]:
        crossover = t["iter"]
        break
doc["summary"] = {
    "dim": track["dim"],
    "iterations": track["iterations"],
    "track_first_gpu_iteration": track["first_gpu_iteration"],
    "track_crossover_vs_always_iteration": crossover,
    "track_h2d_bytes_moved": doc["track"]["stats"]["h2d_bytes_moved"],
    "track_h2d_bytes_skipped": doc["track"]["stats"]["h2d_bytes_skipped"],
    "always_h2d_bytes_moved":
        doc["transfer-always"]["stats"]["h2d_bytes_moved"],
}

# Acceptance: offload within <= 8 warm iterations, bit-exact results,
# strictly fewer modelled H2D bytes than transfer-always.
assert 1 <= track["first_gpu_iteration"] <= 8, track
for name in names:
    assert doc[name]["solver"]["checksum_mismatches"] == 0, name
assert (doc["track"]["stats"]["h2d_bytes_moved"]
        < doc["transfer-always"]["stats"]["h2d_bytes_moved"]), "h2d"
assert 1 <= crossover <= 8, crossover

with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"summary: {json.dumps(doc['summary'], indent=2)}")
PY

echo
echo "wrote $out_dir/BENCH_residency.json"
