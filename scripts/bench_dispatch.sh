#!/usr/bin/env bash
# Replay the serving workload through the online offload dispatcher and
# emit artifacts/BENCH_dispatch.json: routed cost vs the per-call oracle
# and the always-CPU / always-GPU static baselines, for three scenarios —
# a cold start (learning online), a warm restart from the calibration
# store written by the cold run, and the queued/coalescing path.
#
# Usage: scripts/bench_dispatch.sh [build-dir] [--quick] [extra blob-serve args...]
#   --quick  CI smoke mode: 80 calls and 2 queue clients instead of 400/4.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
if [ $# -ge 1 ] && [ "${1#--}" = "$1" ]; then
  build_dir="$1"
  shift
fi
calls=400
clients=4
if [ "${1:-}" = "--quick" ]; then
  calls=80
  clients=2
  shift
fi
serve="$build_dir/apps/blob-serve"

if [ ! -x "$serve" ]; then
  echo "error: $serve not found — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j --target blob-serve" >&2
  exit 1
fi

out_dir="$repo_root/artifacts"
mkdir -p "$out_dir"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

common=(--system dawn -n "$calls" --seed 42 "$@")

echo "== cold start (online learning) =="
"$serve" "${common[@]}" --save-calib "$tmp/calib.json" \
  --json-out "$tmp/cold.json"

echo
echo "== warm restart (persisted calibration) =="
"$serve" "${common[@]}" --load-calib "$tmp/calib.json" \
  --json-out "$tmp/warm.json"

echo
echo "== admission queue (coalescing + overlap) =="
"$serve" "${common[@]}" --queue --clients "$clients" --json-out "$tmp/queued.json"

python3 - "$tmp" "$out_dir/BENCH_dispatch.json" <<'PY'
import json, sys
tmp, out = sys.argv[1], sys.argv[2]
doc = {name: json.load(open(f"{tmp}/{name}.json"))
       for name in ("cold", "warm", "queued")}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
PY

echo
echo "wrote $out_dir/BENCH_dispatch.json"
