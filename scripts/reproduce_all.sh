#!/usr/bin/env bash
# Rebuild everything, run the full test suite, regenerate every paper
# table/figure plus the ablations and future-work extensions, and leave
# the transcripts in ./artifacts/.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

mkdir -p artifacts

echo "== tests =============================================================="
ctest --test-dir build --output-on-failure 2>&1 | tee artifacts/ctest.txt | tail -3

echo "== benches ============================================================"
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  name=$(basename "$b")
  echo "-- $name"
  "$b" > "artifacts/$name.txt"
done

echo "== bench scripts (BENCH_*.json artifacts) ============================="
scripts/ci_bench_quick.sh build --full

echo "== artifact-style CSV run (square problems, 8 iterations) ============"
./build/apps/gpu-blob -i 8 -d 1024 --stride 4 --kernel all \
    --system isambard-ai --csv-dir artifacts/csv > artifacts/gpu-blob.txt
ls artifacts/csv | head

echo
echo "done: transcripts in ./artifacts"
