#!/usr/bin/env bash
# The single list of bench scripts that produce artifacts/BENCH_*.json.
# CI's bench-smoke step and scripts/reproduce_all.sh both run this, so a
# new bench registers here once instead of being hand-synced into both.
#
# Usage: scripts/ci_bench_quick.sh [build-dir] [--full]
#   default  quick mode (CI smoke: small sizes, --quick passed through)
#   --full   full-size runs for reproduce_all
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-build}"
if [ "$build_dir" = "--full" ]; then
  build_dir="build"
  mode="--full"
else
  mode="${2:-}"
fi

benches=(
  bench_gemm.sh
  bench_gemv.sh
  bench_dispatch.sh
  bench_residency.sh
  bench_serve.sh
  bench_emulated.sh
  bench_lapack.sh
)

for bench in "${benches[@]}"; do
  echo "== $bench =="
  if [ "$mode" = "--full" ]; then
    "$repo_root/scripts/$bench" "$build_dir"
  else
    "$repo_root/scripts/$bench" "$build_dir" --quick
  fi
done
