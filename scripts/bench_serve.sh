#!/usr/bin/env bash
# Drive the multi-device serving layer and emit artifacts/BENCH_serve.json:
# modelled-throughput scaling for 1/2/4 heterogeneous devices (dawn+lumi
# mix), a p99-vs-offered-load sweep at the full fleet size, the N=1
# bit-identity check against a lone dispatcher, and (full mode) a
# saturation-point finder that escalates the burst size under a loose
# SLO until the shed rate crosses target and records the knee.
#
# Acceptance baked into the merge step:
#   - the 1-device fleet trace is bit-identical to a lone Dispatcher
#   - zero checksum mismatches in every run
#   - modelled speedup (busy_s / makespan_s) grows with the fleet and the
#     4-device fleet clears the scaling floor
#   - shedding touches only deadline-bearing classes (besteffort: never)
#
# Usage: scripts/bench_serve.sh [build-dir] [--quick] [extra args...]
#   --quick  CI smoke mode: 400 calls per run instead of 2000, no load sweep.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
if [ $# -ge 1 ] && [ "${1#--}" = "$1" ]; then
  build_dir="$1"
  shift
fi
calls=2000
quick=0
if [ "${1:-}" = "--quick" ]; then
  calls=400
  quick=1
  shift
fi
serve="$build_dir/apps/blob-serve"

if [ ! -x "$serve" ]; then
  echo "error: $serve not found — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j --target blob-serve" >&2
  exit 1
fi

out_dir="$repo_root/artifacts"
mkdir -p "$out_dir"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

common=(-n "$calls" --device-systems dawn,lumi --clients 4 --burst 16
        --slo-ms 30 --seed 11 "$@")

echo "== verify: 1-device fleet vs lone dispatcher (bit-identity) =="
"$serve" -n "$calls" --devices 1 --verify-single --seed 11 \
  --json-out "$tmp/verify.json" "$@"

for d in 1 2 4; do
  echo
  echo "== fleet scaling: $d device(s) =="
  "$serve" "${common[@]}" --devices "$d" --json-out "$tmp/scale$d.json"
done

loads=()
if [ "$quick" -eq 0 ]; then
  for gap in 0 200 800; do
    echo
    echo "== load sweep: 4 devices, gap ${gap}us between bursts =="
    "$serve" "${common[@]}" --devices 4 --gap-us "$gap" \
      --json-out "$tmp/load$gap.json"
    loads+=("$gap")
  done

  # Saturation-point finder: escalate the offered load (burst size — the
  # whole burst lands on the queue at once, so it is the knob that moves
  # real queueing delay; inter-burst gaps barely do) under a loose SLO
  # until the shed rate crosses the target. The knee — the lightest load
  # the fleet can no longer serve within target — goes into
  # BENCH_serve.json for capacity planning.
  sat_target_pct=5
  sat_slo_ms=240
  sat_knee="none"
  sat_bursts=()
  echo
  echo "== saturation finder: target shed rate ${sat_target_pct}% at slo ${sat_slo_ms}ms =="
  for sburst in 2 4 8 16 32 64; do
    "$serve" -n "$calls" --device-systems dawn,lumi --clients 4 \
      --burst "$sburst" --slo-ms "$sat_slo_ms" --seed 11 --devices 4 \
      --gap-us 200 --json-out "$tmp/sat$sburst.json" "$@" > /dev/null
    sat_bursts+=("$sburst")
    shed_pct=$(python3 -c "import json; d = json.load(open('$tmp/sat$sburst.json')); print(100.0 * d['shed'] / max(d['submitted'], 1))")
    echo "  burst ${sburst} -> shed rate ${shed_pct}%"
    if python3 -c "import sys; sys.exit(0 if float('$shed_pct') > $sat_target_pct else 1)"; then
      sat_knee="$sburst"
      echo "  knee: shed rate crossed ${sat_target_pct}% at burst ${sburst}"
      break
    fi
  done
  printf '%s\n' "${sat_bursts[@]}" > "$tmp/sat_bursts.txt"
  echo "$sat_knee" > "$tmp/sat_knee.txt"
  echo "$sat_target_pct" > "$tmp/sat_target.txt"
fi

python3 - "$tmp" "$out_dir/BENCH_serve.json" "${loads[@]+${loads[@]}}" <<'PY'
import json, os, sys
tmp, out = sys.argv[1], sys.argv[2]
gaps = [int(g) for g in sys.argv[3:]]

doc = {
    "verify_single": json.load(open(f"{tmp}/verify.json")),
    "scaling": {str(d): json.load(open(f"{tmp}/scale{d}.json"))
                for d in (1, 2, 4)},
    "load_sweep": [json.load(open(f"{tmp}/load{g}.json")) for g in gaps],
}

def cls(run, name):
    return next(c for c in run["classes"] if c["class"] == name)

# N=1 identity + functional correctness everywhere.
assert doc["verify_single"]["verify_single_identical"] is True
for run in ([doc["verify_single"]] + list(doc["scaling"].values())
            + doc["load_sweep"]):
    assert run["checksum_mismatches"] == 0, run["devices"]
    # Shedding only ever touches deadline-bearing classes.
    assert cls(run, "besteffort")["shed"] == 0, run["devices"]

# Modelled-throughput scaling: speedup = busy_s / makespan_s. A lone
# device is ~1.0 by construction; the fleet must spread work.
s = {d: doc["scaling"][d]["speedup"] for d in ("1", "2", "4")}
assert s["1"] <= 1.05, s
assert s["2"] > s["1"], s
assert s["4"] > s["2"], s
floor = 1.2 if doc["scaling"]["4"]["calls"] <= 500 else 2.0
assert s["4"] >= floor, s

# Offered load must move tail latency the right way: the most heavily
# loaded point sees the worst interactive p99 of the sweep.
sweep = []
for run in doc["load_sweep"]:
    inter = cls(run, "interactive")
    sweep.append({
        "gap_us": run["gap_us"],
        "interactive_p99_ms": inter["p99_ms"],
        "interactive_shed": inter["shed"],
        "shed_total": run["shed"],
        "speedup": run["speedup"],
    })
if sweep:
    heaviest = min(sweep, key=lambda r: r["gap_us"])
    lightest = max(sweep, key=lambda r: r["gap_us"])
    assert heaviest["interactive_p99_ms"] >= lightest["interactive_p99_ms"], sweep

# Saturation finder (full mode): the ascending-burst sweep under a loose
# SLO, stopped at the first offered load whose shed rate crossed target.
saturation = None
if os.path.exists(f"{tmp}/sat_bursts.txt"):
    sat_bursts = [int(l) for l in open(f"{tmp}/sat_bursts.txt") if l.strip()]
    target = float(open(f"{tmp}/sat_target.txt").read().strip()) / 100.0
    knee_raw = open(f"{tmp}/sat_knee.txt").read().strip()
    points = []
    for b in sat_bursts:
        run = json.load(open(f"{tmp}/sat{b}.json"))
        submitted = max(run["submitted"], 1)
        points.append({
            "burst": b,
            "slo_ms": run["slo_ms"],
            "submitted": run["submitted"],
            "shed": run["shed"],
            "shed_rate": run["shed"] / submitted,
            "interactive_p99_ms": cls(run, "interactive")["p99_ms"],
        })
        # Sheds are legitimate under overload, but completed outputs must
        # still verify; besteffort traffic is never shed.
        assert run["checksum_mismatches"] == 0, b
        assert cls(run, "besteffort")["shed"] == 0, b
    saturation = {
        "target_shed_rate": target,
        "points": points,
        "knee_burst": None if knee_raw == "none" else int(knee_raw),
    }
    # The finder stops at the knee: every lighter load held the target,
    # the knee itself crossed it.
    if saturation["knee_burst"] is not None:
        assert points[-1]["burst"] == saturation["knee_burst"]
        assert points[-1]["shed_rate"] > target, points
        for p in points[:-1]:
            assert p["shed_rate"] <= target, points
    doc["saturation"] = saturation

doc["summary"] = {
    "calls_per_run": doc["scaling"]["1"]["calls"],
    "speedup_1dev": s["1"],
    "speedup_2dev": s["2"],
    "speedup_4dev": s["4"],
    "regret_vs_oracle_4dev": doc["scaling"]["4"]["regret_vs_oracle"],
    "shed_4dev": doc["scaling"]["4"]["shed"],
    "verify_single_identical": True,
    "load_sweep": sweep,
}
if saturation is not None:
    doc["summary"]["saturation_knee_burst"] = saturation["knee_burst"]
    doc["summary"]["saturation_target_shed_rate"] = (
        saturation["target_shed_rate"])

with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"summary: {json.dumps(doc['summary'], indent=2)}")
PY

echo
echo "wrote $out_dir/BENCH_serve.json"
