#!/usr/bin/env bash
# Sweep the three-way (cpu / gpu-native / gpu-emulated) f64 GEMM cost
# frontier per system profile and replay a relaxed-budget workload
# through the live dispatcher, emitting artifacts/BENCH_emulated.json.
#
# Acceptance gates baked into the merge step:
#   * at least one profile has a shape range where the emulated arm's
#     modelled cost beats BOTH native arms,
#   * on such a profile the dispatcher actually routes calls to the
#     emulated arm and lands near the three-arm oracle,
#   * the end-to-end blob-serve replay under a relaxed budget verifies
#     every output within the declared tolerance (zero mismatches) while
#     exercising the emulated route.
#
# Usage: scripts/bench_emulated.sh [build-dir] [--quick] [extra args...]
#   --quick  CI smoke mode: 120 serve calls instead of 400.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
if [ $# -ge 1 ] && [ "${1#--}" = "$1" ]; then
  build_dir="$1"
  shift
fi
calls=400
if [ "${1:-}" = "--quick" ]; then
  calls=120
  shift
fi
sweep="$build_dir/bench/ext_emulated_threshold"
serve="$build_dir/apps/blob-serve"

for bin in "$sweep" "$serve"; do
  if [ ! -x "$bin" ]; then
    echo "error: $bin not found — build first:" >&2
    echo "  cmake -B build -S . && cmake --build build -j" >&2
    exit 1
  fi
done

out_dir="$repo_root/artifacts"
mkdir -p "$out_dir"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "== three-way cost sweep + dispatcher replay =="
"$sweep" "$tmp/sweep.json"

echo
echo "== blob-serve replay, relaxed budget (tolerance-aware verify) =="
"$serve" --system dawn -n "$calls" --seed 42 --error-budget relaxed \
  --json-out "$tmp/serve-relaxed.json" "$@"

echo
echo "== blob-serve replay, exact budget (control: arm stays cold) =="
"$serve" --system dawn -n "$calls" --seed 42 --error-budget exact \
  --json-out "$tmp/serve-exact.json" "$@"

python3 - "$tmp" "$out_dir/BENCH_emulated.json" <<'PY'
import json, sys
tmp, out = sys.argv[1], sys.argv[2]
doc = {
    "sweep": json.load(open(f"{tmp}/sweep.json")),
    "serve_relaxed": json.load(open(f"{tmp}/serve-relaxed.json")),
    "serve_exact": json.load(open(f"{tmp}/serve-exact.json")),
}

# Per-profile emulated win range from the modelled sweep.
win_ranges = {}
for sysdoc in doc["sweep"]["systems"]:
    ns = [p["n"] for p in sysdoc["sweep"] if p["winner"] == "emu"]
    win_ranges[sysdoc["system"]] = [min(ns), max(ns)] if ns else None
doc["summary"] = {
    "emulated_win_ranges": win_ranges,
    "serve_relaxed_emulated_routed":
        doc["serve_relaxed"]["stats"]["emulated_routed"],
    "serve_exact_emulated_routed":
        doc["serve_exact"]["stats"]["emulated_routed"],
    "serve_relaxed_regret_vs_oracle":
        doc["serve_relaxed"]["regret_vs_oracle"],
}

# Gate 1: some profile must have a shape range where emulation beats
# both native arms (the wide-f32:f64-ratio parts).
winners = {s: r for s, r in win_ranges.items() if r}
assert winners, f"no profile has an emulated win range: {win_ranges}"

# Gate 2: on a winning profile, the dispatcher must actually learn to
# pick the arm and stay near the three-arm oracle.
for sysdoc in doc["sweep"]["systems"]:
    if win_ranges[sysdoc["system"]] is None:
        continue
    rep = sysdoc["replay"]
    assert rep["emulated_routed"] > 0, sysdoc["system"]
    assert rep["regret_vs_oracle3"] < 0.25, rep

# Gate 3: end-to-end relaxed replay routes emulated work and verifies
# within tolerance; the exact control never touches the arm.
rel = doc["serve_relaxed"]
assert rel["stats"]["emulated_routed"] > 0, rel["stats"]
assert rel["checksum_mismatches"] == 0, rel
assert rel["verify_mode"] == "rel-frobenius", rel
assert doc["serve_exact"]["stats"]["emulated_routed"] == 0
assert doc["serve_exact"]["checksum_mismatches"] == 0

with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print("summary:", json.dumps(doc["summary"], indent=2))
PY

echo
echo "wrote $out_dir/BENCH_emulated.json"
