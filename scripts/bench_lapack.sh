#!/usr/bin/env bash
# Run the three blocked factorizations (LU / Cholesky / QR) with their
# trailing-update BLAS traffic routed through the offload dispatcher on
# each system profile and emit artifacts/BENCH_lapack.json: end-to-end
# modelled factorization time, dispatched vs always-CPU vs always-GPU,
# plus the per-op decision curve. Every run must reproduce the direct
# blas:: path bitwise (blob-serve exits non-zero on any mismatch).
#
# Usage: scripts/bench_lapack.sh [build-dir] [--quick] [extra args...]
#   --quick  CI smoke mode: dim 320 block 32 instead of 768/64.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
if [ $# -ge 1 ] && [ "${1#--}" = "$1" ]; then
  build_dir="$1"
  shift
fi
dim=768
block=64
if [ "${1:-}" = "--quick" ]; then
  dim=320
  block=32
  shift
fi
serve="$build_dir/apps/blob-serve"

if [ ! -x "$serve" ]; then
  echo "error: $serve not found — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j --target blob-serve" >&2
  exit 1
fi

out_dir="$repo_root/artifacts"
mkdir -p "$out_dir"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

profiles=(dawn lumi isambard-ai)
factorizations=(getrf potrf geqrf)

for profile in "${profiles[@]}"; do
  for fact in "${factorizations[@]}"; do
    echo "== $fact on $profile (dim $dim, block $block) =="
    "$serve" --factorize "$fact" --factor-dim "$dim" \
      --factor-block "$block" --system "$profile" --residency track \
      --json-out "$tmp/$profile-$fact.json" "$@"
    echo
  done
done

python3 - "$tmp" "$out_dir/BENCH_lapack.json" "${profiles[*]}" \
  "${factorizations[*]}" <<'PY'
import json, sys
tmp, out = sys.argv[1], sys.argv[2]
profiles = sys.argv[3].split()
factorizations = sys.argv[4].split()

doc = {"runs": {}}
wins = []
for profile in profiles:
    for fact in factorizations:
        run = json.load(open(f"{tmp}/{profile}-{fact}.json"))
        doc["runs"][f"{profile}/{fact}"] = run
        f = run["factorize"]
        assert f["checksum_mismatches"] == 0, (profile, fact, f)
        if (f["routed_s"] < f["always_cpu_s"]
                and f["routed_s"] < f["always_gpu_s"]):
            wins.append(f"{profile}/{fact}")

any_run = doc["runs"][f"{profiles[0]}/{factorizations[0]}"]["factorize"]
doc["summary"] = {
    "dim": any_run["dim"],
    "block": any_run["block"],
    "dispatched_beats_both_policies": wins,
    "table": [
        {
            "run": key,
            "ops": r["factorize"]["ops"],
            "first_gpu_op": r["factorize"]["first_gpu_op"],
            "routed_s": r["factorize"]["routed_s"],
            "always_cpu_s": r["factorize"]["always_cpu_s"],
            "always_gpu_s": r["factorize"]["always_gpu_s"],
            "h2d_bytes_skipped": r["stats"]["h2d_bytes_skipped"],
            "swaps_mirrored": r["stats"]["residency_swaps_mirrored"],
        }
        for key, r in doc["runs"].items()
    ],
}

# Acceptance: every run bit-exact, and the dispatched factorization beats
# BOTH constant policies end-to-end on at least one profile/size.
assert wins, doc["summary"]["table"]

with open(out, "w") as fh:
    json.dump(doc, fh, indent=2)
    fh.write("\n")
print(f"summary: {json.dumps(doc['summary']['table'], indent=2)}")
print(f"dispatched beats both constant policies on: {', '.join(wins)}")
PY

echo
echo "wrote $out_dir/BENCH_lapack.json"
