#!/usr/bin/env python3
"""Validate a BLOB_TRACE chrome-trace file end-to-end.

Checks that the emitted JSON is well-formed chrome trace_event format and
that at least one GPU-routed GEMM shows the full linked span chain:

    dispatch.queue_cycle (or dispatch.gemm)
      -> dispatch.gpu_enqueue
           -> gpu.h2d  (x3)
           -> gpu.gemm
           -> gpu.d2h

Optionally cross-checks a metrics dump for non-zero counters from the
blas, gpu, and dispatch registries.

Usage: check_trace.py TRACE_JSON [METRICS_JSON]
"""

import json
import sys


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) < 2:
        fail("usage: check_trace.py TRACE_JSON [METRICS_JSON]")

    with open(sys.argv[1]) as f:
        doc = json.load(f)

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")

    # Wall-lane spans only (pid 1); pid 2 mirrors modelled virtual time.
    spans = {}
    for e in events:
        if e.get("ph") not in ("X", "i"):
            continue
        if e.get("pid") != 1:
            continue
        args = e.get("args", {})
        sid = args.get("id")
        if not sid:
            continue
        spans[sid] = {
            "name": e["name"],
            "parent": args.get("parent", 0),
            "vt": "vt_dur_s" in args,
        }

    if not spans:
        fail("no id-carrying spans on the wall lane")

    def chain_of(sid):
        names = []
        seen = set()
        while sid and sid in spans and sid not in seen:
            seen.add(sid)
            names.append(spans[sid]["name"])
            sid = spans[sid]["parent"]
        return names

    # Find one GPU kernel whose ancestry runs through the dispatcher.
    kernels = [s for s, v in spans.items() if v["name"] in ("gpu.gemm", "gpu.gemv")]
    if not kernels:
        fail("no gpu kernel spans recorded")

    linked = None
    for sid in kernels:
        chain = chain_of(sid)
        if "dispatch.gpu_enqueue" in chain and (
            "dispatch.queue_cycle" in chain or "dispatch.gemm" in chain
            or "dispatch.gemv" in chain
        ):
            linked = chain
            break
    if linked is None:
        fail("no kernel span links back to a dispatch decision context")

    # The enqueue span must also contain the DMA legs.
    enqueues = {s for s, v in spans.items() if v["name"] == "dispatch.gpu_enqueue"}
    h2d = sum(1 for v in spans.values() if v["name"] == "gpu.h2d" and v["parent"] in enqueues)
    d2h = sum(1 for v in spans.values() if v["name"] == "gpu.d2h" and v["parent"] in enqueues)
    if h2d == 0 or d2h == 0:
        fail(f"DMA legs not nested under gpu_enqueue (h2d={h2d}, d2h={d2h})")

    # Simulated ops must carry modelled virtual time.
    if not any(v["vt"] for v in spans.values() if v["name"].startswith("gpu.")):
        fail("no gpu span carries a modelled virtual interval")

    print(f"check_trace: ok: {len(spans)} spans, kernel chain {' <- '.join(linked)}")

    if len(sys.argv) > 2:
        with open(sys.argv[2]) as f:
            metrics = json.load(f)
        counters = metrics.get("counters", {})
        for prefix in ("blas.", "gpu.", "dispatch."):
            if not any(k.startswith(prefix) and v > 0 for k, v in counters.items()):
                fail(f"no non-zero counter with prefix {prefix}")
        print(f"check_trace: ok: metrics cover blas/gpu/dispatch "
              f"({sum(1 for v in counters.values() if v)} non-zero counters)")


if __name__ == "__main__":
    main()
