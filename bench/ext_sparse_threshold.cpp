// Extension (paper future work, §V): a sparse (CSR SpMV) offload study.
//
// The paper defers sparse BLAS because choosing representative sparse
// problem types is non-trivial; as a first cut we sweep square matrices
// at fixed densities and report the smallest dimension from which the
// GPU (Transfer-Once) persistently wins.

#include <optional>

#include "common.hpp"
#include "core/threshold.hpp"
#include "sparse/model.hpp"
#include "util/table.hpp"

namespace {

using namespace blob;

std::optional<std::int64_t> sparse_threshold(
    const profile::SystemProfile& prof, double density,
    std::int64_t iterations) {
  std::vector<core::ThresholdSample> samples;
  for (std::int64_t n = 256; n <= 262144; n *= 2) {
    const auto nnz =
        static_cast<std::int64_t>(density * static_cast<double>(n) * n);
    if (nnz < 1) continue;
    const double cpu =
        static_cast<double>(iterations) *
        sparse::spmv_cpu_time(prof.cpu, model::Precision::F64, n, n, nnz);
    const double gpu = sparse::spmv_gpu_transfer_once_time(
        prof.gpu, prof.link, model::Precision::F64, n, n, nnz, iterations);
    samples.push_back({n, core::Dims{n, n, 1}, cpu, gpu});
  }
  const auto th = core::detect_threshold(samples);
  if (!th.has_value()) return std::nullopt;
  return th->s;
}

}  // namespace

int main() {
  using namespace blob;
  bench::banner(
      "Extension -- sparse SpMV (CSR) offload thresholds (paper future "
      "work)");
  bench::paper_reference({
      "Hypothesis from §V: SpMV's even lower arithmetic intensity (2",
      "FLOPs per ~12 bytes) should push thresholds far beyond dense",
      "GEMV's on PCIe systems, while the GH200's coherent link keeps",
      "offload viable at moderate re-use.",
  });

  util::TextTable table(
      {"system", "iterations", "density 1e-4", "density 1e-3",
       "density 1e-2"},
      {util::Align::Left, util::Align::Right, util::Align::Right,
       util::Align::Right, util::Align::Right});
  for (const char* system : {"dawn", "lumi", "isambard-ai"}) {
    const auto prof = profile::by_name(system);
    for (std::int64_t iters : {1LL, 8LL, 64LL}) {
      std::vector<std::string> row = {system, std::to_string(iters)};
      for (double density : {1e-4, 1e-3, 1e-2}) {
        const auto th = sparse_threshold(prof, density, iters);
        row.push_back(th.has_value() ? std::to_string(*th) : "--");
      }
      table.row(std::move(row));
    }
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "\nReading: matrix dimension (square, power-of-two sweep) from which\n"
      "the GPU persistently wins DSpMV with Transfer-Once; '--' = never\n"
      "within n <= 262144.\n");
  return 0;
}
