// Extension (paper future work, §V): FP16/BF16 GEMM offload thresholds.
//
// The paper could not run half precision (no portable HGEMM interface in
// 2024-era oneMKL); our models carry f16 peaks for both CPUs (4x f64
// SIMD throughput, no matrix engines assumed) and GPUs (tensor-core
// class peaks), so the sweep machinery runs unchanged.

#include "common.hpp"
#include "util/table.hpp"

int main() {
  using namespace blob;
  bench::banner(
      "Extension -- half-precision square GEMM offload thresholds "
      "(paper future work)");
  bench::paper_reference({
      "Hypothesis from §V: GPU matrix engines widen the GPU:CPU peak",
      "ratio by ~4x at f16 vs f32, so the f16 threshold should be lower",
      "than the f32 one wherever compute (not the link) binds.",
  });

  const auto& type = core::problem_type_by_id("gemm_square");
  util::TextTable table(
      {"system", "iterations", "f32 Once", "f16 Once", "bf16 Once"},
      {util::Align::Left, util::Align::Right, util::Align::Right,
       util::Align::Right, util::Align::Right});
  for (const char* system : {"dawn", "lumi", "isambard-ai"}) {
    const auto prof = profile::by_name(system);
    for (std::int64_t iters : {1LL, 32LL}) {
      core::SimBackend backend(prof, 0.0);
      std::vector<std::string> row = {system, std::to_string(iters)};
      for (auto precision :
           {model::Precision::F32, model::Precision::F16,
            model::Precision::BF16}) {
        core::SweepConfig cfg;
        cfg.s_max = 4096;
        cfg.iterations = iters;
        cfg.precision = precision;
        const auto result = core::run_sweep(backend, type, cfg);
        row.push_back(core::threshold_value_string(result.thresholds[0]));
      }
      table.row(std::move(row));
    }
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "\nReading: f16 and bf16 behave identically (same storage width and\n"
      "peak) and track or undercut f32 thresholds; transfers shrink 2x\n"
      "with the element size, helping low-iteration cases.\n");
  return 0;
}
