// Fig. 6: AOCL vs OpenBLAS square DGEMV CPU performance (128 iterations)
// on LUMI.
//
// AOCL does not parallelise GEMV (the paper's perf-stat "0.89 CPUs"
// finding), so its curve plateaus at single-core bandwidth; OpenBLAS
// threads GEMV and is far faster at large sizes — enough that no GPU
// offload threshold survives at any iteration count.

#include "common.hpp"
#include "core/report.hpp"
#include "core/sim_backend.hpp"

int main() {
  using namespace blob;
  bench::banner(
      "Fig. 6 -- AOCL-like vs OpenBLAS-like square DGEMV CPU performance "
      "(128 iterations) on LUMI");
  bench::paper_reference({
      "OpenBLAS: poorer small-size performance (threading overhead) but",
      "several-fold higher throughput at large sizes. With OpenBLAS the",
      "GPU produces NO offload threshold for any transfer type at any",
      "iteration count.",
  });

  const auto& type = core::problem_type_by_id("gemv_square");
  const auto aocl = bench::figure_series(profile::by_name("lumi"), type,
                                         model::Precision::F64, 128, 4096,
                                         256);
  const auto openblas =
      bench::figure_series(profile::by_name("lumi-openblas"), type,
                           model::Precision::F64, 128, 4096, 256);
  std::fputs(core::render_series(
                 "DGEMV GFLOP/s vs M=N (LUMI, 128 iters)",
                 {"cpu-aocl", "cpu-openblas", "gpu-once"}, aocl.sizes,
                 {aocl.cpu, openblas.cpu, aocl.gpu_once})
                 .c_str(),
             stdout);

  // Confirm the OpenBLAS variant eliminates every threshold.
  const auto entries = bench::sweep_entries(profile::by_name("lumi-openblas"),
                                            type);
  std::fputs(core::render_threshold_table("lumi-openblas", type, entries)
                 .c_str(),
             stdout);
  return 0;
}
