// Table III: Square SGEMM:DGEMM (M=N=K) GPU offload thresholds for each
// data transfer type and HPC system.

#include "common.hpp"

int main() {
  using namespace blob;
  bench::banner(
      "Table III -- Square GEMM (M=N=K) offload thresholds [f32 : f64]");
  bench::paper_reference({
      "DAWN        i=1:   629:582 | 629:582  | 657:626",
      "DAWN        i=8:   572:485 | 629:603  | 596:529",
      "DAWN        i=32:  514:377 | 1018:833 | 509:389",
      "DAWN        i=64:  514:361 | 1153:1153| 465:436",
      "DAWN        i=128: 514:361 | 1265:1153| 412:377",
      "LUMI        i=1:   502:237 | 441:234  | --:--",
      "LUMI        i=8:   153:125 | 512:256  | 606:539",
      "LUMI        i=32:  2:2     | 512:461  | 442:256",
      "LUMI        i=64:  2:2     | 589:961  | 381:239",
      "LUMI        i=128: 2:2     | 512:1009 | 189:153",
      "Isambard-AI i=1:   26:26   | 26:26    | 196:411",
      "Isambard-AI i>=8:  26:26   | 26:26    | 26:26",
      "Shape checks: Isambard << LUMI < DAWN; Transfer-Always threshold",
      "grows with iterations on DAWN/LUMI; Once/USM shrink.",
  });

  const auto& type = core::problem_type_by_id("gemm_square");
  for (const char* system : {"dawn", "lumi", "isambard-ai"}) {
    const auto profile = profile::by_name(system);
    const auto entries = bench::sweep_entries(profile, type);
    std::fputs(
        core::render_threshold_table(profile.name, type, entries).c_str(),
        stdout);
  }
  return 0;
}
