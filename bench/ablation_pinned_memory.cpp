// Ablation: pinned vs pageable host memory for explicit transfers.
//
// GPU-BLOB allocates host staging buffers with cudaMallocHost /
// hipHostMalloc to optimize transfers (§III-B2). This ablation shows the
// bandwidth difference and its downstream effect on the Transfer-Always
// offload threshold (the mode that pays transfer cost every iteration).

#include "common.hpp"
#include "core/report.hpp"
#include "util/table.hpp"

int main() {
  using namespace blob;
  bench::banner("Ablation -- pinned vs pageable transfer buffers (DAWN)");
  bench::paper_reference({
      "GPU-BLOB uses pinned allocations for all explicit-transfer",
      "implementations; pageable staging costs an extra copy through the",
      "driver's bounce buffer (~2x bandwidth loss on PCIe systems).",
  });

  const auto dawn = profile::by_name("dawn");

  util::TextTable bw({"bytes", "h2d pinned (ms)", "h2d pageable (ms)",
                      "ratio"},
                     {util::Align::Right, util::Align::Right,
                      util::Align::Right, util::Align::Right});
  for (double mib : {1.0, 16.0, 64.0, 256.0}) {
    const double bytes = mib * 1048576.0;
    const double pinned = dawn.link.h2d_time(bytes, true) * 1e3;
    const double pageable = dawn.link.h2d_time(bytes, false) * 1e3;
    bw.row({util::strfmt("%.0f MiB", mib), util::strfmt("%.3f", pinned),
            util::strfmt("%.3f", pageable),
            util::strfmt("%.2fx", pageable / pinned)});
  }
  std::fputs(bw.str().c_str(), stdout);

  // Threshold impact: degrade the link as pageable staging would.
  auto pageable_profile = dawn;
  pageable_profile.name = "dawn-pageable";
  pageable_profile.link.h2d_bw_gbs /= pageable_profile.link.pageable_penalty;
  pageable_profile.link.d2h_bw_gbs /= pageable_profile.link.pageable_penalty;

  const auto& type = core::problem_type_by_id("gemm_square");
  for (const auto& prof : {dawn, pageable_profile}) {
    const auto entries = bench::sweep_entries(prof, type);
    std::fputs(
        core::render_threshold_table(prof.name, type, entries).c_str(),
        stdout);
  }
  return 0;
}
