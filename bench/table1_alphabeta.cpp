// Table I: SGEMM run-times (100 iterations) for different devices and
// BLAS libraries, varying alpha and beta (M=N=8192, K=4).
//
// The experiment behind GPU-BLOB's FLOPs model: beta=0 is measurably
// faster than beta=2 on every library (the beta=0 optimization is real),
// while alpha's value makes no difference (no alpha=1 optimization).
//
// Model: a K=4 SGEMM is pure memory streaming (arithmetic intensity
// ~4 FLOP/byte), so each row reduces to a traffic model
//   bytes(beta=0) = MK + KN + (1 + rfo) * MN     (write-allocate reads C
//   bytes(beta=2) = MK + KN + 2 * MN              unless streamed)
// at a calibrated effective bandwidth. `rfo` in [0,1] captures whether
// the library uses non-temporal stores for the beta=0 C write; it is
// fitted to the paper's beta=2 column and reported, making the
// library-to-library spread of the beta penalty (1.1x-1.7x) explicit.

#include <cstdio>

#include "common.hpp"
#include "util/table.hpp"

namespace {

constexpr double kM = 8192, kN = 8192, kK = 4;
constexpr double kIters = 100;
constexpr double kElem = 4.0;  // f32

struct Row {
  const char* library;
  const char* device;
  double paper_b0_ms;  // alpha=1 beta=0
  double paper_a4_ms;  // alpha=4 beta=0
  double paper_b2_ms;  // alpha=1 beta=2
  double eff_bw_gbs;   // calibrated streaming bandwidth
  double rfo;          // write-allocate fraction of the beta=0 C write
};

double bytes_per_iter(double rfo, bool beta_zero) {
  const double c_traffic = beta_zero ? (1.0 + rfo) : 2.0;
  return kElem * (kM * kK + kK * kN + c_traffic * kM * kN);
}

double model_ms(const Row& row, bool beta_zero) {
  return kIters * bytes_per_iter(row.rfo, beta_zero) /
         (row.eff_bw_gbs * 1e9) * 1e3;
}

}  // namespace

int main() {
  using namespace blob;
  bench::banner(
      "Table I -- SGEMM run-times (100 iterations), M=N=8192, K=4, "
      "varying alpha/beta");
  bench::paper_reference({
      "cuBLAS/A100:      39.53 / 39.23 / 62.02   ms",
      "rocBLAS/MI250X:  188.64 / 188.35 / 210.46 ms",
      "oneMKL/PVC-1550:  33.34 / 32.99 / 57.78   ms",
      "oneMKL/Xeon-8468: 2307  / 2350  / 3137    ms (single thread)",
      "AOCL/EPYC-7543P:  6833  / 6757  / 9175    ms (single thread)",
      "Findings: beta=0 is 1.2x-1.7x faster than beta=2; alpha's value",
      "changes nothing (average 1.0% difference).",
  });

  // eff_bw fitted to the paper's beta=0 column; rfo to the beta=2 ratio.
  const Row rows[] = {
      {"cuBLAS 24.3", "A100 40GB SXM", 39.53, 39.23, 62.02, 864.0, 0.27},
      {"rocBLAS 5.2.3", "MI250X", 188.64, 188.35, 210.46, 255.0, 0.79},
      {"oneMKL 2024.1", "Max 1550 (both tiles)", 33.34, 32.99, 57.78,
       935.0, 0.16},
      {"oneMKL 2024.1", "Xeon 8468 (1 thread)", 2307.38, 2350.17, 3137.10,
       17.1, 0.47},
      {"AOCL 4.2", "EPYC 7543P (1 thread)", 6833.02, 6756.72, 9175.32, 5.85,
       0.49},
  };

  util::TextTable table(
      {"Library", "Device", "a1 b0 ms (model/paper)",
       "a4 b0 ms (model/paper)", "a1 b2 ms (model/paper)",
       "b2/b0 (model vs paper)", "rfo"},
      {util::Align::Left, util::Align::Left, util::Align::Right,
       util::Align::Right, util::Align::Right, util::Align::Right,
       util::Align::Right});
  for (const Row& row : rows) {
    const double b0 = model_ms(row, true);
    const double a4 = b0;  // alpha never enters any library's runtime
    const double b2 = model_ms(row, false);
    table.row({row.library, row.device,
               util::strfmt("%.1f / %.1f", b0, row.paper_b0_ms),
               util::strfmt("%.1f / %.1f", a4, row.paper_a4_ms),
               util::strfmt("%.1f / %.1f", b2, row.paper_b2_ms),
               util::strfmt("%.2fx vs %.2fx", b2 / b0,
                            row.paper_b2_ms / row.paper_b0_ms),
               util::strfmt("%.2f", row.rfo)});
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "\nTakeaways reproduced: (a) alpha's value changes nothing; (b) the\n"
      "beta=0 optimization is real on every library; (c) the size of the\n"
      "beta penalty varies with each library's store strategy (rfo).\n");
  return 0;
}
