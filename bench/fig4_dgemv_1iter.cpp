// Fig. 4: Square DGEMV performance (1 iteration) on all three systems.
//
// The figure motivates a key caveat of the offload threshold: on DAWN and
// Isambard-AI there is a considerable range of sizes where the GPU beats
// the CPU (thanks to a CPU performance drop) even though no *threshold*
// exists — the GPU win is not persistent to the end of the sweep. On
// LUMI the CPU wins everywhere at 1 iteration by a narrowing margin.

#include "common.hpp"
#include "core/report.hpp"

int main() {
  using namespace blob;
  bench::banner("Fig. 4 -- Square DGEMV performance (1 iteration)");
  bench::paper_reference({
      "DAWN / Isambard-AI: a CPU drop opens a mid-range window where the",
      "GPU wins, but the CPU recovers before the end of the sweep -> no",
      "offload threshold despite GPU wins. LUMI: CPU always ahead at one",
      "iteration, margin narrowing with size.",
  });

  const auto& type = core::problem_type_by_id("gemv_square");
  for (const char* system : {"dawn", "lumi", "isambard-ai"}) {
    const auto profile = profile::by_name(system);
    const auto series = bench::figure_series(
        profile, type, model::Precision::F64, /*iterations=*/1,
        /*s_max=*/4096, /*stride=*/256);
    std::fputs(core::render_series(
                   "DGEMV GFLOP/s vs M=N (" + profile.name + ", 1 iter)",
                   {"cpu", "gpu-once", "gpu-usm"}, series.sizes,
                   {series.cpu, series.gpu_once, series.gpu_usm})
                   .c_str(),
               stdout);
  }
  return 0;
}
