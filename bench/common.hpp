#pragma once
// Shared helpers for the table/figure reproduction benches.
//
// Every bench regenerates one table or figure from the paper on the
// simulated system profiles and prints our measured values next to the
// paper's published ones so the reader can compare shapes directly.

#include <cstdint>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "core/sim_backend.hpp"
#include "core/sweep.hpp"
#include "sysprofile/profile.hpp"
#include "util/strfmt.hpp"

namespace blob::bench {

/// The iteration counts the paper's evaluation uses (§IV).
inline const std::vector<std::int64_t>& paper_iteration_counts() {
  static const std::vector<std::int64_t> kIters = {1, 8, 32, 64, 128};
  return kIters;
}

/// Sweep one problem type at both precisions for one iteration count on
/// one system and return the threshold entry (Once/Always/USM x f32/f64).
core::ThresholdEntry sweep_entry(const profile::SystemProfile& system,
                                 const core::ProblemType& type,
                                 std::int64_t iterations,
                                 std::int64_t s_max = 4096,
                                 std::int64_t stride = 1);

/// All paper iteration counts for one (system, type).
std::vector<core::ThresholdEntry> sweep_entries(
    const profile::SystemProfile& system, const core::ProblemType& type,
    std::int64_t s_max = 4096, std::int64_t stride = 1);

/// GFLOP/s series for figures: run a sweep and extract the CPU series
/// and the GPU series for each transfer mode.
struct FigureSeries {
  std::vector<std::int64_t> sizes;
  std::vector<double> cpu;
  std::vector<double> gpu_once;
  std::vector<double> gpu_always;
  std::vector<double> gpu_usm;
};

FigureSeries figure_series(const profile::SystemProfile& system,
                           const core::ProblemType& type,
                           model::Precision precision, std::int64_t iterations,
                           std::int64_t s_max = 4096, std::int64_t stride = 32);

/// Print a section banner.
void banner(const std::string& title);

/// Print a short paper-reference block (verbatim expectations).
void paper_reference(const std::vector<std::string>& lines);

}  // namespace blob::bench
