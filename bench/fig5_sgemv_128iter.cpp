// Fig. 5: Square SGEMV performance (128 iterations) on Isambard-AI and
// DAWN.
//
// Isambard-AI has very steep Transfer-Once/USM curves from small sizes
// (the GH200's NVLink-C2C) and a CPU drop at ~{256,256}; DAWN's GPU
// curves are shallow and slowly increasing, so the CPU library keeps its
// lead until ~4080.

#include "common.hpp"
#include "core/report.hpp"

int main() {
  using namespace blob;
  bench::banner(
      "Fig. 5 -- Square SGEMV performance (128 iterations), Isambard-AI "
      "vs DAWN");
  bench::paper_reference({
      "Isambard-AI: steep GPU ramps; CPU drop at ~256 pins the offload",
      "threshold at {256, 256}. DAWN: shallow, slowly-increasing GPU",
      "curves against a strong CPU -> threshold stays ~{4080, 4080}.",
  });

  const auto& type = core::problem_type_by_id("gemv_square");
  for (const char* system : {"isambard-ai", "dawn"}) {
    const auto profile = profile::by_name(system);
    const auto series = bench::figure_series(
        profile, type, model::Precision::F32, /*iterations=*/128,
        /*s_max=*/4096, /*stride=*/128);
    std::fputs(core::render_series(
                   "SGEMV GFLOP/s vs M=N (" + profile.name + ", 128 iters)",
                   {"cpu", "gpu-once", "gpu-usm"}, series.sizes,
                   {series.cpu, series.gpu_once, series.gpu_usm})
                   .c_str(),
               stdout);
  }
  return 0;
}
