// export_markdown: regenerate the EXPERIMENTS.md "ours" tables.
//
// Prints the measured Table III and Table IV blocks in the exact
// markdown layout EXPERIMENTS.md uses, so the document can be refreshed
// mechanically after any recalibration:
//   ./build/bench/export_markdown > /tmp/ours.md

#include <cstdio>
#include <map>
#include <string>

#include "common.hpp"

namespace {

using namespace blob;

std::string cell(const core::ThresholdEntry& e, std::size_t mode) {
  return core::threshold_value_string(e.f32[mode]) + ":" +
         core::threshold_value_string(e.f64[mode]);
}

}  // namespace

int main() {
  using namespace blob;
  const std::vector<std::int64_t> iters = {1, 8, 32, 128};

  // ------------------------------------------------------- Table III
  std::printf("## Table III (ours)\n\n");
  std::printf(
      "| | DAWN Once | DAWN Always | DAWN USM | LUMI Once | LUMI Always | "
      "LUMI USM | Isam. Once | Isam. Always | Isam. USM |\n");
  std::printf("|---|---|---|---|---|---|---|---|---|---|\n");
  const auto& gemm = core::problem_type_by_id("gemm_square");
  std::map<std::string, std::map<std::int64_t, core::ThresholdEntry>> gemm_rows;
  for (const char* system : {"dawn", "lumi", "isambard-ai"}) {
    for (std::int64_t i : iters) {
      gemm_rows[system][i] =
          bench::sweep_entry(profile::by_name(system), gemm, i);
    }
  }
  for (std::int64_t i : iters) {
    const auto& d = gemm_rows["dawn"][i];
    const auto& l = gemm_rows["lumi"][i];
    const auto& s = gemm_rows["isambard-ai"][i];
    std::printf("| i=%lld | %s | %s | %s | %s | %s | %s | %s | %s | %s |\n",
                static_cast<long long>(i), cell(d, 0).c_str(),
                cell(d, 1).c_str(), cell(d, 2).c_str(), cell(l, 0).c_str(),
                cell(l, 1).c_str(), cell(l, 2).c_str(), cell(s, 0).c_str(),
                cell(s, 1).c_str(), cell(s, 2).c_str());
  }

  // -------------------------------------------------------- Table IV
  std::printf("\n## Table IV (ours, Transfer-Once)\n\n");
  std::printf("| | DAWN | LUMI | Isambard-AI |\n|---|---|---|---|\n");
  const auto& gemv = core::problem_type_by_id("gemv_square");
  const std::vector<std::int64_t> gemv_iters = {1, 8, 32, 64, 128};
  for (std::int64_t i : gemv_iters) {
    std::printf("| i=%lld |", static_cast<long long>(i));
    for (const char* system : {"dawn", "lumi", "isambard-ai"}) {
      const auto e = bench::sweep_entry(profile::by_name(system), gemv, i);
      std::printf(" %s |", cell(e, 0).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
