// Table IV: Square SGEMV:DGEMV (M=N) GPU offload thresholds for each
// data transfer type and HPC system.

#include "common.hpp"

int main() {
  using namespace blob;
  bench::banner(
      "Table IV -- Square GEMV (M=N) offload thresholds [f32 : f64]");
  bench::paper_reference({
      "DAWN        i=1:   --:--     | --:-- | --:--",
      "DAWN        i=8:   4089:3840 | --:-- | --:--",
      "DAWN        i=32:  4081:3065 | --:-- | 4089:3521",
      "DAWN        i=128: 4081:3321 | --:-- | 4089:3481",
      "LUMI        i=8:   952:1197  | --:-- | --:--",
      "LUMI        i=32:  569:617   | --:-- | 2129:1885",
      "LUMI        i=128: 465:545   | --:-- | 754:909",
      "Isambard-AI i=8:   256:256   | --:-- | --:--",
      "Isambard-AI i=32+: 256:~250  | --:-- | 256:~250",
      "Shape checks: Transfer-Always NEVER yields a GEMV threshold on any",
      "system; no system yields one at 1 iteration; DAWN stays ~4080",
      "regardless of iterations; LUMI decreases with iterations;",
      "Isambard pins at ~256 (the CPU drop).",
  });

  const auto& type = core::problem_type_by_id("gemv_square");
  for (const char* system : {"dawn", "lumi", "isambard-ai"}) {
    const auto profile = profile::by_name(system);
    const auto entries = bench::sweep_entries(profile, type);
    std::fputs(
        core::render_threshold_table(profile.name, type, entries).c_str(),
        stdout);
  }
  return 0;
}
