// Extension (paper §V, precision as a tunable): Ozaki-style emulated
// fp64 GEMM as a third routing arm.
//
// The paper's offload threshold treats precision as fixed: an fp64 GEMM
// either stays on the CPU or crosses the link to the GPU's native DGEMM.
// On parts where fp32 throughput is a large multiple of fp64 (consumer
// silicon, Intel Max-class ratios), an fp64 GEMM can instead run as a
// small number of fp32 slice products (split-representation emulation)
// whose error is bounded and declared. That makes precision a ROUTING
// dimension: for calls that carry a non-exact error budget, the
// dispatcher weighs cpu / gpu-native / gpu-emulated and the offload
// threshold becomes a three-way frontier.
//
// Part 1 sweeps square f64 GEMM sizes per system profile and prints the
// three-way modelled costs: the emulated arm wins exactly where compute
// (not the link) binds AND peak_f32/peak_f64 exceeds the slice-product
// count. Part 2 replays an f64 GEMM mix with a relaxed budget through
// the live dispatcher and reports regret against the three-arm oracle.
//
// With a JSON output path as argv[1], the sweep and replay results are
// also written as one document (scripts/bench_emulated.sh gates
// artifacts/BENCH_emulated.json on it).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/op_desc.hpp"
#include "dispatch/dispatcher.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/strfmt.hpp"
#include "util/table.hpp"

namespace {

using namespace blob;

constexpr int kSweepSizes[] = {128, 192, 256, 384, 512, 768, 1024, 1536};

struct SweepPoint {
  int n = 0;
  double cpu_s = 0.0;
  double gpu_s = 0.0;
  double emu_s = 0.0;
  const char* winner = "cpu";
};

std::vector<SweepPoint> sweep_system(const std::string& system) {
  dispatch::DispatcherConfig cfg;
  cfg.profile = profile::by_name(system);
  cfg.cpu_threads = 2;
  cfg.trace_capacity = 8;
  dispatch::Dispatcher disp(cfg);

  std::vector<SweepPoint> points;
  for (const int n : kSweepSizes) {
    core::OpDesc desc = core::OpDesc::gemm(
        model::Precision::F64, blas::Transpose::No, blas::Transpose::No, n,
        n, n, 0, 0, 0, /*alpha_one=*/true, /*beta_zero=*/true, cfg.mode);
    desc.budget = core::ErrorBudget::relaxed();
    const auto costs = disp.modelled_costs(desc);
    SweepPoint p;
    p.n = n;
    p.cpu_s = costs.cpu_s;
    p.gpu_s = costs.gpu_s;
    p.emu_s = costs.emu_s;
    p.winner = (p.emu_s < p.cpu_s && p.emu_s < p.gpu_s) ? "emu"
               : p.gpu_s < p.cpu_s                      ? "gpu"
                                                        : "cpu";
    points.push_back(p);
  }
  return points;
}

// -- part 2: live three-arm replay ------------------------------------------

struct ReplayShape {
  int n;
  double weight;
};

// f64 GEMM mix spanning the three-way frontier: small shapes stay CPU,
// mid shapes sit near the native crossover, large squares are where the
// emulated arm can beat native DGEMM on wide-ratio parts. Each shape
// lands in its own log2-FLOPs bucket — two shapes with OPPOSITE oracle
// arms sharing a bucket (e.g. 512 and 640 both hit bucket 28) would cap
// how close any per-bucket router can get to the per-call oracle.
constexpr ReplayShape kReplayShapes[] = {
    {64, 0.35}, {192, 0.20}, {320, 0.20}, {512, 0.15}, {768, 0.10},
};

struct ReplayResult {
  double routed_s = 0.0;   ///< post-warmup routed seconds
  double oracle3_s = 0.0;  ///< post-warmup per-call min(cpu, gpu, emu)
  double oracle2_s = 0.0;  ///< post-warmup min(cpu, gpu) — no emulated arm
  std::uint64_t emulated_routed = 0;
  std::uint64_t calls = 0;
  std::uint64_t warmup = 0;
};

ReplayResult replay_system(const std::string& system, int calls,
                           int warmup) {
  dispatch::DispatcherConfig cfg;
  cfg.profile = profile::by_name(system);
  cfg.cpu_threads = 2;
  cfg.trace_capacity = 64;
  dispatch::Dispatcher disp(cfg);

  const int max_n = kReplayShapes[std::size(kReplayShapes) - 1].n;
  const auto max_len = static_cast<std::size_t>(max_n) *
                       static_cast<std::size_t>(max_n);
  std::vector<double> a(max_len), b(max_len), c(max_len);
  util::Xoshiro256 rng(0xe3a1 ^ std::hash<std::string>{}(system));
  for (auto& v : a) v = rng.uniform(-1.0, 1.0);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);

  ReplayResult result;
  result.calls = static_cast<std::uint64_t>(calls);
  result.warmup = static_cast<std::uint64_t>(warmup);
  // Regret is judged on the post-warmup window only, like the two-arm
  // regret bench: the early calls pay the unavoidable exploration tax
  // (the emulated arm must be probed before it can be trusted), and
  // folding them in would measure the explorer, not the learned policy.
  double warmup_routed_s = 0.0;
  double warmup_oracle3_s = 0.0;
  double warmup_oracle2_s = 0.0;
  for (int i = 0; i < calls; ++i) {
    if (i == warmup) {
      const auto stats = disp.stats();
      warmup_routed_s = stats.cpu_seconds + stats.gpu_seconds;
      warmup_oracle3_s = result.oracle3_s;
      warmup_oracle2_s = result.oracle2_s;
    }
    double pick = rng.next_double();
    std::size_t si = 0;
    for (; si + 1 < std::size(kReplayShapes); ++si) {
      if (pick < kReplayShapes[si].weight) break;
      pick -= kReplayShapes[si].weight;
    }
    const int n = kReplayShapes[si].n;
    core::OpDesc desc = core::OpDesc::gemm(
        model::Precision::F64, blas::Transpose::No, blas::Transpose::No, n,
        n, n, 0, 0, 0, /*alpha_one=*/true, /*beta_zero=*/true, cfg.mode);
    desc.budget = core::ErrorBudget::relaxed();
    const auto costs = disp.modelled_costs(desc);
    result.oracle3_s += std::min({costs.cpu_s, costs.gpu_s, costs.emu_s});
    result.oracle2_s += std::min(costs.cpu_s, costs.gpu_s);
    disp.run_gemm<double>(desc, 1.0, a.data(), b.data(), 0.0, c.data());
  }
  const auto stats = disp.stats();
  result.routed_s =
      stats.cpu_seconds + stats.gpu_seconds - warmup_routed_s;
  result.oracle3_s -= warmup_oracle3_s;
  result.oracle2_s -= warmup_oracle2_s;
  result.emulated_routed = stats.emulated_routed;
  return result;
}

std::string pct(double value, double baseline) {
  if (baseline <= 0.0) return "--";
  return util::strfmt("%+.1f%%", 100.0 * (value - baseline) / baseline);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace blob;
  bench::banner(
      "Extension -- emulated fp64 GEMM (fp32 slices) as a third routing "
      "arm");
  bench::paper_reference({
      "The paper's threshold (SIII-D) picks between CPU and native GPU",
      "fp64. Where peak_f32/peak_f64 exceeds the slice-product count,",
      "running the fp64 GEMM as bounded-error fp32 slice products beats",
      "both native arms for compute-bound shapes; calls opt in with an",
      "error budget, so exact traffic never sees the emulated path.",
  });

  const char* const systems[] = {"dawn", "isambard-ai", "lumi",
                                 "mi300a-apu"};

  std::printf("\n-- modelled three-way cost, square f64 GEMM, relaxed "
              "budget (1 fp32 slice) --\n");
  std::vector<std::vector<SweepPoint>> sweeps;
  for (const char* system : systems) {
    sweeps.push_back(sweep_system(system));
    util::TextTable table({"n", "cpu (s)", "gpu native (s)",
                           "gpu emulated (s)", "winner"},
                          {util::Align::Right, util::Align::Right,
                           util::Align::Right, util::Align::Right,
                           util::Align::Left});
    for (const SweepPoint& p : sweeps.back()) {
      table.row({std::to_string(p.n), util::strfmt("%.3e", p.cpu_s),
                 util::strfmt("%.3e", p.gpu_s),
                 util::strfmt("%.3e", p.emu_s), p.winner});
    }
    std::printf("\n%s:\n%s", system, table.str().c_str());
  }

  constexpr int kReplayCalls = 400;
  constexpr int kReplayWarmup = 150;
  std::printf(
      "\n-- live replay, f64 GEMM mix under a relaxed budget (%d calls, "
      "regret over the %d post-warmup calls) --\n",
      kReplayCalls, kReplayCalls - kReplayWarmup);
  util::TextTable rt({"system", "3-arm oracle (s)", "routed (steady)",
                      "emulated routed", "2-arm oracle penalty"},
                     {util::Align::Left, util::Align::Right,
                      util::Align::Right, util::Align::Right,
                      util::Align::Right});
  std::vector<ReplayResult> replays;
  for (const char* system : systems) {
    replays.push_back(replay_system(system, kReplayCalls, kReplayWarmup));
    const ReplayResult& r = replays.back();
    rt.row({system, util::strfmt("%.4e", r.oracle3_s),
            pct(r.routed_s, r.oracle3_s),
            util::strfmt("%llu/%llu",
                         static_cast<unsigned long long>(r.emulated_routed),
                         static_cast<unsigned long long>(r.calls)),
            pct(r.oracle2_s, r.oracle3_s)});
  }
  std::fputs(rt.str().c_str(), stdout);
  std::printf(
      "\nReading: the emulated arm wins where the fp32:fp64 peak ratio\n"
      "exceeds the slice-product count (1 at a relaxed budget) and the\n"
      "shape is compute-bound. Max-class parts (dawn, isambard-ai, ~2:1)\n"
      "open a decisive win range at mid-to-large squares — a substantial\n"
      "2-arm oracle penalty. Near-1:1 parts (lumi, mi300a-apu) see only\n"
      "hairline (<1%%) wins, so dropping the arm there costs almost\n"
      "nothing. '2-arm oracle penalty' is what the best possible router\n"
      "WITHOUT the emulated arm would pay over the three-arm oracle.\n");

  if (argc > 1) {
    std::ofstream out(argv[1]);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", argv[1]);
      return 1;
    }
    util::JsonWriter json(out, /*pretty=*/true);
    json.begin_object();
    json.key("systems").begin_array();
    for (std::size_t i = 0; i < std::size(systems); ++i) {
      json.begin_object();
      json.kv("system", systems[i]);
      json.key("sweep").begin_array();
      for (const SweepPoint& p : sweeps[i]) {
        json.begin_object();
        json.kv("n", p.n);
        json.kv("cpu_s", p.cpu_s);
        json.kv("gpu_s", p.gpu_s);
        json.kv("emu_s", p.emu_s);
        json.kv("winner", p.winner);
        json.end_object();
      }
      json.end_array();
      const ReplayResult& r = replays[i];
      json.key("replay").begin_object();
      json.kv("calls", static_cast<std::int64_t>(r.calls));
      json.kv("warmup", static_cast<std::int64_t>(r.warmup));
      json.kv("routed_s", r.routed_s);
      json.kv("oracle3_s", r.oracle3_s);
      json.kv("oracle2_s", r.oracle2_s);
      json.kv("emulated_routed",
              static_cast<std::int64_t>(r.emulated_routed));
      if (r.oracle3_s > 0.0) {
        json.kv("regret_vs_oracle3", r.routed_s / r.oracle3_s - 1.0);
      }
      json.end_object();
      json.end_object();
    }
    json.end_array();
    json.end_object();
    out << "\n";
    std::printf("\nsweep JSON written to %s\n", argv[1]);
  }
  return 0;
}
