// Extension (related work, §II): the ENERGY offload threshold.
//
// Favaro et al. observed accelerators can be more energy efficient even
// when slower; Torres et al. compared time *and* energy for SGEMM. This
// bench computes both thresholds — the smallest square GEMM from which
// the GPU persistently wins on time, and on energy — on every system.
// The two can disagree in either direction: a busy GPU delivers more
// FLOPs per joule at scale, but its high board power makes *small* fast
// kernels more expensive in energy than a barely-slower CPU run.

#include <optional>

#include "common.hpp"
#include "core/energy.hpp"
#include "core/threshold.hpp"
#include "util/table.hpp"

namespace {

using namespace blob;

struct Pair {
  std::string time_threshold;
  std::string energy_threshold;
};

Pair thresholds(const profile::SystemProfile& prof, std::int64_t iterations) {
  std::vector<core::ThresholdSample> by_time;
  std::vector<core::ThresholdSample> by_energy;
  for (std::int64_t s = 2; s <= 2048; s += 2) {
    core::Problem p;
    p.op = core::KernelOp::Gemm;
    p.precision = model::Precision::F32;
    p.dims = {s, s, s};
    const auto e = core::estimate_energy(prof, p, iterations,
                                         core::TransferMode::Once);
    by_time.push_back(
        {s, core::Dims{s, s, s}, e.cpu_seconds, e.gpu_seconds});
    by_energy.push_back(
        {s, core::Dims{s, s, s}, e.cpu_joules, e.gpu_joules});
  }
  return {core::threshold_value_string(core::detect_threshold(by_time)),
          core::threshold_value_string(core::detect_threshold(by_energy))};
}

}  // namespace

int main() {
  using namespace blob;
  bench::banner(
      "Extension -- time vs ENERGY offload thresholds (square SGEMM, "
      "Transfer-Once)");
  bench::paper_reference({
      "Related work (§II): Favaro et al. found accelerators more energy",
      "efficient even when slower, so time and energy verdicts can",
      "disagree in either direction. Findings here: on systems whose GPU",
      "burns far more busy power than the socket (GH200, MI300A) the",
      "ENERGY threshold sits well ABOVE the time threshold -- a band of",
      "sizes where offloading saves time but costs joules. On LUMI at one",
      "call the opposite (Favaro) band appears: energy crosses first.",
  });

  util::TextTable table(
      {"system", "iterations", "time threshold", "energy threshold"},
      {util::Align::Left, util::Align::Right, util::Align::Right,
       util::Align::Right});
  for (const char* system : {"dawn", "lumi", "isambard-ai", "mi300a-apu"}) {
    const auto prof = profile::by_name(system);
    for (std::int64_t iters : {1LL, 32LL}) {
      const auto p = thresholds(prof, iters);
      table.row({system, std::to_string(iters), p.time_threshold,
                 p.energy_threshold});
    }
  }
  std::fputs(table.str().c_str(), stdout);

  // One concrete disagreement example.
  core::Problem p;
  p.op = core::KernelOp::Gemm;
  p.precision = model::Precision::F32;
  p.dims = {256, 256, 256};
  const auto e =
      core::estimate_energy(profile::by_name("dawn"), p, 1,
                            core::TransferMode::Once);
  std::printf(
      "\nExample (DAWN, 256^3 SGEMM, 1 call): CPU %.2f ms / %.2f J vs GPU "
      "%.2f ms / %.2f J -> %s\n",
      e.cpu_seconds * 1e3, e.cpu_joules, e.gpu_seconds * 1e3, e.gpu_joules,
      e.gpu_more_efficient() && e.gpu_seconds > e.cpu_seconds
          ? "slower on the GPU but cheaper in joules (the Favaro regime)"
          : (e.gpu_more_efficient() ? "GPU wins both" : "CPU wins both"));
  return 0;
}
