// Fig. 3: Square SGEMM CPU performance on Isambard-AI for different CPU
// libraries and configurations (first 192 problem sizes, 1 and 8 iters).
//
// The story: NVPL uses all 72 threads at every size, so tiny problems pay
// the full fork/join cost; ArmPL scales its thread count with size and a
// single NVPL thread avoids the cost entirely — both beat 72-thread NVPL
// at small sizes.

#include "common.hpp"
#include "core/flops.hpp"
#include "core/report.hpp"
#include "core/sim_backend.hpp"

namespace {

std::vector<double> cpu_series(const blob::profile::SystemProfile& profile,
                               std::int64_t iterations,
                               const std::vector<std::int64_t>& sizes) {
  blob::core::SimBackend backend(profile, /*noise_override=*/0.0);
  std::vector<double> out;
  for (std::int64_t s : sizes) {
    blob::core::Problem problem;
    problem.op = blob::core::KernelOp::Gemm;
    problem.precision = blob::model::Precision::F32;
    problem.dims = {s, s, s};
    const double t = backend.cpu_time(problem, iterations);
    out.push_back(blob::core::gflops(problem, iterations, t));
  }
  return out;
}

}  // namespace

int main() {
  using namespace blob;
  bench::banner(
      "Fig. 3 -- Square SGEMM CPU performance on Isambard-AI: NVPL-72t "
      "vs ArmPL vs NVPL-1t (first 192 sizes)");
  bench::paper_reference({
      "At 1 iteration both ArmPL and single-threaded NVPL perform",
      "considerably better than 72-thread NVPL for these small sizes;",
      "NVPL uses every thread at every size, ArmPL scales threads with",
      "problem size. The same ordering holds at 8 iterations.",
  });

  std::vector<std::int64_t> sizes;
  for (std::int64_t s = 8; s <= 192; s += 8) sizes.push_back(s);

  for (std::int64_t iters : {1LL, 8LL}) {
    const auto nvpl = cpu_series(profile::by_name("isambard-ai"), iters, sizes);
    const auto armpl =
        cpu_series(profile::by_name("isambard-ai-armpl"), iters, sizes);
    const auto nvpl1t =
        cpu_series(profile::by_name("isambard-ai-nvpl-1t"), iters, sizes);
    std::fputs(
        core::render_series(
            "CPU SGEMM GFLOP/s, iterations=" + std::to_string(iters),
            {"nvpl-72t", "armpl", "nvpl-1t"}, sizes, {nvpl, armpl, nvpl1t})
            .c_str(),
        stdout);
  }
  return 0;
}
