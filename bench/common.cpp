#include "common.hpp"

#include <cstdio>

#include "obs/obs.hpp"

namespace blob::bench {

core::ThresholdEntry sweep_entry(const profile::SystemProfile& system,
                                 const core::ProblemType& type,
                                 std::int64_t iterations, std::int64_t s_max,
                                 std::int64_t stride) {
  core::SimBackend backend(system);
  core::SweepConfig cfg;
  cfg.s_min = 1;
  cfg.s_max = s_max;
  cfg.stride = stride;
  cfg.iterations = iterations;

  cfg.precision = model::Precision::F32;
  const auto f32 = core::run_sweep(backend, type, cfg);
  cfg.precision = model::Precision::F64;
  const auto f64 = core::run_sweep(backend, type, cfg);
  return core::make_entry(f32, f64);
}

std::vector<core::ThresholdEntry> sweep_entries(
    const profile::SystemProfile& system, const core::ProblemType& type,
    std::int64_t s_max, std::int64_t stride) {
  std::vector<core::ThresholdEntry> entries;
  for (std::int64_t iters : paper_iteration_counts()) {
    entries.push_back(sweep_entry(system, type, iters, s_max, stride));
  }
  return entries;
}

FigureSeries figure_series(const profile::SystemProfile& system,
                           const core::ProblemType& type,
                           model::Precision precision,
                           std::int64_t iterations, std::int64_t s_max,
                           std::int64_t stride) {
  core::SimBackend backend(system);
  core::SweepConfig cfg;
  cfg.s_min = stride;  // figures start above the degenerate sizes
  cfg.s_max = s_max;
  cfg.stride = stride;
  cfg.iterations = iterations;
  cfg.precision = precision;
  const auto result = core::run_sweep(backend, type, cfg);

  FigureSeries out;
  for (const auto& sample : result.samples) {
    out.sizes.push_back(sample.s);
    out.cpu.push_back(sample.cpu_gflops);
    out.gpu_once.push_back(sample.gpu_gflops[0]);
    out.gpu_always.push_back(sample.gpu_gflops[1]);
    out.gpu_usm.push_back(sample.gpu_gflops[2]);
  }
  return out;
}

void banner(const std::string& title) {
  // Every bench main prints a banner first, so this is the one shared
  // entry point where BLOB_TRACE / BLOB_METRICS can take effect.
  obs::init_from_env();
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

void paper_reference(const std::vector<std::string>& lines) {
  std::printf("--- paper reference ---------------------------------------\n");
  for (const auto& line : lines) std::printf("  %s\n", line.c_str());
  std::printf("------------------------------------------------------------\n");
}

}  // namespace blob::bench
