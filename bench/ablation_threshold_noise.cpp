// Ablation: threshold-detector robustness to timing noise.
//
// §III-D: "To account for any momentary drops in GPU performance that
// are due to abnormal system behaviour or noise, the previous and
// current problem size's performance is taken into consideration." This
// ablation re-runs the square-GEMM threshold detection under increasing
// injected log-normal noise and reports how far the detected threshold
// wanders from the noise-free value.

#include <cstdlib>

#include "common.hpp"
#include "core/report.hpp"
#include "core/sim_backend.hpp"
#include "util/table.hpp"

int main() {
  using namespace blob;
  bench::banner("Ablation -- offload-threshold stability under timing noise");
  bench::paper_reference({
      "The detector tolerates isolated single-size GPU dips; thresholds",
      "should stay near the noise-free value for realistic sigma and",
      "degrade gracefully beyond it.",
  });

  const auto base = profile::by_name("dawn");
  const auto& type = core::problem_type_by_id("gemm_square");

  util::TextTable table({"noise sigma", "seed", "Once f32", "Once f64"},
                        {util::Align::Right, util::Align::Right,
                         util::Align::Right, util::Align::Right});
  for (double sigma : {0.0, 0.02, 0.05, 0.10}) {
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      core::SimBackend backend(base, sigma, seed);
      core::SweepConfig cfg;
      cfg.iterations = 8;
      cfg.precision = model::Precision::F32;
      const auto f32 = core::run_sweep(backend, type, cfg);
      cfg.precision = model::Precision::F64;
      const auto f64 = core::run_sweep(backend, type, cfg);
      table.row({util::strfmt("%.2f", sigma), std::to_string(seed),
                 core::threshold_value_string(f32.thresholds[0]),
                 core::threshold_value_string(f64.thresholds[0])});
      if (sigma == 0.0) break;  // deterministic: one seed suffices
    }
  }
  std::fputs(table.str().c_str(), stdout);
  return 0;
}
