// Micro-benchmarks of the real CPU BLAS kernels on this host
// (google-benchmark). These measure the library itself, not the
// simulated systems; sizes are kept modest so the suite completes
// quickly on small machines.
//
// scripts/bench_gemm.sh runs the GEMM subset and writes
// artifacts/BENCH_gemm.json for cross-commit comparison.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "blas/batched.hpp"
#include "blas/gemm.hpp"
#include "blas/ref_blas.hpp"
#include "lapack/getrf.hpp"
#include "sparse/csr.hpp"
#include "sparse/spmv.hpp"
#include "blas/gemv.hpp"
#include "blas/level1.hpp"
#include "parallel/thread_pool.hpp"
#include "util/rng.hpp"

namespace {

using namespace blob;

template <typename T>
std::vector<T> random_vec(std::size_t len, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<T> v(len);
  for (auto& x : v) x = static_cast<T>(rng.uniform(-1.0, 1.0));
  return v;
}

template <typename T>
void BM_gemm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto a = random_vec<T>(static_cast<std::size_t>(n) * n, 1);
  auto b = random_vec<T>(static_cast<std::size_t>(n) * n, 2);
  std::vector<T> c(static_cast<std::size_t>(n) * n, T(0));
  for (auto _ : state) {
    blas::gemm_serial(blas::Transpose::No, blas::Transpose::No, n, n, n,
                      T(1), a.data(), n, b.data(), n, T(0), c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}

/// Collaborative-parallel GEMM over arbitrary (m, n, k, threads). The
/// pool is built once and the first call outside the timing loop grows
/// the packing arena, so iterations measure steady-state (zero-alloc)
/// behaviour — the regime the offload-threshold sweeps run in.
template <typename T>
void BM_gemm_parallel(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  const int k = static_cast<int>(state.range(2));
  const auto threads = static_cast<std::size_t>(state.range(3));
  parallel::ThreadPool pool(threads);
  auto a = random_vec<T>(static_cast<std::size_t>(m) * k, 1);
  auto b = random_vec<T>(static_cast<std::size_t>(k) * n, 2);
  std::vector<T> c(static_cast<std::size_t>(m) * n, T(0));
  blas::gemm(blas::Transpose::No, blas::Transpose::No, m, n, k, T(1),
             a.data(), m, b.data(), k, T(0), c.data(), m, &pool,
             threads);  // warm-up: size the arena outside the timed loop
  for (auto _ : state) {
    blas::gemm(blas::Transpose::No, blas::Transpose::No, m, n, k, T(1),
               a.data(), m, b.data(), k, T(0), c.data(), m, &pool, threads);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * m * n * k);
}

/// Transposed layouts through the packed engine: Args are {n, ta, tb}
/// with 0 = No, 1 = Yes. The packing kernels absorb the transpose, so
/// TN/NT/TT should track the NN rate — this is the regression watch for
/// the first-class transposed dispatch path.
template <typename T>
void BM_gemm_trans(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto ta = state.range(1) ? blas::Transpose::Yes : blas::Transpose::No;
  const auto tb = state.range(2) ? blas::Transpose::Yes : blas::Transpose::No;
  auto a = random_vec<T>(static_cast<std::size_t>(n) * n, 1);
  auto b = random_vec<T>(static_cast<std::size_t>(n) * n, 2);
  std::vector<T> c(static_cast<std::size_t>(n) * n, T(0));
  for (auto _ : state) {
    blas::gemm_serial(ta, tb, n, n, n, T(1), a.data(), n, b.data(), n, T(0),
                      c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}

template <typename T>
void BM_gemv(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto a = random_vec<T>(static_cast<std::size_t>(n) * n, 3);
  auto x = random_vec<T>(static_cast<std::size_t>(n), 4);
  std::vector<T> y(static_cast<std::size_t>(n), T(0));
  for (auto _ : state) {
    blas::gemv_serial(blas::Transpose::No, n, n, T(1), a.data(), n, x.data(),
                      1, T(0), y.data(), 1);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n);
}

template <typename T>
void BM_gemv_trans(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto a = random_vec<T>(static_cast<std::size_t>(n) * n, 3);
  auto x = random_vec<T>(static_cast<std::size_t>(n), 4);
  std::vector<T> y(static_cast<std::size_t>(n), T(0));
  for (auto _ : state) {
    blas::gemv_serial(blas::Transpose::Yes, n, n, T(1), a.data(), n,
                      x.data(), 1, T(0), y.data(), 1);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n);
}

/// True scalar GEMV baseline: the same column-axpy loop nest as
/// blas::ref::gemv but with auto-vectorization disabled, so the
/// BM_gemv / BM_gemv_scalar ratio isolates what the SIMD engine buys
/// over one-lane code (ref::gemv as compiled is auto-vectorized and
/// only measures the cache-blocking gap).
template <typename T>
#if !defined(__clang__) && defined(__GNUC__)
__attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#endif
void scalar_gemv(int m, int n, T alpha, const T* a, int lda, const T* x,
                 T beta, T* y) {
  for (int i = 0; i < m; ++i) y[i] = beta == T(0) ? T(0) : beta * y[i];
  for (int j = 0; j < n; ++j) {
    const T t = alpha * x[j];
    const T* col = a + static_cast<std::size_t>(j) * lda;
#if defined(__clang__)
#pragma clang loop vectorize(disable) interleave(disable)
#endif
    for (int i = 0; i < m; ++i) y[i] += t * col[i];
  }
}

template <typename T>
void BM_gemv_scalar(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto a = random_vec<T>(static_cast<std::size_t>(n) * n, 3);
  auto x = random_vec<T>(static_cast<std::size_t>(n), 4);
  std::vector<T> y(static_cast<std::size_t>(n), T(0));
  for (auto _ : state) {
    scalar_gemv(n, n, T(1), a.data(), n, x.data(), T(0), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n);
}

/// Library reference GEMV as compiled (auto-vectorized): the
/// cache-behaviour comparison point.
template <typename T>
void BM_gemv_reference(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto a = random_vec<T>(static_cast<std::size_t>(n) * n, 3);
  auto x = random_vec<T>(static_cast<std::size_t>(n), 4);
  std::vector<T> y(static_cast<std::size_t>(n), T(0));
  for (auto _ : state) {
    blas::ref::gemv(blas::Transpose::No, n, n, T(1), a.data(), n, x.data(),
                    1, T(0), y.data(), 1);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n);
}

/// Threaded GEMV over {m, n, trans, threads}. Tall-skinny transposed
/// shapes drive the split-m partial-y tree reduction; square NoTrans
/// shapes drive the row-split path. The warm-up call sizes the arena
/// so iterations measure steady-state behaviour.
template <typename T>
void BM_gemv_parallel(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  const auto ta = state.range(2) ? blas::Transpose::Yes : blas::Transpose::No;
  const auto threads = static_cast<std::size_t>(state.range(3));
  parallel::ThreadPool pool(threads);
  auto a = random_vec<T>(static_cast<std::size_t>(m) * n, 3);
  const int xlen = ta == blas::Transpose::No ? n : m;
  const int ylen = ta == blas::Transpose::No ? m : n;
  auto x = random_vec<T>(static_cast<std::size_t>(xlen), 4);
  std::vector<T> y(static_cast<std::size_t>(ylen), T(0));
  blas::gemv(ta, m, n, T(1), a.data(), m, x.data(), 1, T(0), y.data(), 1,
             &pool, threads);  // warm-up: size the arena outside the loop
  for (auto _ : state) {
    blas::gemv(ta, m, n, T(1), a.data(), m, x.data(), 1, T(0), y.data(), 1,
               &pool, threads);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * m * n);
}

/// Batched small GEMV through the pointer-array primitive — one
/// fork/join amortised over the whole batch (the admission queue's
/// coalescing payload). Args: {dim, batch, threads}.
template <typename T>
void BM_gemv_batched(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  const int batch = static_cast<int>(state.range(1));
  const auto threads = static_cast<std::size_t>(state.range(2));
  parallel::ThreadPool pool(threads);
  const std::size_t mat = static_cast<std::size_t>(dim) * dim;
  auto a = random_vec<T>(mat * batch, 3);
  auto x = random_vec<T>(static_cast<std::size_t>(dim) * batch, 4);
  std::vector<T> y(static_cast<std::size_t>(dim) * batch, T(0));
  std::vector<const T*> as(batch), xs(batch);
  std::vector<T*> ys(batch);
  for (int i = 0; i < batch; ++i) {
    as[i] = a.data() + mat * i;
    xs[i] = x.data() + static_cast<std::size_t>(dim) * i;
    ys[i] = y.data() + static_cast<std::size_t>(dim) * i;
  }
  for (auto _ : state) {
    blas::gemv_batched(blas::Transpose::No, dim, dim, T(1), as.data(), dim,
                       xs.data(), 1, T(0), ys.data(), 1, batch, &pool,
                       threads);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * dim * dim * batch);
}

template <typename T>
void BM_dot(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto x = random_vec<T>(static_cast<std::size_t>(n), 5);
  auto y = random_vec<T>(static_cast<std::size_t>(n), 6);
  for (auto _ : state) {
    T r = blas::dot(n, x.data(), 1, y.data(), 1);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n);
}

template <typename T>
void BM_axpy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto x = random_vec<T>(static_cast<std::size_t>(n), 7);
  std::vector<T> y(static_cast<std::size_t>(n), T(0));
  for (auto _ : state) {
    blas::axpy(n, T(1.5), x.data(), 1, y.data(), 1);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n);
}

template <typename T>
void BM_gemm_reference(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto a = random_vec<T>(static_cast<std::size_t>(n) * n, 1);
  auto b = random_vec<T>(static_cast<std::size_t>(n) * n, 2);
  std::vector<T> c(static_cast<std::size_t>(n) * n, T(0));
  for (auto _ : state) {
    blas::ref::gemm(blas::Transpose::No, blas::Transpose::No, n, n, n, T(1),
                    a.data(), n, b.data(), n, T(0), c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}

static void BM_spmv(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto m = sparse::CsrMatrix<double>::random(n, n, 0.01, 1);
  auto x = random_vec<double>(static_cast<std::size_t>(n), 2);
  std::vector<double> y(static_cast<std::size_t>(n), 0.0);
  for (auto _ : state) {
    sparse::spmv_serial(m, 1.0, x.data(), 0.0, y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * m.nnz());
}

static void BM_getrf(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto a0 = random_vec<double>(static_cast<std::size_t>(n) * n, 3);
  for (int i = 0; i < n; ++i) a0[i + static_cast<std::size_t>(i) * n] += 4.0;
  std::vector<int> ipiv;
  for (auto _ : state) {
    auto a = a0;
    lapack::getrf(n, a.data(), n, ipiv);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n / 3);
}

BENCHMARK_TEMPLATE(BM_gemm, float)->Arg(64)->Arg(128)->Arg(256);
BENCHMARK_TEMPLATE(BM_gemm, double)->Arg(64)->Arg(128)->Arg(256);
// Args: {m, n, k, threads}. Square at 1/2/4 threads, then the shapes the
// old N-split engine handled poorly: tall-skinny (huge m, tiny n — the
// paper's GEMV-adjacent regime) and small-N panels.
BENCHMARK_TEMPLATE(BM_gemm_parallel, double)
    ->Args({512, 512, 512, 1})
    ->Args({512, 512, 512, 2})
    ->Args({512, 512, 512, 4})
    ->Args({4096, 8, 512, 1})
    ->Args({4096, 8, 512, 4})
    ->Args({2048, 16, 256, 4})
    ->Args({8192, 4, 128, 4});
BENCHMARK_TEMPLATE(BM_gemm_parallel, float)
    ->Args({512, 512, 512, 4})
    ->Args({4096, 8, 512, 4});
// {n, trans_a, trans_b}: every transposed layout at one mid size, plus
// TN (the BLAS-idiomatic "A stored row-major" case) at a larger one.
BENCHMARK_TEMPLATE(BM_gemm_trans, float)
    ->Args({128, 1, 0})
    ->Args({128, 0, 1})
    ->Args({128, 1, 1})
    ->Args({256, 1, 0});
BENCHMARK_TEMPLATE(BM_gemm_trans, double)
    ->Args({128, 1, 0})
    ->Args({128, 0, 1})
    ->Args({128, 1, 1})
    ->Args({256, 1, 0});
BENCHMARK_TEMPLATE(BM_gemv, float)->Arg(256)->Arg(1024)->Arg(2048)->Arg(4096);
BENCHMARK_TEMPLATE(BM_gemv, double)->Arg(256)->Arg(1024)->Arg(2048);
// Transposed GEMV (y = A^T x): the strided-read kernel the GPU path now
// also exercises first-class.
BENCHMARK_TEMPLATE(BM_gemv_trans, float)->Arg(1024)->Arg(2048);
BENCHMARK_TEMPLATE(BM_gemv_trans, double)->Arg(1024)->Arg(2048);
// Scalar baseline at the same sizes: the serial SIMD engine is held to
// >= 2x over BM_gemv_scalar at the large sizes (1024/2048/4096).
BENCHMARK_TEMPLATE(BM_gemv_scalar, float)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(2048)
    ->Arg(4096);
BENCHMARK_TEMPLATE(BM_gemv_scalar, double)->Arg(1024)->Arg(2048);
BENCHMARK_TEMPLATE(BM_gemv_reference, float)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(2048)
    ->Arg(4096);
BENCHMARK_TEMPLATE(BM_gemv_reference, double)->Arg(256)->Arg(1024)->Arg(2048);
// {m, n, trans, threads}: square row-split scaling, then the tall-skinny
// transposed shapes that take the split-m partial-y reduction path.
BENCHMARK_TEMPLATE(BM_gemv_parallel, float)
    ->Args({4096, 4096, 0, 1})
    ->Args({4096, 4096, 0, 2})
    ->Args({4096, 4096, 0, 4})
    ->Args({32768, 8, 1, 1})
    ->Args({32768, 8, 1, 4});
BENCHMARK_TEMPLATE(BM_gemv_parallel, double)
    ->Args({2048, 2048, 0, 4})
    ->Args({32768, 8, 1, 1})
    ->Args({32768, 8, 1, 4})
    ->Args({65536, 4, 1, 4});
// {dim, batch, threads}: the coalesced small-GEMV payload.
BENCHMARK_TEMPLATE(BM_gemv_batched, float)
    ->Args({48, 256, 1})
    ->Args({48, 256, 4})
    ->Args({96, 128, 4});
BENCHMARK_TEMPLATE(BM_gemv_batched, double)
    ->Args({48, 256, 4})
    ->Args({96, 128, 4});
BENCHMARK_TEMPLATE(BM_dot, float)->Arg(1 << 16);
BENCHMARK_TEMPLATE(BM_dot, double)->Arg(1 << 16);
BENCHMARK_TEMPLATE(BM_axpy, float)->Arg(1 << 16);
BENCHMARK_TEMPLATE(BM_axpy, double)->Arg(1 << 16);
BENCHMARK_TEMPLATE(BM_gemm_reference, double)->Arg(128);
BENCHMARK(BM_spmv)->Arg(4096)->Arg(16384);
BENCHMARK(BM_getrf)->Arg(128)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
