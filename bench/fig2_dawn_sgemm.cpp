// Fig. 2: Square SGEMM performance (1 iteration) on DAWN.
//
// The figure's signature feature is a sharp CPU performance drop at
// {629, 629, 629} that gradually recovers as the problem grows, letting
// the GPU's Transfer-Once/USM curves cross the CPU curve near 629.

#include "common.hpp"
#include "core/report.hpp"

int main() {
  using namespace blob;
  bench::banner("Fig. 2 -- Square SGEMM performance (1 iteration) on DAWN");
  bench::paper_reference({
      "CPU GFLOP/s climbs, drops sharply at m=629, then gradually",
      "recovers; Transfer-Once/Always/USM GPU curves rise monotonically",
      "and overtake the CPU at ~630. Without the drop, the 1-iteration",
      "threshold would be much higher.",
  });

  const auto profile = profile::by_name("dawn");
  const auto series = bench::figure_series(
      profile, core::problem_type_by_id("gemm_square"),
      model::Precision::F32, /*iterations=*/1, /*s_max=*/4096,
      /*stride=*/64);
  std::fputs(core::render_series("SGEMM GFLOP/s vs M=N=K (DAWN, 1 iter)",
                                 {"cpu", "gpu-once", "gpu-always", "gpu-usm"},
                                 series.sizes,
                                 {series.cpu, series.gpu_once,
                                  series.gpu_always, series.gpu_usm})
                .c_str(),
            stdout);

  // Zoom on the drop with unit stride so the discontinuity is visible.
  const auto zoom = bench::figure_series(
      profile, core::problem_type_by_id("gemm_square"),
      model::Precision::F32, 1, /*s_max=*/700, /*stride=*/10);
  std::fputs(core::render_series("Zoom: the CPU drop at m=629",
                                 {"cpu", "gpu-once"}, zoom.sizes,
                                 {zoom.cpu, zoom.gpu_once})
                .c_str(),
            stdout);
  return 0;
}
