// Extension: does an MI300A-class APU finish what the GH200 started?
//
// The paper's introduction motivates the study with SoC designs, naming
// both the GH200 (evaluated) and "AMD's MI300A, with a single, unified
// address space ... at a peak bandwidth of 5.3 TB/s" (§I, not
// evaluated). This bench runs the full threshold methodology on an
// MI300A-like profile next to the three paper systems. Prediction from
// the paper's conclusion: on such a device "it [is] very rare to
// encounter a GEMM or GEMV problem that would not benefit from GPU
// acceleration" — thresholds should be tiny everywhere, including for
// GEMV, and the transfer type should barely matter.

#include "common.hpp"
#include "core/report.hpp"
#include "util/table.hpp"

int main() {
  using namespace blob;
  bench::banner(
      "Extension -- offload thresholds on an MI300A-like unified-memory "
      "APU");
  bench::paper_reference({
      "Paper §I/§V: tightly-integrated SoCs change the GEMV mantra; the",
      "MI300A removes host-device copies entirely. Findings: GEMM",
      "thresholds are small and iteration-independent; Once/Always/USM",
      "columns nearly coincide (no link to amortise); and Transfer-Always",
      "produces GEMV thresholds -- something no discrete system in the",
      "paper ever does. The CPU also shares the HBM pool, so the GEMV",
      "crossover stays moderate rather than vanishing.",
  });

  for (const char* type_id : {"gemm_square", "gemv_square"}) {
    const auto& type = core::problem_type_by_id(type_id);
    for (const char* system : {"isambard-ai", "mi300a-apu"}) {
      const auto prof = profile::by_name(system);
      const auto entries = bench::sweep_entries(prof, type);
      std::fputs(
          core::render_threshold_table(prof.name, type, entries).c_str(),
          stdout);
    }
  }

  // Transfer-type sensitivity: ratio of Always to Once total time at a
  // mid-size problem — near 1.0 on the APU, large on PCIe systems.
  util::TextTable table({"system", "Always/Once @ 1024^3, 32 iters"},
                        {util::Align::Left, util::Align::Right});
  for (const char* system : {"dawn", "lumi", "isambard-ai", "mi300a-apu"}) {
    core::SimBackend backend(profile::by_name(system), 0.0);
    core::Problem p;
    p.op = core::KernelOp::Gemm;
    p.dims = {1024, 1024, 1024};
    const double once = *backend.gpu_time(p, 32, core::TransferMode::Once);
    const double always =
        *backend.gpu_time(p, 32, core::TransferMode::Always);
    table.row({system, util::strfmt("%.2fx", always / once)});
  }
  std::fputs(table.str().c_str(), stdout);
  return 0;
}
