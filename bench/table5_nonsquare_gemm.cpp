// Table V: the iteration count at which each SGEMM:DGEMM non-square
// problem type first yields a (Transfer-Once) offload threshold.

#include "common.hpp"
#include "util/table.hpp"

int main() {
  using namespace blob;
  bench::banner(
      "Table V -- First iteration count yielding a non-square GEMM "
      "Transfer-Once offload threshold [f32 : f64]");
  bench::paper_reference({
      "Problem          DAWN   LUMI    Isambard-AI",
      "M=N,  K=16M      1:1    1:1     1:1",
      "M=N=32, K>=1     --:--  8:--    1:1",
      "K=N,  M=16K      1:1    8:8     1:1",
      "K=N=32, M>=1     --:--  32:8    1:1",
      "M=K,  N=16K      1:1    1:8     1:1",
      "M=K=32, N>=1     --:--  32:32   1:1",
      "M=N,  K=32       8:8    32:32   8:8",
      "M=N,  M=16K      1:1    8:8     1:1",
      "Shape checks: DAWN never offloads two-dims-fixed-32 problems",
      "(lowest arithmetic intensity); M=N,K=16M yields a threshold on",
      "every system at 1 iteration; Isambard yields thresholds at 1",
      "iteration for everything except M=N,K=32.",
  });

  util::TextTable table({"Problem type", "DAWN", "LUMI", "Isambard-AI"},
                        {util::Align::Left, util::Align::Center,
                         util::Align::Center, util::Align::Center});
  for (const auto& type : core::gemm_problem_types()) {
    if (type.id() == "gemm_square") continue;
    std::vector<std::string> row = {type.label()};
    for (const char* system : {"dawn", "lumi", "isambard-ai"}) {
      const auto profile = profile::by_name(system);
      const auto entries = bench::sweep_entries(profile, type);
      row.push_back(core::first_threshold_iteration(entries));
    }
    table.row(std::move(row));
  }
  std::fputs(table.str().c_str(), stdout);
  return 0;
}
