// Extension (paper §III-D turned online): regret of the self-calibrating
// offload dispatcher against the per-call oracle.
//
// The paper computes the offload threshold offline and leaves the routing
// decision to the programmer. src/dispatch makes the decision at runtime:
// an epsilon-greedy decision table seeded from OffloadAdvisor predictions
// learns per shape bucket whether the CPU library or the simulated GPU is
// cheaper. This bench replays a fixed mixed GEMM/GEMV workload on each
// system profile and compares the total modelled cost of the dispatcher's
// routing against three baselines: the per-call oracle (lower bound),
// always-CPU and always-GPU (what a static port would pay).

#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "dispatch/dispatcher.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace blob;

struct ShapeClass {
  const char* name;
  core::KernelOp op;
  model::Precision precision;
  std::int64_t m, n, k;
  double weight;
  blas::Transpose ta = blas::Transpose::No;
  blas::Transpose tb = blas::Transpose::No;
};

// A serving-style mix: many small GEMMs (CPU territory), some large ones
// (GPU territory), mid sizes that sit near the offload threshold, and
// transposed layouts that route first-class through the same buckets.
const ShapeClass kClasses[] = {
    {"gemm-small-f32", core::KernelOp::Gemm, model::Precision::F32, 48, 48,
     48, 0.30},
    {"gemm-mid-f32", core::KernelOp::Gemm, model::Precision::F32, 256, 256,
     256, 0.15},
    {"gemm-mid-f32-tn", core::KernelOp::Gemm, model::Precision::F32, 256,
     256, 256, 0.10, blas::Transpose::Yes, blas::Transpose::No},
    {"gemm-large-f32", core::KernelOp::Gemm, model::Precision::F32, 640, 640,
     640, 0.10},
    {"gemm-large-f32-nt", core::KernelOp::Gemm, model::Precision::F32, 640,
     640, 640, 0.05, blas::Transpose::No, blas::Transpose::Yes},
    {"gemm-large-f64", core::KernelOp::Gemm, model::Precision::F64, 512, 512,
     512, 0.10},
    {"gemv-mid-f32", core::KernelOp::Gemv, model::Precision::F32, 640, 640,
     1, 0.10},
    {"gemv-large-f64", core::KernelOp::Gemv, model::Precision::F64, 1280,
     1280, 1, 0.10},
};

struct ClassBuffers {
  std::vector<float> a32, b32, c32;
  std::vector<double> a64, b64, c64;
};

ClassBuffers make_buffers(const ShapeClass& cls, util::Xoshiro256& rng) {
  ClassBuffers buf;
  const std::size_t an = static_cast<std::size_t>(cls.m * cls.k);
  const std::size_t bn = static_cast<std::size_t>(cls.k * cls.n);
  const std::size_t cn = static_cast<std::size_t>(
      cls.op == core::KernelOp::Gemv ? cls.m : cls.m * cls.n);
  const std::size_t xn = static_cast<std::size_t>(
      cls.op == core::KernelOp::Gemv ? cls.n : 0);
  if (cls.precision == model::Precision::F32) {
    buf.a32.resize(cls.op == core::KernelOp::Gemv
                       ? static_cast<std::size_t>(cls.m * cls.n)
                       : an);
    buf.b32.resize(cls.op == core::KernelOp::Gemv ? xn : bn);
    buf.c32.resize(cn);
    for (auto& v : buf.a32) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (auto& v : buf.b32) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  } else {
    buf.a64.resize(cls.op == core::KernelOp::Gemv
                       ? static_cast<std::size_t>(cls.m * cls.n)
                       : an);
    buf.b64.resize(cls.op == core::KernelOp::Gemv ? xn : bn);
    buf.c64.resize(cn);
    for (auto& v : buf.a64) v = rng.uniform(-1.0, 1.0);
    for (auto& v : buf.b64) v = rng.uniform(-1.0, 1.0);
  }
  return buf;
}

struct Totals {
  double routed = 0.0;
  double oracle = 0.0;
  double always_cpu = 0.0;
  double always_gpu = 0.0;
};

struct ReplayResult {
  Totals full;    ///< whole replay, exploration tax included
  Totals steady;  ///< post-warmup window only
};

ReplayResult replay(const std::string& system, int calls, int warmup) {
  dispatch::DispatcherConfig cfg;
  cfg.profile = profile::by_name(system);
  cfg.cpu_threads = 2;
  cfg.trace_capacity = 64;
  dispatch::Dispatcher disp(cfg);

  util::Xoshiro256 rng(0xbe9c4 ^ std::hash<std::string>{}(system));
  std::vector<ClassBuffers> buffers;
  buffers.reserve(std::size(kClasses));
  for (const auto& cls : kClasses) buffers.push_back(make_buffers(cls, rng));

  ReplayResult result;
  Totals at_warmup;
  for (int i = 0; i < calls; ++i) {
    if (i == warmup) {
      const auto stats = disp.stats();
      at_warmup = result.full;
      at_warmup.routed = stats.cpu_seconds + stats.gpu_seconds;
    }
    double pick = rng.next_double();
    std::size_t ci = 0;
    for (; ci + 1 < std::size(kClasses); ++ci) {
      if (pick < kClasses[ci].weight) break;
      pick -= kClasses[ci].weight;
    }
    const ShapeClass& cls = kClasses[ci];
    ClassBuffers& buf = buffers[ci];

    const core::OpDesc desc =
        cls.op == core::KernelOp::Gemv
            ? core::OpDesc::gemv(cls.precision, cls.ta, cls.m, cls.n, 0, 1,
                                 1, /*alpha_one=*/true, /*beta_zero=*/true,
                                 cfg.mode)
            : core::OpDesc::gemm(cls.precision, cls.ta, cls.tb, cls.m, cls.n,
                                 cls.k, 0, 0, 0, /*alpha_one=*/true,
                                 /*beta_zero=*/true, cfg.mode);
    const auto costs = disp.modelled_costs(desc);
    result.full.oracle += std::min(costs.cpu_s, costs.gpu_s);
    result.full.always_cpu += costs.cpu_s;
    result.full.always_gpu += costs.gpu_s;

    if (cls.op == core::KernelOp::Gemm) {
      if (cls.precision == model::Precision::F32) {
        disp.run_gemm<float>(desc, 1.0F, buf.a32.data(), buf.b32.data(),
                             0.0F, buf.c32.data());
      } else {
        disp.run_gemm<double>(desc, 1.0, buf.a64.data(), buf.b64.data(), 0.0,
                              buf.c64.data());
      }
    } else {
      if (cls.precision == model::Precision::F32) {
        disp.run_gemv<float>(desc, 1.0F, buf.a32.data(), buf.b32.data(),
                             0.0F, buf.c32.data());
      } else {
        disp.run_gemv<double>(desc, 1.0, buf.a64.data(), buf.b64.data(), 0.0,
                              buf.c64.data());
      }
    }
  }
  const auto stats = disp.stats();
  result.full.routed = stats.cpu_seconds + stats.gpu_seconds;
  result.steady.routed = result.full.routed - at_warmup.routed;
  result.steady.oracle = result.full.oracle - at_warmup.oracle;
  result.steady.always_cpu = result.full.always_cpu - at_warmup.always_cpu;
  result.steady.always_gpu = result.full.always_gpu - at_warmup.always_gpu;
  return result;
}

std::string pct(double value, double baseline) {
  if (baseline <= 0.0) return "--";
  return util::strfmt("%+.1f%%", 100.0 * (value - baseline) / baseline);
}

}  // namespace

int main() {
  using namespace blob;
  bench::banner(
      "Extension -- online dispatch regret vs the per-call oracle");
  bench::paper_reference({
      "The paper's offload threshold (SIII-D) is an offline porting",
      "heuristic. Routing every call online with a self-calibrating",
      "decision table should land near the oracle and strictly beat",
      "either static choice on a mixed workload.",
  });

  util::TextTable table({"system", "steady oracle (s)", "routed (steady)",
                         "always-cpu", "always-gpu", "routed (full)"},
                        {util::Align::Left, util::Align::Right,
                         util::Align::Right, util::Align::Right,
                         util::Align::Right, util::Align::Right});
  for (const char* system : {"dawn", "lumi", "isambard-ai"}) {
    const ReplayResult r = replay(system, 600, 150);
    table.row({system, util::strfmt("%.4e", r.steady.oracle),
               pct(r.steady.routed, r.steady.oracle),
               pct(r.steady.always_cpu, r.steady.oracle),
               pct(r.steady.always_gpu, r.steady.oracle),
               pct(r.full.routed, r.full.oracle)});
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "\nReading: modelled cost of a 600-call mixed GEMM/GEMV replay as\n"
      "regret over the per-call oracle. 'steady' drops the 150-call warmup\n"
      "where the dispatcher pays its exploration tax (cold starts + epsilon\n"
      "probes); after it, routing sits within a few percent of the oracle\n"
      "and beats both static choices. 'full' keeps the tax, which a warm\n"
      "restart from the calibration store avoids entirely.\n");
  return 0;
}
