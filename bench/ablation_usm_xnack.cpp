// Ablation: HSA_XNACK on vs off on the LUMI-like profile.
//
// With XNACK off the GPU cannot signal page faults, so no page migration
// occurs and every device access to managed memory crosses the link. The
// paper cites a data-transfer penalty of up to 40x on an AMD MI100
// (§IV); this ablation quantifies the effect on USM GEMM times and on
// the USM offload threshold.

#include "common.hpp"
#include "core/report.hpp"
#include "core/sim_backend.hpp"
#include "util/table.hpp"

int main() {
  using namespace blob;
  bench::banner("Ablation -- USM with HSA_XNACK=1 vs HSA_XNACK=0 (LUMI)");
  bench::paper_reference({
      "Not using HSA_XNACK=1 forces all device accesses to host-resident",
      "memory across the interconnect; up to 40x data-transfer penalty.",
  });

  core::SimBackend on(profile::by_name("lumi"), 0.0);
  core::SimBackend off(profile::by_name("lumi-xnack-off"), 0.0);

  util::TextTable table({"M=N=K", "iters", "USM xnack=1 (s)",
                         "USM xnack=0 (s)", "penalty"},
                        {util::Align::Right, util::Align::Right,
                         util::Align::Right, util::Align::Right,
                         util::Align::Right});
  for (std::int64_t s : {512LL, 1024LL, 2048LL, 4096LL}) {
    for (std::int64_t iters : {1LL, 32LL}) {
      core::Problem p;
      p.op = core::KernelOp::Gemm;
      p.precision = model::Precision::F32;
      p.dims = {s, s, s};
      const double t_on = *on.gpu_time(p, iters, core::TransferMode::Usm);
      const double t_off = *off.gpu_time(p, iters, core::TransferMode::Usm);
      table.row({std::to_string(s), std::to_string(iters),
                 util::strfmt("%.5f", t_on), util::strfmt("%.5f", t_off),
                 util::strfmt("%.1fx", t_off / t_on)});
    }
  }
  std::fputs(table.str().c_str(), stdout);

  // Threshold impact.
  const auto& type = core::problem_type_by_id("gemm_square");
  for (const char* name : {"lumi", "lumi-xnack-off"}) {
    const auto entries = bench::sweep_entries(profile::by_name(name), type);
    std::fputs(
        core::render_threshold_table(name, type, entries).c_str(), stdout);
  }
  return 0;
}
