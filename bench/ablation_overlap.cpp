// Ablation: could transfer/compute OVERLAP rescue Transfer-Always?
//
// GPU-BLOB's Transfer-Always is fully synchronous: upload, kernel,
// download, repeat. A double-buffered implementation overlaps iteration
// i+1's upload with iteration i's kernel, so steady-state cost per
// iteration is max(transfer, kernel) instead of their sum. This ablation
// runs both pipelines on the actual simulator (two streams + events) and
// reports the effect on the square-GEMM Transfer-Always threshold.

#include <algorithm>
#include <vector>

#include "common.hpp"
#include "core/threshold.hpp"
#include "simgpu/device.hpp"
#include "util/table.hpp"

namespace {

using namespace blob;

/// Synchronous Transfer-Always on the simulator: i x (h2d, kernel, d2h).
double sync_always(const profile::SystemProfile& prof, int s, int iters) {
  sim::SimGpu gpu(sim::SimGpu::Config{prof.gpu, prof.link, false, 0.0});
  const std::size_t bytes = static_cast<std::size_t>(s) * s * 4;
  auto h = gpu.alloc_host(3 * bytes);
  auto da = gpu.alloc_device(bytes);
  auto db = gpu.alloc_device(bytes);
  auto dc = gpu.alloc_device(bytes);
  for (int i = 0; i < iters; ++i) {
    gpu.memcpy_h2d(da, h, bytes);
    gpu.memcpy_h2d(db, h, bytes);
    gpu.memcpy_h2d(dc, h, bytes);
    gpu.gemm<float>(s, s, s, 1.0f, da, s, db, s, 0.0f, dc, s);
    gpu.synchronize();
    gpu.memcpy_d2h(h, dc, bytes);
  }
  return gpu.now();
}

/// Double-buffered Transfer-Always: copies run on a second stream and
/// only the kernel's input dependency is enforced via events.
double overlapped_always(const profile::SystemProfile& prof, int s,
                         int iters) {
  sim::SimGpu gpu(sim::SimGpu::Config{prof.gpu, prof.link, false, 0.0});
  sim::Stream& copies = gpu.create_stream("uploads");
  sim::Stream& downloads = gpu.create_stream("downloads");
  sim::Stream& compute = gpu.default_stream();
  const std::size_t bytes = static_cast<std::size_t>(s) * s * 4;
  auto h = gpu.alloc_host(3 * bytes);
  // Two buffer sets ping-pong.
  std::vector<sim::Buffer> sets;
  for (int i = 0; i < 6; ++i) sets.push_back(gpu.alloc_device(bytes));

  for (int i = 0; i < iters; ++i) {
    sim::Buffer& a = sets[static_cast<std::size_t>((i % 2) * 3)];
    sim::Buffer& b = sets[static_cast<std::size_t>((i % 2) * 3 + 1)];
    sim::Buffer& c = sets[static_cast<std::size_t>((i % 2) * 3 + 2)];
    // Uploads for iteration i can start as soon as the copy stream is
    // free (the buffers alternate, so no hazard with the running kernel).
    gpu.memcpy_h2d_async(copies, a, h, bytes);
    gpu.memcpy_h2d_async(copies, b, h, bytes);
    gpu.memcpy_h2d_async(copies, c, h, bytes);
    sim::Event uploaded;
    uploaded.record(copies);
    // The kernel needs its inputs and the previous kernel (in-order
    // compute stream handles the latter automatically).
    compute.wait(uploaded);
    gpu.gemm<float>(s, s, s, 1.0f, a, s, b, s, 0.0f, c, s, &compute);
    sim::Event kernel_done;
    kernel_done.record(compute);
    // Download of iteration i runs on its own stream so iteration i+1's
    // uploads are not queued behind it.
    downloads.wait(kernel_done);
    gpu.memcpy_d2h_async(downloads, h, c, bytes);
  }
  copies.synchronize();
  downloads.synchronize();
  compute.synchronize();
  return gpu.now();
}

}  // namespace

int main() {
  using namespace blob;
  bench::banner(
      "Ablation -- synchronous vs double-buffered Transfer-Always "
      "(square SGEMM, 32 iterations)");
  bench::paper_reference({
      "GPU-BLOB's Transfer-Always is synchronous by design (it mimics an",
      "application with host phases between BLAS calls). This ablation",
      "asks how much of the Transfer-Always penalty an overlapping",
      "implementation could hide: steady state max(copy, kernel) vs sum.",
  });

  util::TextTable table({"system", "M=N=K", "sync (ms)", "overlapped (ms)",
                         "speedup"},
                        {util::Align::Left, util::Align::Right,
                         util::Align::Right, util::Align::Right,
                         util::Align::Right});
  for (const char* system : {"dawn", "lumi", "isambard-ai"}) {
    const auto prof = profile::by_name(system);
    for (int s : {256, 1024, 4096}) {
      const double sync_t = sync_always(prof, s, 32);
      const double over_t = overlapped_always(prof, s, 32);
      table.row({system, std::to_string(s),
                 util::strfmt("%.3f", sync_t * 1e3),
                 util::strfmt("%.3f", over_t * 1e3),
                 util::strfmt("%.2fx", sync_t / over_t)});
    }
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "\nReading: overlap hides the smaller of (copy, kernel); on PCIe\n"
      "systems where copies dominate, the speedup is bounded by the\n"
      "kernel fraction, so Transfer-Always remains the worst mode even\n"
      "with a perfectly pipelined implementation.\n");
  return 0;
}
