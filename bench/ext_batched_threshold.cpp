// Extension (paper future work, §V): batched GEMM and the offload
// threshold — run through the full GPU-BLOB pipeline.
//
// "Batched kernels can greatly improve GEMM performance for small
// problem sizes if many can be computed concurrently"; the paper wants
// to quantify the effect on the threshold. The core now treats the batch
// size as a first-class problem dimension (`gpu-blob --batch N`): the
// GPU pays one launch per batched call and fills the device at the
// aggregate size, the CPU spreads the batch across its cores with one
// fork/join, and transfers move the whole batch.

#include "common.hpp"
#include "core/threshold.hpp"
#include "util/table.hpp"

namespace {

using namespace blob;

std::string batched_threshold(const profile::SystemProfile& prof, int batch,
                              std::int64_t iterations) {
  core::SimBackend backend(prof, 0.0);
  core::SweepConfig cfg;
  cfg.s_min = 2;
  cfg.s_max = 512;
  cfg.iterations = iterations;
  cfg.batch = batch;
  cfg.precision = model::Precision::F32;
  const auto result = core::run_sweep(
      backend, core::problem_type_by_id("gemm_square"), cfg);
  return core::threshold_value_string(result.thresholds[0]);
}

}  // namespace

int main() {
  using namespace blob;
  bench::banner(
      "Extension -- batched GEMM offload thresholds (paper future work)");
  bench::paper_reference({
      "Hypothesis from §V: batching many small GEMMs into one kernel",
      "amortises the launch cost and fills the device, so the per-matrix",
      "offload threshold should fall sharply with batch size.",
  });

  util::TextTable table({"system", "iterations", "batch=1", "batch=16",
                         "batch=64", "batch=256"},
                        {util::Align::Left, util::Align::Right,
                         util::Align::Right, util::Align::Right,
                         util::Align::Right, util::Align::Right});
  for (const char* system : {"dawn", "lumi", "isambard-ai"}) {
    const auto prof = profile::by_name(system);
    for (std::int64_t iters : {1LL, 32LL}) {
      std::vector<std::string> row = {system, std::to_string(iters)};
      for (int batch : {1, 16, 64, 256}) {
        row.push_back(batched_threshold(prof, batch, iters));
      }
      table.row(std::move(row));
    }
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "\nReading: per-matrix square-SGEMM Transfer-Once threshold (sweep\n"
      "capped at 512, so values above it print '--'; DAWN's batch=1\n"
      "1-iteration threshold is 629). Two regimes are visible: with re-use\n"
      "(32 iters) batching monotonically collapses the threshold; at one\n"
      "iteration the optimum batch is finite (a U-shape) because transfers\n"
      "scale with the batch while the device-fill benefit saturates.\n");
  return 0;
}
