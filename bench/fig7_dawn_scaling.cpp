// Fig. 7 (Appendix A): DAWN GPU SGEMM performance (32 iterations) using
// implicit vs explicit hardware scaling on the PVC Max 1550.
//
// Implicit scaling exposes both tiles as one device: double the raw
// compute, but cross-tile communication makes performance much lower and
// far less consistent than a single explicitly-targeted tile.

#include "common.hpp"
#include "core/report.hpp"

int main() {
  using namespace blob;
  bench::banner(
      "Fig. 7 -- DAWN GPU SGEMM (32 iterations): implicit vs explicit "
      "scaling");
  bench::paper_reference({
      "Implicit scaling yields much lower and less-consistent performance",
      "than explicit scaling, despite having twice the compute resources.",
  });

  const auto& type = core::problem_type_by_id("gemm_square");
  const auto explicit_scaling = bench::figure_series(
      profile::by_name("dawn"), type, model::Precision::F32, 32, 4096, 128);
  const auto implicit_scaling =
      bench::figure_series(profile::by_name("dawn-implicit"), type,
                           model::Precision::F32, 32, 4096, 128);
  std::fputs(core::render_series(
                 "GPU Transfer-Once SGEMM GFLOP/s vs M=N=K (DAWN, 32 iters)",
                 {"explicit-1-tile", "implicit-2-tile"},
                 explicit_scaling.sizes,
                 {explicit_scaling.gpu_once, implicit_scaling.gpu_once})
                 .c_str(),
             stdout);
  return 0;
}
