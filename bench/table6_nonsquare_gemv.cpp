// Table VI: the iteration count at which each SGEMV:DGEMV non-square
// problem type first yields a (Transfer-Once) offload threshold.

#include "common.hpp"
#include "util/table.hpp"

int main() {
  using namespace blob;
  bench::banner(
      "Table VI -- First iteration count yielding a non-square GEMV "
      "Transfer-Once offload threshold [f32 : f64]");
  bench::paper_reference({
      "Problem        DAWN   LUMI     Isambard-AI",
      "M=16N          --:--  8:8      1:1",
      "N=32, M>=1     --:--  64:32    1:1",
      "N=16M          --:--  --:--    1:1",
      "M=32, N>=1     --:--  --:--    1:1",
      "Shape checks: DAWN never offloads a non-square GEMV; on LUMI only",
      "problems with M >> N offload (AOCL's serial GEMV); Isambard",
      "offloads everything at 1 iteration.",
  });

  util::TextTable table({"Problem type", "DAWN", "LUMI", "Isambard-AI"},
                        {util::Align::Left, util::Align::Center,
                         util::Align::Center, util::Align::Center});
  for (const auto& type : core::gemv_problem_types()) {
    if (type.id() == "gemv_square") continue;
    std::vector<std::string> row = {type.label()};
    for (const char* system : {"dawn", "lumi", "isambard-ai"}) {
      const auto profile = profile::by_name(system);
      const auto entries = bench::sweep_entries(profile, type);
      row.push_back(core::first_threshold_iteration(entries));
    }
    table.row(std::move(row));
  }
  std::fputs(table.str().c_str(), stdout);
  return 0;
}
