// Ablation: kernel launch latency vs the small-size offload threshold.
//
// Isambard-AI's {26,26,26} square-GEMM threshold exists because the
// GH200's total GPU fixed cost (launch + C2C link latency) sits barely
// above the CPU library's fork/join cost. This ablation scales the
// launch latency and watches the 1-iteration threshold move.

#include "common.hpp"
#include "core/report.hpp"
#include "util/table.hpp"

int main() {
  using namespace blob;
  bench::banner(
      "Ablation -- GPU launch latency vs square-GEMM offload threshold "
      "(Isambard-AI, 1 iteration)");
  bench::paper_reference({
      "The SoC design 'almost entirely amortises the data transfer",
      "overhead' (§IV-A); the residual threshold is set by fixed",
      "per-kernel costs, so scaling launch latency should scale it.",
  });

  const auto base = profile::by_name("isambard-ai");
  const auto& type = core::problem_type_by_id("gemm_square");

  util::TextTable table({"launch latency", "Once f32", "Once f64"},
                        {util::Align::Right, util::Align::Right,
                         util::Align::Right});
  for (double scale : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    auto prof = base;
    prof.gpu.launch_latency_s *= scale;
    prof.noise_sigma = 0.0;
    const auto entry = bench::sweep_entry(prof, type, 1);
    table.row({util::strfmt("%.2f us", prof.gpu.launch_latency_s * 1e6),
               core::threshold_value_string(entry.f32[0]),
               core::threshold_value_string(entry.f64[0])});
  }
  std::fputs(table.str().c_str(), stdout);
  return 0;
}
