// Extension (future work): whole-factorization offload through the
// dispatcher rather than per-call thresholding.
//
// The paper prices single GEMM/GEMV calls against the offload threshold.
// A blocked factorization is a stream of such calls with heavy operand
// reuse: every trailing update reads the panel just written and rewrites
// the same trailing submatrix. src/lapack routes that traffic through the
// cblas dispatch seam, so under ResidencyPolicy::Track the trailing
// blocks stay resident-dirty on device and Transfer-Once pricing
// collapses the threshold mid-factorization. This bench runs LU /
// Cholesky / QR end to end on each system profile and compares the
// dispatcher's modelled wall time against the two static ports the paper
// contemplates: keep everything on the CPU, or push every call to the
// GPU.

#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "blas/gemm.hpp"
#include "blas/library.hpp"
#include "dispatch/dispatcher.hpp"
#include "lapack/geqrf.hpp"
#include "lapack/getrf.hpp"
#include "lapack/potrf.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace blob;

struct RunResult {
  std::size_t ops = 0;
  std::int64_t first_gpu = 0;  ///< 1-based; 0 = never offloaded
  double routed_s = 0.0;
  double always_cpu_s = 0.0;
  double always_gpu_s = 0.0;
  double h2d_skipped = 0.0;
};

RunResult run(const std::string& system, const std::string& fact, int dim,
              int block) {
  dispatch::DispatcherConfig cfg;
  cfg.profile = profile::by_name(system);
  cfg.personality = blas::single_thread_personality();
  cfg.cpu_threads = 1;
  cfg.autotune = false;
  cfg.mode = core::TransferMode::Once;
  cfg.residency = dispatch::ResidencyPolicy::Track;
  cfg.trace_capacity = 8192;
  dispatch::Dispatcher disp(cfg);

  const auto nn = static_cast<std::size_t>(dim);
  util::Xoshiro256 rng(0xfac ^ std::hash<std::string>{}(system + fact));
  std::vector<double> a(nn * nn);
  for (auto& v : a) v = rng.uniform(-1.0, 1.0);
  if (fact == "potrf") {
    // A = G * G^T + dim * I is symmetric positive definite.
    std::vector<double> g = a;
    blas::gemm(blas::Transpose::No, blas::Transpose::Yes, dim, dim, dim, 1.0,
               g.data(), dim, g.data(), dim, 0.0, a.data(), dim);
    for (int i = 0; i < dim; ++i) {
      a[static_cast<std::size_t>(i) * (nn + 1)] += dim;
    }
  }

  disp.install();
  if (fact == "getrf") {
    std::vector<int> ipiv;
    lapack::getrf(dim, a.data(), dim, ipiv, nullptr, 1, block);
  } else if (fact == "potrf") {
    lapack::potrf(blas::UpLo::Lower, dim, a.data(), dim, nullptr, 1, block);
  } else {
    std::vector<double> tau;
    lapack::geqrf(dim, dim, a.data(), dim, tau, nullptr, 1, block);
  }
  disp.uninstall();

  RunResult result;
  const std::vector<dispatch::TraceRecord> records = disp.trace().snapshot();
  result.ops = records.size();
  for (std::size_t i = 0; i < records.size(); ++i) {
    const dispatch::TraceRecord& r = records[i];
    const core::OpDesc desc =
        r.op == core::KernelOp::Gemm
            ? core::OpDesc::gemm(r.precision, r.trans_a, r.trans_b, r.m, r.n,
                                 r.k, 0, 0, 0, /*alpha_one=*/true,
                                 /*beta_zero=*/true, cfg.mode)
            : core::OpDesc::gemv(r.precision, r.trans_a, r.m, r.n, 0, 1, 1,
                                 /*alpha_one=*/true, /*beta_zero=*/true,
                                 cfg.mode);
    const auto costs = disp.modelled_costs(desc);
    result.always_cpu_s += costs.cpu_s;
    result.always_gpu_s += costs.gpu_s;
    if (result.first_gpu == 0 && r.route == dispatch::Route::Gpu) {
      result.first_gpu = static_cast<std::int64_t>(i) + 1;
    }
  }
  const dispatch::DispatchStats stats = disp.stats();
  result.routed_s = stats.cpu_seconds + stats.gpu_seconds;
  result.h2d_skipped = stats.h2d_bytes_skipped;
  return result;
}

std::string pct(double value, double baseline) {
  if (baseline <= 0.0) return "--";
  return util::strfmt("%+.1f%%", 100.0 * (value - baseline) / baseline);
}

}  // namespace

int main() {
  using namespace blob;
  bench::banner(
      "Extension -- LAPACK factorizations through the offload dispatcher");
  bench::paper_reference({
      "The paper thresholds single kernels. A blocked factorization is a",
      "reuse-heavy stream of them: residency-aware Transfer-Once pricing",
      "should beat both static ports (always-CPU, always-GPU) end to end",
      "by offloading only the trailing updates, and only once they are",
      "large and warm enough.",
  });

  constexpr int kDim = 512;
  constexpr int kBlock = 64;
  util::TextTable table({"system", "factorization", "ops", "first gpu op",
                         "routed (s)", "vs always-cpu", "vs always-gpu",
                         "h2d skipped (MB)"},
                        {util::Align::Left, util::Align::Left,
                         util::Align::Right, util::Align::Right,
                         util::Align::Right, util::Align::Right,
                         util::Align::Right, util::Align::Right});
  for (const char* system : {"dawn", "lumi", "isambard-ai"}) {
    for (const char* fact : {"getrf", "potrf", "geqrf"}) {
      const RunResult r = run(system, fact, kDim, kBlock);
      table.row({system, fact, util::strfmt("%zu", r.ops),
                 r.first_gpu == 0 ? "never"
                                  : util::strfmt("%lld", static_cast<long long>(
                                                             r.first_gpu)),
                 util::strfmt("%.4e", r.routed_s),
                 pct(r.routed_s, r.always_cpu_s),
                 pct(r.routed_s, r.always_gpu_s),
                 util::strfmt("%.2f", r.h2d_skipped / 1e6)});
    }
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "\nReading: modelled end-to-end time of a dim-%d block-%d double\n"
      "factorization with trailing updates routed per call. Negative\n"
      "percentages mean the dispatched run beats that constant policy.\n"
      "On the PCIe-attached systems this size sits below the offload\n"
      "threshold, so the amortised-upload bet does not pay off and a\n"
      "static CPU port stays ahead; on the GH200's NVLink-C2C the\n"
      "resident-operand discount collapses the threshold and the\n"
      "dispatched run beats both static ports for all three solvers --\n"
      "the skipped H2D bytes are the trailing blocks that never left\n"
      "the device between updates.\n",
      kDim, kBlock);
  return 0;
}
