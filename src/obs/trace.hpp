#pragma once
// Unified low-overhead tracing: RAII spans with nesting and explicit
// cross-thread parent links, recorded into lock-free per-thread event
// rings and drained on demand.
//
// The paper's argument rests on *where time goes* — kernel compute, DMA,
// launch latency, queueing — so every layer (thread pool, BLAS engine,
// simulated GPU, dispatcher) reports through this one spine instead of
// its own ad-hoc logs. Design contract:
//
//  * Compiled in, off by default. The disabled hot path is ONE relaxed
//    atomic load and a branch — no lock, no TLS touch, no clock read
//    (tests/test_obs.cpp asserts the no-lock property via the
//    detail::lock_acquisitions() probe).
//  * When enabled, each thread appends to its own single-producer/
//    single-consumer ring; the only synchronisation is acquire/release
//    on the ring indices. Full rings drop (counted), never block.
//  * Spans nest per thread automatically (an implicit stack) and may
//    name an explicit parent id to link work handed to another thread
//    (pool workers, the admission-queue drain cycle).
//  * Simulated-GPU spans carry the modelled *virtual* interval alongside
//    the wall interval, so one chrome trace shows both timelines.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace blob::obs {

/// Coarse subsystem tag; becomes the chrome-trace "cat" field.
enum class Category : std::uint8_t { App = 0, Pool, Blas, Gpu, Dispatch };

[[nodiscard]] const char* to_string(Category cat);

/// One recorded event. POD-ish on purpose: events are copied in and out
/// of the rings, so the name is an inline buffer, not a string.
struct TraceEvent {
  static constexpr std::size_t kNameCap = 48;
  char name[kNameCap] = {};
  Category cat = Category::App;
  bool instant = false;       ///< zero-duration marker vs complete span
  std::uint32_t tid = 0;      ///< obs thread index (assigned per thread)
  std::uint64_t id = 0;       ///< span id; unique per process
  std::uint64_t parent = 0;   ///< enclosing span id, 0 = root
  std::int64_t ts_ns = 0;     ///< wall start, ns since the trace epoch
  std::int64_t dur_ns = 0;    ///< wall duration (0 for instants)
  double vt_start_s = -1.0;   ///< modelled virtual start, < 0 = none
  double vt_dur_s = -1.0;     ///< modelled virtual duration
};

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Global tracing switch. Relaxed load: the only thing the disabled hot
/// path ever does.
[[nodiscard]] inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

/// Wall clock in nanoseconds since the process trace epoch (steady).
[[nodiscard]] std::int64_t now_ns();

/// RAII span. Construction (when tracing is on) assigns an id, links the
/// parent, and pushes itself as the thread's innermost span; destruction
/// (or end()) emits the event. Spans on one thread must end in LIFO
/// order; a span must end on the thread that created it.
class Span {
 public:
  /// Inactive span (also what construction yields when tracing is off).
  Span() = default;

  /// `parent` == 0 links to the thread's current innermost span; pass an
  /// explicit id to parent work handed across threads. `name` must
  /// outlive the span (string literals in practice).
  explicit Span(const char* name, Category cat = Category::App,
                std::uint64_t parent = 0);
  ~Span() { end(); }

  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach the modelled virtual-time interval (simulated GPU ops).
  void set_virtual(double vt_start_s, double vt_dur_s);

  /// Emit the event now (idempotent; the destructor calls it).
  void end();

  [[nodiscard]] bool active() const { return id_ != 0; }
  [[nodiscard]] std::uint64_t id() const { return id_; }

  /// Innermost active span id on the calling thread (0 when none, or
  /// when tracing is off). Use to link records — e.g. the dispatcher's
  /// decision trace stores it per routed call.
  [[nodiscard]] static std::uint64_t current();

 private:
  const char* name_ = nullptr;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::uint64_t prev_current_ = 0;
  std::int64_t start_ns_ = 0;
  double vt_start_s_ = -1.0;
  double vt_dur_s_ = -1.0;
  Category cat_ = Category::App;
};

/// Zero-duration marker under the current span.
void instant(const char* name, Category cat = Category::App);

/// Move every recorded event out of every thread's ring (oldest-first
/// per thread). Safe to call while other threads keep tracing — events
/// pushed concurrently are simply picked up by the next drain.
[[nodiscard]] std::vector<TraceEvent> drain_events();

/// Events discarded because a thread's ring was full.
[[nodiscard]] std::uint64_t dropped_events();

namespace detail {

/// std::mutex that counts acquisitions, so tests can prove the disabled
/// tracing path never locks. Every obs-internal mutex is one of these.
class CountedMutex {
 public:
  void lock();
  void unlock();

 private:
  std::mutex mutex_;
};

/// Total obs-internal mutex acquisitions since process start.
[[nodiscard]] std::uint64_t lock_acquisitions();

/// Number of per-thread rings registered so far.
[[nodiscard]] std::size_t ring_count();

/// Capacity (events) of rings created after this call. Existing rings
/// keep their size. Intended for tests; default is 64Ki events/thread.
void set_ring_capacity(std::size_t capacity);

}  // namespace detail

}  // namespace blob::obs
