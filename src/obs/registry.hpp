#pragma once
// Named counters and log2-bucketed latency histograms in a process-wide
// registry. Lookup (registry lock + map find) is the cold path — call
// sites cache the returned reference in a function-local static and then
// touch only that object's atomics, so steady-state updates never lock.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace blob::obs {

/// Monotonic counter. add() is a relaxed fetch_add; reset() is for tests
/// and stats snapshots, not concurrent bookkeeping.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Log2-bucketed histogram of non-negative samples (latencies in ns,
/// bytes, ...). Bucket 0 holds the value 0; bucket b >= 1 holds
/// [2^(b-1), 2^b - 1]. 65 buckets cover the full uint64 range.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  /// Bucket index for a sample: 0 -> 0, v >= 1 -> bit_width(v).
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t value);
  /// Smallest / largest value landing in bucket `b`.
  [[nodiscard]] static std::uint64_t bucket_floor(std::size_t b);
  [[nodiscard]] static std::uint64_t bucket_ceil(std::size_t b);

  void record(std::uint64_t value);
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  /// (bucket_floor, count) for each non-empty bucket, ascending.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<HistogramSnapshot> histograms;
};

/// Process-wide metric directory. Entries are never removed, so the
/// references handed out stay valid for the life of the process.
class Registry {
 public:
  /// Find-or-create by name. Dotted names by convention:
  /// "<subsystem>.<metric>", e.g. "blas.gemm.tiles_executed".
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  /// Zero every registered metric (keeps the entries).
  void reset();

  [[nodiscard]] static Registry& global();

 private:
  mutable detail::CountedMutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Shorthands against the global registry.
[[nodiscard]] inline Counter& counter(const std::string& name) {
  return Registry::global().counter(name);
}
[[nodiscard]] inline Histogram& histogram(const std::string& name) {
  return Registry::global().histogram(name);
}

}  // namespace blob::obs
