#include "obs/trace.hpp"

#include <chrono>
#include <cstring>
#include <memory>

namespace blob::obs {

const char* to_string(Category cat) {
  switch (cat) {
    case Category::App:
      return "app";
    case Category::Pool:
      return "pool";
    case Category::Blas:
      return "blas";
    case Category::Gpu:
      return "gpu";
    case Category::Dispatch:
      return "dispatch";
  }
  return "app";
}

namespace detail {

std::atomic<bool> g_enabled{false};

namespace {

std::atomic<std::uint64_t> g_lock_count{0};
std::atomic<std::uint64_t> g_next_span_id{1};
std::atomic<std::uint64_t> g_dropped{0};
std::atomic<std::size_t> g_ring_capacity{std::size_t{1} << 16};

/// Single-producer (owning thread) / single-consumer (drainer, under the
/// global mutex) ring. Full ring drops the event — tracing must never
/// block or reallocate on the hot path.
class EventRing {
 public:
  explicit EventRing(std::size_t capacity)
      : slots_(capacity == 0 ? 1 : capacity) {}

  void push(const TraceEvent& event) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= slots_.size()) {
      g_dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    slots_[head % slots_.size()] = event;
    head_.store(head + 1, std::memory_order_release);
  }

  void drain(std::vector<TraceEvent>& out) {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    for (; tail != head; ++tail) {
      out.push_back(slots_[tail % slots_.size()]);
    }
    tail_.store(tail, std::memory_order_release);
  }

 private:
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> tail_{0};
  std::vector<TraceEvent> slots_;
};

/// Global ring directory. Grows by one entry per traced thread and never
/// shrinks (the shared_ptr keeps a ring alive after its thread exits, so
/// a drain can still collect the tail of a finished worker).
struct Directory {
  CountedMutex mutex;
  std::vector<std::shared_ptr<EventRing>> rings;
  std::uint32_t next_tid = 1;
};

Directory& directory() {
  // Leaked: the atexit trace flush may run after static destructors
  // (apps call init_from_env before the first event registers a ring,
  // so the flush is registered first and therefore runs last).
  static Directory* dir = new Directory();
  return *dir;
}

struct ThreadState {
  std::shared_ptr<EventRing> ring;
  std::uint32_t tid = 0;
  std::uint64_t current_span = 0;
};

ThreadState& thread_state() {
  thread_local ThreadState state;
  return state;
}

/// Cold path: first event on this thread registers a ring.
void ensure_ring(ThreadState& state) {
  if (state.ring) return;
  auto ring = std::make_shared<EventRing>(
      g_ring_capacity.load(std::memory_order_relaxed));
  Directory& dir = directory();
  std::lock_guard<CountedMutex> lock(dir.mutex);
  state.tid = dir.next_tid++;
  dir.rings.push_back(ring);
  state.ring = std::move(ring);
}

void push_event(TraceEvent event) {
  ThreadState& state = thread_state();
  ensure_ring(state);
  event.tid = state.tid;
  state.ring->push(event);
}

}  // namespace

void CountedMutex::lock() {
  g_lock_count.fetch_add(1, std::memory_order_relaxed);
  mutex_.lock();
}

void CountedMutex::unlock() { mutex_.unlock(); }

std::uint64_t lock_acquisitions() {
  return g_lock_count.load(std::memory_order_relaxed);
}

std::size_t ring_count() {
  Directory& dir = directory();
  std::lock_guard<CountedMutex> lock(dir.mutex);
  return dir.rings.size();
}

void set_ring_capacity(std::size_t capacity) {
  g_ring_capacity.store(capacity == 0 ? 1 : capacity,
                        std::memory_order_relaxed);
}

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::int64_t now_ns() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

Span::Span(const char* name, Category cat, std::uint64_t parent)
    : name_(name), cat_(cat) {
  if (!enabled()) return;
  detail::ThreadState& state = detail::thread_state();
  id_ = detail::g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_ = parent != 0 ? parent : state.current_span;
  prev_current_ = state.current_span;
  state.current_span = id_;
  start_ns_ = now_ns();
}

Span::Span(Span&& other) noexcept
    : name_(other.name_),
      id_(other.id_),
      parent_(other.parent_),
      prev_current_(other.prev_current_),
      start_ns_(other.start_ns_),
      vt_start_s_(other.vt_start_s_),
      vt_dur_s_(other.vt_dur_s_),
      cat_(other.cat_) {
  other.id_ = 0;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    name_ = other.name_;
    id_ = other.id_;
    parent_ = other.parent_;
    prev_current_ = other.prev_current_;
    start_ns_ = other.start_ns_;
    vt_start_s_ = other.vt_start_s_;
    vt_dur_s_ = other.vt_dur_s_;
    cat_ = other.cat_;
    other.id_ = 0;
  }
  return *this;
}

void Span::set_virtual(double vt_start_s, double vt_dur_s) {
  vt_start_s_ = vt_start_s;
  vt_dur_s_ = vt_dur_s;
}

void Span::end() {
  if (id_ == 0) return;
  detail::ThreadState& state = detail::thread_state();
  state.current_span = prev_current_;

  TraceEvent event;
  std::strncpy(event.name, name_ != nullptr ? name_ : "span",
               TraceEvent::kNameCap - 1);
  event.cat = cat_;
  event.id = id_;
  event.parent = parent_;
  event.ts_ns = start_ns_;
  event.dur_ns = now_ns() - start_ns_;
  event.vt_start_s = vt_start_s_;
  event.vt_dur_s = vt_dur_s_;
  detail::push_event(event);
  id_ = 0;
}

std::uint64_t Span::current() {
  if (!enabled()) return 0;
  return detail::thread_state().current_span;
}

void instant(const char* name, Category cat) {
  if (!enabled()) return;
  TraceEvent event;
  std::strncpy(event.name, name != nullptr ? name : "instant",
               TraceEvent::kNameCap - 1);
  event.cat = cat;
  event.instant = true;
  event.id =
      detail::g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  event.parent = detail::thread_state().current_span;
  event.ts_ns = now_ns();
  detail::push_event(event);
}

std::vector<TraceEvent> drain_events() {
  std::vector<TraceEvent> out;
  detail::Directory& dir = detail::directory();
  std::lock_guard<detail::CountedMutex> lock(dir.mutex);
  for (const auto& ring : dir.rings) {
    ring->drain(out);
  }
  return out;
}

std::uint64_t dropped_events() {
  return detail::g_dropped.load(std::memory_order_relaxed);
}

}  // namespace blob::obs
