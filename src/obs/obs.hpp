#pragma once
// Umbrella header + process lifecycle for the obs layer.
//
//   BLOB_TRACE=/path/trace.json    enable tracing, flush chrome trace at exit
//   BLOB_METRICS=/path/metrics.json  flush a metrics dump at exit
//
// Apps and benches call init_from_env() once near main(); everything else
// just includes obs/trace.hpp / obs/registry.hpp and emits.

#include <string>

#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace blob::obs {

/// Read BLOB_TRACE / BLOB_METRICS, enable tracing when BLOB_TRACE is set,
/// and register an atexit flush for whichever paths were given.
/// Idempotent; returns true when tracing was switched on.
bool init_from_env();

/// Drain every ring and write a Chrome trace to `path` (overwrites).
/// Returns false (and leaves no partial file promise) on I/O failure.
bool write_trace_file(const std::string& path);

/// Snapshot the global registry and write the JSON metrics dump.
bool write_metrics_file(const std::string& path);

}  // namespace blob::obs
