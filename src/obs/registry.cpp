#include "obs/registry.hpp"

#include <bit>

namespace blob::obs {

std::size_t Histogram::bucket_of(std::uint64_t value) {
  return static_cast<std::size_t>(std::bit_width(value));
}

std::uint64_t Histogram::bucket_floor(std::size_t b) {
  if (b == 0) return 0;
  return std::uint64_t{1} << (b - 1);
}

std::uint64_t Histogram::bucket_ceil(std::size_t b) {
  if (b == 0) return 0;
  if (b >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << b) - 1;
}

void Histogram::record(std::uint64_t value) {
  buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<detail::CountedMutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<detail::CountedMutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<detail::CountedMutex> lock(mutex_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.count = h->count();
    hs.sum = h->sum();
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t n = h->bucket_count(b);
      if (n != 0) hs.buckets.emplace_back(Histogram::bucket_floor(b), n);
    }
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<detail::CountedMutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

Registry& Registry::global() {
  static Registry* reg = new Registry();  // leaked: outlive static dtors
  return *reg;
}

}  // namespace blob::obs
