#include "obs/export.hpp"

#include <algorithm>
#include <ostream>
#include <unordered_map>

#include "util/json.hpp"

namespace blob::obs {

namespace {

// Chrome traces use microsecond timestamps; keep sub-µs precision by
// emitting fractional values.
double us(std::int64_t ns) { return static_cast<double>(ns) / 1000.0; }

void write_event_common(util::JsonWriter& w, const TraceEvent& e) {
  w.kv("name", e.name);
  w.kv("cat", to_string(e.cat));
  w.key("args");
  w.begin_object();
  w.kv("id", static_cast<std::int64_t>(e.id));
  w.kv("parent", static_cast<std::int64_t>(e.parent));
  if (e.vt_dur_s >= 0.0) {
    w.kv("vt_start_s", e.vt_start_s);
    w.kv("vt_dur_s", e.vt_dur_s);
  }
  w.end_object();
}

void write_process_name(util::JsonWriter& w, int pid, const char* label) {
  w.begin_object();
  w.kv("name", "process_name");
  w.kv("ph", "M");
  w.kv("pid", pid);
  w.kv("tid", 0);
  w.key("args");
  w.begin_object();
  w.kv("name", label);
  w.end_object();
  w.end_object();
}

}  // namespace

void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events) {
  util::JsonWriter w(out, /*pretty=*/false);
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents");
  w.begin_array();

  write_process_name(w, 1, "wall time");
  bool any_virtual =
      std::any_of(events.begin(), events.end(),
                  [](const TraceEvent& e) { return e.vt_dur_s >= 0.0; });
  if (any_virtual) write_process_name(w, 2, "modelled virtual time");

  std::unordered_map<std::uint64_t, std::uint32_t> tid_of;
  tid_of.reserve(events.size());
  for (const TraceEvent& e : events) {
    if (e.id != 0) tid_of.emplace(e.id, e.tid);
  }

  for (const TraceEvent& e : events) {
    w.begin_object();
    w.kv("ph", e.instant ? "i" : "X");
    w.kv("pid", 1);
    w.kv("tid", static_cast<std::int64_t>(e.tid));
    w.kv("ts", us(e.ts_ns));
    if (!e.instant) w.kv("dur", us(e.dur_ns));
    if (e.instant) w.kv("s", "t");
    write_event_common(w, e);
    w.end_object();

    // Mirror modelled intervals on the virtual-time lane. The sim clock
    // is seconds from stream start; scale to µs so zooming behaves.
    if (e.vt_dur_s >= 0.0) {
      w.begin_object();
      w.kv("ph", "X");
      w.kv("pid", 2);
      w.kv("tid", static_cast<std::int64_t>(e.tid));
      w.kv("ts", e.vt_start_s * 1e6);
      w.kv("dur", e.vt_dur_s * 1e6);
      write_event_common(w, e);
      w.end_object();
    }

    // Flow arrows for cross-thread parent links; same-thread nesting is
    // already visible as lane containment.
    if (e.parent != 0) {
      auto it = tid_of.find(e.parent);
      if (it != tid_of.end() && it->second != e.tid) {
        const std::int64_t flow_id = static_cast<std::int64_t>(e.id);
        w.begin_object();
        w.kv("ph", "s");
        w.kv("pid", 1);
        w.kv("tid", static_cast<std::int64_t>(it->second));
        w.kv("ts", us(e.ts_ns));
        w.kv("id", flow_id);
        w.kv("name", "link");
        w.kv("cat", to_string(e.cat));
        w.end_object();
        w.begin_object();
        w.kv("ph", "f");
        w.kv("bp", "e");
        w.kv("pid", 1);
        w.kv("tid", static_cast<std::int64_t>(e.tid));
        w.kv("ts", us(e.ts_ns));
        w.kv("id", flow_id);
        w.kv("name", "link");
        w.kv("cat", to_string(e.cat));
        w.end_object();
      }
    }
  }

  w.end_array();
  w.end_object();
  out << "\n";
}

void write_metrics_text(std::ostream& out, const MetricsSnapshot& snap) {
  out << "# counters\n";
  for (const auto& [name, value] : snap.counters) {
    out << name << " " << value << "\n";
  }
  out << "# histograms (log2 buckets: floor=count)\n";
  for (const HistogramSnapshot& h : snap.histograms) {
    const double mean =
        h.count == 0 ? 0.0
                     : static_cast<double>(h.sum) /
                           static_cast<double>(h.count);
    out << h.name << " count=" << h.count << " sum=" << h.sum
        << " mean=" << mean << "\n";
    for (const auto& [floor, n] : h.buckets) {
      out << "  " << floor << "=" << n << "\n";
    }
  }
}

void write_metrics_json(std::ostream& out, const MetricsSnapshot& snap) {
  util::JsonWriter w(out, /*pretty=*/true);
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, value] : snap.counters) {
    w.kv(name, static_cast<std::int64_t>(value));
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const HistogramSnapshot& h : snap.histograms) {
    w.key(h.name);
    w.begin_object();
    w.kv("count", static_cast<std::int64_t>(h.count));
    w.kv("sum", static_cast<std::int64_t>(h.sum));
    w.key("buckets");
    w.begin_array();
    for (const auto& [floor, n] : h.buckets) {
      w.begin_array();
      w.value(static_cast<std::int64_t>(floor));
      w.value(static_cast<std::int64_t>(n));
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  out << "\n";
}

}  // namespace blob::obs
