#include "obs/obs.hpp"

#include <cstdlib>
#include <fstream>
#include <mutex>

namespace blob::obs {

namespace {

std::string& trace_path() {
  static std::string path;
  return path;
}

std::string& metrics_path() {
  static std::string path;
  return path;
}

void flush_at_exit() {
  if (!trace_path().empty()) write_trace_file(trace_path());
  if (!metrics_path().empty()) write_metrics_file(metrics_path());
}

}  // namespace

bool init_from_env() {
  static std::once_flag once;
  static bool traced = false;
  std::call_once(once, [] {
    const char* trace = std::getenv("BLOB_TRACE");
    const char* metrics = std::getenv("BLOB_METRICS");
    if (trace != nullptr && trace[0] != '\0') {
      trace_path() = trace;
      set_enabled(true);
      traced = true;
    }
    if (metrics != nullptr && metrics[0] != '\0') {
      metrics_path() = metrics;
    }
    if (!trace_path().empty() || !metrics_path().empty()) {
      std::atexit(flush_at_exit);
    }
  });
  return traced;
}

bool write_trace_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out, drain_events());
  return static_cast<bool>(out);
}

bool write_metrics_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_metrics_json(out, Registry::global().snapshot());
  return static_cast<bool>(out);
}

}  // namespace blob::obs
