#pragma once
// Exporters for the obs layer: Chrome trace_event JSON (open in
// chrome://tracing or https://ui.perfetto.dev) and a flat metrics dump
// (text for eyeballs, JSON for machines).

#include <iosfwd>
#include <vector>

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace blob::obs {

/// Write events as a Chrome trace_event JSON object. Wall-time spans and
/// instants land on pid 1 ("wall"); events carrying a modelled interval
/// are mirrored on pid 2 ("virtual") at their simulated coordinates.
/// Cross-thread parent/child pairs additionally get "s"/"f" flow arrows.
/// Every event's span id / parent id ride in its "args", which is what
/// scripts/check_trace.py walks to validate end-to-end chains.
void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events);

/// Flat human-readable dump: one "name value" line per counter, then one
/// block per histogram (count, sum, mean, non-empty log2 buckets).
void write_metrics_text(std::ostream& out, const MetricsSnapshot& snap);

/// Same content as JSON: {"counters": {...}, "histograms": {...}}.
void write_metrics_json(std::ostream& out, const MetricsSnapshot& snap);

}  // namespace blob::obs
