#pragma once
// The factorizations' connection to the cblas dispatch seam.
//
// The auto-offload papers (arXiv:2404.13195, arXiv:2501.00279) intercept
// BLAS traffic generated *inside* solvers — that is where the offload
// threshold question actually gets asked in production. These helpers
// let the blocked factorizations offer their trailing-update GEMM and
// panel GEMV traffic to an installed dispatch hook while keeping their
// own thread pool for the CPU fallback: with no hook installed every
// call degenerates to the exact direct blas:: call the solvers made
// before, bit for bit.
//
// The note_* helpers report the host-side writes the seam cannot see
// (panel kernels, pivot row interchanges) so a residency-tracking hook
// can keep its device-copy map truthful across panel iterations. They
// are advisory: correctness never depends on them.

#include <cstddef>

#include "blas/cblas.hpp"
#include "blas/gemm.hpp"
#include "blas/gemv.hpp"

namespace blob::lapack::seam {

/// Offer one column-major GEMM to the dispatch hook; fall back to the
/// caller's own pool when no hook claims it.
template <typename T>
void gemm_via_seam(blas::Transpose ta, blas::Transpose tb, int m, int n,
                   int k, T alpha, const T* a, int lda, const T* b, int ldb,
                   T beta, T* c, int ldc, parallel::ThreadPool* pool,
                   std::size_t threads) {
  if (!blas::offer_gemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c,
                        ldc)) {
    blas::gemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, pool,
               threads);
  }
}

/// Offer one column-major GEMV to the dispatch hook; fall back to the
/// caller's own pool when no hook claims it.
template <typename T>
void gemv_via_seam(blas::Transpose ta, int m, int n, T alpha, const T* a,
                   int lda, const T* x, int incx, T beta, T* y, int incy,
                   parallel::ThreadPool* pool, std::size_t threads) {
  if (!blas::offer_gemv(ta, m, n, alpha, a, lda, x, incx, beta, y, incy)) {
    blas::gemv(ta, m, n, alpha, a, lda, x, incx, beta, y, incy, pool,
               threads);
  }
}

/// Notify the hook that the host wrote the rows x cols block at `ptr`
/// (leading dimension lda). Tight blocks collapse to one contiguous
/// range; padded blocks are reported column by column so byte-disjoint
/// neighbours keep their residency.
template <typename T>
void note_block_write(const T* ptr, int lda, int rows, int cols) {
  if (ptr == nullptr || rows <= 0 || cols <= 0) return;
  if (lda == rows) {
    blas::cblas_note_host_write(
        ptr, sizeof(T) * static_cast<std::size_t>(rows) *
                 static_cast<std::size_t>(cols),
        0, 1);
  } else {
    blas::cblas_note_host_write(ptr,
                                sizeof(T) * static_cast<std::size_t>(rows),
                                sizeof(T) * static_cast<std::size_t>(lda),
                                static_cast<std::size_t>(cols));
  }
}

/// Notify the hook that rows `ra` and `rb` of an lda-strided matrix were
/// interchanged across `cols` columns (one element per column).
template <typename T>
void note_row_swap(const T* ra, const T* rb, int lda, int cols) {
  if (ra == nullptr || rb == nullptr || cols <= 0) return;
  blas::cblas_note_host_swap(ra, rb, sizeof(T),
                             sizeof(T) * static_cast<std::size_t>(lda),
                             static_cast<std::size_t>(cols));
}

}  // namespace blob::lapack::seam
