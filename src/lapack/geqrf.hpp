#pragma once
// Householder QR factorization and least squares (LAPACK geqrf / ormqr /
// gels subset).
//
// QR rounds out the factorization layer: its panel/update structure is
// another of the "matrices of all shapes and sizes" workloads (§III-C) —
// the trailing update applies a block reflector as two GEMMs whose shape
// degrades exactly like LU's.

#include <vector>

#include "blas/types.hpp"
#include "parallel/thread_pool.hpp"

namespace blob::lapack {

/// In-place Householder QR of A (m x n, m >= n, column major):
/// R ends up in the upper triangle, the Householder vectors below the
/// diagonal (unit leading element implicit), and `tau` holds the n
/// reflector coefficients. Blocked with compact-WY trailing updates.
template <typename T>
void geqrf(int m, int n, T* a, int lda, std::vector<T>& tau,
           parallel::ThreadPool* pool = nullptr, std::size_t threads = 1,
           int block = 32);

/// Apply Q^T (from geqrf) to C (m x nrhs): C <- Q^T C. Used by gels.
template <typename T>
void ormqr_qt(int m, int n, int nrhs, const T* qr, int lda,
              const std::vector<T>& tau, T* c, int ldc);

/// Minimum-norm least squares: minimise ||A x - b||_2 for full-rank A
/// (m x n, m >= n). On return the first n rows of b hold x; A is
/// overwritten with its QR factors.
template <typename T>
void gels(int m, int n, int nrhs, T* a, int lda, T* b, int ldb,
          parallel::ThreadPool* pool = nullptr, std::size_t threads = 1);

#define BLOB_LAPACK_GEQRF_EXTERN(T)                                         \
  extern template void geqrf<T>(int, int, T*, int, std::vector<T>&,         \
                                parallel::ThreadPool*, std::size_t, int);   \
  extern template void ormqr_qt<T>(int, int, int, const T*, int,            \
                                   const std::vector<T>&, T*, int);         \
  extern template void gels<T>(int, int, int, T*, int, T*, int,             \
                               parallel::ThreadPool*, std::size_t)
BLOB_LAPACK_GEQRF_EXTERN(float);
BLOB_LAPACK_GEQRF_EXTERN(double);
#undef BLOB_LAPACK_GEQRF_EXTERN

}  // namespace blob::lapack
