#include "lapack/getrf.hpp"

#include <algorithm>
#include <cmath>

#include "blas/gemm.hpp"
#include "blas/level3.hpp"
#include "lapack/seam.hpp"

namespace blob::lapack {

namespace {

/// Unblocked right-looking LU on the panel A[j0:n, j0:j0+jb), pivoting
/// full rows of the n-column matrix.
template <typename T>
void getrf_panel(int n_rows, int n_cols_total, int j0, int jb, T* a, int lda,
                 std::vector<int>& ipiv) {
  for (int j = j0; j < j0 + jb; ++j) {
    // Find the pivot in column j below (and including) row j.
    int pivot = j;
    T best = std::abs(a[j + static_cast<std::size_t>(j) * lda]);
    for (int i = j + 1; i < n_rows; ++i) {
      const T v = std::abs(a[i + static_cast<std::size_t>(j) * lda]);
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    if (best == T(0)) {
      throw FactorizationError("getrf: exactly singular at column " +
                               std::to_string(j));
    }
    ipiv[static_cast<std::size_t>(j)] = pivot;
    if (pivot != j) {
      // Swap complete rows (all n_cols_total columns).
      for (int c = 0; c < n_cols_total; ++c) {
        std::swap(a[j + static_cast<std::size_t>(c) * lda],
                  a[pivot + static_cast<std::size_t>(c) * lda]);
      }
      // A residency-tracking hook mirrors the interchange on its device
      // copies (a device laswp keeps clean columns clean) instead of
      // losing the trailing matrix's warmth to every pivot.
      seam::note_row_swap(a + j, a + pivot, lda, n_cols_total);
    }
    // Scale the column below the pivot and update the trailing panel.
    const T inv = T(1) / a[j + static_cast<std::size_t>(j) * lda];
    for (int i = j + 1; i < n_rows; ++i) {
      a[i + static_cast<std::size_t>(j) * lda] *= inv;
    }
    for (int c = j + 1; c < j0 + jb; ++c) {
      const T ajc = a[j + static_cast<std::size_t>(c) * lda];
      if (ajc == T(0)) continue;
      for (int i = j + 1; i < n_rows; ++i) {
        a[i + static_cast<std::size_t>(c) * lda] -=
            a[i + static_cast<std::size_t>(j) * lda] * ajc;
      }
    }
  }
}

}  // namespace

template <typename T>
void getrf(int n, T* a, int lda, std::vector<int>& ipiv,
           parallel::ThreadPool* pool, std::size_t threads, int block) {
  if (n < 0 || lda < std::max(1, n)) {
    throw blas::BlasError("getrf: bad dimensions");
  }
  ipiv.assign(static_cast<std::size_t>(n), 0);
  block = std::max(1, block);

  for (int j0 = 0; j0 < n; j0 += block) {
    const int jb = std::min(block, n - j0);
    // Factor the current panel (pivoting swaps whole rows, so the
    // already-factored left part and the unfactored right part follow).
    getrf_panel(n, n, j0, jb, a, lda, ipiv);
    // The panel kernel wrote columns [j0, j0+jb) of rows [j0, n) behind
    // the seam's back.
    seam::note_block_write(a + j0 + static_cast<std::size_t>(j0) * lda, lda,
                           n - j0, jb);

    const int trailing = n - j0 - jb;
    if (trailing > 0) {
      // U12 = L11^-1 * A12  (unit lower triangular solve).
      blas::trsm(blas::Side::Left, blas::UpLo::Lower, blas::Transpose::No,
                 blas::Diag::Unit, jb, trailing, T(1),
                 a + j0 + static_cast<std::size_t>(j0) * lda, lda,
                 a + j0 + static_cast<std::size_t>(j0 + jb) * lda, lda, pool,
                 threads);
      seam::note_block_write(
          a + j0 + static_cast<std::size_t>(j0 + jb) * lda, lda, jb,
          trailing);
      // A22 -= L21 * U12: the tall-times-wide GEMM that dominates LU,
      // offered to the dispatch hook panel by panel.
      seam::gemm_via_seam(blas::Transpose::No, blas::Transpose::No,
                          n - j0 - jb, trailing, jb, T(-1),
                          a + (j0 + jb) + static_cast<std::size_t>(j0) * lda,
                          lda,
                          a + j0 + static_cast<std::size_t>(j0 + jb) * lda,
                          lda, T(1),
                          a + (j0 + jb) +
                              static_cast<std::size_t>(j0 + jb) * lda,
                          lda, pool, threads);
    }
  }
}

template <typename T>
void getrs(int n, int nrhs, const T* lu, int lda,
           const std::vector<int>& ipiv, T* b, int ldb,
           parallel::ThreadPool* pool, std::size_t threads) {
  if (n < 0 || nrhs < 0 || lda < std::max(1, n) || ldb < std::max(1, n)) {
    throw blas::BlasError("getrs: bad dimensions");
  }
  if (static_cast<int>(ipiv.size()) < n) {
    throw blas::BlasError("getrs: ipiv too short");
  }
  // Apply the row interchanges to B (sequentially, as in LAPACK laswp).
  for (int i = 0; i < n; ++i) {
    const int p = ipiv[static_cast<std::size_t>(i)];
    if (p != i) {
      for (int c = 0; c < nrhs; ++c) {
        std::swap(b[i + static_cast<std::size_t>(c) * ldb],
                  b[p + static_cast<std::size_t>(c) * ldb]);
      }
    }
  }
  // L y = P b (unit lower), then U x = y.
  blas::trsm(blas::Side::Left, blas::UpLo::Lower, blas::Transpose::No,
             blas::Diag::Unit, n, nrhs, T(1), lu, lda, b, ldb, pool,
             threads);
  blas::trsm(blas::Side::Left, blas::UpLo::Upper, blas::Transpose::No,
             blas::Diag::NonUnit, n, nrhs, T(1), lu, lda, b, ldb, pool,
             threads);
}

template <typename T>
void gesv(int n, int nrhs, T* a, int lda, T* b, int ldb,
          parallel::ThreadPool* pool, std::size_t threads) {
  std::vector<int> ipiv;
  getrf(n, a, lda, ipiv, pool, threads);
  getrs(n, nrhs, a, lda, ipiv, b, ldb, pool, threads);
}

#define BLOB_LAPACK_GETRF_INST(T)                                          \
  template void getrf<T>(int, T*, int, std::vector<int>&,                  \
                         parallel::ThreadPool*, std::size_t, int);         \
  template void getrs<T>(int, int, const T*, int, const std::vector<int>&, \
                         T*, int, parallel::ThreadPool*, std::size_t);     \
  template void gesv<T>(int, int, T*, int, T*, int, parallel::ThreadPool*, \
                        std::size_t)
BLOB_LAPACK_GETRF_INST(float);
BLOB_LAPACK_GETRF_INST(double);
#undef BLOB_LAPACK_GETRF_INST

}  // namespace blob::lapack
