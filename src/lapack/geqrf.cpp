#include "lapack/geqrf.hpp"

#include <algorithm>
#include <cmath>

#include "blas/gemv.hpp"
#include "blas/level2.hpp"
#include "blas/level3.hpp"
#include "blas/ref_blas.hpp"
#include "lapack/seam.hpp"

namespace blob::lapack {

namespace {

/// Generate the Householder reflector for x = A[j:m, j]:
/// H x = (beta, 0, ..., 0)^T with H = I - tau v v^T, v[0] = 1.
/// Writes beta to A[j,j], v[1:] below it; returns tau (0 for a zero
/// column: H = I).
template <typename T>
T make_reflector(int m, int j, T* a, int lda) {
  T* x = a + j + static_cast<std::size_t>(j) * lda;
  const int len = m - j;
  if (len <= 1) return T(0);

  const T alpha = x[0];
  T norm_rest = blas::ref::nrm2(len - 1, x + 1, 1);
  if (norm_rest == T(0)) return T(0);  // already upper triangular here

  const T norm_x = std::hypot(alpha, norm_rest);
  const T beta = alpha >= T(0) ? -norm_x : norm_x;  // avoid cancellation
  const T tau = (beta - alpha) / beta;
  const T inv = T(1) / (alpha - beta);
  for (int i = 1; i < len; ++i) x[i] *= inv;
  x[0] = beta;
  return tau;
}

/// Apply H = I - tau v v^T (v from column j of the factor, v[0]=1
/// implicit; A[j,j] holds beta) to C[j:m, 0:ncols] with leading
/// dimension ldc. The two BLAS-shaped halves — the panel GEMV
/// w = C^T v and the rank-1 update C -= tau v w^T — go through the
/// dispatch seam, LAPACK dlarf style, with v staged into scratch so
/// the implicit unit head becomes explicit.
template <typename T>
void apply_reflector(int m, int j, const T* qr, int lda, T tau, T* c,
                     int ldc, int ncols, std::vector<T>& v, std::vector<T>& w,
                     parallel::ThreadPool* pool, std::size_t threads) {
  if (tau == T(0) || ncols <= 0) return;
  const int len = m - j;
  const T* col = qr + j + static_cast<std::size_t>(j) * lda;  // col[0]=beta
  v.assign(static_cast<std::size_t>(len), T(1));
  std::copy(col + 1, col + len, v.begin() + 1);
  seam::note_block_write(v.data(), len, len, 1);
  w.assign(static_cast<std::size_t>(ncols), T(0));
  seam::note_block_write(w.data(), ncols, ncols, 1);
  // w = C^T v.
  seam::gemv_via_seam(blas::Transpose::Yes, len, ncols, T(1), c + j, ldc,
                      v.data(), 1, T(0), w.data(), 1, pool, threads);
  // C -= tau * v * w^T (a rank-1 GEMM so the seam sees it).
  seam::gemm_via_seam(blas::Transpose::No, blas::Transpose::No, len, ncols,
                      1, -tau, v.data(), len, w.data(), 1, T(1), c + j, ldc,
                      pool, threads);
}

}  // namespace

template <typename T>
void geqrf(int m, int n, T* a, int lda, std::vector<T>& tau,
           parallel::ThreadPool* pool, std::size_t threads, int /*block*/) {
  if (m < 0 || n < 0 || m < n || lda < std::max(1, m)) {
    throw blas::BlasError("geqrf: bad dimensions (need m >= n)");
  }
  tau.assign(static_cast<std::size_t>(n), T(0));
  std::vector<T> v;
  std::vector<T> w;
  for (int j = 0; j < n; ++j) {
    const T t = make_reflector(m, j, a, lda);
    tau[static_cast<std::size_t>(j)] = t;
    // The reflector generation rewrote column j below the diagonal.
    seam::note_block_write(a + j + static_cast<std::size_t>(j) * lda, lda,
                           m - j, 1);
    // Trailing update: apply H_j to A[j:m, j+1:n].
    if (j + 1 < n) {
      apply_reflector(m, j, a, lda, t,
                      a + static_cast<std::size_t>(j + 1) * lda, lda,
                      n - j - 1, v, w, pool, threads);
    }
  }
}

template <typename T>
void ormqr_qt(int m, int n, int nrhs, const T* qr, int lda,
              const std::vector<T>& tau, T* c, int ldc) {
  if (m < 0 || n < 0 || nrhs < 0 || lda < std::max(1, m) ||
      ldc < std::max(1, m)) {
    throw blas::BlasError("ormqr_qt: bad dimensions");
  }
  if (static_cast<int>(tau.size()) < n) {
    throw blas::BlasError("ormqr_qt: tau too short");
  }
  std::vector<T> v;
  std::vector<T> w;
  // Q^T = H_{n-1} ... H_1 H_0 applied left to right.
  for (int j = 0; j < n; ++j) {
    apply_reflector(m, j, qr, lda, tau[static_cast<std::size_t>(j)], c, ldc,
                    nrhs, v, w, /*pool=*/nullptr, /*threads=*/1);
  }
}

template <typename T>
void gels(int m, int n, int nrhs, T* a, int lda, T* b, int ldb,
          parallel::ThreadPool* pool, std::size_t threads) {
  std::vector<T> tau;
  geqrf(m, n, a, lda, tau, pool, threads);
  ormqr_qt(m, n, nrhs, a, lda, tau, b, ldb);
  // Solve R x = (Q^T b)[0:n] in place.
  blas::trsm(blas::Side::Left, blas::UpLo::Upper, blas::Transpose::No,
             blas::Diag::NonUnit, n, nrhs, T(1), a, lda, b, ldb, pool,
             threads);
}

#define BLOB_LAPACK_GEQRF_INST(T)                                        \
  template void geqrf<T>(int, int, T*, int, std::vector<T>&,             \
                         parallel::ThreadPool*, std::size_t, int);       \
  template void ormqr_qt<T>(int, int, int, const T*, int,                \
                            const std::vector<T>&, T*, int);             \
  template void gels<T>(int, int, int, T*, int, T*, int,                 \
                        parallel::ThreadPool*, std::size_t)
BLOB_LAPACK_GEQRF_INST(float);
BLOB_LAPACK_GEQRF_INST(double);
#undef BLOB_LAPACK_GEQRF_INST

}  // namespace blob::lapack
