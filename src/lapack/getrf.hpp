#pragma once
// LU factorization with partial pivoting (LAPACK getrf/getrs/gesv).
//
// LU is one of the paper's motivating real workloads whose GEMM updates
// have "matrices of all shapes and sizes" (§III-C): the trailing-matrix
// update of a blocked LU is exactly a tall-times-wide GEMM whose shape
// shrinks every panel. Built entirely on our BLAS (trsm + gemm), blocked
// with a classic right-looking algorithm.

#include <vector>

#include "blas/types.hpp"
#include "parallel/thread_pool.hpp"

namespace blob::lapack {

/// Raised when a factorization encounters an exactly singular pivot or
/// a non-positive-definite matrix (potrf).
struct FactorizationError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// In-place blocked LU with partial pivoting: A (n x n, column major,
/// leading dimension lda) becomes L\U; ipiv[i] records the row swapped
/// with row i (0-based, LAPACK-style sequential interpretation).
/// Throws FactorizationError on an exactly zero pivot column.
template <typename T>
void getrf(int n, T* a, int lda, std::vector<int>& ipiv,
           parallel::ThreadPool* pool = nullptr, std::size_t threads = 1,
           int block = 64);

/// Solve A * X = B for nrhs right-hand sides using a prior getrf result.
/// B is n x nrhs column major (ldb >= n) and is overwritten with X.
template <typename T>
void getrs(int n, int nrhs, const T* lu, int lda,
           const std::vector<int>& ipiv, T* b, int ldb,
           parallel::ThreadPool* pool = nullptr, std::size_t threads = 1);

/// Factor-and-solve convenience (LAPACK gesv): A is overwritten with its
/// LU factors, B with the solution.
template <typename T>
void gesv(int n, int nrhs, T* a, int lda, T* b, int ldb,
          parallel::ThreadPool* pool = nullptr, std::size_t threads = 1);

#define BLOB_LAPACK_GETRF_EXTERN(T)                                        \
  extern template void getrf<T>(int, T*, int, std::vector<int>&,           \
                                parallel::ThreadPool*, std::size_t, int);  \
  extern template void getrs<T>(int, int, const T*, int,                   \
                                const std::vector<int>&, T*, int,          \
                                parallel::ThreadPool*, std::size_t);       \
  extern template void gesv<T>(int, int, T*, int, T*, int,                 \
                               parallel::ThreadPool*, std::size_t)
BLOB_LAPACK_GETRF_EXTERN(float);
BLOB_LAPACK_GETRF_EXTERN(double);
#undef BLOB_LAPACK_GETRF_EXTERN

}  // namespace blob::lapack
