#pragma once
// Cholesky factorization (LAPACK potrf/potrs) for symmetric positive
// definite matrices, blocked on our BLAS (trsm + syrk + gemm).

#include <stdexcept>

#include "lapack/getrf.hpp"  // FactorizationError
#include "blas/types.hpp"
#include "parallel/thread_pool.hpp"

namespace blob::lapack {

/// In-place blocked Cholesky of the `uplo` triangle of A (n x n, column
/// major): A = L*L^T (Lower) or U^T*U (Upper). Only the requested
/// triangle is referenced or written. Throws FactorizationError if A is
/// not positive definite.
template <typename T>
void potrf(blas::UpLo uplo, int n, T* a, int lda,
           parallel::ThreadPool* pool = nullptr, std::size_t threads = 1,
           int block = 64);

/// Solve A * X = B given the potrf factor (same uplo); B (n x nrhs,
/// column major) is overwritten with X.
template <typename T>
void potrs(blas::UpLo uplo, int n, int nrhs, const T* factor, int lda, T* b,
           int ldb, parallel::ThreadPool* pool = nullptr,
           std::size_t threads = 1);

#define BLOB_LAPACK_POTRF_EXTERN(T)                                        \
  extern template void potrf<T>(blas::UpLo, int, T*, int,                  \
                                parallel::ThreadPool*, std::size_t, int);  \
  extern template void potrs<T>(blas::UpLo, int, int, const T*, int, T*,   \
                                int, parallel::ThreadPool*, std::size_t)
BLOB_LAPACK_POTRF_EXTERN(float);
BLOB_LAPACK_POTRF_EXTERN(double);
#undef BLOB_LAPACK_POTRF_EXTERN

}  // namespace blob::lapack
