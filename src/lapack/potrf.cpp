#include "lapack/potrf.hpp"

#include <algorithm>
#include <cmath>

#include "blas/gemm.hpp"
#include "blas/level3.hpp"
#include "lapack/seam.hpp"

namespace blob::lapack {

namespace {

/// Unblocked lower Cholesky of A[j0:j0+jb, j0:j0+jb] with the update of
/// the rows below handled by the caller.
template <typename T>
void potrf_diag_lower(int j0, int jb, T* a, int lda) {
  for (int j = j0; j < j0 + jb; ++j) {
    T d = a[j + static_cast<std::size_t>(j) * lda];
    for (int p = j0; p < j; ++p) {
      const T l = a[j + static_cast<std::size_t>(p) * lda];
      d -= l * l;
    }
    if (!(d > T(0))) {
      throw FactorizationError("potrf: matrix is not positive definite at " +
                               std::to_string(j));
    }
    d = std::sqrt(d);
    a[j + static_cast<std::size_t>(j) * lda] = d;
    const T inv = T(1) / d;
    for (int i = j + 1; i < j0 + jb; ++i) {
      T v = a[i + static_cast<std::size_t>(j) * lda];
      for (int p = j0; p < j; ++p) {
        v -= a[i + static_cast<std::size_t>(p) * lda] *
             a[j + static_cast<std::size_t>(p) * lda];
      }
      a[i + static_cast<std::size_t>(j) * lda] = v * inv;
    }
  }
}

template <typename T>
void potrf_lower(int n, T* a, int lda, parallel::ThreadPool* pool,
                 std::size_t threads, int block) {
  for (int j0 = 0; j0 < n; j0 += block) {
    const int jb = std::min(block, n - j0);
    potrf_diag_lower(j0, jb, a, lda);
    seam::note_block_write(a + j0 + static_cast<std::size_t>(j0) * lda, lda,
                           jb, jb);
    const int below = n - j0 - jb;
    if (below > 0) {
      // L21 = A21 * L11^-T.
      blas::trsm(blas::Side::Right, blas::UpLo::Lower, blas::Transpose::Yes,
                 blas::Diag::NonUnit, below, jb, T(1),
                 a + j0 + static_cast<std::size_t>(j0) * lda, lda,
                 a + (j0 + jb) + static_cast<std::size_t>(j0) * lda, lda,
                 pool, threads);
      seam::note_block_write(a + (j0 + jb) + static_cast<std::size_t>(j0) * lda,
                             lda, below, jb);
      // A22 -= L21 * L21^T, split per trailing block column: a small
      // host syrk keeps the symmetric jbb x jbb diagonal tile, and the
      // rectangle below it goes through the dispatch seam as a GEMM.
      // Each block column's GEMM writes the SAME C region on every
      // panel, so a residency-tracking hook keeps the trailing matrix
      // device-resident across the whole factorization.
      for (int jj = j0 + jb; jj < n; jj += block) {
        const int jbb = std::min(block, n - jj);
        blas::syrk(blas::UpLo::Lower, blas::Transpose::No, jbb, jb, T(-1),
                   a + jj + static_cast<std::size_t>(j0) * lda, lda, T(1),
                   a + jj + static_cast<std::size_t>(jj) * lda, lda, pool,
                   threads);
        seam::note_block_write(a + jj + static_cast<std::size_t>(jj) * lda,
                               lda, jbb, jbb);
        const int rows = n - jj - jbb;
        if (rows > 0) {
          seam::gemm_via_seam(
              blas::Transpose::No, blas::Transpose::Yes, rows, jbb, jb,
              T(-1), a + (jj + jbb) + static_cast<std::size_t>(j0) * lda,
              lda, a + jj + static_cast<std::size_t>(j0) * lda, lda, T(1),
              a + (jj + jbb) + static_cast<std::size_t>(jj) * lda, lda, pool,
              threads);
        }
      }
    }
  }
}

/// Transpose the lower factor into the upper triangle in place.
template <typename T>
void mirror_lower_to_upper(int n, T* a, int lda) {
  for (int j = 0; j < n; ++j) {
    for (int i = j + 1; i < n; ++i) {
      a[j + static_cast<std::size_t>(i) * lda] =
          a[i + static_cast<std::size_t>(j) * lda];
    }
  }
}

/// Mirror the upper triangle into the lower one (so the lower algorithm
/// can run on upper-stored input).
template <typename T>
void mirror_upper_to_lower(int n, T* a, int lda) {
  for (int j = 0; j < n; ++j) {
    for (int i = j + 1; i < n; ++i) {
      a[i + static_cast<std::size_t>(j) * lda] =
          a[j + static_cast<std::size_t>(i) * lda];
    }
  }
}

}  // namespace

template <typename T>
void potrf(blas::UpLo uplo, int n, T* a, int lda, parallel::ThreadPool* pool,
           std::size_t threads, int block) {
  if (n < 0 || lda < std::max(1, n)) {
    throw blas::BlasError("potrf: bad dimensions");
  }
  block = std::max(1, block);
  if (uplo == blas::UpLo::Lower) {
    potrf_lower(n, a, lda, pool, threads, block);
  } else {
    // Factor via the lower algorithm on the mirrored data, then mirror
    // the factor back. Costs one O(n^2) transpose each way. Both
    // mirrors are whole-matrix host writes the seam cannot see.
    mirror_upper_to_lower(n, a, lda);
    seam::note_block_write(a, lda, n, n);
    potrf_lower(n, a, lda, pool, threads, block);
    mirror_lower_to_upper(n, a, lda);
    seam::note_block_write(a, lda, n, n);
  }
}

template <typename T>
void potrs(blas::UpLo uplo, int n, int nrhs, const T* factor, int lda, T* b,
           int ldb, parallel::ThreadPool* pool, std::size_t threads) {
  if (n < 0 || nrhs < 0 || lda < std::max(1, n) || ldb < std::max(1, n)) {
    throw blas::BlasError("potrs: bad dimensions");
  }
  if (uplo == blas::UpLo::Lower) {
    // L y = b, then L^T x = y.
    blas::trsm(blas::Side::Left, blas::UpLo::Lower, blas::Transpose::No,
               blas::Diag::NonUnit, n, nrhs, T(1), factor, lda, b, ldb, pool,
               threads);
    blas::trsm(blas::Side::Left, blas::UpLo::Lower, blas::Transpose::Yes,
               blas::Diag::NonUnit, n, nrhs, T(1), factor, lda, b, ldb, pool,
               threads);
  } else {
    // U^T y = b, then U x = y.
    blas::trsm(blas::Side::Left, blas::UpLo::Upper, blas::Transpose::Yes,
               blas::Diag::NonUnit, n, nrhs, T(1), factor, lda, b, ldb, pool,
               threads);
    blas::trsm(blas::Side::Left, blas::UpLo::Upper, blas::Transpose::No,
               blas::Diag::NonUnit, n, nrhs, T(1), factor, lda, b, ldb, pool,
               threads);
  }
}

#define BLOB_LAPACK_POTRF_INST(T)                                          \
  template void potrf<T>(blas::UpLo, int, T*, int, parallel::ThreadPool*,  \
                         std::size_t, int);                                \
  template void potrs<T>(blas::UpLo, int, int, const T*, int, T*, int,     \
                         parallel::ThreadPool*, std::size_t)
BLOB_LAPACK_POTRF_INST(float);
BLOB_LAPACK_POTRF_INST(double);
#undef BLOB_LAPACK_POTRF_INST

}  // namespace blob::lapack
