#pragma once
// FLOP counting and transfer-byte accounting (paper §III-A).
//
// GPU-BLOB counts GEMM as 2MNK + MN + qMN and GEMV as 2MN + M + qM where
// q = 0 if beta == 0 and q = 2 otherwise — the paper's Table I experiment
// established that modern libraries implement the beta=0 optimization but
// not an alpha=1 one, so alpha never enters the count.

#include <cstdint>

#include "core/op_desc.hpp"
#include "core/problem.hpp"

namespace blob::core {

/// FLOPs of one GEMM call under the paper's model.
double gemm_flops(std::int64_t m, std::int64_t n, std::int64_t k,
                  bool beta_zero);

/// FLOPs of one GEMV call under the paper's model.
double gemv_flops(std::int64_t m, std::int64_t n, bool beta_zero);

/// FLOPs of one call of `desc` (batch multiplies GEMM). Transposes never
/// change the count — only where the elements live.
double problem_flops(const OpDesc& desc);

/// Bytes copied host->device per upload of the operation's input data
/// structures (A, B, C for GEMM; A, x, y for GEMV — §III-B2).
double h2d_bytes(const OpDesc& desc);

/// Bytes copied device->host per download of the output structure
/// (C for GEMM; y — of trans-dependent length — for GEMV).
double d2h_bytes(const OpDesc& desc);

/// Arithmetic intensity (FLOPs per byte of h2d+d2h traffic for a single
/// round trip) — the quantity the paper uses to explain which non-square
/// problems never offload profitably (§IV-C).
double arithmetic_intensity(const OpDesc& desc);

/// Sweep-layer sugar. Each throws std::invalid_argument if a GEMV
/// problem violates the k == 1 convention (see core::Dims).
double problem_flops(const Problem& problem);
double h2d_bytes(const Problem& problem);
double d2h_bytes(const Problem& problem);
double arithmetic_intensity(const Problem& problem);

/// GFLOP/s given total seconds for `iterations` calls.
double gflops(const Problem& problem, std::int64_t iterations,
              double total_seconds);

}  // namespace blob::core
