#include "core/energy.hpp"

#include <algorithm>

#include "core/sim_backend.hpp"

namespace blob::core {

EnergyEstimate estimate_energy(const profile::SystemProfile& profile,
                               const Problem& problem,
                               std::int64_t iterations, TransferMode mode) {
  SimBackend backend(profile, /*noise_override=*/0.0);
  EnergyEstimate e;

  // CPU side: busy power at the thread count the library would pick.
  const auto& d = problem.dims;
  const double threads =
      problem.op == KernelOp::Gemm
          ? profile.cpu.gemm_threads(static_cast<double>(d.m),
                                     static_cast<double>(d.n),
                                     static_cast<double>(d.k))
          : profile.cpu.gemv_threads(static_cast<double>(d.m),
                                     static_cast<double>(d.n));
  e.cpu_seconds = backend.cpu_time(problem, iterations);
  e.cpu_joules = e.cpu_seconds * profile.cpu.power_w(threads);

  // GPU side: split the total into kernel-busy and transfer/idle time.
  e.gpu_seconds = *backend.gpu_time(problem, iterations, mode);
  const double kernel_total =
      backend.kernel_time(problem) * static_cast<double>(iterations);
  const double busy = std::min(kernel_total, e.gpu_seconds);
  const double waiting = e.gpu_seconds - busy;
  e.gpu_joules = busy * profile.gpu.board_power_w +
                 waiting * profile.gpu.idle_w +
                 // the host socket idles while it drives the GPU
                 e.gpu_seconds * profile.cpu.idle_w;
  return e;
}

}  // namespace blob::core
