#include "core/report.hpp"

#include <stdexcept>

#include "util/strfmt.hpp"
#include "util/table.hpp"

namespace blob::core {

namespace {

std::string cell(const std::optional<OffloadThreshold>& a,
                 const std::optional<OffloadThreshold>& b) {
  return threshold_value_string(a) + " : " + threshold_value_string(b);
}

}  // namespace

ThresholdEntry make_entry(const SweepResult& f32_result,
                          const SweepResult& f64_result) {
  if (f32_result.config.iterations != f64_result.config.iterations ||
      f32_result.type != f64_result.type) {
    throw std::invalid_argument("make_entry: mismatched sweeps");
  }
  ThresholdEntry e;
  e.iterations = f32_result.config.iterations;
  e.f32 = f32_result.thresholds;
  e.f64 = f64_result.thresholds;
  return e;
}

std::string render_threshold_table(const std::string& system_name,
                                   const ProblemType& type,
                                   const std::vector<ThresholdEntry>& rows) {
  util::TextTable table(
      {"Iterations", "Once", "Always", "USM"},
      {util::Align::Right, util::Align::Center, util::Align::Center,
       util::Align::Center});
  for (const auto& row : rows) {
    table.row({std::to_string(row.iterations), cell(row.f32[0], row.f64[0]),
               cell(row.f32[1], row.f64[1]), cell(row.f32[2], row.f64[2])});
  }
  const char* kind = type.op() == KernelOp::Gemm ? "GEMM" : "GEMV";
  return util::strfmt("%s %s (%s) offload thresholds [f32 : f64]\n",
                      system_name.c_str(), kind, type.label().c_str()) +
         table.str();
}

std::string first_threshold_iteration(
    const std::vector<ThresholdEntry>& rows) {
  std::string f32 = "--";
  std::string f64 = "--";
  for (const auto& row : rows) {
    if (f32 == "--" && row.f32[0].has_value()) {
      f32 = std::to_string(row.iterations);
    }
    if (f64 == "--" && row.f64[0].has_value()) {
      f64 = std::to_string(row.iterations);
    }
  }
  return f32 + " : " + f64;
}

std::string render_series(const std::string& title,
                          const std::vector<std::string>& labels,
                          const std::vector<std::int64_t>& sizes,
                          const std::vector<std::vector<double>>& series) {
  if (labels.size() != series.size()) {
    throw std::invalid_argument("render_series: labels/series mismatch");
  }
  for (const auto& s : series) {
    if (s.size() != sizes.size()) {
      throw std::invalid_argument("render_series: series length mismatch");
    }
  }
  std::vector<std::string> header = {"size"};
  header.insert(header.end(), labels.begin(), labels.end());
  std::vector<util::Align> align(header.size(), util::Align::Right);
  util::TextTable table(header, align);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::vector<std::string> row = {std::to_string(sizes[i])};
    for (const auto& s : series) {
      row.push_back(util::strfmt("%.2f", s[i]));
    }
    table.row(std::move(row));
  }
  return title + "\n" + table.str();
}

}  // namespace blob::core
