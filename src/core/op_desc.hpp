#pragma once
// core::OpDesc — the single canonical descriptor of one BLAS operation.
//
// One call, one description. The cblas seam builds an OpDesc from raw
// arguments; the dispatcher's decision table, admission queue, calibration
// store and decision trace key and record on it; the core backends, the
// advisor and the flops/bytes accounting consume it; and the simulated GPU
// executes it. `core::Problem` is sweep-layer sugar that lowers to an
// OpDesc via `lower()`. There is deliberately no other descriptor type in
// the stack (the old `dispatch::CallShape` and its `to_problem` glue are
// gone).
//
// Header-only on purpose: blob_blas (the cblas seam) sits below the core
// library in the link graph and must be able to speak the IR without
// linking it.
//
// Conventions (single validation point: `validate()`):
//  - Column-major storage with explicit leading dimensions, as in GPU-BLOB
//    (paper §III-A). For GEMM, m/n/k are the dimensions of op(A)·op(B);
//    the stored A is m×k when trans_a == No and k×m otherwise.
//  - GEMV: k is always exactly 1 (normalized here; `problem_flops` and
//    `h2d_bytes` reject anything else). A is always the stored m×n matrix;
//    trans_a selects A·x (x length n, y length m) or Aᵀ·x (x length m,
//    y length n). trans_b, ldb and the batch strides are meaningless.
//  - batch > 1 describes a strided-batched GEMM or GEMV (cublas
//    convention: operand i lives at base + i * stride; for GEMV the
//    strides cover A, x and y). batch == 1 leaves the strides unused.

#include <cstdint>
#include <stdexcept>

#include "blas/types.hpp"
#include "core/problem.hpp"
#include "perfmodel/precision.hpp"

namespace blob::core {

/// How data moves between host and device (paper §III-B2).
enum class TransferMode { Once, Always, Usm };

inline const char* to_string(TransferMode mode) {
  switch (mode) {
    case TransferMode::Once:
      return "once";
    case TransferMode::Always:
      return "always";
    case TransferMode::Usm:
      return "usm";
  }
  return "?";
}

/// All three modes in paper column order.
inline constexpr TransferMode kTransferModes[] = {
    TransferMode::Once, TransferMode::Always, TransferMode::Usm};

/// How much numerical error a request tolerates relative to the native
/// fp64 reference. `Exact` demands bitwise reproducibility (today's
/// default everywhere); `UlpBounded` allows results within `ulps` units
/// in the last place; `Relaxed` accepts single-precision-grade relative
/// error (~2^-24). Non-exact budgets make the split-representation
/// emulated GEMM arm eligible for routing.
enum class ErrorBudgetKind { Exact, UlpBounded, Relaxed };

inline const char* to_string(ErrorBudgetKind kind) {
  switch (kind) {
    case ErrorBudgetKind::Exact:
      return "exact";
    case ErrorBudgetKind::UlpBounded:
      return "ulp";
    case ErrorBudgetKind::Relaxed:
      return "relaxed";
  }
  return "?";
}

struct ErrorBudget {
  ErrorBudgetKind kind = ErrorBudgetKind::Exact;
  std::uint32_t ulps = 0;  ///< bound when kind == UlpBounded, else 0

  friend constexpr auto operator<=>(const ErrorBudget&,
                                    const ErrorBudget&) = default;

  [[nodiscard]] constexpr bool is_exact() const {
    return kind == ErrorBudgetKind::Exact;
  }

  static constexpr ErrorBudget exact() { return {}; }
  static constexpr ErrorBudget ulp_bounded(std::uint32_t ulps) {
    return {ErrorBudgetKind::UlpBounded, ulps == 0 ? 1 : ulps};
  }
  static constexpr ErrorBudget relaxed() {
    return {ErrorBudgetKind::Relaxed, 0};
  }
};

struct OpDesc {
  KernelOp op = KernelOp::Gemm;
  model::Precision precision = model::Precision::F32;
  blas::Transpose trans_a = blas::Transpose::No;
  blas::Transpose trans_b = blas::Transpose::No;  ///< GEMM only.
  std::int64_t m = 0;
  std::int64_t n = 0;
  std::int64_t k = 1;  ///< GEMV: always 1.
  std::int64_t lda = 0;  ///< 0 = tight (see tight_lda()).
  std::int64_t ldb = 0;
  std::int64_t ldc = 0;
  std::int64_t incx = 1;  ///< GEMV vector strides.
  std::int64_t incy = 1;
  std::int64_t batch = 1;  ///< Strided-batched GEMM count.
  std::int64_t stride_a = 0;  ///< Elements between batch items.
  std::int64_t stride_b = 0;
  std::int64_t stride_c = 0;
  bool alpha_one = true;  ///< Scaling class only; never enters FLOPs.
  bool beta_zero = true;
  TransferMode mode = TransferMode::Once;
  /// Per-request accuracy contract. Defaults to Exact so every existing
  /// construction site keeps today's bitwise-reproducible behaviour; the
  /// cblas seam stamps the caller's thread-local budget over it.
  ErrorBudget budget = ErrorBudget::exact();

  /// Stored shape of A: GEMM m×k or k×m depending on trans_a; GEMV m×n.
  [[nodiscard]] std::int64_t rows_a() const {
    if (op == KernelOp::Gemv) return m;
    return trans_a == blas::Transpose::No ? m : k;
  }
  [[nodiscard]] std::int64_t cols_a() const {
    if (op == KernelOp::Gemv) return n;
    return trans_a == blas::Transpose::No ? k : m;
  }
  /// Stored shape of B (GEMM only): k×n or n×k depending on trans_b.
  [[nodiscard]] std::int64_t rows_b() const {
    return trans_b == blas::Transpose::No ? k : n;
  }
  [[nodiscard]] std::int64_t cols_b() const {
    return trans_b == blas::Transpose::No ? n : k;
  }
  /// GEMV operand lengths under trans_a.
  [[nodiscard]] std::int64_t x_len() const {
    return trans_a == blas::Transpose::No ? n : m;
  }
  [[nodiscard]] std::int64_t y_len() const {
    return trans_a == blas::Transpose::No ? m : n;
  }
  /// Leading dimensions of a tightly packed copy of each operand.
  [[nodiscard]] std::int64_t tight_lda() const { return rows_a(); }
  [[nodiscard]] std::int64_t tight_ldb() const { return rows_b(); }
  [[nodiscard]] std::int64_t tight_ldc() const { return m; }

  [[nodiscard]] bool transposed() const {
    return trans_a != blas::Transpose::No ||
           (op == KernelOp::Gemm && trans_b != blas::Transpose::No);
  }

  /// The single validation point of the IR. Normalizes the GEMV k
  /// convention (k := 1), fills tight leading dimensions where the caller
  /// left 0, and throws std::invalid_argument on negative dimensions or a
  /// non-positive batch. Factories call this; hand-built descriptors
  /// should too.
  void validate() {
    if (m < 0 || n < 0 || k < 0)
      throw std::invalid_argument("OpDesc: negative dimension");
    if (batch < 1) throw std::invalid_argument("OpDesc: batch < 1");
    if (op == KernelOp::Gemv) {
      k = 1;
      trans_b = blas::Transpose::No;
    }
    if (lda == 0) lda = tight_lda();
    if (ldb == 0) ldb = tight_ldb();
    if (ldc == 0) ldc = tight_ldc();
  }

  static OpDesc gemm(model::Precision precision, blas::Transpose ta,
                     blas::Transpose tb, std::int64_t m, std::int64_t n,
                     std::int64_t k, std::int64_t lda, std::int64_t ldb,
                     std::int64_t ldc, bool alpha_one, bool beta_zero,
                     TransferMode mode = TransferMode::Once) {
    OpDesc d;
    d.op = KernelOp::Gemm;
    d.precision = precision;
    d.trans_a = ta;
    d.trans_b = tb;
    d.m = m;
    d.n = n;
    d.k = k;
    d.lda = lda;
    d.ldb = ldb;
    d.ldc = ldc;
    d.alpha_one = alpha_one;
    d.beta_zero = beta_zero;
    d.mode = mode;
    d.validate();
    return d;
  }

  static OpDesc gemm_batched(model::Precision precision, blas::Transpose ta,
                             blas::Transpose tb, std::int64_t m,
                             std::int64_t n, std::int64_t k, std::int64_t lda,
                             std::int64_t ldb, std::int64_t ldc,
                             std::int64_t batch, std::int64_t stride_a,
                             std::int64_t stride_b, std::int64_t stride_c,
                             bool alpha_one, bool beta_zero,
                             TransferMode mode = TransferMode::Once) {
    OpDesc d = gemm(precision, ta, tb, m, n, k, lda, ldb, ldc, alpha_one,
                    beta_zero, mode);
    d.batch = batch;
    d.stride_a = stride_a;
    d.stride_b = stride_b;
    d.stride_c = stride_c;
    d.validate();
    return d;
  }

  static OpDesc gemv(model::Precision precision, blas::Transpose ta,
                     std::int64_t m, std::int64_t n, std::int64_t lda,
                     std::int64_t incx, std::int64_t incy, bool alpha_one,
                     bool beta_zero, TransferMode mode = TransferMode::Once) {
    OpDesc d;
    d.op = KernelOp::Gemv;
    d.precision = precision;
    d.trans_a = ta;
    d.m = m;
    d.n = n;
    d.lda = lda;
    d.incx = incx;
    d.incy = incy;
    d.alpha_one = alpha_one;
    d.beta_zero = beta_zero;
    d.mode = mode;
    d.validate();
    return d;
  }

  /// Strided-batched GEMV (stride_a covers A, stride_b covers x,
  /// stride_c covers y — the same b = x, c = y operand mapping the
  /// dispatch seam uses).
  static OpDesc gemv_batched(model::Precision precision, blas::Transpose ta,
                             std::int64_t m, std::int64_t n, std::int64_t lda,
                             std::int64_t incx, std::int64_t incy,
                             std::int64_t batch, std::int64_t stride_a,
                             std::int64_t stride_x, std::int64_t stride_y,
                             bool alpha_one, bool beta_zero,
                             TransferMode mode = TransferMode::Once) {
    OpDesc d = gemv(precision, ta, m, n, lda, incx, incy, alpha_one,
                    beta_zero, mode);
    d.batch = batch;
    d.stride_a = stride_a;
    d.stride_b = stride_x;
    d.stride_c = stride_y;
    d.validate();
    return d;
  }
};

/// Lower sweep-layer sugar to the IR: tight leading dimensions, no
/// transposes, unit vector strides. GEMM batch carries over.
inline OpDesc lower(const Problem& problem,
                    TransferMode mode = TransferMode::Once) {
  if (problem.op == KernelOp::Gemv)
    return OpDesc::gemv(problem.precision, blas::Transpose::No,
                        problem.dims.m, problem.dims.n, 0, 1, 1, true,
                        problem.beta_zero, mode);
  OpDesc d = OpDesc::gemm(problem.precision, blas::Transpose::No,
                          blas::Transpose::No, problem.dims.m, problem.dims.n,
                          problem.dims.k, 0, 0, 0, true, problem.beta_zero,
                          mode);
  if (problem.batch > 1) {
    d.batch = problem.batch;
    d.stride_a = d.lda * d.cols_a();
    d.stride_b = d.ldb * d.cols_b();
    d.stride_c = d.ldc * d.n;
  }
  return d;
}

/// Raise an OpDesc back to sweep-layer sugar (drops layout detail; used by
/// the advisor's rationale strings and sweep-facing reporting).
inline Problem raise(const OpDesc& desc) {
  Problem p;
  p.op = desc.op;
  p.precision = desc.precision;
  p.dims = Dims{desc.m, desc.n, desc.op == KernelOp::Gemm ? desc.k : 1};
  p.beta_zero = desc.beta_zero;
  p.batch = desc.batch;
  return p;
}

}  // namespace blob::core
