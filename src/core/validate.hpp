#pragma once
// CPU/GPU result validation (paper §III-B).
//
// GPU-BLOB seeds both devices' inputs identically (constant srand seed)
// and compares output checksums with a 0.1% relative margin for
// floating-point rounding. We do the same: run the problem through the
// CPU BLAS library and through the simulated GPU's functional kernels on
// identically seeded data, and compare checksums.

#include <cstdint>
#include <string>

#include "blas/library.hpp"
#include "core/problem.hpp"
#include "simgpu/device.hpp"

namespace blob::core {

struct ValidationResult {
  bool passed = false;
  double cpu_checksum = 0.0;
  double gpu_checksum = 0.0;
  double relative_error = 0.0;
  std::string detail;
};

/// The relative checksum tolerance the paper permits.
inline constexpr double kChecksumTolerance = 1e-3;

/// Seed constant shared by every buffer initialisation so CPU and GPU
/// data of equal dimensions are always identical (§III-B).
inline constexpr std::uint64_t kDataSeed = 0xB10Bu;

/// Execute `problem` once on the CPU library and once on the simulated
/// GPU (Transfer-Once style), then compare output checksums.
/// Only f32/f64 problems are supported.
ValidationResult validate_problem(const Problem& problem,
                                  const blas::CpuBlasLibrary& cpu,
                                  sim::SimGpu& gpu);

/// Sum of elements — the simple checksum GPU-BLOB uses.
template <typename T>
double checksum(const T* data, std::size_t len) {
  double sum = 0.0;
  for (std::size_t i = 0; i < len; ++i) sum += static_cast<double>(data[i]);
  return sum;
}

}  // namespace blob::core
