#pragma once
// CPU/GPU result validation (paper §III-B).
//
// GPU-BLOB seeds both devices' inputs identically (constant srand seed)
// and compares output checksums with a 0.1% relative margin for
// floating-point rounding. We do the same: run the problem through the
// CPU BLAS library and through the simulated GPU's functional kernels on
// identically seeded data, and compare checksums.

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <type_traits>

#include "blas/library.hpp"
#include "core/op_desc.hpp"
#include "core/problem.hpp"
#include "simgpu/device.hpp"

namespace blob::core {

struct ValidationResult {
  bool passed = false;
  double cpu_checksum = 0.0;
  double gpu_checksum = 0.0;
  double relative_error = 0.0;
  std::string detail;
};

/// The relative checksum tolerance the paper permits.
inline constexpr double kChecksumTolerance = 1e-3;

/// Seed constant shared by every buffer initialisation so CPU and GPU
/// data of equal dimensions are always identical (§III-B).
inline constexpr std::uint64_t kDataSeed = 0xB10Bu;

/// Execute `problem` once on the CPU library and once on the simulated
/// GPU (Transfer-Once style), then compare output checksums.
/// Only f32/f64 problems are supported.
ValidationResult validate_problem(const Problem& problem,
                                  const blas::CpuBlasLibrary& cpu,
                                  sim::SimGpu& gpu);

/// Sum of elements — the simple checksum GPU-BLOB uses.
template <typename T>
double checksum(const T* data, std::size_t len) {
  double sum = 0.0;
  for (std::size_t i = 0; i < len; ++i) sum += static_cast<double>(data[i]);
  return sum;
}

// ---------------------------------------------------------------------------
// Tolerance-aware buffer comparison.
//
// Bitwise equality is the right acceptance test only for routes that
// promise bitwise results (the dispatcher's exact-budget contract). Once
// a call declares a non-exact ErrorBudget the reference and the routed
// output may legitimately differ, and "memcmp failed" stops being a
// verdict — the question becomes "did it differ by MORE than the declared
// budget?". CompareSpec captures the acceptance criterion; compare_buffers
// always computes the full diagnostic set (first differing index, worst
// element ULP distance, relative Frobenius error) so a failure report is
// actionable under any mode.

enum class CompareMode {
  Bitwise,       ///< every element bit-identical
  Ulp,           ///< every element within `max_ulps` representable steps
  RelFrobenius,  ///< ||ref - got||_F / ||ref||_F within `max_rel`
};

const char* to_string(CompareMode mode);

struct CompareSpec {
  CompareMode mode = CompareMode::Bitwise;
  std::uint64_t max_ulps = 0;  ///< bound when mode == Ulp
  double max_rel = 0.0;        ///< bound when mode == RelFrobenius

  static constexpr CompareSpec bitwise() { return {}; }
  static constexpr CompareSpec ulps(std::uint64_t n) {
    return {CompareMode::Ulp, n, 0.0};
  }
  static constexpr CompareSpec rel_frobenius(double tol) {
    return {CompareMode::RelFrobenius, 0, tol};
  }
};

/// Norm-relative tolerance a Relaxed budget accepts. One fp32 slice
/// carries ~2^-24 relative error per product; the sqrt(k) accumulation
/// growth of a large GEMM still leaves orders of magnitude of headroom
/// below this, while genuine wrong-answer bugs (swapped operands, stale
/// uploads) overshoot it immediately.
inline constexpr double kRelaxedFrobeniusTolerance = 1e-4;

/// Map a call's declared error budget to the acceptance criterion its
/// output must meet: exact verifies bitwise, ulp_bounded(n) verifies
/// element-wise within n ULPs, relaxed verifies norm-relative.
constexpr CompareSpec spec_for_budget(const ErrorBudget& budget) {
  switch (budget.kind) {
    case ErrorBudgetKind::UlpBounded:
      return CompareSpec::ulps(budget.ulps);
    case ErrorBudgetKind::Relaxed:
      return CompareSpec::rel_frobenius(kRelaxedFrobeniusTolerance);
    case ErrorBudgetKind::Exact:
      break;
  }
  return CompareSpec::bitwise();
}

struct CompareResult {
  bool passed = false;
  std::size_t count = 0;        ///< elements compared
  std::size_t mismatches = 0;   ///< elements that are not bit-identical
  std::ptrdiff_t first_index = -1;  ///< first non-identical element
  std::uint64_t max_ulps = 0;   ///< worst element ULP distance observed
  double rel_frobenius = 0.0;   ///< ||ref - got||_F / ||ref||_F
  std::string detail;           ///< one line, human-readable
};

/// Distance in representable values between two floats of the same type.
/// Equal NaNs (any payload) are distance 0; NaN vs non-NaN, or a compare
/// across the infinity of an overflowed result, saturates to max.
template <typename T>
std::uint64_t ulp_distance(T a, T b) {
  static_assert(std::is_floating_point_v<T>);
  using U = std::conditional_t<sizeof(T) == 4, std::uint32_t, std::uint64_t>;
  if (std::isnan(a) || std::isnan(b)) {
    return (std::isnan(a) && std::isnan(b))
               ? 0
               : std::numeric_limits<std::uint64_t>::max();
  }
  // Map the IEEE bit pattern to a monotonically ordered integer line
  // (sign-magnitude folded so that -0.0 and +0.0 are adjacent), then the
  // ULP distance is plain integer distance on that line.
  constexpr U sign = U{1} << (sizeof(U) * 8 - 1);
  const auto ordered = [](U u) -> std::int64_t {
    return (u & sign) ? -static_cast<std::int64_t>(u & ~sign)
                      : static_cast<std::int64_t>(u);
  };
  const std::int64_t oa = ordered(std::bit_cast<U>(a));
  const std::int64_t ob = ordered(std::bit_cast<U>(b));
  const std::int64_t lo = oa < ob ? oa : ob;
  const std::int64_t hi = oa < ob ? ob : oa;
  return static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
}

namespace detail {
std::string format_compare_detail(const CompareSpec& spec,
                                  const CompareResult& r);
}  // namespace detail

/// Compare `got` against `ref` under `spec`. All diagnostics are filled
/// regardless of mode; `passed` reflects the spec's criterion only.
template <typename T>
CompareResult compare_buffers(const T* ref, const T* got, std::size_t len,
                              const CompareSpec& spec) {
  CompareResult r;
  r.count = len;
  double diff_sq = 0.0;
  double ref_sq = 0.0;
  for (std::size_t i = 0; i < len; ++i) {
    const double rv = static_cast<double>(ref[i]);
    const double gv = static_cast<double>(got[i]);
    ref_sq += rv * rv;
    const double d = rv - gv;
    diff_sq += d * d;
    if (std::bit_cast<std::conditional_t<sizeof(T) == 4, std::uint32_t,
                                         std::uint64_t>>(ref[i]) !=
        std::bit_cast<std::conditional_t<sizeof(T) == 4, std::uint32_t,
                                         std::uint64_t>>(got[i])) {
      if (r.first_index < 0) r.first_index = static_cast<std::ptrdiff_t>(i);
      ++r.mismatches;
      const std::uint64_t u = ulp_distance(ref[i], got[i]);
      if (u > r.max_ulps) r.max_ulps = u;
    }
  }
  r.rel_frobenius =
      ref_sq > 0.0 ? std::sqrt(diff_sq) / std::sqrt(ref_sq)
                   : (diff_sq > 0.0 ? std::numeric_limits<double>::infinity()
                                    : 0.0);
  switch (spec.mode) {
    case CompareMode::Bitwise:
      r.passed = r.mismatches == 0;
      break;
    case CompareMode::Ulp:
      r.passed = r.max_ulps <= spec.max_ulps;
      break;
    case CompareMode::RelFrobenius:
      r.passed = r.rel_frobenius <= spec.max_rel;
      break;
  }
  r.detail = detail::format_compare_detail(spec, r);
  return r;
}

}  // namespace blob::core
