#pragma once
// GPU offload threshold detection (paper §III-D).
//
// Given the per-size CPU and GPU total times of an ascending sweep, the
// offload threshold is the smallest problem size from which the GPU is
// better for that size AND every larger size in the sweep. "To account
// for any momentary drops in GPU performance that are due to abnormal
// system behaviour or noise, the previous and current problem size's
// performance is taken into consideration": an isolated single-sample
// GPU loss flanked by GPU wins does not reset the threshold.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/problem.hpp"

namespace blob::core {

/// One sweep sample as seen by the detector.
struct ThresholdSample {
  std::int64_t s = 0;  ///< swept parameter
  Dims dims;           ///< concrete dimensions at s
  double cpu_seconds = 0.0;
  double gpu_seconds = 0.0;
};

/// The detected threshold: the swept parameter and its dimensions.
struct OffloadThreshold {
  std::int64_t s = 0;
  Dims dims;
};

/// Detect the offload threshold over ascending samples; nullopt when the
/// GPU never establishes a persistent win (the paper's "--" entries).
/// The final sample must be a GPU win for a threshold to exist (a
/// trailing dip cannot be confirmed as momentary).
std::optional<OffloadThreshold> detect_threshold(
    std::span<const ThresholdSample> samples);

/// Render a threshold as the paper does: "{m, n, k}" / "{m, n}" for
/// GEMV, or "--" for none. `gemv` drops the k component.
std::string threshold_to_string(const std::optional<OffloadThreshold>& t,
                                bool gemv);

/// Compact form used in the paper's tables: just the swept dimension
/// value ("629") or "--".
std::string threshold_value_string(const std::optional<OffloadThreshold>& t);

}  // namespace blob::core
