#pragma once
// Offload advisor.
//
// The paper positions the offload threshold as a porting-decision tool:
// "By relating an application's matrix / vector shape and size to those
// evaluated by GPU-BLOB, configuring the iteration count to approximate
// the number of BLAS kernel computations, and relating the data movement
// characteristics to one of the data transfer types, a user can assess
// whether it would be worth porting their application to use a GPU"
// (§III-D). The advisor automates that workflow against a backend.

#include <string>

#include "core/backend.hpp"
#include "core/energy.hpp"
#include "core/op_desc.hpp"
#include "core/problem.hpp"

namespace blob::core {

struct Advice {
  bool offload = false;       ///< should this workload use the GPU?
  double cpu_seconds = 0.0;   ///< predicted CPU total
  double gpu_seconds = 0.0;   ///< predicted GPU total (chosen mode)
  double speedup = 1.0;       ///< cpu/gpu (>1 means GPU faster)
  TransferMode mode = TransferMode::Once;
  std::string rationale;      ///< human-readable explanation
};

class OffloadAdvisor {
 public:
  explicit OffloadAdvisor(ExecutionBackend& backend) : backend_(backend) {}

  /// Advise for a specific operation descriptor (transfer mode included)
  /// and iteration count — the primary entry point; everything else is
  /// sugar over it.
  [[nodiscard]] Advice advise(const OpDesc& desc, std::int64_t iterations);

  /// Sweep-layer sugar: lowers the Problem to an OpDesc.
  [[nodiscard]] Advice advise(const Problem& problem, std::int64_t iterations,
                              TransferMode mode) {
    return advise(lower(problem, mode), iterations);
  }

  /// Advise choosing the best transfer mode automatically.
  [[nodiscard]] Advice advise_best_mode(const Problem& problem,
                                        std::int64_t iterations);

  /// The paper's caveat (§V): even without a persistent threshold the GPU
  /// may win over a size range. This helper reports the GPU/CPU speedup
  /// for the exact problem rather than relying on the threshold alone.
  [[nodiscard]] double predicted_speedup(const Problem& problem,
                                         std::int64_t iterations,
                                         TransferMode mode);

  /// Time AND energy advice against a specific system profile (the
  /// related-work extension: the two can disagree). Requires profile
  /// data, so it takes the profile rather than the backend.
  struct TimeEnergyAdvice {
    Advice time;
    EnergyEstimate energy;
    /// "offload", "stay", or "trade-off" (verdicts disagree).
    std::string verdict;
  };
  static TimeEnergyAdvice advise_time_and_energy(
      const profile::SystemProfile& profile, const Problem& problem,
      std::int64_t iterations, TransferMode mode);

 private:
  ExecutionBackend& backend_;
};

}  // namespace blob::core
