#pragma once
// SimBackend: timing from the calibrated system models, in virtual time.
//
// The analytic path evaluates the same cost terms the SimGpu device would
// accumulate on its stream — one h2d per input structure, kernels, one
// d2h per output — so full s=1..4096 sweeps run in milliseconds. Tests
// cross-check SimBackend's arithmetic against an actual SimGpu run.
// Consumes the core::OpDesc IR, so transposed and batched descriptors
// are costed with the perfmodel's transpose/batch terms.

#include <array>

#include "core/backend.hpp"
#include "perfmodel/noise.hpp"
#include "sysprofile/profile.hpp"

namespace blob::core {

class SimBackend final : public ExecutionBackend {
 public:
  /// `noise_override` < 0 keeps the profile's own sigma. `device_id`
  /// identifies which device of a fleet this backend models: it salts
  /// the noise stream so two same-profile cards in one box do not
  /// produce correlated jitter. Device 0 keeps the legacy stream, so
  /// single-device callers are bit-unchanged.
  explicit SimBackend(profile::SystemProfile profile,
                      double noise_override = -1.0,
                      std::uint64_t noise_seed = 0x5eed, int device_id = 0);

  [[nodiscard]] std::string name() const override { return profile_.name; }
  [[nodiscard]] const profile::SystemProfile& profile() const {
    return profile_;
  }
  [[nodiscard]] int device_id() const { return device_id_; }

  using ExecutionBackend::cpu_time;
  using ExecutionBackend::gpu_time;
  double cpu_time(const OpDesc& desc, std::int64_t iterations) override;
  std::optional<double> gpu_time(const OpDesc& desc,
                                 std::int64_t iterations) override;

  /// One kernel execution on the device, excluding any link traffic.
  [[nodiscard]] double kernel_time(const OpDesc& desc) const;
  [[nodiscard]] double kernel_time(const Problem& problem) const {
    return kernel_time(lower(problem));
  }

  /// The link traffic one call actually needs, as decided by a
  /// residency-aware dispatcher: per-structure H2D byte counts (0 for a
  /// device-resident operand) and the output download. `usm` prices the
  /// moves as page-fault migration instead of explicit DMA.
  struct GpuTraffic {
    std::array<double, 3> h2d{};  ///< bytes to move per structure (A, B/x, C/y)
    double d2h_bytes = 0.0;
    bool usm = false;
  };

  /// One GPU execution priced with exactly `traffic` on the link —
  /// noise-free, because it feeds routing decisions (the decision table
  /// already absorbs noise through measured-cost EWMAs).
  [[nodiscard]] double gpu_time_with(const OpDesc& desc,
                                     const GpuTraffic& traffic) const;

  /// One EMULATED fp64 GEMM kernel (fp32 slice assembly), excluding link
  /// traffic. Only meaningful for non-batched F64 GEMM descriptors.
  [[nodiscard]] double emulated_kernel_time(const OpDesc& desc,
                                            int slices) const;

  /// The emulated twin of gpu_time_with: identical link terms (operands
  /// still cross as fp64), only the kernel term swaps to the sliced
  /// assembly — so the two prices differ exactly where the paper says
  /// precision can matter, in the on-device compute.
  [[nodiscard]] double gpu_time_emulated_with(const OpDesc& desc,
                                              const GpuTraffic& traffic,
                                              int slices) const;

 private:
  [[nodiscard]] double time_with_kernel(const GpuTraffic& traffic,
                                        double kernel) const;

  profile::SystemProfile profile_;
  model::NoiseModel noise_;
  int device_id_ = 0;
};

}  // namespace blob::core
