#include "core/flops.hpp"

#include <algorithm>
#include <stdexcept>

namespace blob::core {

namespace {

// The single place the GEMV k convention is asserted for sweep-layer
// callers; OpDesc::validate() normalizes it for everything below.
void check_gemv_k(const Problem& problem) {
  if (problem.op == KernelOp::Gemv && problem.dims.k != 1)
    throw std::invalid_argument(
        "GEMV problems must carry k == 1 (core::Dims convention)");
}

}  // namespace

double gemm_flops(std::int64_t m, std::int64_t n, std::int64_t k,
                  bool beta_zero) {
  const double md = static_cast<double>(m);
  const double nd = static_cast<double>(n);
  const double kd = static_cast<double>(k);
  const double q = beta_zero ? 0.0 : 2.0;
  return 2.0 * md * nd * kd + md * nd + q * md * nd;
}

double gemv_flops(std::int64_t m, std::int64_t n, bool beta_zero) {
  const double md = static_cast<double>(m);
  const double nd = static_cast<double>(n);
  const double q = beta_zero ? 0.0 : 2.0;
  return 2.0 * md * nd + md + q * md;
}

double problem_flops(const OpDesc& desc) {
  const double batch =
      static_cast<double>(std::max<std::int64_t>(1, desc.batch));
  if (desc.op == KernelOp::Gemv)
    return batch * gemv_flops(desc.m, desc.n, desc.beta_zero);
  return batch * gemm_flops(desc.m, desc.n, desc.k, desc.beta_zero);
}

double h2d_bytes(const OpDesc& desc) {
  const double es = static_cast<double>(model::bytes_of(desc.precision));
  const double m = static_cast<double>(desc.m);
  const double n = static_cast<double>(desc.n);
  const double k = static_cast<double>(desc.k);
  const double batch =
      static_cast<double>(std::max<std::int64_t>(1, desc.batch));
  if (desc.op == KernelOp::Gemm) {
    return batch * es * (m * k + k * n + m * n);  // A, B, C all uploaded
  }
  // A plus both vectors; x_len + y_len == m + n under either transpose.
  return batch * es * (m * n + n + m);
}

double d2h_bytes(const OpDesc& desc) {
  const double es = static_cast<double>(model::bytes_of(desc.precision));
  const double batch =
      static_cast<double>(std::max<std::int64_t>(1, desc.batch));
  if (desc.op == KernelOp::Gemm) {
    return batch * es * static_cast<double>(desc.m) *
           static_cast<double>(desc.n);
  }
  return batch * es * static_cast<double>(desc.y_len());
}

double arithmetic_intensity(const OpDesc& desc) {
  const double bytes = h2d_bytes(desc) + d2h_bytes(desc);
  return bytes > 0 ? problem_flops(desc) / bytes : 0.0;
}

double problem_flops(const Problem& problem) {
  check_gemv_k(problem);
  return problem_flops(lower(problem));
}

double h2d_bytes(const Problem& problem) {
  check_gemv_k(problem);
  return h2d_bytes(lower(problem));
}

double d2h_bytes(const Problem& problem) {
  check_gemv_k(problem);
  return d2h_bytes(lower(problem));
}

double arithmetic_intensity(const Problem& problem) {
  check_gemv_k(problem);
  return arithmetic_intensity(lower(problem));
}

double gflops(const Problem& problem, std::int64_t iterations,
              double total_seconds) {
  if (total_seconds <= 0.0 || iterations <= 0) return 0.0;
  return problem_flops(problem) * static_cast<double>(iterations) /
         total_seconds / 1e9;
}

}  // namespace blob::core
