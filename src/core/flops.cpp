#include "core/flops.hpp"

#include <algorithm>

namespace blob::core {

double gemm_flops(std::int64_t m, std::int64_t n, std::int64_t k,
                  bool beta_zero) {
  const double md = static_cast<double>(m);
  const double nd = static_cast<double>(n);
  const double kd = static_cast<double>(k);
  const double q = beta_zero ? 0.0 : 2.0;
  return 2.0 * md * nd * kd + md * nd + q * md * nd;
}

double gemv_flops(std::int64_t m, std::int64_t n, bool beta_zero) {
  const double md = static_cast<double>(m);
  const double nd = static_cast<double>(n);
  const double q = beta_zero ? 0.0 : 2.0;
  return 2.0 * md * nd + md + q * md;
}

double problem_flops(const Problem& problem) {
  const double base =
      problem.op == KernelOp::Gemm
          ? gemm_flops(problem.dims.m, problem.dims.n, problem.dims.k,
                       problem.beta_zero)
          : gemv_flops(problem.dims.m, problem.dims.n, problem.beta_zero);
  const double batch = problem.op == KernelOp::Gemm
                           ? static_cast<double>(std::max<std::int64_t>(
                                 1, problem.batch))
                           : 1.0;
  return base * batch;
}

double h2d_bytes(const Problem& problem) {
  const double es = static_cast<double>(model::bytes_of(problem.precision));
  const double m = static_cast<double>(problem.dims.m);
  const double n = static_cast<double>(problem.dims.n);
  const double k = static_cast<double>(problem.dims.k);
  if (problem.op == KernelOp::Gemm) {
    const double batch =
        static_cast<double>(std::max<std::int64_t>(1, problem.batch));
    return batch * es * (m * k + k * n + m * n);  // A, B, C all uploaded
  }
  return es * (m * n + n + m);  // A, x, y
}

double d2h_bytes(const Problem& problem) {
  const double es = static_cast<double>(model::bytes_of(problem.precision));
  const double m = static_cast<double>(problem.dims.m);
  const double n = static_cast<double>(problem.dims.n);
  if (problem.op == KernelOp::Gemm) {
    const double batch =
        static_cast<double>(std::max<std::int64_t>(1, problem.batch));
    return batch * es * m * n;
  }
  return es * m;
}

double arithmetic_intensity(const Problem& problem) {
  const double bytes = h2d_bytes(problem) + d2h_bytes(problem);
  return bytes > 0 ? problem_flops(problem) / bytes : 0.0;
}

double gflops(const Problem& problem, std::int64_t iterations,
              double total_seconds) {
  if (total_seconds <= 0.0 || iterations <= 0) return 0.0;
  return problem_flops(problem) * static_cast<double>(iterations) /
         total_seconds / 1e9;
}

}  // namespace blob::core
