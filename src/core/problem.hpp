#pragma once
// Problem types: the fixed relationships between a BLAS kernel's
// dimensions that GPU-BLOB sweeps (paper §III-C, Fig. 1).
//
// A problem type maps the swept parameter `s` (bounded by the runtime
// arguments -s and -d) to concrete {M, N, K} (GEMM) or {M, N} (GEMV)
// dimensions. The registry contains the paper's full set: square GEMM
// plus eight non-square GEMM types, and square GEMV plus four non-square
// GEMV types — 9 GEMM + 5 GEMV, matching the artifact's 28 CSV files
// across two precisions.

#include <cstdint>
#include <string>
#include <vector>

#include "perfmodel/precision.hpp"

namespace blob::core {

enum class KernelOp { Gemm, Gemv };

const char* to_string(KernelOp op);

/// Concrete dimensions of one problem instance. Convention (enforced at
/// the OpDesc validation point and asserted by problem_flops/h2d_bytes):
/// for GEMV, k is always exactly 1.
struct Dims {
  std::int64_t m = 0;
  std::int64_t n = 0;
  std::int64_t k = 1;
};

/// A named dimension relationship, e.g. "M=N, K=16M".
class ProblemType {
 public:
  using DimsFn = Dims (*)(std::int64_t s);

  ProblemType(KernelOp op, std::string id, std::string label, DimsFn fn)
      : op_(op), id_(std::move(id)), label_(std::move(label)), fn_(fn) {}

  [[nodiscard]] KernelOp op() const { return op_; }
  /// Short machine name used in CSV file names, e.g. "gemm_square".
  [[nodiscard]] const std::string& id() const { return id_; }
  /// Paper-style label, e.g. "M=N, K=16M".
  [[nodiscard]] const std::string& label() const { return label_; }
  [[nodiscard]] Dims dims(std::int64_t s) const { return fn_(s); }

 private:
  KernelOp op_;
  std::string id_;
  std::string label_;
  DimsFn fn_;
};

/// All 9 GEMM problem types in paper order (square first, then Table V's
/// rows).
const std::vector<ProblemType>& gemm_problem_types();

/// All 5 GEMV problem types in paper order (square first, then Table
/// VI's rows).
const std::vector<ProblemType>& gemv_problem_types();

/// Both lists concatenated (GEMM first).
const std::vector<ProblemType>& all_problem_types();

/// Look up by id; throws std::invalid_argument if unknown.
const ProblemType& problem_type_by_id(const std::string& id);

/// One fully specified benchmark problem. Sweep-layer sugar only: every
/// consumer below the sweep speaks core::OpDesc (op_desc.hpp), to which a
/// Problem lowers via core::lower().
struct Problem {
  KernelOp op = KernelOp::Gemm;
  model::Precision precision = model::Precision::F32;
  Dims dims;
  bool beta_zero = true;  ///< GPU-BLOB's default: C initialised to 0
  /// > 1 turns each call into a batched-GEMM of this many independent
  /// products (paper §V future work). GEMV ignores it.
  std::int64_t batch = 1;
};

}  // namespace blob::core
