#include "core/hybrid_backend.hpp"

namespace blob::core {

HybridBackend::HybridBackend(blas::CpuLibraryPersonality personality,
                             profile::SystemProfile gpu_profile,
                             std::size_t max_threads, int repeats)
    : host_(std::move(personality), max_threads, repeats),
      sim_(std::move(gpu_profile), /*noise_override=*/0.0) {}

std::string HybridBackend::name() const {
  return host_.name() + "+sim:" + sim_.name();
}

double HybridBackend::cpu_time(const OpDesc& desc, std::int64_t iterations) {
  return host_.cpu_time(desc, iterations);
}

std::optional<double> HybridBackend::gpu_time(const OpDesc& desc,
                                              std::int64_t iterations) {
  return sim_.gpu_time(desc, iterations);
}

}  // namespace blob::core
