#pragma once
// Energy accounting for offload decisions.
//
// The paper's related work shows run-time and energy verdicts can
// disagree: Favaro et al. found FPGAs more energy efficient "even when
// [they] had a longer runtime" (§II). This extension computes a
// first-order energy estimate for the same CPU/GPU executions the time
// models cover, enabling an *energy offload threshold* alongside the
// paper's time-based one.
//
// Model: CPU energy = busy-power(threads) * time. GPU energy =
// board-power * kernel time + idle-power * transfer time, plus the host
// socket idling while it waits (blocking transfers and synchronous
// kernels, as GPU-BLOB issues them).

#include "core/backend.hpp"
#include "core/problem.hpp"
#include "sysprofile/profile.hpp"

namespace blob::core {

struct EnergyEstimate {
  double cpu_joules = 0.0;        ///< all-CPU execution
  double gpu_joules = 0.0;        ///< GPU execution incl. host idle
  double cpu_seconds = 0.0;
  double gpu_seconds = 0.0;
  /// True when the GPU uses less energy even if it is not faster.
  [[nodiscard]] bool gpu_more_efficient() const {
    return gpu_joules < cpu_joules;
  }
};

/// Estimate both executions of `iterations` calls under `mode`.
EnergyEstimate estimate_energy(const profile::SystemProfile& profile,
                               const Problem& problem,
                               std::int64_t iterations, TransferMode mode);

}  // namespace blob::core
