#pragma once
// The sweep runner: GPU-BLOB's main loop.
//
// For a problem type and iteration count, every swept size s in
// [s_min, s_max] (optionally strided) is executed on the CPU and on the
// GPU under each transfer type, interleaved — GPU-BLOB's default
// execution style (§IV). The result carries total times and GFLOP/s per
// sample plus the detected offload threshold per transfer type, and can
// be serialised to the artifact's CSV layout.

#include <array>
#include <cstdint>
#include <optional>
#include <ostream>
#include <vector>

#include "core/backend.hpp"
#include "core/problem.hpp"
#include "core/threshold.hpp"

namespace blob::core {

struct SweepConfig {
  std::int64_t s_min = 1;     ///< runtime argument -s
  std::int64_t s_max = 4096;  ///< runtime argument -d
  std::int64_t stride = 1;    ///< sample every `stride`-th size
  std::int64_t iterations = 1;///< runtime argument -i
  model::Precision precision = model::Precision::F32;
  bool beta_zero = true;
  /// Batched-GEMM batch size (1 = plain GEMM; GEMV ignores it).
  std::int64_t batch = 1;
};

struct SweepSample {
  std::int64_t s = 0;
  Dims dims;
  double cpu_seconds = 0.0;
  double cpu_gflops = 0.0;
  /// Indexed by TransferMode order (Once, Always, Usm); NaN time and 0
  /// GFLOP/s when the backend has no GPU.
  std::array<double, 3> gpu_seconds{};
  std::array<double, 3> gpu_gflops{};
  bool has_gpu = false;
};

struct SweepResult {
  const ProblemType* type = nullptr;
  SweepConfig config;
  std::string backend_name;
  std::vector<SweepSample> samples;
  /// Thresholds per transfer mode (empty optionals when none / no GPU).
  std::array<std::optional<OffloadThreshold>, 3> thresholds;

  /// Recompute `thresholds` from `samples` (called by run_sweep; exposed
  /// for tools that post-process merged CPU-only + GPU-only data, the
  /// paper's LUMI workflow).
  void detect_thresholds();
};

/// Execute the sweep on `backend`.
SweepResult run_sweep(ExecutionBackend& backend, const ProblemType& type,
                      const SweepConfig& config);

/// Write a result as CSV in the artifact's per-problem-type layout:
/// one row per (sample, device/transfer-mode). `include_cpu` /
/// `include_gpu` produce the artifact's split CPU-only / GPU-only files
/// (the paper's LUMI workflow); blob-threshold re-merges them.
void write_csv(std::ostream& out, const SweepResult& result,
               bool include_cpu = true, bool include_gpu = true);

/// Parse a CSV previously written by write_csv back into a result
/// (backend_name/type are restored by id lookup). Used by the
/// threshold post-processing tool and by round-trip tests.
SweepResult read_csv(std::istream& in);

}  // namespace blob::core
