#include "core/threshold.hpp"

#include <string>

#include "util/strfmt.hpp"

namespace blob::core {

std::optional<OffloadThreshold> detect_threshold(
    std::span<const ThresholdSample> samples) {
  const std::size_t n = samples.size();
  if (n == 0) return std::nullopt;

  // gpu_wins[i]: the GPU is strictly better at sample i.
  std::vector<bool> gpu_wins(n);
  for (std::size_t i = 0; i < n; ++i) {
    gpu_wins[i] = samples[i].gpu_seconds < samples[i].cpu_seconds;
  }

  // The threshold must hold "for all subsequent problem sizes" (§III-D),
  // so scan backwards for the longest suffix of wins, tolerating isolated
  // one-sample dips that are flanked by wins on both sides.
  if (!gpu_wins[n - 1]) return std::nullopt;

  std::size_t start = n - 1;
  for (std::size_t i = n - 1; i-- > 0;) {
    if (gpu_wins[i]) {
      start = i;
      continue;
    }
    const bool isolated_dip =
        i > 0 && gpu_wins[i - 1] && gpu_wins[i + 1];
    if (!isolated_dip) break;
    // The dip itself is tolerated; the suffix continues at i-1 which the
    // loop will pick up as a win.
  }

  return OffloadThreshold{samples[start].s, samples[start].dims};
}

std::string threshold_to_string(const std::optional<OffloadThreshold>& t,
                                bool gemv) {
  if (!t.has_value()) return "--";
  if (gemv) {
    return util::strfmt("{%lld, %lld}", static_cast<long long>(t->dims.m),
                        static_cast<long long>(t->dims.n));
  }
  return util::strfmt("{%lld, %lld, %lld}", static_cast<long long>(t->dims.m),
                      static_cast<long long>(t->dims.n),
                      static_cast<long long>(t->dims.k));
}

std::string threshold_value_string(const std::optional<OffloadThreshold>& t) {
  if (!t.has_value()) return "--";
  return std::to_string(static_cast<long long>(t->s));
}

}  // namespace blob::core
