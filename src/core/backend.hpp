#pragma once
// Execution backends.
//
// A backend answers one question for the sweep runner and the dispatcher:
// how long do `iterations` calls of an operation take on the CPU, and on
// the GPU under the descriptor's data-transfer mode? SimBackend answers
// from the calibrated system models in virtual time; HostBackend answers
// by really executing our CPU BLAS under a wall clock (and has no GPU).
// GPU times always include host-link traffic, as GPU-BLOB's do (§III-A:
// "GPU time measurements also include the time taken to move data to and
// from the GPU").
//
// The virtual interface speaks core::OpDesc — the one operation IR — so
// transposed and batched traffic is costed first-class. The Problem
// overloads are sweep-layer sugar that lower to an OpDesc; derived
// classes pull them in with `using ExecutionBackend::cpu_time;`.

#include <optional>
#include <string>

#include "core/op_desc.hpp"
#include "core/problem.hpp"

namespace blob::core {

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Total seconds for `iterations` CPU executions of `desc`.
  virtual double cpu_time(const OpDesc& desc, std::int64_t iterations) = 0;

  /// Total seconds for `iterations` GPU executions of `desc` under
  /// `desc.mode`, including all host-device traffic; nullopt if the
  /// backend has no GPU (CPU-only builds of GPU-BLOB, §III).
  virtual std::optional<double> gpu_time(const OpDesc& desc,
                                         std::int64_t iterations) = 0;

  /// Sweep-layer sugar: lowers the Problem to an OpDesc.
  double cpu_time(const Problem& problem, std::int64_t iterations) {
    return cpu_time(lower(problem), iterations);
  }
  std::optional<double> gpu_time(const Problem& problem,
                                 std::int64_t iterations, TransferMode mode) {
    return gpu_time(lower(problem, mode), iterations);
  }
};

}  // namespace blob::core
