#pragma once
// Execution backends.
//
// A backend answers one question for the sweep runner: how long do
// `iterations` calls of a problem take on the CPU, and on the GPU under a
// given data-transfer type? SimBackend answers from the calibrated system
// models in virtual time; HostBackend answers by really executing our CPU
// BLAS under a wall clock (and has no GPU). GPU times always include
// host-link traffic, as GPU-BLOB's do (§III-A: "GPU time measurements
// also include the time taken to move data to and from the GPU").

#include <optional>
#include <string>

#include "core/problem.hpp"

namespace blob::core {

/// How data moves between host and device (paper §III-B2).
enum class TransferMode { Once, Always, Usm };

const char* to_string(TransferMode mode);

/// All three modes in paper column order.
inline constexpr TransferMode kTransferModes[] = {
    TransferMode::Once, TransferMode::Always, TransferMode::Usm};

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Total seconds for `iterations` CPU executions of `problem`.
  virtual double cpu_time(const Problem& problem,
                          std::int64_t iterations) = 0;

  /// Total seconds for `iterations` GPU executions of `problem` under
  /// `mode`, including all host-device traffic; nullopt if the backend
  /// has no GPU (CPU-only builds of GPU-BLOB, §III).
  virtual std::optional<double> gpu_time(const Problem& problem,
                                         std::int64_t iterations,
                                         TransferMode mode) = 0;
};

}  // namespace blob::core
