#include "core/manifest.hpp"

#include "util/json.hpp"

namespace blob::core {

namespace {

const char* quirk_kind_name(model::PerfQuirk::Kind kind) {
  switch (kind) {
    case model::PerfQuirk::Kind::DropAt:
      return "drop-at";
    case model::PerfQuirk::Kind::StepUpAt:
      return "step-up-at";
    case model::PerfQuirk::Kind::PlateauFrom:
      return "plateau-from";
  }
  return "?";
}

void write_curve(util::JsonWriter& json, const char* name,
                 const model::EfficiencyCurve& curve) {
  json.key(name).begin_object();
  json.kv("eff_max", curve.eff_max);
  json.kv("eff_min", curve.eff_min);
  json.kv("half_size", curve.half_size);
  json.kv("exponent", curve.exponent);
  json.end_object();
}

void write_quirks(util::JsonWriter& json, const char* name,
                  const std::vector<model::PerfQuirk>& quirks) {
  json.key(name).begin_array();
  for (const auto& q : quirks) {
    json.begin_object();
    json.kv("kind", quirk_kind_name(q.kind));
    json.kv("position", q.position);
    json.kv("magnitude", q.magnitude);
    json.kv("span", q.span);
    json.kv("scope", q.scope == model::QuirkScope::Any
                         ? "any"
                         : (q.scope == model::QuirkScope::F32Only ? "f32"
                                                                  : "f64"));
    json.kv("max_min_mn", q.max_min_mn);
    json.kv("min_aspect", q.min_aspect);
    json.end_object();
  }
  json.end_array();
}

}  // namespace

void write_run_manifest(std::ostream& out,
                        const profile::SystemProfile& profile,
                        const SweepConfig& config,
                        const std::vector<std::string>& problem_type_ids) {
  util::JsonWriter json(out);
  json.begin_object();
  json.kv("tool", "gpu-blob-repro");
  json.kv("format_version", 1);

  json.key("sweep").begin_object();
  json.kv("s_min", config.s_min);
  json.kv("s_max", config.s_max);
  json.kv("stride", config.stride);
  json.kv("iterations", config.iterations);
  json.kv("batch", config.batch);
  json.kv("precision", model::to_string(config.precision));
  json.kv("beta_zero", config.beta_zero);
  json.end_object();

  json.key("problem_types").begin_array();
  for (const auto& id : problem_type_ids) json.value(id);
  json.end_array();

  json.key("system").begin_object();
  json.kv("name", profile.name);
  json.kv("description", profile.description);
  json.kv("noise_sigma", profile.noise_sigma);

  const auto& cpu = profile.cpu;
  json.key("cpu").begin_object();
  json.kv("name", cpu.name);
  json.kv("cores", cpu.cores);
  json.kv("fp64_flops_per_cycle_per_core", cpu.fp64_flops_per_cycle_per_core);
  json.kv("freq_ghz", cpu.freq_ghz);
  json.kv("socket_mem_bw_gbs", cpu.socket_mem_bw_gbs);
  json.kv("core_mem_bw_gbs", cpu.core_mem_bw_gbs);
  json.kv("llc_mib", cpu.llc_mib);
  json.kv("cache_bw_gbs", cpu.cache_bw_gbs);
  json.kv("warm_compute_boost", cpu.warm_compute_boost);
  json.kv("warm_up_iterations", cpu.warm_up_iterations);
  json.kv("gemv_parallel", cpu.gemv_parallel);
  json.kv("call_overhead_s", cpu.call_overhead_s);
  json.kv("fork_join_overhead_s", cpu.fork_join_overhead_s);
  json.kv("gemm_thread_policy",
          parallel::to_string(cpu.gemm_thread_policy.kind));
  json.kv("gemv_thread_policy",
          parallel::to_string(cpu.gemv_thread_policy.kind));
  write_curve(json, "gemm_eff", cpu.gemm_eff);
  write_curve(json, "gemv_eff", cpu.gemv_eff);
  write_quirks(json, "gemm_quirks", cpu.gemm_quirks);
  write_quirks(json, "gemv_quirks", cpu.gemv_quirks);
  json.end_object();

  const auto& gpu = profile.gpu;
  json.key("gpu").begin_object();
  json.kv("name", gpu.name);
  json.kv("peak_gflops_f32", gpu.peak_gflops_f32);
  json.kv("peak_gflops_f64", gpu.peak_gflops_f64);
  json.kv("peak_gflops_f16", gpu.peak_gflops_f16);
  json.kv("hbm_bw_gbs", gpu.hbm_bw_gbs);
  json.kv("launch_latency_s", gpu.launch_latency_s);
  json.kv("min_kernel_s", gpu.min_kernel_s);
  write_curve(json, "gemm_eff", gpu.gemm_eff);
  write_curve(json, "gemv_eff", gpu.gemv_eff);
  write_quirks(json, "gemm_quirks", gpu.gemm_quirks);
  write_quirks(json, "gemv_quirks", gpu.gemv_quirks);
  json.end_object();

  const auto& link = profile.link;
  json.key("link").begin_object();
  json.kv("name", link.name);
  json.kv("latency_s", link.latency_s);
  json.kv("h2d_bw_gbs", link.h2d_bw_gbs);
  json.kv("d2h_bw_gbs", link.d2h_bw_gbs);
  json.kv("pageable_penalty", link.pageable_penalty);
  json.kv("page_bytes", link.page_bytes);
  json.kv("page_fault_latency_s", link.page_fault_latency_s);
  json.kv("migration_bw_gbs", link.migration_bw_gbs);
  json.kv("xnack", link.xnack);
  json.kv("remote_access_penalty", link.remote_access_penalty);
  json.kv("usm_kernel_overhead_s", link.usm_kernel_overhead_s);
  json.end_object();

  json.end_object();  // system
  json.end_object();  // root
  out << '\n';
}

}  // namespace blob::core
