#pragma once
// Paper-style reporting.
//
// Renders the offload-threshold tables GPU-BLOB prints to stdout, in the
// layout of the paper's Tables III/IV (rows = iteration counts, columns =
// transfer types, each cell "f32 : f64") and Tables V/VI (rows = problem
// types, cells = first iteration count producing a threshold).

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/sweep.hpp"

namespace blob::core {

/// Results of one (problem type, iteration count) pair for both
/// precisions on one system.
struct ThresholdEntry {
  std::int64_t iterations = 0;
  /// Per transfer mode, per precision (f32 = index 0, f64 = index 1).
  std::array<std::optional<OffloadThreshold>, 3> f32;
  std::array<std::optional<OffloadThreshold>, 3> f64;
};

/// Render a Table III/IV-style block for one system and problem type:
/// one row per iteration count, "Once / Always / USM" columns with
/// "f32 : f64" threshold values.
std::string render_threshold_table(const std::string& system_name,
                                   const ProblemType& type,
                                   const std::vector<ThresholdEntry>& rows);

/// For Tables V/VI: the smallest tested iteration count at which problem
/// `entries` (ascending in iterations) produced a Transfer-Once
/// threshold, per precision; "--" if never. Returns "i32 : i64".
std::string first_threshold_iteration(const std::vector<ThresholdEntry>& rows);

/// Render a GFLOP/s-vs-size series (a paper "figure") as aligned text
/// columns suitable for plotting or eyeballing: size, then one column
/// per labelled series.
std::string render_series(const std::string& title,
                          const std::vector<std::string>& labels,
                          const std::vector<std::int64_t>& sizes,
                          const std::vector<std::vector<double>>& series);

/// Build a ThresholdEntry from a pair of sweeps (f32 and f64) of the
/// same type/iterations.
ThresholdEntry make_entry(const SweepResult& f32_result,
                          const SweepResult& f64_result);

}  // namespace blob::core
