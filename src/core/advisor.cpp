#include "core/advisor.hpp"

#include <stdexcept>

#include "core/flops.hpp"
#include "core/sim_backend.hpp"
#include "util/strfmt.hpp"

namespace blob::core {

Advice OffloadAdvisor::advise(const OpDesc& desc, std::int64_t iterations) {
  Advice advice;
  advice.mode = desc.mode;
  advice.cpu_seconds = backend_.cpu_time(desc, iterations);
  const auto gpu = backend_.gpu_time(desc, iterations);
  if (!gpu.has_value()) {
    advice.offload = false;
    advice.gpu_seconds = 0.0;
    advice.rationale = "backend has no GPU; stay on the CPU";
    return advice;
  }
  advice.gpu_seconds = *gpu;
  advice.speedup =
      advice.gpu_seconds > 0.0 ? advice.cpu_seconds / advice.gpu_seconds : 0.0;
  advice.offload = advice.speedup > 1.0;
  advice.rationale = util::strfmt(
      "%s%s%s %lldx%lldx%lld (%s, %lld iters, %s): CPU %.3g s vs GPU %.3g s "
      "-> %s (%.2fx); arithmetic intensity %.2f FLOP/byte",
      to_string(desc.op), blas::to_string(desc.trans_a),
      desc.op == KernelOp::Gemm ? blas::to_string(desc.trans_b) : "",
      static_cast<long long>(desc.m), static_cast<long long>(desc.n),
      static_cast<long long>(desc.k), model::to_string(desc.precision),
      static_cast<long long>(iterations), to_string(desc.mode),
      advice.cpu_seconds, advice.gpu_seconds,
      advice.offload ? "offload to GPU" : "stay on CPU", advice.speedup,
      arithmetic_intensity(desc));
  return advice;
}

Advice OffloadAdvisor::advise_best_mode(const Problem& problem,
                                        std::int64_t iterations) {
  Advice best;
  bool first = true;
  for (TransferMode mode : kTransferModes) {
    Advice a = advise(problem, iterations, mode);
    if (first || (a.gpu_seconds > 0.0 &&
                  (best.gpu_seconds <= 0.0 ||
                   a.gpu_seconds < best.gpu_seconds))) {
      best = a;
      first = false;
    }
  }
  return best;
}

double OffloadAdvisor::predicted_speedup(const Problem& problem,
                                         std::int64_t iterations,
                                         TransferMode mode) {
  return advise(problem, iterations, mode).speedup;
}

OffloadAdvisor::TimeEnergyAdvice OffloadAdvisor::advise_time_and_energy(
    const profile::SystemProfile& profile, const Problem& problem,
    std::int64_t iterations, TransferMode mode) {
  TimeEnergyAdvice out;
  SimBackend backend(profile, 0.0);
  OffloadAdvisor advisor(backend);
  out.time = advisor.advise(problem, iterations, mode);
  out.energy = estimate_energy(profile, problem, iterations, mode);
  const bool time_says_gpu = out.time.offload;
  const bool energy_says_gpu = out.energy.gpu_more_efficient();
  if (time_says_gpu && energy_says_gpu) {
    out.verdict = "offload";
  } else if (!time_says_gpu && !energy_says_gpu) {
    out.verdict = "stay";
  } else {
    out.verdict = "trade-off";
  }
  return out;
}

}  // namespace blob::core
