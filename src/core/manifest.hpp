#pragma once
// Run manifest: a machine-readable reproducibility record.
//
// The paper's artifact appendix walks through compiler versions, module
// loads, and environment variables needed to reproduce each system's
// data. Our equivalent: every CSV-producing run can emit a
// run_info.json capturing the complete simulated-system parameterisation
// and sweep configuration, so any number in any CSV can be traced to the
// exact model constants that produced it.

#include <ostream>
#include <string>
#include <vector>

#include "core/sweep.hpp"
#include "sysprofile/profile.hpp"

namespace blob::core {

/// Write the manifest as JSON: tool info, full system-profile parameter
/// dump (CPU/GPU/link models incl. quirks), sweep configuration, and the
/// list of problem-type ids the run covered.
void write_run_manifest(std::ostream& out,
                        const profile::SystemProfile& profile,
                        const SweepConfig& config,
                        const std::vector<std::string>& problem_type_ids);

}  // namespace blob::core
