#pragma once
// HybridBackend: real CPU, simulated GPU.
//
// The question a porting decision actually asks is "would GPU X beat the
// CPU I am running on?" — which needs measured CPU times on *this*
// machine against modelled times for a GPU you may not own yet. The
// hybrid backend measures the CPU side with HostBackend and answers the
// GPU side from a system profile's GPU + link models, so `gpu-blob
// --backend hybrid --system isambard-ai` sweeps your machine against a
// simulated GH200.

#include "core/host_backend.hpp"
#include "core/sim_backend.hpp"

namespace blob::core {

class HybridBackend final : public ExecutionBackend {
 public:
  HybridBackend(blas::CpuLibraryPersonality personality,
                profile::SystemProfile gpu_profile,
                std::size_t max_threads = 0, int repeats = 3);

  [[nodiscard]] std::string name() const override;

  using ExecutionBackend::cpu_time;
  using ExecutionBackend::gpu_time;

  /// Measured on this machine.
  double cpu_time(const OpDesc& desc, std::int64_t iterations) override;

  /// Modelled from the profile's GPU and link (noise-free).
  std::optional<double> gpu_time(const OpDesc& desc,
                                 std::int64_t iterations) override;

 private:
  HostBackend host_;
  SimBackend sim_;
};

}  // namespace blob::core
