#include "core/backend.hpp"

namespace blob::core {

const char* to_string(TransferMode mode) {
  switch (mode) {
    case TransferMode::Once:
      return "once";
    case TransferMode::Always:
      return "always";
    case TransferMode::Usm:
      return "usm";
  }
  return "?";
}

}  // namespace blob::core
