#include "core/problem.hpp"

#include <algorithm>
#include <stdexcept>

namespace blob::core {

const char* to_string(KernelOp op) {
  return op == KernelOp::Gemm ? "gemm" : "gemv";
}

namespace {

// GEMM dimension relationships (paper Fig. 1 / Table V).
Dims gemm_square(std::int64_t s) { return {s, s, s}; }
Dims gemm_tall_k(std::int64_t s) { return {s, s, 16 * s}; }       // M=N, K=16M
Dims gemm_fixed_mn(std::int64_t s) { return {32, 32, s}; }        // M=N=32, K>=1
Dims gemm_wide_m(std::int64_t s) { return {16 * s, s, s}; }       // K=N, M=16K
Dims gemm_fixed_kn(std::int64_t s) { return {s, 32, 32}; }        // K=N=32, M>=1
Dims gemm_tall_n(std::int64_t s) { return {s, 16 * s, s}; }       // M=K, N=16K
Dims gemm_fixed_mk(std::int64_t s) { return {32, s, 32}; }        // M=K=32, N>=1
Dims gemm_thin_k(std::int64_t s) { return {s, s, 32}; }           // M=N, K=32
Dims gemm_short_k(std::int64_t s) {                               // M=N, M=16K
  return {s, s, std::max<std::int64_t>(1, s / 16)};
}

// GEMV dimension relationships (paper Fig. 1 / Table VI).
Dims gemv_square(std::int64_t s) { return {s, s, 1}; }
Dims gemv_tall(std::int64_t s) { return {16 * s, s, 1}; }         // M=16N
Dims gemv_fixed_n(std::int64_t s) { return {s, 32, 1}; }          // N=32, M>=1
Dims gemv_wide(std::int64_t s) { return {s, 16 * s, 1}; }         // N=16M
Dims gemv_fixed_m(std::int64_t s) { return {32, s, 1}; }          // M=32, N>=1

}  // namespace

const std::vector<ProblemType>& gemm_problem_types() {
  static const std::vector<ProblemType> kTypes = {
      {KernelOp::Gemm, "gemm_square", "M=N=K", gemm_square},
      {KernelOp::Gemm, "gemm_tall_k", "M=N, K=16M", gemm_tall_k},
      {KernelOp::Gemm, "gemm_fixed_mn_32", "M=N=32, K>=1", gemm_fixed_mn},
      {KernelOp::Gemm, "gemm_wide_m", "K=N, M=16K", gemm_wide_m},
      {KernelOp::Gemm, "gemm_fixed_kn_32", "K=N=32, M>=1", gemm_fixed_kn},
      {KernelOp::Gemm, "gemm_tall_n", "M=K, N=16K", gemm_tall_n},
      {KernelOp::Gemm, "gemm_fixed_mk_32", "M=K=32, N>=1", gemm_fixed_mk},
      {KernelOp::Gemm, "gemm_thin_k", "M=N, K=32", gemm_thin_k},
      {KernelOp::Gemm, "gemm_short_k", "M=N, M=16K", gemm_short_k},
  };
  return kTypes;
}

const std::vector<ProblemType>& gemv_problem_types() {
  static const std::vector<ProblemType> kTypes = {
      {KernelOp::Gemv, "gemv_square", "M=N", gemv_square},
      {KernelOp::Gemv, "gemv_tall", "M=16N", gemv_tall},
      {KernelOp::Gemv, "gemv_fixed_n_32", "N=32, M>=1", gemv_fixed_n},
      {KernelOp::Gemv, "gemv_wide", "N=16M", gemv_wide},
      {KernelOp::Gemv, "gemv_fixed_m_32", "M=32, N>=1", gemv_fixed_m},
  };
  return kTypes;
}

const std::vector<ProblemType>& all_problem_types() {
  static const std::vector<ProblemType> kAll = [] {
    std::vector<ProblemType> all = gemm_problem_types();
    const auto& gemv = gemv_problem_types();
    all.insert(all.end(), gemv.begin(), gemv.end());
    return all;
  }();
  return kAll;
}

const ProblemType& problem_type_by_id(const std::string& id) {
  for (const auto& t : all_problem_types()) {
    if (t.id() == id) return t;
  }
  throw std::invalid_argument("unknown problem type: " + id);
}

}  // namespace blob::core
