#pragma once
// HostBackend: real execution of our CPU BLAS under a wall clock.
//
// This is the "CPU-only build" mode of GPU-BLOB (§III): it measures the
// machine the benchmark runs on. There is no GPU, so gpu_time returns
// nullopt and the harness emits CPU-only CSV data — exactly the workflow
// the paper used on LUMI, where the CPU and GPU halves were built and run
// separately. Consumes the core::OpDesc IR, so transposed and batched
// descriptors execute with their real layouts.

#include <memory>
#include <vector>

#include "blas/library.hpp"
#include "core/backend.hpp"

namespace blob::core {

class HostBackend final : public ExecutionBackend {
 public:
  /// `repeats` timed repetitions are taken and the minimum reported
  /// (standard practice to suppress scheduler noise).
  explicit HostBackend(blas::CpuLibraryPersonality personality,
                       std::size_t max_threads = 0, int repeats = 3);

  [[nodiscard]] std::string name() const override;

  using ExecutionBackend::cpu_time;
  using ExecutionBackend::gpu_time;
  double cpu_time(const OpDesc& desc, std::int64_t iterations) override;
  std::optional<double> gpu_time(const OpDesc&, std::int64_t) override {
    return std::nullopt;
  }

  [[nodiscard]] const blas::CpuBlasLibrary& library() const { return lib_; }

 private:
  template <typename T>
  double run_timed(const OpDesc& desc, std::int64_t iterations);

  blas::CpuBlasLibrary lib_;
  int repeats_;
};

}  // namespace blob::core
