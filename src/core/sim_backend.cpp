#include "core/sim_backend.hpp"

#include "core/flops.hpp"

namespace blob::core {

SimBackend::SimBackend(profile::SystemProfile profile, double noise_override,
                       std::uint64_t noise_seed)
    : profile_(std::move(profile)),
      noise_(noise_override >= 0.0 ? noise_override : profile_.noise_sigma,
             noise_seed) {}

double SimBackend::cpu_time(const Problem& problem, std::int64_t iterations) {
  const auto& d = problem.dims;
  const double iters = static_cast<double>(iterations);
  double total = 0.0;
  if (problem.op == KernelOp::Gemm && problem.batch > 1) {
    total = iters * profile_.cpu.gemm_batched_time(
                        problem.precision, static_cast<double>(d.m),
                        static_cast<double>(d.n), static_cast<double>(d.k),
                        static_cast<double>(problem.batch),
                        problem.beta_zero);
  } else if (problem.op == KernelOp::Gemm) {
    total = profile_.cpu.gemm_total_time(
        problem.precision, static_cast<double>(d.m),
        static_cast<double>(d.n), static_cast<double>(d.k), iters,
        problem.beta_zero);
  } else {
    total = profile_.cpu.gemv_total_time(
        problem.precision, static_cast<double>(d.m),
        static_cast<double>(d.n), iters, problem.beta_zero);
  }
  const double factor =
      noise_.factor(profile_.name, "cpu", problem.precision, d.m, d.n, d.k,
                    iterations);
  return total * factor;
}

double SimBackend::kernel_time(const Problem& problem) const {
  const auto& d = problem.dims;
  if (problem.op == KernelOp::Gemm && problem.batch > 1) {
    return profile_.gpu.gemm_batched_kernel_time(
        problem.precision, static_cast<double>(d.m),
        static_cast<double>(d.n), static_cast<double>(d.k),
        static_cast<double>(problem.batch), problem.beta_zero);
  }
  return problem.op == KernelOp::Gemm
             ? profile_.gpu.gemm_kernel_time(problem.precision,
                                             static_cast<double>(d.m),
                                             static_cast<double>(d.n),
                                             static_cast<double>(d.k),
                                             problem.beta_zero)
             : profile_.gpu.gemv_kernel_time(problem.precision,
                                             static_cast<double>(d.m),
                                             static_cast<double>(d.n),
                                             problem.beta_zero);
}

std::optional<double> SimBackend::gpu_time(const Problem& problem,
                                           std::int64_t iterations,
                                           TransferMode mode) {
  const double in_bytes = h2d_bytes(problem);
  const double out_bytes = d2h_bytes(problem);
  // Per-structure byte counts: USM faults are charged per allocation,
  // matching the SimGpu device's accounting exactly.
  const double es = static_cast<double>(model::bytes_of(problem.precision));
  const double md = static_cast<double>(problem.dims.m);
  const double nd = static_cast<double>(problem.dims.n);
  const double kd = static_cast<double>(problem.dims.k);
  double s0 = 0.0, s1 = 0.0, s2 = 0.0;  // A, B/x, C/y
  if (problem.op == KernelOp::Gemm) {
    s0 = es * md * kd;
    s1 = es * kd * nd;
    s2 = es * md * nd;
  } else {
    s0 = es * md * nd;
    s1 = es * nd;
    s2 = es * md;
  }
  const double kernel = kernel_time(problem);
  const double iters = static_cast<double>(iterations);
  const auto& link = profile_.link;

  double total = 0.0;
  switch (mode) {
    case TransferMode::Once:
      // GPU-BLOB issues one explicit copy per data structure (3 for GEMM,
      // 3 for GEMV), so the link latency is paid per structure.
      total = 3.0 * link.latency_s + in_bytes / (link.h2d_bw_gbs * 1e9) +
              iters * kernel + link.d2h_time(out_bytes, true);
      break;
    case TransferMode::Always:
      total = iters * (3.0 * link.latency_s +
                       in_bytes / (link.h2d_bw_gbs * 1e9) + kernel +
                       link.d2h_time(out_bytes, true));
      break;
    case TransferMode::Usm:
      if (link.xnack) {
        // First kernel faults each structure across; later kernels run
        // device-resident (plus any per-kernel driver tax); host reads
        // the output back at the end.
        total = link.usm_first_touch_time(s0) + link.usm_first_touch_time(s1) +
                link.usm_first_touch_time(s2) +
                iters * (kernel + link.usm_kernel_overhead_s) +
                link.usm_writeback_time(out_bytes);
      } else {
        // No page migration: every kernel's reads AND the output write
        // cross the link.
        total = iters * (link.usm_remote_access_time(in_bytes + out_bytes) +
                         link.usm_kernel_overhead_s + kernel);
      }
      break;
  }

  const auto& d = problem.dims;
  const char* tag = mode == TransferMode::Once
                        ? "gpu-once"
                        : (mode == TransferMode::Always ? "gpu-always"
                                                        : "gpu-usm");
  const double factor = noise_.factor(profile_.name, tag, problem.precision,
                                      d.m, d.n, d.k, iterations);
  return total * factor;
}

}  // namespace blob::core
