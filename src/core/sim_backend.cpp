#include "core/sim_backend.hpp"

#include <algorithm>

#include "core/flops.hpp"

namespace blob::core {

namespace {

bool trans_a_of(const OpDesc& desc) {
  return desc.trans_a != blas::Transpose::No;
}
bool trans_b_of(const OpDesc& desc) {
  return desc.trans_b != blas::Transpose::No;
}

}  // namespace

SimBackend::SimBackend(profile::SystemProfile profile, double noise_override,
                       std::uint64_t noise_seed, int device_id)
    : profile_(std::move(profile)),
      // Salt the seed by device id (id 0 keeps the legacy stream) so
      // same-profile fleet devices draw independent noise.
      noise_(noise_override >= 0.0 ? noise_override : profile_.noise_sigma,
             noise_seed +
                 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(device_id)),
      device_id_(device_id) {}

double SimBackend::cpu_time(const OpDesc& desc, std::int64_t iterations) {
  const double iters = static_cast<double>(iterations);
  double total = 0.0;
  if (desc.op == KernelOp::Gemm && desc.batch > 1) {
    total = iters * profile_.cpu.gemm_batched_time(
                        desc.precision, static_cast<double>(desc.m),
                        static_cast<double>(desc.n),
                        static_cast<double>(desc.k),
                        static_cast<double>(desc.batch), desc.beta_zero,
                        trans_a_of(desc), trans_b_of(desc));
  } else if (desc.op == KernelOp::Gemm) {
    total = profile_.cpu.gemm_total_time(
        desc.precision, static_cast<double>(desc.m),
        static_cast<double>(desc.n), static_cast<double>(desc.k), iters,
        desc.beta_zero, trans_a_of(desc), trans_b_of(desc));
  } else if (desc.batch > 1) {
    total = iters * profile_.cpu.gemv_batched_time(
                        desc.precision, static_cast<double>(desc.m),
                        static_cast<double>(desc.n),
                        static_cast<double>(desc.batch), desc.beta_zero,
                        trans_a_of(desc));
  } else {
    total = profile_.cpu.gemv_total_time(
        desc.precision, static_cast<double>(desc.m),
        static_cast<double>(desc.n), iters, desc.beta_zero,
        trans_a_of(desc));
  }
  const double factor = noise_.factor(profile_.name, "cpu", desc.precision,
                                      desc.m, desc.n, desc.k, iterations);
  return total * factor;
}

double SimBackend::kernel_time(const OpDesc& desc) const {
  if (desc.op == KernelOp::Gemm && desc.batch > 1) {
    return profile_.gpu.gemm_batched_kernel_time(
        desc.precision, static_cast<double>(desc.m),
        static_cast<double>(desc.n), static_cast<double>(desc.k),
        static_cast<double>(desc.batch), desc.beta_zero, trans_a_of(desc),
        trans_b_of(desc));
  }
  if (desc.op == KernelOp::Gemv && desc.batch > 1) {
    return profile_.gpu.gemv_batched_kernel_time(
        desc.precision, static_cast<double>(desc.m),
        static_cast<double>(desc.n), static_cast<double>(desc.batch),
        desc.beta_zero, trans_a_of(desc));
  }
  return desc.op == KernelOp::Gemm
             ? profile_.gpu.gemm_kernel_time(
                   desc.precision, static_cast<double>(desc.m),
                   static_cast<double>(desc.n), static_cast<double>(desc.k),
                   desc.beta_zero, trans_a_of(desc), trans_b_of(desc))
             : profile_.gpu.gemv_kernel_time(
                   desc.precision, static_cast<double>(desc.m),
                   static_cast<double>(desc.n), desc.beta_zero,
                   trans_a_of(desc));
}

double SimBackend::emulated_kernel_time(const OpDesc& desc,
                                        int slices) const {
  return profile_.gpu.gemm_emulated_kernel_time(
      static_cast<double>(desc.m), static_cast<double>(desc.n),
      static_cast<double>(desc.k), slices, desc.beta_zero, trans_a_of(desc),
      trans_b_of(desc));
}

double SimBackend::gpu_time_with(const OpDesc& desc,
                                 const GpuTraffic& traffic) const {
  return time_with_kernel(traffic, kernel_time(desc));
}

double SimBackend::gpu_time_emulated_with(const OpDesc& desc,
                                          const GpuTraffic& traffic,
                                          int slices) const {
  return time_with_kernel(traffic, emulated_kernel_time(desc, slices));
}

double SimBackend::time_with_kernel(const GpuTraffic& traffic,
                                    double kernel) const {
  const auto& link = profile_.link;
  if (traffic.usm) {
    // Each still-host-resident structure faults across on first touch;
    // resident structures (0 bytes) migrate nothing but the per-kernel
    // driver tax on managed memory is always due.
    double total = link.usm_kernel_overhead_s + kernel;
    for (const double bytes : traffic.h2d) {
      total += link.usm_first_touch_time(bytes);
    }
    return total + link.usm_writeback_time(traffic.d2h_bytes);
  }
  double bytes = 0.0;
  int structures = 0;
  for (const double b : traffic.h2d) {
    if (b > 0.0) {
      bytes += b;
      ++structures;
    }
  }
  return link.h2d_structures_time(bytes, structures, true) + kernel +
         link.d2h_time(traffic.d2h_bytes, true);
}

std::optional<double> SimBackend::gpu_time(const OpDesc& desc,
                                           std::int64_t iterations) {
  const double in_bytes = h2d_bytes(desc);
  const double out_bytes = d2h_bytes(desc);
  // Per-structure byte counts: USM faults are charged per allocation,
  // matching the SimGpu device's accounting exactly. Transposes move
  // elements around but never change a structure's footprint; a GEMV's
  // vector lengths do swap with trans_a.
  const double es = static_cast<double>(model::bytes_of(desc.precision));
  const double md = static_cast<double>(desc.m);
  const double nd = static_cast<double>(desc.n);
  const double kd = static_cast<double>(desc.k);
  const double bd = static_cast<double>(std::max<std::int64_t>(1, desc.batch));
  double s0 = 0.0, s1 = 0.0, s2 = 0.0;  // A, B/x, C/y
  if (desc.op == KernelOp::Gemm) {
    s0 = bd * es * md * kd;
    s1 = bd * es * kd * nd;
    s2 = bd * es * md * nd;
  } else {
    s0 = bd * es * md * nd;
    s1 = bd * es * static_cast<double>(desc.x_len());
    s2 = bd * es * static_cast<double>(desc.y_len());
  }
  const double kernel = kernel_time(desc);
  const double iters = static_cast<double>(iterations);
  const auto& link = profile_.link;

  double total = 0.0;
  switch (desc.mode) {
    case TransferMode::Once:
      // GPU-BLOB issues one explicit copy per data structure (3 for GEMM,
      // 3 for GEMV), so the link latency is paid per structure.
      total = 3.0 * link.latency_s + in_bytes / (link.h2d_bw_gbs * 1e9) +
              iters * kernel + link.d2h_time(out_bytes, true);
      break;
    case TransferMode::Always:
      total = iters * (3.0 * link.latency_s +
                       in_bytes / (link.h2d_bw_gbs * 1e9) + kernel +
                       link.d2h_time(out_bytes, true));
      break;
    case TransferMode::Usm:
      if (link.xnack) {
        // First kernel faults each structure across; later kernels run
        // device-resident (plus any per-kernel driver tax); host reads
        // the output back at the end.
        total = link.usm_first_touch_time(s0) + link.usm_first_touch_time(s1) +
                link.usm_first_touch_time(s2) +
                iters * (kernel + link.usm_kernel_overhead_s) +
                link.usm_writeback_time(out_bytes);
      } else {
        // No page migration: every kernel's reads AND the output write
        // cross the link.
        total = iters * (link.usm_remote_access_time(in_bytes + out_bytes) +
                         link.usm_kernel_overhead_s + kernel);
      }
      break;
  }

  const char* tag = desc.mode == TransferMode::Once
                        ? "gpu-once"
                        : (desc.mode == TransferMode::Always ? "gpu-always"
                                                             : "gpu-usm");
  const double factor = noise_.factor(profile_.name, tag, desc.precision,
                                      desc.m, desc.n, desc.k, iterations);
  return total * factor;
}

}  // namespace blob::core
