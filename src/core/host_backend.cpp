#include "core/host_backend.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"
#include "util/timer.hpp"

namespace blob::core {

namespace {

/// Sink with external linkage so the optimizer cannot elide the BLAS
/// calls whose outputs are otherwise unused — the same trick as
/// GPU-BLOB's `consume(void*, void*, void*)` external function (§III-B1).
volatile double g_consume_sink = 0.0;

template <typename T>
void consume(const T* data, std::size_t len) {
  if (len > 0) g_consume_sink = static_cast<double>(data[len / 2]);
}

template <typename T>
void fill_random(std::vector<T>& v, util::Xoshiro256& rng) {
  for (auto& x : v) x = static_cast<T>(rng.uniform(-1.0, 1.0));
}

}  // namespace

HostBackend::HostBackend(blas::CpuLibraryPersonality personality,
                         std::size_t max_threads, int repeats)
    : lib_(std::move(personality), max_threads),
      repeats_(std::max(1, repeats)) {}

std::string HostBackend::name() const {
  return "host/" + lib_.personality().name;
}

template <typename T>
double HostBackend::run_timed(const OpDesc& desc, std::int64_t iterations) {
  const auto m = static_cast<int>(desc.m);
  const auto n = static_cast<int>(desc.n);
  const auto k = static_cast<int>(desc.k);
  // Constant seed so CPU and (simulated) GPU runs see identical data and
  // checksums are comparable (§III-B).
  util::Xoshiro256 rng(0xB10Bu);

  double best = 0.0;
  if (desc.op == KernelOp::Gemm) {
    // Stored shapes follow the descriptor's transposes; batch items are
    // laid out back to back (tight strides).
    const auto item_a = static_cast<std::size_t>(desc.rows_a()) *
                        static_cast<std::size_t>(desc.cols_a());
    const auto item_b = static_cast<std::size_t>(desc.rows_b()) *
                        static_cast<std::size_t>(desc.cols_b());
    const auto item_c =
        static_cast<std::size_t>(m) * static_cast<std::size_t>(n);
    const auto batch = static_cast<std::size_t>(desc.batch);
    std::vector<T> a(item_a * batch);
    std::vector<T> b(item_b * batch);
    std::vector<T> c(item_c * batch, T(0));
    fill_random(a, rng);
    fill_random(b, rng);
    const T beta = desc.beta_zero ? T(0) : T(2);
    const int lda = std::max<int>(1, static_cast<int>(desc.rows_a()));
    const int ldb = std::max<int>(1, static_cast<int>(desc.rows_b()));
    const int ldc = std::max(1, m);
    auto run_once = [&] {
      for (std::size_t i = 0; i < batch; ++i) {
        lib_.do_gemm(desc.trans_a, desc.trans_b, m, n, k, T(1),
                     a.data() + i * item_a, lda, b.data() + i * item_b, ldb,
                     beta, c.data() + i * item_c, ldc);
      }
    };
    // One untimed warm-up grows the packing arena and faults the buffers
    // in, so the timed repeats measure steady-state library speed — the
    // same regime a vendor BLAS is benchmarked in.
    run_once();
    for (int r = 0; r < repeats_; ++r) {
      util::WallTimer timer;
      for (std::int64_t i = 0; i < iterations; ++i) run_once();
      const double t = timer.elapsed_seconds();
      best = r == 0 ? t : std::min(best, t);
      consume(c.data(), c.size());
    }
  } else {
    std::vector<T> a(static_cast<std::size_t>(m) * n);
    std::vector<T> x(static_cast<std::size_t>(desc.x_len()));
    std::vector<T> y(static_cast<std::size_t>(desc.y_len()), T(0));
    fill_random(a, rng);
    fill_random(x, rng);
    const T beta = desc.beta_zero ? T(0) : T(2);
    lib_.do_gemv(desc.trans_a, m, n, T(1), a.data(), std::max(1, m),
                 x.data(), 1, beta, y.data(), 1);  // untimed warm-up
    for (int r = 0; r < repeats_; ++r) {
      util::WallTimer timer;
      for (std::int64_t i = 0; i < iterations; ++i) {
        lib_.do_gemv(desc.trans_a, m, n, T(1), a.data(), std::max(1, m),
                     x.data(), 1, beta, y.data(), 1);
      }
      const double t = timer.elapsed_seconds();
      best = r == 0 ? t : std::min(best, t);
      consume(y.data(), y.size());
    }
  }
  return best;
}

double HostBackend::cpu_time(const OpDesc& desc, std::int64_t iterations) {
  switch (desc.precision) {
    case model::Precision::F32:
      return run_timed<float>(desc, iterations);
    case model::Precision::F64:
      return run_timed<double>(desc, iterations);
    default:
      throw std::invalid_argument(
          "HostBackend: only f32/f64 are timed on the host");
  }
}

}  // namespace blob::core
