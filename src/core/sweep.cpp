#include "core/sweep.hpp"

#include <cmath>
#include <istream>
#include <limits>
#include <stdexcept>
#include <string>

#include "core/flops.hpp"
#include "util/csv.hpp"
#include "util/strfmt.hpp"

namespace blob::core {

void SweepResult::detect_thresholds() {
  for (std::size_t mode = 0; mode < 3; ++mode) {
    std::vector<ThresholdSample> ts;
    ts.reserve(samples.size());
    for (const auto& sample : samples) {
      if (!sample.has_gpu || std::isnan(sample.gpu_seconds[mode])) continue;
      ts.push_back(ThresholdSample{sample.s, sample.dims,
                                   sample.cpu_seconds,
                                   sample.gpu_seconds[mode]});
    }
    thresholds[mode] = detect_threshold(ts);
  }
}

SweepResult run_sweep(ExecutionBackend& backend, const ProblemType& type,
                      const SweepConfig& config) {
  if (config.s_min < 1 || config.s_max < config.s_min ||
      config.stride < 1) {
    throw std::invalid_argument("run_sweep: invalid sweep bounds");
  }

  SweepResult result;
  result.type = &type;
  result.config = config;
  result.backend_name = backend.name();

  for (std::int64_t s = config.s_min; s <= config.s_max;
       s += config.stride) {
    Problem problem;
    problem.op = type.op();
    problem.precision = config.precision;
    problem.dims = type.dims(s);
    problem.beta_zero = config.beta_zero;
    problem.batch = config.batch;

    SweepSample sample;
    sample.s = s;
    sample.dims = problem.dims;
    // Interleaved CPU then GPU execution, GPU-BLOB's default style.
    sample.cpu_seconds = backend.cpu_time(problem, config.iterations);
    sample.cpu_gflops =
        gflops(problem, config.iterations, sample.cpu_seconds);
    for (std::size_t mode = 0; mode < 3; ++mode) {
      const auto t =
          backend.gpu_time(problem, config.iterations, kTransferModes[mode]);
      if (t.has_value()) {
        sample.has_gpu = true;
        sample.gpu_seconds[mode] = *t;
        sample.gpu_gflops[mode] = gflops(problem, config.iterations, *t);
      } else {
        sample.gpu_seconds[mode] = std::numeric_limits<double>::quiet_NaN();
        sample.gpu_gflops[mode] = 0.0;
      }
    }
    result.samples.push_back(sample);
  }

  result.detect_thresholds();
  return result;
}

namespace {

const std::vector<std::string>& csv_header() {
  static const std::vector<std::string> kHeader = {
      "problem_type", "kernel",       "precision", "device",
      "transfer",     "iterations",   "batch",     "s",
      "m",            "n",            "k",         "total_seconds",
      "gflops"};
  return kHeader;
}

std::vector<std::string> csv_row(const SweepResult& r,
                                 const SweepSample& sample,
                                 const std::string& device,
                                 const std::string& transfer,
                                 double seconds, double gf) {
  return {r.type->id(),
          to_string(r.type->op()),
          model::to_string(r.config.precision),
          device,
          transfer,
          std::to_string(r.config.iterations),
          std::to_string(r.config.batch),
          std::to_string(sample.s),
          std::to_string(sample.dims.m),
          std::to_string(sample.dims.n),
          std::to_string(sample.dims.k),
          util::strfmt("%.9e", seconds),
          util::strfmt("%.6f", gf)};
}

}  // namespace

void write_csv(std::ostream& out, const SweepResult& result,
               bool include_cpu, bool include_gpu) {
  util::CsvWriter writer(out, csv_header());
  for (const auto& sample : result.samples) {
    if (include_cpu) {
      writer.row(csv_row(result, sample, "cpu", "none", sample.cpu_seconds,
                         sample.cpu_gflops));
    }
    if (!include_gpu || !sample.has_gpu) continue;
    for (std::size_t mode = 0; mode < 3; ++mode) {
      writer.row(csv_row(result, sample, "gpu",
                         to_string(kTransferModes[mode]),
                         sample.gpu_seconds[mode],
                         sample.gpu_gflops[mode]));
    }
  }
}

SweepResult read_csv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::invalid_argument("read_csv: empty input");
  }
  const auto header = util::csv_parse_line(line);
  if (header != csv_header()) {
    throw std::invalid_argument("read_csv: unexpected header");
  }

  SweepResult result;
  bool first = true;
  // Keyed reassembly: rows arrive cpu-first per sample in write order,
  // but we tolerate merged CPU-only + GPU-only files (the LUMI workflow)
  // by matching on s.
  auto find_sample = [&](std::int64_t s) -> SweepSample& {
    for (auto& existing : result.samples) {
      if (existing.s == s) return existing;
    }
    result.samples.emplace_back();
    result.samples.back().s = s;
    for (auto& g : result.samples.back().gpu_seconds) {
      g = std::numeric_limits<double>::quiet_NaN();
    }
    return result.samples.back();
  };

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto f = util::csv_parse_line(line);
    if (f.size() != csv_header().size()) {
      throw std::invalid_argument("read_csv: bad row width");
    }
    if (first) {
      result.type = &problem_type_by_id(f[0]);
      result.config.precision =
          f[2] == "f64" ? model::Precision::F64 : model::Precision::F32;
      result.config.iterations = std::stoll(f[5]);
      result.config.batch = std::stoll(f[6]);
      first = false;
    }
    const std::int64_t s = std::stoll(f[7]);
    SweepSample& sample = find_sample(s);
    sample.dims = Dims{std::stoll(f[8]), std::stoll(f[9]), std::stoll(f[10])};
    const double seconds = std::stod(f[11]);
    const double gf = std::stod(f[12]);
    if (f[3] == "cpu") {
      sample.cpu_seconds = seconds;
      sample.cpu_gflops = gf;
    } else {
      sample.has_gpu = true;
      for (std::size_t mode = 0; mode < 3; ++mode) {
        if (f[4] == to_string(kTransferModes[mode])) {
          sample.gpu_seconds[mode] = seconds;
          sample.gpu_gflops[mode] = gf;
        }
      }
    }
  }
  if (first) throw std::invalid_argument("read_csv: no data rows");
  result.config.s_min = result.samples.front().s;
  result.config.s_max = result.samples.back().s;
  result.detect_thresholds();
  return result;
}

}  // namespace blob::core
