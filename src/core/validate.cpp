#include "core/validate.hpp"

#include <cmath>
#include <cstring>
#include <vector>

#include "util/rng.hpp"
#include "util/strfmt.hpp"

namespace blob::core {

namespace {

template <typename T>
void fill_random(T* data, std::size_t len, util::Xoshiro256& rng) {
  for (std::size_t i = 0; i < len; ++i) {
    data[i] = static_cast<T>(rng.uniform(-1.0, 1.0));
  }
}

template <typename T>
ValidationResult validate_impl(const Problem& problem,
                               const blas::CpuBlasLibrary& cpu,
                               sim::SimGpu& gpu) {
  const auto m = static_cast<int>(problem.dims.m);
  const auto n = static_cast<int>(problem.dims.n);
  const auto k = static_cast<int>(problem.dims.k);
  const T beta = problem.beta_zero ? T(0) : T(2);

  ValidationResult result;

  if (problem.op == KernelOp::Gemm) {
    const std::size_t a_len = static_cast<std::size_t>(m) * k;
    const std::size_t b_len = static_cast<std::size_t>(k) * n;
    const std::size_t c_len = static_cast<std::size_t>(m) * n;

    // Host-side data, constant seed.
    std::vector<T> a(a_len);
    std::vector<T> b(b_len);
    std::vector<T> c_cpu(c_len, T(0));
    util::Xoshiro256 rng(kDataSeed);
    fill_random(a.data(), a_len, rng);
    fill_random(b.data(), b_len, rng);

    cpu.do_gemm(blas::Transpose::No, blas::Transpose::No, m, n, k, T(1),
                a.data(), std::max(1, m), b.data(), std::max(1, k), beta,
                c_cpu.data(), std::max(1, m));

    // GPU side: pinned staging + device buffers, Transfer-Once style.
    auto ha = gpu.alloc_host(a_len * sizeof(T));
    auto hb = gpu.alloc_host(b_len * sizeof(T));
    auto hc = gpu.alloc_host(c_len * sizeof(T));
    std::memcpy(ha.data(), a.data(), a_len * sizeof(T));
    std::memcpy(hb.data(), b.data(), b_len * sizeof(T));

    auto da = gpu.alloc_device(a_len * sizeof(T));
    auto db = gpu.alloc_device(b_len * sizeof(T));
    auto dc = gpu.alloc_device(c_len * sizeof(T));
    gpu.memcpy_h2d(da, ha, a_len * sizeof(T));
    gpu.memcpy_h2d(db, hb, b_len * sizeof(T));
    gpu.memcpy_h2d(dc, hc, c_len * sizeof(T));
    gpu.gemm<T>(m, n, k, T(1), da, std::max(1, m), db, std::max(1, k), beta,
                dc, std::max(1, m));
    gpu.synchronize();
    gpu.memcpy_d2h(hc, dc, c_len * sizeof(T));

    result.cpu_checksum = checksum(c_cpu.data(), c_len);
    result.gpu_checksum = checksum(hc.as<T>(), c_len);
  } else {
    const std::size_t a_len = static_cast<std::size_t>(m) * n;
    const std::size_t x_len = static_cast<std::size_t>(n);
    const std::size_t y_len = static_cast<std::size_t>(m);

    std::vector<T> a(a_len);
    std::vector<T> x(x_len);
    std::vector<T> y_cpu(y_len, T(0));
    util::Xoshiro256 rng(kDataSeed);
    fill_random(a.data(), a_len, rng);
    fill_random(x.data(), x_len, rng);

    cpu.do_gemv(blas::Transpose::No, m, n, T(1), a.data(), std::max(1, m),
                x.data(), 1, beta, y_cpu.data(), 1);

    auto ha = gpu.alloc_host(a_len * sizeof(T));
    auto hx = gpu.alloc_host(x_len * sizeof(T));
    auto hy = gpu.alloc_host(y_len * sizeof(T));
    std::memcpy(ha.data(), a.data(), a_len * sizeof(T));
    std::memcpy(hx.data(), x.data(), x_len * sizeof(T));

    auto da = gpu.alloc_device(a_len * sizeof(T));
    auto dx = gpu.alloc_device(x_len * sizeof(T));
    auto dy = gpu.alloc_device(y_len * sizeof(T));
    gpu.memcpy_h2d(da, ha, a_len * sizeof(T));
    gpu.memcpy_h2d(dx, hx, x_len * sizeof(T));
    gpu.memcpy_h2d(dy, hy, y_len * sizeof(T));
    gpu.gemv<T>(m, n, T(1), da, std::max(1, m), dx, beta, dy);
    gpu.synchronize();
    gpu.memcpy_d2h(hy, dy, y_len * sizeof(T));

    result.cpu_checksum = checksum(y_cpu.data(), y_len);
    result.gpu_checksum = checksum(hy.as<T>(), y_len);
  }

  const double denom =
      std::max({std::fabs(result.cpu_checksum), std::fabs(result.gpu_checksum),
                1e-30});
  result.relative_error =
      std::fabs(result.cpu_checksum - result.gpu_checksum) / denom;
  result.passed = result.relative_error <= kChecksumTolerance;
  result.detail = util::strfmt("cpu=%.9g gpu=%.9g rel=%.3g",
                               result.cpu_checksum, result.gpu_checksum,
                               result.relative_error);
  return result;
}

}  // namespace

const char* to_string(CompareMode mode) {
  switch (mode) {
    case CompareMode::Bitwise:
      return "bitwise";
    case CompareMode::Ulp:
      return "ulp";
    case CompareMode::RelFrobenius:
      return "rel-frobenius";
  }
  return "?";
}

namespace detail {

std::string format_compare_detail(const CompareSpec& spec,
                                  const CompareResult& r) {
  if (r.mismatches == 0) {
    return util::strfmt("%s: %zu elements bit-identical",
                        to_string(spec.mode), r.count);
  }
  return util::strfmt(
      "%s %s: %zu/%zu elements differ, first at [%td], max %llu ulps, "
      "rel-frobenius %.3g",
      to_string(spec.mode), r.passed ? "pass" : "FAIL", r.mismatches,
      r.count, r.first_index,
      static_cast<unsigned long long>(r.max_ulps), r.rel_frobenius);
}

}  // namespace detail

ValidationResult validate_problem(const Problem& problem,
                                  const blas::CpuBlasLibrary& cpu,
                                  sim::SimGpu& gpu) {
  switch (problem.precision) {
    case model::Precision::F32:
      return validate_impl<float>(problem, cpu, gpu);
    case model::Precision::F64:
      return validate_impl<double>(problem, cpu, gpu);
    default: {
      ValidationResult r;
      r.detail = "unsupported precision for validation";
      return r;
    }
  }
}

}  // namespace blob::core
