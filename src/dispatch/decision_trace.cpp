#include "dispatch/decision_trace.hpp"

#include "util/json.hpp"

namespace blob::dispatch {

void DispatchCounters::add_seconds(std::atomic<double>& target, double s) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + s,
                                       std::memory_order_relaxed)) {
  }
}

void DispatchCounters::count_reason(Reason reason) {
  switch (reason) {
    case Reason::ColdStart:
      cold_starts.fetch_add(1, std::memory_order_relaxed);
      break;
    case Reason::Explore:
      explores.fetch_add(1, std::memory_order_relaxed);
      break;
    case Reason::Exploit:
      exploits.fetch_add(1, std::memory_order_relaxed);
      break;
    case Reason::HysteresisHold:
      hysteresis_holds.fetch_add(1, std::memory_order_relaxed);
      break;
    case Reason::Forced:
      forced_cpu.fetch_add(1, std::memory_order_relaxed);
      break;
    case Reason::Coalesced:
      // counted via batched_routed
      break;
  }
}

DispatchStats DispatchCounters::snapshot() const {
  DispatchStats s;
  s.calls = calls.load(std::memory_order_relaxed);
  s.gemm_calls = gemm_calls.load(std::memory_order_relaxed);
  s.gemv_calls = gemv_calls.load(std::memory_order_relaxed);
  s.cpu_routed = cpu_routed.load(std::memory_order_relaxed);
  s.gpu_routed = gpu_routed.load(std::memory_order_relaxed);
  s.emulated_routed = emulated_routed.load(std::memory_order_relaxed);
  s.batched_routed = batched_routed.load(std::memory_order_relaxed);
  s.coalesced_batches = coalesced_batches.load(std::memory_order_relaxed);
  s.cold_starts = cold_starts.load(std::memory_order_relaxed);
  s.explores = explores.load(std::memory_order_relaxed);
  s.exploits = exploits.load(std::memory_order_relaxed);
  s.hysteresis_holds = hysteresis_holds.load(std::memory_order_relaxed);
  s.forced_cpu = forced_cpu.load(std::memory_order_relaxed);
  s.route_switches = route_switches.load(std::memory_order_relaxed);
  s.gpu_ops_enqueued = gpu_ops_enqueued.load(std::memory_order_relaxed);
  s.overlapped_gpu_calls =
      overlapped_gpu_calls.load(std::memory_order_relaxed);
  s.autotune_runs = autotune_runs.load(std::memory_order_relaxed);
  s.calibration_loads = calibration_loads.load(std::memory_order_relaxed);
  s.residency_hits = residency_hits.load(std::memory_order_relaxed);
  s.residency_misses = residency_misses.load(std::memory_order_relaxed);
  s.residency_invalidations =
      residency_invalidations.load(std::memory_order_relaxed);
  s.residency_swaps_mirrored =
      residency_swaps_mirrored.load(std::memory_order_relaxed);
  s.cpu_seconds = cpu_seconds.load(std::memory_order_relaxed);
  s.gpu_seconds = gpu_seconds.load(std::memory_order_relaxed);
  s.h2d_bytes_moved = h2d_bytes_moved.load(std::memory_order_relaxed);
  s.h2d_bytes_skipped = h2d_bytes_skipped.load(std::memory_order_relaxed);
  return s;
}

DecisionTrace::DecisionTrace(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void DecisionTrace::record(const TraceRecord& r) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(r);
  } else {
    ring_[total_ % capacity_] = r;
  }
  ++total_;
}

std::uint64_t DecisionTrace::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

std::vector<TraceRecord> DecisionTrace::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (total_ <= capacity_) return ring_;
  // The ring wrapped: records [total_ % capacity_, end) are the oldest.
  std::vector<TraceRecord> out;
  out.reserve(capacity_);
  const std::size_t head = total_ % capacity_;
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<std::ptrdiff_t>(head));
  return out;
}

void DecisionTrace::dump_json(std::ostream& out) const {
  const std::vector<TraceRecord> records = snapshot();
  util::JsonWriter json(out, /*pretty=*/false);
  json.begin_array();
  for (const TraceRecord& r : records) {
    json.begin_object();
    json.kv("seq", static_cast<std::int64_t>(r.seq));
    json.kv("device", r.device);
    json.kv("op", core::to_string(r.op));
    json.kv("precision", model::to_string(r.precision));
    json.kv("mode", core::to_string(r.mode));
    json.kv("bucket", r.bucket);
    json.kv("ta", blas::to_string(r.trans_a));
    json.kv("tb", blas::to_string(r.trans_b));
    json.kv("m", r.m).kv("n", r.n).kv("k", r.k);
    json.kv("route", to_string(r.route));
    json.kv("reason", to_string(r.reason));
    json.kv("cpu_est_s", r.cpu_est_s);
    json.kv("gpu_est_s", r.gpu_est_s);
    // Budget/emulation keys appear only on non-exact traffic, keeping
    // exact-budget trace dumps byte-identical to pre-emulation builds.
    if (!r.budget.is_exact()) {
      json.kv("budget", core::to_string(r.budget.kind));
      if (r.budget.kind == core::ErrorBudgetKind::UlpBounded) {
        json.kv("budget_ulps", static_cast<std::int64_t>(r.budget.ulps));
      }
      json.kv("emu_est_s", r.emu_est_s);
      if (r.slices > 0) json.kv("slices", r.slices);
    }
    json.kv("cost_s", r.cost_s);
    json.kv("observed_s", r.observed_s);
    json.kv("batch", r.batch);
    json.kv("residency", to_string(r.residency));
    json.kv("h2d_moved_bytes", r.h2d_moved_bytes);
    json.kv("h2d_skipped_bytes", r.h2d_skipped_bytes);
    json.kv("span_id", static_cast<std::int64_t>(r.span_id));
    json.end_object();
  }
  json.end_array();
  out << "\n";
}

void write_stats_fields(util::JsonWriter& json, const DispatchStats& stats) {
  json.kv("calls", static_cast<std::int64_t>(stats.calls));
  json.kv("gemm_calls", static_cast<std::int64_t>(stats.gemm_calls));
  json.kv("gemv_calls", static_cast<std::int64_t>(stats.gemv_calls));
  json.kv("cpu_routed", static_cast<std::int64_t>(stats.cpu_routed));
  json.kv("gpu_routed", static_cast<std::int64_t>(stats.gpu_routed));
  json.kv("emulated_routed",
          static_cast<std::int64_t>(stats.emulated_routed));
  json.kv("batched_routed",
          static_cast<std::int64_t>(stats.batched_routed));
  json.kv("coalesced_batches",
          static_cast<std::int64_t>(stats.coalesced_batches));
  json.kv("cold_starts", static_cast<std::int64_t>(stats.cold_starts));
  json.kv("explores", static_cast<std::int64_t>(stats.explores));
  json.kv("exploits", static_cast<std::int64_t>(stats.exploits));
  json.kv("hysteresis_holds",
          static_cast<std::int64_t>(stats.hysteresis_holds));
  json.kv("forced_cpu", static_cast<std::int64_t>(stats.forced_cpu));
  json.kv("route_switches",
          static_cast<std::int64_t>(stats.route_switches));
  json.kv("gpu_ops_enqueued",
          static_cast<std::int64_t>(stats.gpu_ops_enqueued));
  json.kv("overlapped_gpu_calls",
          static_cast<std::int64_t>(stats.overlapped_gpu_calls));
  json.kv("autotune_runs", static_cast<std::int64_t>(stats.autotune_runs));
  json.kv("calibration_loads",
          static_cast<std::int64_t>(stats.calibration_loads));
  json.kv("residency_hits",
          static_cast<std::int64_t>(stats.residency_hits));
  json.kv("residency_misses",
          static_cast<std::int64_t>(stats.residency_misses));
  json.kv("residency_invalidations",
          static_cast<std::int64_t>(stats.residency_invalidations));
  json.kv("residency_swaps_mirrored",
          static_cast<std::int64_t>(stats.residency_swaps_mirrored));
  json.kv("cpu_seconds", stats.cpu_seconds);
  json.kv("gpu_seconds", stats.gpu_seconds);
  json.kv("h2d_bytes_moved", stats.h2d_bytes_moved);
  json.kv("h2d_bytes_skipped", stats.h2d_bytes_skipped);
}

void write_stats_json(std::ostream& out, const DispatchStats& stats) {
  util::JsonWriter json(out, /*pretty=*/true);
  json.begin_object();
  write_stats_fields(json, stats);
  json.end_object();
  out << "\n";
}

}  // namespace blob::dispatch
