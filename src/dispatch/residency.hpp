#pragma once
// Data-residency tracking at the cblas seam.
//
// The paper's Transfer-Once numbers (§III-D) assume the programmer knows
// operands already live on the device; the TACC auto-offload line
// (arXiv:2501.00279, arXiv:2404.13195) derives that knowledge at runtime
// by intercepting BLAS calls and tracking which host regions have a
// device copy. ResidencyTracker is that piece: a pointer-interval map
// over host operand regions recording the per-device copy state of each
// byte range. The dispatcher populates it when it copies an operand to
// the simulated GPU and invalidates it when a later call writes the
// region, so repeated calls on the same matrices stop being priced (and
// charged) for transfers that a caching runtime would never re-issue.
//
// States (per interval; absent = host-only, no device copy):
//  * resident-clean — the device copy matches the host bytes. Reads of a
//    fully-clean region skip the H2D DMA entirely.
//  * resident-dirty — the device holds a NEWER result than the host
//    (a GPU output between kernel enqueue and download/unpack). Dirty
//    regions never satisfy a clean lookup.
//
// The tracker sees only writes performed through the dispatcher (kernel
// outputs); host stores that bypass the BLAS seam are invisible, exactly
// as in the interception-based systems this models. Correctness never
// depends on the tracker: the simulated device always computes from the
// current host bytes, so a stale entry can only mis-price a call, never
// corrupt a result.
//
// Regions describe the exact stored footprint of an operand. A tightly
// packed operand is one contiguous chunk; an ld-padded matrix is a
// strided sequence of per-column chunks so the inter-column padding (and
// any neighbouring submatrix sharing the same leading dimension) is
// never claimed or invalidated by mistake. Blocked factorizations rely
// on this: panel writes must not knock out the residency of the
// byte-disjoint trailing submatrix they interleave with.

#include <cstddef>
#include <cstdint>
#include <map>

namespace blob::dispatch {

/// How the dispatcher derives and exploits residency.
enum class ResidencyPolicy {
  Off,         ///< price every call as if nothing were resident (legacy)
  Track,       ///< explicit-DMA tracking: clean operands skip the upload
  FirstTouch,  ///< USM placement: operands fault-migrate on first kernel
               ///< touch (simgpu page-migration model); clean operands
               ///< are already device-resident and migrate nothing
};

const char* to_string(ResidencyPolicy policy);

/// The stored footprint of one operand: `count` chunks of `bytes` bytes
/// each, the chunk starts `stride` bytes apart. A contiguous range is
/// the degenerate single-chunk case (stride 0, count 1), so the common
/// aggregate init `Region{ptr, bytes}` keeps its old meaning.
struct Region {
  const void* ptr = nullptr;
  std::size_t bytes = 0;   ///< bytes per chunk
  std::size_t stride = 0;  ///< byte distance between chunk starts
  std::size_t count = 1;   ///< number of chunks

  [[nodiscard]] bool valid() const {
    return ptr != nullptr && bytes > 0 && count > 0;
  }
  [[nodiscard]] std::size_t total_bytes() const {
    return valid() ? bytes * count : 0;
  }
};

/// Stored footprint of an ld-strided column-major matrix. Tightly packed
/// (ld == rows) collapses to a single chunk; a padded matrix is one
/// chunk per column so the padding bytes between columns stay untracked.
Region matrix_region(const void* ptr, std::size_t elem_bytes,
                     std::int64_t ld, std::int64_t rows, std::int64_t cols);

/// Stored footprint of a strided vector.
Region vector_region(const void* ptr, std::size_t elem_bytes,
                     std::int64_t len, std::int64_t inc);

/// The operand regions of one call: A, B (GEMM) or x (GEMV), C or y.
struct OperandRegions {
  Region a;
  Region b;
  Region c;
};

/// Interval map host region -> device copy state. Not thread-safe; the
/// dispatcher mutates it under its own mutex.
class ResidencyTracker {
 public:
  /// A host region was copied to (or fault-migrated onto) the device:
  /// mark [ptr, ptr+bytes) resident-clean, splitting/overwriting any
  /// overlapping intervals.
  void note_upload(const Region& region);

  /// A device kernel is about to overwrite the device copy of `region`
  /// (a C/y output between enqueue and download): resident-dirty.
  void note_device_write(const Region& region);

  /// The device result for `region` has been downloaded and unpacked
  /// into the host buffer — host and device copies agree again.
  void note_device_result(const Region& region);

  /// The host wrote `region` (a CPU-routed output, or any seam-visible
  /// store): every interval overlapping one of its chunks loses the
  /// overlapping part (partial overlaps are split; the non-overlapping
  /// remainder keeps its state). Returns the number of intervals
  /// invalidated, summed over chunks.
  std::size_t note_host_write(const Region& region);

  /// True when EVERY byte of EVERY chunk of `region` is covered by
  /// resident-clean intervals. Partial coverage (or any dirty byte) is a
  /// miss — the dispatcher re-uploads whole operands, never slices.
  [[nodiscard]] bool resident_clean(const Region& region) const;

  /// Number of distinct intervals currently tracked (tests).
  [[nodiscard]] std::size_t interval_count() const { return map_.size(); }

  void clear() { map_.clear(); }

 private:
  enum class CopyState { ResidentClean, ResidentDirty };

  struct Node {
    std::uintptr_t end = 0;  ///< one past the last byte
    CopyState state = CopyState::ResidentClean;
  };

  void mark(std::uintptr_t begin, std::uintptr_t end, CopyState state);
  /// Remove [begin, end) from the map, splitting boundary intervals.
  /// Returns how many intervals overlapped.
  std::size_t erase_range(std::uintptr_t begin, std::uintptr_t end);

  std::map<std::uintptr_t, Node> map_;  ///< key = interval begin
};

}  // namespace blob::dispatch
