#pragma once
// Admission queue: the dispatcher's concurrent front door.
//
// Many client threads submit BLAS requests and receive futures; one
// worker thread drains the queue in cycles (with a one-yield second
// sweep per cycle so a producer burst caught mid-flight lands in one
// cycle instead of dribbling through many). The channel itself is a
// one-shard dispatch::ShardedQueue — the same template the serve layer
// fans out across N device shards. Each cycle the worker
//  1. coalesces same-shape small GEMMs into a single blas::gemm_batched
//     submission (the paper's §V future-work observation that batching
//     "can greatly improve GEMM performance for small problem sizes"),
//     and same-shape small GEMVs into one blas::gemv_batched submission
//     (one fork/join amortised across the group — the biggest relative
//     win, since a small GEMV is all overhead),
//  2. plans the remaining requests through the decision table,
//  3. enqueues every GPU-routed request on the simulated device WITHOUT
//     synchronising, then runs all CPU-routed work while those virtual
//     transfers/kernels are in flight, and only then joins the GPU jobs —
//     transfer/compute overlap in the cudaMemcpyAsync style.
//
// Results are published through the futures strictly after the output
// buffer has been written (for GPU routes, after the staged download is
// unpacked), so a client that waits on its future always reads a
// complete result.

#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <thread>

#include "dispatch/dispatcher.hpp"
#include "dispatch/sharded_queue.hpp"

namespace blob::dispatch {

struct AdmissionQueueConfig {
  /// Requests drained per worker cycle (the coalescing window).
  std::size_t max_drain = 32;
  /// Same-shape CPU-eligible GEMM/GEMV groups of at least this size are
  /// merged into one batched submission.
  int coalesce_min = 4;
  /// Only calls with every dimension at or below this coalesce — large
  /// problems are better served by the per-call routing decision.
  int coalesce_max_dim = 128;
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(Dispatcher& dispatcher,
                          AdmissionQueueConfig config = {});
  ~AdmissionQueue();

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  // -- asynchronous submission (thread-safe) -------------------------------
  // The caller keeps all operand buffers alive and un-aliased until the
  // returned future resolves.
  template <typename T>
  std::future<void> submit_gemm(blas::Transpose ta, blas::Transpose tb,
                                int m, int n, int k, T alpha, const T* a,
                                int lda, const T* b, int ldb, T beta, T* c,
                                int ldc);
  template <typename T>
  std::future<void> submit_gemv(blas::Transpose ta, int m, int n, T alpha,
                                const T* a, int lda, const T* x, int incx,
                                T beta, T* y, int incy);

  /// Block until every request submitted so far has completed.
  void flush();

  /// Drain outstanding work and join the worker (idempotent; the
  /// destructor calls it).
  void stop();

  [[nodiscard]] std::uint64_t submitted() const;
  [[nodiscard]] std::uint64_t completed() const;

 private:
  enum class Kind { GemmF32, GemmF64, GemvF32, GemvF64 };

  struct Request {
    Kind kind = Kind::GemmF32;
    blas::Transpose ta = blas::Transpose::No;
    blas::Transpose tb = blas::Transpose::No;
    int m = 0, n = 0, k = 0;
    int lda = 0, ldb = 0, ldc = 0;
    int incx = 1, incy = 1;
    // Scalars held as double; float round-trips losslessly.
    double alpha = 1.0, beta = 0.0;
    const void* a = nullptr;
    const void* b = nullptr;  ///< B for GEMM, x for GEMV
    void* c = nullptr;        ///< C for GEMM, y for GEMV
    /// Error budget captured from the PRODUCER's thread-local at submit
    /// time — the worker thread that lowers the request has its own
    /// (always-exact) slot, so reading it at drain time would silently
    /// erase every relaxed contract.
    core::ErrorBudget budget = core::ErrorBudget::exact();
    std::promise<void> done;
    /// obs::now_ns() at push() when tracing is on (0 otherwise); the
    /// drain cycle turns it into the admission-wait histogram.
    std::int64_t submit_ns = 0;
  };

  std::future<void> push(Request request);
  void worker_loop();
  void drain_cycle(std::vector<Request>& batch);

  /// Lower a queued request to the canonical operation descriptor the
  /// dispatcher speaks (validates dims; stamps the transfer mode).
  [[nodiscard]] core::OpDesc make_desc(const Request& r) const;

  /// True when the request qualifies for CPU-batched coalescing.
  /// Transposed GEMMs/GEMVs coalesce like NN ones — the batched
  /// primitives take the flags — so layout never disqualifies a group,
  /// only size does. Strided GEMV vectors coalesce too (gemv_batched
  /// stages them); unequal increments land in different groups.
  [[nodiscard]] bool coalescible(const Request& r) const;

  Dispatcher& dispatcher_;
  AdmissionQueueConfig config_;

  /// The MPMC channel (one shard here — the dispatcher has one device;
  /// serve::DeviceFleet instantiates the same template with N shards).
  ShardedQueue<Request> queue_{1};
  mutable std::mutex mutex_;         ///< guards the counters below
  std::condition_variable idle_cv_;  ///< flush() wake-up
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::thread worker_;
};

}  // namespace blob::dispatch
