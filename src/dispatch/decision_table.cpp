#include "dispatch/decision_table.hpp"

#include <cmath>
#include <stdexcept>

#include "core/flops.hpp"

namespace blob::dispatch {

const char* to_string(Route route) {
  switch (route) {
    case Route::Cpu:
      return "cpu";
    case Route::Gpu:
      return "gpu";
    case Route::CpuBatched:
      return "cpu-batched";
    case Route::GpuEmulated:
      return "gpu-emulated";
  }
  return "?";
}

const char* to_string(Reason reason) {
  switch (reason) {
    case Reason::ColdStart:
      return "cold-start";
    case Reason::Exploit:
      return "exploit";
    case Reason::Explore:
      return "explore";
    case Reason::HysteresisHold:
      return "hysteresis-hold";
    case Reason::Coalesced:
      return "coalesced";
    case Reason::Forced:
      return "forced";
  }
  return "?";
}

const char* to_string(ResidencyClass cls) {
  switch (cls) {
    case ResidencyClass::Cold:
      return "cold";
    case ResidencyClass::WarmPartial:
      return "warm-partial";
    case ResidencyClass::Warm:
      return "warm";
  }
  return "?";
}

int size_bucket(const core::OpDesc& desc) {
  core::OpDesc item = desc;
  item.batch = 1;  // bucket the per-call shape, not the coalescing
  const double flops = core::problem_flops(item);
  return static_cast<int>(std::floor(std::log2(std::max(flops, 1.0))));
}

BucketKey bucket_key(const core::OpDesc& desc) {
  BucketKey key{desc.op,          desc.precision, desc.mode,
                size_bucket(desc), desc.trans_a,  desc.trans_b};
  key.budget_kind = desc.budget.kind;
  key.budget_ulps = desc.budget.ulps;
  return key;
}

DecisionTable::DecisionTable(DecisionTableConfig config)
    : config_(config), rng_(config.rng_seed) {}

bool DecisionTable::contains(const BucketKey& key) const {
  return entries_.contains(key);
}

const BucketState* DecisionTable::find(const BucketKey& key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

void DecisionTable::seed(const BucketKey& key, double cpu_pred_s,
                         double gpu_pred_s,
                         std::optional<double> emu_pred_s) {
  if (entries_.contains(key)) return;
  BucketState state;
  state.cpu = {cpu_pred_s, 1};
  state.gpu = {gpu_pred_s, 1};
  state.incumbent = gpu_pred_s < cpu_pred_s ? Route::Gpu : Route::Cpu;
  if (emu_pred_s.has_value()) {
    state.emu = {*emu_pred_s, 1};
    const double best =
        state.incumbent == Route::Gpu ? gpu_pred_s : cpu_pred_s;
    if (*emu_pred_s < best) state.incumbent = Route::GpuEmulated;
  }
  entries_.emplace(key, state);
}

void DecisionTable::restore(const BucketKey& key, const BucketState& state) {
  BucketState restored = state;
  restored.converged = state.visits >= config_.converged_visits;
  entries_.insert_or_assign(key, restored);
}

Decision DecisionTable::choose(const BucketKey& key, bool gpu_available,
                               std::optional<double> gpu_cost_override,
                               bool emu_available,
                               std::optional<double> emu_cost_override) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    throw std::logic_error("DecisionTable::choose: bucket not seeded");
  }
  BucketState& s = it->second;
  // The override replaces the GPU arm in every comparison below (the
  // stored EWMA is untouched); the decision reports the cost it actually
  // weighed so traces show the amortised price, not the raw estimate.
  const double gpu_eff = gpu_cost_override.value_or(s.gpu.ewma_s);
  Decision d;
  d.cpu_est_s = s.cpu.ewma_s;
  d.gpu_est_s = gpu_eff;

  // The emulated arm joins the comparison only when the caller offers it
  // AND the bucket was seeded with an emulated estimate; otherwise every
  // branch below is the original two-arm logic, untouched — including
  // the single exploration draw — so exact-budget traffic consumes the
  // RNG stream exactly as before this arm existed.
  const bool emu_on = emu_available && gpu_available && s.emu.samples > 0;
  const double emu_eff = emu_cost_override.value_or(s.emu.ewma_s);
  if (emu_on) d.emu_est_s = emu_eff;

  if (!gpu_available) {
    ++s.visits;
    d.route = Route::Cpu;
    d.reason = Reason::Forced;
    return d;
  }

  const bool first_visit = s.visits == 0 && !s.converged;
  ++s.visits;
  if (first_visit) {
    d.route = s.incumbent;
    d.reason = Reason::ColdStart;
    return d;
  }

  if (emu_on) {
    // -- three-arm bucket -------------------------------------------------
    if (!s.converged && s.visits >= config_.converged_visits &&
        s.cpu.samples > config_.min_samples_to_switch &&
        s.gpu.samples > config_.min_samples_to_switch &&
        s.emu.samples > config_.min_samples_to_switch) {
      s.converged = true;
    }

    struct Arm {
      Route route;
      double eff;
      const RouteEstimate* est;
      bool overridden;
    };
    const Arm arms[3] = {
        {Route::Cpu, s.cpu.ewma_s, &s.cpu, false},
        {Route::Gpu, gpu_eff, &s.gpu, gpu_cost_override.has_value()},
        {Route::GpuEmulated, emu_eff, &s.emu,
         emu_cost_override.has_value()},
    };
    const Arm* inc = &arms[0];
    for (const Arm& a : arms) {
      if (a.route == s.incumbent) inc = &a;
    }

    if (!s.converged) {
      const double eps =
          config_.epsilon * config_.epsilon_decay_visits /
          (config_.epsilon_decay_visits + static_cast<double>(s.visits));
      if (rng_.next_double() < eps) {
        // Probe one of the two non-incumbent arms uniformly.
        const Arm* others[2] = {nullptr, nullptr};
        int count = 0;
        for (const Arm& a : arms) {
          if (a.route != s.incumbent) others[count++] = &a;
        }
        d.route = (rng_.next_double() < 0.5 ? others[0] : others[1])->route;
        d.reason = Reason::Explore;
        return d;
      }
    }

    // Exploit with hysteresis: challengers in ascending cost order; the
    // first one that beats the incumbent by the margin on enough samples
    // takes the route. A cheaper-but-unqualified challenger holds.
    const Arm* challengers[2] = {nullptr, nullptr};
    int count = 0;
    for (const Arm& a : arms) {
      if (a.route != s.incumbent) challengers[count++] = &a;
    }
    if (challengers[0]->eff > challengers[1]->eff) {
      std::swap(challengers[0], challengers[1]);
    }
    bool any_cheaper = false;
    for (const Arm* cha : challengers) {
      if (cha->eff >= inc->eff) continue;
      any_cheaper = true;
      const bool clears_margin =
          cha->eff < inc->eff * (1.0 - config_.hysteresis_margin);
      const bool enough_samples =
          cha->est->samples >= config_.min_samples_to_switch ||
          (cha->route != Route::Cpu && cha->overridden);
      if (clears_margin && enough_samples) {
        s.incumbent = cha->route;
        ++s.switches;
        d.route = cha->route;
        d.reason = Reason::Exploit;
        return d;
      }
    }
    d.route = s.incumbent;
    d.reason = any_cheaper ? Reason::HysteresisHold : Reason::Exploit;
    return d;
  }

  // A bucket self-converges once it has absorbed enough traffic and the
  // challenger has been probed often enough to trust both estimates;
  // from then on it routes purely on the EWMAs (buckets restored from a
  // calibration store arrive converged).
  if (!s.converged && s.visits >= config_.converged_visits &&
      s.cpu.samples > config_.min_samples_to_switch &&
      s.gpu.samples > config_.min_samples_to_switch) {
    s.converged = true;
  }

  // Epsilon-greedy: probe the non-incumbent with a probability that
  // decays as the bucket accumulates visits. Converged buckets never
  // explore.
  if (!s.converged) {
    const double eps =
        config_.epsilon * config_.epsilon_decay_visits /
        (config_.epsilon_decay_visits + static_cast<double>(s.visits));
    if (rng_.next_double() < eps) {
      d.route = s.incumbent == Route::Cpu ? Route::Gpu : Route::Cpu;
      d.reason = Reason::Explore;
      return d;
    }
  }

  // Exploit with hysteresis: the challenger must beat the incumbent by
  // the margin, on enough samples, before the route flips.
  const Route challenger =
      s.incumbent == Route::Cpu ? Route::Gpu : Route::Cpu;
  const double inc_cost = s.incumbent == Route::Cpu ? s.cpu.ewma_s : gpu_eff;
  const double cha_cost = s.incumbent == Route::Cpu ? gpu_eff : s.cpu.ewma_s;
  const RouteEstimate& cha_est =
      s.incumbent == Route::Cpu ? s.gpu : s.cpu;
  const bool challenger_cheaper = cha_cost < inc_cost;
  if (challenger_cheaper) {
    const bool clears_margin =
        cha_cost < inc_cost * (1.0 - config_.hysteresis_margin);
    // An overridden GPU cost is a modelled prior, not a noisy probe — it
    // does not need the min-samples protection against lucky draws.
    const bool enough_samples =
        cha_est.samples >= config_.min_samples_to_switch ||
        (challenger == Route::Gpu && gpu_cost_override.has_value());
    if (clears_margin && enough_samples) {
      s.incumbent = challenger;
      ++s.switches;
      d.route = challenger;
      d.reason = Reason::Exploit;
      return d;
    }
    d.route = s.incumbent;
    d.reason = Reason::HysteresisHold;
    return d;
  }
  d.route = s.incumbent;
  d.reason = Reason::Exploit;
  return d;
}

void DecisionTable::observe(const BucketKey& key, Route route,
                            double measured_s) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    throw std::logic_error("DecisionTable::observe: bucket not seeded");
  }
  RouteEstimate& est = route == Route::Gpu ? it->second.gpu
                       : route == Route::GpuEmulated
                           ? it->second.emu
                           : it->second.cpu;
  if (est.samples == 0) {
    est.ewma_s = measured_s;
  } else {
    est.ewma_s = (1.0 - config_.ewma_alpha) * est.ewma_s +
                 config_.ewma_alpha * measured_s;
  }
  ++est.samples;
}

}  // namespace blob::dispatch
