#include "dispatch/calibration_store.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <string_view>

#include "util/json.hpp"

namespace blob::dispatch {

namespace {

core::KernelOp parse_op(const std::string& s) {
  if (s == "gemm") return core::KernelOp::Gemm;
  if (s == "gemv") return core::KernelOp::Gemv;
  throw util::JsonError("calibration: unknown op '" + s + "'");
}

model::Precision parse_precision(const std::string& s) {
  if (s == "f32") return model::Precision::F32;
  if (s == "f64") return model::Precision::F64;
  if (s == "f16") return model::Precision::F16;
  if (s == "bf16") return model::Precision::BF16;
  throw util::JsonError("calibration: unknown precision '" + s + "'");
}

core::TransferMode parse_mode(const std::string& s) {
  if (s == "once") return core::TransferMode::Once;
  if (s == "always") return core::TransferMode::Always;
  if (s == "usm") return core::TransferMode::Usm;
  throw util::JsonError("calibration: unknown transfer mode '" + s + "'");
}

blas::Transpose parse_transpose(const std::string& s) {
  if (s == "N") return blas::Transpose::No;
  if (s == "T") return blas::Transpose::Yes;
  throw util::JsonError("calibration: unknown transpose '" + s + "'");
}

Route parse_route(const std::string& s) {
  if (s == "cpu") return Route::Cpu;
  if (s == "gpu") return Route::Gpu;
  if (s == "cpu-batched") return Route::CpuBatched;
  if (s == "gpu-emulated") return Route::GpuEmulated;
  throw util::JsonError("calibration: unknown route '" + s + "'");
}

core::ErrorBudgetKind parse_budget_kind(const std::string& s) {
  if (s == "exact") return core::ErrorBudgetKind::Exact;
  if (s == "ulp") return core::ErrorBudgetKind::UlpBounded;
  if (s == "relaxed") return core::ErrorBudgetKind::Relaxed;
  throw util::JsonError("calibration: unknown budget kind '" + s + "'");
}

ResidencyClass parse_residency(const std::string& s) {
  if (s == "cold") return ResidencyClass::Cold;
  if (s == "warm-partial") return ResidencyClass::WarmPartial;
  if (s == "warm") return ResidencyClass::Warm;
  throw util::JsonError("calibration: unknown residency class '" + s + "'");
}

void write_estimate(util::JsonWriter& json, std::string_view name,
                    const RouteEstimate& est) {
  json.key(name).begin_object();
  json.kv("ewma_s", est.ewma_s);
  json.kv("samples", static_cast<std::int64_t>(est.samples));
  json.end_object();
}

RouteEstimate read_estimate(const util::JsonValue& v) {
  RouteEstimate est;
  est.ewma_s = v.at("ewma_s").as_double();
  est.samples = static_cast<std::uint64_t>(v.at("samples").as_int());
  return est;
}

void write_blocking(util::JsonWriter& json, std::string_view name,
                    const blas::GemmBlocking& b) {
  json.key(name).begin_object();
  json.kv("mc", b.mc).kv("kc", b.kc).kv("nc", b.nc);
  json.kv("jr_panels_per_tile", b.partition.jr_panels_per_tile);
  json.kv("min_parallel_tiles", b.partition.min_parallel_tiles);
  json.end_object();
}

blas::GemmBlocking read_blocking(const util::JsonValue& v) {
  blas::GemmBlocking b;
  b.mc = static_cast<int>(v.at("mc").as_int());
  b.kc = static_cast<int>(v.at("kc").as_int());
  b.nc = static_cast<int>(v.at("nc").as_int());
  b.partition.jr_panels_per_tile =
      static_cast<int>(v.at("jr_panels_per_tile").as_int());
  b.partition.min_parallel_tiles =
      static_cast<int>(v.at("min_parallel_tiles").as_int());
  return b;
}

}  // namespace

const char* to_string(LoadStatus status) {
  switch (status) {
    case LoadStatus::Ok:
      return "ok";
    case LoadStatus::IoError:
      return "io-error";
    case LoadStatus::BadJson:
      return "bad-json";
    case LoadStatus::VersionMismatch:
      return "version-mismatch";
    case LoadStatus::PersonalityMismatch:
      return "personality-mismatch";
    case LoadStatus::ProfileMismatch:
      return "profile-mismatch";
    case LoadStatus::NamespaceMismatch:
      return "namespace-mismatch";
  }
  return "?";
}

void save_calibration(std::ostream& out, const CalibrationData& data) {
  util::JsonWriter json(out, /*pretty=*/true);
  json.begin_object();
  json.kv("version", kCalibrationVersion);
  json.kv("personality", data.personality);
  json.kv("profile", data.profile);
  // Additive to v3: omitted when empty so shared stores round-trip
  // byte-identically to files written before namespaces existed.
  if (!data.nspace.empty()) json.kv("namespace", data.nspace);
  if (data.blocking_f32) write_blocking(json, "blocking_f32", *data.blocking_f32);
  if (data.blocking_f64) write_blocking(json, "blocking_f64", *data.blocking_f64);
  json.key("entries").begin_array();
  for (const auto& [key, state] : data.entries) {
    json.begin_object();
    json.kv("op", core::to_string(key.op));
    json.kv("precision", model::to_string(key.precision));
    json.kv("mode", core::to_string(key.mode));
    json.kv("bucket", key.bucket);
    json.kv("ta", blas::to_string(key.trans_a));
    json.kv("tb", blas::to_string(key.trans_b));
    json.kv("residency", to_string(key.residency));
    // v4 additions, omitted for exact-budget entries (the overwhelming
    // default) so legacy tables serialise with v3-shaped entries.
    if (key.budget_kind != core::ErrorBudgetKind::Exact) {
      json.kv("budget", core::to_string(key.budget_kind));
      if (key.budget_kind == core::ErrorBudgetKind::UlpBounded) {
        json.kv("budget_ulps", static_cast<std::int64_t>(key.budget_ulps));
      }
    }
    write_estimate(json, "cpu", state.cpu);
    write_estimate(json, "gpu", state.gpu);
    if (state.emu.samples > 0) write_estimate(json, "emu", state.emu);
    json.kv("incumbent", to_string(state.incumbent));
    json.kv("visits", static_cast<std::int64_t>(state.visits));
    json.kv("switches", static_cast<std::int64_t>(state.switches));
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out << "\n";
}

bool save_calibration_file(const std::string& path,
                           const CalibrationData& data) {
  std::ofstream out(path);
  if (!out) return false;
  save_calibration(out, data);
  return static_cast<bool>(out);
}

LoadResult load_calibration(std::istream& in,
                            const std::string& expect_personality,
                            const std::string& expect_profile,
                            const std::string& expect_nspace) {
  LoadResult result;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    const util::JsonValue doc = util::json_parse(buffer.str());
    const auto version = doc.at("version").as_int();
    if (version < kCalibrationMinVersion ||
        version > kCalibrationVersion) {
      result.status = LoadStatus::VersionMismatch;
      return result;
    }
    CalibrationData data;
    data.personality = doc.at("personality").as_string();
    data.profile = doc.at("profile").as_string();
    if (!expect_personality.empty() &&
        data.personality != expect_personality) {
      result.status = LoadStatus::PersonalityMismatch;
      return result;
    }
    if (!expect_profile.empty() && data.profile != expect_profile) {
      result.status = LoadStatus::ProfileMismatch;
      return result;
    }
    if (const util::JsonValue* ns = doc.find("namespace")) {
      data.nspace = ns->as_string();
    }
    if (!expect_nspace.empty() && data.nspace != expect_nspace) {
      result.status = LoadStatus::NamespaceMismatch;
      return result;
    }
    if (const util::JsonValue* b = doc.find("blocking_f32")) {
      data.blocking_f32 = read_blocking(*b);
    }
    if (const util::JsonValue* b = doc.find("blocking_f64")) {
      data.blocking_f64 = read_blocking(*b);
    }
    for (const util::JsonValue& entry : doc.at("entries").as_array()) {
      BucketKey key;
      key.op = parse_op(entry.at("op").as_string());
      key.precision = parse_precision(entry.at("precision").as_string());
      key.mode = parse_mode(entry.at("mode").as_string());
      key.bucket = static_cast<int>(entry.at("bucket").as_int());
      key.trans_a = parse_transpose(entry.at("ta").as_string());
      key.trans_b = parse_transpose(entry.at("tb").as_string());
      // v2 stores predate residency classes: their timings were learned
      // with every call priced as a full transfer, which is exactly the
      // cold side of a v3 table (BucketKey defaults to Cold).
      if (const util::JsonValue* r = entry.find("residency")) {
        key.residency = parse_residency(r->as_string());
      }
      // v2/v3 stores predate error budgets: every entry loads as exact
      // (the BucketKey default), and the emulated arm stays zero-sample.
      if (const util::JsonValue* b = entry.find("budget")) {
        key.budget_kind = parse_budget_kind(b->as_string());
        if (const util::JsonValue* u = entry.find("budget_ulps")) {
          key.budget_ulps = static_cast<std::uint32_t>(u->as_int());
        }
      }
      BucketState state;
      state.cpu = read_estimate(entry.at("cpu"));
      state.gpu = read_estimate(entry.at("gpu"));
      if (const util::JsonValue* e = entry.find("emu")) {
        state.emu = read_estimate(*e);
      }
      state.incumbent = parse_route(entry.at("incumbent").as_string());
      state.visits = static_cast<std::uint64_t>(entry.at("visits").as_int());
      state.switches =
          static_cast<std::uint64_t>(entry.at("switches").as_int());
      data.entries.insert_or_assign(key, state);
    }
    result.data = std::move(data);
    result.status = LoadStatus::Ok;
    if (version < kCalibrationVersion) {
      result.warning = "calibration store is v" + std::to_string(version) +
                       " (current v" + std::to_string(kCalibrationVersion) +
                       "); absent key fields load as their defaults "
                       "(cold residency, exact budget)";
    }
  } catch (const util::JsonError&) {
    result.status = LoadStatus::BadJson;
  }
  return result;
}

LoadResult load_calibration_file(const std::string& path,
                                 const std::string& expect_personality,
                                 const std::string& expect_profile,
                                 const std::string& expect_nspace) {
  std::ifstream in(path);
  if (!in) {
    LoadResult result;
    result.status = LoadStatus::IoError;
    return result;
  }
  return load_calibration(in, expect_personality, expect_profile,
                          expect_nspace);
}

}  // namespace blob::dispatch
