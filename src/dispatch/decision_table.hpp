#pragma once
// Shape-bucketed CPU-vs-GPU decision table.
//
// The runtime analogue of the paper's offload threshold: instead of one
// crossover dimension per (kernel, precision, transfer type) computed
// offline, the table keeps per-bucket EWMA cost estimates for both
// backends, cold-started from OffloadAdvisor predictions and refined by
// measured executions. Buckets are log-scale in FLOPs, so one bucket
// spans roughly a 1.26x dimension range for square GEMM — fine enough to
// localise the crossover, coarse enough that every bucket keeps seeing
// traffic.
//
// Two policies keep live routing stable where the offline threshold
// detector needed its "momentary drops ... due to noise" tolerance
// (§III-D):
//  * epsilon-greedy exploration, decaying with bucket visits, keeps the
//    losing backend's estimate fresh so a real regime change is noticed;
//  * hysteresis: the incumbent route is only dethroned when the
//    challenger's estimate beats it by a margin, so decisions cannot flap
//    call-to-call near the crossover under timing noise.

#include <cstdint>
#include <map>
#include <optional>

#include "dispatch/types.hpp"
#include "util/rng.hpp"

namespace blob::dispatch {

/// Decision-table key: (op, precision, transfer mode, log-scale size
/// bucket, transposes, residency class). Transposed traffic learns its
/// own estimates — a TN GEMM does not cost what an NN GEMM of the same
/// FLOPs costs on either backend — and warm traffic learns separately
/// from cold: a GEMV whose A panel is device-resident pays none of the
/// H2D cost that dominates its cold sibling. Ordered so the calibration
/// store serialises deterministically.
struct BucketKey {
  core::KernelOp op = core::KernelOp::Gemm;
  model::Precision precision = model::Precision::F32;
  core::TransferMode mode = core::TransferMode::Once;
  int bucket = 0;
  blas::Transpose trans_a = blas::Transpose::No;
  blas::Transpose trans_b = blas::Transpose::No;
  ResidencyClass residency = ResidencyClass::Cold;
  /// Error-budget component of the key: exact and relaxed traffic of the
  /// same shape price completely differently (the relaxed bucket has an
  /// emulated arm), so they learn separate estimates. Defaults keep
  /// every existing key — and its calibration-store serialisation —
  /// identical for exact traffic.
  core::ErrorBudgetKind budget_kind = core::ErrorBudgetKind::Exact;
  std::uint32_t budget_ulps = 0;

  auto operator<=>(const BucketKey&) const = default;
};

/// log2-of-FLOPs bucket of one call (batch excluded — the bucket
/// describes the per-call shape, not the coalescing around it).
int size_bucket(const core::OpDesc& desc);

/// Key for one call descriptor.
BucketKey bucket_key(const core::OpDesc& desc);

/// EWMA cost estimate for one backend within one bucket.
struct RouteEstimate {
  double ewma_s = 0.0;          ///< estimated seconds per call
  std::uint64_t samples = 0;    ///< observations folded in (incl. seed)
};

/// Learned state of one bucket.
struct BucketState {
  RouteEstimate cpu;
  RouteEstimate gpu;
  /// Emulated-GPU arm. Zero-sample on every bucket whose budget is exact
  /// (the arm is never offered there); seeded alongside cpu/gpu when the
  /// dispatcher deems the bucket emulation-eligible.
  RouteEstimate emu;
  Route incumbent = Route::Cpu;
  std::uint64_t visits = 0;    ///< choose() calls against this bucket
  std::uint64_t switches = 0;  ///< incumbent changes since creation
  /// Exploration is disabled once set. Buckets converge live after
  /// enough visits with both arms sampled, and arrive converged when
  /// restored from a calibration store with enough visits — a warm
  /// restart serves immediately without re-probing the losing backend.
  bool converged = false;
};

struct DecisionTableConfig {
  double ewma_alpha = 0.25;     ///< weight of the newest observation
  double epsilon = 0.10;        ///< base exploration probability
  /// Effective epsilon = epsilon * decay / (decay + visits): early
  /// visits explore, converged buckets almost never do.
  double epsilon_decay_visits = 40.0;
  /// The challenger must be at least this fraction cheaper than the
  /// incumbent's estimate before the route switches.
  double hysteresis_margin = 0.15;
  /// The challenger additionally needs this many samples — a single
  /// lucky probe cannot steal the route.
  std::uint64_t min_samples_to_switch = 2;
  /// Buckets restored from a store with at least this many visits are
  /// marked converged (no exploration after a warm restart).
  std::uint64_t converged_visits = 16;
  std::uint64_t rng_seed = 0x0ff10ad;  ///< exploration draw stream
};

/// The routing decision for one call, with the estimates that drove it.
struct Decision {
  Route route = Route::Cpu;
  Reason reason = Reason::Exploit;
  double cpu_est_s = 0.0;
  double gpu_est_s = 0.0;
  /// Emulated-arm estimate weighed by the decision; 0 when the arm was
  /// not offered (exact budgets, GEMV, batched traffic).
  double emu_est_s = 0.0;
  /// Operand warmth the dispatcher derived before choosing (always Cold
  /// when the residency policy is off).
  ResidencyClass residency = ResidencyClass::Cold;
};

class DecisionTable {
 public:
  explicit DecisionTable(DecisionTableConfig config = {});

  [[nodiscard]] const DecisionTableConfig& config() const { return config_; }

  /// True when the bucket has been seeded or restored.
  [[nodiscard]] bool contains(const BucketKey& key) const;

  /// Cold-start a bucket from model predictions (no-op if it exists).
  /// The seed counts as one sample per backend; the incumbent starts on
  /// the predicted-cheapest route. `emu_pred_s` seeds the emulated arm
  /// on emulation-eligible buckets; without it the arm stays zero-sample
  /// and is never routed to.
  void seed(const BucketKey& key, double cpu_pred_s, double gpu_pred_s,
            std::optional<double> emu_pred_s = std::nullopt);

  /// Pick the route for a call in `key`'s bucket. The bucket must exist
  /// (seed() first); `visits` is incremented. `gpu_available` = false
  /// forces the CPU route without touching the incumbent (layouts the
  /// simulated GPU genuinely cannot take, e.g. strided GEMV vectors).
  ///
  /// `gpu_cost_override` substitutes the GPU-side estimate in the
  /// comparison (the EWMA is untouched). The dispatcher passes the
  /// horizon-amortised Transfer-Once cost for cold-class calls under a
  /// residency policy: a cold call is the down payment on a warm run,
  /// so judging it by its own measured cost alone would route every
  /// iterative workload to the CPU and residency would never warm. As a
  /// modelled prior (not a noisy probe) the override is exempt from the
  /// challenger's min-samples requirement, though not from the
  /// hysteresis margin.
  ///
  /// `emu_available` adds the emulated-GPU arm as a third candidate.
  /// When false (every exact-budget call) the two-arm logic below runs
  /// unchanged — same branches, same single exploration draw per
  /// non-converged visit — so exact traffic's decision stream is
  /// bitwise-identical to a build without the emulated arm.
  /// `emu_cost_override` mirrors `gpu_cost_override` for the emulated
  /// arm (same transfers, different kernel).
  Decision choose(const BucketKey& key, bool gpu_available = true,
                  std::optional<double> gpu_cost_override = std::nullopt,
                  bool emu_available = false,
                  std::optional<double> emu_cost_override = std::nullopt);

  /// Fold a measured per-call cost into the bucket's estimate for the
  /// executed backend. Route::CpuBatched feeds the CPU estimate — the
  /// amortised batched cost IS what the CPU route costs under coalescing.
  void observe(const BucketKey& key, Route route, double measured_s);

  /// Restore a bucket from the calibration store. Marks it converged
  /// when it carries at least config().converged_visits visits.
  void restore(const BucketKey& key, const BucketState& state);

  [[nodiscard]] const std::map<BucketKey, BucketState>& entries() const {
    return entries_;
  }

  /// Read-only view of one bucket (nullptr when absent).
  [[nodiscard]] const BucketState* find(const BucketKey& key) const;

 private:
  DecisionTableConfig config_;
  std::map<BucketKey, BucketState> entries_;
  util::Xoshiro256 rng_;
};

}  // namespace blob::dispatch
