#include "dispatch/admission_queue.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "blas/cblas.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace blob::dispatch {

namespace {

/// Host operand footprints of a queued request, for residency-aware
/// planning (element size follows the request's precision).
OperandRegions regions_of(const void* a, const void* b, const void* c,
                          std::size_t elem_bytes, const core::OpDesc& desc) {
  OperandRegions out;
  if (desc.op == core::KernelOp::Gemm) {
    out.a = matrix_region(a, elem_bytes, desc.lda, desc.rows_a(),
                          desc.cols_a());
    out.b = matrix_region(b, elem_bytes, desc.ldb, desc.rows_b(),
                          desc.cols_b());
    out.c = matrix_region(c, elem_bytes, desc.ldc, desc.m, desc.n);
  } else {
    out.a = matrix_region(a, elem_bytes, desc.lda, desc.m, desc.n);
    out.b = vector_region(b, elem_bytes, desc.x_len(), desc.incx);
    out.c = vector_region(c, elem_bytes, desc.y_len(), desc.incy);
  }
  return out;
}

}  // namespace

AdmissionQueue::AdmissionQueue(Dispatcher& dispatcher,
                               AdmissionQueueConfig config)
    : dispatcher_(dispatcher), config_(config) {
  config_.max_drain = std::max<std::size_t>(config_.max_drain, 1);
  config_.coalesce_min = std::max(config_.coalesce_min, 2);
  worker_ = std::thread([this] { worker_loop(); });
}

AdmissionQueue::~AdmissionQueue() { stop(); }

std::future<void> AdmissionQueue::push(Request request) {
  if (obs::enabled()) request.submit_ns = obs::now_ns();
  std::future<void> future = request.done.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.closed()) {
      throw std::runtime_error("AdmissionQueue: submit after stop()");
    }
    ++submitted_;
  }
  if (!queue_.push(0, request)) {
    std::lock_guard<std::mutex> lock(mutex_);
    --submitted_;
    throw std::runtime_error("AdmissionQueue: submit after stop()");
  }
  return future;
}

template <typename T>
std::future<void> AdmissionQueue::submit_gemm(blas::Transpose ta,
                                              blas::Transpose tb, int m,
                                              int n, int k, T alpha,
                                              const T* a, int lda,
                                              const T* b, int ldb, T beta,
                                              T* c, int ldc) {
  Request r;
  r.kind = sizeof(T) == 4 ? Kind::GemmF32 : Kind::GemmF64;
  r.ta = ta;
  r.tb = tb;
  r.m = m;
  r.n = n;
  r.k = k;
  r.lda = lda;
  r.ldb = ldb;
  r.ldc = ldc;
  r.alpha = static_cast<double>(alpha);
  r.beta = static_cast<double>(beta);
  r.a = a;
  r.b = b;
  r.c = c;
  r.budget = blas::cblas_error_budget();
  return push(std::move(r));
}

template <typename T>
std::future<void> AdmissionQueue::submit_gemv(blas::Transpose ta, int m,
                                              int n, T alpha, const T* a,
                                              int lda, const T* x, int incx,
                                              T beta, T* y, int incy) {
  Request r;
  r.kind = sizeof(T) == 4 ? Kind::GemvF32 : Kind::GemvF64;
  r.ta = ta;
  r.m = m;
  r.n = n;
  r.k = 1;
  r.lda = lda;
  r.incx = incx;
  r.incy = incy;
  r.alpha = static_cast<double>(alpha);
  r.beta = static_cast<double>(beta);
  r.a = a;
  r.b = x;
  r.c = y;
  r.budget = blas::cblas_error_budget();
  return push(std::move(r));
}

template std::future<void> AdmissionQueue::submit_gemm<float>(
    blas::Transpose, blas::Transpose, int, int, int, float, const float*,
    int, const float*, int, float, float*, int);
template std::future<void> AdmissionQueue::submit_gemm<double>(
    blas::Transpose, blas::Transpose, int, int, int, double, const double*,
    int, const double*, int, double, double*, int);
template std::future<void> AdmissionQueue::submit_gemv<float>(
    blas::Transpose, int, int, float, const float*, int, const float*, int,
    float, float*, int);
template std::future<void> AdmissionQueue::submit_gemv<double>(
    blas::Transpose, int, int, double, const double*, int, const double*,
    int, double, double*, int);

void AdmissionQueue::flush() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [&] { return completed_ >= submitted_; });
}

void AdmissionQueue::stop() {
  queue_.close();
  if (worker_.joinable()) worker_.join();
}

std::uint64_t AdmissionQueue::submitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return submitted_;
}

std::uint64_t AdmissionQueue::completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_;
}

void AdmissionQueue::worker_loop() {
  for (;;) {
    std::vector<Request> batch;
    batch.reserve(config_.max_drain);
    if (queue_.pop_batch(0, config_.max_drain, batch) == 0) {
      return;  // closed and nothing left to drain
    }
    if (batch.size() < config_.max_drain) {
      // Give a producer caught mid-burst one scheduling slot to finish
      // before this cycle is fixed. Without it, on a saturated machine
      // the first push of a burst wakes this thread, which preempts the
      // producer and drains a one-request cycle — repeated per push, so
      // bursts that should coalesce degenerate into per-call routing.
      std::this_thread::yield();
      queue_.try_pop_batch(0, config_.max_drain - batch.size(), batch);
    }
    {
      obs::Span cycle("dispatch.queue_cycle", obs::Category::Dispatch);
      if (cycle.active()) {
        static obs::Counter& cycles = obs::counter("dispatch.queue_cycles");
        cycles.add(1);
        static obs::Histogram& wait_hist =
            obs::histogram("dispatch.admission_wait_ns");
        const std::int64_t now = obs::now_ns();
        for (const Request& r : batch) {
          if (r.submit_ns > 0 && now > r.submit_ns) {
            wait_hist.record(static_cast<std::uint64_t>(now - r.submit_ns));
          }
        }
      }
      drain_cycle(batch);
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      completed_ += batch.size();
    }
    idle_cv_.notify_all();
  }
}

core::OpDesc AdmissionQueue::make_desc(const Request& r) const {
  const auto precision =
      (r.kind == Kind::GemmF32 || r.kind == Kind::GemvF32)
          ? model::Precision::F32
          : model::Precision::F64;
  // The transfer mode is DERIVED: under an active residency policy the
  // dispatcher, not the client, decides how operands move.
  const auto mode = dispatcher_.effective_mode();
  core::OpDesc desc =
      (r.kind == Kind::GemmF32 || r.kind == Kind::GemmF64)
          ? core::OpDesc::gemm(precision, r.ta, r.tb, r.m, r.n, r.k, r.lda,
                               r.ldb, r.ldc, r.alpha == 1.0, r.beta == 0.0,
                               mode)
          : core::OpDesc::gemv(precision, r.ta, r.m, r.n, r.lda, r.incx,
                               r.incy, r.alpha == 1.0, r.beta == 0.0, mode);
  desc.budget = r.budget;
  return desc;
}

bool AdmissionQueue::coalescible(const Request& r) const {
  const int dim = config_.coalesce_max_dim;
  if (r.kind == Kind::GemvF32 || r.kind == Kind::GemvF64) {
    // Small GEMVs coalesce into one blas::gemv_batched submission.
    // Strided vectors group too (the batched primitive stages them);
    // the GroupKey keeps unequal increments apart.
    if (r.m <= 0 || r.n <= 0) return false;
    return r.m <= dim && r.n <= dim;
  }
  if (r.m <= 0 || r.n <= 0 || r.k <= 0) return false;
  return r.m <= dim && r.n <= dim && r.k <= dim;
}

void AdmissionQueue::drain_cycle(std::vector<Request>& batch) {
  // -- identify coalesce groups (same shape + layout, scalars, lds) --------
  // The error budget is part of the key: a coalesced group lowers through
  // one shared OpDesc, so mixing contracts would silently promote or
  // demote someone's accuracy.
  using GroupKey = std::tuple<int, int, int, int, int, int, int, int, int,
                              int, int, double, double, int, std::uint32_t>;
  std::map<GroupKey, std::vector<std::size_t>> groups;
  std::vector<bool> coalesced(batch.size(), false);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Request& r = batch[i];
    if (!coalescible(r)) continue;
    groups[GroupKey{static_cast<int>(r.kind), static_cast<int>(r.ta),
                    static_cast<int>(r.tb), r.m, r.n, r.k, r.lda, r.ldb,
                    r.ldc, r.incx, r.incy, r.alpha, r.beta,
                    static_cast<int>(r.budget.kind), r.budget.ulps}]
        .push_back(i);
  }
  std::vector<const std::vector<std::size_t>*> to_batch;
  for (const auto& [key, members] : groups) {
    if (members.size() >= static_cast<std::size_t>(config_.coalesce_min)) {
      for (const std::size_t i : members) coalesced[i] = true;
      to_batch.push_back(&members);
    }
  }

  // -- plan the rest and submit GPU-routed work first (overlap setup) ------
  struct CpuWork {
    std::size_t idx;
    Decision decision;
    core::OpDesc desc;
  };
  struct GpuWork {
    std::size_t idx;
    Dispatcher::GpuJob job;
  };
  std::vector<CpuWork> cpu_work;
  std::vector<GpuWork> gpu_work;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (coalesced[i]) continue;
    Request& r = batch[i];
    core::OpDesc desc;
    try {
      desc = make_desc(r);
    } catch (...) {
      r.done.set_exception(std::current_exception());
      continue;
    }
    const bool gpu_ok = Dispatcher::gpu_supported(desc);
    const std::size_t es =
        (r.kind == Kind::GemmF32 || r.kind == Kind::GemvF32) ? 4 : 8;
    const Decision decision =
        dispatcher_.plan(desc, gpu_ok, regions_of(r.a, r.b, r.c, es, desc));
    if (decision.route == Route::Gpu ||
        decision.route == Route::GpuEmulated) {
      GpuWork w;
      w.idx = i;
      try {
        switch (r.kind) {
          case Kind::GemmF32:
            w.job = dispatcher_.enqueue_gemm_gpu<float>(
                decision, desc, static_cast<float>(r.alpha),
                static_cast<const float*>(r.a),
                static_cast<const float*>(r.b), static_cast<float>(r.beta),
                static_cast<float*>(r.c));
            break;
          case Kind::GemmF64:
            // The emulated route is only ever chosen for fp64 GEMM (the
            // eligibility gate enforces it), so this is the one kind that
            // can land on the sliced kernel.
            if (decision.route == Route::GpuEmulated) {
              w.job = dispatcher_.enqueue_gemm_emulated_gpu(
                  decision, desc, r.alpha, static_cast<const double*>(r.a),
                  static_cast<const double*>(r.b), r.beta,
                  static_cast<double*>(r.c));
            } else {
              w.job = dispatcher_.enqueue_gemm_gpu<double>(
                  decision, desc, r.alpha, static_cast<const double*>(r.a),
                  static_cast<const double*>(r.b), r.beta,
                  static_cast<double*>(r.c));
            }
            break;
          case Kind::GemvF32:
            w.job = dispatcher_.enqueue_gemv_gpu<float>(
                decision, desc, static_cast<float>(r.alpha),
                static_cast<const float*>(r.a),
                static_cast<const float*>(r.b), static_cast<float>(r.beta),
                static_cast<float*>(r.c));
            break;
          case Kind::GemvF64:
            w.job = dispatcher_.enqueue_gemv_gpu<double>(
                decision, desc, r.alpha, static_cast<const double*>(r.a),
                static_cast<const double*>(r.b), r.beta,
                static_cast<double*>(r.c));
            break;
        }
        gpu_work.push_back(std::move(w));
      } catch (...) {
        r.done.set_exception(std::current_exception());
      }
    } else {
      cpu_work.push_back(CpuWork{i, decision, desc});
    }
  }

  // -- CPU work runs while the GPU jobs are in flight ----------------------
  for (const auto* members : to_batch) {
    const Request& head = batch[members->front()];
    const int count = static_cast<int>(members->size());
    try {
      const core::OpDesc desc = make_desc(head);
      const auto gather = [&](auto tag) {
        using T = decltype(tag);
        struct Ptrs {
          std::vector<const T*> as, bs;
          std::vector<T*> cs;
        } p;
        p.as.reserve(members->size());
        p.bs.reserve(members->size());
        p.cs.reserve(members->size());
        for (const std::size_t i : *members) {
          p.as.push_back(static_cast<const T*>(batch[i].a));
          p.bs.push_back(static_cast<const T*>(batch[i].b));
          p.cs.push_back(static_cast<T*>(batch[i].c));
        }
        return p;
      };
      switch (head.kind) {
        case Kind::GemmF32: {
          auto p = gather(float{});
          dispatcher_.run_gemm_coalesced<float>(
              desc, static_cast<float>(head.alpha), p.as.data(),
              p.bs.data(), static_cast<float>(head.beta), p.cs.data(),
              count);
          break;
        }
        case Kind::GemmF64: {
          auto p = gather(double{});
          dispatcher_.run_gemm_coalesced<double>(desc, head.alpha,
                                                 p.as.data(), p.bs.data(),
                                                 head.beta, p.cs.data(),
                                                 count);
          break;
        }
        case Kind::GemvF32: {
          auto p = gather(float{});
          dispatcher_.run_gemv_coalesced<float>(
              desc, static_cast<float>(head.alpha), p.as.data(),
              p.bs.data(), static_cast<float>(head.beta), p.cs.data(),
              count);
          break;
        }
        case Kind::GemvF64: {
          auto p = gather(double{});
          dispatcher_.run_gemv_coalesced<double>(desc, head.alpha,
                                                 p.as.data(), p.bs.data(),
                                                 head.beta, p.cs.data(),
                                                 count);
          break;
        }
      }
      for (const std::size_t i : *members) batch[i].done.set_value();
    } catch (...) {
      for (const std::size_t i : *members) {
        batch[i].done.set_exception(std::current_exception());
      }
    }
  }

  for (const CpuWork& w : cpu_work) {
    Request& r = batch[w.idx];
    try {
      switch (r.kind) {
        case Kind::GemmF32:
          dispatcher_.run_gemm_cpu<float>(
              w.decision, w.desc, static_cast<float>(r.alpha),
              static_cast<const float*>(r.a),
              static_cast<const float*>(r.b), static_cast<float>(r.beta),
              static_cast<float*>(r.c));
          break;
        case Kind::GemmF64:
          dispatcher_.run_gemm_cpu<double>(
              w.decision, w.desc, r.alpha, static_cast<const double*>(r.a),
              static_cast<const double*>(r.b), r.beta,
              static_cast<double*>(r.c));
          break;
        case Kind::GemvF32:
          dispatcher_.run_gemv_cpu<float>(
              w.decision, w.desc, static_cast<float>(r.alpha),
              static_cast<const float*>(r.a),
              static_cast<const float*>(r.b), static_cast<float>(r.beta),
              static_cast<float*>(r.c));
          break;
        case Kind::GemvF64:
          dispatcher_.run_gemv_cpu<double>(
              w.decision, w.desc, r.alpha, static_cast<const double*>(r.a),
              static_cast<const double*>(r.b), r.beta,
              static_cast<double*>(r.c));
          break;
      }
      r.done.set_value();
    } catch (...) {
      r.done.set_exception(std::current_exception());
    }
  }

  // -- join the GPU jobs; outputs publish only after the unpack ------------
  const bool overlapped = !cpu_work.empty() || !to_batch.empty();
  obs::Span join_span = !gpu_work.empty() && obs::enabled()
                            ? obs::Span("dispatch.overlap_join",
                                        obs::Category::Dispatch)
                            : obs::Span();
  for (GpuWork& w : gpu_work) {
    Request& r = batch[w.idx];
    try {
      dispatcher_.finish_gpu_job(w.job, overlapped);
      r.done.set_value();
    } catch (...) {
      r.done.set_exception(std::current_exception());
    }
  }
}

}  // namespace blob::dispatch
