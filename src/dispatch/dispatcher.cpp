#include "dispatch/dispatcher.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

#include "blas/autotune.hpp"
#include "blas/batched.hpp"
#include "core/flops.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace blob::dispatch {

namespace {

template <typename T>
constexpr model::Precision precision_of() {
  return sizeof(T) == 4 ? model::Precision::F32 : model::Precision::F64;
}

/// Copy an ld-strided column-major matrix into a tight (ld == rows) one.
template <typename T>
void pack_dense(T* dst, const T* src, int ld, int rows, int cols) {
  if (ld == rows) {
    std::memcpy(dst, src, sizeof(T) * static_cast<std::size_t>(rows) *
                              static_cast<std::size_t>(cols));
    return;
  }
  for (int j = 0; j < cols; ++j) {
    std::memcpy(dst + static_cast<std::size_t>(j) * rows,
                src + static_cast<std::size_t>(j) * ld,
                sizeof(T) * static_cast<std::size_t>(rows));
  }
}

template <typename T>
void unpack_dense(T* dst, int ld, const T* src, int rows, int cols) {
  if (ld == rows) {
    std::memcpy(dst, src, sizeof(T) * static_cast<std::size_t>(rows) *
                              static_cast<std::size_t>(cols));
    return;
  }
  for (int j = 0; j < cols; ++j) {
    std::memcpy(dst + static_cast<std::size_t>(j) * ld,
                src + static_cast<std::size_t>(j) * rows,
                sizeof(T) * static_cast<std::size_t>(rows));
  }
}

sim::SimGpu::Config device_config(const DispatcherConfig& config) {
  sim::SimGpu::Config dev;
  dev.gpu = config.profile.gpu;
  dev.link = config.profile.link;
  dev.functional = config.functional;
  // Live serving must never skip numeric execution: clients read C.
  dev.functional_dim_limit = std::numeric_limits<double>::max();
  dev.trace = false;
  return dev;
}

const char* route_noise_tag(Route route) {
  switch (route) {
    case Route::Cpu:
      return "dispatch-cpu";
    case Route::Gpu:
      return "dispatch-gpu";
    case Route::CpuBatched:
      return "dispatch-batched";
  }
  return "dispatch";
}

}  // namespace

Dispatcher::Dispatcher(DispatcherConfig config)
    : config_(std::move(config)),
      model_(config_.profile, /*noise_override=*/0.0),
      advisor_(model_),
      device_(device_config(config_)),
      gpu_stream_(device_.create_stream("dispatch")),
      table_(config_.table),
      trace_(config_.trace_capacity),
      noise_(config_.noise_sigma >= 0.0 ? config_.noise_sigma
                                        : config_.profile.noise_sigma,
             config_.noise_seed) {
  gpu_stream_.set_on_op([this](const sim::OpRecord&) {
    counters_.gpu_ops_enqueued.fetch_add(1, std::memory_order_relaxed);
  });

  if (!config_.calibration_path.empty()) {
    startup_load_ = load_calibration(config_.calibration_path);
  }

  if (config_.autotune) {
    if (!tuned_f32_) {
      tuned_f32_ = blas::autotune_blocking<float>(config_.autotune_size,
                                                  config_.autotune_repeats)
                       .blocking;
      counters_.autotune_runs.fetch_add(1, std::memory_order_relaxed);
    }
    if (!tuned_f64_) {
      tuned_f64_ = blas::autotune_blocking<double>(config_.autotune_size,
                                                   config_.autotune_repeats)
                       .blocking;
      counters_.autotune_runs.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // The CPU library takes one blocking for both precisions; prefer the
  // f64 tune (the conservative one — smaller working set per block).
  blas::CpuLibraryPersonality personality = config_.personality;
  if (tuned_f64_) {
    personality.blocking = *tuned_f64_;
  } else if (tuned_f32_) {
    personality.blocking = *tuned_f32_;
  }
  cpu_ = std::make_unique<blas::CpuBlasLibrary>(personality,
                                                config_.cpu_threads);
}

Dispatcher::~Dispatcher() {
  if (blas::cblas_dispatch_hook() == this) {
    blas::cblas_set_dispatch_hook(nullptr);
  }
}

void Dispatcher::install() {
  blas::cblas_set_dispatch_hook(this);
  installed_ = true;
}

void Dispatcher::uninstall() {
  if (blas::cblas_dispatch_hook() == this) {
    blas::cblas_set_dispatch_hook(nullptr);
  }
  installed_ = false;
}

// -- hook entry points -------------------------------------------------------

bool Dispatcher::gemm(blas::Transpose ta, blas::Transpose tb, int m, int n,
                      int k, float alpha, const float* a, int lda,
                      const float* b, int ldb, float beta, float* c,
                      int ldc) {
  dispatch_gemm<float>(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
  return true;
}

bool Dispatcher::gemm(blas::Transpose ta, blas::Transpose tb, int m, int n,
                      int k, double alpha, const double* a, int lda,
                      const double* b, int ldb, double beta, double* c,
                      int ldc) {
  dispatch_gemm<double>(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c,
                        ldc);
  return true;
}

bool Dispatcher::gemv(blas::Transpose ta, int m, int n, float alpha,
                      const float* a, int lda, const float* x, int incx,
                      float beta, float* y, int incy) {
  dispatch_gemv<float>(ta, m, n, alpha, a, lda, x, incx, beta, y, incy);
  return true;
}

bool Dispatcher::gemv(blas::Transpose ta, int m, int n, double alpha,
                      const double* a, int lda, const double* x, int incx,
                      double beta, double* y, int incy) {
  dispatch_gemv<double>(ta, m, n, alpha, a, lda, x, incx, beta, y, incy);
  return true;
}

template <typename T>
void Dispatcher::run_gemm(blas::Transpose ta, blas::Transpose tb, int m,
                          int n, int k, T alpha, const T* a, int lda,
                          const T* b, int ldb, T beta, T* c, int ldc) {
  dispatch_gemm<T>(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

template <typename T>
void Dispatcher::run_gemv(blas::Transpose ta, int m, int n, T alpha,
                          const T* a, int lda, const T* x, int incx, T beta,
                          T* y, int incy) {
  dispatch_gemv<T>(ta, m, n, alpha, a, lda, x, incx, beta, y, incy);
}

// -- decision plumbing -------------------------------------------------------

void Dispatcher::ensure_seeded(const BucketKey& key, const CallShape& shape) {
  if (table_.contains(key)) return;
  const core::Advice advice =
      advisor_.advise(to_problem(shape), /*iterations=*/1, shape.mode);
  table_.seed(key, advice.cpu_seconds, advice.gpu_seconds);
}

Decision Dispatcher::plan_locked(const CallShape& shape, bool gpu_ok) {
  obs::Span span("dispatch.decide", obs::Category::Dispatch);
  const BucketKey key = bucket_key(shape);
  ensure_seeded(key, shape);
  const Route before = table_.find(key)->incumbent;
  const Decision decision = table_.choose(key, gpu_ok);
  if (table_.find(key)->incumbent != before) {
    counters_.route_switches.fetch_add(1, std::memory_order_relaxed);
  }
  counters_.count_reason(decision.reason);
  return decision;
}

Decision Dispatcher::plan(const CallShape& shape, bool gpu_ok) {
  std::lock_guard<std::mutex> lock(mutex_);
  return plan_locked(shape, gpu_ok);
}

double Dispatcher::cpu_cost(const CallShape& shape) const {
  return model_.cpu_time(to_problem(shape), /*iterations=*/1);
}

double Dispatcher::noise_factor(const CallShape& shape, Route route,
                                std::uint64_t seq) const {
  // The model's noise is deterministic per sample identity; salting with
  // the call sequence number makes successive calls of the same shape see
  // different (but reproducible) factors — what the EWMA + hysteresis
  // machinery is there to absorb.
  return noise_.factor(config_.profile.name, route_noise_tag(route),
                       shape.precision, shape.m, shape.n, shape.k,
                       static_cast<std::int64_t>(seq));
}

void Dispatcher::account_and_observe(const CallShape& shape,
                                     const BucketKey& key,
                                     const Decision& decision, double cost_s,
                                     int batch) {
  const std::uint64_t seq = seq_++;
  const auto b = static_cast<std::uint64_t>(batch);
  counters_.calls.fetch_add(b, std::memory_order_relaxed);
  (shape.op == core::KernelOp::Gemm ? counters_.gemm_calls
                                    : counters_.gemv_calls)
      .fetch_add(b, std::memory_order_relaxed);

  switch (decision.route) {
    case Route::Cpu:
      counters_.cpu_routed.fetch_add(b, std::memory_order_relaxed);
      counters_.add_seconds(counters_.cpu_seconds, cost_s);
      break;
    case Route::CpuBatched:
      counters_.batched_routed.fetch_add(b, std::memory_order_relaxed);
      counters_.coalesced_batches.fetch_add(1, std::memory_order_relaxed);
      counters_.add_seconds(counters_.cpu_seconds, cost_s);
      break;
    case Route::Gpu:
      counters_.gpu_routed.fetch_add(b, std::memory_order_relaxed);
      counters_.add_seconds(counters_.gpu_seconds, cost_s);
      break;
  }

  // Per-call amortised observation: for a coalesced batch the CPU arm
  // learns the amortised cost — that IS the cost of the CPU route while
  // coalescing is on.
  const double per_call = cost_s / static_cast<double>(batch);
  const double observed = per_call * noise_factor(shape, decision.route, seq);
  table_.observe(key, decision.route, observed);

  TraceRecord rec;
  rec.seq = seq;
  rec.op = shape.op;
  rec.precision = shape.precision;
  rec.mode = shape.mode;
  rec.bucket = key.bucket;
  rec.m = shape.m;
  rec.n = shape.n;
  rec.k = shape.k;
  rec.route = decision.route;
  rec.reason = decision.reason;
  rec.cpu_est_s = decision.cpu_est_s;
  rec.gpu_est_s = decision.gpu_est_s;
  rec.cost_s = per_call;
  rec.observed_s = observed;
  rec.batch = batch;
  rec.span_id = obs::Span::current();
  trace_.record(rec);

  if (obs::enabled()) {
    static obs::Counter& calls = obs::counter("dispatch.calls");
    static obs::Counter& cpu_routed = obs::counter("dispatch.cpu_routed");
    static obs::Counter& gpu_routed = obs::counter("dispatch.gpu_routed");
    static obs::Counter& batched_routed =
        obs::counter("dispatch.batched_routed");
    calls.add(b);
    switch (decision.route) {
      case Route::Cpu:
        cpu_routed.add(b);
        break;
      case Route::CpuBatched:
        batched_routed.add(b);
        break;
      case Route::Gpu:
        gpu_routed.add(b);
        break;
    }
  }
}

// -- synchronous dispatch ----------------------------------------------------

template <typename T>
void Dispatcher::dispatch_gemm(blas::Transpose ta, blas::Transpose tb, int m,
                               int n, int k, T alpha, const T* a, int lda,
                               const T* b, int ldb, T beta, T* c, int ldc) {
  obs::Span span("dispatch.gemm", obs::Category::Dispatch);
  std::lock_guard<std::mutex> lock(mutex_);
  if (m <= 0 || n <= 0) return;  // nothing to update
  CallShape shape;
  shape.op = core::KernelOp::Gemm;
  shape.precision = precision_of<T>();
  shape.m = m;
  shape.n = n;
  shape.k = std::max(k, 1);
  shape.beta_zero = beta == T(0);
  shape.mode = config_.mode;
  // The simulated GPU kernels are no-transpose only (GPU-BLOB's
  // configuration), so transposed shapes stay on the CPU.
  const bool gpu_ok =
      ta == blas::Transpose::No && tb == blas::Transpose::No && k > 0;
  const BucketKey key = bucket_key(shape);
  const Decision decision = plan_locked(shape, gpu_ok);
  if (decision.route == Route::Gpu) {
    GpuJob job = enqueue_gemm_gpu_locked<T>(decision, m, n, k, alpha, a, lda,
                                            b, ldb, beta, c, ldc);
    finish_gpu_job_locked(job, /*overlapped=*/false);
  } else {
    cpu_->do_gemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
    account_and_observe(shape, key, decision, cpu_cost(shape), 1);
  }
}

template <typename T>
void Dispatcher::dispatch_gemv(blas::Transpose ta, int m, int n, T alpha,
                               const T* a, int lda, const T* x, int incx,
                               T beta, T* y, int incy) {
  obs::Span span("dispatch.gemv", obs::Category::Dispatch);
  std::lock_guard<std::mutex> lock(mutex_);
  if (m <= 0 || n <= 0) return;
  CallShape shape;
  shape.op = core::KernelOp::Gemv;
  shape.precision = precision_of<T>();
  shape.m = m;
  shape.n = n;
  shape.k = 1;
  shape.beta_zero = beta == T(0);
  shape.mode = config_.mode;
  // No-transpose, unit-stride only on the simulated device.
  const bool gpu_ok = ta == blas::Transpose::No && incx == 1 && incy == 1;
  const BucketKey key = bucket_key(shape);
  const Decision decision = plan_locked(shape, gpu_ok);
  if (decision.route == Route::Gpu) {
    GpuJob job =
        enqueue_gemv_gpu_locked<T>(decision, m, n, alpha, a, lda, x, beta, y);
    finish_gpu_job_locked(job, /*overlapped=*/false);
  } else {
    cpu_->do_gemv(ta, m, n, alpha, a, lda, x, incx, beta, y, incy);
    account_and_observe(shape, key, decision, cpu_cost(shape), 1);
  }
}

template <typename T>
void Dispatcher::run_gemm_cpu(const Decision& decision, blas::Transpose ta,
                              blas::Transpose tb, int m, int n, int k,
                              T alpha, const T* a, int lda, const T* b,
                              int ldb, T beta, T* c, int ldc) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (m <= 0 || n <= 0) return;
  CallShape shape;
  shape.op = core::KernelOp::Gemm;
  shape.precision = precision_of<T>();
  shape.m = m;
  shape.n = n;
  shape.k = std::max(k, 1);
  shape.beta_zero = beta == T(0);
  shape.mode = config_.mode;
  const BucketKey key = bucket_key(shape);
  ensure_seeded(key, shape);
  cpu_->do_gemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
  account_and_observe(shape, key, decision, cpu_cost(shape), 1);
}

template <typename T>
void Dispatcher::run_gemv_cpu(const Decision& decision, blas::Transpose ta,
                              int m, int n, T alpha, const T* a, int lda,
                              const T* x, int incx, T beta, T* y, int incy) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (m <= 0 || n <= 0) return;
  CallShape shape;
  shape.op = core::KernelOp::Gemv;
  shape.precision = precision_of<T>();
  shape.m = m;
  shape.n = n;
  shape.k = 1;
  shape.beta_zero = beta == T(0);
  shape.mode = config_.mode;
  const BucketKey key = bucket_key(shape);
  ensure_seeded(key, shape);
  cpu_->do_gemv(ta, m, n, alpha, a, lda, x, incx, beta, y, incy);
  account_and_observe(shape, key, decision, cpu_cost(shape), 1);
}

template <typename T>
void Dispatcher::run_gemm_coalesced(int m, int n, int k, T alpha,
                                    const T* const* a, int lda,
                                    const T* const* b, int ldb, T beta,
                                    T* const* c, int ldc, int batch) {
  obs::Span span("dispatch.coalesced_batch", obs::Category::Dispatch);
  std::lock_guard<std::mutex> lock(mutex_);
  if (m <= 0 || n <= 0 || batch <= 0) return;
  CallShape shape;
  shape.op = core::KernelOp::Gemm;
  shape.precision = precision_of<T>();
  shape.m = m;
  shape.n = n;
  shape.k = std::max(k, 1);
  shape.beta_zero = beta == T(0);
  shape.mode = config_.mode;
  const BucketKey key = bucket_key(shape);
  ensure_seeded(key, shape);

  blas::gemm_batched<T>(blas::Transpose::No, blas::Transpose::No, m, n, k,
                        alpha, a, lda, b, ldb, beta, c, ldc, batch,
                        cpu_->pool(), cpu_->max_threads());

  core::Problem problem = to_problem(shape);
  problem.batch = batch;
  const double cost = model_.cpu_time(problem, /*iterations=*/1);

  Decision decision;
  decision.route = Route::CpuBatched;
  decision.reason = Reason::Coalesced;
  if (const BucketState* state = table_.find(key)) {
    decision.cpu_est_s = state->cpu.ewma_s;
    decision.gpu_est_s = state->gpu.ewma_s;
  }
  account_and_observe(shape, key, decision, cost, batch);
}

// -- GPU path ----------------------------------------------------------------

template <typename T>
Dispatcher::GpuJob Dispatcher::enqueue_gemm_gpu_locked(
    const Decision& decision, int m, int n, int k, T alpha, const T* a,
    int lda, const T* b, int ldb, T beta, T* c, int ldc) {
  obs::Span span("dispatch.gpu_enqueue", obs::Category::Dispatch);
  GpuJob job;
  job.active = true;
  job.decision = decision;
  job.shape.op = core::KernelOp::Gemm;
  job.shape.precision = precision_of<T>();
  job.shape.m = m;
  job.shape.n = n;
  job.shape.k = k;
  job.shape.beta_zero = beta == T(0);
  job.shape.mode = config_.mode;
  job.key = bucket_key(job.shape);

  sim::Stream& s = gpu_stream_;
  job.submit_floor = std::max(s.tail(), device_.now());

  const std::size_t es = sizeof(T);
  const auto ab = es * static_cast<std::size_t>(m) * static_cast<std::size_t>(k);
  const auto bb = es * static_cast<std::size_t>(k) * static_cast<std::size_t>(n);
  const auto cb = es * static_cast<std::size_t>(m) * static_cast<std::size_t>(n);

  sim::Buffer ha = device_.alloc_host(ab);
  sim::Buffer hb = device_.alloc_host(bb);
  sim::Buffer hc = device_.alloc_host(cb);
  pack_dense(ha.as<T>(), a, lda, m, k);
  pack_dense(hb.as<T>(), b, ldb, k, n);
  // GPU-BLOB uploads all three structures (paper §III-B2), so C crosses
  // the link even when beta == 0 — matching the analytic cost exactly.
  pack_dense(hc.as<T>(), c, ldc, m, n);

  sim::Buffer da = device_.alloc_device(ab);
  sim::Buffer db = device_.alloc_device(bb);
  sim::Buffer dc = device_.alloc_device(cb);
  device_.memcpy_h2d_async(s, da, ha, ab);
  device_.memcpy_h2d_async(s, db, hb, bb);
  device_.memcpy_h2d_async(s, dc, hc, cb);
  device_.gemm<T>(m, n, k, alpha, da, m, db, k, beta, dc, m, &s);
  device_.memcpy_d2h_async(s, hc, dc, cb);
  job.done = s.tail();

  // Buffer storage addresses are stable across Buffer moves, so the raw
  // pointer captured here stays valid inside job.buffers.
  T* staged = hc.as<T>();
  job.unpack = [staged, c, ldc, m, n]() {
    unpack_dense(c, ldc, staged, m, n);
  };
  job.buffers.reserve(6);
  job.buffers.push_back(std::move(ha));
  job.buffers.push_back(std::move(hb));
  job.buffers.push_back(std::move(hc));
  job.buffers.push_back(std::move(da));
  job.buffers.push_back(std::move(db));
  job.buffers.push_back(std::move(dc));
  return job;
}

template <typename T>
Dispatcher::GpuJob Dispatcher::enqueue_gemv_gpu_locked(
    const Decision& decision, int m, int n, T alpha, const T* a, int lda,
    const T* x, T beta, T* y) {
  obs::Span span("dispatch.gpu_enqueue", obs::Category::Dispatch);
  GpuJob job;
  job.active = true;
  job.decision = decision;
  job.shape.op = core::KernelOp::Gemv;
  job.shape.precision = precision_of<T>();
  job.shape.m = m;
  job.shape.n = n;
  job.shape.k = 1;
  job.shape.beta_zero = beta == T(0);
  job.shape.mode = config_.mode;
  job.key = bucket_key(job.shape);

  sim::Stream& s = gpu_stream_;
  job.submit_floor = std::max(s.tail(), device_.now());

  const std::size_t es = sizeof(T);
  const auto ab = es * static_cast<std::size_t>(m) * static_cast<std::size_t>(n);
  const auto xb = es * static_cast<std::size_t>(n);
  const auto yb = es * static_cast<std::size_t>(m);

  sim::Buffer ha = device_.alloc_host(ab);
  sim::Buffer hx = device_.alloc_host(xb);
  sim::Buffer hy = device_.alloc_host(yb);
  pack_dense(ha.as<T>(), a, lda, m, n);
  std::memcpy(hx.data(), x, xb);
  std::memcpy(hy.data(), y, yb);

  sim::Buffer da = device_.alloc_device(ab);
  sim::Buffer dx = device_.alloc_device(xb);
  sim::Buffer dy = device_.alloc_device(yb);
  device_.memcpy_h2d_async(s, da, ha, ab);
  device_.memcpy_h2d_async(s, dx, hx, xb);
  device_.memcpy_h2d_async(s, dy, hy, yb);
  device_.gemv<T>(m, n, alpha, da, m, dx, beta, dy, &s);
  device_.memcpy_d2h_async(s, hy, dy, yb);
  job.done = s.tail();

  T* staged = hy.as<T>();
  job.unpack = [staged, y, yb]() { std::memcpy(y, staged, yb); };
  job.buffers.reserve(6);
  job.buffers.push_back(std::move(ha));
  job.buffers.push_back(std::move(hx));
  job.buffers.push_back(std::move(hy));
  job.buffers.push_back(std::move(da));
  job.buffers.push_back(std::move(dx));
  job.buffers.push_back(std::move(dy));
  return job;
}

template <typename T>
Dispatcher::GpuJob Dispatcher::enqueue_gemm_gpu(const Decision& decision,
                                                int m, int n, int k, T alpha,
                                                const T* a, int lda,
                                                const T* b, int ldb, T beta,
                                                T* c, int ldc) {
  std::lock_guard<std::mutex> lock(mutex_);
  return enqueue_gemm_gpu_locked<T>(decision, m, n, k, alpha, a, lda, b, ldb,
                                    beta, c, ldc);
}

template <typename T>
Dispatcher::GpuJob Dispatcher::enqueue_gemv_gpu(const Decision& decision,
                                                int m, int n, T alpha,
                                                const T* a, int lda,
                                                const T* x, T beta, T* y) {
  std::lock_guard<std::mutex> lock(mutex_);
  return enqueue_gemv_gpu_locked<T>(decision, m, n, alpha, a, lda, x, beta,
                                    y);
}

void Dispatcher::finish_gpu_job_locked(GpuJob& job, bool overlapped) {
  if (!job.active) return;
  obs::Span span("dispatch.gpu_join", obs::Category::Dispatch);
  span.set_virtual(job.submit_floor, job.done - job.submit_floor);
  // Join only this job's completion time — later enqueues on the stream
  // must not be charged to this call (cudaEvent-style sync, not a full
  // stream synchronize).
  device_.clock().advance_to(job.done);
  if (job.unpack) job.unpack();
  if (overlapped) {
    counters_.overlapped_gpu_calls.fetch_add(1, std::memory_order_relaxed);
  }
  const double cost = job.done - job.submit_floor;
  account_and_observe(job.shape, job.key, job.decision, cost, 1);
  job.buffers.clear();
  job.unpack = nullptr;
  job.active = false;
}

void Dispatcher::finish_gpu_job(GpuJob& job, bool overlapped) {
  std::lock_guard<std::mutex> lock(mutex_);
  finish_gpu_job_locked(job, overlapped);
}

// -- cost oracle -------------------------------------------------------------

Dispatcher::Costs Dispatcher::modelled_costs(const CallShape& shape) const {
  std::lock_guard<std::mutex> lock(mutex_);
  Costs costs;
  costs.cpu_s = cpu_cost(shape);
  const auto gpu =
      model_.gpu_time(to_problem(shape), /*iterations=*/1, shape.mode);
  costs.gpu_s =
      gpu.value_or(std::numeric_limits<double>::infinity());
  return costs;
}

Route Dispatcher::oracle_route(const CallShape& shape) const {
  const Costs costs = modelled_costs(shape);
  return costs.gpu_s < costs.cpu_s ? Route::Gpu : Route::Cpu;
}

// -- calibration -------------------------------------------------------------

CalibrationData Dispatcher::make_calibration() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CalibrationData data;
  data.personality = config_.personality.name;
  data.profile = config_.profile.name;
  data.entries = table_.entries();
  data.blocking_f32 = tuned_f32_;
  data.blocking_f64 = tuned_f64_;
  return data;
}

void Dispatcher::apply_calibration(const CalibrationData& data) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, state] : data.entries) {
    table_.restore(key, state);
  }
  if (data.blocking_f32) tuned_f32_ = data.blocking_f32;
  if (data.blocking_f64) tuned_f64_ = data.blocking_f64;
  counters_.calibration_loads.fetch_add(1, std::memory_order_relaxed);
}

bool Dispatcher::save_calibration(const std::string& path) const {
  return save_calibration_file(path, make_calibration());
}

LoadStatus Dispatcher::load_calibration(const std::string& path) {
  const LoadResult result = load_calibration_file(
      path, config_.personality.name, config_.profile.name);
  if (result.status == LoadStatus::Ok) {
    apply_calibration(result.data);
  }
  return result.status;
}

// -- explicit instantiations -------------------------------------------------

template void Dispatcher::run_gemm<float>(blas::Transpose, blas::Transpose,
                                          int, int, int, float, const float*,
                                          int, const float*, int, float,
                                          float*, int);
template void Dispatcher::run_gemm<double>(blas::Transpose, blas::Transpose,
                                           int, int, int, double,
                                           const double*, int, const double*,
                                           int, double, double*, int);
template void Dispatcher::run_gemv<float>(blas::Transpose, int, int, float,
                                          const float*, int, const float*,
                                          int, float, float*, int);
template void Dispatcher::run_gemv<double>(blas::Transpose, int, int, double,
                                           const double*, int, const double*,
                                           int, double, double*, int);
template void Dispatcher::run_gemm_cpu<float>(const Decision&,
                                              blas::Transpose,
                                              blas::Transpose, int, int, int,
                                              float, const float*, int,
                                              const float*, int, float,
                                              float*, int);
template void Dispatcher::run_gemm_cpu<double>(
    const Decision&, blas::Transpose, blas::Transpose, int, int, int, double,
    const double*, int, const double*, int, double, double*, int);
template void Dispatcher::run_gemv_cpu<float>(const Decision&,
                                              blas::Transpose, int, int,
                                              float, const float*, int,
                                              const float*, int, float,
                                              float*, int);
template void Dispatcher::run_gemv_cpu<double>(const Decision&,
                                               blas::Transpose, int, int,
                                               double, const double*, int,
                                               const double*, int, double,
                                               double*, int);
template void Dispatcher::run_gemm_coalesced<float>(int, int, int, float,
                                                    const float* const*, int,
                                                    const float* const*, int,
                                                    float, float* const*, int,
                                                    int);
template void Dispatcher::run_gemm_coalesced<double>(
    int, int, int, double, const double* const*, int, const double* const*,
    int, double, double* const*, int, int);
template Dispatcher::GpuJob Dispatcher::enqueue_gemm_gpu<float>(
    const Decision&, int, int, int, float, const float*, int, const float*,
    int, float, float*, int);
template Dispatcher::GpuJob Dispatcher::enqueue_gemm_gpu<double>(
    const Decision&, int, int, int, double, const double*, int,
    const double*, int, double, double*, int);
template Dispatcher::GpuJob Dispatcher::enqueue_gemv_gpu<float>(
    const Decision&, int, int, float, const float*, int, const float*, float,
    float*);
template Dispatcher::GpuJob Dispatcher::enqueue_gemv_gpu<double>(
    const Decision&, int, int, double, const double*, int, const double*,
    double, double*);

}  // namespace blob::dispatch
