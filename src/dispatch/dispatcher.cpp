#include "dispatch/dispatcher.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <type_traits>

#include "blas/autotune.hpp"
#include "blas/batched.hpp"
#include "blas/emulated_gemm.hpp"
#include "blas/half_gemm.hpp"
#include "core/flops.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace blob::dispatch {

namespace {

template <typename T>
inline constexpr bool kIsHalf =
    std::is_same_v<T, blas::f16> || std::is_same_v<T, blas::bf16>;

/// Copy an ld-strided column-major matrix into a tight (ld == rows) one.
template <typename T>
void pack_dense(T* dst, const T* src, std::int64_t ld, std::int64_t rows,
                std::int64_t cols) {
  if (ld == rows) {
    std::memcpy(dst, src, sizeof(T) * static_cast<std::size_t>(rows) *
                              static_cast<std::size_t>(cols));
    return;
  }
  for (std::int64_t j = 0; j < cols; ++j) {
    std::memcpy(dst + static_cast<std::size_t>(j) * rows,
                src + static_cast<std::size_t>(j) * ld,
                sizeof(T) * static_cast<std::size_t>(rows));
  }
}

template <typename T>
void unpack_dense(T* dst, std::int64_t ld, const T* src, std::int64_t rows,
                  std::int64_t cols) {
  if (ld == rows) {
    std::memcpy(dst, src, sizeof(T) * static_cast<std::size_t>(rows) *
                              static_cast<std::size_t>(cols));
    return;
  }
  for (std::int64_t j = 0; j < cols; ++j) {
    std::memcpy(dst + static_cast<std::size_t>(j) * ld,
                src + static_cast<std::size_t>(j) * rows,
                sizeof(T) * static_cast<std::size_t>(rows));
  }
}

sim::SimGpu::Config device_config(const DispatcherConfig& config) {
  sim::SimGpu::Config dev;
  dev.gpu = config.profile.gpu;
  dev.link = config.profile.link;
  dev.functional = config.functional;
  // Live serving must never skip numeric execution: clients read C.
  dev.functional_dim_limit = std::numeric_limits<double>::max();
  dev.trace = false;
  return dev;
}

const char* route_noise_tag(Route route) {
  switch (route) {
    case Route::Cpu:
      return "dispatch-cpu";
    case Route::Gpu:
      return "dispatch-gpu";
    case Route::CpuBatched:
      return "dispatch-batched";
    case Route::GpuEmulated:
      return "dispatch-emulated";
  }
  return "dispatch";
}

/// Host operand footprints of one GEMM call, in STORED shapes.
template <typename T>
OperandRegions gemm_regions(const core::OpDesc& desc, const T* a, const T* b,
                            const T* c) {
  OperandRegions r;
  r.a = matrix_region(a, sizeof(T), desc.lda, desc.rows_a(), desc.cols_a());
  r.b = matrix_region(b, sizeof(T), desc.ldb, desc.rows_b(), desc.cols_b());
  r.c = matrix_region(c, sizeof(T), desc.ldc, desc.m, desc.n);
  return r;
}

/// Host operand footprints of one GEMV call (A is the stored m x n
/// matrix regardless of trans_a; x/y lengths follow the transpose).
template <typename T>
OperandRegions gemv_regions(const core::OpDesc& desc, const T* a, const T* x,
                            const T* y) {
  OperandRegions r;
  r.a = matrix_region(a, sizeof(T), desc.lda, desc.m, desc.n);
  r.b = vector_region(x, sizeof(T), desc.x_len(), desc.incx);
  r.c = vector_region(y, sizeof(T), desc.y_len(), desc.incy);
  return r;
}

}  // namespace

Dispatcher::Dispatcher(DispatcherConfig config)
    : config_(std::move(config)),
      model_(config_.profile, /*noise_override=*/0.0, 0x5eed,
             config_.device_id),
      advisor_(model_),
      device_(device_config(config_)),
      gpu_stream_(device_.create_stream("dispatch")),
      table_(config_.table),
      trace_(config_.trace_capacity),
      // Device id salts the observation-noise seed (id 0 keeps the
      // legacy stream) so same-profile fleet devices jitter independently.
      noise_(config_.noise_sigma >= 0.0 ? config_.noise_sigma
                                        : config_.profile.noise_sigma,
             config_.noise_seed + 0x9e3779b97f4a7c15ull *
                                      static_cast<std::uint64_t>(
                                          config_.device_id)) {
  gpu_stream_.set_on_op([this](const sim::OpRecord&) {
    counters_.gpu_ops_enqueued.fetch_add(1, std::memory_order_relaxed);
  });

  if (!config_.calibration_path.empty()) {
    startup_load_ = load_calibration(config_.calibration_path);
  }

  if (config_.autotune) {
    if (!tuned_f32_) {
      tuned_f32_ = blas::autotune_blocking<float>(config_.autotune_size,
                                                  config_.autotune_repeats)
                       .blocking;
      counters_.autotune_runs.fetch_add(1, std::memory_order_relaxed);
    }
    if (!tuned_f64_) {
      tuned_f64_ = blas::autotune_blocking<double>(config_.autotune_size,
                                                   config_.autotune_repeats)
                       .blocking;
      counters_.autotune_runs.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // The CPU library takes one blocking for both precisions; prefer the
  // f64 tune (the conservative one — smaller working set per block).
  blas::CpuLibraryPersonality personality = config_.personality;
  if (tuned_f64_) {
    personality.blocking = *tuned_f64_;
  } else if (tuned_f32_) {
    personality.blocking = *tuned_f32_;
  }
  cpu_ = std::make_unique<blas::CpuBlasLibrary>(personality,
                                                config_.cpu_threads);
}

Dispatcher::~Dispatcher() {
  if (blas::cblas_dispatch_hook() == this) {
    blas::cblas_set_dispatch_hook(nullptr);
  }
}

void Dispatcher::install() {
  blas::cblas_set_dispatch_hook(this);
  installed_ = true;
}

void Dispatcher::uninstall() {
  if (blas::cblas_dispatch_hook() == this) {
    blas::cblas_set_dispatch_hook(nullptr);
  }
  installed_ = false;
}

bool Dispatcher::gpu_supported(const core::OpDesc& desc) {
  if (desc.m <= 0 || desc.n <= 0) return false;
  if (desc.op == core::KernelOp::Gemm) return desc.k > 0;
  // GEMV: the device kernels take dense unit-stride vectors only; a
  // strided x/y is the one layout that still forces the CPU route.
  return desc.incx == 1 && desc.incy == 1;
}

bool Dispatcher::emulation_eligible(const core::OpDesc& desc) {
  return desc.op == core::KernelOp::Gemm &&
         desc.precision == model::Precision::F64 &&
         !desc.budget.is_exact() && desc.batch <= 1;
}

core::TransferMode Dispatcher::effective_mode() const {
  switch (config_.residency) {
    case ResidencyPolicy::Off:
      return config_.mode;
    case ResidencyPolicy::Track:
      return core::TransferMode::Once;
    case ResidencyPolicy::FirstTouch:
      return core::TransferMode::Usm;
  }
  return config_.mode;
}

bool Dispatcher::tracking_enabled() const {
  if (config_.residency == ResidencyPolicy::Off) return false;
  if (config_.residency == ResidencyPolicy::FirstTouch &&
      !device_.link_model().xnack) {
    return false;
  }
  return true;
}

ResidencyClass Dispatcher::classify_locked(
    const OperandRegions& regions) const {
  if (!tracking_enabled()) return ResidencyClass::Cold;
  int total = 0;
  int clean = 0;
  for (const Region* r : {&regions.a, &regions.b, &regions.c}) {
    if (!r->valid()) continue;
    ++total;
    if (residency_.resident_clean(*r)) ++clean;
  }
  if (total == 0 || clean == 0) return ResidencyClass::Cold;
  return clean == total ? ResidencyClass::Warm : ResidencyClass::WarmPartial;
}

core::SimBackend::GpuTraffic Dispatcher::traffic_locked(
    const core::OpDesc& desc, const OperandRegions& regions) const {
  // Packed per-structure byte counts — exactly what the enqueue paths
  // stage and what SimBackend::gpu_time charges per structure.
  const double es = static_cast<double>(model::bytes_of(desc.precision));
  const double md = static_cast<double>(desc.m);
  const double nd = static_cast<double>(desc.n);
  double s0 = 0.0, s1 = 0.0, s2 = 0.0;  // A, B/x, C/y
  if (desc.op == core::KernelOp::Gemm) {
    const double kd = static_cast<double>(desc.k);
    s0 = es * md * kd;
    s1 = es * kd * nd;
    s2 = es * md * nd;
  } else {
    s0 = es * md * nd;
    s1 = es * static_cast<double>(desc.x_len());
    s2 = es * static_cast<double>(desc.y_len());
  }
  core::SimBackend::GpuTraffic traffic;
  const bool live = tracking_enabled();
  traffic.h2d[0] =
      live && residency_.resident_clean(regions.a) ? 0.0 : s0;
  traffic.h2d[1] =
      live && residency_.resident_clean(regions.b) ? 0.0 : s1;
  traffic.h2d[2] =
      live && residency_.resident_clean(regions.c) ? 0.0 : s2;
  traffic.d2h_bytes = s2;
  traffic.usm = config_.residency == ResidencyPolicy::FirstTouch;
  return traffic;
}

void Dispatcher::count_residency_hit() {
  counters_.residency_hits.fetch_add(1, std::memory_order_relaxed);
  if (obs::enabled()) {
    static obs::Counter& hits = obs::counter("dispatch.residency.hit");
    hits.add(1);
  }
}

void Dispatcher::count_residency_miss() {
  counters_.residency_misses.fetch_add(1, std::memory_order_relaxed);
  if (obs::enabled()) {
    static obs::Counter& misses = obs::counter("dispatch.residency.miss");
    misses.add(1);
  }
}

void Dispatcher::note_host_output_locked(const Region& region) {
  if (!tracking_enabled() || !region.valid()) return;
  const std::size_t killed = residency_.note_host_write(region);
  if (killed == 0) return;
  counters_.residency_invalidations.fetch_add(killed,
                                              std::memory_order_relaxed);
  if (obs::enabled()) {
    static obs::Counter& invalidations =
        obs::counter("dispatch.residency.invalidate");
    invalidations.add(killed);
  }
}

// -- hook entry points -------------------------------------------------------

bool Dispatcher::gemm(const core::OpDesc& desc, float alpha, const float* a,
                      const float* b, float beta, float* c) {
  dispatch_gemm<float, float>(desc, alpha, a, b, beta, c);
  return true;
}

bool Dispatcher::gemm(const core::OpDesc& desc, double alpha, const double* a,
                      const double* b, double beta, double* c) {
  dispatch_gemm<double, double>(desc, alpha, a, b, beta, c);
  return true;
}

bool Dispatcher::gemv(const core::OpDesc& desc, float alpha, const float* a,
                      const float* x, float beta, float* y) {
  dispatch_gemv<float, float>(desc, alpha, a, x, beta, y);
  return true;
}

bool Dispatcher::gemv(const core::OpDesc& desc, double alpha, const double* a,
                      const double* x, double beta, double* y) {
  dispatch_gemv<double, double>(desc, alpha, a, x, beta, y);
  return true;
}

bool Dispatcher::gemm(const core::OpDesc& desc, float alpha,
                      const blas::f16* a, const blas::f16* b, float beta,
                      blas::f16* c) {
  dispatch_gemm<blas::f16, float>(desc, alpha, a, b, beta, c);
  return true;
}

bool Dispatcher::gemm(const core::OpDesc& desc, float alpha,
                      const blas::bf16* a, const blas::bf16* b, float beta,
                      blas::bf16* c) {
  dispatch_gemm<blas::bf16, float>(desc, alpha, a, b, beta, c);
  return true;
}

bool Dispatcher::gemv(const core::OpDesc& desc, float alpha,
                      const blas::f16* a, const blas::f16* x, float beta,
                      blas::f16* y) {
  dispatch_gemv<blas::f16, float>(desc, alpha, a, x, beta, y);
  return true;
}

bool Dispatcher::gemv(const core::OpDesc& desc, float alpha,
                      const blas::bf16* a, const blas::bf16* x, float beta,
                      blas::bf16* y) {
  dispatch_gemv<blas::bf16, float>(desc, alpha, a, x, beta, y);
  return true;
}

void Dispatcher::host_write(const void* ptr, std::size_t chunk_bytes,
                            std::size_t stride_bytes, std::size_t count) {
  if (!tracking_enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  note_host_output_locked(Region{ptr, chunk_bytes, stride_bytes, count});
}

void Dispatcher::host_swap(const void* pa, const void* pb,
                           std::size_t chunk_bytes, std::size_t stride_bytes,
                           std::size_t count) {
  if (!tracking_enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t mirrored = 0;
  const auto* ba = static_cast<const char*>(pa);
  const auto* bb = static_cast<const char*>(pb);
  for (std::size_t i = 0; i < count; ++i) {
    const Region ra{ba + i * stride_bytes, chunk_bytes};
    const Region rb{bb + i * stride_bytes, chunk_bytes};
    if (residency_.resident_clean(ra) && residency_.resident_clean(rb)) {
      // Both device copies matched the host before the interchange, and
      // the modelled device applies the same interchange (laswp), so
      // they still match after it: the swap is mirrored, not a write.
      ++mirrored;
    } else {
      note_host_output_locked(ra);
      note_host_output_locked(rb);
    }
  }
  if (mirrored > 0) {
    counters_.residency_swaps_mirrored.fetch_add(mirrored,
                                                 std::memory_order_relaxed);
  }
}

template <typename T, typename S>
void Dispatcher::run_gemm(const core::OpDesc& desc, S alpha, const T* a,
                          const T* b, S beta, T* c) {
  dispatch_gemm<T, S>(desc, alpha, a, b, beta, c);
}

template <typename T, typename S>
void Dispatcher::run_gemv(const core::OpDesc& desc, S alpha, const T* a,
                          const T* x, S beta, T* y) {
  dispatch_gemv<T, S>(desc, alpha, a, x, beta, y);
}

// -- decision plumbing -------------------------------------------------------

void Dispatcher::ensure_seeded(const BucketKey& key, const core::OpDesc& desc,
                               std::optional<double> gpu_seed,
                               std::optional<double> emu_kernel_delta) {
  if (table_.contains(key)) return;
  const core::Advice advice = advisor_.advise(desc, /*iterations=*/1);
  const double gpu_s = gpu_seed.value_or(advice.gpu_seconds);
  std::optional<double> emu_s;
  if (emu_kernel_delta.has_value()) emu_s = gpu_s + *emu_kernel_delta;
  table_.seed(key, advice.cpu_seconds, gpu_s, emu_s);
}

Decision Dispatcher::plan_locked(const core::OpDesc& desc, bool gpu_ok,
                                 const OperandRegions& regions) {
  obs::Span span("dispatch.decide", obs::Category::Dispatch);
  const ResidencyClass cls = classify_locked(regions);
  BucketKey key = bucket_key(desc);
  key.residency = cls;

  // Residency-aware pricing of the GPU arm. Cold calls are priced as the
  // down payment on a warm run — gpu_time over the reuse horizon,
  // amortised — because a cold call's own full-transfer cost would route
  // every iterative workload to the CPU and residency would never warm.
  // Warm(-partial) calls are seeded with the cost of moving only the
  // bytes that are not already resident; from then on their bucket
  // learns from measured warm executions.
  std::optional<double> gpu_seed;
  std::optional<double> gpu_override;
  if (config_.residency != ResidencyPolicy::Off && gpu_ok) {
    if (cls == ResidencyClass::Cold) {
      const int horizon = std::max(1, config_.residency_horizon);
      if (const auto amortised = model_.gpu_time(desc, horizon)) {
        gpu_seed = *amortised / static_cast<double>(horizon);
        gpu_override = gpu_seed;
      }
    } else {
      gpu_seed = model_.gpu_time_with(desc, traffic_locked(desc, regions));
    }
  }

  // The emulated arm prices as the GPU arm with the kernel term swapped
  // (link traffic is identical — operands cross as fp64 either way), so
  // every GPU-side pricing refinement above carries over as a constant
  // kernel delta.
  const bool emu_ok = gpu_ok && emulation_eligible(desc);
  std::optional<double> emu_delta;
  std::optional<double> emu_override;
  if (emu_ok) {
    const int slices = blas::slices_for_budget(desc.budget);
    emu_delta =
        model_.emulated_kernel_time(desc, slices) - model_.kernel_time(desc);
    if (gpu_override.has_value()) emu_override = *gpu_override + *emu_delta;
  }

  ensure_seeded(key, desc, gpu_seed, emu_delta);
  const Route before = table_.find(key)->incumbent;
  Decision decision =
      table_.choose(key, gpu_ok, gpu_override, emu_ok, emu_override);
  decision.residency = cls;
  if (table_.find(key)->incumbent != before) {
    counters_.route_switches.fetch_add(1, std::memory_order_relaxed);
  }
  counters_.count_reason(decision.reason);
  return decision;
}

Decision Dispatcher::plan(const core::OpDesc& desc, bool gpu_ok,
                          const OperandRegions& regions) {
  std::lock_guard<std::mutex> lock(mutex_);
  return plan_locked(desc, gpu_ok, regions);
}

double Dispatcher::cpu_cost(const core::OpDesc& desc) const {
  core::OpDesc item = desc;
  item.batch = 1;  // per-call cost; coalescing is charged separately
  return model_.cpu_time(item, /*iterations=*/1);
}

double Dispatcher::noise_factor(const core::OpDesc& desc, Route route,
                                std::uint64_t seq) const {
  // The model's noise is deterministic per sample identity; salting with
  // the call sequence number makes successive calls of the same shape see
  // different (but reproducible) factors — what the EWMA + hysteresis
  // machinery is there to absorb.
  return noise_.factor(config_.profile.name, route_noise_tag(route),
                       desc.precision, desc.m, desc.n, desc.k,
                       static_cast<std::int64_t>(seq));
}

void Dispatcher::account_and_observe(const core::OpDesc& desc,
                                     const BucketKey& key,
                                     const Decision& decision, double cost_s,
                                     int batch, double h2d_moved,
                                     double h2d_skipped) {
  const std::uint64_t seq = seq_++;
  const auto b = static_cast<std::uint64_t>(batch);
  counters_.calls.fetch_add(b, std::memory_order_relaxed);
  (desc.op == core::KernelOp::Gemm ? counters_.gemm_calls
                                   : counters_.gemv_calls)
      .fetch_add(b, std::memory_order_relaxed);

  switch (decision.route) {
    case Route::Cpu:
      counters_.cpu_routed.fetch_add(b, std::memory_order_relaxed);
      counters_.add_seconds(counters_.cpu_seconds, cost_s);
      break;
    case Route::CpuBatched:
      counters_.batched_routed.fetch_add(b, std::memory_order_relaxed);
      counters_.coalesced_batches.fetch_add(1, std::memory_order_relaxed);
      counters_.add_seconds(counters_.cpu_seconds, cost_s);
      break;
    case Route::Gpu:
      counters_.gpu_routed.fetch_add(b, std::memory_order_relaxed);
      counters_.add_seconds(counters_.gpu_seconds, cost_s);
      break;
    case Route::GpuEmulated:
      counters_.emulated_routed.fetch_add(b, std::memory_order_relaxed);
      counters_.add_seconds(counters_.gpu_seconds, cost_s);
      break;
  }
  // Byte accounting is unconditional (policy Off included) so baselines
  // and residency runs compare on the same counter.
  if (h2d_moved > 0.0) {
    counters_.add_seconds(counters_.h2d_bytes_moved, h2d_moved);
  }
  if (h2d_skipped > 0.0) {
    counters_.add_seconds(counters_.h2d_bytes_skipped, h2d_skipped);
  }

  // Per-call amortised observation: for a coalesced batch the CPU arm
  // learns the amortised cost — that IS the cost of the CPU route while
  // coalescing is on.
  const double per_call = cost_s / static_cast<double>(batch);
  const double observed = per_call * noise_factor(desc, decision.route, seq);
  table_.observe(key, decision.route, observed);

  TraceRecord rec;
  rec.seq = seq;
  rec.device = config_.device_id;
  rec.op = desc.op;
  rec.precision = desc.precision;
  rec.mode = desc.mode;
  rec.bucket = key.bucket;
  rec.trans_a = desc.trans_a;
  rec.trans_b = desc.trans_b;
  rec.m = desc.m;
  rec.n = desc.n;
  rec.k = desc.k;
  rec.route = decision.route;
  rec.reason = decision.reason;
  rec.cpu_est_s = decision.cpu_est_s;
  rec.gpu_est_s = decision.gpu_est_s;
  rec.emu_est_s = decision.emu_est_s;
  rec.budget = desc.budget;
  rec.slices = decision.route == Route::GpuEmulated
                   ? blas::slices_for_budget(desc.budget)
                   : 0;
  rec.cost_s = per_call;
  rec.observed_s = observed;
  rec.batch = batch;
  rec.residency = decision.residency;
  rec.h2d_moved_bytes = h2d_moved;
  rec.h2d_skipped_bytes = h2d_skipped;
  rec.span_id = obs::Span::current();
  trace_.record(rec);

  if (obs::enabled()) {
    static obs::Counter& calls = obs::counter("dispatch.calls");
    static obs::Counter& cpu_routed = obs::counter("dispatch.cpu_routed");
    static obs::Counter& gpu_routed = obs::counter("dispatch.gpu_routed");
    static obs::Counter& batched_routed =
        obs::counter("dispatch.batched_routed");
    static obs::Counter& emulated_routed =
        obs::counter("dispatch.emulated_routed");
    calls.add(b);
    switch (decision.route) {
      case Route::Cpu:
        cpu_routed.add(b);
        break;
      case Route::CpuBatched:
        batched_routed.add(b);
        break;
      case Route::Gpu:
        gpu_routed.add(b);
        break;
      case Route::GpuEmulated:
        emulated_routed.add(b);
        break;
    }
  }
}

// -- CPU-side execution ------------------------------------------------------

template <typename T, typename S>
void Dispatcher::cpu_exec_gemm(const core::OpDesc& desc, S alpha, const T* a,
                               const T* b, S beta, T* c) {
  const auto m = static_cast<int>(desc.m);
  const auto n = static_cast<int>(desc.n);
  const auto k = static_cast<int>(desc.k);
  if constexpr (kIsHalf<T>) {
    blas::hgemm<T>(desc.trans_a, desc.trans_b, m, n, k, alpha, a,
                   static_cast<int>(desc.lda), b, static_cast<int>(desc.ldb),
                   beta, c, static_cast<int>(desc.ldc), cpu_->pool(),
                   cpu_->max_threads());
  } else {
    cpu_->do_gemm(desc.trans_a, desc.trans_b, m, n, k, alpha, a,
                  static_cast<int>(desc.lda), b, static_cast<int>(desc.ldb),
                  beta, c, static_cast<int>(desc.ldc));
  }
}

template <typename T, typename S>
void Dispatcher::cpu_exec_gemv(const core::OpDesc& desc, S alpha, const T* a,
                               const T* x, S beta, T* y) {
  const auto m = static_cast<int>(desc.m);
  const auto n = static_cast<int>(desc.n);
  if constexpr (kIsHalf<T>) {
    blas::hgemv<T>(desc.trans_a, m, n, alpha, a,
                   static_cast<int>(desc.lda), x, beta, y);
  } else {
    cpu_->do_gemv(desc.trans_a, m, n, alpha, a, static_cast<int>(desc.lda),
                  x, static_cast<int>(desc.incx), beta, y,
                  static_cast<int>(desc.incy));
  }
}

// -- synchronous dispatch ----------------------------------------------------

template <typename T, typename S>
void Dispatcher::dispatch_gemm(core::OpDesc desc, S alpha, const T* a,
                               const T* b, S beta, T* c) {
  obs::Span span("dispatch.gemm", obs::Category::Dispatch);
  std::lock_guard<std::mutex> lock(mutex_);
  if (desc.m <= 0 || desc.n <= 0) return;  // nothing to update
  desc.mode = effective_mode();
  const bool gpu_ok = gpu_supported(desc);
  const OperandRegions regions = gemm_regions(desc, a, b, c);
  const Decision decision = plan_locked(desc, gpu_ok, regions);
  BucketKey key = bucket_key(desc);
  key.residency = decision.residency;
  if (decision.route == Route::Gpu) {
    GpuJob job =
        enqueue_gemm_gpu_locked<T, S>(decision, desc, alpha, a, b, beta, c);
    finish_gpu_job_locked(job, /*overlapped=*/false);
  } else if (decision.route == Route::GpuEmulated) {
    // Only fp64 traffic is ever emulation-eligible, so this branch is
    // unreachable for other T; the constexpr guard keeps those
    // instantiations from referencing the double-only enqueue path.
    if constexpr (std::is_same_v<T, double>) {
      GpuJob job =
          enqueue_gemm_emulated_gpu_locked(decision, desc, alpha, a, b, beta,
                                           c);
      finish_gpu_job_locked(job, /*overlapped=*/false);
    }
  } else {
    cpu_exec_gemm<T, S>(desc, alpha, a, b, beta, c);
    note_host_output_locked(regions.c);
    account_and_observe(desc, key, decision, cpu_cost(desc), 1);
  }
}

template <typename T, typename S>
void Dispatcher::dispatch_gemv(core::OpDesc desc, S alpha, const T* a,
                               const T* x, S beta, T* y) {
  obs::Span span("dispatch.gemv", obs::Category::Dispatch);
  std::lock_guard<std::mutex> lock(mutex_);
  if (desc.m <= 0 || desc.n <= 0) return;
  desc.mode = effective_mode();
  const bool gpu_ok = gpu_supported(desc);
  const OperandRegions regions = gemv_regions(desc, a, x, y);
  const Decision decision = plan_locked(desc, gpu_ok, regions);
  BucketKey key = bucket_key(desc);
  key.residency = decision.residency;
  if (decision.route == Route::Gpu) {
    GpuJob job =
        enqueue_gemv_gpu_locked<T, S>(decision, desc, alpha, a, x, beta, y);
    finish_gpu_job_locked(job, /*overlapped=*/false);
  } else {
    cpu_exec_gemv<T, S>(desc, alpha, a, x, beta, y);
    note_host_output_locked(regions.c);
    account_and_observe(desc, key, decision, cpu_cost(desc), 1);
  }
}

template <typename T, typename S>
void Dispatcher::run_gemm_cpu(const Decision& decision,
                              const core::OpDesc& desc, S alpha, const T* a,
                              const T* b, S beta, T* c) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (desc.m <= 0 || desc.n <= 0) return;
  BucketKey key = bucket_key(desc);
  key.residency = decision.residency;
  ensure_seeded(key, desc);
  cpu_exec_gemm<T, S>(desc, alpha, a, b, beta, c);
  note_host_output_locked(
      matrix_region(c, sizeof(T), desc.ldc, desc.m, desc.n));
  account_and_observe(desc, key, decision, cpu_cost(desc), 1);
}

template <typename T, typename S>
void Dispatcher::run_gemv_cpu(const Decision& decision,
                              const core::OpDesc& desc, S alpha, const T* a,
                              const T* x, S beta, T* y) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (desc.m <= 0 || desc.n <= 0) return;
  BucketKey key = bucket_key(desc);
  key.residency = decision.residency;
  ensure_seeded(key, desc);
  cpu_exec_gemv<T, S>(desc, alpha, a, x, beta, y);
  note_host_output_locked(
      vector_region(y, sizeof(T), desc.y_len(), desc.incy));
  account_and_observe(desc, key, decision, cpu_cost(desc), 1);
}

template <typename T>
void Dispatcher::run_gemm_coalesced(const core::OpDesc& desc, T alpha,
                                    const T* const* a, const T* const* b,
                                    T beta, T* const* c, int batch) {
  obs::Span span("dispatch.coalesced_batch", obs::Category::Dispatch);
  std::lock_guard<std::mutex> lock(mutex_);
  if (desc.m <= 0 || desc.n <= 0 || batch <= 0) return;
  const BucketKey key = bucket_key(desc);
  ensure_seeded(key, desc);

  blas::gemm_batched<T>(desc.trans_a, desc.trans_b,
                        static_cast<int>(desc.m), static_cast<int>(desc.n),
                        static_cast<int>(desc.k), alpha, a,
                        static_cast<int>(desc.lda), b,
                        static_cast<int>(desc.ldb), beta, c,
                        static_cast<int>(desc.ldc), batch, cpu_->pool(),
                        cpu_->max_threads());
  for (int i = 0; i < batch; ++i) {
    note_host_output_locked(
        matrix_region(c[i], sizeof(T), desc.ldc, desc.m, desc.n));
  }

  core::OpDesc batched = desc;
  batched.batch = batch;
  const double cost = model_.cpu_time(batched, /*iterations=*/1);

  Decision decision;
  decision.route = Route::CpuBatched;
  decision.reason = Reason::Coalesced;
  if (const BucketState* state = table_.find(key)) {
    decision.cpu_est_s = state->cpu.ewma_s;
    decision.gpu_est_s = state->gpu.ewma_s;
  }
  account_and_observe(desc, key, decision, cost, batch);
}

template <typename T>
void Dispatcher::run_gemv_coalesced(const core::OpDesc& desc, T alpha,
                                    const T* const* a, const T* const* x,
                                    T beta, T* const* y, int batch) {
  obs::Span span("dispatch.coalesced_batch", obs::Category::Dispatch);
  std::lock_guard<std::mutex> lock(mutex_);
  if (desc.m <= 0 || desc.n <= 0 || batch <= 0) return;
  const BucketKey key = bucket_key(desc);
  ensure_seeded(key, desc);

  blas::gemv_batched<T>(desc.trans_a, static_cast<int>(desc.m),
                        static_cast<int>(desc.n), alpha, a,
                        static_cast<int>(desc.lda), x,
                        static_cast<int>(desc.incx), beta, y,
                        static_cast<int>(desc.incy), batch, cpu_->pool(),
                        cpu_->max_threads());
  for (int i = 0; i < batch; ++i) {
    note_host_output_locked(
        vector_region(y[i], sizeof(T), desc.y_len(), desc.incy));
  }

  core::OpDesc batched = desc;
  batched.batch = batch;
  const double cost = model_.cpu_time(batched, /*iterations=*/1);

  Decision decision;
  decision.route = Route::CpuBatched;
  decision.reason = Reason::Coalesced;
  if (const BucketState* state = table_.find(key)) {
    decision.cpu_est_s = state->cpu.ewma_s;
    decision.gpu_est_s = state->gpu.ewma_s;
  }
  account_and_observe(desc, key, decision, cost, batch);
}

// -- GPU path ----------------------------------------------------------------

void Dispatcher::upload_operand_locked(sim::Stream& stream, sim::Buffer& dst,
                                       const sim::Buffer& src,
                                       std::size_t bytes,
                                       const Region& region, GpuJob& job) {
  if (config_.residency == ResidencyPolicy::Track && region.valid() &&
      residency_.resident_clean(region)) {
    // The device copy is current. Refresh the simulated storage so the
    // kernel still computes from host truth (a caching runtime would
    // reuse its live device buffer outright) without a modelled DMA.
    std::memcpy(dst.data(), src.data(), bytes);
    job.h2d_skipped += static_cast<double>(bytes);
    count_residency_hit();
    return;
  }
  device_.memcpy_h2d_async(stream, dst, src, bytes);
  job.h2d_moved += static_cast<double>(bytes);
  if (config_.residency == ResidencyPolicy::Track && region.valid()) {
    residency_.note_upload(region);
    count_residency_miss();
  }
}

void Dispatcher::place_managed_locked(sim::Buffer& buffer,
                                      const Region& region, GpuJob& job) {
  const double bytes = static_cast<double>(buffer.bytes());
  if (tracking_enabled() && region.valid() &&
      residency_.resident_clean(region)) {
    // Pages were migrated by an earlier kernel; first touch is free.
    buffer.set_residency(sim::Residency::Device);
    job.h2d_skipped += bytes;
    count_residency_hit();
    return;
  }
  job.h2d_moved += bytes;  // fault-migrates inside the kernel enqueue
  if (tracking_enabled() && region.valid()) {
    residency_.note_upload(region);
    count_residency_miss();
  }
}

template <typename T, typename S>
Dispatcher::GpuJob Dispatcher::enqueue_gemm_gpu_locked(
    const Decision& decision, const core::OpDesc& desc, S alpha, const T* a,
    const T* b, S beta, T* c) {
  obs::Span span("dispatch.gpu_enqueue", obs::Category::Dispatch);
  GpuJob job;
  job.active = true;
  job.decision = decision;
  job.desc = desc;
  job.key = bucket_key(desc);
  job.key.residency = decision.residency;

  sim::Stream& s = gpu_stream_;
  job.submit_floor = std::max(s.tail(), device_.now());

  // Operands are staged tightly in their STORED shapes — the device
  // kernels consume the same layouts the transposes describe.
  const std::size_t es = sizeof(T);
  const auto rows_a = desc.rows_a();
  const auto cols_a = desc.cols_a();
  const auto rows_b = desc.rows_b();
  const auto cols_b = desc.cols_b();
  const auto m = desc.m;
  const auto n = desc.n;
  const auto ab = es * static_cast<std::size_t>(rows_a) *
                  static_cast<std::size_t>(cols_a);
  const auto bb = es * static_cast<std::size_t>(rows_b) *
                  static_cast<std::size_t>(cols_b);
  const auto cb =
      es * static_cast<std::size_t>(m) * static_cast<std::size_t>(n);
  const OperandRegions regions = gemm_regions(desc, a, b, c);
  job.out_region = regions.c;
  const std::int64_t ldc = desc.ldc;

  if (config_.residency == ResidencyPolicy::FirstTouch) {
    // USM placement: operands live in managed memory and the kernel's
    // page-migration model moves only what is not already resident.
    sim::Buffer ma = device_.alloc_managed(ab);
    sim::Buffer mb = device_.alloc_managed(bb);
    sim::Buffer mc = device_.alloc_managed(cb);
    pack_dense(ma.as<T>(), a, desc.lda, rows_a, cols_a);
    pack_dense(mb.as<T>(), b, desc.ldb, rows_b, cols_b);
    pack_dense(mc.as<T>(), c, desc.ldc, m, n);
    place_managed_locked(ma, regions.a, job);
    place_managed_locked(mb, regions.b, job);
    place_managed_locked(mc, regions.c, job);
    device_.gemm<T>(desc.trans_a, desc.trans_b, static_cast<int>(m),
                    static_cast<int>(n), static_cast<int>(desc.k), alpha, ma,
                    static_cast<int>(rows_a), mb, static_cast<int>(rows_b),
                    beta, mc, static_cast<int>(m), &s);
    // The host reads the result at the join; charge the page writeback
    // on the stream so it lands inside this job's measured span
    // (SimGpu::host_access_managed would charge the host clock instead).
    s.enqueue(
        device_.link_model().usm_writeback_time(static_cast<double>(cb)),
        "usm-writeback");
    job.done = s.tail();
    T* staged = mc.as<T>();
    job.unpack = [staged, c, ldc, m, n]() {
      unpack_dense(c, ldc, staged, m, n);
    };
    job.buffers.reserve(3);
    job.buffers.push_back(std::move(ma));
    job.buffers.push_back(std::move(mb));
    job.buffers.push_back(std::move(mc));
  } else {
    sim::Buffer ha = device_.alloc_host(ab);
    sim::Buffer hb = device_.alloc_host(bb);
    sim::Buffer hc = device_.alloc_host(cb);
    pack_dense(ha.as<T>(), a, desc.lda, rows_a, cols_a);
    pack_dense(hb.as<T>(), b, desc.ldb, rows_b, cols_b);
    // GPU-BLOB uploads all three structures (paper §III-B2), so C crosses
    // the link even when beta == 0 — matching the analytic cost exactly.
    pack_dense(hc.as<T>(), c, desc.ldc, m, n);

    sim::Buffer da = device_.alloc_device(ab);
    sim::Buffer db = device_.alloc_device(bb);
    sim::Buffer dc = device_.alloc_device(cb);
    // Each upload re-checks the tracker AT ENQUEUE TIME (not plan time),
    // so sequential enqueues within one queue cycle warm each other —
    // the second batch member sharing an A panel never re-charges it.
    upload_operand_locked(s, da, ha, ab, regions.a, job);
    upload_operand_locked(s, db, hb, bb, regions.b, job);
    upload_operand_locked(s, dc, hc, cb, regions.c, job);
    device_.gemm<T>(desc.trans_a, desc.trans_b, static_cast<int>(m),
                    static_cast<int>(n), static_cast<int>(desc.k), alpha, da,
                    static_cast<int>(rows_a), db, static_cast<int>(rows_b),
                    beta, dc, static_cast<int>(m), &s);
    device_.memcpy_d2h_async(s, hc, dc, cb);
    job.done = s.tail();

    // Buffer storage addresses are stable across Buffer moves, so the raw
    // pointer captured here stays valid inside job.buffers.
    T* staged = hc.as<T>();
    job.unpack = [staged, c, ldc, m, n]() {
      unpack_dense(c, ldc, staged, m, n);
    };
    job.buffers.reserve(6);
    job.buffers.push_back(std::move(ha));
    job.buffers.push_back(std::move(hb));
    job.buffers.push_back(std::move(hc));
    job.buffers.push_back(std::move(da));
    job.buffers.push_back(std::move(db));
    job.buffers.push_back(std::move(dc));
  }
  // The kernel overwrites the device copy of C: dirty until the result
  // is downloaded and unpacked at the join.
  if (tracking_enabled()) residency_.note_device_write(regions.c);
  return job;
}

Dispatcher::GpuJob Dispatcher::enqueue_gemm_emulated_gpu_locked(
    const Decision& decision, const core::OpDesc& desc, double alpha,
    const double* a, const double* b, double beta, double* c) {
  obs::Span span("dispatch.gpu_enqueue", obs::Category::Dispatch);
  GpuJob job;
  job.active = true;
  job.decision = decision;
  job.desc = desc;
  job.key = bucket_key(desc);
  job.key.residency = decision.residency;

  const int slices = blas::slices_for_budget(desc.budget);

  sim::Stream& s = gpu_stream_;
  job.submit_floor = std::max(s.tail(), device_.now());

  // Staging is identical to the native GPU path — the operands cross the
  // link as fp64 and are sliced on the device — so the measured span
  // differs from the native arm exactly by the kernel term.
  using T = double;
  const std::size_t es = sizeof(T);
  const auto rows_a = desc.rows_a();
  const auto cols_a = desc.cols_a();
  const auto rows_b = desc.rows_b();
  const auto cols_b = desc.cols_b();
  const auto m = desc.m;
  const auto n = desc.n;
  const auto ab = es * static_cast<std::size_t>(rows_a) *
                  static_cast<std::size_t>(cols_a);
  const auto bb = es * static_cast<std::size_t>(rows_b) *
                  static_cast<std::size_t>(cols_b);
  const auto cb =
      es * static_cast<std::size_t>(m) * static_cast<std::size_t>(n);
  const OperandRegions regions = gemm_regions(desc, a, b, c);
  job.out_region = regions.c;
  const std::int64_t ldc = desc.ldc;

  if (config_.residency == ResidencyPolicy::FirstTouch) {
    sim::Buffer ma = device_.alloc_managed(ab);
    sim::Buffer mb = device_.alloc_managed(bb);
    sim::Buffer mc = device_.alloc_managed(cb);
    pack_dense(ma.as<T>(), a, desc.lda, rows_a, cols_a);
    pack_dense(mb.as<T>(), b, desc.ldb, rows_b, cols_b);
    pack_dense(mc.as<T>(), c, desc.ldc, m, n);
    place_managed_locked(ma, regions.a, job);
    place_managed_locked(mb, regions.b, job);
    place_managed_locked(mc, regions.c, job);
    device_.gemm_emulated(desc.trans_a, desc.trans_b, static_cast<int>(m),
                          static_cast<int>(n), static_cast<int>(desc.k),
                          alpha, ma, static_cast<int>(rows_a), mb,
                          static_cast<int>(rows_b), beta, mc,
                          static_cast<int>(m), slices, &s);
    s.enqueue(
        device_.link_model().usm_writeback_time(static_cast<double>(cb)),
        "usm-writeback");
    job.done = s.tail();
    T* staged = mc.as<T>();
    job.unpack = [staged, c, ldc, m, n]() {
      unpack_dense(c, ldc, staged, m, n);
    };
    job.buffers.reserve(3);
    job.buffers.push_back(std::move(ma));
    job.buffers.push_back(std::move(mb));
    job.buffers.push_back(std::move(mc));
  } else {
    sim::Buffer ha = device_.alloc_host(ab);
    sim::Buffer hb = device_.alloc_host(bb);
    sim::Buffer hc = device_.alloc_host(cb);
    pack_dense(ha.as<T>(), a, desc.lda, rows_a, cols_a);
    pack_dense(hb.as<T>(), b, desc.ldb, rows_b, cols_b);
    pack_dense(hc.as<T>(), c, desc.ldc, m, n);

    sim::Buffer da = device_.alloc_device(ab);
    sim::Buffer db = device_.alloc_device(bb);
    sim::Buffer dc = device_.alloc_device(cb);
    upload_operand_locked(s, da, ha, ab, regions.a, job);
    upload_operand_locked(s, db, hb, bb, regions.b, job);
    upload_operand_locked(s, dc, hc, cb, regions.c, job);
    device_.gemm_emulated(desc.trans_a, desc.trans_b, static_cast<int>(m),
                          static_cast<int>(n), static_cast<int>(desc.k),
                          alpha, da, static_cast<int>(rows_a), db,
                          static_cast<int>(rows_b), beta, dc,
                          static_cast<int>(m), slices, &s);
    device_.memcpy_d2h_async(s, hc, dc, cb);
    job.done = s.tail();

    T* staged = hc.as<T>();
    job.unpack = [staged, c, ldc, m, n]() {
      unpack_dense(c, ldc, staged, m, n);
    };
    job.buffers.reserve(6);
    job.buffers.push_back(std::move(ha));
    job.buffers.push_back(std::move(hb));
    job.buffers.push_back(std::move(hc));
    job.buffers.push_back(std::move(da));
    job.buffers.push_back(std::move(db));
    job.buffers.push_back(std::move(dc));
  }
  if (tracking_enabled()) residency_.note_device_write(regions.c);
  return job;
}

template <typename T, typename S>
Dispatcher::GpuJob Dispatcher::enqueue_gemv_gpu_locked(
    const Decision& decision, const core::OpDesc& desc, S alpha, const T* a,
    const T* x, S beta, T* y) {
  obs::Span span("dispatch.gpu_enqueue", obs::Category::Dispatch);
  GpuJob job;
  job.active = true;
  job.decision = decision;
  job.desc = desc;
  job.key = bucket_key(desc);
  job.key.residency = decision.residency;

  sim::Stream& s = gpu_stream_;
  job.submit_floor = std::max(s.tail(), device_.now());

  const std::size_t es = sizeof(T);
  const auto m = desc.m;
  const auto n = desc.n;
  const auto ab =
      es * static_cast<std::size_t>(m) * static_cast<std::size_t>(n);
  const auto xb = es * static_cast<std::size_t>(desc.x_len());
  const auto yb = es * static_cast<std::size_t>(desc.y_len());
  const OperandRegions regions = gemv_regions(desc, a, x, y);
  job.out_region = regions.c;

  if (config_.residency == ResidencyPolicy::FirstTouch) {
    sim::Buffer ma = device_.alloc_managed(ab);
    sim::Buffer mx = device_.alloc_managed(xb);
    sim::Buffer my = device_.alloc_managed(yb);
    pack_dense(ma.as<T>(), a, desc.lda, m, n);
    std::memcpy(mx.data(), x, xb);
    std::memcpy(my.data(), y, yb);
    place_managed_locked(ma, regions.a, job);
    place_managed_locked(mx, regions.b, job);
    place_managed_locked(my, regions.c, job);
    device_.gemv<T>(desc.trans_a, static_cast<int>(m), static_cast<int>(n),
                    alpha, ma, static_cast<int>(m), mx, beta, my, &s);
    s.enqueue(
        device_.link_model().usm_writeback_time(static_cast<double>(yb)),
        "usm-writeback");
    job.done = s.tail();
    T* staged = my.as<T>();
    job.unpack = [staged, y, yb]() { std::memcpy(y, staged, yb); };
    job.buffers.reserve(3);
    job.buffers.push_back(std::move(ma));
    job.buffers.push_back(std::move(mx));
    job.buffers.push_back(std::move(my));
  } else {
    sim::Buffer ha = device_.alloc_host(ab);
    sim::Buffer hx = device_.alloc_host(xb);
    sim::Buffer hy = device_.alloc_host(yb);
    pack_dense(ha.as<T>(), a, desc.lda, m, n);
    std::memcpy(hx.data(), x, xb);
    std::memcpy(hy.data(), y, yb);

    sim::Buffer da = device_.alloc_device(ab);
    sim::Buffer dx = device_.alloc_device(xb);
    sim::Buffer dy = device_.alloc_device(yb);
    upload_operand_locked(s, da, ha, ab, regions.a, job);
    upload_operand_locked(s, dx, hx, xb, regions.b, job);
    upload_operand_locked(s, dy, hy, yb, regions.c, job);
    device_.gemv<T>(desc.trans_a, static_cast<int>(m), static_cast<int>(n),
                    alpha, da, static_cast<int>(m), dx, beta, dy, &s);
    device_.memcpy_d2h_async(s, hy, dy, yb);
    job.done = s.tail();

    T* staged = hy.as<T>();
    job.unpack = [staged, y, yb]() { std::memcpy(y, staged, yb); };
    job.buffers.reserve(6);
    job.buffers.push_back(std::move(ha));
    job.buffers.push_back(std::move(hx));
    job.buffers.push_back(std::move(hy));
    job.buffers.push_back(std::move(da));
    job.buffers.push_back(std::move(dx));
    job.buffers.push_back(std::move(dy));
  }
  if (tracking_enabled()) residency_.note_device_write(regions.c);
  return job;
}

template <typename T, typename S>
Dispatcher::GpuJob Dispatcher::enqueue_gemm_gpu(const Decision& decision,
                                                const core::OpDesc& desc,
                                                S alpha, const T* a,
                                                const T* b, S beta, T* c) {
  std::lock_guard<std::mutex> lock(mutex_);
  return enqueue_gemm_gpu_locked<T, S>(decision, desc, alpha, a, b, beta, c);
}

template <typename T, typename S>
Dispatcher::GpuJob Dispatcher::enqueue_gemv_gpu(const Decision& decision,
                                                const core::OpDesc& desc,
                                                S alpha, const T* a,
                                                const T* x, S beta, T* y) {
  std::lock_guard<std::mutex> lock(mutex_);
  return enqueue_gemv_gpu_locked<T, S>(decision, desc, alpha, a, x, beta, y);
}

Dispatcher::GpuJob Dispatcher::enqueue_gemm_emulated_gpu(
    const Decision& decision, const core::OpDesc& desc, double alpha,
    const double* a, const double* b, double beta, double* c) {
  std::lock_guard<std::mutex> lock(mutex_);
  return enqueue_gemm_emulated_gpu_locked(decision, desc, alpha, a, b, beta,
                                          c);
}

void Dispatcher::finish_gpu_job_locked(GpuJob& job, bool overlapped) {
  if (!job.active) return;
  obs::Span span("dispatch.gpu_join", obs::Category::Dispatch);
  span.set_virtual(job.submit_floor, job.done - job.submit_floor);
  // Join only this job's completion time — later enqueues on the stream
  // must not be charged to this call (cudaEvent-style sync, not a full
  // stream synchronize).
  device_.clock().advance_to(job.done);
  if (job.unpack) job.unpack();
  // The device result has been unpacked into the client buffer: host and
  // device copies agree, so the output region is resident-clean — the
  // next iteration of a solver that feeds C/y back in uploads nothing.
  if (tracking_enabled()) residency_.note_device_result(job.out_region);
  if (overlapped) {
    counters_.overlapped_gpu_calls.fetch_add(1, std::memory_order_relaxed);
  }
  const double cost = job.done - job.submit_floor;
  account_and_observe(job.desc, job.key, job.decision, cost, 1,
                      job.h2d_moved, job.h2d_skipped);
  job.buffers.clear();
  job.unpack = nullptr;
  job.active = false;
}

void Dispatcher::finish_gpu_job(GpuJob& job, bool overlapped) {
  std::lock_guard<std::mutex> lock(mutex_);
  finish_gpu_job_locked(job, overlapped);
}

// -- cost oracle -------------------------------------------------------------

Dispatcher::Costs Dispatcher::modelled_costs(const core::OpDesc& desc) const {
  std::lock_guard<std::mutex> lock(mutex_);
  Costs costs;
  costs.cpu_s = cpu_cost(desc);
  if (gpu_supported(desc)) {
    const auto gpu = model_.gpu_time(desc, /*iterations=*/1);
    costs.gpu_s = gpu.value_or(std::numeric_limits<double>::infinity());
    if (std::isfinite(costs.gpu_s) && emulation_eligible(desc)) {
      const int slices = blas::slices_for_budget(desc.budget);
      costs.emu_s = costs.gpu_s + model_.emulated_kernel_time(desc, slices) -
                    model_.kernel_time(desc);
    }
  } else {
    costs.gpu_s = std::numeric_limits<double>::infinity();
  }
  return costs;
}

Route Dispatcher::oracle_route(const core::OpDesc& desc) const {
  const Costs costs = modelled_costs(desc);
  if (costs.emu_s < costs.cpu_s && costs.emu_s < costs.gpu_s) {
    return Route::GpuEmulated;
  }
  return costs.gpu_s < costs.cpu_s ? Route::Gpu : Route::Cpu;
}

// -- calibration -------------------------------------------------------------

CalibrationData Dispatcher::make_calibration() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CalibrationData data;
  data.personality = config_.personality.name;
  data.profile = config_.profile.name;
  data.nspace = config_.nspace;
  data.entries = table_.entries();
  data.blocking_f32 = tuned_f32_;
  data.blocking_f64 = tuned_f64_;
  return data;
}

void Dispatcher::apply_calibration(const CalibrationData& data) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, state] : data.entries) {
    table_.restore(key, state);
  }
  if (data.blocking_f32) tuned_f32_ = data.blocking_f32;
  if (data.blocking_f64) tuned_f64_ = data.blocking_f64;
  counters_.calibration_loads.fetch_add(1, std::memory_order_relaxed);
}

bool Dispatcher::save_calibration(const std::string& path) const {
  return save_calibration_file(path, make_calibration());
}

LoadStatus Dispatcher::load_calibration(const std::string& path) {
  const LoadResult result = load_calibration_file(
      path, config_.personality.name, config_.profile.name, config_.nspace);
  if (result.status == LoadStatus::Ok) {
    if (!result.warning.empty()) {
      std::fprintf(stderr, "blob-dispatch: %s\n", result.warning.c_str());
    }
    apply_calibration(result.data);
  }
  return result.status;
}

// -- explicit instantiations -------------------------------------------------

template void Dispatcher::run_gemm<float, float>(const core::OpDesc&, float,
                                                 const float*, const float*,
                                                 float, float*);
template void Dispatcher::run_gemm<double, double>(const core::OpDesc&,
                                                   double, const double*,
                                                   const double*, double,
                                                   double*);
template void Dispatcher::run_gemm<blas::f16, float>(const core::OpDesc&,
                                                     float, const blas::f16*,
                                                     const blas::f16*, float,
                                                     blas::f16*);
template void Dispatcher::run_gemm<blas::bf16, float>(
    const core::OpDesc&, float, const blas::bf16*, const blas::bf16*, float,
    blas::bf16*);
template void Dispatcher::run_gemv<float, float>(const core::OpDesc&, float,
                                                 const float*, const float*,
                                                 float, float*);
template void Dispatcher::run_gemv<double, double>(const core::OpDesc&,
                                                   double, const double*,
                                                   const double*, double,
                                                   double*);
template void Dispatcher::run_gemv<blas::f16, float>(const core::OpDesc&,
                                                     float, const blas::f16*,
                                                     const blas::f16*, float,
                                                     blas::f16*);
template void Dispatcher::run_gemv<blas::bf16, float>(
    const core::OpDesc&, float, const blas::bf16*, const blas::bf16*, float,
    blas::bf16*);
template void Dispatcher::run_gemm_cpu<float, float>(const Decision&,
                                                     const core::OpDesc&,
                                                     float, const float*,
                                                     const float*, float,
                                                     float*);
template void Dispatcher::run_gemm_cpu<double, double>(const Decision&,
                                                       const core::OpDesc&,
                                                       double, const double*,
                                                       const double*, double,
                                                       double*);
template void Dispatcher::run_gemv_cpu<float, float>(const Decision&,
                                                     const core::OpDesc&,
                                                     float, const float*,
                                                     const float*, float,
                                                     float*);
template void Dispatcher::run_gemv_cpu<double, double>(const Decision&,
                                                       const core::OpDesc&,
                                                       double, const double*,
                                                       const double*, double,
                                                       double*);
template void Dispatcher::run_gemm_coalesced<float>(const core::OpDesc&,
                                                    float,
                                                    const float* const*,
                                                    const float* const*,
                                                    float, float* const*,
                                                    int);
template void Dispatcher::run_gemm_coalesced<double>(const core::OpDesc&,
                                                     double,
                                                     const double* const*,
                                                     const double* const*,
                                                     double, double* const*,
                                                     int);
template void Dispatcher::run_gemv_coalesced<float>(const core::OpDesc&,
                                                    float,
                                                    const float* const*,
                                                    const float* const*,
                                                    float, float* const*,
                                                    int);
template void Dispatcher::run_gemv_coalesced<double>(const core::OpDesc&,
                                                     double,
                                                     const double* const*,
                                                     const double* const*,
                                                     double, double* const*,
                                                     int);
template Dispatcher::GpuJob Dispatcher::enqueue_gemm_gpu<float, float>(
    const Decision&, const core::OpDesc&, float, const float*, const float*,
    float, float*);
template Dispatcher::GpuJob Dispatcher::enqueue_gemm_gpu<double, double>(
    const Decision&, const core::OpDesc&, double, const double*,
    const double*, double, double*);
template Dispatcher::GpuJob Dispatcher::enqueue_gemv_gpu<float, float>(
    const Decision&, const core::OpDesc&, float, const float*, const float*,
    float, float*);
template Dispatcher::GpuJob Dispatcher::enqueue_gemv_gpu<double, double>(
    const Decision&, const core::OpDesc&, double, const double*,
    const double*, double, double*);

}  // namespace blob::dispatch
