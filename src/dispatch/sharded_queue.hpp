#pragma once
// ShardedQueue: the bounded MPMC channel behind every admission path.
//
// One instance owns N independent shards; producers address a shard
// explicitly (the serve-layer Router picks the target device, the
// single-device AdmissionQueue always uses shard 0) and consumers drain
// their own shard. Shards never share a lock, so a fleet of device
// workers contends only with the producers that were routed to it —
// this is the sharded refactor of the original single admission queue.
//
// Semantics:
//  * push() blocks while the shard is at capacity (backpressure) and
//    returns false once the queue is closed — a rejected item was never
//    enqueued and is returned to the caller untouched.
//  * pop()/pop_batch() block until an item arrives or the queue is
//    closed; after close() they drain whatever is left, then signal
//    exhaustion (nullopt / 0). Nothing already accepted is ever lost.
//  * close() is idempotent and safe from any thread, including while
//    producers sit blocked in push() (shutdown-while-full): they wake
//    and see the rejection.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

namespace blob::dispatch {

template <typename T>
class ShardedQueue {
 public:
  /// `capacity` bounds each shard (0 = unbounded; push never blocks).
  explicit ShardedQueue(std::size_t shards, std::size_t capacity = 0)
      : capacity_(capacity) {
    if (shards == 0) shards = 1;
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  ShardedQueue(const ShardedQueue&) = delete;
  ShardedQueue& operator=(const ShardedQueue&) = delete;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  /// Blocking enqueue with backpressure. False = queue closed (the item
  /// is left in `item`, untouched, so the caller can fail it properly).
  bool push(std::size_t shard, T& item) {
    Shard& s = *shards_[shard];
    std::unique_lock<std::mutex> lock(s.mutex);
    s.not_full.wait(lock, [&] {
      return closed_ || capacity_ == 0 || s.items.size() < capacity_;
    });
    if (closed_) return false;
    s.items.push_back(std::move(item));
    lock.unlock();
    s.not_empty.notify_one();
    return true;
  }

  bool push(std::size_t shard, T&& item) { return push(shard, item); }

  /// Non-blocking enqueue: false when the shard is full or closed.
  bool try_push(std::size_t shard, T& item) {
    Shard& s = *shards_[shard];
    {
      std::lock_guard<std::mutex> lock(s.mutex);
      if (closed_ || (capacity_ != 0 && s.items.size() >= capacity_)) {
        return false;
      }
      s.items.push_back(std::move(item));
    }
    s.not_empty.notify_one();
    return true;
  }

  /// Blocking dequeue; nullopt once the queue is closed AND the shard
  /// has been fully drained.
  std::optional<T> pop(std::size_t shard) {
    Shard& s = *shards_[shard];
    std::unique_lock<std::mutex> lock(s.mutex);
    s.not_empty.wait(lock, [&] { return closed_ || !s.items.empty(); });
    if (s.items.empty()) return std::nullopt;
    std::optional<T> item(std::move(s.items.front()));
    s.items.pop_front();
    lock.unlock();
    s.not_full.notify_one();
    return item;
  }

  /// Blocking batch dequeue: waits for at least one item (or close),
  /// then moves up to `max` items into `out`. Returns the number taken;
  /// 0 means closed-and-drained. Taking the whole backlog in one lock
  /// hold is what makes drain cycles (and their coalescing window) cheap.
  std::size_t pop_batch(std::size_t shard, std::size_t max,
                        std::vector<T>& out) {
    Shard& s = *shards_[shard];
    std::unique_lock<std::mutex> lock(s.mutex);
    s.not_empty.wait(lock, [&] { return closed_ || !s.items.empty(); });
    const std::size_t taken = take_locked(s, max, out);
    lock.unlock();
    if (taken > 0) s.not_full.notify_all();
    return taken;
  }

  /// Non-blocking batch dequeue (the admission queue's second sweep).
  std::size_t try_pop_batch(std::size_t shard, std::size_t max,
                            std::vector<T>& out) {
    Shard& s = *shards_[shard];
    std::unique_lock<std::mutex> lock(s.mutex);
    const std::size_t taken = take_locked(s, max, out);
    lock.unlock();
    if (taken > 0) s.not_full.notify_all();
    return taken;
  }

  /// Reject all future pushes and wake every blocked producer and
  /// consumer. Items already accepted stay poppable (drain-on-close).
  void close() {
    closed_.store(true, std::memory_order_release);
    // Acquire each shard lock (empty critical section) before notifying:
    // a waiter that evaluated its predicate just before the store is
    // guaranteed to be back in wait() when the notification lands.
    for (auto& shard : shards_) {
      { std::lock_guard<std::mutex> lock(shard->mutex); }
      shard->not_empty.notify_all();
      shard->not_full.notify_all();
    }
  }

  [[nodiscard]] bool closed() const {
    return closed_.load(std::memory_order_acquire);
  }

  /// Current backlog of one shard (a racy snapshot, for load metrics).
  [[nodiscard]] std::size_t depth(std::size_t shard) const {
    Shard& s = *shards_[shard];
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.items.size();
  }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::condition_variable not_empty;
    std::condition_variable not_full;
    std::deque<T> items;
  };

  static std::size_t take_locked(Shard& s, std::size_t max,
                                 std::vector<T>& out) {
    std::size_t taken = 0;
    while (taken < max && !s.items.empty()) {
      out.push_back(std::move(s.items.front()));
      s.items.pop_front();
      ++taken;
    }
    return taken;
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  const std::size_t capacity_;
  std::atomic<bool> closed_{false};
};

}  // namespace blob::dispatch
