#pragma once
// Persistent calibration store for the online dispatcher.
//
// A warm dispatcher is the whole point of calibrating online: the decision
// table learned during one serving run round-trips through a small JSON
// file and is restored on the next start, so the losing backend is not
// re-probed on every restart. The file is versioned and keyed by the
// active CPU library personality and simulated-GPU system profile —
// timings learned against AOCL-on-Dawn say nothing about NVPL-on-Isambard,
// so a mismatch rejects the file (the caller then falls back to
// advisor-seeded cold start).
//
// The store also carries the autotuned GEMM blocking (satellite of
// blas::autotune_blocking): tuned (MC, KC, NC) persist next to the routing
// table so a restart skips both re-exploration and re-tuning.

#include <iosfwd>
#include <map>
#include <optional>
#include <string>

#include "blas/gemm.hpp"
#include "dispatch/decision_table.hpp"

namespace blob::dispatch {

/// Bump when the on-disk schema changes; older files are rejected —
/// except v2/v3, which read gracefully (see load_calibration).
/// v2: bucket keys carry the transpose flags (ta/tb).
/// v3: bucket keys carry the residency class; warm and cold cost entries
///     persist per shape bucket. v2 entries seed the cold side.
/// v4: bucket keys carry the error budget and bucket states carry the
///     emulated-arm estimate. Both are omitted for exact-budget entries,
///     so a table that never saw relaxed traffic serialises byte-
///     identically to v3 content (version field aside); v3 files load
///     with every entry exact.
inline constexpr int kCalibrationVersion = 4;

/// Oldest schema version load_calibration still accepts.
inline constexpr int kCalibrationMinVersion = 2;

/// Everything a warm restart needs.
struct CalibrationData {
  std::string personality;  ///< blas::CpuLibraryPersonality::name
  std::string profile;      ///< sysprofile::SystemProfile::name
  /// Tenant namespace ("" = shared/global). Fleet serving calibrates per
  /// tenant so one tenant's traffic shape cannot poison another's table;
  /// the field is additive to the v3 schema — absent in older files and
  /// omitted from the document when empty, so single-tenant stores
  /// round-trip byte-identically to pre-namespace ones.
  std::string nspace;
  std::map<BucketKey, BucketState> entries;
  std::optional<blas::GemmBlocking> blocking_f32;
  std::optional<blas::GemmBlocking> blocking_f64;
};

enum class LoadStatus {
  Ok,
  IoError,              ///< file missing or unreadable
  BadJson,              ///< parse failure or schema violation
  VersionMismatch,      ///< written by a different schema version
  PersonalityMismatch,  ///< calibrated against another CPU library
  ProfileMismatch,      ///< calibrated against another system profile
  NamespaceMismatch,    ///< calibrated for another tenant namespace
};

const char* to_string(LoadStatus status);

struct LoadResult {
  LoadStatus status = LoadStatus::IoError;
  CalibrationData data;  ///< valid only when status == Ok
  /// Non-empty when the load succeeded with a caveat (e.g. a v2 store
  /// whose entries all seeded the cold side). One line, for logs.
  std::string warning;
};

/// Serialise `data` as one JSON document.
void save_calibration(std::ostream& out, const CalibrationData& data);

/// Write to `path`; returns false when the file cannot be opened.
bool save_calibration_file(const std::string& path,
                           const CalibrationData& data);

/// Parse and validate a store. `expect_personality` / `expect_profile` /
/// `expect_nspace` must match what the file was written with; empty
/// expectations skip that check (used by tooling that just wants to
/// inspect a file, and by single-tenant callers that predate namespaces).
LoadResult load_calibration(std::istream& in,
                            const std::string& expect_personality,
                            const std::string& expect_profile,
                            const std::string& expect_nspace = "");

LoadResult load_calibration_file(const std::string& path,
                                 const std::string& expect_personality,
                                 const std::string& expect_profile,
                                 const std::string& expect_nspace = "");

}  // namespace blob::dispatch
